#!/usr/bin/env python3
"""Runs every bench_* binary in a build tree and aggregates results.

Each binary is executed with --benchmark_format=json; the real (wall) time
of every benchmark is collected into one flat {name: ns_per_op} map and
written to BENCH_results.json. Usage:

    tools/run_benches.py <build-dir>/bench [-o BENCH_results.json]
                         [--filter SUBSTRING]

--filter runs only the binaries whose name contains SUBSTRING (e.g.
`--filter mvcc` to refresh one bench's numbers without an hour-long full
sweep); the output file then holds just that subset, so merge it into
BENCH_results.json by hand rather than overwriting.

Exits non-zero if any binary fails to run or produces unparsable output.
"""

import argparse
import json
import os
import subprocess
import sys

# Google Benchmark time units, normalized to nanoseconds.
_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_one(path):
    """Runs one benchmark binary, returns {benchmark_name: ns_per_op}."""
    proc = subprocess.run(
        [path, "--benchmark_format=json"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{os.path.basename(path)} exited {proc.returncode}:\n"
            f"{proc.stderr.strip()}"
        )
    # The binaries print a human-readable banner (which may itself contain
    # braces, e.g. Cypher snippets) before the JSON document. The document
    # starts at a line whose first character is '{'; try each such line and
    # accept the first that parses to a benchmark report.
    doc = None
    decoder = json.JSONDecoder()
    offset = 0
    for line in proc.stdout.splitlines(keepends=True):
        if line.lstrip().startswith("{"):
            try:
                candidate, _ = decoder.raw_decode(proc.stdout[offset:].lstrip())
                if isinstance(candidate, dict) and "benchmarks" in candidate:
                    doc = candidate
                    break
            except json.JSONDecodeError:
                pass
        offset += len(line)
    if doc is None:
        raise RuntimeError(f"{os.path.basename(path)}: no JSON report in output")
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # keep raw repetitions out of the flat map
        unit = bench.get("time_unit", "ns")
        out[bench["name"]] = bench["real_time"] * _TO_NS[unit]
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_dir", help="directory holding bench_* binaries")
    parser.add_argument("-o", "--output", default="BENCH_results.json")
    parser.add_argument(
        "--filter",
        default="",
        help="run only binaries whose name contains this substring",
    )
    args = parser.parse_args()

    binaries = sorted(
        os.path.join(args.bench_dir, f)
        for f in os.listdir(args.bench_dir)
        if f.startswith("bench_") and args.filter in f and os.access(
            os.path.join(args.bench_dir, f), os.X_OK)
        and os.path.isfile(os.path.join(args.bench_dir, f))
    )
    if not binaries:
        where = f"matching --filter {args.filter!r} " if args.filter else ""
        print(f"no bench_* binaries {where}in {args.bench_dir}",
              file=sys.stderr)
        return 1

    results = {}
    for path in binaries:
        name = os.path.basename(path)
        print(f"[bench] {name}", flush=True)
        try:
            results.update(run_one(path))
        except (RuntimeError, json.JSONDecodeError, KeyError) as err:
            print(f"[bench] {name} FAILED: {err}", file=sys.stderr)
            return 1

    with open(args.output, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench] wrote {len(results)} results to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
