#!/usr/bin/env python3
"""Compares two BENCH_results.json files and flags regressions.

Both inputs are the flat {benchmark_name: ns_per_op} maps produced by
tools/run_benches.py. For every benchmark present in both files a ratio
(new / baseline) is printed; benchmarks only present in one file are
listed but never fail the comparison (new benches appear, retired ones
disappear). Exits non-zero iff any shared benchmark slowed down by more
than --threshold (default 10%). Usage:

    tools/bench_compare.py baseline.json new.json [--threshold 0.10]

Micro-benchmarks on shared machines are noisy; --threshold is a knob, not
a law. Use e.g. `git show HEAD:BENCH_results.json > /tmp/base.json` to
compare a fresh run against the committed baseline.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not all(
        isinstance(v, (int, float)) for v in doc.values()
    ):
        raise SystemExit(f"{path}: not a flat {{name: ns_per_op}} map")
    return doc


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.1f}{unit}"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_results.json")
    parser.add_argument("new", help="candidate BENCH_results.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max allowed slowdown fraction before failing (default 0.10)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    new = load(args.new)

    shared = sorted(set(base) & set(new))
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))

    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'new':>10}  {'ratio':>7}")
    regressions = []
    for name in shared:
        if base[name] > 0:
            ratio = new[name] / base[name]
        else:
            # A zero baseline can't regress to zero; anything above it can
            # only be treated as infinitely slower.
            ratio = 1.0 if new[name] == 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        print(
            f"{name:<{width}}  {fmt_ns(base[name]):>10}  {fmt_ns(new[name]):>10}"
            f"  {ratio:>6.2f}x{flag}"
        )

    for name in only_new:
        print(f"{name:<{width}}  {'-':>10}  {fmt_ns(new[name]):>10}  (new)")
    for name in only_base:
        print(f"{name:<{width}}  {fmt_ns(base[name]):>10}  {'-':>10}  (removed)")

    print(
        f"\n{len(shared)} compared, {len(only_new)} new, {len(only_base)} removed,"
        f" {len(regressions)} regression(s) beyond {args.threshold:.0%}"
    )
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"worst: {worst[0]} at {worst[1]:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
