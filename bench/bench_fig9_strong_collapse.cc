// Reproduces Example 7 / Figure 9 (Section 6): the clickstream chain whose
// two identical :TO hops collapse under Strong Collapse (Fig 9b) but not
// under Collapse (Fig 9a), and the re-match experiment: after Strong
// Collapse the merged pattern no longer matches under Cypher's trail
// semantics but does match under homomorphism matching. Timings sweep
// clickstream length.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::CheckCount;
using bench::CheckIso;
using bench::VariantOptions;
using bench::Verdict;

GraphDatabase RunExample7(MergeVariant variant) {
  GraphDatabase db(VariantOptions(variant));
  (void)db.Run(workload::Example7SetupScript());
  auto r = db.Execute(workload::Example7Query("MERGE"));
  if (!r.ok()) std::printf("  ERROR: %s\n", r.status().ToString().c_str());
  return db;
}

int VerifyShapes() {
  Banner("Example 7 / Figure 9, Section 6",
         "Collapse keeps both :TO p1->p2 hops (9a, 5 rels); Strong Collapse "
         "merges them (9b, 4 rels); re-MATCH of the merged pattern returns "
         "no matches under single-edge-traversal semantics but matches "
         "under homomorphism-based matching");
  Verdict verdict;

  GraphDatabase expected_b;
  (void)expected_b.Run(
      "CREATE (p1:P {k: 'p1'}), (p2:P {k: 'p2'}), (p3:P {k: 'p3'}), "
      "(p4:P {k: 'p4'}), "
      "(p1)-[:TO]->(p2), (p2)-[:TO]->(p3), (p3)-[:TO]->(p1), "
      "(p2)-[:BOUGHT]->(p4)");

  for (MergeVariant variant :
       {MergeVariant::kAtomic, MergeVariant::kGrouping,
        MergeVariant::kWeakCollapse, MergeVariant::kCollapse}) {
    GraphDatabase db = RunExample7(variant);
    verdict.Note(CheckCount(std::string(MergeVariantName(variant)) +
                                " rels (Fig 9a)",
                            5, db.graph().num_rels()));
  }
  {
    GraphDatabase db = RunExample7(MergeVariant::kStrongCollapse);
    verdict.Note(CheckCount("Strong Collapse rels (Fig 9b)", 4,
                            db.graph().num_rels()));
    verdict.Note(CheckIso("Strong Collapse graph", db.graph(),
                          expected_b.graph()));
    auto trail = db.Execute(workload::Example7RematchQuery());
    verdict.Note(CheckCount("re-match under trail semantics", 0,
                            trail.ok() ? trail->rows[0][0].AsInt() : 99));
    EvalOptions homo;
    homo.match_mode = MatchMode::kHomomorphism;
    auto hom = db.Execute(workload::Example7RematchQuery(), {}, homo);
    bool matched = hom.ok() && hom->rows[0][0].AsInt() >= 1;
    verdict.Note(Check("re-match under homomorphism", "matched",
                       matched ? "matched" : "not matched"));
  }
  {
    GraphDatabase db = RunExample7(MergeVariant::kCollapse);
    auto trail = db.Execute(workload::Example7RematchQuery());
    bool matched = trail.ok() && trail->rows[0][0].AsInt() >= 1;
    verdict.Note(Check("Collapse graph still trail-matches", "matched",
                       matched ? "matched" : "not matched"));
  }
  return verdict.Finish();
}

// ---- Timings: clickstream chains -------------------------------------------------

std::string ChainQuery(int hops) {
  // MATCH product markers, then MERGE the :TO chain ending in :BOUGHT.
  std::string match = "UNWIND $rows AS row ";
  std::string merge = "MERGE (m0)";
  for (int h = 0; h <= hops; ++h) {
    match += (h == 0 ? "MATCH " : ", ");
    match += "(m" + std::to_string(h) + ":P {k: row.p" + std::to_string(h) +
             "})";
  }
  for (int h = 1; h <= hops; ++h) {
    merge += std::string(h == hops ? "-[:BOUGHT]->" : "-[:TO]->") + "(m" +
             std::to_string(h) + ")";
  }
  return match + " " + merge;
}

void BM_ClickstreamMerge(benchmark::State& state) {
  int64_t n = state.range(0);
  auto variant = static_cast<MergeVariant>(state.range(1));
  constexpr int kHops = 5;
  constexpr int64_t kProducts = 12;
  Value rows = workload::RandomClickstreamRows(n, kProducts, kHops, 3);
  std::string setup;
  for (int64_t i = 1; i <= kProducts; ++i) {
    setup += (i == 1 ? "CREATE " : ", ");
    setup += "(:P {k: " + std::to_string(i) + "})";
  }
  std::string query = ChainQuery(kHops);
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(VariantOptions(variant));
    (void)db.Run(setup);
    state.ResumeTiming();
    auto r = db.Execute(query, {{"rows", rows}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n * kHops);
  state.SetLabel(MergeVariantName(variant));
}
BENCHMARK(BM_ClickstreamMerge)
    ->ArgsProduct({{32, 128},
                   {static_cast<long>(MergeVariant::kCollapse),
                    static_cast<long>(MergeVariant::kStrongCollapse)}});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
