// Engineering bench: morsel-driven parallel read execution — anchor-
// partitioned scans, row-partitioned expansion, and parallel partial
// aggregation, swept over worker counts. workers=1 runs the sequential
// path (the regression baseline); speedups require physical cores, so on
// single-core machines the interesting column is that workers>1 stays
// close to sequential (scheduling overhead only) while remaining
// byte-identical.

#include "bench_util.h"

namespace cypher {
namespace {

EvalOptions ParallelOptions(int64_t workers) {
  EvalOptions o;
  o.parallel_workers = static_cast<size_t>(workers);
  o.parallel_min_cost = 1;  // measure the machinery, not the heuristic
  return o;
}

std::string WorkerLabel(int64_t workers) {
  return "workers=" + std::to_string(workers);
}

/// Anchor-mode morsels: one driving record fanning a big label scan with a
/// property filter evaluated per candidate.
void BM_ParallelScan(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), 16, 0, 1);
  EvalOptions options = ParallelOptions(state.range(1));
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (u:User) WHERE u.id % 7 <> 0 RETURN count(u) AS c", {},
        options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(WorkerLabel(state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelScan)
    ->Args({4096, 1})->Args({4096, 2})->Args({4096, 4})->Args({4096, 8})
    ->Args({32768, 1})->Args({32768, 2})->Args({32768, 4})->Args({32768, 8})
    ->Unit(benchmark::kMicrosecond);

/// Row-mode morsels: many driving records each expanding a two-hop join.
void BM_ParallelTwoHop(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), state.range(0) / 4,
                                        state.range(0) * 2, 2);
  EvalOptions options = ParallelOptions(state.range(1));
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (a:User)-[:ORDERED]->(p:Product)<-[:ORDERED]-(b:User) "
        "RETURN count(*) AS c",
        {}, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(WorkerLabel(state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelTwoHop)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond);

/// Parallel partial aggregation: per-morsel group-by with count / sum /
/// min / max / DISTINCT partials merged in morsel order.
void BM_ParallelAggregation(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0) / 8, 64,
                                        state.range(0), 3);
  EvalOptions options = ParallelOptions(state.range(1));
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (u:User)-[:ORDERED]->(p:Product) "
        "RETURN u.id AS uid, count(*) AS n, sum(p.id) AS s, "
        "min(p.id) AS mn, max(p.id) AS mx, count(DISTINCT p.id) AS dp",
        {}, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(WorkerLabel(state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelAggregation)
    ->Args({4096, 1})->Args({4096, 2})->Args({4096, 4})->Args({4096, 8})
    ->Args({32768, 1})->Args({32768, 2})->Args({32768, 4})->Args({32768, 8})
    ->Unit(benchmark::kMicrosecond);

/// Expand-mode morsels: one anchored start node, all parallelism inside the
/// var-length frontier fan-out (trail-state arena tasks). workers=1 runs
/// the sequential DFS enumeration.
void BM_ParallelVarLength(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), state.range(0) / 4,
                                        state.range(0) * 2, 5);
  EvalOptions options = ParallelOptions(state.range(1));
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (u:User {id: 1})-[:ORDERED*1..3]-(x) "
        "RETURN count(*) AS c, min(x.id) AS lo",
        {}, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(WorkerLabel(state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelVarLength)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond);

/// Parallel BFS levels: shortestPath over a dense graph, frontier slices
/// expanded across workers and merged in slice order per level.
void BM_ParallelBFS(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), state.range(0) / 2,
                                        state.range(0) * 4, 11);
  EvalOptions options = ParallelOptions(state.range(1));
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (a:User {id: 1}), (b:User {id: " +
            std::to_string(state.range(0) - 2) +
            "}) OPTIONAL MATCH p = shortestPath((a)-[*]-(b)) "
            "RETURN length(p) AS len",
        {}, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(WorkerLabel(state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelBFS)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Args({8192, 1})->Args({8192, 2})->Args({8192, 4})->Args({8192, 8})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

BENCHMARK_MAIN();
