// Reproduces Example 2 (Section 4.1): the ambiguous SET over dirty data.
// Revised semantics must abort with an error and leave the graph
// untouched; legacy silently picks an order. Timings measure conflict
// detection cost as the fraction of conflicting writes grows.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::CheckCount;
using bench::LegacyOptions;
using bench::Verdict;

int VerifyShapes() {
  Banner("Example 2, Section 4.1 (ambiguous SET)",
         "revised: 'any ambiguous SET clause should abort with an error'; "
         "legacy: nondeterministically keeps one of the two names");
  Verdict verdict;
  {
    GraphDatabase db;
    (void)db.Run(
        "CREATE (:Product {id: 125, name: 'laptop'}), "
        "(:Product {id: 125, name: 'notebook'}), "
        "(:Product {id: 85, name: 'tablet'})");
    auto r = db.Execute(
        "MATCH (p1:Product {id: 85}), (p2:Product {id: 125}) "
        "SET p1.name = p2.name");
    verdict.Note(Check("revised ambiguous SET", "error",
                       r.ok() ? "ok" : "error"));
    auto name = db.Execute("MATCH (p:Product {id: 85}) RETURN p.name AS n");
    verdict.Note(Check("graph untouched after abort", "'tablet'",
                       name.ok() ? name->rows[0][0].ToString() : "?"));
  }
  {
    GraphDatabase db(LegacyOptions());
    (void)db.Run(
        "CREATE (:Product {id: 125, name: 'laptop'}), "
        "(:Product {id: 125, name: 'notebook'}), "
        "(:Product {id: 85, name: 'tablet'})");
    auto r = db.Execute(
        "MATCH (p1:Product {id: 85}), (p2:Product {id: 125}) "
        "SET p1.name = p2.name");
    verdict.Note(Check("legacy ambiguous SET", "ok", r.ok() ? "ok" : "error"));
    auto name = db.Execute("MATCH (p:Product {id: 85}) RETURN p.name AS n");
    bool plausible = name.ok() && (name->rows[0][0].ToString() == "'laptop'" ||
                                   name->rows[0][0].ToString() == "'notebook'");
    verdict.Note(Check("legacy picked one of the names", "yes",
                       plausible ? "yes" : "no"));
  }
  {
    // Sanity: agreeing duplicate writes do NOT conflict.
    GraphDatabase db;
    (void)db.Run("CREATE (:S {v: 9}), (:S {v: 9}), (:T)");
    auto r = db.Execute("MATCH (s:S), (t:T) SET t.x = s.v");
    verdict.Note(Check("agreeing writes pass", "ok", r.ok() ? "ok" : "error"));
  }
  return verdict.Finish();
}

// ---- Timings: conflict detection cost -------------------------------------------

/// N writer nodes all targeting one sink property; `distinct_values`
/// controls whether they agree (1) or conflict (2+, error path).
void BM_ConflictDetection(benchmark::State& state) {
  int64_t writers = state.range(0);
  int64_t distinct_values = state.range(1);
  GraphDatabase db;
  ValueList ids;
  for (int64_t i = 0; i < writers; ++i) ids.push_back(Value::Int(i));
  (void)db.Execute("UNWIND $ids AS i CREATE (:W {v: i % $m})",
                   {{"ids", Value::List(std::move(ids))},
                    {"m", Value::Int(distinct_values)}});
  (void)db.Run("CREATE (:Sink)");
  for (auto _ : state) {
    auto r = db.Execute("MATCH (w:W), (s:Sink) SET s.x = w.v");
    bool expect_error = distinct_values > 1;
    if (r.ok() == expect_error) {
      state.SkipWithError("unexpected conflict outcome");
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * writers);
  state.SetLabel(distinct_values > 1 ? "conflicting(error)" : "agreeing(ok)");
}
BENCHMARK(BM_ConflictDetection)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({1024, 1})
    ->Args({1024, 2});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
