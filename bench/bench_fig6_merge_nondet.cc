// Reproduces Example 3 / Figure 6 and Example 4 (Sections 4.3 and 6):
// legacy MERGE produces different graphs depending on driving-table order
// (Figures 6a/6b); every revised variant is order-insensitive, with
// Atomic/Grouping fixed on 6a and the collapse variants on 6b. The
// measured part counts distinct result graphs over many shuffles.

#include <map>
#include <set>

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::CheckCount;
using bench::CheckIso;
using bench::LegacyOptions;
using bench::Verdict;

PropertyGraph RunExample3(const std::string& keyword,
                          const EvalOptions& options) {
  GraphDatabase db(options);
  (void)db.Run(workload::Example3SetupScript());
  auto r = db.Execute(workload::Example3Query(keyword),
                      {{"rows", workload::Example3Rows()}});
  if (!r.ok()) std::printf("  ERROR: %s\n", r.status().ToString().c_str());
  return db.graph();
}

PropertyGraph ExpectedFigure(bool six_rels) {
  GraphDatabase db;
  (void)db.Run(
      six_rels
          ? "CREATE (u1:N {k: 'u1'}), (u2:N {k: 'u2'}), (p:N {k: 'p'}), "
            "(v1:N {k: 'v1'}), (v2:N {k: 'v2'}), "
            "(u1)-[:ORDERED]->(p), (v1)-[:OFFERS]->(p), "
            "(u2)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p), "
            "(u1)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p)"
          : "CREATE (u1:N {k: 'u1'}), (u2:N {k: 'u2'}), (p:N {k: 'p'}), "
            "(v1:N {k: 'v1'}), (v2:N {k: 'v2'}), "
            "(u1)-[:ORDERED]->(p), (v1)-[:OFFERS]->(p), "
            "(u2)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p)");
  return db.graph();
}

size_t DistinctGraphsOverShuffles(const std::string& keyword,
                                  bool legacy, int shuffles) {
  std::set<uint64_t> fingerprints;
  for (int seed = 0; seed < shuffles; ++seed) {
    EvalOptions options =
        legacy ? LegacyOptions(ScanOrder::kShuffle, seed) : EvalOptions{};
    if (!legacy) {
      options.scan_order = ScanOrder::kShuffle;
      options.shuffle_seed = seed;
    }
    fingerprints.insert(GraphFingerprint(RunExample3(keyword, options)));
  }
  return fingerprints.size();
}

int VerifyShapes() {
  Banner("Example 3 / Figure 6 and Example 4, Sections 4.3 + 6",
         "legacy MERGE: bottom-up -> Fig 6a (6 rels), top-down -> Fig 6b "
         "(4 rels), i.e. nondeterministic; all five revised variants are "
         "deterministic (Atomic/Grouping -> 6a, collapses -> 6b)");
  Verdict verdict;

  PropertyGraph fig6a = ExpectedFigure(/*six_rels=*/true);
  PropertyGraph fig6b = ExpectedFigure(/*six_rels=*/false);

  verdict.Note(CheckIso("legacy MERGE, top-down scan",
                        RunExample3("MERGE", LegacyOptions(ScanOrder::kForward)),
                        fig6b));
  verdict.Note(CheckIso("legacy MERGE, bottom-up scan",
                        RunExample3("MERGE", LegacyOptions(ScanOrder::kReverse)),
                        fig6a));
  verdict.Note(CheckIso("MERGE ALL (any order)",
                        RunExample3("MERGE ALL", EvalOptions{}), fig6a));
  verdict.Note(CheckIso("MERGE SAME (any order)",
                        RunExample3("MERGE SAME", EvalOptions{}), fig6b));
  for (MergeVariant variant :
       {MergeVariant::kGrouping, MergeVariant::kWeakCollapse,
        MergeVariant::kCollapse}) {
    EvalOptions options;
    options.plain_merge_variant = variant;
    const PropertyGraph& expected =
        variant == MergeVariant::kGrouping ? fig6a : fig6b;
    verdict.Note(CheckIso(std::string("variant ") + MergeVariantName(variant),
                          RunExample3("MERGE", options), expected));
  }

  constexpr int kShuffles = 64;
  size_t legacy_distinct =
      DistinctGraphsOverShuffles("MERGE", /*legacy=*/true, kShuffles);
  std::printf("  legacy MERGE distinct graphs over %d shuffles: %zu\n",
              kShuffles, legacy_distinct);
  verdict.Note(Check("legacy MERGE is nondeterministic (>= 2 graphs)", "yes",
                     legacy_distinct >= 2 ? "yes" : "no"));
  for (const char* keyword : {"MERGE ALL", "MERGE SAME"}) {
    size_t distinct =
        DistinctGraphsOverShuffles(keyword, /*legacy=*/false, kShuffles);
    verdict.Note(CheckCount(std::string(keyword) + " distinct graphs", 1,
                            distinct));
  }
  return verdict.Finish();
}

// ---- Timings: the cost of determinism -------------------------------------------

void BM_Example3Merge(benchmark::State& state) {
  // arg0: table size multiplier; arg1: 0 legacy, 1 MERGE ALL, 2 MERGE SAME.
  int64_t copies = state.range(0);
  ValueList rows;
  Value base_rows = workload::Example3Rows();  // keep the list alive
  for (int64_t i = 0; i < copies; ++i) {
    for (const Value& r : base_rows.AsList()) rows.push_back(r);
  }
  Value rows_value = Value::List(std::move(rows));
  const char* keyword = state.range(1) == 0   ? "MERGE"
                        : state.range(1) == 1 ? "MERGE ALL"
                                              : "MERGE SAME";
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(state.range(1) == 0 ? LegacyOptions() : EvalOptions{});
    (void)db.Run(workload::Example3SetupScript());
    state.ResumeTiming();
    auto r = db.Execute(workload::Example3Query(keyword),
                        {{"rows", rows_value}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * copies * 3);
  state.SetLabel(keyword);
}
BENCHMARK(BM_Example3Merge)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
