// Engineering bench (not a specific figure): throughput of legacy MERGE and
// all five revised variants as the driving table grows, on the Example 5
// import workload. The paper predicts no particular numbers, but the shape
// matters: legacy MERGE pays per-record re-matching against a growing
// graph, while the revised variants match only the input graph and create
// in one batch; collapse adds a near-linear dedup pass.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::LegacyOptions;
using bench::VariantOptions;

void BM_MergeScaling(benchmark::State& state) {
  int64_t n = state.range(0);
  int64_t mode = state.range(1);  // 0 legacy, 1..5 variants
  Value rows = workload::RandomOrderRows(n, n / 8 + 2, n / 8 + 2, 100, 5);
  EvalOptions options = mode == 0
                            ? LegacyOptions()
                            : VariantOptions(static_cast<MergeVariant>(mode - 1));
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(options);
    state.ResumeTiming();
    auto r = db.Execute(workload::Example5Query("MERGE"), {{"rows", rows}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(mode == 0 ? "Legacy"
                           : MergeVariantName(static_cast<MergeVariant>(mode - 1)));
}
BENCHMARK(BM_MergeScaling)
    ->ArgsProduct({{64, 256, 1024}, {0, 1, 2, 3, 4, 5}})
    ->Unit(benchmark::kMicrosecond);

// Re-merging into an already-populated graph: the match phase dominates.
void BM_MergeWarmGraph(benchmark::State& state) {
  int64_t n = state.range(0);
  int64_t mode = state.range(1);
  Value rows = workload::RandomOrderRows(n, n / 8 + 2, n / 8 + 2, 0, 6);
  EvalOptions options = mode == 0
                            ? LegacyOptions()
                            : VariantOptions(static_cast<MergeVariant>(mode - 1));
  GraphDatabase db(options);
  {
    auto seed_result =
        db.Execute(workload::Example5Query(mode == 0 ? "MERGE" : "MERGE SAME"),
                   {{"rows", rows}});
    if (!seed_result.ok()) {
      state.SkipWithError(seed_result.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = db.Execute(workload::Example5Query("MERGE"), {{"rows", rows}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(mode == 0 ? "Legacy"
                           : MergeVariantName(static_cast<MergeVariant>(mode - 1)));
}
BENCHMARK(BM_MergeWarmGraph)
    ->ArgsProduct({{256}, {0, 1, 5}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  cypher::bench::Banner(
      "Engineering: MERGE throughput scaling (all semantics)",
      "legacy re-matches a growing graph per record; revised variants "
      "match once and create atomically");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
