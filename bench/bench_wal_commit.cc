// Engineering bench: what durability costs per committed statement.
//
//   no WAL            — the in-memory engine alone (baseline)
//   memory WAL        — redo capture + framing + checksum, no disk
//   fsync-per-commit  — a real file, one fsync inside every commit
//   group commit      — a real file, concurrent sessions sharing fsyncs
//
// The interesting ratios: memory-WAL / no-WAL isolates the logging
// machinery (should be small), fsync / memory isolates the disk (should
// dominate), and group commit at N threads should amortize the fsync —
// statements/second climbing well past the fsync-per-commit ceiling.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "storage/log_file.h"

namespace cypher {
namespace {

constexpr int64_t kNodes = 64;

// A fixed working set: commits are single-property SETs, so every record is
// a few dozen bytes and the graph (hence statement cost) stays constant no
// matter how long the bench runs.
void Seed(GraphDatabase* db) {
  std::string create = "CREATE ";
  for (int64_t i = 0; i < kNodes; ++i) {
    if (i > 0) create += ", ";
    create += "(:W {id: " + std::to_string(i) + ", v: 0})";
  }
  (void)db->Run(create);
}

std::string SetStmt(int64_t i) {
  return "MATCH (n:W {id: " + std::to_string(i % kNodes) +
         "}) SET n.v = " + std::to_string(i);
}

std::string TempWalPath(const char* name) {
  std::string path = "/tmp/cypher_bench_wal_";
  path += name;
  path += ".log";
  std::remove(path.c_str());
  return path;
}

void BM_CommitNoWal(benchmark::State& state) {
  GraphDatabase db;
  Seed(&db);
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute(SetStmt(i++));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitNoWal)->Unit(benchmark::kMicrosecond);

void BM_CommitMemoryWal(benchmark::State& state) {
  GraphDatabase db;
  Seed(&db);
  (void)db.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute(SetStmt(i++));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitMemoryWal)->Unit(benchmark::kMicrosecond);

void BM_CommitFsyncEveryCommit(benchmark::State& state) {
  GraphDatabase db;
  Seed(&db);
  std::string path = TempWalPath("every");
  auto file = storage::OpenPosixLogFile(path);
  if (!file.ok()) {
    state.SkipWithError(file.status().ToString().c_str());
    return;
  }
  (void)db.OpenDurable(std::move(*file));  // SyncMode::kEveryCommit
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute(SetStmt(i++));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_CommitFsyncEveryCommit)->Unit(benchmark::kMicrosecond);

// N sessions hammering one durable database: each bench iteration is one
// batch of N threads x kPerThread commits, so items/second is aggregate
// commit throughput. Group commit lets whichever thread lands the fsync
// cover everyone buffered behind it.
void BM_CommitGroupCommit(benchmark::State& state) {
  constexpr int64_t kPerThread = 16;
  const int64_t threads = state.range(0);
  GraphDatabase db;
  Seed(&db);
  std::string path = TempWalPath(("group" + std::to_string(threads)).c_str());
  auto file = storage::OpenPosixLogFile(path);
  if (!file.ok()) {
    state.SkipWithError(file.status().ToString().c_str());
    return;
  }
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kGroupCommit;
  (void)db.OpenDurable(std::move(*file), durability);
  int64_t batch = 0;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int64_t t = 0; t < threads; ++t) {
      int64_t base = (batch * threads + t) * kPerThread;
      workers.emplace_back([&db, base]() {
        for (int64_t i = 0; i < kPerThread; ++i) {
          auto r = db.Execute(SetStmt(base + i));
          benchmark::DoNotOptimize(r);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    ++batch;
  }
  state.SetLabel("sessions=" + std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * threads * kPerThread);
  std::remove(path.c_str());
}
BENCHMARK(BM_CommitGroupCommit)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()  // work happens on the spawned sessions, not this thread
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

BENCHMARK_MAIN();
