// Reproduces Example 1 (Section 4.1): the property-swap query. Legacy SET
// fails to swap (both ids end up equal); revised SET swaps. Timings compare
// the two-phase atomic SET against the legacy immediate SET on bulk
// updates.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::LegacyOptions;
using bench::Verdict;

constexpr char kSwap[] =
    "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'}) "
    "SET p1.id = p2.id, p2.id = p1.id";

std::pair<std::string, std::string> RunSwap(const EvalOptions& options) {
  GraphDatabase db;
  (void)db.Run(
      "CREATE (:Product {name: 'laptop', id: 85}), "
      "(:Product {name: 'tablet', id: 125})");
  auto r = db.Execute(kSwap, {}, options);
  if (!r.ok()) return {"error", "error"};
  auto ids = db.Execute(
      "MATCH (p:Product) RETURN p.id AS id ORDER BY p.name");
  return {ids->rows[0][0].ToString(), ids->rows[1][0].ToString()};
}

int VerifyShapes() {
  Banner("Example 1, Section 4.1 (SET id swap)",
         "legacy: both products end with id 125 (no swap); revised: ids "
         "swap to 125/85 'as expected'");
  Verdict verdict;
  auto [legacy_laptop, legacy_tablet] = RunSwap(LegacyOptions());
  verdict.Note(Check("legacy laptop.id after swap", "125", legacy_laptop));
  verdict.Note(Check("legacy tablet.id after swap", "125", legacy_tablet));
  auto [revised_laptop, revised_tablet] = RunSwap(EvalOptions{});
  verdict.Note(Check("revised laptop.id after swap", "125", revised_laptop));
  verdict.Note(Check("revised tablet.id after swap", "85", revised_tablet));
  return verdict.Finish();
}

// ---- Timings: atomic SET overhead vs legacy SET --------------------------------

void SetupPairs(GraphDatabase* db, int64_t n) {
  ValueList ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(Value::Int(i));
  (void)db->Execute(
      "UNWIND $ids AS i "
      "CREATE (:L {k: i, v: i}), (:R {k: i, v: i + 1000000})",
      {{"ids", Value::List(std::move(ids))}});
}

void BM_SwapSet(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
  SetupPairs(&db, state.range(0));
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (a:L) MATCH (b:R {k: a.k}) SET a.v = b.v, b.v = a.v");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_SwapSet)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_BulkSetProperty(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
  SetupPairs(&db, state.range(0));
  int64_t round = 0;
  for (auto _ : state) {
    auto r = db.Execute("MATCH (a:L) SET a.round = $r",
                        {{"r", Value::Int(round++)}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_BulkSetProperty)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({2048, 0})
    ->Args({2048, 1});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
