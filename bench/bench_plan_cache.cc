// Engineering bench: the parametrized plan cache and bytecode VM — cold
// parse+compile per statement vs warm raw-key hits vs the tree interpreter,
// across point lookups, projection chains, aggregation, and update
// round-trips. The PR's acceptance gate is warm >= 2x faster than cold on
// these statement shapes.

#include "bench_util.h"

namespace cypher {
namespace {

/// Each Args tuple selects a regime: 0 = cold (the cache is dropped every
/// iteration, so every statement pays parse + parametrize + compile),
/// 1 = warm (steady-state raw hits), 2 = interpreter (use_plan_cache off).
enum Regime { kCold = 0, kWarm = 1, kInterp = 2 };

const char* RegimeLabel(int64_t regime) {
  switch (regime) {
    case kCold:
      return "cold";
    case kWarm:
      return "warm";
    default:
      return "interpreter";
  }
}

EvalOptions RegimeOptions(int64_t regime) {
  EvalOptions options;
  options.use_plan_cache = regime != kInterp;
  return options;
}

void RunStatement(GraphDatabase* db, const std::string& query,
                  const ValueMap& params, const EvalOptions& options,
                  int64_t regime, benchmark::State& state) {
  for (auto _ : state) {
    if (regime == kCold) db->plan_cache().Clear();
    auto r = db->Execute(query, params, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(RegimeLabel(regime));
  state.SetItemsProcessed(state.iterations());
}

/// Indexed point lookup — the classic parametrized-statement hot path: the
/// cache skips parse + compile and the plan probes the index directly.
void BM_PointLookup(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, 1024, 128, 2048, 7);
  (void)db.Run("CREATE INDEX ON :User(id)");
  RunStatement(&db, "MATCH (u:User {id: 357}) RETURN u.id AS n", {},
               RegimeOptions(state.range(0)), state.range(0), state);
}
BENCHMARK(BM_PointLookup)
    ->Arg(kCold)->Arg(kWarm)->Arg(kInterp)
    ->Unit(benchmark::kMicrosecond);

/// WITH/WHERE arithmetic chain over a label scan: exercises the bytecode
/// projection pipeline (register frames, shared value kernels) against the
/// interpreter's tree walk.
void BM_ProjectionChain(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, 512, 64, 1024, 11);
  RunStatement(&db,
               "MATCH (u:User) WITH u.id * 2 + 1 AS x, u "
               "WHERE x % 7 < 5 RETURN x + u.id AS y ORDER BY y LIMIT 32",
               {}, RegimeOptions(state.range(0)), state.range(0), state);
}
BENCHMARK(BM_ProjectionChain)
    ->Arg(kCold)->Arg(kWarm)->Arg(kInterp)
    ->Unit(benchmark::kMicrosecond);

/// UNWIND + grouped aggregation: the aggregate projection falls back to the
/// reference executor inside the VM, so this measures cache dispatch
/// overhead on statements the bytecode only partially covers.
void BM_UnwindAggregate(benchmark::State& state) {
  GraphDatabase db;
  RunStatement(&db,
               "UNWIND range(0, 255) AS x "
               "RETURN x % 16 AS g, count(*) AS c, sum(x) AS s ORDER BY g",
               {}, RegimeOptions(state.range(0)), state.range(0), state);
}
BENCHMARK(BM_UnwindAggregate)
    ->Arg(kCold)->Arg(kWarm)->Arg(kInterp)
    ->Unit(benchmark::kMicrosecond);

/// Parametrized update round-trip (SET then reset): journal + rollback
/// machinery is shared, so the delta is parse/compile amortization.
void BM_UpdateRoundTrip(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, 256, 32, 512, 13);
  (void)db.Run("CREATE INDEX ON :User(id)");
  const EvalOptions options = RegimeOptions(state.range(0));
  const ValueMap params = {{"id", Value::Int(77)}};
  for (auto _ : state) {
    if (state.range(0) == kCold) db.plan_cache().Clear();
    auto r = db.Execute("MATCH (u:User {id: $id}) SET u.hits = u.id + 1",
                        params, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(RegimeLabel(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateRoundTrip)
    ->Arg(kCold)->Arg(kWarm)->Arg(kInterp)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  cypher::bench::Banner(
      "Engineering: parametrized plan cache + bytecode statement VM",
      "warm cache hits skip parse/parametrize/compile and must be >= 2x "
      "faster than cold compiles on point lookups and projection chains");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
