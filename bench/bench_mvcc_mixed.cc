// Engineering bench: mixed read/write traffic with and without snapshot
// sessions.
//
//   serialized  — readers call Execute on the writer database, so every
//                 read queues behind the writer on the execution lock
//   mvcc        — readers hold pinned snapshot sessions (BeginReadSession)
//                 and run lock-free against their epoch
//
// One writer thread commits a 100%-write workload continuously for the
// whole measurement in both variants, against a real file WAL with
// fsync-per-commit — the durable deployment. Reads are items/second;
// the writer's commit rate during the measurement is the commits_per_sec
// counter. Serialized, the two traffic classes fight over the execution
// lock, so one of them loses: on a multi-core host reads queue behind
// every held-lock fsync while MVCC readers run straight through (>= 3x
// aggregate read throughput at 4 readers is the acceptance line), and on
// a single-core host the readers win the lock instead and it is the
// writer that collapses — compare commits_per_sec across the two
// variants: pinned sessions never touch the lock, so the MVCC writer
// holds its solo rate under any read load. Auto-checkpoint compaction
// keeps the log bounded however long the bench runs.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "storage/log_file.h"

namespace cypher {
namespace {

constexpr int64_t kNodes = 64;
constexpr int64_t kReadsPerThread = 32;

// A ring of :W nodes joined by :R relationships; updates rotate a counter
// property so record versions churn without changing the graph's shape.
void Seed(GraphDatabase* db) {
  std::string create = "CREATE ";
  for (int64_t i = 0; i < kNodes; ++i) {
    if (i > 0) create += ", ";
    create += "(n" + std::to_string(i) + ":W {id: " + std::to_string(i) +
              ", v: 0})";
  }
  for (int64_t i = 0; i < kNodes; ++i) {
    create += ", (n" + std::to_string(i) + ")-[:R]->(n" +
              std::to_string((i + 1) % kNodes) + ")";
  }
  (void)db->Run(create);
}

std::string WriteStmt(int64_t i) {
  return "MATCH (n:W {id: " + std::to_string(i % kNodes) +
         "}) SET n.v = " + std::to_string(i);
}

// The read each session hammers: a one-hop join with a property filter,
// enough matcher work per statement that throughput measures the engine
// rather than the parse-and-dispatch rim.
constexpr const char* kReadQuery =
    "MATCH (a:W)-[:R]->(b:W) WHERE a.v <= b.v RETURN count(*)";

std::unique_ptr<GraphDatabase> MakeDurableDb(bool mvcc,
                                             const std::string& path) {
  auto db = std::make_unique<GraphDatabase>();
  Seed(db.get());
  if (mvcc) (void)db->EnableMvcc();
  std::remove(path.c_str());
  auto file = storage::OpenPosixLogFile(path);
  if (!file.ok()) return nullptr;
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kEveryCommit;
  durability.auto_checkpoint_bytes = 1 << 20;
  (void)db->OpenDurable(std::move(*file), durability);
  return db;
}

// Each bench iteration: `threads` readers x kReadsPerThread statements,
// while the writer thread (started before timing, stopped after) commits
// back to back. Items/second is therefore aggregate read throughput under
// continuous write pressure.
void RunMixed(benchmark::State& state, bool mvcc) {
  const int64_t threads = state.range(0);
  std::string path = "/tmp/cypher_bench_mvcc_" +
                     std::string(mvcc ? "mvcc" : "serial") +
                     std::to_string(threads) + ".log";
  std::unique_ptr<GraphDatabase> db = MakeDurableDb(mvcc, path);
  if (db == nullptr) {
    state.SkipWithError("cannot open WAL file");
    return;
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> commits{0};
  std::thread writer([&db, &stop, &commits] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = db->Execute(WriteStmt(i++));
      if (!r.ok()) break;  // sticky WAL error: stop rather than spin
      commits.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (auto _ : state) {
    std::vector<std::thread> readers;
    readers.reserve(static_cast<size_t>(threads));
    for (int64_t t = 0; t < threads; ++t) {
      readers.emplace_back([&db, mvcc] {
        if (mvcc) {
          auto session = db->BeginReadSession();
          if (!session.ok()) return;
          for (int64_t i = 0; i < kReadsPerThread; ++i) {
            auto r = session->Execute(kReadQuery);
            benchmark::DoNotOptimize(r);
          }
        } else {
          for (int64_t i = 0; i < kReadsPerThread; ++i) {
            auto r = db->Execute(kReadQuery);
            benchmark::DoNotOptimize(r);
          }
        }
      });
    }
    for (std::thread& r : readers) r.join();
  }

  stop.store(true, std::memory_order_relaxed);
  writer.join();
  state.SetLabel("readers=" + std::to_string(threads) +
                 (mvcc ? " mvcc" : " serialized"));
  state.SetItemsProcessed(state.iterations() * threads * kReadsPerThread);
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(commits.load()), benchmark::Counter::kIsRate);
  db.reset();
  std::remove(path.c_str());
}

void BM_MixedReadsSerialized(benchmark::State& state) {
  RunMixed(state, /*mvcc=*/false);
}
BENCHMARK(BM_MixedReadsSerialized)
    ->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()  // readers do the work, not the timing thread
    ->Unit(benchmark::kMillisecond);

void BM_MixedReadsMvcc(benchmark::State& state) {
  RunMixed(state, /*mvcc=*/true);
}
BENCHMARK(BM_MixedReadsMvcc)
    ->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cypher

BENCHMARK_MAIN();
