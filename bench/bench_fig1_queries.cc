// Reproduces Figure 1 and Queries (1)-(5) of Sections 2-3: the marketplace
// graph, the read query, and the full CREATE/SET/REMOVE/DELETE/MERGE
// lifecycle, with throughput timings for each query on scaled-up replicas.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::CheckCount;
using bench::LegacyOptions;
using bench::Verdict;

int VerifyShapes() {
  Banner("Figure 1 + Queries (1)-(5), Sections 2-3",
         "Query (1) returns exactly vendor v1; Query (2) adds p4; Query (3) "
         "relabels it; DELETE without detaching fails; Query (4) detaches; "
         "Query (5) creates one vendor for the tablet");
  Verdict verdict;

  GraphDatabase db;
  verdict.Note(Check("LoadMarketplace", "OK",
                     workload::LoadMarketplace(&db).ToString()));
  verdict.Note(CheckCount("Figure 1 nodes", 6, db.graph().num_nodes()));
  verdict.Note(CheckCount("Figure 1 relationships", 5, db.graph().num_rels()));

  auto q1 = db.Execute(
      "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
      "WHERE p.name = 'laptop' RETURN v.name AS vendor");
  verdict.Note(CheckCount("Query (1) result rows", 1, q1.ok() ? q1->rows.size() : 0));
  verdict.Note(Check("Query (1) vendor", "'cStore'",
                     q1.ok() ? q1->rows[0][0].ToString() : "?"));

  auto q2 = db.Execute(
      "MATCH (u:User {id: 89}) "
      "CREATE (u)-[:ORDERED]->(:New_Product {id: 0})");
  verdict.Note(CheckCount("Query (2) nodes created", 1,
                          q2.ok() ? q2->stats.nodes_created : 0));

  auto q3 = db.Execute(
      "MATCH (p:New_Product {id: 0}) "
      "SET p:Product, p.id = 120, p.name = 'smartphone' "
      "REMOVE p:New_Product");
  verdict.Note(CheckCount("Query (3) properties set", 2,
                          q3.ok() ? q3->stats.properties_set : 0));

  auto bad_delete = db.Execute("MATCH (p:Product {id: 120}) DELETE p");
  verdict.Note(Check("DELETE with attached rel fails", "error",
                     bad_delete.ok() ? "ok" : "error"));

  auto q4 = db.Execute("MATCH (p:Product {id: 120}) DETACH DELETE p");
  verdict.Note(CheckCount("Query (4) nodes deleted", 1,
                          q4.ok() ? q4->stats.nodes_deleted : 0));
  verdict.Note(CheckCount("graph back to Figure 1 size", 6,
                          db.graph().num_nodes()));

  auto q5 = db.Execute(
      "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v", {},
      LegacyOptions());
  verdict.Note(CheckCount("Query (5) rows", 3, q5.ok() ? q5->rows.size() : 0));
  verdict.Note(CheckCount("Query (5) vendors created", 1,
                          q5.ok() ? q5->stats.nodes_created : 0));
  return verdict.Finish();
}

// ---- Timings -------------------------------------------------------------------

void BM_Query1_Read(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), state.range(0),
                                        state.range(0) * 3, 42);
  (void)db.Run("MATCH (v:User) SET v:Vendor");  // give the pattern vendors
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (p:Product)<-[:ORDERED]-(v:Vendor)-[:ORDERED]->(q:Product) "
        "RETURN count(v) AS c");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query1_Read)->Arg(16)->Arg(64)->Arg(256);

void BM_Query2_Create(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db;
    (void)db.Run("CREATE (:User {id: 89})");
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      auto r = db.Execute(
          "MATCH (u:User {id: 89}) "
          "CREATE (u)-[:ORDERED]->(:New_Product {id: 0})");
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query2_Create)->Arg(64);

void BM_Query5_LegacyMerge(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(LegacyOptions());
    (void)workload::LoadRandomMarketplace(&db, 4, state.range(0), 0, 7);
    state.ResumeTiming();
    auto r = db.Execute(
        "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN count(v) "
        "AS c");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query5_LegacyMerge)->Arg(32)->Arg(128);

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
