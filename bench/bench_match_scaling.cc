// Engineering bench: pattern-matching throughput — label scans, two-hop
// joins, variable-length walks, and trail vs homomorphism overhead.

#include "bench_util.h"
#include "parser/parser.h"

namespace cypher {
namespace {

void BM_LabelScan(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), state.range(0),
                                        0, 1);
  for (auto _ : state) {
    auto r = db.Execute("MATCH (u:User) RETURN count(u) AS c");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LabelScan)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_TwoHopJoin(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0), state.range(0) / 4,
                                        state.range(0) * 2, 2);
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (a:User)-[:ORDERED]->(p:Product)<-[:ORDERED]-(b:User) "
        "RETURN count(*) AS c");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoHopJoin)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TrailVsHomomorphism(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, 48, 12, 96, 3);
  EvalOptions options;
  options.match_mode = state.range(0) == 0 ? MatchMode::kRelUnique
                                           : MatchMode::kHomomorphism;
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (a)-[:ORDERED]->(p), (b)-[:ORDERED]->(q) "
        "RETURN count(*) AS c",
        {}, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(state.range(0) == 0 ? "trail" : "homomorphism");
}
BENCHMARK(BM_TrailVsHomomorphism)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_VarLengthWalk(benchmark::State& state) {
  GraphDatabase db;
  // A chain with shortcuts: n nodes in a line plus skip links.
  int64_t n = state.range(0);
  ValueList ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(Value::Int(i));
  (void)db.Execute("UNWIND $ids AS i CREATE (:C {id: i})",
                   {{"ids", Value::List(ids)}});
  (void)db.Run(
      "MATCH (a:C), (b:C) WHERE b.id = a.id + 1 CREATE (a)-[:NEXT]->(b)");
  (void)db.Run(
      "MATCH (a:C), (b:C) WHERE b.id = a.id + 3 CREATE (a)-[:NEXT]->(b)");
  // workers=0 is the plain sequential walk; workers>0 engages the
  // expand-mode frontier fan-out (single anchored start row).
  EvalOptions options;
  options.parallel_workers = static_cast<size_t>(state.range(1));
  options.parallel_min_cost = 1;
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (a:C {id: 0})-[:NEXT*1..6]->(b) RETURN count(*) AS c", {},
        options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("workers=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_VarLengthWalk)
    ->Args({32, 0})->Args({32, 8})
    ->Args({128, 0})->Args({128, 2})->Args({128, 4})->Args({128, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_Aggregation(benchmark::State& state) {
  GraphDatabase db;
  (void)workload::LoadRandomMarketplace(&db, state.range(0),
                                        state.range(0) / 4 + 1,
                                        state.range(0) * 4, 4);
  for (auto _ : state) {
    auto r = db.Execute(
        "MATCH (u:User)-[:ORDERED]->(p:Product) "
        "RETURN p.id AS pid, count(u) AS buyers, collect(u.id) AS who "
        "ORDER BY buyers DESC LIMIT 10");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Aggregation)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_ParseOnly(benchmark::State& state) {
  const std::string query =
      "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
      "WHERE p.name = 'laptop' AND v.rating >= 4.5 "
      "WITH v, count(q) AS range ORDER BY range DESC LIMIT 10 "
      "RETURN v.name AS vendor, range";
  for (auto _ : state) {
    auto q = ParseQuery(query);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseOnly);

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  cypher::bench::Banner(
      "Engineering: pattern matching and query pipeline throughput",
      "label-indexed scans, joins, variable-length walks, trail vs "
      "homomorphism matching, aggregation, parser");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
