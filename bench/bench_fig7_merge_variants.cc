// Reproduces Example 5 / Figure 7 (Sections 6-7): the order-import driving
// table with duplicates and nulls under all five MERGE variants. Expected
// node/relationship counts: Atomic 12/6 (Fig 7a), Grouping 8/4 (Fig 7b),
// all collapse variants 4/4 (Fig 7c). MERGE ALL == Atomic and MERGE SAME ==
// Strong Collapse per Section 7. Timings sweep the import-table size.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::CheckCount;
using bench::Verdict;
using bench::VariantOptions;

std::pair<size_t, size_t> RunExample5(MergeVariant variant) {
  GraphDatabase db(VariantOptions(variant));
  auto r = db.Execute(workload::Example5Query("MERGE"),
                      {{"rows", workload::Example5Rows()}});
  if (!r.ok()) return {0, 0};
  return {db.graph().num_nodes(), db.graph().num_rels()};
}

int VerifyShapes() {
  Banner("Example 5 / Figure 7, Sections 6-7",
         "Atomic -> 12 nodes / 6 rels (7a); Grouping -> 8 / 4 (7b); Weak / "
         "Collapse / Strong Collapse -> 4 / 4 (7c); nulls group together");
  Verdict verdict;
  struct Row {
    MergeVariant variant;
    size_t nodes;
    size_t rels;
    const char* figure;
  };
  const Row expected[] = {
      {MergeVariant::kAtomic, 12, 6, "7a"},
      {MergeVariant::kGrouping, 8, 4, "7b"},
      {MergeVariant::kWeakCollapse, 4, 4, "7c"},
      {MergeVariant::kCollapse, 4, 4, "7c"},
      {MergeVariant::kStrongCollapse, 4, 4, "7c"},
  };
  for (const Row& row : expected) {
    auto [nodes, rels] = RunExample5(row.variant);
    verdict.Note(CheckCount(std::string(MergeVariantName(row.variant)) +
                                " nodes (Fig " + row.figure + ")",
                            row.nodes, nodes));
    verdict.Note(CheckCount(std::string(MergeVariantName(row.variant)) +
                                " rels (Fig " + row.figure + ")",
                            row.rels, rels));
  }
  // Keyword forms.
  {
    GraphDatabase db;
    (void)db.Execute(workload::Example5Query("MERGE ALL"),
                     {{"rows", workload::Example5Rows()}});
    verdict.Note(CheckCount("MERGE ALL nodes == Atomic", 12,
                            db.graph().num_nodes()));
  }
  {
    GraphDatabase db;
    (void)db.Execute(workload::Example5Query("MERGE SAME"),
                     {{"rows", workload::Example5Rows()}});
    verdict.Note(CheckCount("MERGE SAME nodes == Strong Collapse", 4,
                            db.graph().num_nodes()));
  }
  return verdict.Finish();
}

// ---- Timings: import-table scaling per variant -----------------------------------

void BM_ImportMerge(benchmark::State& state) {
  int64_t n = state.range(0);
  auto variant = static_cast<MergeVariant>(state.range(1));
  Value rows = workload::RandomOrderRows(n, n / 4 + 1, n / 4 + 1, 100, 77);
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(VariantOptions(variant));
    state.ResumeTiming();
    auto r = db.Execute(workload::Example5Query("MERGE"), {{"rows", rows}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(MergeVariantName(variant));
}
BENCHMARK(BM_ImportMerge)
    ->ArgsProduct({{64, 512},
                   {static_cast<long>(MergeVariant::kAtomic),
                    static_cast<long>(MergeVariant::kGrouping),
                    static_cast<long>(MergeVariant::kWeakCollapse),
                    static_cast<long>(MergeVariant::kCollapse),
                    static_cast<long>(MergeVariant::kStrongCollapse)}});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
