#ifndef CYPHER_BENCH_BENCH_UTIL_H_
#define CYPHER_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "cypher/database.h"
#include "exec/render.h"
#include "graph/isomorphism.h"
#include "graph/serialize.h"
#include "workload/workloads.h"

namespace cypher::bench {

/// Prints the bench banner: which paper artifact this binary regenerates.
inline void Banner(const char* artifact, const char* claim) {
  std::printf("================================================================\n");
  std::printf("Reproduces: %s\n", artifact);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// One verification row: expected vs measured, with a PASS/FAIL verdict.
inline bool Check(const std::string& what, const std::string& expected,
                  const std::string& measured) {
  bool ok = expected == measured;
  std::printf("  %-52s expected=%-24s measured=%-24s [%s]\n", what.c_str(),
              expected.c_str(), measured.c_str(), ok ? "PASS" : "FAIL");
  return ok;
}

inline bool CheckCount(const std::string& what, uint64_t expected,
                       uint64_t measured) {
  return Check(what, std::to_string(expected), std::to_string(measured));
}

inline bool CheckIso(const std::string& what, const PropertyGraph& got,
                     const PropertyGraph& want) {
  std::string why;
  bool ok = AreIsomorphic(got, want, &why);
  std::printf("  %-52s isomorphic-to-figure=%s [%s]%s%s\n", what.c_str(),
              ok ? "yes" : "NO", ok ? "PASS" : "FAIL", ok ? "" : " -- ",
              ok ? "" : why.c_str());
  return ok;
}

/// Tracks overall verdict; returned from main.
class Verdict {
 public:
  void Note(bool ok) { ok_ = ok_ && ok; }
  int Finish() const {
    std::printf("----------------------------------------------------------------\n");
    std::printf("Shape verification: %s\n", ok_ ? "ALL PASS" : "FAILURES");
    std::printf("----------------------------------------------------------------\n");
    return ok_ ? 0 : 1;
  }

 private:
  bool ok_ = true;
};

inline EvalOptions LegacyOptions(ScanOrder order = ScanOrder::kForward,
                                 uint64_t seed = 0) {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  o.scan_order = order;
  o.shuffle_seed = seed;
  return o;
}

inline EvalOptions VariantOptions(MergeVariant variant) {
  EvalOptions o;
  o.plain_merge_variant = variant;
  return o;
}

}  // namespace cypher::bench

#endif  // CYPHER_BENCH_BENCH_UTIL_H_
