// Engineering bench: two-phase atomic SET (revised) vs immediate SET
// (legacy) as the touched-row count grows, plus REMOVE and label updates.
// Shape expectation: both are linear; the atomic version pays one extra
// pass (collect + conflict check) per clause.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::LegacyOptions;

void Populate(GraphDatabase* db, int64_t n) {
  ValueList ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(Value::Int(i));
  (void)db->Execute("UNWIND $ids AS i CREATE (:N {id: i, v: i})",
                    {{"ids", Value::List(std::move(ids))}});
}

void BM_SetProperty(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
  Populate(&db, state.range(0));
  int64_t round = 0;
  for (auto _ : state) {
    auto r = db.Execute("MATCH (n:N) SET n.v = n.id + $r",
                        {{"r", Value::Int(++round)}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_SetProperty)
    ->ArgsProduct({{128, 1024, 4096}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_MergeProps(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
  Populate(&db, state.range(0));
  for (auto _ : state) {
    auto r = db.Execute("MATCH (n:N) SET n += {tag: 'x', score: n.id}");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_MergeProps)->ArgsProduct({{1024}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_SetLabelsAndRemove(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
  Populate(&db, state.range(0));
  for (auto _ : state) {
    auto add = db.Execute("MATCH (n:N) SET n:Tagged");
    auto remove = db.Execute("MATCH (n:Tagged) REMOVE n:Tagged");
    if (!add.ok() || !remove.ok()) state.SkipWithError("update failed");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_SetLabelsAndRemove)->ArgsProduct({{1024}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// The price of atomicity itself: journaled mutations that commit vs roll
// back, exercised directly against the store.
void BM_JournalCommitVsRollback(benchmark::State& state) {
  bool rollback = state.range(1) != 0;
  int64_t n = state.range(0);
  PropertyGraph graph;
  Symbol label = graph.InternLabel("N");
  Symbol key = graph.InternKey("v");
  for (auto _ : state) {
    auto mark = graph.BeginJournal();
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      nodes.push_back(graph.CreateNode({label}, {}));
      graph.SetProperty(EntityRef::Node(nodes.back()), key, Value::Int(i));
    }
    for (int64_t i = 1; i < n; ++i) {
      benchmark::DoNotOptimize(
          graph.CreateRel(nodes[i - 1], nodes[i], graph.InternType("T"), {}));
    }
    if (rollback) {
      graph.RollbackTo(mark);
    } else {
      graph.CommitTo(mark);
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
  state.SetLabel(rollback ? "rollback" : "commit");
}
BENCHMARK(BM_JournalCommitVsRollback)
    ->ArgsProduct({{256, 2048}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  cypher::bench::Banner(
      "Engineering: SET/REMOVE throughput, atomic vs legacy",
      "the revised two-phase SET costs one extra linear pass over the "
      "collected writes (conflict detection), no asymptotic change");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
