// Reproduces the Section 4.2 DELETE anomalies: the zombie-update query that
// legacy Cypher accepts (returning an empty node) and revised Cypher
// rejects, plus the dangling-relationship commit check. Timings compare
// legacy immediate deletion with revised collect-validate-apply deletion.

#include "bench_util.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::CheckCount;
using bench::LegacyOptions;
using bench::Verdict;

constexpr char kAnomaly[] =
    "MATCH (user)-[order:ORDERED]->(product) "
    "DELETE user SET user.id = 999 DELETE order RETURN user";

int VerifyShapes() {
  Banner("Section 4.2 (DELETE atomicity violations)",
         "legacy: the query 'goes through without an error and returns an "
         "empty node'; revised: deleting a node with attached relationships "
         "in a clause that does not also delete them is an error");
  Verdict verdict;
  {
    GraphDatabase db(LegacyOptions());
    (void)db.Run(
        "CREATE (:User {id: 89, name: 'Bob'})-[:ORDERED]->(:Product)");
    auto r = db.Execute(kAnomaly);
    verdict.Note(Check("legacy anomaly query", "ok", r.ok() ? "ok" : "error"));
    std::string rendered =
        r.ok() ? RenderValue(db.graph(), r->rows[0][0]) : "?";
    verdict.Note(Check("legacy returns empty node", "()", rendered));
  }
  {
    GraphDatabase db;
    (void)db.Run("CREATE (:User {id: 89})-[:ORDERED]->(:Product)");
    auto r = db.Execute(kAnomaly);
    verdict.Note(Check("revised anomaly query", "error",
                       r.ok() ? "ok" : "error"));
    verdict.Note(CheckCount("revised graph untouched (nodes)", 2,
                            db.graph().num_nodes()));
  }
  {
    // Legacy commit-time dangling check: DELETE without cleaning up rels.
    GraphDatabase db(LegacyOptions());
    (void)db.Run("CREATE (:User)-[:ORDERED]->(:Product)");
    auto r = db.Execute("MATCH (u:User) DELETE u");
    verdict.Note(Check("legacy dangling at statement end", "error",
                       r.ok() ? "ok" : "error"));
    verdict.Note(CheckCount("legacy rollback restored node", 2,
                            db.graph().num_nodes()));
  }
  {
    // Revised null substitution.
    GraphDatabase db;
    (void)db.Run("CREATE (:User)-[:ORDERED]->(:Product)");
    auto r = db.Execute(
        "MATCH (u:User)-[o:ORDERED]->(p) DELETE o, u "
        "RETURN u AS gone, p AS kept");
    bool nulled = r.ok() && r->rows[0][0].is_null() && r->rows[0][1].is_node();
    verdict.Note(Check("revised nulls deleted refs in table", "yes",
                       nulled ? "yes" : "no"));
  }
  return verdict.Finish();
}

// ---- Timings --------------------------------------------------------------------

void BM_DetachDelete(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
    (void)workload::LoadRandomMarketplace(&db, n, n, n * 2, 11);
    state.ResumeTiming();
    auto r = db.Execute("MATCH (p:Product) DETACH DELETE p");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_DetachDelete)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_DeleteRelsThenNodes(benchmark::State& state) {
  bool legacy = state.range(1) != 0;
  int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(legacy ? LegacyOptions() : EvalOptions{});
    (void)workload::LoadRandomMarketplace(&db, n, n, n, 13);
    state.ResumeTiming();
    auto r = db.Execute(
        "MATCH (u:User)-[o:ORDERED]->(p:Product) DELETE o, u, p");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(legacy ? "legacy" : "revised-atomic");
}
BENCHMARK(BM_DeleteRelsThenNodes)->Args({128, 0})->Args({128, 1});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
