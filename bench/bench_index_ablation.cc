// Ablation bench (DESIGN.md design-choice): the (label, key) property index
// vs plain label scans for point lookups, joins, and MERGE match phases.
// Expected shape: indexed point lookups are O(1)-ish vs O(label size);
// results are identical (verified before timing).

#include "bench_util.h"
#include "value/compare.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::Check;
using bench::Verdict;

GraphDatabase MakeDb(bool indexed, int64_t n, uint64_t seed) {
  GraphDatabase db;
  if (indexed) {
    (void)db.Run("CREATE INDEX ON :User(id)");
    (void)db.Run("CREATE INDEX ON :Product(id)");
  }
  (void)workload::LoadRandomMarketplace(&db, n, n / 2 + 1, n * 2, seed);
  return db;
}

int VerifyShapes() {
  Banner("Ablation: property index vs label scan (engineering)",
         "identical MATCH/MERGE results; point lookups go from O(|label|) "
         "to O(1) expected");
  Verdict verdict;
  GraphDatabase plain = MakeDb(false, 64, 9);
  GraphDatabase indexed = MakeDb(true, 64, 9);
  const char* probes[] = {
      "MATCH (u:User {id: 7}) RETURN count(u) AS c",
      "MATCH (u:User {id: 7})-[:ORDERED]->(p) RETURN count(p) AS c",
      "MATCH (p:Product {id: 3})<-[:ORDERED]-(u:User) RETURN count(u) AS c",
  };
  for (const char* probe : probes) {
    auto a = plain.Execute(probe);
    auto b = indexed.Execute(probe);
    bool same = a.ok() && b.ok() &&
                GroupEquals(a->rows[0][0], b->rows[0][0]);
    verdict.Note(Check(probe, "same", same ? "same" : "DIFFERENT"));
  }
  return verdict.Finish();
}

void BM_PointLookup(benchmark::State& state) {
  bool indexed = state.range(1) != 0;
  int64_t n = state.range(0);
  GraphDatabase db = MakeDb(indexed, n, 10);
  int64_t probe = 0;
  for (auto _ : state) {
    auto r = db.Execute("MATCH (u:User {id: $id}) RETURN count(u) AS c",
                        {{"id", Value::Int(1 + (probe++ % n))}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(indexed ? "indexed" : "label-scan");
}
BENCHMARK(BM_PointLookup)
    ->ArgsProduct({{256, 2048, 8192}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_LookupJoin(benchmark::State& state) {
  bool indexed = state.range(1) != 0;
  int64_t n = state.range(0);
  GraphDatabase db = MakeDb(indexed, n, 11);
  ValueList ids;
  for (int64_t i = 1; i <= 64; ++i) ids.push_back(Value::Int(i % n + 1));
  Value id_list = Value::List(std::move(ids));
  for (auto _ : state) {
    auto r = db.Execute(
        "UNWIND $ids AS i MATCH (u:User {id: i})-[:ORDERED]->(p) "
        "RETURN count(p) AS c",
        {{"ids", id_list}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(indexed ? "indexed" : "label-scan");
}
BENCHMARK(BM_LookupJoin)
    ->ArgsProduct({{512, 4096}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_MergeMatchPhase(benchmark::State& state) {
  bool indexed = state.range(1) != 0;
  int64_t n = state.range(0);
  // Pre-populate with MERGE SAME, then re-merge: pure match-phase work.
  GraphDatabase db;
  if (indexed) {
    (void)db.Run("CREATE INDEX ON :User(id)");
    (void)db.Run("CREATE INDEX ON :Product(id)");
  }
  Value rows = workload::RandomOrderRows(n, n / 4 + 1, n / 4 + 1, 0, 12);
  {
    auto seeded = db.Execute(workload::Example5Query("MERGE SAME"),
                             {{"rows", rows}});
    if (!seeded.ok()) {
      state.SkipWithError(seeded.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = db.Execute(workload::Example5Query("MERGE SAME"),
                        {{"rows", rows}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(indexed ? "indexed" : "label-scan");
}
BENCHMARK(BM_MergeMatchPhase)
    ->ArgsProduct({{256, 1024}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
