// Engineering bench: what log-shipping replication costs.
//
//   catch-up      — a fresh follower bootstraps and drains an N-statement
//                   backlog in one attach/poll cycle: statements/second of
//                   the replay path (segment decode + ApplyRedoLog + one
//                   epoch publish per record)
//   steady state  — leader commits with a caught-up follower attached,
//                   pump + poll after every commit: the per-commit overhead
//                   of shipping (segment cut + CRC + apply) on top of the
//                   memory-WAL commit from bench_wal_commit
//
// The interesting ratios: catch-up items/second should sit well above the
// leader's own commit rate (replay skips parse/plan/match), and steady
// state / memory-WAL isolates the shipping tax, which should be small.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.h"
#include "replication/replica.h"
#include "replication/transport.h"
#include "storage/log_file.h"
#include "storage/wal.h"

namespace cypher {
namespace {

constexpr int64_t kNodes = 64;

void Seed(GraphDatabase* db) {
  std::string create = "CREATE ";
  for (int64_t i = 0; i < kNodes; ++i) {
    if (i > 0) create += ", ";
    create += "(:W {id: " + std::to_string(i) + ", v: 0})";
  }
  (void)db->Run(create);
}

std::string SetStmt(int64_t i) {
  return "MATCH (n:W {id: " + std::to_string(i % kNodes) +
         "}) SET n.v = " + std::to_string(i);
}

// A follower attaching to a leader that already has state.range(0)
// committed statements in its log: one iteration = bootstrap + drain to
// the leader's head. Items/second is replay throughput.
void BM_ReplicaCatchUp(benchmark::State& state) {
  const int64_t backlog = state.range(0);
  GraphDatabase leader;
  Seed(&leader);
  (void)leader.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  for (int64_t i = 0; i < backlog; ++i) {
    (void)leader.Run(SetStmt(i));
  }
  for (auto _ : state) {
    auto transport = std::make_shared<replication::InProcessTransport>();
    replication::Replica replica(transport);
    auto id = leader.AttachFollower(transport);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    auto applied = replica.PollOnce();
    if (!applied.ok() ||
        replica.applied_lsn() != leader.wal_writer()->appended_lsn()) {
      state.SkipWithError("follower did not catch up in one poll");
      return;
    }
    benchmark::DoNotOptimize(replica.applied_lsn());
    (void)leader.DetachFollower(*id);
  }
  state.SetLabel("backlog=" + std::to_string(backlog));
  state.SetItemsProcessed(state.iterations() * backlog);
}
BENCHMARK(BM_ReplicaCatchUp)
    ->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Steady state: a caught-up follower tails the leader commit by commit.
// Each iteration is one committed statement fully replicated (commit +
// auto-pump + poll), so comparing against BM_CommitMemoryWal isolates the
// shipping overhead per commit.
void BM_ReplicaSteadyStateLag(benchmark::State& state) {
  GraphDatabase leader;
  Seed(&leader);
  (void)leader.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  auto transport = std::make_shared<replication::InProcessTransport>();
  replication::Replica replica(transport);
  auto id = leader.AttachFollower(transport);
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  (void)replica.PollOnce();
  int64_t i = 0;
  uint64_t max_lag = 0;
  for (auto _ : state) {
    auto r = leader.Execute(SetStmt(i++));
    benchmark::DoNotOptimize(r);
    auto applied = replica.PollOnce();
    if (!applied.ok()) {
      state.SkipWithError(applied.status().ToString().c_str());
      return;
    }
    uint64_t lag =
        leader.wal_writer()->appended_lsn() - replica.applied_lsn();
    if (lag > max_lag) max_lag = lag;
    (void)leader.PumpReplication();  // deliver the ack
  }
  state.SetLabel("max_lag_bytes=" + std::to_string(max_lag));
  state.SetItemsProcessed(state.iterations());
  (void)leader.DetachFollower(*id);
}
BENCHMARK(BM_ReplicaSteadyStateLag)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

BENCHMARK_MAIN();
