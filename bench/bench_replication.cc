// Engineering bench: what log-shipping replication costs.
//
//   catch-up      — a fresh follower bootstraps and drains an N-statement
//                   backlog in one attach/poll cycle: statements/second of
//                   the replay path (segment decode + ApplyRedoLog + one
//                   epoch publish per record)
//   steady state  — leader commits with a caught-up follower attached,
//                   pump + poll after every commit: the per-commit overhead
//                   of shipping (segment cut + CRC + apply) on top of the
//                   memory-WAL commit from bench_wal_commit
//
// The interesting ratios: catch-up items/second should sit well above the
// leader's own commit rate (replay skips parse/plan/match), and steady
// state / memory-WAL isolates the shipping tax, which should be small.
//
// The socket variants run the same two shapes through a real
// SocketReplicationServer + SocketTransport over loopback TCP and a
// Unix-domain socket: the delta against the in-process rows is the wire tax
// (framing + CRC + syscalls + the server loop's scheduling quantum).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <memory>
#include <string>

#include "bench_util.h"
#include "replication/replica.h"
#include "replication/socket_transport.h"
#include "replication/transport.h"
#include "storage/log_file.h"
#include "storage/wal.h"

namespace cypher {
namespace {

constexpr int64_t kNodes = 64;

void Seed(GraphDatabase* db) {
  std::string create = "CREATE ";
  for (int64_t i = 0; i < kNodes; ++i) {
    if (i > 0) create += ", ";
    create += "(:W {id: " + std::to_string(i) + ", v: 0})";
  }
  (void)db->Run(create);
}

std::string SetStmt(int64_t i) {
  return "MATCH (n:W {id: " + std::to_string(i % kNodes) +
         "}) SET n.v = " + std::to_string(i);
}

// A follower attaching to a leader that already has state.range(0)
// committed statements in its log: one iteration = bootstrap + drain to
// the leader's head. Items/second is replay throughput.
void BM_ReplicaCatchUp(benchmark::State& state) {
  const int64_t backlog = state.range(0);
  GraphDatabase leader;
  Seed(&leader);
  (void)leader.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  for (int64_t i = 0; i < backlog; ++i) {
    (void)leader.Run(SetStmt(i));
  }
  for (auto _ : state) {
    auto transport = std::make_shared<replication::InProcessTransport>();
    replication::Replica replica(transport);
    auto id = leader.AttachFollower(transport);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    auto applied = replica.PollOnce();
    if (!applied.ok() ||
        replica.applied_lsn() != leader.wal_writer()->appended_lsn()) {
      state.SkipWithError("follower did not catch up in one poll");
      return;
    }
    benchmark::DoNotOptimize(replica.applied_lsn());
    (void)leader.DetachFollower(*id);
  }
  state.SetLabel("backlog=" + std::to_string(backlog));
  state.SetItemsProcessed(state.iterations() * backlog);
}
BENCHMARK(BM_ReplicaCatchUp)
    ->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Steady state: a caught-up follower tails the leader commit by commit.
// Each iteration is one committed statement fully replicated (commit +
// auto-pump + poll), so comparing against BM_CommitMemoryWal isolates the
// shipping overhead per commit.
void BM_ReplicaSteadyStateLag(benchmark::State& state) {
  GraphDatabase leader;
  Seed(&leader);
  (void)leader.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  auto transport = std::make_shared<replication::InProcessTransport>();
  replication::Replica replica(transport);
  auto id = leader.AttachFollower(transport);
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  (void)replica.PollOnce();
  int64_t i = 0;
  uint64_t max_lag = 0;
  for (auto _ : state) {
    auto r = leader.Execute(SetStmt(i++));
    benchmark::DoNotOptimize(r);
    auto applied = replica.PollOnce();
    if (!applied.ok()) {
      state.SkipWithError(applied.status().ToString().c_str());
      return;
    }
    uint64_t lag =
        leader.wal_writer()->appended_lsn() - replica.applied_lsn();
    if (lag > max_lag) max_lag = lag;
    (void)leader.PumpReplication();  // deliver the ack
  }
  state.SetLabel("max_lag_bytes=" + std::to_string(max_lag));
  state.SetItemsProcessed(state.iterations());
  (void)leader.DetachFollower(*id);
}
BENCHMARK(BM_ReplicaSteadyStateLag)->Unit(benchmark::kMicrosecond);

// ---- Socket variants -------------------------------------------------------

replication::Endpoint BenchEndpoint(bool unix_domain) {
  if (unix_domain) {
    return replication::Endpoint::Unix("/tmp/cypher_bench_repl.sock");
  }
  return replication::Endpoint::Tcp("127.0.0.1", 0);
}

// Catch-up through a real socket: per iteration a fresh follower dials,
// bootstraps, and drains the backlog. Includes connect + hello + snapshot
// transfer, so the items/second gap to BM_ReplicaCatchUp is the whole wire
// path.
void SocketCatchUpBench(benchmark::State& state, bool unix_domain) {
  const int64_t backlog = state.range(0);
  GraphDatabase leader;
  Seed(&leader);
  (void)leader.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  for (int64_t i = 0; i < backlog; ++i) {
    (void)leader.Run(SetStmt(i));
  }
  replication::SocketReplicationServer server;
  auto started = server.Start(&leader, BenchEndpoint(unix_domain),
                              ReplicationOptions{}, {});
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto transport = std::make_shared<replication::SocketTransport>(
        server.endpoint(), replication::SocketOptions{});
    replication::Replica replica(transport);
    transport->SetHelloSource([&replica] {
      return std::make_pair(replica.token(), replica.applied_lsn());
    });
    int64_t deadline = replication::SteadyNowMs() + 30000;
    while (replica.applied_lsn() != leader.wal_writer()->appended_lsn() &&
           replication::SteadyNowMs() < deadline) {
      auto applied = replica.PollOnce();
      if (!applied.ok()) {
        state.SkipWithError(applied.status().ToString().c_str());
        return;
      }
      transport->Pump();
    }
    if (replica.applied_lsn() != leader.wal_writer()->appended_lsn()) {
      state.SkipWithError("socket follower never caught up");
      return;
    }
    benchmark::DoNotOptimize(replica.applied_lsn());
    transport->Close();
    // Release the follower's pin before the next iteration attaches anew.
    state.PauseTiming();
    for (const auto& f : leader.replication_status().detail) {
      (void)leader.DetachFollower(f.id);
    }
    state.ResumeTiming();
  }
  server.Stop();
  state.SetLabel("backlog=" + std::to_string(backlog));
  state.SetItemsProcessed(state.iterations() * backlog);
}

void BM_SocketReplicaCatchUpTcp(benchmark::State& state) {
  SocketCatchUpBench(state, false);
}
void BM_SocketReplicaCatchUpUnix(benchmark::State& state) {
  SocketCatchUpBench(state, true);
}
BENCHMARK(BM_SocketReplicaCatchUpTcp)
    ->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SocketReplicaCatchUpUnix)
    ->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Steady state through the socket: one commit, then wait for the follower
// to apply it. Per-commit latency includes the server loop's tick, so this
// is replication LATENCY over loopback, not raw throughput.
void SocketSteadyStateBench(benchmark::State& state, bool unix_domain) {
  GraphDatabase leader;
  Seed(&leader);
  (void)leader.OpenDurable(std::make_unique<storage::MemoryLogFile>());
  replication::SocketReplicationServer server;
  auto started = server.Start(&leader, BenchEndpoint(unix_domain),
                              ReplicationOptions{}, {});
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  auto transport = std::make_shared<replication::SocketTransport>(
      server.endpoint(), replication::SocketOptions{});
  replication::Replica replica(transport);
  transport->SetHelloSource([&replica] {
    return std::make_pair(replica.token(), replica.applied_lsn());
  });
  int64_t warmup = replication::SteadyNowMs() + 30000;
  while (!replica.bootstrapped() && replication::SteadyNowMs() < warmup) {
    (void)replica.PollOnce();
    transport->Pump();
    usleep(1000);
  }
  if (!replica.bootstrapped()) {
    state.SkipWithError("socket follower never bootstrapped");
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto r = leader.Execute(SetStmt(i++));
    benchmark::DoNotOptimize(r);
    int64_t deadline = replication::SteadyNowMs() + 30000;
    while (replica.applied_lsn() != leader.wal_writer()->appended_lsn() &&
           replication::SteadyNowMs() < deadline) {
      auto applied = replica.PollOnce();
      if (!applied.ok()) {
        state.SkipWithError(applied.status().ToString().c_str());
        return;
      }
      transport->Pump();
    }
  }
  state.SetItemsProcessed(state.iterations());
  transport->Close();
  server.Stop();
}

void BM_SocketReplicaSteadyStateTcp(benchmark::State& state) {
  SocketSteadyStateBench(state, false);
}
void BM_SocketReplicaSteadyStateUnix(benchmark::State& state) {
  SocketSteadyStateBench(state, true);
}
BENCHMARK(BM_SocketReplicaSteadyStateTcp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SocketReplicaSteadyStateUnix)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cypher

BENCHMARK_MAIN();
