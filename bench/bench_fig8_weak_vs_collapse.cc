// Reproduces Example 6 / Figure 8 (Section 6): user-to-user sales where the
// same user id appears at two different pattern positions. Weak Collapse
// keeps the duplicate :User{id:98} (Fig 8a, 6 nodes); Collapse and Strong
// Collapse merge it across positions (Fig 8b, 5 nodes). Timings sweep a
// synthetic buyer/seller table where the buyer and seller pools overlap.

#include "bench_util.h"
#include "common/random.h"

namespace cypher {
namespace {

using bench::Banner;
using bench::CheckCount;
using bench::CheckIso;
using bench::VariantOptions;
using bench::Verdict;

PropertyGraph RunExample6(MergeVariant variant) {
  GraphDatabase db(VariantOptions(variant));
  auto r = db.Execute(workload::Example6Query("MERGE"),
                      {{"rows", workload::Example6Rows()}});
  if (!r.ok()) std::printf("  ERROR: %s\n", r.status().ToString().c_str());
  return db.graph();
}

int VerifyShapes() {
  Banner("Example 6 / Figure 8, Section 6",
         "Weak Collapse keeps two :User{id:98} nodes (8a, 6 nodes); "
         "Collapse and Strong Collapse combine them (8b, 5 nodes)");
  Verdict verdict;
  GraphDatabase expected_a;
  (void)expected_a.Run(
      "CREATE (:User {id: 98})-[:ORDERED]->(p125:Product {id: 125}), "
      "(:User {id: 97})-[:OFFERS]->(p125)");
  (void)expected_a.Run(
      "CREATE (:User {id: 99})-[:ORDERED]->(p85:Product {id: 85}), "
      "(:User {id: 98})-[:OFFERS]->(p85)");
  GraphDatabase expected_b;
  (void)expected_b.Run(
      "CREATE (u98:User {id: 98}), (u99:User {id: 99}), "
      "(u97:User {id: 97}), (p125:Product {id: 125}), "
      "(p85:Product {id: 85}), "
      "(u98)-[:ORDERED]->(p125), (u97)-[:OFFERS]->(p125), "
      "(u99)-[:ORDERED]->(p85), (u98)-[:OFFERS]->(p85)");

  for (MergeVariant variant :
       {MergeVariant::kAtomic, MergeVariant::kGrouping,
        MergeVariant::kWeakCollapse}) {
    verdict.Note(CheckIso(std::string(MergeVariantName(variant)) +
                              " -> Figure 8a",
                          RunExample6(variant), expected_a.graph()));
  }
  for (MergeVariant variant :
       {MergeVariant::kCollapse, MergeVariant::kStrongCollapse}) {
    verdict.Note(CheckIso(std::string(MergeVariantName(variant)) +
                              " -> Figure 8b",
                          RunExample6(variant), expected_b.graph()));
  }
  verdict.Note(
      CheckCount("Weak Collapse node count", 6,
                 RunExample6(MergeVariant::kWeakCollapse).num_nodes()));
  verdict.Note(CheckCount("Collapse node count", 5,
                          RunExample6(MergeVariant::kCollapse).num_nodes()));
  return verdict.Finish();
}

// ---- Timings: overlapping buyer/seller pools -------------------------------------

Value SalesRows(size_t n, int64_t pool, uint64_t seed) {
  SplitMix64 rng(seed);
  ValueList rows;
  for (size_t i = 0; i < n; ++i) {
    ValueMap map;
    map.emplace("bid", Value::Int(rng.NextInRange(1, pool)));
    map.emplace("pid", Value::Int(rng.NextInRange(1, pool * 2)));
    map.emplace("sid", Value::Int(rng.NextInRange(1, pool)));
    rows.push_back(Value::Map(std::move(map)));
  }
  return Value::List(std::move(rows));
}

void BM_UserToUserSales(benchmark::State& state) {
  int64_t n = state.range(0);
  auto variant = static_cast<MergeVariant>(state.range(1));
  Value rows = SalesRows(n, n / 8 + 2, 31);
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db(VariantOptions(variant));
    state.ResumeTiming();
    auto r = db.Execute(workload::Example6Query("MERGE"), {{"rows", rows}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(MergeVariantName(variant));
}
BENCHMARK(BM_UserToUserSales)
    ->ArgsProduct({{128},
                   {static_cast<long>(MergeVariant::kWeakCollapse),
                    static_cast<long>(MergeVariant::kCollapse),
                    static_cast<long>(MergeVariant::kStrongCollapse)}});

}  // namespace
}  // namespace cypher

int main(int argc, char** argv) {
  int verdict = cypher::VerifyShapes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return verdict;
}
