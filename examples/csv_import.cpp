// CSV import: the workflow that motivates MERGE in the paper (Sections 3
// and 6) — "populate a graph based on a table that has been produced by
// importing from a relational database or a CSV file".
//
// Parses an orders CSV (with duplicate rows and missing product ids, like
// Example 5), converts it to a driving table, and loads it three ways:
//   1. legacy MERGE          (nondeterministic, duplicates under reorder)
//   2. MERGE ALL             (atomic, keeps every row's copy)
//   3. MERGE SAME            (atomic + collapsed: the clean import)
//
//   ./csv_import

#include <cstdio>

#include "common/csv.h"
#include "cypher/database.h"
#include "exec/render.h"
#include "graph/serialize.h"

using cypher::CsvDocument;
using cypher::EvalOptions;
using cypher::GraphDatabase;
using cypher::ParseCsv;
using cypher::ScanOrder;
using cypher::SemanticsMode;
using cypher::Value;
using cypher::ValueList;
using cypher::ValueMap;

namespace {

constexpr char kOrdersCsv[] =
    "cid,pid,date\n"
    "98,125,2018-06-23\n"
    "98,125,2018-07-06\n"
    "98,,\n"
    "98,,\n"
    "99,125,2018-03-11\n"
    "99,,\n"
    "97,85,2019-01-15\n"
    "97,85,2019-01-15\n";

/// Converts CSV fields to a list of row maps; empty fields become null,
/// numeric fields become integers.
Value RowsFromCsv(const CsvDocument& doc) {
  ValueList rows;
  for (const auto& record : doc.rows) {
    ValueMap row;
    for (size_t i = 0; i < doc.header.size(); ++i) {
      const std::string& field = record[i];
      if (field.empty()) {
        row.emplace(doc.header[i], Value::Null());
        continue;
      }
      char* end = nullptr;
      long long as_int = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() + field.size()) {
        row.emplace(doc.header[i], Value::Int(as_int));
      } else {
        row.emplace(doc.header[i], Value::String(field));
      }
    }
    rows.push_back(Value::Map(std::move(row)));
  }
  return Value::List(std::move(rows));
}

constexpr char kImportQuery[] =
    "UNWIND $rows AS row "
    "WITH row.cid AS cid, row.pid AS pid "
    "MERGE %s (:User {id: cid})-[:ORDERED]->(:Product {id: pid})";

void Import(const char* label, const char* keyword, const Value& rows,
            const EvalOptions& options) {
  GraphDatabase db(options);
  char query[512];
  std::snprintf(query, sizeof(query), kImportQuery, keyword);
  auto result = db.Execute(query, {{"rows", rows}});
  if (!result.ok()) {
    std::printf("%-28s -> %s\n", label, result.status().ToString().c_str());
    return;
  }
  std::printf("%-28s -> %2zu nodes, %2zu relationships   (%s)\n", label,
              db.graph().num_nodes(), db.graph().num_rels(),
              result->stats.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== CSV import with MERGE (Example 5 workflow) ===\n\n");
  std::printf("orders.csv:\n%s\n", kOrdersCsv);

  auto doc = ParseCsv(kOrdersCsv);
  if (!doc.ok()) {
    std::printf("CSV error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  Value rows = RowsFromCsv(*doc);
  std::printf("parsed %zu data rows\n\n", doc->rows.size());

  EvalOptions legacy_fwd;
  legacy_fwd.semantics = SemanticsMode::kLegacy;
  Import("legacy MERGE (top-down)", "", rows, legacy_fwd);

  EvalOptions legacy_rev = legacy_fwd;
  legacy_rev.scan_order = ScanOrder::kReverse;
  Import("legacy MERGE (bottom-up)", "", rows, legacy_rev);

  Import("MERGE ALL", "ALL", rows, EvalOptions{});
  Import("MERGE SAME", "SAME", rows, EvalOptions{});

  std::printf(
      "\nMERGE SAME is the one you want for imports: one node per user, one "
      "per product\n(including a single 'unknown product' node for the null "
      "pids), one relationship\nper distinct order pair — independent of row "
      "order.\n\n");

  // Show the clean graph, then prove idempotence by re-importing.
  GraphDatabase db;
  char query[512];
  std::snprintf(query, sizeof(query), kImportQuery, "SAME");
  (void)db.Execute(query, {{"rows", rows}});
  std::printf("clean import, serialized:\n%s\n",
              DumpGraph(db.graph()).c_str());

  auto again = db.Execute(query, {{"rows", rows}});
  if (again.ok()) {
    std::printf(
        "re-importing the same file: %s\n"
        "(rows with a real pid matched and created nothing; the null-pid "
        "rows\n can never match — `{id: null}` is no filter match in Cypher "
        "— so they\n create a fresh 'unknown product' once per import, as "
        "the paper's\n Example 5 semantics prescribes)\n",
        again->stats.ToString().c_str());
  }

  auto report = db.Execute(
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN u.id AS user, count(p) AS orders, "
      "collect(coalesce(p.id, 'unknown')) AS products "
      "ORDER BY user");
  if (report.ok()) {
    std::printf("\nper-user order report:\n%s",
                RenderResult(db.graph(), *report).c_str());
  }
  return 0;
}
