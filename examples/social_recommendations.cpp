// A larger application on the public API: an online-marketplace analytics
// and curation workload (the domain of the paper's running example).
//
//  * bulk-loads a randomized users/products/orders graph,
//  * computes "customers also bought" recommendations with aggregation,
//  * materializes them as :ALSO_BOUGHT edges using MERGE SAME (idempotent),
//  * runs maintenance updates (atomic SET, DETACH DELETE of stale data).
//
//   ./social_recommendations [seed]

#include <cstdio>
#include <cstdlib>

#include "cypher/database.h"
#include "exec/render.h"
#include "workload/workloads.h"

using cypher::GraphDatabase;
using cypher::Value;

namespace {

void ShowOrDie(GraphDatabase* db, const char* title, const std::string& query,
               const cypher::ValueMap& params = {}) {
  std::printf("\n-- %s\n", title);
  auto result = db->Execute(query, params);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s", RenderResult(db->graph(), *result).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2019;
  std::printf("=== Marketplace analytics (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));

  GraphDatabase db;
  if (auto st = cypher::workload::LoadRandomMarketplace(&db, 40, 15, 160, seed);
      !st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu relationships\n", db.graph().num_nodes(),
              db.graph().num_rels());

  ShowOrDie(&db, "top products by distinct buyers",
            "MATCH (u:User)-[:ORDERED]->(p:Product) "
            "RETURN p.id AS product, count(DISTINCT u) AS buyers "
            "ORDER BY buyers DESC, product LIMIT 5");

  ShowOrDie(&db, "co-purchase pairs (customers also bought)",
            "MATCH (a:Product)<-[:ORDERED]-(u:User)-[:ORDERED]->(b:Product) "
            "WHERE a.id < b.id "
            "RETURN a.id AS left, b.id AS right, count(u) AS strength "
            "ORDER BY strength DESC, left, right LIMIT 8");

  std::printf("\n-- materializing :ALSO_BOUGHT edges with MERGE SAME\n");
  auto materialize = db.Execute(
      "MATCH (a:Product)<-[:ORDERED]-(u:User)-[:ORDERED]->(b:Product) "
      "WHERE a.id < b.id "
      "WITH a, b, count(u) AS strength WHERE strength >= 2 "
      "MERGE SAME (a)-[:ALSO_BOUGHT]->(b)");
  if (!materialize.ok()) {
    std::printf("error: %s\n", materialize.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", materialize->stats.ToString().c_str());
  auto again = db.Execute(
      "MATCH (a:Product)<-[:ORDERED]-(u:User)-[:ORDERED]->(b:Product) "
      "WHERE a.id < b.id "
      "WITH a, b, count(u) AS strength WHERE strength >= 2 "
      "MERGE SAME (a)-[:ALSO_BOUGHT]->(b)");
  std::printf("running it again: %s (idempotent)\n",
              again.ok() ? again->stats.ToString().c_str() : "error");

  ShowOrDie(&db, "recommendations for one user",
            "MATCH (u:User {id: 1})-[:ORDERED]->(:Product)"
            "-[:ALSO_BOUGHT]-(rec:Product) "
            "RETURN DISTINCT rec.id AS recommended ORDER BY recommended "
            "LIMIT 5");

  std::printf("\n-- maintenance: atomic price update + popularity labels\n");
  auto price = db.Execute(
      "MATCH (p:Product) SET p.price = 10 + p.id * 3, p.currency = 'EUR'");
  std::printf("price update: %s\n",
              price.ok() ? price->stats.ToString().c_str() : "error");
  auto labels = db.Execute(
      "MATCH (p:Product)<-[:ORDERED]-(u:User) "
      "WITH p, count(u) AS n WHERE n >= 10 SET p:Bestseller");
  std::printf("bestseller labels: %s\n",
              labels.ok() ? labels->stats.ToString().c_str() : "error");

  ShowOrDie(&db, "bestsellers",
            "MATCH (p:Bestseller) RETURN p.id AS id, p.price AS price "
            "ORDER BY id");

  std::printf("\n-- retire products nobody ordered (DETACH DELETE)\n");
  auto stale = db.Execute(
      "MATCH (p:Product) OPTIONAL MATCH (p)<-[o:ORDERED]-() "
      "WITH p, count(o) AS orders WHERE orders = 0 "
      "DETACH DELETE p");
  std::printf("retired: %s\n",
              stale.ok() ? stale->stats.ToString().c_str()
                         : stale.status().ToString().c_str());

  std::printf("\nfinal graph: %zu nodes, %zu relationships\n",
              db.graph().num_nodes(), db.graph().num_rels());
  return 0;
}
