// Query toolbox: the engine's "power user" features on one dataset —
// indexes with EXPLAIN/PROFILE, uniqueness constraints, CALL subqueries,
// shortestPath, list comprehensions and map projections.
//
//   ./query_toolbox

#include <cstdio>

#include "cypher/database.h"
#include "exec/render.h"
#include "workload/workloads.h"

using cypher::GraphDatabase;

namespace {

void Show(GraphDatabase* db, const char* title, const std::string& query) {
  std::printf("\n-- %s\n%s\n", title, query.c_str());
  auto result = db->Execute(query);
  if (!result.ok()) {
    std::printf("   => %s\n", result.status().ToString().c_str());
    return;
  }
  std::string rendered = RenderResult(db->graph(), *result);
  std::printf("%s", rendered.empty() ? "OK\n" : rendered.c_str());
}

}  // namespace

int main() {
  std::printf("=== Query toolbox ===\n");
  GraphDatabase db;
  if (auto st = cypher::workload::LoadRandomMarketplace(&db, 30, 12, 90, 7);
      !st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu relationships\n", db.graph().num_nodes(),
              db.graph().num_rels());

  Show(&db, "uniqueness constraint guards the id space",
       "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE");
  Show(&db, "a duplicate id is rejected and rolled back",
       "CREATE (:User {id: 1})");

  Show(&db, "before indexing: EXPLAIN shows a label scan",
       "EXPLAIN MATCH (u:User {id: 7}) RETURN u");
  Show(&db, "create the index", "CREATE INDEX ON :User(id)");
  Show(&db, "after indexing: EXPLAIN shows the index",
       "EXPLAIN MATCH (u:User {id: 7}) RETURN u");

  Show(&db, "PROFILE: per-clause cardinalities",
       "PROFILE MATCH (u:User)-[:ORDERED]->(p:Product) "
       "WHERE p.id < 5 RETURN u.id AS u, p.id AS p");

  Show(&db, "CALL subquery: per-user spend summary",
       "MATCH (u:User) WHERE u.id <= 4 "
       "CALL { MATCH (u)-[:ORDERED]->(p) "
       "RETURN count(p) AS orders, collect(p.id) AS products } "
       "RETURN u.id AS user, orders, products ORDER BY user");

  Show(&db, "map projection: shaped API responses",
       "MATCH (u:User {id: 1}) "
       "RETURN u {.id, kind: 'customer', "
       "active: exists((u)-[:ORDERED]->())} AS payload");

  Show(&db, "shortestPath: degrees of separation via co-purchases",
       "MATCH (a:User {id: 1}), (b:User {id: 2}) "
       "OPTIONAL MATCH p = shortestPath((a)-[:ORDERED*]-(b)) "
       "RETURN CASE WHEN p IS NULL THEN -1 "
       "ELSE length(p) / 2 END AS hops_via_products");

  Show(&db, "list comprehension + reduce: order statistics",
       "MATCH (u:User)-[:ORDERED]->(p) "
       "WITH u, collect(p.id) AS pids WHERE size(pids) >= 3 "
       "RETURN u.id AS user, "
       "reduce(s = 0, x IN pids | s + x) AS id_sum, "
       "[x IN pids WHERE x % 2 = 0] AS even_ids "
       "ORDER BY user LIMIT 5");

  std::printf("\ndone.\n");
  return 0;
}
