// replica_server — a follower process.
//
// Dials a leader's replication endpoint, bootstraps (or resumes from its
// own durable WAL), tails the statement stream, and serves snapshot reads
// while doing so. Driven over stdin by a tiny line protocol so the
// multi-process fault-injection harness (tests/socket_replication_test.cc)
// can interrogate and kill it at will:
//
//   usage: replica_server <endpoint> <wal-path> <meta-path>
//
//   stdin commands (one per line):
//     DUMP           -> canonical graph dump at the applied position
//     LSN            -> "<applied_lsn> <bootstraps> <statements>"
//     TOKEN          -> the follower's identity token
//     EXEC <query>   -> run a read-only statement in a snapshot session,
//                       reply with its rendered table
//     PROMOTE        -> seal the replica, promote to a durable leader over
//                       its own WAL, reply "promoted <statements>"; later
//                       EXEC statements (writes included) run on the new
//                       leader
//     QUIT           -> exit 0
//
//   every reply is length-prefixed:  "#<nbytes>\n" then exactly nbytes of
//   payload — unambiguous over a pipe even when a dump contains newlines.
//
// The applier loop runs on the main thread between commands (stdin is
// polled non-blockingly), so a `kill -9` can land at any point of apply,
// sync, or ack — exactly what the harness wants to exercise.

#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "cypher/database.h"
#include "exec/render.h"
#include "graph/serialize.h"
#include "replication/replica.h"
#include "replication/socket_transport.h"
#include "storage/log_file.h"

namespace {

using cypher::GraphDatabase;
using cypher::Result;
using cypher::replication::Endpoint;
using cypher::replication::Replica;
using cypher::replication::ReplicaDurability;
using cypher::replication::SocketTransport;

void Reply(const std::string& payload) {
  std::printf("#%zu\n", payload.size());
  std::fwrite(payload.data(), 1, payload.size(), stdout);
  std::fflush(stdout);
}

bool StdinReadable() {
  pollfd pfd{STDIN_FILENO, POLLIN, 0};
  return ::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: replica_server <endpoint> <wal-path> <meta-path>\n");
    return 2;
  }
  auto endpoint = Endpoint::Parse(argv[1]);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "%s\n", endpoint.status().message().c_str());
    return 2;
  }
  auto wal = cypher::storage::OpenPosixLogFile(argv[2]);
  auto meta = cypher::storage::OpenPosixLogFile(argv[3]);
  if (!wal.ok() || !meta.ok()) {
    std::fprintf(stderr, "cannot open follower log files\n");
    return 2;
  }

  auto transport = std::make_shared<SocketTransport>(*endpoint);
  ReplicaDurability durability;
  durability.wal = std::move(*wal);
  durability.meta = std::move(*meta);
  auto replica_or =
      Replica::Open(transport, std::move(durability), cypher::EvalOptions{});
  if (!replica_or.ok()) {
    std::fprintf(stderr, "replica open failed: %s\n",
                 replica_or.status().message().c_str());
    return 2;
  }
  std::unique_ptr<Replica> replica = std::move(*replica_or);
  // The hello each (re)connect sends: who we are, where our durable stream
  // stands. Recovery already set both when this is a restart.
  Replica* replica_ptr = replica.get();
  transport->SetHelloSource([replica_ptr] {
    return std::make_pair(replica_ptr->token(), replica_ptr->applied_lsn());
  });

  std::unique_ptr<GraphDatabase> promoted;  // set by PROMOTE
  std::string line;
  while (true) {
    if (promoted == nullptr) {
      auto polled = replica->PollOnce();
      (void)polled;  // transport hiccups are the reconnect machinery's job
      transport->Pump();  // keep heartbeats flowing when the stream is idle
    }
    if (!StdinReadable()) {
      usleep(2000);
      continue;
    }
    if (!std::getline(std::cin, line)) break;  // harness closed the pipe
    if (line == "QUIT") break;
    if (line == "DUMP") {
      Reply(promoted ? cypher::DumpGraphCanonical(promoted->graph())
                     : replica->CanonicalDump());
    } else if (line == "LSN") {
      Reply(std::to_string(replica->applied_lsn()) + " " +
            std::to_string(replica->bootstraps()) + " " +
            std::to_string(replica->statements_applied()));
    } else if (line == "TOKEN") {
      Reply(std::to_string(replica->token()));
    } else if (line == "PROMOTE") {
      auto leader = replica->PromoteToLeader();
      if (!leader.ok()) {
        Reply("error: " + leader.status().message());
      } else {
        promoted = std::make_unique<GraphDatabase>(std::move(*leader));
        Reply("promoted " + std::to_string(replica->statements_applied()));
      }
    } else if (line.rfind("EXEC ", 0) == 0) {
      std::string query = line.substr(5);
      if (promoted != nullptr) {
        auto result = promoted->Execute(query);
        Reply(result.ok()
                  ? cypher::RenderResult(promoted->graph(), *result)
                  : "error: " + result.status().message());
      } else {
        auto session = replica->BeginReadSession();
        if (!session.ok()) {
          Reply("error: " + session.status().message());
        } else {
          auto rendered = session->ExecuteRendered(query);
          Reply(rendered.ok() ? *rendered
                              : "error: " + rendered.status().message());
        }
      }
    } else {
      Reply("error: unknown command: " + line);
    }
  }
  return 0;
}
