// A guided tour through every problem and fix in the paper:
// Examples 1-7 and Figures 6-9, executed live against the engine with both
// semantics. This is the executable companion to Sections 4, 6 and 7.
//
//   ./merge_semantics_tour

#include <cstdio>

#include "cypher/database.h"
#include "exec/render.h"
#include "graph/serialize.h"
#include "workload/workloads.h"

using cypher::EvalOptions;
using cypher::GraphDatabase;
using cypher::MergeVariant;
using cypher::MergeVariantName;
using cypher::ScanOrder;
using cypher::SemanticsMode;
using cypher::Value;

namespace {

EvalOptions Legacy(ScanOrder order = ScanOrder::kForward) {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  o.scan_order = order;
  return o;
}

void Section(const char* title) {
  std::printf("\n==================================================\n%s\n"
              "==================================================\n",
              title);
}

void ShowGraph(const GraphDatabase& db, const char* label) {
  std::printf("%s: %zu nodes, %zu relationships\n", label,
              db.graph().num_nodes(), db.graph().num_rels());
}

}  // namespace

int main() {
  namespace wl = cypher::workload;

  Section("Example 1 (Section 4.1): the SET id swap");
  {
    const char* swap =
        "MATCH (a:Product {name: 'laptop'}), (b:Product {name: 'tablet'}) "
        "SET a.id = b.id, b.id = a.id";
    for (bool legacy : {true, false}) {
      GraphDatabase db(legacy ? Legacy() : EvalOptions{});
      (void)db.Run("CREATE (:Product {name: 'laptop', id: 85}), "
                   "(:Product {name: 'tablet', id: 125})");
      (void)db.Execute(swap);
      auto ids =
          db.Execute("MATCH (p:Product) RETURN p.name AS n, p.id AS id "
                     "ORDER BY n");
      std::printf("%s semantics: laptop.id=%s tablet.id=%s %s\n",
                  legacy ? "legacy " : "revised",
                  ids->rows[0][1].ToString().c_str(),
                  ids->rows[1][1].ToString().c_str(),
                  legacy ? "(the swap silently failed!)" : "(swapped)");
    }
  }

  Section("Example 2 (Section 4.1): ambiguous SET on dirty data");
  {
    for (bool legacy : {true, false}) {
      GraphDatabase db(legacy ? Legacy() : EvalOptions{});
      (void)db.Run("CREATE (:Product {id: 125, name: 'laptop'}), "
                   "(:Product {id: 125, name: 'notebook'}), "
                   "(:Product {id: 85, name: 'tablet'})");
      auto r = db.Execute(
          "MATCH (p1:Product {id: 85}), (p2:Product {id: 125}) "
          "SET p1.name = p2.name");
      std::printf("%s semantics: %s\n", legacy ? "legacy " : "revised",
                  r.ok() ? "went through (picked an arbitrary name)"
                         : r.status().ToString().c_str());
    }
  }

  Section("Section 4.2: updating a deleted node");
  {
    const char* anomaly =
        "MATCH (user)-[order:ORDERED]->(product) "
        "DELETE user SET user.id = 999 DELETE order RETURN user";
    for (bool legacy : {true, false}) {
      GraphDatabase db(legacy ? Legacy() : EvalOptions{});
      (void)db.Run("CREATE (:User {id: 89, name: 'Bob'})"
                   "-[:ORDERED]->(:Product {id: 125})");
      auto r = db.Execute(anomaly);
      if (r.ok()) {
        std::printf("%s semantics: returned %s  <- the 'empty node'\n",
                    legacy ? "legacy " : "revised",
                    RenderValue(db.graph(), r->rows[0][0]).c_str());
      } else {
        std::printf("%s semantics: %s\n", legacy ? "legacy " : "revised",
                    r.status().ToString().c_str());
      }
    }
  }

  Section("Example 3 / Figure 6: legacy MERGE is order-dependent");
  {
    for (ScanOrder order : {ScanOrder::kForward, ScanOrder::kReverse}) {
      GraphDatabase db(Legacy(order));
      (void)db.Run(wl::Example3SetupScript());
      (void)db.Execute(wl::Example3Query("MERGE"),
                       {{"rows", wl::Example3Rows()}});
      ShowGraph(db, order == ScanOrder::kForward
                        ? "top-down scan  (Figure 6b)"
                        : "bottom-up scan (Figure 6a)");
    }
    for (const char* keyword : {"MERGE ALL", "MERGE SAME"}) {
      GraphDatabase db;
      (void)db.Run(wl::Example3SetupScript());
      (void)db.Execute(wl::Example3Query(keyword),
                       {{"rows", wl::Example3Rows()}});
      std::printf("%-14s : %zu relationships (always)\n", keyword,
                  db.graph().num_rels());
    }
  }

  Section("Example 5 / Figure 7: the five proposed MERGE semantics");
  {
    std::printf("driving table: 6 order rows, duplicates and nulls included\n");
    for (MergeVariant variant :
         {MergeVariant::kAtomic, MergeVariant::kGrouping,
          MergeVariant::kWeakCollapse, MergeVariant::kCollapse,
          MergeVariant::kStrongCollapse}) {
      EvalOptions options;
      options.plain_merge_variant = variant;
      GraphDatabase db(options);
      (void)db.Execute(wl::Example5Query("MERGE"),
                       {{"rows", wl::Example5Rows()}});
      std::printf("%-15s -> %2zu nodes, %zu rels\n", MergeVariantName(variant),
                  db.graph().num_nodes(), db.graph().num_rels());
    }
    std::printf("(paper: Atomic 12/6 = Fig 7a, Grouping 8/4 = Fig 7b, "
                "collapses 4/4 = Fig 7c)\n");
  }

  Section("Example 6 / Figure 8: Weak Collapse vs Collapse");
  {
    for (MergeVariant variant :
         {MergeVariant::kWeakCollapse, MergeVariant::kCollapse}) {
      EvalOptions options;
      options.plain_merge_variant = variant;
      GraphDatabase db(options);
      (void)db.Execute(wl::Example6Query("MERGE"),
                       {{"rows", wl::Example6Rows()}});
      std::printf("%-15s -> %zu nodes  %s\n", MergeVariantName(variant),
                  db.graph().num_nodes(),
                  variant == MergeVariant::kWeakCollapse
                      ? "(two :User{id:98} nodes, Fig 8a)"
                      : "(user 98 unified across positions, Fig 8b)");
    }
  }

  Section("Example 7 / Figure 9: Strong Collapse and re-matching");
  {
    for (MergeVariant variant :
         {MergeVariant::kCollapse, MergeVariant::kStrongCollapse}) {
      EvalOptions options;
      options.plain_merge_variant = variant;
      GraphDatabase db(options);
      (void)db.Run(wl::Example7SetupScript());
      (void)db.Execute(wl::Example7Query("MERGE"));
      auto trail = db.Execute(wl::Example7RematchQuery());
      EvalOptions homo;
      homo.match_mode = cypher::MatchMode::kHomomorphism;
      auto hom = db.Execute(wl::Example7RematchQuery(), {}, homo);
      std::printf("%-15s -> %zu rels; re-match: trail=%s homomorphism=%s\n",
                  MergeVariantName(variant), db.graph().num_rels(),
                  trail->rows[0][0].ToString().c_str(),
                  hom->rows[0][0].ToString().c_str());
    }
    std::printf("(paper: after Strong Collapse the merged pattern is no "
                "longer trail-matchable,\n but matches under "
                "homomorphism-based matching)\n");
  }

  Section("Section 7: the final design");
  std::printf(
      "MERGE ALL  == Atomic semantics   (deterministic, keeps copies)\n"
      "MERGE SAME == Strong Collapse    (deterministic, minimal graph)\n"
      "bare MERGE is rejected under the revised semantics.\n");
  return 0;
}
