// Interactive shell over the engine: type Cypher statements, switch update
// semantics on the fly, and inspect the graph.
//
//   ./cypher_shell
//
// Meta commands:
//   :help                     this text
//   :legacy | :revised        switch update semantics (default revised)
//   :order forward|reverse|shuffle [seed]
//                             legacy executors' driving-table scan order
//   :variant atomic|grouping|weak|collapse|strong|off
//                             run bare MERGE with a Section 6 variant
//   :homo | :trail            pattern matching mode
//   :dump                     print the graph in serialized form
//   :save <path> | :load <path>
//                             persist / restore the graph (dump format)
//   :dot                      print the graph in Graphviz DOT
//   :stats                    node/relationship counts
//   :timeout <ms>             per-statement watchdog deadline (0 = off)
//   :wal <path>               attach a write-ahead log (recovers if present)
//   :checkpoint               append a fresh snapshot to the log
//   :replicate                attach an in-process read-only follower
//                             (requires :wal; follower tails every commit)
//   :replicate detach <id>    detach a follower (releases its WAL retention)
//   :serve <endpoint>         serve replication on a socket (tcp:host:port
//                             or unix:path) so follower processes — e.g.
//                             replica_server — can attach; requires :wal
//   :serve stop               stop serving (abrupt: how a leader dies)
//   :lag                      per-follower cursors, connection state,
//                             reconnects, heartbeat age, resend counts, and
//                             staleness-detach warnings
//   :cache                    plan-cache hit/miss/eviction counters
//   :cache clear              drop cached plans and reset the counters
//   :cache on|off             route statements through the plan cache / VM
//   :clear                    drop the graph
//   :quit                     exit
//
// Everything else is executed as a Cypher statement.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cypher/database.h"
#include "exec/render.h"
#include "graph/serialize.h"
#include "replication/replica.h"
#include "replication/socket_transport.h"
#include "replication/transport.h"
#include "storage/log_file.h"

using cypher::CancelToken;
using cypher::EvalOptions;
using cypher::GraphDatabase;
using cypher::MatchMode;
using cypher::MergeVariant;
using cypher::ScanOrder;
using cypher::SemanticsMode;

namespace {

/// Per-statement watchdog budget; 0 disables. A CancelToken is one-shot
/// (it stays tripped), so the main loop mints a fresh one per statement.
int64_t g_timeout_ms = 0;

/// In-process followers attached via :replicate, keyed by the leader-side
/// follower id. Each tails the shell database's WAL; the main loop polls
/// them after every executed statement.
struct ShellFollower {
  int id;
  std::unique_ptr<cypher::replication::Replica> replica;
};
std::vector<ShellFollower> g_followers;

/// The socket replication server started by :serve (null when not serving).
std::unique_ptr<cypher::replication::SocketReplicationServer> g_server;

/// Drains shipped segments into every follower and returns acks to the
/// leader, so :lag reflects a settled steady state after each statement.
void PumpFollowers(GraphDatabase* db) {
  if (g_followers.empty()) return;
  (void)db->PumpReplication();
  for (ShellFollower& f : g_followers) {
    auto applied = f.replica->PollOnce();
    if (!applied.ok()) {
      std::printf("follower %d: %s\n", f.id,
                  applied.status().ToString().c_str());
    }
  }
  (void)db->PumpReplication();  // deliver the acks
}

void DropFollowers(GraphDatabase* db) {
  for (ShellFollower& f : g_followers) (void)db->DetachFollower(f.id);
  g_followers.clear();
}

bool HandleMeta(GraphDatabase* db, const std::string& line) {
  auto& options = db->options();
  if (line == ":help") {
    std::printf(
        ":legacy/:revised, :order forward|reverse|shuffle [seed],\n"
        ":variant atomic|grouping|weak|collapse|strong|off, :homo/:trail,\n"
        ":parallel <workers> [morsel], :timeout <ms>, :wal <path>,\n"
        ":checkpoint, :replicate [detach <id>], :serve <endpoint>|stop, :lag,\n"
        ":cache [clear|on|off], :dump, :dot, :stats, :clear, :quit\n");
    return true;
  }
  if (line.rfind(":timeout", 0) == 0) {
    g_timeout_ms = std::strtoll(line.c_str() + 8, nullptr, 10);
    if (g_timeout_ms > 0) {
      std::printf("watchdog: statements cancel after %lld ms\n",
                  static_cast<long long>(g_timeout_ms));
    } else {
      g_timeout_ms = 0;
      std::printf("watchdog off\n");
    }
    return true;
  }
  if (line.rfind(":wal ", 0) == 0) {
    auto file = cypher::storage::OpenPosixLogFile(line.substr(5));
    if (!file.ok()) {
      std::printf("%s\n", file.status().ToString().c_str());
      return true;
    }
    auto st = db->OpenDurable(std::move(*file));
    std::printf("%s\n", st.ok() ? "write-ahead log attached (graph recovered)"
                                : st.ToString().c_str());
    return true;
  }
  if (line == ":checkpoint") {
    auto st = db->Checkpoint();
    std::printf("%s\n", st.ok() ? "checkpoint written" : st.ToString().c_str());
    return true;
  }
  if (line == ":replicate") {
    auto transport = std::make_shared<cypher::replication::InProcessTransport>();
    auto replica = std::make_unique<cypher::replication::Replica>(transport);
    auto id = db->AttachFollower(transport);
    if (!id.ok()) {
      std::printf("%s\n", id.status().ToString().c_str());
      return true;
    }
    auto applied = replica->PollOnce();  // bootstrap from the snapshot frame
    if (!applied.ok()) {
      std::printf("%s\n", applied.status().ToString().c_str());
      (void)db->DetachFollower(*id);
      return true;
    }
    g_followers.push_back({*id, std::move(replica)});
    (void)db->PumpReplication();  // deliver the bootstrap ack
    std::printf("follower %d attached (bootstrapped at lsn %llu)\n", *id,
                static_cast<unsigned long long>(
                    g_followers.back().replica->applied_lsn()));
    return true;
  }
  if (line.rfind(":replicate detach", 0) == 0) {
    int id = static_cast<int>(std::strtol(line.c_str() + 17, nullptr, 10));
    auto it = std::find_if(g_followers.begin(), g_followers.end(),
                           [id](const ShellFollower& f) { return f.id == id; });
    if (it == g_followers.end()) {
      std::printf("no follower %d; :lag lists them\n", id);
      return true;
    }
    auto st = db->DetachFollower(id);
    g_followers.erase(it);
    std::printf("%s\n", st.ok() ? "detached (WAL retention released)"
                                : st.ToString().c_str());
    return true;
  }
  if (line.rfind(":serve", 0) == 0) {
    std::string arg = line.size() > 7 ? line.substr(7) : "";
    if (arg == "stop") {
      if (g_server == nullptr) {
        std::printf("not serving\n");
      } else {
        g_server->Stop();
        g_server.reset();
        std::printf("replication server stopped\n");
      }
      return true;
    }
    if (g_server != nullptr) {
      std::printf("already serving on %s; :serve stop first\n",
                  g_server->endpoint().ToString().c_str());
      return true;
    }
    auto endpoint = cypher::replication::Endpoint::Parse(arg);
    if (!endpoint.ok()) {
      std::printf("%s\n", endpoint.status().ToString().c_str());
      return true;
    }
    auto server =
        std::make_unique<cypher::replication::SocketReplicationServer>();
    auto st = server->Start(db, *endpoint, cypher::ReplicationOptions{},
                            cypher::replication::SocketOptions{});
    if (!st.ok()) {
      std::printf("%s\n", st.ToString().c_str());
      return true;
    }
    g_server = std::move(server);
    std::printf("serving replication on %s\n",
                g_server->endpoint().ToString().c_str());
    return true;
  }
  if (line == ":lag") {
    if (!db->replicating()) {
      std::printf("no followers; :replicate or :serve attaches them\n");
      return true;
    }
    auto status = db->replication_status();
    std::printf("leader: appended=%llu durable=%llu log=%llu bytes\n",
                static_cast<unsigned long long>(status.appended_lsn),
                static_cast<unsigned long long>(status.durable_lsn),
                static_cast<unsigned long long>(status.log_bytes));
    for (const cypher::FollowerInfo& f : status.detail) {
      std::string wire = cypher::replication::LinkStateName(f.link.state);
      if (f.link.reconnects > 0) {
        wire += ", " + std::to_string(f.link.reconnects) + " reconnect" +
                (f.link.reconnects == 1 ? "" : "s");
      }
      if (f.link.heartbeat_age_ms >= 0) {
        wire += ", heard " + std::to_string(f.link.heartbeat_age_ms) +
                "ms ago";
      }
      if (f.resends > 0) wire += ", " + std::to_string(f.resends) + " resends";
      std::printf("follower %d: acked=%llu shipped=%llu (lag %llu bytes) "
                  "[%s]\n",
                  f.id, static_cast<unsigned long long>(f.acked_lsn),
                  static_cast<unsigned long long>(f.shipped_lsn),
                  static_cast<unsigned long long>(status.appended_lsn -
                                                  f.acked_lsn),
                  wire.c_str());
    }
    // In-process replicas carry extra apply-side detail the wire ones
    // report over their own protocol.
    for (const ShellFollower& f : g_followers) {
      std::printf("  in-process %d: applied=%llu, %llu statement%s applied\n",
                  f.id,
                  static_cast<unsigned long long>(f.replica->applied_lsn()),
                  static_cast<unsigned long long>(
                      f.replica->statements_applied()),
                  f.replica->statements_applied() == 1 ? "" : "s");
    }
    if (status.stale_detaches > 0) {
      std::printf("stale detaches: %llu (last: %s)\n",
                  static_cast<unsigned long long>(status.stale_detaches),
                  status.last_stale_warning.c_str());
    }
    return true;
  }
  if (line.rfind(":parallel", 0) == 0) {
    char* end = nullptr;
    options.parallel_workers =
        std::strtoull(line.c_str() + 9, &end, 10);
    size_t morsel = std::strtoull(end, nullptr, 10);
    if (morsel > 0) options.parallel_morsel_size = morsel;
    // Shell graphs are tiny; drop the cost gate so the parallel path
    // actually engages instead of silently falling back to sequential.
    options.parallel_min_cost = options.parallel_workers > 0 ? 1 : 2048;
    std::printf("parallel: workers=%zu morsel=%zu (0 workers = sequential)\n",
                options.parallel_workers, options.parallel_morsel_size);
    return true;
  }
  if (line == ":legacy") {
    options.semantics = SemanticsMode::kLegacy;
    std::printf("update semantics: legacy (Cypher 9)\n");
    return true;
  }
  if (line == ":revised") {
    options.semantics = SemanticsMode::kRevised;
    std::printf("update semantics: revised (Sections 7-8)\n");
    return true;
  }
  if (line.rfind(":order", 0) == 0) {
    if (line.find("reverse") != std::string::npos) {
      options.scan_order = ScanOrder::kReverse;
    } else if (line.find("shuffle") != std::string::npos) {
      options.scan_order = ScanOrder::kShuffle;
      size_t space = line.rfind(' ');
      if (space != std::string::npos) {
        options.shuffle_seed = std::strtoull(line.c_str() + space, nullptr, 10);
      }
    } else {
      options.scan_order = ScanOrder::kForward;
    }
    std::printf("scan order updated\n");
    return true;
  }
  if (line.rfind(":variant", 0) == 0) {
    if (line.find("atomic") != std::string::npos) {
      options.plain_merge_variant = MergeVariant::kAtomic;
    } else if (line.find("grouping") != std::string::npos) {
      options.plain_merge_variant = MergeVariant::kGrouping;
    } else if (line.find("weak") != std::string::npos) {
      options.plain_merge_variant = MergeVariant::kWeakCollapse;
    } else if (line.find("strong") != std::string::npos) {
      options.plain_merge_variant = MergeVariant::kStrongCollapse;
    } else if (line.find("collapse") != std::string::npos) {
      options.plain_merge_variant = MergeVariant::kCollapse;
    } else {
      options.plain_merge_variant.reset();
    }
    std::printf("bare-MERGE variant: %s\n",
                options.plain_merge_variant
                    ? MergeVariantName(*options.plain_merge_variant)
                    : "off");
    return true;
  }
  if (line == ":homo") {
    options.match_mode = MatchMode::kHomomorphism;
    std::printf("matching: homomorphism\n");
    return true;
  }
  if (line == ":trail") {
    options.match_mode = MatchMode::kRelUnique;
    std::printf("matching: relationship-unique (trail)\n");
    return true;
  }
  if (line == ":dump") {
    std::printf("%s", DumpGraph(db->graph()).c_str());
    return true;
  }
  if (line.rfind(":save ", 0) == 0) {
    auto st = db->SaveToFile(line.substr(6));
    std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    return true;
  }
  if (line.rfind(":load ", 0) == 0) {
    auto st = db->LoadFromFile(line.substr(6));
    std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    return true;
  }
  if (line == ":dot") {
    std::printf("%s", ToDot(db->graph(), "shell").c_str());
    return true;
  }
  if (line == ":stats") {
    std::printf("%zu nodes, %zu relationships\n", db->graph().num_nodes(),
                db->graph().num_rels());
    return true;
  }
  if (line == ":schema") {
    const auto& g = db->graph();
    for (const auto& [label, key] : g.Indexes()) {
      std::printf("INDEX ON :%s(%s)\n", g.LabelName(label).c_str(),
                  g.KeyName(key).c_str());
    }
    for (const auto& [label, key] : g.UniqueConstraints()) {
      std::printf("CONSTRAINT ON (n:%s) ASSERT n.%s IS UNIQUE\n",
                  g.LabelName(label).c_str(), g.KeyName(key).c_str());
    }
    if (g.Indexes().empty() && g.UniqueConstraints().empty()) {
      std::printf("(no indexes or constraints)\n");
    }
    return true;
  }
  if (line == ":cache") {
    const cypher::PlanCacheStats stats = db->plan_cache().Stats();
    const cypher::SessionCacheCounters& session = db->session_cache_counters();
    std::printf(
        "plan cache: %s — %zu entr%s\n"
        "  global:       hits=%llu (raw=%llu shape=%llu) misses=%llu "
        "evictions=%llu\n"
        "  this session: hits=%llu misses=%llu\n",
        options.use_plan_cache ? "on" : "off", stats.entries,
        stats.entries == 1 ? "y" : "ies",
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.raw_hits),
        static_cast<unsigned long long>(stats.shape_hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions),
        static_cast<unsigned long long>(session.hits),
        static_cast<unsigned long long>(session.misses));
    return true;
  }
  if (line == ":cache clear") {
    db->plan_cache().Clear();
    db->plan_cache().ResetStats();
    db->ResetSessionCacheCounters();
    std::printf("plan cache cleared\n");
    return true;
  }
  if (line == ":cache on" || line == ":cache off") {
    options.use_plan_cache = line == ":cache on";
    std::printf("plan cache %s\n", options.use_plan_cache ? "on" : "off");
    return true;
  }
  if (line == ":clear") {
    if (g_server != nullptr) {
      // The server thread pumps this database; replacing it underneath
      // would be a use-after-move.
      std::printf("serving replication; :serve stop before :clear\n");
      return true;
    }
    // Followers tail the WAL being thrown away; detach them first so the
    // shipper's retention pins release before the database is replaced.
    DropFollowers(db);
    EvalOptions kept = db->options();
    *db = GraphDatabase(kept);
    std::printf("graph cleared\n");
    return true;
  }
  return false;
}

}  // namespace

int main() {
  GraphDatabase db;
  std::printf(
      "cypher-shell — property graph engine with revised update semantics\n"
      "type :help for meta commands, :quit to exit\n");
  std::string line;
  while (true) {
    std::printf("cypher> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ":quit" || line == ":exit") break;
    if (line[0] == ':') {
      if (!HandleMeta(&db, line)) std::printf("unknown command; :help\n");
      continue;
    }
    // Mint a fresh token per statement (tokens are one-shot) and clear any
    // stale tripped token when the watchdog is off.
    db.options().cancel =
        g_timeout_ms > 0
            ? CancelToken::WithTimeout(std::chrono::milliseconds(g_timeout_ms))
            : CancelToken();
    auto result = db.Execute(line);
    if (!result.ok()) {
      // A watchdog abort surfaces as DeadlineExceeded/Aborted; either way
      // the statement rolled back and the graph is unchanged.
      std::printf("%s\n", result.status().ToString().c_str());
      continue;
    }
    std::string rendered = RenderResult(db.graph(), *result);
    std::printf("%s", rendered.empty() ? "OK\n" : rendered.c_str());
    // Commits auto-ship to attached followers; polling here keeps them
    // caught up statement by statement, so :lag normally reads zero.
    PumpFollowers(&db);
  }
  // The server thread holds a pointer to `db`; stop it before `db` dies
  // (the global's destructor would run too late).
  if (g_server != nullptr) {
    g_server->Stop();
    g_server.reset();
  }
  return 0;
}
