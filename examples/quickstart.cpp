// Quickstart: the paper's running example (Figure 1) end to end.
//
// Builds the marketplace graph, runs Queries (1)-(5) from Sections 2-3,
// and shows the difference between the legacy (Cypher 9) and revised
// update semantics on the way.
//
//   ./quickstart

#include <cstdio>

#include "cypher/database.h"
#include "exec/render.h"
#include "workload/workloads.h"

using cypher::EvalOptions;
using cypher::GraphDatabase;
using cypher::SemanticsMode;

namespace {

/// Runs one statement and pretty-prints the result (or the error).
void Show(GraphDatabase* db, const char* title, const std::string& query) {
  std::printf("\n-- %s\n%s\n", title, query.c_str());
  auto result = db->Execute(query);
  if (!result.ok()) {
    std::printf("   => %s\n", result.status().ToString().c_str());
    return;
  }
  std::string rendered = RenderResult(db->graph(), *result);
  if (rendered.empty()) rendered = "(no output)\n";
  std::printf("%s", rendered.c_str());
}

}  // namespace

int main() {
  std::printf("=== Quickstart: 'Updating Graph Databases with Cypher' ===\n");

  GraphDatabase db;  // revised semantics by default
  if (auto st = cypher::workload::LoadMarketplace(&db); !st.ok()) {
    std::printf("failed to load Figure 1: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Loaded the Figure 1 marketplace: %zu nodes, %zu relationships\n",
              db.graph().num_nodes(), db.graph().num_rels());

  Show(&db, "Query (1): vendors offering a laptop plus another product",
       "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
       "WHERE p.name = 'laptop' "
       "RETURN v.name AS vendor, q.name AS other_product");

  Show(&db, "Query (2): Bob orders a new product",
       "MATCH (u:User {id: 89}) "
       "CREATE (u)-[:ORDERED]->(p:New_Product {id: 0}) "
       "RETURN p");

  Show(&db, "Query (3): promote the new product",
       "MATCH (p:New_Product {id: 0}) "
       "SET p:Product, p.id = 120, p.name = 'smartphone' "
       "REMOVE p:New_Product "
       "RETURN p");

  Show(&db, "Plain DELETE fails while the ORDERED relationship exists",
       "MATCH (p:Product {id: 120}) DELETE p");

  Show(&db, "Query (4): DETACH DELETE removes node and relationship",
       "MATCH (p:Product {id: 120}) DETACH DELETE p");

  std::printf("\n-- Query (5): every product should have a vendor.\n");
  std::printf("   (legacy Cypher 9 MERGE, exactly as in the paper)\n");
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  auto q5 = db.Execute(
      "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v", {},
      legacy);
  if (q5.ok()) {
    std::printf("%s", RenderResult(db.graph(), *q5).c_str());
    std::printf("   (the tablet had no vendor; MERGE created node v2)\n");
  }

  Show(&db, "Aggregation: product catalogue per vendor",
       "MATCH (v:Vendor)-[:OFFERS]->(p:Product) "
       "RETURN v.name AS vendor, count(p) AS products, "
       "collect(p.name) AS names ORDER BY products DESC");

  Show(&db, "Who ordered what (with paths)",
       "MATCH pth = (u:User)-[:ORDERED]->(p:Product) "
       "RETURN u.name AS user, p.name AS product ORDER BY user, product");

  std::printf("\n=== Revised-semantics highlights ===\n");

  Show(&db, "Atomic SET: swap the ids of laptop and tablet (Example 1)",
       "MATCH (a:Product {name: 'laptop'}), (b:Product {name: 'tablet'}) "
       "SET a.id = b.id, b.id = a.id "
       "RETURN a.id AS laptop_id, b.id AS tablet_id");

  Show(&db, "MERGE SAME: idempotent import of order rows",
       "UNWIND [{u: 89, p: 125}, {u: 89, p: 125}, {u: 99, p: 85}] AS row "
       "MERGE SAME (:ImportedUser {id: row.u})"
       "-[:ORDERED]->(:ImportedProduct {id: row.p}) "
       "RETURN count(*) AS rows_processed");

  std::printf("\nFinal graph: %zu nodes, %zu relationships\n",
              db.graph().num_nodes(), db.graph().num_rels());
  return 0;
}
