#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "parser/parser.h"

namespace cypher {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    user_ = graph_.CreateNode({graph_.InternLabel("User")}, MakeProps());
    product_ = graph_.CreateNode({graph_.InternLabel("Product")}, {});
    rel_ = *graph_.CreateRel(user_, product_, graph_.InternType("ORDERED"),
                             {});
  }

  PropertyMap MakeProps() {
    PropertyMap props;
    props.Set(graph_.InternKey("id"), Value::Int(89));
    props.Set(graph_.InternKey("name"), Value::String("Bob"));
    return props;
  }

  Result<Value> Eval(const std::string& text) {
    auto expr = ParseExpression(text);
    if (!expr.ok()) return expr.status();
    EvalContext ctx{&graph_, &params_};
    return Evaluate(ctx, bindings_, **expr);
  }

  Value EvalOk(const std::string& text) {
    auto v = Eval(text);
    EXPECT_TRUE(v.ok()) << text << " -> " << v.status().ToString();
    return v.ok() ? *v : Value();
  }

  PropertyGraph graph_;
  ValueMap params_;
  Bindings bindings_;
  NodeId user_;
  NodeId product_;
  RelId rel_;
};

TEST_F(EvaluatorTest, Literals) {
  EXPECT_EQ(EvalOk("42").AsInt(), 42);
  EXPECT_EQ(EvalOk("2.5").AsFloat(), 2.5);
  EXPECT_EQ(EvalOk("'hi'").AsString(), "hi");
  EXPECT_TRUE(EvalOk("TRUE").AsBool());
  EXPECT_TRUE(EvalOk("null").is_null());
}

TEST_F(EvaluatorTest, Arithmetic) {
  EXPECT_EQ(EvalOk("1 + 2 * 3").AsInt(), 7);
  EXPECT_EQ(EvalOk("7 / 2").AsInt(), 3);       // integer division
  EXPECT_EQ(EvalOk("7.0 / 2").AsFloat(), 3.5);
  EXPECT_EQ(EvalOk("7 % 3").AsInt(), 1);
  EXPECT_EQ(EvalOk("2 ^ 3").AsFloat(), 8.0);   // pow is float
  EXPECT_EQ(EvalOk("-(3)").AsInt(), -3);
  EXPECT_TRUE(EvalOk("1 + null").is_null());
}

TEST_F(EvaluatorTest, ArithmeticErrors) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("1 % 0").ok());
  EXPECT_FALSE(Eval("true + 1").ok());
  EXPECT_FALSE(Eval("9223372036854775807 + 1").ok());  // overflow
}

TEST_F(EvaluatorTest, StringConcat) {
  EXPECT_EQ(EvalOk("'a' + 'b'").AsString(), "ab");
  EXPECT_EQ(EvalOk("'v' + 1").AsString(), "v1");
  EXPECT_TRUE(EvalOk("'a' + null").is_null());
}

TEST_F(EvaluatorTest, ListConcatAndAppend) {
  EXPECT_EQ(EvalOk("[1] + [2, 3]").AsList().size(), 3u);
  EXPECT_EQ(EvalOk("[1] + 2").AsList().size(), 2u);
}

TEST_F(EvaluatorTest, ComparisonsWithTernaryLogic) {
  EXPECT_TRUE(EvalOk("1 < 2").AsBool());
  EXPECT_TRUE(EvalOk("2 <= 2").AsBool());
  EXPECT_TRUE(EvalOk("3 <> 4").AsBool());
  EXPECT_TRUE(EvalOk("null = null").is_null());
  EXPECT_TRUE(EvalOk("1 < null").is_null());
  EXPECT_TRUE(EvalOk("1 < 'a'").is_null());  // incomparable
  EXPECT_FALSE(EvalOk("1 = 'a'").AsBool());
}

TEST_F(EvaluatorTest, LogicalConnectives) {
  EXPECT_TRUE(EvalOk("true AND true").AsBool());
  EXPECT_FALSE(EvalOk("false AND null").AsBool());  // false dominates
  EXPECT_TRUE(EvalOk("true OR null").AsBool());
  EXPECT_TRUE(EvalOk("false OR null").is_null());
  EXPECT_TRUE(EvalOk("NOT null").is_null());
  EXPECT_TRUE(EvalOk("true XOR false").AsBool());
  EXPECT_FALSE(Eval("1 AND true").ok());  // type error
}

TEST_F(EvaluatorTest, InOperator) {
  EXPECT_TRUE(EvalOk("2 IN [1, 2, 3]").AsBool());
  EXPECT_FALSE(EvalOk("5 IN [1, 2]").AsBool());
  EXPECT_TRUE(EvalOk("5 IN [1, null]").is_null());
  EXPECT_TRUE(EvalOk("1 IN [1, null]").AsBool());
  EXPECT_TRUE(EvalOk("1 IN null").is_null());
}

TEST_F(EvaluatorTest, StringPredicates) {
  EXPECT_TRUE(EvalOk("'laptop' STARTS WITH 'lap'").AsBool());
  EXPECT_TRUE(EvalOk("'laptop' ENDS WITH 'top'").AsBool());
  EXPECT_TRUE(EvalOk("'laptop' CONTAINS 'apt'").AsBool());
  EXPECT_TRUE(EvalOk("null CONTAINS 'x'").is_null());
}

TEST_F(EvaluatorTest, IsNullPredicates) {
  EXPECT_TRUE(EvalOk("null IS NULL").AsBool());
  EXPECT_FALSE(EvalOk("1 IS NULL").AsBool());
  EXPECT_TRUE(EvalOk("1 IS NOT NULL").AsBool());
}

TEST_F(EvaluatorTest, PropertyAccess) {
  bindings_.Push("u", Value::Node(user_));
  EXPECT_EQ(EvalOk("u.id").AsInt(), 89);
  EXPECT_EQ(EvalOk("u.name").AsString(), "Bob");
  EXPECT_TRUE(EvalOk("u.missing").is_null());
  bindings_.Push("m", Value::Map({{"k", Value::Int(1)}}));
  EXPECT_EQ(EvalOk("m.k").AsInt(), 1);
  EXPECT_TRUE(EvalOk("m.other").is_null());
  bindings_.Push("n", Value::Null());
  EXPECT_TRUE(EvalOk("n.id").is_null());
  EXPECT_FALSE(Eval("1 .id").ok());
}

TEST_F(EvaluatorTest, LabelPredicate) {
  bindings_.Push("u", Value::Node(user_));
  EXPECT_TRUE(EvalOk("u:User").AsBool());
  EXPECT_FALSE(EvalOk("u:Product").AsBool());
  bindings_.Push("n", Value::Null());
  EXPECT_TRUE(EvalOk("n:User").is_null());
}

TEST_F(EvaluatorTest, Subscripts) {
  EXPECT_EQ(EvalOk("[10, 20, 30][1]").AsInt(), 20);
  EXPECT_EQ(EvalOk("[10, 20, 30][-1]").AsInt(), 30);
  EXPECT_TRUE(EvalOk("[10][5]").is_null());
  EXPECT_EQ(EvalOk("{a: 7}['a']").AsInt(), 7);
  EXPECT_TRUE(EvalOk("{a: 7}['b']").is_null());
}

TEST_F(EvaluatorTest, Parameters) {
  params_.emplace("id", Value::Int(5));
  EXPECT_EQ(EvalOk("$id + 1").AsInt(), 6);
  EXPECT_FALSE(Eval("$missing").ok());
}

TEST_F(EvaluatorTest, UndefinedVariableErrors) {
  auto v = Eval("nobody");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kSemanticError);
}

TEST_F(EvaluatorTest, GraphFunctions) {
  bindings_.Push("u", Value::Node(user_));
  bindings_.Push("r", Value::Rel(rel_));
  EXPECT_EQ(EvalOk("id(u)").AsInt(), user_.value);
  EXPECT_EQ(EvalOk("labels(u)").AsList().size(), 1u);
  EXPECT_EQ(EvalOk("labels(u)").AsList()[0].AsString(), "User");
  EXPECT_EQ(EvalOk("type(r)").AsString(), "ORDERED");
  EXPECT_EQ(EvalOk("properties(u)").AsMap().at("name").AsString(), "Bob");
  EXPECT_EQ(EvalOk("keys(u)").AsList().size(), 2u);
  EXPECT_TRUE(EvalOk("startNode(r)").is_node());
  EXPECT_EQ(EvalOk("endNode(r)").AsNode(), product_);
}

TEST_F(EvaluatorTest, ScalarFunctions) {
  EXPECT_EQ(EvalOk("size([1, 2, 3])").AsInt(), 3);
  EXPECT_EQ(EvalOk("size('abcd')").AsInt(), 4);
  EXPECT_EQ(EvalOk("coalesce(null, null, 7)").AsInt(), 7);
  EXPECT_TRUE(EvalOk("coalesce(null)").is_null());
  EXPECT_EQ(EvalOk("head([5, 6])").AsInt(), 5);
  EXPECT_EQ(EvalOk("last([5, 6])").AsInt(), 6);
  EXPECT_TRUE(EvalOk("head([])").is_null());
  EXPECT_EQ(EvalOk("abs(-4)").AsInt(), 4);
  EXPECT_EQ(EvalOk("toString(12)").AsString(), "12");
  EXPECT_EQ(EvalOk("toInteger('42')").AsInt(), 42);
  EXPECT_TRUE(EvalOk("toInteger('nope')").is_null());
  EXPECT_EQ(EvalOk("toFloat('2.5')").AsFloat(), 2.5);
  EXPECT_EQ(EvalOk("range(1, 4)").AsList().size(), 4u);
  EXPECT_EQ(EvalOk("range(5, 1, -2)").AsList().size(), 3u);
  EXPECT_EQ(EvalOk("reverse('abc')").AsString(), "cba");
  EXPECT_EQ(EvalOk("toUpper('aB')").AsString(), "AB");
  EXPECT_EQ(EvalOk("toLower('aB')").AsString(), "ab");
  EXPECT_TRUE(EvalOk("exists(null)").AsBool() == false);
  EXPECT_FALSE(Eval("unknown_fn(1)").ok());
  EXPECT_FALSE(Eval("range(1, 5, 0)").ok());
}

TEST_F(EvaluatorTest, PathFunctions) {
  PathValue path;
  path.nodes = {user_, product_};
  path.rels = {rel_};
  bindings_.Push("p", Value::Path(path));
  EXPECT_EQ(EvalOk("length(p)").AsInt(), 1);
  EXPECT_EQ(EvalOk("nodes(p)").AsList().size(), 2u);
  EXPECT_EQ(EvalOk("relationships(p)").AsList().size(), 1u);
}

TEST_F(EvaluatorTest, CaseExpression) {
  EXPECT_EQ(EvalOk("CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END").AsString(),
            "yes");
  EXPECT_EQ(EvalOk("CASE WHEN false THEN 1 END").is_null(), true);
  EXPECT_EQ(EvalOk("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").AsString(),
            "b");
}

TEST_F(EvaluatorTest, AggregatesRejectedOutsideProjection) {
  auto v = Eval("count(*)");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kSemanticError);
  EXPECT_FALSE(Eval("sum(1)").ok());
}

TEST_F(EvaluatorTest, AggregatesOverScope) {
  Table table = Table::WithColumns({"x"});
  table.AddRow({Value::Int(1)});
  table.AddRow({Value::Int(2)});
  table.AddRow({Value::Null()});
  table.AddRow({Value::Int(2)});
  std::vector<size_t> rows{0, 1, 2, 3};
  AggregateScope scope{&table, &rows};
  EvalContext ctx{&graph_, &params_};
  Bindings rep(&table, 0);
  auto eval = [&](const std::string& text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok());
    auto v = Evaluate(ctx, rep, **expr, &scope);
    EXPECT_TRUE(v.ok()) << text << " -> " << v.status().ToString();
    return v.ok() ? *v : Value();
  };
  EXPECT_EQ(eval("count(*)").AsInt(), 4);       // counts null rows too
  EXPECT_EQ(eval("count(x)").AsInt(), 3);       // skips nulls
  EXPECT_EQ(eval("count(DISTINCT x)").AsInt(), 2);
  EXPECT_EQ(eval("sum(x)").AsInt(), 5);
  EXPECT_EQ(eval("collect(x)").AsList().size(), 3u);
  EXPECT_EQ(eval("collect(DISTINCT x)").AsList().size(), 2u);
  EXPECT_EQ(eval("min(x)").AsInt(), 1);
  EXPECT_EQ(eval("max(x)").AsInt(), 2);
  EXPECT_DOUBLE_EQ(eval("avg(x)").AsFloat(), 5.0 / 3.0);
  EXPECT_EQ(eval("sum(x) + count(*)").AsInt(), 9);
}

TEST_F(EvaluatorTest, EmptyAggregates) {
  Table table = Table::WithColumns({"x"});
  std::vector<size_t> rows;
  AggregateScope scope{&table, &rows};
  EvalContext ctx{&graph_, &params_};
  Bindings none;
  auto expr = ParseExpression("count(*)");
  auto v = Evaluate(ctx, none, **expr, &scope);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 0);
  auto sum_expr = ParseExpression("sum(x)");
  auto sum = Evaluate(ctx, none, **sum_expr, &scope);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->AsInt(), 0);  // sum of nothing is 0
  auto min_expr = ParseExpression("min(x)");
  auto mn = Evaluate(ctx, none, **min_expr, &scope);
  ASSERT_TRUE(mn.ok());
  EXPECT_TRUE(mn->is_null());
}

}  // namespace
}  // namespace cypher
