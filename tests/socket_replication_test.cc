// Fault-tolerant socket replication harness (DESIGN.md §4i).
//
// Three layers, each building on the previous:
//
//   1. Wire codec units — the framed [kind][len][crc][payload] stream must
//      survive torn reads cut at EVERY byte boundary, and must tear the
//      connection down (sticky error) on any structural damage: flipped
//      bits, unknown kinds, implausible lengths.
//   2. Real-socket schedules in one process — a leader served by
//      SocketReplicationServer, a follower dialing through SocketTransport
//      (TCP ephemeral ports and Unix-domain sockets), exercising bootstrap,
//      tailing, heartbeat deadlines, pause-induced partitions with
//      token-based rebind on reconnect, staleness auto-detach, and the
//      promotion byte-prefix invariant.
//   3. Multi-process schedules — posix-spawned replica_server processes
//      interrogated over a pipe protocol, `kill -9`'d mid-stream, and
//      restarted over the same durable WAL/meta to prove crash recovery
//      resumes (not re-bootstraps) the stream; finally a leader "crash"
//      followed by follower promotion.
//
// The correctness oracle throughout is the same as replication_test.cc: a
// follower may only ever sit at a committed leader statement boundary with
// byte-for-byte that boundary's canonical dump.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cypher/database.h"
#include "graph/serialize.h"
#include "query_gen.h"
#include "replication/replica.h"
#include "replication/socket_transport.h"
#include "replication/transport.h"
#include "replication/wire.h"
#include "storage/log_file.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"

namespace cypher {
namespace {

using replication::ControlFrame;
using replication::ControlType;
using replication::Endpoint;
using replication::FrameType;
using replication::InProcessTransport;
using replication::kMaxWirePayload;
using replication::kWireHeaderSize;
using replication::LinkStatus;
using replication::Replica;
using replication::ReplicaDurability;
using replication::SegmentFrame;
using replication::SocketOptions;
using replication::SocketReplicationServer;
using replication::SocketTransport;
using replication::SteadyNowMs;
using replication::WireDecoder;
using replication::WireKind;
using replication::WireMessage;
using storage::MemoryLogFile;
using testing::BuildRandomGraph;
using testing::GenerateUpdateWorkload;

constexpr uint64_t kSeed = 41;
constexpr size_t kWorkloadStatements = 24;

// Sub-second timescale so deadline/backoff paths run in test time. The
// deadline is comfortably above the heartbeat so a healthy link never trips
// it, and the backoff cap keeps reconnect storms short.
SocketOptions FastOptions() {
  SocketOptions options;
  options.heartbeat_interval_ms = 10;
  options.peer_deadline_ms = 150;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 60;
  options.jitter_seed = 7;
  options.connect_timeout_ms = 2000;
  return options;
}

// ---- 1. Wire codec ---------------------------------------------------------

SegmentFrame SampleSegment() {
  SegmentFrame frame;
  frame.type = FrameType::kSegment;
  frame.from_lsn = 100;
  frame.to_lsn = 164;
  frame.payload = "sixty-four bytes of pretend WAL records, give or take";
  frame.crc = 0xdeadbeef;
  return frame;
}

TEST(WireCodecTest, RoundTripsEveryKind) {
  std::string stream = replication::EncodeHello(0x1122334455667788ull, 42);
  stream += replication::EncodeData(SampleSegment());
  stream += replication::EncodeControl({ControlType::kResend, 7});
  stream += replication::EncodeHeartbeat(123456);

  WireDecoder decoder;
  decoder.Feed(stream);
  WireMessage msg;

  auto next = decoder.Next(&msg);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(msg.kind, WireKind::kHello);
  EXPECT_EQ(msg.token, 0x1122334455667788ull);
  EXPECT_EQ(msg.lsn, 42u);

  next = decoder.Next(&msg);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(msg.kind, WireKind::kData);
  EXPECT_EQ(msg.data.type, FrameType::kSegment);
  EXPECT_EQ(msg.data.from_lsn, 100u);
  EXPECT_EQ(msg.data.to_lsn, 164u);
  EXPECT_EQ(msg.data.crc, 0xdeadbeefu);
  EXPECT_EQ(msg.data.payload, SampleSegment().payload);

  next = decoder.Next(&msg);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(msg.kind, WireKind::kControl);
  EXPECT_EQ(msg.control.type, ControlType::kResend);
  EXPECT_EQ(msg.control.lsn, 7u);

  next = decoder.Next(&msg);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(msg.kind, WireKind::kHeartbeat);
  EXPECT_EQ(msg.clock_ms, 123456u);

  next = decoder.Next(&msg);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next) << "decoder invented a message past the stream end";
  EXPECT_EQ(decoder.buffered(), 0u);
}

// TCP hands the reader arbitrary prefixes. Cut the stream at every byte
// boundary — mid-kind, mid-length, mid-crc, mid-payload — and the decoder
// must never error, never emit early, and always produce the identical
// message sequence once the remainder arrives.
TEST(WireCodecTest, TornReadAtEveryByteBoundary) {
  std::string stream = replication::EncodeHello(99, 7);
  stream += replication::EncodeData(SampleSegment());
  stream += replication::EncodeHeartbeat(1);

  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    WireDecoder decoder;
    decoder.Feed(std::string_view(stream).substr(0, cut));
    std::vector<WireMessage> got;
    WireMessage msg;
    while (true) {
      auto next = decoder.Next(&msg);
      ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                             << next.status().ToString();
      if (!*next) break;
      got.push_back(msg);
    }
    decoder.Feed(std::string_view(stream).substr(cut));
    while (true) {
      auto next = decoder.Next(&msg);
      ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                             << next.status().ToString();
      if (!*next) break;
      got.push_back(msg);
    }
    ASSERT_EQ(got.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(got[0].kind, WireKind::kHello);
    EXPECT_EQ(got[0].token, 99u);
    EXPECT_EQ(got[1].kind, WireKind::kData);
    EXPECT_EQ(got[1].data.payload, SampleSegment().payload);
    EXPECT_EQ(got[2].kind, WireKind::kHeartbeat);
    EXPECT_EQ(decoder.buffered(), 0u) << "cut at " << cut;
  }
}

// A flipped payload bit fails the message CRC; the error is sticky — a
// desynchronized byte stream can never be trusted again.
TEST(WireCodecTest, PayloadCorruptionIsStickyError) {
  std::string stream = replication::EncodeData(SampleSegment());
  stream[kWireHeaderSize + 3] ^= 0x10;  // payload byte
  stream += replication::EncodeHeartbeat(5);  // an innocent message after

  WireDecoder decoder;
  decoder.Feed(stream);
  WireMessage msg;
  auto next = decoder.Next(&msg);
  EXPECT_FALSE(next.ok()) << "corrupt payload decoded as valid";
  next = decoder.Next(&msg);
  EXPECT_FALSE(next.ok()) << "decoder resumed after structural damage";
}

TEST(WireCodecTest, UnknownKindRejected) {
  std::string stream = replication::EncodeHeartbeat(5);
  stream[0] = 0x7f;  // no such kind
  WireDecoder decoder;
  decoder.Feed(stream);
  WireMessage msg;
  EXPECT_FALSE(decoder.Next(&msg).ok());
}

// An implausible length field is desync, not an allocation request.
TEST(WireCodecTest, OversizedLengthRejected) {
  std::string header(kWireHeaderSize, '\0');
  header[0] = static_cast<char>(WireKind::kData);
  uint32_t length = kMaxWirePayload + 1;
  std::memcpy(&header[1], &length, sizeof(length));
  WireDecoder decoder;
  decoder.Feed(header);
  WireMessage msg;
  EXPECT_FALSE(decoder.Next(&msg).ok());
}

// Bytes that arrive behind the hello in the same socket read must follow
// the connection when the fd is handed to the follower's link — they are
// the front of the replication stream, not handshake debris.
TEST(WireCodecTest, TakeRemainingCarriesTrailingBytes) {
  std::string stream = replication::EncodeHello(1, 0);
  std::string data = replication::EncodeData(SampleSegment());
  stream += data.substr(0, data.size() / 2);  // half a data frame behind it

  WireDecoder handshake;
  handshake.Feed(stream);
  WireMessage msg;
  auto next = handshake.Next(&msg);
  ASSERT_TRUE(next.ok() && *next);
  ASSERT_EQ(msg.kind, WireKind::kHello);

  std::string residual = handshake.TakeRemaining();
  EXPECT_EQ(residual, data.substr(0, data.size() / 2));
  EXPECT_EQ(handshake.buffered(), 0u);

  WireDecoder link;
  link.Feed(residual);
  link.Feed(data.substr(data.size() / 2));
  next = link.Next(&msg);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(msg.kind, WireKind::kData);
  EXPECT_EQ(msg.data.payload, SampleSegment().payload);
}

// ---- Shared oracle (same construction as replication_test.cc) --------------

struct Reference {
  std::vector<std::string> statements;
  std::map<uint64_t, std::string> dump_at;
  std::map<uint64_t, size_t> prefix_at;
};

Reference BuildReference(uint64_t seed, size_t count) {
  Reference ref;
  ref.statements = GenerateUpdateWorkload(seed, count);
  GraphDatabase db;
  EXPECT_TRUE(BuildRandomGraph(&db, seed).ok());
  EXPECT_TRUE(db.OpenDurable(std::make_unique<MemoryLogFile>()).ok());
  auto boundary = [&](size_t prefix) {
    uint64_t lsn = db.wal_writer()->durable_lsn();
    ref.dump_at[lsn] = DumpGraphCanonical(db.graph());
    ref.prefix_at[lsn] = prefix;
  };
  boundary(0);
  for (size_t i = 0; i < ref.statements.size(); ++i) {
    EXPECT_TRUE(db.Run(ref.statements[i]).ok()) << ref.statements[i];
    boundary(i + 1);
  }
  return ref;
}

void ExpectAtBoundary(const Reference& ref, uint64_t lsn,
                      const std::string& dump, const char* when) {
  auto it = ref.dump_at.find(lsn);
  ASSERT_NE(it, ref.dump_at.end())
      << when << ": follower lsn " << lsn
      << " is not a leader statement boundary";
  EXPECT_EQ(dump, it->second)
      << when << ": divergence at lsn " << lsn << " (statement prefix "
      << ref.prefix_at.at(lsn) << ")";
}

// ---- 2. Real-socket schedules, one process ---------------------------------

// The serving thread pumps the leader's replication rounds; the test thread
// polls the replica. Wall-clock bounded so a protocol bug fails instead of
// hanging.
void SocketCatchUp(GraphDatabase* leader, Replica* replica,
                   SocketTransport* transport, int64_t budget_ms = 20000) {
  int64_t deadline = SteadyNowMs() + budget_ms;
  while (SteadyNowMs() < deadline) {
    auto applied = replica->PollOnce();
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    transport->Pump();
    if (replica->bootstrapped() &&
        replica->applied_lsn() == leader->wal_writer()->appended_lsn()) {
      return;
    }
    usleep(2000);
  }
  FAIL() << "follower never caught up over the socket: applied="
         << replica->applied_lsn()
         << " leader=" << leader->wal_writer()->appended_lsn()
         << " link=" << replication::LinkStateName(transport->link().state);
}

class SocketSchedule : public ::testing::TestWithParam<Endpoint> {};

// Bootstrap + tail over a real socket: every applied boundary the follower
// passes through must be a committed leader prefix, and the final states
// must byte-match.
TEST_P(SocketSchedule, BootstrapAndTail) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  SocketReplicationServer server;
  ReplicationOptions replication;
  replication.segment_bytes = 256;
  ASSERT_TRUE(server.Start(&leader, GetParam(), replication, FastOptions())
                  .ok());

  auto transport =
      std::make_shared<SocketTransport>(server.endpoint(), FastOptions());
  Replica replica(transport);
  transport->SetHelloSource([&replica] {
    return std::make_pair(replica.token(), replica.applied_lsn());
  });

  for (const std::string& statement : ref.statements) {
    ASSERT_TRUE(leader.Run(statement).ok());
    auto applied = replica.PollOnce();
    ASSERT_TRUE(applied.ok());
    if (replica.bootstrapped()) {
      ExpectAtBoundary(ref, replica.applied_lsn(), replica.CanonicalDump(),
                       "mid-stream over socket");
    }
  }
  SocketCatchUp(&leader, &replica, transport.get());
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_EQ(server.stats().attaches, 1u);
  EXPECT_EQ(transport->link().state, LinkStatus::State::kConnected);

  transport->Close();
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Endpoints, SocketSchedule,
    ::testing::Values(Endpoint::Tcp("127.0.0.1", 0),
                      Endpoint::Unix(::testing::TempDir() +
                                     "/cypher_repl_sched.sock")),
    [](const ::testing::TestParamInfo<Endpoint>& info) {
      return info.param.kind == Endpoint::Kind::kTcp ? "Tcp" : "UnixDomain";
    });

// A paused follower goes silent; the leader's deadline drops the socket and
// the link parks in backoff (cursors freeze — no data is shipped into the
// void). On unpause the follower's own deadline fires, it redials with its
// token, the server rebinds the new fd onto the existing link, and a resend
// from the follower's announced position reconverges the stream. No second
// bootstrap: the graph is continuous through the outage.
TEST(SocketReplicationTest, FollowerPartitionReconnectsAndResumes) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  SocketReplicationServer server;
  ReplicationOptions replication;
  replication.segment_bytes = 256;
  ASSERT_TRUE(server.Start(&leader, Endpoint::Tcp("127.0.0.1", 0),
                           replication, FastOptions())
                  .ok());

  auto transport =
      std::make_shared<SocketTransport>(server.endpoint(), FastOptions());
  Replica replica(transport);
  transport->SetHelloSource([&replica] {
    return std::make_pair(replica.token(), replica.applied_lsn());
  });

  // First third: healthy tailing (ensures the bootstrap landed long before
  // the partition, so resume-not-rebootstrap below is meaningful).
  const size_t cut = ref.statements.size() / 3;
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok());
    ASSERT_TRUE(replica.PollOnce().ok());
  }
  SocketCatchUp(&leader, &replica, transport.get());
  ASSERT_EQ(replica.bootstraps(), 1u);

  // Partition: the follower freezes entirely. The leader keeps committing.
  transport->TestSetPaused(true);
  for (size_t i = cut; i < ref.statements.size(); ++i) {
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok());
  }
  // Give the leader's deadline time to declare the follower lost.
  int64_t silence_until = SteadyNowMs() + 2 * FastOptions().peer_deadline_ms;
  while (SteadyNowMs() < silence_until) usleep(5000);

  // Heal. The follower finds the server closed its side (deadline fired
  // during the silence): it must drain what was in flight, hit the EOF,
  // reconnect with its token, and get the stream rewound — all before the
  // equality checks, so wait for the reconnect explicitly rather than
  // racing it against buffered data.
  transport->TestSetPaused(false);
  int64_t reconnect_deadline = SteadyNowMs() + 15000;
  while ((transport->link().reconnects < 1 || server.stats().rebinds < 1) &&
         SteadyNowMs() < reconnect_deadline) {
    ASSERT_TRUE(replica.PollOnce().ok());
    transport->Pump();
    usleep(2000);
  }
  EXPECT_GE(transport->link().reconnects, 1u)
      << "follower never noticed the dropped connection";
  EXPECT_GE(server.stats().rebinds, 1u)
      << "server attached a new follower instead of rebinding the token";
  SocketCatchUp(&leader, &replica, transport.get());
  ExpectAtBoundary(ref, replica.applied_lsn(), replica.CanonicalDump(),
                   "after partition heal");
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_EQ(replica.bootstraps(), 1u)
      << "reconnect re-bootstrapped instead of resuming";

  transport->Close();
  server.Stop();
}

// The mirror partition: the SERVER goes silent (paused — neither accepts
// nor pumps). The follower's deadline fires, it enters backoff, dials
// repeatedly (connections queue in the listen backlog unanswered), and when
// the server wakes it processes the queued hellos and rebinds. Exercises
// exponential backoff + jitter under real refused/ignored connects.
TEST(SocketReplicationTest, ServerPauseDrivesBackoffThenRebind) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  SocketReplicationServer server;
  ReplicationOptions replication;
  replication.segment_bytes = 256;
  ASSERT_TRUE(server.Start(&leader, Endpoint::Tcp("127.0.0.1", 0),
                           replication, FastOptions())
                  .ok());

  auto transport =
      std::make_shared<SocketTransport>(server.endpoint(), FastOptions());
  Replica replica(transport);
  transport->SetHelloSource([&replica] {
    return std::make_pair(replica.token(), replica.applied_lsn());
  });

  const size_t cut = ref.statements.size() / 3;
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok());
    ASSERT_TRUE(replica.PollOnce().ok());
  }
  SocketCatchUp(&leader, &replica, transport.get());

  server.SetPaused(true);
  // The follower keeps polling into the silence: its deadline fires, it
  // drops, backs off, and retries — the link must report a non-connected
  // state while the server is dark.
  int64_t dark_until = SteadyNowMs() + 3 * FastOptions().peer_deadline_ms;
  bool saw_down = false;
  while (SteadyNowMs() < dark_until) {
    ASSERT_TRUE(replica.PollOnce().ok());
    transport->Pump();
    auto state = transport->link().state;
    if (state == LinkStatus::State::kBackoff ||
        state == LinkStatus::State::kConnecting) {
      saw_down = true;
    }
    usleep(2000);
  }
  EXPECT_TRUE(saw_down) << "follower never noticed the dark server";

  for (size_t i = cut; i < ref.statements.size(); ++i) {
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok());
  }
  server.SetPaused(false);
  SocketCatchUp(&leader, &replica, transport.get());
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_EQ(replica.bootstraps(), 1u);
  EXPECT_GE(transport->link().reconnects, 1u);

  transport->Close();
  server.Stop();
}

// Staleness cap, end to end over sockets: a follower that bootstraps and
// then freezes is auto-detached once its backlog passes the cap (the leader
// logs a warning and releases the pin). When the follower wakes and
// reconnects, the server no longer carries its link; since compaction has
// moved the base past its position, it re-bootstraps from a fresh snapshot
// and converges.
TEST(SocketReplicationTest, StalenessCapDetachesThenRebootstraps) {
  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kEveryCommit;
  durability.auto_checkpoint_bytes = 1;
  ASSERT_TRUE(
      leader.OpenDurable(std::make_unique<MemoryLogFile>(), durability).ok());

  SocketReplicationServer server;
  ReplicationOptions replication;
  replication.segment_bytes = 128;
  replication.max_retained_bytes = 512;
  ASSERT_TRUE(server.Start(&leader, Endpoint::Tcp("127.0.0.1", 0),
                           replication, FastOptions())
                  .ok());

  auto transport =
      std::make_shared<SocketTransport>(server.endpoint(), FastOptions());
  Replica replica(transport);
  transport->SetHelloSource([&replica] {
    return std::make_pair(replica.token(), replica.applied_lsn());
  });

  // Bootstrap, then freeze the follower mid-everything.
  int64_t deadline = SteadyNowMs() + 20000;
  while (!replica.bootstrapped() && SteadyNowMs() < deadline) {
    ASSERT_TRUE(replica.PollOnce().ok());
    transport->Pump();
    usleep(2000);
  }
  ASSERT_TRUE(replica.bootstrapped());
  transport->TestSetPaused(true);

  uint64_t pause_durable = leader.wal_writer()->durable_lsn();
  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, 2 * kWorkloadStatements);
  for (const std::string& statement : workload) {
    ASSERT_TRUE(leader.Run(statement).ok());
  }
  ASSERT_GT(leader.wal_writer()->durable_lsn() - pause_durable,
            replication.max_retained_bytes)
      << "workload appended too little redo to exceed the staleness cap";
  // The serving thread pumps continuously; wait for the cap to fire.
  deadline = SteadyNowMs() + 20000;
  while (leader.replication_status().stale_detaches == 0 &&
         SteadyNowMs() < deadline) {
    usleep(5000);
  }
  ReplicationStatus status = leader.replication_status();
  ASSERT_GE(status.stale_detaches, 1u) << "staleness cap never fired";
  EXPECT_FALSE(status.last_stale_warning.empty());
  EXPECT_EQ(status.followers, 0u);

  // The detach released the pin, but retention only moves at the next
  // compaction; force one (the same Rewrite the auto-checkpoint issues,
  // legal now that no pin trails). The rewrite folds every record up to the
  // current end into one snapshot frame, so the resume floor jumps past the
  // frozen follower's position and the reconnect below cannot legally
  // resume — even though base_lsn() (where the snapshot record starts) may
  // still sit below it.
  ASSERT_TRUE(leader
                  .wal_writer()
                  ->Rewrite(storage::WalRecordType::kSnapshot,
                            storage::EncodeSnapshot(leader.graph()))
                  .ok());
  ASSERT_GT(leader.wal_writer()->min_resume_lsn(), replica.applied_lsn())
      << "compaction never passed the stale follower's position";

  // Wake the follower: deadline → reconnect → unknown-to-the-database token
  // → fresh snapshot bootstrap (its old position predates retention).
  transport->TestSetPaused(false);
  SocketCatchUp(&leader, &replica, transport.get());
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_GE(replica.bootstraps(), 2u)
      << "a past-retention follower cannot resume; it must re-bootstrap";

  transport->Close();
  server.Stop();
}

// Promotion invariant at the byte level: a durable follower's WAL after the
// bootstrap record is a byte-exact slice of the leader's durable WAL ending
// at applied_lsn(). PromoteToLeader then opens that log as a standalone
// durable leader serving exactly the committed prefix — and accepting new
// writes of its own.
TEST(SocketReplicationTest, PromotionOpensByteExactPrefix) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  SocketReplicationServer server;
  ReplicationOptions replication;
  replication.segment_bytes = 256;
  ASSERT_TRUE(server.Start(&leader, Endpoint::Tcp("127.0.0.1", 0),
                           replication, FastOptions())
                  .ok());

  auto transport =
      std::make_shared<SocketTransport>(server.endpoint(), FastOptions());
  ReplicaDurability durable;
  durable.wal = std::make_unique<MemoryLogFile>();
  durable.meta = std::make_unique<MemoryLogFile>();
  auto replica_or = Replica::Open(transport, std::move(durable));
  ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
  Replica* replica = replica_or->get();
  transport->SetHelloSource([replica] {
    return std::make_pair(replica->token(), replica->applied_lsn());
  });

  for (const std::string& statement : ref.statements) {
    ASSERT_TRUE(leader.Run(statement).ok());
    ASSERT_TRUE(replica->PollOnce().ok());
  }
  SocketCatchUp(&leader, replica, transport.get());
  std::string leader_dump = DumpGraphCanonical(leader.graph());
  uint64_t applied = replica->applied_lsn();

  // Byte-prefix check while the leader is still alive to ask: the raw
  // record bytes the replica persisted must equal the leader's durable
  // range [attach_lsn, applied).
  {
    ASSERT_NE(replica->wal_file(), nullptr);
    auto local = replica->wal_file()->ReadAll();
    ASSERT_TRUE(local.ok());
    auto contents = storage::DecodeWal(*local);
    ASSERT_TRUE(contents.ok());
    ASSERT_FALSE(contents->records.empty());
    EXPECT_FALSE(contents->torn_tail);
    // [magic][bootstrap record][raw slice] — skip the first two.
    size_t off = storage::kWalMagicSize;
    off += storage::WalFrameSize(std::string_view(*local).substr(off));
    std::string local_slice = local->substr(off);

    uint64_t attach_lsn = applied - local_slice.size();
    uint64_t end = 0;
    auto leader_slice = leader.wal_writer()->ReadDurableFrom(attach_lsn, &end);
    ASSERT_TRUE(leader_slice.ok()) << leader_slice.status().ToString();
    ASSERT_GE(end, applied);
    EXPECT_EQ(local_slice, leader_slice->substr(0, local_slice.size()))
        << "follower WAL is not a byte slice of the leader's";
  }

  // Leader "crashes": server halted, database gone.
  server.Stop();
  { GraphDatabase crashed = std::move(leader); }

  auto promoted = replica->PromoteToLeader();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_TRUE(replica->sealed());
  EXPECT_EQ(DumpGraphCanonical(promoted->graph()), leader_dump)
      << "promoted leader does not serve the committed prefix";

  // The new leader is a real durable leader: it accepts writes and can
  // serve followers of its own.
  ASSERT_TRUE(promoted->Run("CREATE (:Failover {epoch: 2})").ok());
  auto wire = std::make_shared<InProcessTransport>();
  Replica next_follower(wire);
  ASSERT_TRUE(promoted->AttachFollower(wire).ok());
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(promoted->PumpReplication().ok());
    ASSERT_TRUE(next_follower.PollOnce().ok());
    if (next_follower.applied_lsn() ==
        promoted->wal_writer()->appended_lsn()) {
      break;
    }
  }
  EXPECT_EQ(next_follower.CanonicalDump(),
            DumpGraphCanonical(promoted->graph()));
}

// A sealed replica refuses everything but status.
TEST(SocketReplicationTest, SealedReplicaRefusesApply) {
  auto wire = std::make_shared<InProcessTransport>();
  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  ReplicaDurability durable;
  durable.wal = std::make_unique<MemoryLogFile>();
  durable.meta = std::make_unique<MemoryLogFile>();
  auto replica_or = Replica::Open(wire, std::move(durable));
  ASSERT_TRUE(replica_or.ok());
  Replica* replica = replica_or->get();

  ASSERT_TRUE(leader.AttachFollower(wire).ok());
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(leader.PumpReplication().ok());
    ASSERT_TRUE(replica->PollOnce().ok());
    if (replica->bootstrapped() &&
        replica->applied_lsn() == leader.wal_writer()->appended_lsn()) {
      break;
    }
  }
  ASSERT_TRUE(replica->PromoteToLeader().ok());
  EXPECT_FALSE(replica->PollOnce().ok());
  EXPECT_FALSE(replica->PromoteToLeader().ok()) << "double promotion";
}

// ---- 3. Multi-process schedules --------------------------------------------

// Drives one replica_server child over its pipe protocol. Replies are
// length-prefixed ("#<n>\n" + n bytes) so dumps with newlines read exactly.
class FollowerProcess {
 public:
  ~FollowerProcess() {
    if (pid_ > 0) Kill();
  }

  void Spawn(const std::string& endpoint, const std::string& wal,
             const std::string& meta) {
    int to_child[2], from_child[2];
    ASSERT_EQ(::pipe(to_child), 0);
    ASSERT_EQ(::pipe(from_child), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      ::execl(REPLICA_SERVER_BIN, "replica_server", endpoint.c_str(),
              wal.c_str(), meta.c_str(), nullptr);
      _exit(127);  // exec failed
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
    // Non-blocking reads so a wedged child times the test out instead of
    // hanging it.
    ::fcntl(out_fd_, F_SETFL,
            ::fcntl(out_fd_, F_GETFL, 0) | O_NONBLOCK);
  }

  // SIGKILL — no cleanup, no flush: the crash the WAL must survive.
  void Kill() {
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    CloseFds();
    pid_ = -1;
  }

  void Quit() {
    SendLine("QUIT");
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    CloseFds();
    pid_ = -1;
  }

  void SendLine(const std::string& line) {
    std::string framed = line + "\n";
    ASSERT_EQ(::write(in_fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  // One command, one reply. Bounded reads so a wedged child fails the test.
  std::string Request(const std::string& line) {
    SendLine(line);
    std::string header;
    char c = 0;
    while (ReadByte(&c) && c != '\n') header += c;
    EXPECT_FALSE(header.empty()) << "child pipe closed mid-reply";
    EXPECT_EQ(header[0], '#') << "malformed reply header: " << header;
    size_t want = std::stoul(header.substr(1));
    std::string payload;
    payload.reserve(want);
    while (payload.size() < want) {
      if (!ReadByte(&c)) break;
      payload += c;
    }
    EXPECT_EQ(payload.size(), want);
    return payload;
  }

  // "<applied> <bootstraps> <statements>"
  struct Position {
    uint64_t applied = 0;
    uint64_t bootstraps = 0;
    uint64_t statements = 0;
  };
  Position QueryPosition() {
    std::istringstream in(Request("LSN"));
    Position p;
    in >> p.applied >> p.bootstraps >> p.statements;
    return p;
  }

 private:
  bool ReadByte(char* out) {
    int64_t deadline = SteadyNowMs() + 30000;
    while (SteadyNowMs() < deadline) {
      ssize_t n = ::read(out_fd_, out, 1);
      if (n == 1) return true;
      if (n == 0) return false;  // EOF: child died
      if (errno != EAGAIN && errno != EINTR) return false;
      usleep(1000);
    }
    return false;
  }

  void CloseFds() {
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0) ::close(out_fd_);
    in_fd_ = out_fd_ = -1;
  }

  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
};

struct LeaderUnderTest {
  GraphDatabase db;
  SocketReplicationServer server;
  std::string endpoint_text;

  void Start(uint64_t seed) {
    ASSERT_TRUE(BuildRandomGraph(&db, seed).ok());
    DurabilityOptions durability;
    durability.sync_mode = DurabilityOptions::SyncMode::kEveryCommit;
    ASSERT_TRUE(
        db.OpenDurable(std::make_unique<MemoryLogFile>(), durability).ok());
    ReplicationOptions replication;
    replication.segment_bytes = 256;
    ASSERT_TRUE(server.Start(&db, Endpoint::Tcp("127.0.0.1", 0), replication,
                             FastOptions())
                    .ok());
    endpoint_text = server.endpoint().ToString();
  }
};

void AwaitChildAt(FollowerProcess* child, uint64_t lsn,
                  int64_t budget_ms = 30000) {
  int64_t deadline = SteadyNowMs() + budget_ms;
  while (SteadyNowMs() < deadline) {
    if (child->QueryPosition().applied == lsn) return;
    usleep(10000);
  }
  FAIL() << "child never reached lsn " << lsn << " (at "
         << child->QueryPosition().applied << ")";
}

// Bootstrap and tail from a separate process; snapshot reads (EXEC) serve
// while tailing; final dump byte-matches the leader.
TEST(MultiProcessReplicationTest, ChildBootstrapsTailsAndServesReads) {
  const std::string dir = ::testing::TempDir();
  const std::string wal = dir + "/mp_tail.wal";
  const std::string meta = dir + "/mp_tail.meta";
  ::unlink(wal.c_str());  // a previous run's durable state must not leak in
  ::unlink(meta.c_str());
  LeaderUnderTest leader;
  leader.Start(kSeed);

  FollowerProcess child;
  child.Spawn(leader.endpoint_text, wal, meta);

  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, kWorkloadStatements);
  for (const std::string& statement : workload) {
    ASSERT_TRUE(leader.db.Run(statement).ok());
  }
  AwaitChildAt(&child, leader.db.wal_writer()->appended_lsn());
  EXPECT_EQ(child.Request("DUMP"), DumpGraphCanonical(leader.db.graph()));

  // A read session at the applied position works while attached.
  std::string rendered = child.Request("EXEC MATCH (n) RETURN count(n)");
  EXPECT_NE(rendered.find("count"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.rfind("error:", 0), std::string::npos) << rendered;

  child.Quit();
  leader.server.Stop();
}

// kill -9 mid-stream, restart over the same WAL/meta: the new process
// recovers the durable prefix, announces the same token at its recovered
// position, and the leader REBINDS + resumes — no second snapshot crosses
// the wire. The dump still converges byte-exactly.
TEST(MultiProcessReplicationTest, Kill9RestartResumesWithoutRebootstrap) {
  const std::string dir = ::testing::TempDir();
  const std::string wal = dir + "/mp_crash.wal";
  const std::string meta = dir + "/mp_crash.meta";
  ::unlink(wal.c_str());
  ::unlink(meta.c_str());

  LeaderUnderTest leader;
  leader.Start(kSeed);

  FollowerProcess child;
  child.Spawn(leader.endpoint_text, wal, meta);

  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, kWorkloadStatements);
  const size_t cut = workload.size() / 2;
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(leader.db.Run(workload[i]).ok());
  }
  AwaitChildAt(&child, leader.db.wal_writer()->appended_lsn());
  std::string token_before = child.Request("TOKEN");
  uint64_t rebinds_before = leader.server.stats().rebinds;
  uint64_t attaches_before = leader.server.stats().attaches;

  child.Kill();  // SIGKILL: whatever was in flight is simply gone

  // The leader keeps committing into the dead follower's absence.
  for (size_t i = cut; i < workload.size(); ++i) {
    ASSERT_TRUE(leader.db.Run(workload[i]).ok());
  }

  // Same WAL, same meta, new process: recovery + reconnect hello.
  FollowerProcess revived;
  revived.Spawn(leader.endpoint_text, wal, meta);
  AwaitChildAt(&revived, leader.db.wal_writer()->appended_lsn());

  EXPECT_EQ(revived.Request("TOKEN"), token_before)
      << "identity did not survive the crash";
  FollowerProcess::Position position = revived.QueryPosition();
  EXPECT_EQ(position.bootstraps, 1u)
      << "restart re-bootstrapped instead of resuming the durable prefix";
  EXPECT_EQ(revived.Request("DUMP"), DumpGraphCanonical(leader.db.graph()));
  EXPECT_GE(leader.server.stats().rebinds, rebinds_before + 1)
      << "leader did not route the revived token to the existing link";
  EXPECT_EQ(leader.server.stats().attaches, attaches_before)
      << "leader attached a fresh follower for a resumable token";

  revived.Quit();
  leader.server.Stop();
}

// Full failover: leader crashes for good; the caught-up child PROMOTEs and
// becomes a writable leader serving exactly the old leader's committed
// prefix, then takes writes of its own.
TEST(MultiProcessReplicationTest, LeaderCrashThenChildPromotes) {
  const std::string dir = ::testing::TempDir();
  const std::string wal = dir + "/mp_promote.wal";
  const std::string meta = dir + "/mp_promote.meta";
  ::unlink(wal.c_str());  // a previous run's durable state must not leak in
  ::unlink(meta.c_str());
  std::string leader_dump;
  uint64_t final_lsn = 0;

  FollowerProcess child;
  {
    LeaderUnderTest leader;
    leader.Start(kSeed);
    child.Spawn(leader.endpoint_text, wal, meta);

    const std::vector<std::string> workload =
        GenerateUpdateWorkload(kSeed, kWorkloadStatements);
    for (const std::string& statement : workload) {
      ASSERT_TRUE(leader.db.Run(statement).ok());
    }
    final_lsn = leader.db.wal_writer()->appended_lsn();
    AwaitChildAt(&child, final_lsn);
    leader_dump = DumpGraphCanonical(leader.db.graph());

    leader.server.Stop();  // abrupt: the "crash"
  }  // leader database destroyed

  FollowerProcess::Position at_crash = child.QueryPosition();
  EXPECT_EQ(at_crash.applied, final_lsn);

  std::string promoted = child.Request("PROMOTE");
  EXPECT_EQ(promoted.rfind("promoted ", 0), 0u) << promoted;
  EXPECT_EQ(child.Request("DUMP"), leader_dump)
      << "promoted leader diverged from the committed prefix";

  // Writes now land on the promoted leader.
  std::string write = child.Request("EXEC CREATE (:Failover {epoch: 2})");
  EXPECT_EQ(write.rfind("error:", 0), std::string::npos) << write;
  std::string read =
      child.Request("EXEC MATCH (f:Failover) RETURN f.epoch AS epoch");
  EXPECT_NE(read.find("2"), std::string::npos) << read;

  child.Quit();
}

}  // namespace
}  // namespace cypher
