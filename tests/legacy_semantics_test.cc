// Focused legacy (Cypher 9) semantics coverage beyond the paper's headline
// examples: record-at-a-time visibility, scan-order sweeps across all
// legacy executors, and the syntactic WITH rule's (non-)relationship to
// visibility.

#include <gtest/gtest.h>

#include <set>

#include "graph/isomorphism.h"
#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

EvalOptions Legacy(ScanOrder order = ScanOrder::kForward, uint64_t seed = 0) {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  o.scan_order = order;
  o.shuffle_seed = seed;
  return o;
}

TEST(LegacyVisibilityTest, WritesVisibleImmediatelyWithoutWith) {
  // In legacy Cypher the WITH rule was purely syntactic (Section 4.4): the
  // effects are visible as soon as the clause ran, WITH or not. Our engine
  // accepts the free ordering and shows the same visibility.
  GraphDatabase db(Legacy());
  QueryResult r = RunOk(&db, "CREATE (:N {v: 1}) MATCH (m:N) RETURN m.v AS v");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST(LegacyVisibilityTest, StrictSyntaxOnlyRejectsShape) {
  // strict_cypher9_syntax enforces the grammar of Figure 2 but does not
  // change visibility: with a WITH in between the result is identical.
  EvalOptions strict = Legacy();
  strict.strict_cypher9_syntax = true;
  GraphDatabase db(strict);
  QueryResult r = RunOk(
      &db, "CREATE (:N {v: 1}) WITH 1 AS one MATCH (m:N) RETURN m.v AS v");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST(LegacyScanOrderTest, SetLastWriterWinsFollowsOrder) {
  for (ScanOrder order : {ScanOrder::kForward, ScanOrder::kReverse}) {
    GraphDatabase db(Legacy(order));
    ASSERT_TRUE(db.Run("CREATE (:S {v: 'first'}), (:S {v: 'second'}), (:T)")
                    .ok());
    ASSERT_TRUE(db.Run("MATCH (s:S), (t:T) SET t.x = s.v").ok());
    Value got = Scalar(RunOk(&db, "MATCH (t:T) RETURN t.x AS x"));
    // Last processed record wins; the record order flips with scan order.
    EXPECT_EQ(got.AsString(),
              order == ScanOrder::kForward ? "second" : "first");
  }
}

TEST(LegacyScanOrderTest, RevisedModeRejectsTheSameQueryInstead) {
  GraphDatabase db;  // revised
  ASSERT_TRUE(db.Run("CREATE (:S {v: 'first'}), (:S {v: 'second'}), (:T)")
                  .ok());
  EXPECT_FALSE(db.Run("MATCH (s:S), (t:T) SET t.x = s.v").ok());
}

TEST(LegacyScanOrderTest, ShuffleSweepFindsBothSetOutcomes) {
  std::set<std::string> outcomes;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    GraphDatabase db(Legacy(ScanOrder::kShuffle, seed));
    ASSERT_TRUE(db.Run("CREATE (:S {v: 'a'}), (:S {v: 'b'}), (:T)").ok());
    ASSERT_TRUE(db.Run("MATCH (s:S), (t:T) SET t.x = s.v").ok());
    outcomes.insert(
        Scalar(RunOk(&db, "MATCH (t:T) RETURN t.x AS x")).AsString());
  }
  EXPECT_EQ(outcomes.size(), 2u) << "legacy SET should be order-dependent";
}

TEST(LegacyMergeChainTest, SelfFeedingMergeGrowsOrderDependently) {
  // A MERGE whose created nodes can satisfy later records: the classic
  // read-own-writes cascade. Forward order lets later records match
  // earlier creations; reverse order creates more.
  auto run = [](ScanOrder order) {
    GraphDatabase db(Legacy(order));
    auto r = db.Execute(
        "UNWIND [1, 1, 2, 2, 3, 3] AS v MERGE (:N {v: v})");
    EXPECT_TRUE(r.ok());
    return db.graph().num_nodes();
  };
  EXPECT_EQ(run(ScanOrder::kForward), 3u);
  EXPECT_EQ(run(ScanOrder::kReverse), 3u);  // symmetric table: same count
  // An asymmetric cascade: each record merges a rel from the previous
  // record's node; the created graph differs by order.
  auto cascade = [](ScanOrder order) {
    GraphDatabase db(Legacy(order));
    EXPECT_TRUE(db.Run("CREATE (:P {k: 1}), (:P {k: 2})").ok());
    EXPECT_TRUE(db.Run("UNWIND [[1, 2], [2, 1]] AS pair "
                       "MATCH (a:P {k: pair[0]}), (b:P {k: pair[1]}) "
                       "MERGE (a)-[:T]-(b)")
                    .ok());
    return db.graph().num_rels();
  };
  // Undirected merge: the second record matches the first record's rel in
  // reverse, so only one rel exists regardless of order here.
  EXPECT_EQ(cascade(ScanOrder::kForward), 1u);
  EXPECT_EQ(cascade(ScanOrder::kReverse), 1u);
}

TEST(LegacyZombieTest, ZombiePropertiesUnreadable) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1, secret: 'x'})").ok());
  QueryResult r = RunOk(&db,
                        "MATCH (n:N) DELETE n "
                        "RETURN n.secret AS s, labels(n) AS l");
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[0][1].AsList().size(), 0u);
}

TEST(LegacyZombieTest, ZombieCannotAnchorNewRelationships) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1}), (:M {id: 2})").ok());
  // CREATE from a deleted node must fail (even legacy Neo4j errors here).
  auto r = db.Execute("MATCH (n:N), (m:M) DELETE n CREATE (n)-[:T]->(m)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(db.graph().num_nodes(), 2u);  // rolled back
}

TEST(LegacyDeleteTest, DetachDeleteOrderInsensitiveHere) {
  // DETACH DELETE is idempotent per entity, so scan order cannot matter.
  std::set<uint64_t> fingerprints;
  for (ScanOrder order :
       {ScanOrder::kForward, ScanOrder::kReverse, ScanOrder::kShuffle}) {
    GraphDatabase db(Legacy(order, 3));
    ASSERT_TRUE(db.Run("CREATE (a:N {k: 1})-[:T]->(b:N {k: 2}), "
                       "(b)-[:T]->(c:N {k: 3}), (c)-[:T]->(a)")
                    .ok());
    ASSERT_TRUE(db.Run("MATCH (n:N) WHERE n.k < 3 DETACH DELETE n").ok());
    fingerprints.insert(GraphFingerprint(db.graph()));
  }
  EXPECT_EQ(fingerprints.size(), 1u);
}

TEST(LegacyRemoveTest, RemoveIsOrderInsensitive) {
  std::set<uint64_t> fingerprints;
  for (ScanOrder order : {ScanOrder::kForward, ScanOrder::kReverse}) {
    GraphDatabase db(Legacy(order));
    ASSERT_TRUE(db.Run("CREATE (:A:Tag {v: 1, junk: 9}), "
                       "(:B:Tag {v: 2, junk: 8})")
                    .ok());
    ASSERT_TRUE(db.Run("MATCH (n:Tag) REMOVE n:Tag, n.junk").ok());
    fingerprints.insert(GraphFingerprint(db.graph()));
  }
  EXPECT_EQ(fingerprints.size(), 1u);
}

TEST(LegacyOnMatchTest, OnMatchSetAppliesPerMatchedRow) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:N {k: 1, hits: 0}), (:N {k: 1, hits: 0})")
                  .ok());
  // Both matching nodes get their ON MATCH SET applied.
  ASSERT_TRUE(db.Run("MERGE (n:N {k: 1}) ON MATCH SET n.hits = n.hits + 1")
                  .ok());
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN sum(n.hits) AS h");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
}

}  // namespace
}  // namespace cypher
