#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/interner.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace cypher {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::SyntaxError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kSyntaxError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "SyntaxError: bad token");
}

TEST(StatusTest, CopyShares) {
  Status a = Status::ExecutionError("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(b.code(), StatusCode::kExecutionError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(Result<int> in) {
  CYPHER_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::InternalError("x")).ok());
}

TEST(InternerTest, InternIsIdempotent) {
  Interner interner;
  Symbol a = interner.Intern("User");
  Symbol b = interner.Intern("Product");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("User"), a);
  EXPECT_EQ(interner.Name(a), "User");
  EXPECT_EQ(interner.Name(b), "Product");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, FindDoesNotIntern) {
  Interner interner;
  EXPECT_EQ(interner.Find("missing"), kNoSymbol);
  EXPECT_EQ(interner.size(), 0u);
  Symbol s = interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), s);
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("MERGE", "merge"));
  EXPECT_TRUE(EqualsIgnoreCase("MaTcH", "mAtCh"));
  EXPECT_FALSE(EqualsIgnoreCase("MATCH", "MATC"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.0), "1.0");
  EXPECT_EQ(FormatDouble(-3.0), "-3.0");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.1), "0.1");
}

TEST(StringsTest, QuoteString) {
  EXPECT_EQ(QuoteString("it's"), "'it\\'s'");
  EXPECT_EQ(QuoteString("a\nb"), "'a\\nb'");
}

TEST(CsvTest, ParsesHeaderAndRows) {
  auto doc = ParseCsv("cid,pid\n98,125\n99,\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"cid", "pid"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][1], "");
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto doc = ParseCsv("name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "a,b");
  EXPECT_EQ(doc->rows[1][0], "say \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto doc = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, RoundTrip) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  doc.rows = {{"1", "a,b"}, {"2", "plain"}};
  auto parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(RandomTest, DeterministicStream) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, RangesRespected) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ShufflePermutes) {
  SplitMix64 rng(11);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(&items);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

}  // namespace
}  // namespace cypher
