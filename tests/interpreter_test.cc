// Statement-level behaviours: atomicity/rollback, unions with updates,
// parameters, script splitting, rendering, strict Cypher 9 syntax mode.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(InterpreterTest, UpdateOnlyStatementsReturnNoRows) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "CREATE (:N)");
  EXPECT_TRUE(r.columns.empty());
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(r.stats.nodes_created, 1u);
}

TEST(InterpreterTest, FailedStatementIsCompletelyRolledBack) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:Base {v: 1})").ok());
  // Creates nodes, sets properties, deletes things... then errors.
  EXPECT_FALSE(db.Execute("MATCH (b:Base) "
                          "CREATE (x:Tmp {v: 2}) "
                          "SET b.v = 99 "
                          "DETACH DELETE b "
                          "WITH x RETURN x.v / 0")
                   .ok());
  QueryResult r = RunOk(&db, "MATCH (n) RETURN count(n) AS c, sum(n.v) AS s");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
}

TEST(InterpreterTest, SequentialStatementsCommitIndependently) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:A)").ok());
  EXPECT_FALSE(db.Run("CREATE (:B) WITH 1 AS x RETURN x / 0").ok());
  ASSERT_TRUE(db.Run("CREATE (:C)").ok());
  EXPECT_EQ(db.graph().num_nodes(), 2u);  // A and C, not B
}

TEST(InterpreterTest, UnionAppliesUpdatesLeftToRight) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "CREATE (a:N {v: 1}) RETURN a.v AS v "
                        "UNION ALL CREATE (b:N {v: 2}) RETURN b.v AS v");
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  // The second branch ran against the graph updated by the first.
  QueryResult r2 = RunOk(&db,
                         "MATCH (n:N) RETURN count(n) AS c "
                         "UNION ALL CREATE (:N {v: 3}) "
                         "WITH 1 AS one MATCH (n:N) RETURN count(n) AS c");
  ASSERT_EQ(r2.rows.size(), 2u);
  EXPECT_EQ(r2.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r2.rows[1][0].AsInt(), 3);
}

TEST(InterpreterTest, MixedUnionKindsRejected) {
  GraphDatabase db;
  EXPECT_FALSE(db.Execute("RETURN 1 AS x UNION RETURN 2 AS x "
                          "UNION ALL RETURN 3 AS x")
                   .ok());
}

TEST(InterpreterTest, UnionBranchReturnMismatchRejected) {
  GraphDatabase db;
  EXPECT_FALSE(db.Execute("CREATE (:N) UNION ALL RETURN 1 AS x").ok());
}

TEST(InterpreterTest, ParametersOfAllTypes) {
  GraphDatabase db;
  ValueMap params;
  params.emplace("i", Value::Int(42));
  params.emplace("s", Value::String("hi"));
  params.emplace("list", Value::List({Value::Int(1), Value::Int(2)}));
  params.emplace("map", Value::Map({{"k", Value::Bool(true)}}));
  QueryResult r = RunOk(&db,
                        "RETURN $i AS i, $s AS s, size($list) AS n, "
                        "$map.k AS k",
                        params);
  EXPECT_EQ(r.rows[0][0].AsInt(), 42);
  EXPECT_EQ(r.rows[0][1].AsString(), "hi");
  EXPECT_EQ(r.rows[0][2].AsInt(), 2);
  EXPECT_TRUE(r.rows[0][3].AsBool());
}

TEST(InterpreterTest, SplitStatementsIgnoresSemicolonsInStrings) {
  auto statements = SplitStatements(
      "CREATE (:A {s: 'a;b'});\nCREATE (:B); \n ;RETURN 1 AS x");
  ASSERT_TRUE(statements.ok());
  ASSERT_EQ(statements->size(), 3u);
  EXPECT_EQ((*statements)[0], "CREATE (:A {s: 'a;b'})");
  EXPECT_EQ((*statements)[2], "RETURN 1 AS x");
}

TEST(InterpreterTest, ExecuteScriptStopsAtFirstError) {
  GraphDatabase db;
  auto results = db.ExecuteScript("CREATE (:A); CREATE (:B)-[:T]-(:C); "
                                  "CREATE (:D)");
  EXPECT_FALSE(results.ok());
  EXPECT_EQ(db.graph().num_nodes(), 1u);  // only :A committed
}

TEST(InterpreterTest, StrictCypher9SyntaxRule) {
  EvalOptions options;
  options.semantics = SemanticsMode::kLegacy;
  options.strict_cypher9_syntax = true;
  GraphDatabase db(options);
  // Reading clause directly after update: rejected under the strict rule.
  Status st = RunErr(&db, "CREATE (:N) MATCH (m:N) RETURN m");
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
  // WITH in between makes it legal.
  EXPECT_TRUE(
      db.Execute("CREATE (:N) WITH 1 AS one MATCH (m:N) RETURN m").ok());
  // The revised syntax (default) drops the rule.
  GraphDatabase relaxed;
  EXPECT_TRUE(
      relaxed.Execute("CREATE (:N) MATCH (m:N) RETURN m").ok());
}

TEST(InterpreterTest, StatsLine) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "CREATE (:A {x: 1})-[:T]->(:B)");
  std::string stats = r.stats.ToString();
  EXPECT_NE(stats.find("2 nodes created"), std::string::npos);
  EXPECT_NE(stats.find("1 relationships created"), std::string::npos);
  UpdateStats empty;
  EXPECT_EQ(empty.ToString(), "no changes");
}

TEST(InterpreterTest, RenderResultTable) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 89, name: 'Bob'})").ok());
  QueryResult r = RunOk(&db, "MATCH (u:User) RETURN u, u.name AS name");
  std::string text = RenderResult(db.graph(), r);
  EXPECT_NE(text.find("(:User {id: 89, name: 'Bob'})"), std::string::npos);
  EXPECT_NE(text.find("'Bob'"), std::string::npos);
  EXPECT_NE(text.find("1 row"), std::string::npos);
}

TEST(InterpreterTest, RenderPathAndRel) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:A)-[:T {w: 1}]->(:B)").ok());
  QueryResult r = RunOk(&db, "MATCH p = (:A)-[t:T]->(:B) RETURN p, t");
  std::string text = RenderResult(db.graph(), r);
  EXPECT_NE(text.find("-[:T {w: 1}]->"), std::string::npos);
}

TEST(InterpreterTest, PerStatementOptionOverride) {
  GraphDatabase db;  // revised session
  ASSERT_TRUE(db.Run("CREATE (:P {name: 'laptop', id: 1}), "
                     "(:P {name: 'tablet', id: 2})")
                  .ok());
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  auto r = db.Execute(
      "MATCH (a:P {name: 'laptop'}), (b:P {name: 'tablet'}) "
      "SET a.id = b.id, b.id = a.id",
      {}, legacy);
  ASSERT_TRUE(r.ok());
  // Legacy behaviour even though the session default is revised.
  QueryResult ids = RunOk(&db, "MATCH (p:P) RETURN p.id AS i ORDER BY p.name");
  EXPECT_EQ(ids.rows[0][0].AsInt(), 2);
  EXPECT_EQ(ids.rows[1][0].AsInt(), 2);
}

TEST(InterpreterTest, RowLimitGuard) {
  EvalOptions options;
  options.max_rows = 10;
  GraphDatabase db(options);
  // 4 x 4 = 16 rows exceeds the limit of 10.
  auto blown = db.Execute(
      "UNWIND range(1, 4) AS a UNWIND range(1, 4) AS b CREATE (:N)");
  ASSERT_FALSE(blown.ok());
  EXPECT_EQ(blown.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(blown.status().message().find("row limit"), std::string::npos);
  EXPECT_EQ(db.graph().num_nodes(), 0u);  // rolled back
  // Within the limit everything works.
  EXPECT_TRUE(db.Run("UNWIND range(1, 10) AS a RETURN a").ok());
  // 0 means unlimited.
  db.options().max_rows = 0;
  EXPECT_TRUE(
      db.Run("UNWIND range(1, 50) AS a UNWIND range(1, 50) AS b RETURN a")
          .ok());
}

TEST(InterpreterTest, EmptyStatementRejected) {
  GraphDatabase db;
  EXPECT_FALSE(db.Execute("").ok());
  EXPECT_FALSE(db.Execute("   ").ok());
}

TEST(InterpreterTest, LargeChainOfClauses) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "CREATE (a:N {v: 1}) "
                        "CREATE (b:N {v: 2}) "
                        "CREATE (a)-[:T]->(b) "
                        "WITH a, b "
                        "MATCH (x:N)-[:T]->(y:N) "
                        "SET x.seen = true "
                        "CREATE (y)-[:BACK]->(x) "
                        "WITH x, y "
                        "MATCH (p)-[:BACK]->(q) "
                        "RETURN p.v AS pv, q.v AS qv, q.seen AS seen");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_TRUE(r.rows[0][2].AsBool());
}

}  // namespace
}  // namespace cypher
