// Property-index tests: DDL, lookup correctness under mutation and
// rollback, matcher integration equivalence (indexed and unindexed MATCH
// return identical results).

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "value/compare.h"
#include "test_util.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(IndexTest, CreateIndexStatementParsesAndApplies) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  EXPECT_TRUE(db.graph().HasIndex(db.graph().FindLabel("User"),
                                  db.graph().FindKey("id")));
  // Idempotent.
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  EXPECT_EQ(db.graph().Indexes().size(), 1u);
}

TEST(IndexTest, IndexesExistingNodes) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:User {id: 2}), "
                     "(:Product {id: 1})")
                  .ok());
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  const PropertyGraph& g = db.graph();
  auto hits = g.IndexLookup(g.FindLabel("User"), g.FindKey("id"),
                            Value::Int(1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(g.NodeHasLabel(hits[0], g.FindLabel("User")));
}

TEST(IndexTest, MaintainsOnCreateSetLabelAndReplace) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 10})").ok());  // create
  ASSERT_TRUE(db.Run("CREATE (:Person {id: 20})").ok());
  ASSERT_TRUE(db.Run("MATCH (p:Person) SET p:User").ok());  // label add
  ASSERT_TRUE(db.Run("CREATE (:User)").ok());
  ASSERT_TRUE(db.Run("MATCH (u:User) WHERE u.id IS NULL SET u.id = 30").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 0})").ok());
  ASSERT_TRUE(db.Run("MATCH (u:User {id: 0}) SET u = {id: 40}").ok());
  const PropertyGraph& g = db.graph();
  Symbol user = g.FindLabel("User");
  Symbol id = g.FindKey("id");
  for (int64_t want : {10, 20, 30, 40}) {
    EXPECT_EQ(g.IndexLookup(user, id, Value::Int(want)).size(), 1u)
        << "id " << want;
  }
}

TEST(IndexTest, StaleEntriesFilteredAfterChanges) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  ASSERT_TRUE(db.Run("MATCH (u:User {id: 1}) SET u.id = 2").ok());
  const PropertyGraph& g = db.graph();
  EXPECT_TRUE(g.IndexLookup(g.FindLabel("User"), g.FindKey("id"),
                            Value::Int(1))
                  .empty());
  EXPECT_EQ(g.IndexLookup(g.FindLabel("User"), g.FindKey("id"), Value::Int(2))
                .size(),
            1u);
  // Delete: no longer served.
  ASSERT_TRUE(db.Run("MATCH (u:User {id: 2}) DELETE u").ok());
  EXPECT_TRUE(g.IndexLookup(g.FindLabel("User"), g.FindKey("id"),
                            Value::Int(2))
                  .empty());
}

TEST(IndexTest, RollbackSafety) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  // This statement changes id to 9, then fails; rollback restores id 1.
  EXPECT_FALSE(
      db.Run("MATCH (u:User {id: 1}) SET u.id = 9 WITH u RETURN u.id / 0")
          .ok());
  QueryResult r = RunOk(&db, "MATCH (u:User {id: 1}) RETURN count(u) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
  QueryResult r9 = RunOk(&db, "MATCH (u:User {id: 9}) RETURN count(u) AS c");
  EXPECT_EQ(Scalar(r9).AsInt(), 0);
}

TEST(IndexTest, GroupEqualNumericLookup) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :N(v)").ok());
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  // Filter with 1.0 must find the node stored with integer 1.
  QueryResult r = RunOk(&db, "MATCH (n:N {v: 1.0}) RETURN count(n) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST(IndexTest, MatchResultsIdenticalWithAndWithoutIndex) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    GraphDatabase plain;
    GraphDatabase indexed;
    ASSERT_TRUE(indexed.Run("CREATE INDEX ON :User(id)").ok());
    ASSERT_TRUE(indexed.Run("CREATE INDEX ON :Product(id)").ok());
    ASSERT_TRUE(
        workload::LoadRandomMarketplace(&plain, 20, 10, 40, seed).ok());
    ASSERT_TRUE(
        workload::LoadRandomMarketplace(&indexed, 20, 10, 40, seed).ok());
    const char* probes[] = {
        "MATCH (u:User {id: 3}) RETURN count(u) AS c",
        "MATCH (u:User {id: 3})-[:ORDERED]->(p:Product) "
        "RETURN count(p) AS c",
        "MATCH (u:User {id: 99}) RETURN count(u) AS c",  // absent id
        "MATCH (p:Product {id: 2})<-[:ORDERED]-(u) RETURN count(u) AS c",
    };
    for (const char* probe : probes) {
      QueryResult a = RunOk(&plain, probe);
      QueryResult b = RunOk(&indexed, probe);
      EXPECT_TRUE(GroupEquals(a.rows[0][0], b.rows[0][0]))
          << probe << " seed " << seed;
    }
  }
}

TEST(IndexTest, MergeUsesIndexSemanticsUnchanged) {
  GraphDatabase plain;
  GraphDatabase indexed;
  ASSERT_TRUE(indexed.Run("CREATE INDEX ON :User(id)").ok());
  ASSERT_TRUE(indexed.Run("CREATE INDEX ON :Product(id)").ok());
  Value rows = workload::RandomOrderRows(60, 10, 10, 100, 8);
  ASSERT_TRUE(plain
                  .Execute(workload::Example5Query("MERGE SAME"),
                           {{"rows", rows}})
                  .ok());
  ASSERT_TRUE(indexed
                  .Execute(workload::Example5Query("MERGE SAME"),
                           {{"rows", rows}})
                  .ok());
  EXPECT_TRUE(AreIsomorphic(plain.graph(), indexed.graph()));
}

TEST(IndexTest, NullFilterNeverServedByIndex) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :N(v)").ok());
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1}), (:N)").ok());
  QueryResult r = RunOk(&db, "MATCH (n:N {v: null}) RETURN count(n) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 0);
}

TEST(IndexTest, CompactsBucketsOnceMostlyStale) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  ASSERT_TRUE(db.Run("UNWIND range(1, 20) AS i CREATE (:User {id: i})").ok());
  const PropertyGraph& g = db.graph();
  Symbol user = g.FindLabel("User");
  Symbol id = g.FindKey("id");
  EXPECT_EQ(g.IndexEntryCount(user, id), 20u);

  // Rewriting every id leaves the old entries stale: half the index. The
  // commit-time sweep must drop them instead of letting the index grow
  // without bound.
  ASSERT_TRUE(db.Run("MATCH (u:User) SET u.id = u.id + 100").ok());
  EXPECT_EQ(g.IndexEntryCount(user, id), 20u)
      << "commit-time sweep should have dropped the 20 stale entries";

  // Lookups stay correct throughout.
  EXPECT_TRUE(g.IndexLookup(user, id, Value::Int(1)).empty());
  EXPECT_EQ(g.IndexLookup(user, id, Value::Int(101)).size(), 1u);

  // A failed statement must not compact away entries its rollback revives.
  EXPECT_FALSE(
      db.Run("MATCH (u:User) SET u.id = u.id + 1 WITH u RETURN u.id / 0")
          .ok());
  EXPECT_EQ(g.IndexLookup(user, id, Value::Int(101)).size(), 1u);
}

TEST(IndexTest, IndexSurvivesFailedStatement) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :N(v)").ok());
  EXPECT_FALSE(db.Run("CREATE (:N {v: 1}) WITH 1 AS x RETURN x / 0").ok());
  EXPECT_TRUE(db.graph().HasIndex(db.graph().FindLabel("N"),
                                  db.graph().FindKey("v")));
  // The rolled-back node is not served.
  QueryResult r = RunOk(&db, "MATCH (n:N {v: 1}) RETURN count(n) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 0);
}

}  // namespace
}  // namespace cypher
