#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/serialize.h"

namespace cypher {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  PropertyGraph g;

  NodeId MakeNode(const std::string& label, int64_t id) {
    PropertyMap props;
    props.Set(g.InternKey("id"), Value::Int(id));
    return g.CreateNode({g.InternLabel(label)}, std::move(props));
  }
};

TEST_F(GraphTest, CreateNodeBasics) {
  NodeId n = MakeNode("User", 89);
  EXPECT_TRUE(g.IsNodeAlive(n));
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_TRUE(g.NodeHasLabel(n, g.FindLabel("User")));
  EXPECT_EQ(g.node(n).props.Get(g.FindKey("id")).AsInt(), 89);
}

TEST_F(GraphTest, LabelsAreSortedAndDeduplicated) {
  Symbol a = g.InternLabel("B");
  Symbol b = g.InternLabel("A");
  NodeId n = g.CreateNode({a, b, a}, {});
  EXPECT_EQ(g.node(n).labels.size(), 2u);
  EXPECT_TRUE(std::is_sorted(g.node(n).labels.begin(), g.node(n).labels.end()));
}

TEST_F(GraphTest, CreateRelLinksAdjacency) {
  NodeId u = MakeNode("User", 1);
  NodeId p = MakeNode("Product", 2);
  auto r = g.CreateRel(u, p, g.InternType("ORDERED"), {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(g.num_rels(), 1u);
  EXPECT_EQ(g.OutRels(u).size(), 1u);
  EXPECT_EQ(g.InRels(p).size(), 1u);
  EXPECT_EQ(g.rel(*r).src, u);
  EXPECT_EQ(g.rel(*r).tgt, p);
  EXPECT_EQ(g.Degree(u), 1u);
}

TEST_F(GraphTest, CreateRelToDeadNodeFails) {
  NodeId u = MakeNode("User", 1);
  NodeId p = MakeNode("Product", 2);
  g.DeleteNode(p);
  EXPECT_FALSE(g.CreateRel(u, p, g.InternType("T"), {}).ok());
}

TEST_F(GraphTest, NodesByLabelFiltersDeadAndRelabeled) {
  NodeId a = MakeNode("User", 1);
  NodeId b = MakeNode("User", 2);
  MakeNode("Product", 3);
  EXPECT_EQ(g.NodesByLabel(g.FindLabel("User")).size(), 2u);
  g.DeleteNode(a);
  EXPECT_EQ(g.NodesByLabel(g.FindLabel("User")).size(), 1u);
  g.RemoveLabel(b, g.FindLabel("User"));
  EXPECT_TRUE(g.NodesByLabel(g.FindLabel("User")).empty());
}

TEST_F(GraphTest, DeleteRelUnlinksAdjacency) {
  NodeId u = MakeNode("User", 1);
  NodeId p = MakeNode("Product", 2);
  RelId r = *g.CreateRel(u, p, g.InternType("T"), {});
  g.DeleteRel(r);
  EXPECT_FALSE(g.IsRelAlive(r));
  EXPECT_TRUE(g.OutRels(u).empty());
  EXPECT_EQ(g.num_rels(), 0u);
  g.DeleteRel(r);  // idempotent
  EXPECT_EQ(g.num_rels(), 0u);
}

TEST_F(GraphTest, ForceDeleteLeavesDanglingRel) {
  NodeId u = MakeNode("User", 1);
  NodeId p = MakeNode("Product", 2);
  ASSERT_TRUE(g.CreateRel(u, p, g.InternType("T"), {}).ok());
  EXPECT_FALSE(g.HasDanglingRels());
  g.DeleteNodeForce(u);
  EXPECT_TRUE(g.HasDanglingRels());
  EXPECT_FALSE(g.IsNodeAlive(u));
  // The zombie's labels and properties are cleared (Section 4.2's "empty
  // node").
  EXPECT_TRUE(g.node(u).labels.empty());
  EXPECT_TRUE(g.node(u).props.empty());
}

TEST_F(GraphTest, SetPropertyAndNullErases) {
  NodeId n = MakeNode("User", 1);
  EntityRef e = EntityRef::Node(n);
  Symbol key = g.InternKey("name");
  EXPECT_TRUE(g.SetProperty(e, key, Value::String("Bob")));
  EXPECT_FALSE(g.SetProperty(e, key, Value::String("Bob")));  // unchanged
  EXPECT_TRUE(g.SetProperty(e, key, Value::Null()));
  EXPECT_FALSE(g.node(n).props.Has(key));
}

TEST_F(GraphTest, ReplaceProperties) {
  NodeId n = MakeNode("User", 1);
  PropertyMap next;
  next.Set(g.InternKey("x"), Value::Int(1));
  g.ReplaceProperties(EntityRef::Node(n), std::move(next));
  EXPECT_FALSE(g.node(n).props.Has(g.FindKey("id")));
  EXPECT_EQ(g.node(n).props.Get(g.FindKey("x")).AsInt(), 1);
}

// ---- Journal ----------------------------------------------------------------

TEST_F(GraphTest, RollbackUndoesCreation) {
  NodeId before = MakeNode("Keep", 0);
  auto mark = g.BeginJournal();
  NodeId n = MakeNode("User", 1);
  NodeId m = MakeNode("User", 2);
  ASSERT_TRUE(g.CreateRel(n, m, g.InternType("T"), {}).ok());
  g.RollbackTo(mark);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_rels(), 0u);
  EXPECT_TRUE(g.IsNodeAlive(before));
  EXPECT_FALSE(g.IsNodeAlive(n));
}

TEST_F(GraphTest, RollbackUndoesDeletion) {
  NodeId u = MakeNode("User", 1);
  NodeId p = MakeNode("Product", 2);
  RelId r = *g.CreateRel(u, p, g.InternType("T"), {});
  auto mark = g.BeginJournal();
  g.DeleteRel(r);
  g.DeleteNode(u);
  EXPECT_EQ(g.num_nodes(), 1u);
  g.RollbackTo(mark);
  EXPECT_TRUE(g.IsNodeAlive(u));
  EXPECT_TRUE(g.IsRelAlive(r));
  EXPECT_EQ(g.OutRels(u).size(), 1u);
  EXPECT_TRUE(g.NodeHasLabel(u, g.FindLabel("User")));
  EXPECT_EQ(g.node(u).props.Get(g.FindKey("id")).AsInt(), 1);
}

TEST_F(GraphTest, RollbackUndoesPropertyAndLabelChanges) {
  NodeId n = MakeNode("User", 1);
  auto mark = g.BeginJournal();
  g.SetProperty(EntityRef::Node(n), g.InternKey("id"), Value::Int(999));
  g.SetProperty(EntityRef::Node(n), g.InternKey("fresh"), Value::Bool(true));
  g.AddLabel(n, g.InternLabel("Extra"));
  g.RemoveLabel(n, g.FindLabel("User"));
  PropertyMap next;
  g.ReplaceProperties(EntityRef::Node(n), std::move(next));
  g.RollbackTo(mark);
  EXPECT_EQ(g.node(n).props.Get(g.FindKey("id")).AsInt(), 1);
  EXPECT_FALSE(g.node(n).props.Has(g.FindKey("fresh")));
  EXPECT_TRUE(g.NodeHasLabel(n, g.FindLabel("User")));
  EXPECT_FALSE(g.NodeHasLabel(n, g.FindLabel("Extra")));
}

TEST_F(GraphTest, CommitKeepsChanges) {
  auto mark = g.BeginJournal();
  NodeId n = MakeNode("User", 1);
  g.CommitTo(mark);
  EXPECT_TRUE(g.IsNodeAlive(n));
  // After commit the journal is empty; a rollback to 0 is a no-op.
  g.RollbackTo(0);
  EXPECT_TRUE(g.IsNodeAlive(n));
}

TEST_F(GraphTest, RollbackForceDeleteRestoresLabelsAndProps) {
  NodeId u = MakeNode("User", 42);
  auto mark = g.BeginJournal();
  g.DeleteNodeForce(u);
  g.RollbackTo(mark);
  EXPECT_TRUE(g.IsNodeAlive(u));
  EXPECT_TRUE(g.NodeHasLabel(u, g.FindLabel("User")));
  EXPECT_EQ(g.node(u).props.Get(g.FindKey("id")).AsInt(), 42);
}

// ---- Serialization -----------------------------------------------------------

TEST_F(GraphTest, DumpLoadRoundTrip) {
  NodeId u = MakeNode("User", 89);
  g.SetProperty(EntityRef::Node(u), g.InternKey("name"),
                Value::String("Bob"));
  NodeId p = MakeNode("Product", 125);
  PropertyMap rel_props;
  rel_props.Set(g.InternKey("qty"), Value::Int(2));
  ASSERT_TRUE(g.CreateRel(u, p, g.InternType("ORDERED"),
                          std::move(rel_props)).ok());
  std::string dump = DumpGraph(g);
  auto loaded = LoadGraph(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 2u);
  EXPECT_EQ(loaded->num_rels(), 1u);
  EXPECT_EQ(DumpGraph(*loaded), dump);
}

TEST_F(GraphTest, LoadRejectsMalformedInput) {
  EXPECT_FALSE(LoadGraph("garbage 1 2 3").ok());
  EXPECT_FALSE(LoadGraph("rel 0 0 1 :T {}").ok());  // unknown ordinals
  EXPECT_FALSE(LoadGraph("node 0 :User {id: }").ok());
}

TEST_F(GraphTest, ToDotMentionsEntities) {
  NodeId u = MakeNode("User", 1);
  NodeId p = MakeNode("Product", 2);
  ASSERT_TRUE(g.CreateRel(u, p, g.InternType("ORDERED"), {}).ok());
  std::string dot = ToDot(g, "test");
  EXPECT_NE(dot.find(":User"), std::string::npos);
  EXPECT_NE(dot.find(":ORDERED"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(GraphTest, DescribeNode) {
  NodeId u = MakeNode("User", 89);
  g.SetProperty(EntityRef::Node(u), g.InternKey("name"), Value::String("Bob"));
  EXPECT_EQ(DescribeNode(g, u), "(:User {id: 89, name: 'Bob'})");
}

}  // namespace
}  // namespace cypher
