// Uniqueness-constraint tests: DDL, data validation at creation, and the
// statement-granularity enforcement that rides on the engine's atomicity
// machinery (violating statements roll back in full, both semantics).

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(ConstraintTest, CreateAndDropParse) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  EXPECT_TRUE(db.graph().HasUniqueConstraint(db.graph().FindLabel("User"),
                                             db.graph().FindKey("id")));
  ASSERT_TRUE(
      db.Run("DROP CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  EXPECT_FALSE(db.graph().HasUniqueConstraint(db.graph().FindLabel("User"),
                                              db.graph().FindKey("id")));
  // Variable mismatch is a syntax error.
  EXPECT_FALSE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT x.id IS UNIQUE").ok());
}

TEST(ConstraintTest, CreationValidatesExistingData) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:User {id: 1})").ok());
  Status st = RunErr(&db,
                     "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_FALSE(db.graph().HasUniqueConstraint(db.graph().FindLabel("User"),
                                              db.graph().FindKey("id")));
}

TEST(ConstraintTest, BlocksDuplicateCreate) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  Status st = RunErr(&db, "CREATE (:User {id: 1})");
  EXPECT_NE(st.message().find("uniqueness constraint"), std::string::npos);
  EXPECT_EQ(db.graph().num_nodes(), 1u);  // rolled back
  // Different value is fine; so are nulls (unconstrained).
  EXPECT_TRUE(db.Run("CREATE (:User {id: 2})").ok());
  EXPECT_TRUE(db.Run("CREATE (:User), (:User)").ok());
}

TEST(ConstraintTest, WholeStatementRollsBackOnViolation) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  // The statement creates unrelated data too; all of it must vanish.
  EXPECT_FALSE(db.Run("CREATE (:Log {at: 1}) "
                      "CREATE (:User {id: 1})")
                   .ok());
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (l:Log) RETURN count(l) AS c")).AsInt(),
            0);
}

TEST(ConstraintTest, SetIntoViolationBlocked) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:User {id: 2})").ok());
  EXPECT_FALSE(db.Run("MATCH (u:User {id: 2}) SET u.id = 1").ok());
  QueryResult r = RunOk(&db, "MATCH (u:User {id: 2}) RETURN count(u) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);  // unchanged
}

TEST(ConstraintTest, LabelAdditionIntoViolationBlocked) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:Person {id: 1})").ok());
  EXPECT_FALSE(db.Run("MATCH (p:Person) SET p:User").ok());
}

TEST(ConstraintTest, SwapWithinOneStatementIsLegal) {
  // Atomic SET swaps two unique ids in one statement: no intermediate
  // state exists, so the constraint holds before and after — must pass.
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1, name: 'a'}), "
                     "(:User {id: 2, name: 'b'})")
                  .ok());
  EXPECT_TRUE(db.Run("MATCH (a:User {name: 'a'}), (b:User {name: 'b'}) "
                     "SET a.id = b.id, b.id = a.id")
                  .ok());
  QueryResult r = RunOk(&db,
                        "MATCH (u:User) RETURN u.id AS id ORDER BY u.name");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 1);
}

TEST(ConstraintTest, MergeSameCannotViolate) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("UNWIND [1, 1, 2] AS v MERGE SAME (:User {id: v})").ok());
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  // MERGE ALL with duplicates, however, violates and rolls back.
  EXPECT_FALSE(db.Run("UNWIND [9, 9] AS v MERGE ALL (:User {id: v})").ok());
  EXPECT_EQ(db.graph().num_nodes(), 2u);
}

TEST(ConstraintTest, LegacySemanticsAlsoEnforced) {
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  GraphDatabase db(legacy);
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  EXPECT_FALSE(db.Run("CREATE (:User {id: 1})").ok());
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

TEST(ConstraintTest, GroupEqualValuesCountAsDuplicates) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (n:N) ASSERT n.v IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  EXPECT_FALSE(db.Run("CREATE (:N {v: 1.0})").ok());  // 1 == 1.0
}

TEST(ConstraintTest, DeleteResolvesViolationPotential) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE").ok());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1, old: true})").ok());
  // Replace the node in one statement: delete + create, net unique.
  EXPECT_TRUE(db.Run("MATCH (u:User {id: 1}) DELETE u "
                     "CREATE (:User {id: 1, old: false})")
                  .ok());
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

TEST(ConstraintTest, ExplainListsConstraintClause) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "EXPLAIN CREATE CONSTRAINT ON (u:User) "
                        "ASSERT u.id IS UNIQUE");
  EXPECT_EQ(r.rows[0][1].AsString(), "CREATE CONSTRAINT");
}

}  // namespace
}  // namespace cypher
