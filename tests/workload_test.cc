// Workload-generator and persistence tests: the scenario builders that
// benches and examples rely on, and file round-trips.

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/isomorphism.h"
#include "value/compare.h"
#include "test_util.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(WorkloadTest, MarketplaceMatchesFigure1) {
  GraphDatabase db;
  ASSERT_TRUE(workload::LoadMarketplace(&db).ok());
  EXPECT_EQ(db.graph().num_nodes(), 6u);
  EXPECT_EQ(db.graph().num_rels(), 5u);
  // Figure 1 details: both laptop and notebook carry id 125 (the paper's
  // deliberate dirty data), the vendor offers exactly two products.
  QueryResult dirty = RunOk(&db,
                            "MATCH (p:Product {id: 125}) "
                            "RETURN count(p) AS c");
  EXPECT_EQ(Scalar(dirty).AsInt(), 2);
  QueryResult offers = RunOk(&db,
                             "MATCH (:Vendor)-[:OFFERS]->(p) "
                             "RETURN count(p) AS c");
  EXPECT_EQ(Scalar(offers).AsInt(), 2);
}

TEST(WorkloadTest, Example3RowsShape) {
  Value rows = workload::Example3Rows();
  ASSERT_TRUE(rows.is_list());
  ASSERT_EQ(rows.AsList().size(), 3u);
  const ValueMap& first = rows.AsList()[0].AsMap();
  EXPECT_EQ(first.at("u").AsString(), "u1");
  EXPECT_EQ(first.at("p").AsString(), "p");
  EXPECT_EQ(first.at("v").AsString(), "v1");
}

TEST(WorkloadTest, Example5RowsMatchThePaperTable) {
  Value rows = workload::Example5Rows();
  ASSERT_EQ(rows.AsList().size(), 6u);
  int nulls = 0;
  for (const Value& row : rows.AsList()) {
    if (row.AsMap().at("pid").is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 3);
  EXPECT_EQ(rows.AsList()[0].AsMap().at("cid").AsInt(), 98);
  EXPECT_EQ(rows.AsList()[4].AsMap().at("date").AsString(), "2018-03-11");
}

TEST(WorkloadTest, RandomOrderRowsDeterministicInSeed) {
  Value a = workload::RandomOrderRows(30, 5, 5, 100, 42);
  Value b = workload::RandomOrderRows(30, 5, 5, 100, 42);
  Value c = workload::RandomOrderRows(30, 5, 5, 100, 43);
  EXPECT_TRUE(GroupEquals(a, b));
  EXPECT_FALSE(GroupEquals(a, c));
}

TEST(WorkloadTest, RandomOrderRowsRespectBounds) {
  Value rows = workload::RandomOrderRows(200, 7, 9, 0, 3);
  for (const Value& row : rows.AsList()) {
    int64_t cid = row.AsMap().at("cid").AsInt();
    EXPECT_GE(cid, 1);
    EXPECT_LE(cid, 7);
    const Value& pid = row.AsMap().at("pid");
    ASSERT_FALSE(pid.is_null());  // null_permille = 0
    EXPECT_GE(pid.AsInt(), 1);
    EXPECT_LE(pid.AsInt(), 9);
  }
  // All-null pids at permille 1000.
  Value nulls = workload::RandomOrderRows(50, 7, 9, 1000, 3);
  for (const Value& row : nulls.AsList()) {
    EXPECT_TRUE(row.AsMap().at("pid").is_null());
  }
}

TEST(WorkloadTest, RandomMarketplaceCounts) {
  GraphDatabase db;
  ASSERT_TRUE(workload::LoadRandomMarketplace(&db, 12, 8, 30, 77).ok());
  EXPECT_EQ(db.graph().num_nodes(), 20u);
  EXPECT_EQ(db.graph().num_rels(), 30u);
  QueryResult users = RunOk(&db, "MATCH (u:User) RETURN count(u) AS c");
  EXPECT_EQ(Scalar(users).AsInt(), 12);
}

TEST(WorkloadTest, ClickstreamRowsHaveHopColumns) {
  Value rows = workload::RandomClickstreamRows(10, 6, 4, 5);
  for (const Value& row : rows.AsList()) {
    EXPECT_EQ(row.AsMap().size(), 5u);  // p0..p4
    EXPECT_TRUE(row.AsMap().count("p0"));
    EXPECT_TRUE(row.AsMap().count("p4"));
  }
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  GraphDatabase db;
  ASSERT_TRUE(workload::LoadMarketplace(&db).ok());
  std::string path = ::testing::TempDir() + "/cypher_graph_roundtrip.txt";
  ASSERT_TRUE(db.SaveToFile(path).ok());
  GraphDatabase loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_TRUE(AreIsomorphic(db.graph(), loaded.graph()));
  // The loaded database is fully queryable.
  QueryResult r = RunOk(&loaded,
                        "MATCH (u:User {name: 'Bob'})-[:ORDERED]->(p) "
                        "RETURN count(p) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadFromMissingFileFails) {
  GraphDatabase db;
  EXPECT_FALSE(db.LoadFromFile("/nonexistent/path/graph.txt").ok());
}

}  // namespace
}  // namespace cypher
