// Property-style invariant tests over randomized workloads: statement
// atomicity, order-insensitivity of the revised semantics, idempotence of
// MERGE SAME, store consistency, and dump/load round-trips.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "graph/isomorphism.h"
#include "graph/serialize.h"
#include "test_util.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;

/// Store consistency: every alive relationship has alive endpoints and is
/// present in their adjacency; alive counts agree with enumeration.
void CheckStoreInvariants(const PropertyGraph& g) {
  std::vector<NodeId> nodes = g.AllNodes();
  std::vector<RelId> rels = g.AllRels();
  EXPECT_EQ(nodes.size(), g.num_nodes());
  EXPECT_EQ(rels.size(), g.num_rels());
  for (RelId r : rels) {
    const RelData& rel = g.rel(r);
    ASSERT_TRUE(g.IsNodeAlive(rel.src));
    ASSERT_TRUE(g.IsNodeAlive(rel.tgt));
    auto out = g.OutRels(rel.src);
    auto in = g.InRels(rel.tgt);
    EXPECT_TRUE(std::find(out.begin(), out.end(), r) != out.end());
    EXPECT_TRUE(std::find(in.begin(), in.end(), r) != in.end());
  }
  size_t degree_sum = 0;
  for (NodeId n : nodes) degree_sum += g.Degree(n);
  size_t rel_ends = 0;
  for (RelId r : rels) {
    rel_ends += (g.rel(r).src == g.rel(r).tgt) ? 2 : 2;
  }
  EXPECT_EQ(degree_sum, rel_ends);
}

/// A random small statement generator over a bounded vocabulary. Some
/// statements intentionally fail (division by zero, dangling delete).
std::string RandomStatement(SplitMix64* rng) {
  switch (rng->NextBelow(10)) {
    case 0:
      return "CREATE (:A {v: " + std::to_string(rng->NextBelow(4)) + "})";
    case 1:
      return "CREATE (:A {v: 1})-[:T]->(:B {v: 2})";
    case 2:
      return "MATCH (a:A) SET a.v = a.v + 1";
    case 3:
      return "MATCH (a:A {v: 2}) DETACH DELETE a";
    case 4:
      return "MATCH (a:A)-[t:T]->(b) DELETE t";
    case 5:
      return "UNWIND [1, 2] AS x MERGE SAME (:C {v: x})";
    case 6:
      return "MATCH (b:B) SET b:Seen";
    case 7:
      return "MATCH (a:A) REMOVE a.v";
    case 8:  // fails sometimes: dangling delete
      return "MATCH (a:A)-[:T]->() DELETE a";
    default:  // always fails
      return "MATCH (a:A) RETURN a.v / 0";
  }
}

TEST(AtomicityPropertyTest, FailedStatementsNeverChangeTheGraph) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SplitMix64 rng(seed * 7919 + 1);
    GraphDatabase db;
    for (int i = 0; i < 60; ++i) {
      uint64_t before = GraphFingerprint(db.graph());
      size_t nodes_before = db.graph().num_nodes();
      size_t rels_before = db.graph().num_rels();
      auto result = db.Execute(RandomStatement(&rng));
      if (!result.ok()) {
        EXPECT_EQ(GraphFingerprint(db.graph()), before) << "seed " << seed;
        EXPECT_EQ(db.graph().num_nodes(), nodes_before);
        EXPECT_EQ(db.graph().num_rels(), rels_before);
      }
      CheckStoreInvariants(db.graph());
    }
  }
}

TEST(AtomicityPropertyTest, LegacyModeAlsoRollsBackOnError) {
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    SplitMix64 rng(seed * 31337 + 5);
    GraphDatabase db(legacy);
    for (int i = 0; i < 60; ++i) {
      uint64_t before = GraphFingerprint(db.graph());
      auto result = db.Execute(RandomStatement(&rng));
      if (!result.ok()) {
        EXPECT_EQ(GraphFingerprint(db.graph()), before) << "seed " << seed;
      }
      CheckStoreInvariants(db.graph());
    }
  }
}

class RevisedOrderInsensitivityTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RevisedOrderInsensitivityTest, SetDeleteMergeIgnoreScanOrder) {
  uint64_t seed = GetParam();
  Value rows = workload::RandomOrderRows(50, 8, 8, 100, seed);
  std::set<uint64_t> fingerprints;
  for (ScanOrder order :
       {ScanOrder::kForward, ScanOrder::kReverse, ScanOrder::kShuffle}) {
    EvalOptions options;
    options.scan_order = order;
    options.shuffle_seed = seed + 17;
    GraphDatabase db(options);
    ASSERT_TRUE(
        db.Execute(workload::Example5Query("MERGE SAME"), {{"rows", rows}})
            .ok());
    // May conflict when a user ordered two products; the conflict decision
    // is itself order-independent, so either outcome is consistent across
    // scan orders (and a failure changes nothing).
    db.Run("MATCH (u:User)-[:ORDERED]->(p:Product) SET u.buys = p.id")
        .ok();
    ASSERT_TRUE(
        db.Run("MATCH (p:Product) WHERE p.id IS NULL DETACH DELETE p").ok());
    fingerprints.insert(GraphFingerprint(db.graph()));
  }
  EXPECT_EQ(fingerprints.size(), 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedOrderInsensitivityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class MergeIdempotenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeIdempotenceTest, SecondMergeSameCreatesNothing) {
  // Without nulls, re-merging the same rows must match everything the
  // first merge created.
  Value rows = workload::RandomOrderRows(40, 6, 6, /*null_permille=*/0,
                                         GetParam());
  GraphDatabase db;
  auto first =
      db.Execute(workload::Example5Query("MERGE SAME"), {{"rows", rows}});
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->stats.nodes_created, 0u);
  uint64_t fp = GraphFingerprint(db.graph());
  auto second =
      db.Execute(workload::Example5Query("MERGE SAME"), {{"rows", rows}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.nodes_created, 0u);
  EXPECT_EQ(second->stats.rels_created, 0u);
  EXPECT_EQ(GraphFingerprint(db.graph()), fp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeIdempotenceTest,
                         ::testing::Values(11, 22, 33, 44));

class DumpLoadPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DumpLoadPropertyTest, RoundTripIsIsomorphic) {
  GraphDatabase db;
  ASSERT_TRUE(
      workload::LoadRandomMarketplace(&db, 10, 8, 25, GetParam()).ok());
  std::string dump = DumpGraph(db.graph());
  auto loaded = LoadGraph(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(AreIsomorphic(db.graph(), *loaded));
  EXPECT_EQ(DumpGraph(*loaded), dump);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DumpLoadPropertyTest,
                         ::testing::Values(3, 5, 7, 9));

TEST(EquivalencePropertyTest, SemanticsAgreeOnNonInterferingStatements) {
  // Single-record statements without cross-record reads behave identically
  // under both semantics.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    GraphDatabase legacy_db{[] {
      EvalOptions o;
      o.semantics = SemanticsMode::kLegacy;
      return o;
    }()};
    GraphDatabase revised_db;
    SplitMix64 rng(seed + 101);
    for (int i = 0; i < 30; ++i) {
      int64_t v = static_cast<int64_t>(rng.NextBelow(5));
      std::string statement;
      switch (rng.NextBelow(4)) {
        case 0:
          statement = "CREATE (:A {v: " + std::to_string(v) + "})";
          break;
        case 1:
          statement = "MATCH (a:A {v: " + std::to_string(v) +
                      "}) SET a.touched = true";
          break;
        case 2:
          statement = "MATCH (a:A {v: " + std::to_string(v) +
                      "}) WHERE a.touched DETACH DELETE a";
          break;
        default:
          statement = "MERGE ALL (:B {v: " + std::to_string(v) + "})";
          break;
      }
      auto lr = legacy_db.Execute(statement);
      auto rr = revised_db.Execute(statement);
      ASSERT_EQ(lr.ok(), rr.ok()) << statement;
    }
    EXPECT_TRUE(AreIsomorphic(legacy_db.graph(), revised_db.graph()))
        << "seed " << seed;
  }
}

TEST(MatcherPropertyTest, HomomorphismFindsAtLeastAsManyMatches) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    GraphDatabase db;
    ASSERT_TRUE(workload::LoadRandomMarketplace(&db, 6, 5, 15, seed).ok());
    const char* probes[] = {
        "MATCH (a)-[:ORDERED]->(p)<-[:ORDERED]-(b) RETURN count(*) AS c",
        "MATCH (a)-[*1..2]->(b) RETURN count(*) AS c",
        "MATCH (a)-[:ORDERED]->(), (b)-[:ORDERED]->() RETURN count(*) AS c",
    };
    for (const char* probe : probes) {
      auto trail = db.Execute(probe);
      EvalOptions homo;
      homo.match_mode = MatchMode::kHomomorphism;
      auto hom = db.Execute(probe, {}, homo);
      ASSERT_TRUE(trail.ok() && hom.ok());
      EXPECT_GE(hom->rows[0][0].AsInt(), trail->rows[0][0].AsInt()) << probe;
    }
  }
}

TEST(JournalPropertyTest, InterleavedCommitRollbackSequences) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:Base {id: 0})").ok());
  SplitMix64 rng(2024);
  PropertyGraph& g = db.graph();
  for (int round = 0; round < 20; ++round) {
    uint64_t before = GraphFingerprint(g);
    auto mark = g.BeginJournal();
    // Random direct mutations.
    NodeId n = g.CreateNode({g.InternLabel("Tmp")}, {});
    g.SetProperty(EntityRef::Node(n), g.InternKey("r"),
                  Value::Int(static_cast<int64_t>(rng.NextBelow(100))));
    if (rng.NextBelow(2) == 0) {
      NodeId m = g.CreateNode({g.InternLabel("Tmp")}, {});
      auto rel = g.CreateRel(n, m, g.InternType("T"), {});
      ASSERT_TRUE(rel.ok());
      if (rng.NextBelow(2) == 0) g.DeleteRel(*rel);
    }
    if (rng.NextBelow(2) == 0) {
      g.RollbackTo(mark);
      EXPECT_EQ(GraphFingerprint(g), before) << "round " << round;
    } else {
      g.CommitTo(mark);
    }
    CheckStoreInvariants(g);
  }
}

}  // namespace
}  // namespace cypher
