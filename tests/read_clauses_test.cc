// MATCH / OPTIONAL MATCH / UNWIND / WITH / RETURN executor tests, driven
// through the public API.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

class ReadClausesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE (a:User {id: 1, name: 'ann'}),"
                        "(b:User {id: 2, name: 'bob'}),"
                        "(c:User {id: 3}),"
                        "(p:Product {id: 10, price: 5}),"
                        "(q:Product {id: 11, price: 7}),"
                        "(a)-[:ORDERED {qty: 2}]->(p),"
                        "(b)-[:ORDERED {qty: 1}]->(p),"
                        "(b)-[:ORDERED {qty: 4}]->(q)")
                    .ok());
  }
  GraphDatabase db_;
};

TEST_F(ReadClausesTest, MatchExtendsDrivingTable) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) MATCH (u)-[:ORDERED]->(p) "
                        "RETURN u.name AS n, p.id AS pid ORDER BY n, pid");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[1][0].AsString(), "bob");
  EXPECT_EQ(r.rows[1][1].AsInt(), 10);
  EXPECT_EQ(r.rows[2][1].AsInt(), 11);
}

TEST_F(ReadClausesTest, MatchWhereFilters) {
  QueryResult r = RunOk(
      &db_, "MATCH (u:User) WHERE u.id > 1 RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
  // WHERE evaluating to null filters the row out (c has no name).
  QueryResult r2 = RunOk(
      &db_, "MATCH (u:User) WHERE u.name CONTAINS 'n' RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r2).AsInt(), 1);
}

TEST_F(ReadClausesTest, MatchOnEmptyTableYieldsNothing) {
  QueryResult r = RunOk(&db_,
                        "MATCH (x:Missing) MATCH (u:User) "
                        "RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 0);
}

TEST_F(ReadClausesTest, OptionalMatchPadsWithNulls) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) OPTIONAL MATCH (u)-[:ORDERED]->(p) "
                        "RETURN u.id AS id, p.id AS pid ORDER BY id, pid");
  ASSERT_EQ(r.rows.size(), 4u);  // ann x1, bob x2, carol x1 (null)
  EXPECT_TRUE(r.rows[3][1].is_null());
}

TEST_F(ReadClausesTest, OptionalMatchWhereIsPartOfMatching) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User {id: 1}) "
                        "OPTIONAL MATCH (u)-[o:ORDERED]->(p) WHERE o.qty > 5 "
                        "RETURN u.id AS id, p.id AS pid");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ReadClausesTest, UnwindBasics) {
  QueryResult r =
      RunOk(&db_, "UNWIND [3, 1, 2] AS x RETURN x ORDER BY x");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  // UNWIND null produces no rows; a scalar unwinds to itself.
  EXPECT_EQ(RunOk(&db_, "UNWIND null AS x RETURN x").rows.size(), 0u);
  EXPECT_EQ(RunOk(&db_, "UNWIND 5 AS x RETURN x").rows.size(), 1u);
}

TEST_F(ReadClausesTest, UnwindCartesian) {
  QueryResult r = RunOk(
      &db_, "UNWIND [1, 2] AS a UNWIND ['x', 'y'] AS b RETURN a, b");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ReadClausesTest, ReturnDistinct) {
  QueryResult r =
      RunOk(&db_, "MATCH (:User)-[:ORDERED]->(p) RETURN DISTINCT p.id AS pid");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ReadClausesTest, ReturnStar) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User {id: 1})-[o:ORDERED]->(p) RETURN *");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns.size(), 3u);  // u, o, p in table order
}

TEST_F(ReadClausesTest, OrderBySkipLimit) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) RETURN u.id AS id "
                        "ORDER BY id DESC SKIP 1 LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ReadClausesTest, OrderByNullsLast) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) RETURN u.name AS n ORDER BY n");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(r.rows[2][0].is_null());
}

TEST_F(ReadClausesTest, WithChainsAndFilters) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User)-[o:ORDERED]->(p) "
                        "WITH u, sum(o.qty) AS total WHERE total > 2 "
                        "RETURN u.name AS n, total");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
  EXPECT_EQ(r.rows[0][1].AsInt(), 5);
}

TEST_F(ReadClausesTest, ImplicitGroupingByNonAggregates) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User)-[:ORDERED]->(p) "
                        "RETURN p.id AS pid, count(u) AS buyers "
                        "ORDER BY pid");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[1][1].AsInt(), 1);
}

TEST_F(ReadClausesTest, GlobalAggregateOnEmptyInputIsOneRow) {
  QueryResult r = RunOk(&db_, "MATCH (x:Missing) RETURN count(x) AS c");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(ReadClausesTest, OrderByAggregate) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User)-[o:ORDERED]->() "
                        "RETURN u.name AS n ORDER BY sum(o.qty) DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
}

TEST_F(ReadClausesTest, CollectBuildsLists) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User)-[:ORDERED]->(p) "
                        "WITH u, collect(p.id) AS pids "
                        "WHERE size(pids) = 2 RETURN u.name AS n, pids");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsList().size(), 2u);
}

TEST_F(ReadClausesTest, DuplicateAliasRejected) {
  auto r = db_.Execute("MATCH (u:User) RETURN u.id AS x, u.name AS x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSemanticError);
}

TEST_F(ReadClausesTest, SkipLimitValidation) {
  EXPECT_FALSE(db_.Execute("MATCH (u:User) RETURN u SKIP -1").ok());
  EXPECT_FALSE(db_.Execute("MATCH (u:User) RETURN u LIMIT 'x'").ok());
}

TEST_F(ReadClausesTest, UnionDistinctAndAll) {
  QueryResult all = RunOk(&db_,
                          "MATCH (u:User {id: 1}) RETURN u.id AS id "
                          "UNION ALL MATCH (u:User {id: 1}) RETURN u.id AS id");
  EXPECT_EQ(all.rows.size(), 2u);
  QueryResult dist = RunOk(&db_,
                           "MATCH (u:User {id: 1}) RETURN u.id AS id "
                           "UNION MATCH (u:User {id: 1}) RETURN u.id AS id");
  EXPECT_EQ(dist.rows.size(), 1u);
}

TEST_F(ReadClausesTest, UnionColumnMismatchRejected) {
  EXPECT_FALSE(
      db_.Execute("RETURN 1 AS a UNION RETURN 2 AS b").ok());
  EXPECT_FALSE(
      db_.Execute("RETURN 1 AS a UNION ALL RETURN 2 AS a UNION RETURN 3 AS a")
          .ok());
}

TEST_F(ReadClausesTest, VariableLengthEndToEnd) {
  ASSERT_TRUE(db_.Run("MATCH (a:User {id: 1}), (b:User {id: 2}) "
                      "CREATE (a)-[:KNOWS]->(b)")
                  .ok());
  QueryResult r = RunOk(&db_,
                        "MATCH (a:User {id: 1})-[*1..2]->(x) "
                        "RETURN count(*) AS c");
  // a->p, a->b, a->b->p(10), a->b->q(11)
  EXPECT_EQ(Scalar(r).AsInt(), 4);
}

TEST_F(ReadClausesTest, PathVariableEndToEnd) {
  QueryResult r = RunOk(&db_,
                        "MATCH p = (u:User {id: 2})-[:ORDERED]->() "
                        "RETURN length(p) AS len, size(nodes(p)) AS n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

}  // namespace
}  // namespace cypher
