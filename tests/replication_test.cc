// Log-shipping replication harness (DESIGN.md §4h). The invariant under
// test everywhere — the follower read-equivalence guarantee: at every
// applied segment boundary, the follower's canonical graph dump must
// byte-match the state produced by replaying exactly that prefix of the
// leader's committed statements. The replay-divergence oracle checks it
// statement by statement; the fault suite checks it through corrupted,
// truncated, duplicated, and dropped segments (CRC/LSN checks + resend);
// the restart case re-bootstraps a fresh follower mid-stream; the
// concurrent suite (run under TSan in CI) races a committing leader, a
// tailing applier, and MVCC read sessions on the follower.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cypher/database.h"
#include "exec/render.h"
#include "graph/serialize.h"
#include "query_gen.h"
#include "replication/log_shipper.h"
#include "replication/replica.h"
#include "replication/transport.h"
#include "storage/log_file.h"
#include "storage/wal.h"
#include "test_util.h"

namespace cypher {
namespace {

using replication::ControlFrame;
using replication::ControlType;
using replication::FaultyTransport;
using replication::FrameType;
using replication::InProcessTransport;
using replication::Replica;
using replication::SegmentFrame;
using replication::Transport;
using storage::MemoryLogFile;
using testing::BuildRandomGraph;
using testing::GenerateUpdateWorkload;
using testing::RunOk;

constexpr uint64_t kSeed = 41;
constexpr size_t kWorkloadStatements = 24;

// ---- Reference run ---------------------------------------------------------

// The oracle's ground truth: execute the workload statement by statement on
// an identically-seeded durable database and record, at every record
// boundary the leader's log passes through, the canonical dump of the graph
// at that point. Any LSN a correct follower ever reports must be one of
// these boundaries, with exactly that dump.
struct Reference {
  std::vector<std::string> statements;
  std::map<uint64_t, std::string> dump_at;  // boundary lsn -> canonical dump
  std::map<uint64_t, size_t> prefix_at;     // boundary lsn -> statements done
  // lsn_after[i] = durable lsn once statements[0..i) committed. A statement
  // whose redo is empty (its MATCH bound nothing) appends no record, so
  // lsn_after[i+1] == lsn_after[i]; the follower never sees it and its
  // epoch counter does not tick. lsn_after[0] covers the seed snapshot.
  std::vector<uint64_t> lsn_after;
};

Reference BuildReference(uint64_t seed, size_t count,
                         size_t checkpoint_after = SIZE_MAX) {
  Reference ref;
  ref.statements = GenerateUpdateWorkload(seed, count);
  GraphDatabase db;
  EXPECT_TRUE(BuildRandomGraph(&db, seed).ok());
  EXPECT_TRUE(db.OpenDurable(std::make_unique<MemoryLogFile>()).ok());
  auto boundary = [&](size_t prefix) {
    uint64_t lsn = db.wal_writer()->durable_lsn();
    ref.dump_at[lsn] = DumpGraphCanonical(db.graph());
    ref.prefix_at[lsn] = prefix;
    return lsn;
  };
  ref.lsn_after.push_back(boundary(0));
  for (size_t i = 0; i < ref.statements.size(); ++i) {
    EXPECT_TRUE(db.Run(ref.statements[i]).ok()) << ref.statements[i];
    ref.lsn_after.push_back(boundary(i + 1));
    if (i + 1 == checkpoint_after) {
      // An explicit checkpoint appends a snapshot record: a new boundary at
      // the same state, which a tailing follower must step over.
      EXPECT_TRUE(db.Checkpoint().ok());
      boundary(i + 1);
    }
  }
  return ref;
}

// Fails unless the follower currently sits at a known leader boundary with
// exactly that boundary's graph.
void ExpectAtBoundary(const Reference& ref, Replica* replica,
                      const char* when) {
  uint64_t lsn = replica->applied_lsn();
  auto it = ref.dump_at.find(lsn);
  ASSERT_NE(it, ref.dump_at.end())
      << when << ": follower lsn " << lsn
      << " is not a leader statement boundary";
  EXPECT_EQ(replica->CanonicalDump(), it->second)
      << when << ": divergence at lsn " << lsn << " (statement prefix "
      << ref.prefix_at.at(lsn) << ")";
}

// Pump the leader and poll the follower until the follower has applied
// everything the leader appended (bounded, so a protocol bug fails the test
// instead of hanging it).
void CatchUp(GraphDatabase* leader, Replica* replica) {
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(leader->PumpReplication().ok());
    auto applied = replica->PollOnce();
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    if (replica->applied_lsn() == leader->wal_writer()->appended_lsn()) {
      // One more pump delivers the final ack to the leader's cursors.
      ASSERT_TRUE(leader->PumpReplication().ok());
      return;
    }
  }
  FAIL() << "follower never caught up: applied=" << replica->applied_lsn()
         << " leader=" << leader->wal_writer()->appended_lsn();
}

// ---- Frame / segment validation --------------------------------------------

TEST(ReplicationFrames, SegmentDecodeRejectsDamage) {
  std::string segment =
      storage::EncodeWalRecord(storage::WalRecordType::kStatement, "one");
  segment +=
      storage::EncodeWalRecord(storage::WalRecordType::kStatement, "two");

  auto clean = storage::DecodeWalSegment(segment);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->size(), 2u);
  EXPECT_EQ((*clean)[0].payload, "one");

  // A WAL image tolerates a torn tail; a shipped segment must not.
  for (size_t cut = 1; cut < segment.size(); ++cut) {
    if (cut == storage::WalFrameSize(segment)) continue;  // clean boundary
    EXPECT_FALSE(
        storage::DecodeWalSegment(std::string_view(segment).substr(0, cut))
            .ok())
        << "cut=" << cut;
  }
  std::string flipped = segment;
  flipped[flipped.size() / 2] ^= 0x10;
  EXPECT_FALSE(storage::DecodeWalSegment(flipped).ok());
}

TEST(ReplicationFrames, FrameSizeWalksBoundaries) {
  std::string a =
      storage::EncodeWalRecord(storage::WalRecordType::kStatement, "alpha");
  std::string b =
      storage::EncodeWalRecord(storage::WalRecordType::kSnapshot, "beta!");
  std::string both = a + b;
  EXPECT_EQ(storage::WalFrameSize(both), a.size());
  EXPECT_EQ(storage::WalFrameSize(std::string_view(both).substr(a.size())),
            b.size());
  EXPECT_EQ(storage::WalFrameSize(std::string_view(both).substr(0, 3)), 0u);
}

// ---- Bootstrap + tail ------------------------------------------------------

TEST(ReplicationTest, FollowerBootstrapsAndTails) {
  GraphDatabase leader;
  RunOk(&leader, "CREATE (:User {id: 1, name: 'Ada'})");
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  auto transport = std::make_shared<InProcessTransport>();
  Replica replica(transport);
  EXPECT_FALSE(replica.bootstrapped());

  auto id = leader.AttachFollower(transport);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(replica.PollOnce().ok());
  EXPECT_TRUE(replica.bootstrapped());
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));

  RunOk(&leader, "CREATE (:User {id: 2, name: 'Bob'})");
  RunOk(&leader, "MATCH (u:User {id: 1}) SET u.name = 'Ada Lovelace'");
  CatchUp(&leader, &replica);
  EXPECT_EQ(replica.statements_applied(), 2u);
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));

  // The follower serves snapshot-isolated reads at its applied epoch.
  auto session = replica.BeginReadSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto rows = session->Execute("MATCH (u:User) RETURN u.name ORDER BY u.name");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].AsString(), "Ada Lovelace");
  // ...and refuses writes, like any snapshot session.
  EXPECT_FALSE(session->Execute("CREATE (:X)").ok());

  auto status = leader.replication_status();
  EXPECT_EQ(status.followers, 1u);
  EXPECT_EQ(status.min_acked_lsn, status.appended_lsn);
  ASSERT_TRUE(leader.DetachFollower(*id).ok());
  EXPECT_EQ(leader.replication_status().followers, 0u);
}

TEST(ReplicationTest, AttachRequiresDurableLeader) {
  GraphDatabase leader;
  auto transport = std::make_shared<InProcessTransport>();
  EXPECT_FALSE(leader.AttachFollower(transport).ok());
}

// ---- The replay-divergence oracle ------------------------------------------

// Tiny segments force many mid-workload segment boundaries; an explicit
// checkpoint drops a snapshot record into the stream; a mid-stream restart
// throws the first follower away and re-bootstraps a fresh one. At every
// polled boundary the follower must byte-match the reference prefix replay.
TEST(ReplicationTest, DivergenceOracleAtEverySegmentBoundary) {
  const size_t checkpoint_after = kWorkloadStatements / 3;
  Reference ref =
      BuildReference(kSeed, kWorkloadStatements, checkpoint_after);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  ReplicationOptions small_segments{/*segment_bytes=*/128};
  auto transport = std::make_shared<InProcessTransport>();
  auto replica = std::make_unique<Replica>(transport);
  auto id = leader.AttachFollower(transport, small_segments);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(replica->PollOnce().ok());
  ExpectAtBoundary(ref, replica.get(), "after bootstrap");

  const size_t restart_after = kWorkloadStatements / 2;
  for (size_t i = 0; i < ref.statements.size(); ++i) {
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok()) << ref.statements[i];
    if (i + 1 == checkpoint_after) {
      ASSERT_TRUE(leader.Checkpoint().ok());
    }
    // Stagger the tail: poll only every third statement, so segments queue
    // up and the follower crosses several boundaries per poll.
    if (i % 3 == 0) {
      ASSERT_TRUE(replica->PollOnce().ok());
      ExpectAtBoundary(ref, replica.get(), "mid-stream");
      ASSERT_TRUE(leader.PumpReplication().ok());  // deliver the ack
    }
    if (i + 1 == restart_after) {
      // Follower dies mid-stream. A fresh one re-bootstraps from a new
      // snapshot + tail and must land on the current boundary.
      ASSERT_TRUE(leader.DetachFollower(*id).ok());
      replica.reset();
      transport = std::make_shared<InProcessTransport>();
      replica = std::make_unique<Replica>(transport);
      id = leader.AttachFollower(transport, small_segments);
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(replica->PollOnce().ok());
      ExpectAtBoundary(ref, replica.get(), "after restart re-bootstrap");
    }
  }
  CatchUp(&leader, replica.get());
  ExpectAtBoundary(ref, replica.get(), "after catch-up");
  EXPECT_EQ(replica->CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_EQ(replica->applied_lsn(), leader.wal_writer()->appended_lsn());
}

// ---- Transport fault injection ---------------------------------------------

class ReplicationFaultTest
    : public ::testing::TestWithParam<FaultyTransport::Fault> {};

// One segment send is damaged (or dropped/duplicated) on the wire. The
// follower must detect it via CRC/LSN checks, never apply a torn record or
// skip an LSN, re-fetch via the resend protocol, and converge to the
// leader's exact state having applied every statement exactly once.
TEST_P(ReplicationFaultTest, DetectedRefetchedAndConverges) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  auto wire = std::make_shared<InProcessTransport>();
  auto faulty = std::make_shared<FaultyTransport>(wire);
  // Send #1 is the bootstrap snapshot; hit a mid-stream segment. (For kDrop
  // this also exercises the gap path: later segments arrive first.)
  faulty->InjectOnSend(4, GetParam());

  Replica replica(faulty);
  auto id = leader.AttachFollower(faulty, ReplicationOptions{128});
  ASSERT_TRUE(id.ok());

  for (size_t i = 0; i < ref.statements.size(); ++i) {
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(replica.PollOnce().ok());
      ExpectAtBoundary(ref, &replica, "mid-stream under faults");
      ASSERT_TRUE(leader.PumpReplication().ok());
    }
  }
  CatchUp(&leader, &replica);
  EXPECT_GT(faulty->sends(), 4u);  // the fault actually fired
  ExpectAtBoundary(ref, &replica, "after fault recovery");
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  // Exactly-once: every non-empty-redo statement applied a single time.
  // (The reference counts boundaries, which include no-op commits; compare
  // against the leader's own record count instead.)
  EXPECT_EQ(replica.applied_lsn(), leader.wal_writer()->appended_lsn());
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, ReplicationFaultTest,
    ::testing::Values(FaultyTransport::Fault::kCorrupt,
                      FaultyTransport::Fault::kTruncate,
                      FaultyTransport::Fault::kDuplicate,
                      FaultyTransport::Fault::kDrop,
                      FaultyTransport::Fault::kDelay,
                      FaultyTransport::Fault::kReorder),
    [](const ::testing::TestParamInfo<FaultyTransport::Fault>& info) {
      switch (info.param) {
        case FaultyTransport::Fault::kCorrupt: return "BitFlip";
        case FaultyTransport::Fault::kTruncate: return "Truncated";
        case FaultyTransport::Fault::kDuplicate: return "Duplicated";
        case FaultyTransport::Fault::kDrop: return "Dropped";
        case FaultyTransport::Fault::kDelay: return "Delayed";
        case FaultyTransport::Fault::kReorder: return "Reordered";
      }
      return "Unknown";
    });

// A delayed frame arriving long after its slot — behind frames the follower
// already rejected past — must be skipped as a duplicate once the resend
// stream has moved on, never applied out of order. FlushDelayed simulates
// "the network finally delivers the straggler".
TEST(ReplicationFaultTest, StragglerAfterResendIsIgnored) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  auto wire = std::make_shared<InProcessTransport>();
  auto faulty = std::make_shared<FaultyTransport>(wire);
  faulty->InjectOnSend(3, FaultyTransport::Fault::kDelay);
  faulty->InjectOnSend(5, FaultyTransport::Fault::kReorder);

  Replica replica(faulty);
  ASSERT_TRUE(leader.AttachFollower(faulty, ReplicationOptions{128}).ok());
  for (const std::string& statement : ref.statements) {
    ASSERT_TRUE(leader.Run(statement).ok());
    ASSERT_TRUE(replica.PollOnce().ok());
    ExpectAtBoundary(ref, &replica, "with in-flight stragglers");
    ASSERT_TRUE(leader.PumpReplication().ok());
  }
  // Whatever is still held back arrives now, as stale duplicates.
  ASSERT_TRUE(faulty->FlushDelayed().ok());
  CatchUp(&leader, &replica);
  ExpectAtBoundary(ref, &replica, "after straggler flush");
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
}

// A partition black-holes both directions mid-workload; commits keep piling
// up on the leader. After Heal, one resend round must reconverge the
// follower to the exact leader state — and the segments lost inside the
// partition must never surface as gaps or duplicates.
TEST(ReplicationFaultTest, PartitionHealsAndReconverges) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  auto wire = std::make_shared<InProcessTransport>();
  auto faulty = std::make_shared<FaultyTransport>(wire);
  Replica replica(faulty);
  ASSERT_TRUE(leader.AttachFollower(faulty, ReplicationOptions{128}).ok());
  ASSERT_TRUE(replica.PollOnce().ok());

  const size_t cut = kWorkloadStatements / 4;
  const size_t heal = (3 * kWorkloadStatements) / 4;
  for (size_t i = 0; i < ref.statements.size(); ++i) {
    if (i == cut) faulty->Partition();
    ASSERT_TRUE(leader.Run(ref.statements[i]).ok());
    ASSERT_TRUE(replica.PollOnce().ok());
    ExpectAtBoundary(ref, &replica, "around the partition");
    if (i < cut) {
      // Before the cut the pipe keeps up statement by statement.
      ASSERT_TRUE(leader.PumpReplication().ok());
    } else if (i == heal) {
      // Inside the partition the follower froze at its pre-cut boundary.
      // Heal, then force the follower to notice the gap: the next shipped
      // segment starts past its applied LSN, triggering a resend.
      EXPECT_LE(replica.applied_lsn(), ref.lsn_after[cut]);
      faulty->Heal();
    }
  }
  CatchUp(&leader, &replica);
  ExpectAtBoundary(ref, &replica, "after heal");
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_EQ(replica.applied_lsn(), leader.wal_writer()->appended_lsn());
}

// A duplicated statement must not double-apply: count statement records on
// the leader's log and require exactly that many applies on the follower.
TEST(ReplicationFaultTest, DuplicateNeverDoubleApplies) {
  GraphDatabase leader;
  RunOk(&leader, "CREATE (:C {n: 0})");
  ASSERT_TRUE(leader.OpenDurable(std::make_unique<MemoryLogFile>()).ok());

  auto wire = std::make_shared<InProcessTransport>();
  auto faulty = std::make_shared<FaultyTransport>(wire);
  Replica replica(faulty);
  ASSERT_TRUE(leader.AttachFollower(faulty, ReplicationOptions{1}).ok());
  // Segment size 1 byte -> one record per segment; duplicate each of the
  // next three segment sends (send #1 was the bootstrap).
  faulty->InjectOnSend(2, FaultyTransport::Fault::kDuplicate);
  faulty->InjectOnSend(3, FaultyTransport::Fault::kDuplicate);
  faulty->InjectOnSend(4, FaultyTransport::Fault::kDuplicate);

  for (int i = 0; i < 3; ++i) {
    RunOk(&leader, "MATCH (c:C) SET c.n = c.n + 1");
  }
  CatchUp(&leader, &replica);
  EXPECT_EQ(replica.statements_applied(), 3u);
  auto session = replica.BeginReadSession();
  ASSERT_TRUE(session.ok());
  auto n = session->Execute("MATCH (c:C) RETURN c.n");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(testing::Scalar(*n).AsInt(), 3);
}

// ---- Compaction / retention ------------------------------------------------

// A lagging follower's retention pin must hold the WAL open past the
// auto-checkpoint threshold (the follower can still catch up afterwards),
// and detaching must release it (the next commit compacts, size drops).
TEST(ReplicationRetentionTest, AutoCheckpointHeldByFollowerReleasedOnDetach) {
  const size_t kStatements = 4 * kWorkloadStatements;
  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, kStatements);
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kEveryCommit;
  // Compact as soon as the 2x hysteresis allows (log doubled since the
  // last checkpoint). The pin, not the threshold, is under test.
  durability.auto_checkpoint_bytes = 1;

  // Control run, no follower: the same workload must trip at least one
  // auto-checkpoint (a commit that *shrinks* the log), or the held/released
  // assertions below would be vacuous.
  {
    GraphDatabase control;
    ASSERT_TRUE(BuildRandomGraph(&control, kSeed).ok());
    ASSERT_TRUE(
        control.OpenDurable(std::make_unique<MemoryLogFile>(), durability)
            .ok());
    uint64_t prev = control.wal_writer()->LogBytes();
    bool compacted = false;
    for (const std::string& statement : workload) {
      ASSERT_TRUE(control.Run(statement).ok());
      uint64_t now = control.wal_writer()->LogBytes();
      if (now < prev) compacted = true;
      prev = now;
    }
    ASSERT_TRUE(compacted)
        << "workload too small to trip the auto-checkpoint; the retention "
           "assertions below would test nothing";
  }

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(
      leader.OpenDurable(std::make_unique<MemoryLogFile>(), durability).ok());

  auto transport = std::make_shared<InProcessTransport>();
  Replica replica(transport);
  auto id = leader.AttachFollower(transport);
  ASSERT_TRUE(id.ok());

  // The follower never polls while the workload runs: its pin stays at the
  // attach LSN, so compaction must keep its hands off every later byte —
  // the log only ever grows, however far past the threshold.
  uint64_t prev = leader.wal_writer()->LogBytes();
  for (const std::string& statement : workload) {
    ASSERT_TRUE(leader.Run(statement).ok());
    uint64_t now = leader.wal_writer()->LogBytes();
    ASSERT_GE(now, prev)
        << "auto-checkpoint compacted bytes a lagging follower still needs";
    prev = now;
  }
  uint64_t held_bytes = leader.wal_writer()->LogBytes();

  // Retention held the segments: the follower still catches up completely.
  CatchUp(&leader, &replica);
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));

  // Caught up but still attached: a record-bearing commit appends before
  // the follower can ack it, so at checkpoint time the pin is behind the
  // head again and compaction stays deferred. (A statement with an empty
  // redo appends nothing — a fully-acked pin then covers the whole log and
  // compaction MAY legitimately fire; hence the guaranteed-effective
  // statement here.)
  ASSERT_TRUE(leader.Run("CREATE (:Pinned {held: 1})").ok());
  EXPECT_GE(leader.wal_writer()->LogBytes(), held_bytes);

  // Detach releases the pin; the next commit compacts and the size drops
  // even though the commit itself appended bytes.
  uint64_t before_detach = leader.wal_writer()->LogBytes();
  ASSERT_TRUE(leader.DetachFollower(*id).ok());
  ASSERT_TRUE(leader.Run("CREATE (:Pinned {held: 2})").ok());
  EXPECT_LT(leader.wal_writer()->LogBytes(), before_detach)
      << "detach did not release retention";
}

// The staleness cap bounds how long a dead follower may pin the log: once
// its unacked backlog exceeds max_retained_bytes the shipper detaches it,
// releases the pin, and counts a warning. A fresh attach afterwards
// re-bootstraps from a snapshot and converges — nothing was lost, only the
// cheap resume path.
TEST(ReplicationTest, StalenessCapDetachesDeadFollower) {
  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, 2 * kWorkloadStatements);
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kEveryCommit;
  durability.auto_checkpoint_bytes = 1;

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(
      leader.OpenDurable(std::make_unique<MemoryLogFile>(), durability).ok());

  // A follower that attaches and then never polls again — a crashed process
  // whose socket the leader has not noticed dying.
  auto dead_wire = std::make_shared<InProcessTransport>();
  Replica dead(dead_wire);
  ReplicationOptions caps;
  caps.segment_bytes = 128;
  caps.max_retained_bytes = 512;
  ASSERT_TRUE(leader.AttachFollower(dead_wire, caps).ok());
  uint64_t attach_durable = leader.wal_writer()->durable_lsn();

  for (const std::string& statement : workload) {
    ASSERT_TRUE(leader.Run(statement).ok());
  }
  ASSERT_GT(leader.wal_writer()->durable_lsn() - attach_durable,
            caps.max_retained_bytes)
      << "workload appended too little redo to exceed the staleness cap; "
         "the detach assertions below would test nothing";
  ReplicationStatus status = leader.replication_status();
  EXPECT_EQ(status.followers, 0u) << "stale follower still attached";
  EXPECT_GE(status.stale_detaches, 1u);
  EXPECT_FALSE(status.last_stale_warning.empty());

  // The pin is gone: the next commit may compact. More importantly a new
  // follower attaches fine even though the dead one's position has been
  // compacted out from under it.
  auto wire = std::make_shared<InProcessTransport>();
  Replica replica(wire);
  ASSERT_TRUE(leader.AttachFollower(wire, caps).ok());
  CatchUp(&leader, &replica);
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));
  EXPECT_GE(replica.bootstraps(), 1u);
}

// AttachFollowerAt resumes a follower that already holds the prefix in its
// own durable log: a valid position tails without a second snapshot; a
// position compaction has passed is refused (the follower must come back
// through the bootstrap path); a position past the log is nonsense.
TEST(ReplicationTest, AttachFollowerAtResumesOrRefuses) {
  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, 2 * kWorkloadStatements);
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kEveryCommit;
  durability.auto_checkpoint_bytes = 1;

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  ASSERT_TRUE(
      leader.OpenDurable(std::make_unique<MemoryLogFile>(), durability).ok());

  // A durable follower bootstraps and catches up the first half.
  auto wire = std::make_shared<InProcessTransport>();
  replication::ReplicaDurability files;
  files.wal = std::make_unique<MemoryLogFile>();
  files.meta = std::make_unique<MemoryLogFile>();
  auto replica_or = Replica::Open(wire, std::move(files));
  ASSERT_TRUE(replica_or.ok());
  Replica* replica = replica_or->get();
  auto id = leader.AttachFollower(wire);
  ASSERT_TRUE(id.ok());
  for (size_t i = 0; i < workload.size() / 2; ++i) {
    ASSERT_TRUE(leader.Run(workload[i]).ok());
  }
  CatchUp(&leader, replica);
  ASSERT_TRUE(leader.DetachFollower(*id).ok());
  uint64_t resume_lsn = replica->applied_lsn();

  // Off the end of the log is never a resume point.
  EXPECT_FALSE(
      leader.AttachFollowerAt(wire, leader.wal_writer()->appended_lsn() + 1)
          .ok());

  // The detached stretch commits more; the pin is gone, so retention is
  // whatever the auto-checkpoint leaves. Whether the resume position is
  // still servable depends on the resume floor (the last rewrite point, not
  // base_lsn: a rewrite destroys record boundaries below it).
  size_t i = workload.size() / 2;
  for (; i < workload.size(); ++i) {
    ASSERT_TRUE(leader.Run(workload[i]).ok());
  }
  if (leader.wal_writer()->min_resume_lsn() <= resume_lsn) {
    // Resume is still servable: re-attach mid-log, no second bootstrap.
    ASSERT_TRUE(leader.AttachFollowerAt(wire, resume_lsn).ok());
    CatchUp(&leader, replica);
    EXPECT_EQ(replica->CanonicalDump(), DumpGraphCanonical(leader.graph()));
    EXPECT_EQ(replica->bootstraps(), 1u)
        << "a resumable position must not re-bootstrap";
  } else {
    // Compaction passed the follower while it was away: resume is refused
    // with marching orders, and the bootstrap path still works.
    auto refused = leader.AttachFollowerAt(wire, resume_lsn);
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.status().ToString().find("re-bootstrap"),
              std::string::npos)
        << refused.status().ToString();
    ASSERT_TRUE(leader.AttachFollower(wire).ok());
    CatchUp(&leader, replica);
    EXPECT_EQ(replica->CanonicalDump(), DumpGraphCanonical(leader.graph()));
    EXPECT_EQ(replica->bootstraps(), 2u);
  }
}

// ---- Concurrent leader / follower / readers (TSan) -------------------------

// A writer thread commits the workload under group commit while an applier
// thread tails and a reader thread opens MVCC sessions on the follower.
// Every sampled (epoch, rendered-read) pair must byte-match the same read
// against a sequential replay of exactly that statement prefix — the
// prefix-equivalence guarantee, now across the wire. Runs under TSan in CI.
TEST(ReplicationTest, ConcurrentWriterFollowerReaderOracle) {
  Reference ref = BuildReference(kSeed, kWorkloadStatements);

  GraphDatabase leader;
  ASSERT_TRUE(BuildRandomGraph(&leader, kSeed).ok());
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kGroupCommit;
  ASSERT_TRUE(
      leader.OpenDurable(std::make_unique<MemoryLogFile>(), durability).ok());

  auto transport = std::make_shared<InProcessTransport>();
  Replica replica(transport);
  ASSERT_TRUE(leader.AttachFollower(transport, ReplicationOptions{256}).ok());

  // Scalar projections only: rendered bytes must not depend on interner
  // order, which a snapshot round-trip need not preserve. ORDER BY makes
  // the row order a function of state alone (ties are identical rows).
  const char* kProbe =
      "MATCH (a)-[r:R]->(b) RETURN a.id, r.c, b.id ORDER BY a.id, r.c, b.id";
  std::atomic<bool> writer_done{false};
  std::atomic<bool> applier_done{false};
  std::atomic<uint64_t> target_lsn{0};

  // Worker threads record failures and bail instead of ASSERTing: an assert
  // that leaves writer_done/applier_done unset would hang the other loops.
  std::string writer_error, applier_error, reader_error;

  std::thread writer([&] {
    for (const std::string& statement : ref.statements) {
      auto r = leader.Execute(statement);
      if (!r.ok()) {
        writer_error = statement + "\n  -> " + r.status().ToString();
        break;
      }
    }
    target_lsn.store(leader.wal_writer()->appended_lsn());
    writer_done.store(true);
  });

  // Applier: tail until everything the writer ever appends is applied.
  std::vector<std::pair<uint64_t, std::string>> boundaries;  // lsn, dump
  std::thread applier([&] {
    while (true) {
      (void)leader.PumpReplication();
      auto applied = replica.PollOnce();
      if (!applied.ok()) {
        applier_error = applied.status().ToString();
        break;
      }
      if (*applied > 0) {
        boundaries.emplace_back(replica.applied_lsn(), replica.CanonicalDump());
      }
      if (writer_done.load() && replica.applied_lsn() == target_lsn.load()) {
        break;
      }
      std::this_thread::yield();
    }
    applier_done.store(true);
  });

  // Reader: snapshot sessions on the follower, racing the applier.
  std::vector<std::pair<uint64_t, std::string>> samples;  // epoch, rendered
  std::thread reader([&] {
    while (!applier_done.load()) {
      if (!replica.bootstrapped()) {
        std::this_thread::yield();
        continue;
      }
      auto session = replica.BeginReadSession();
      if (!session.ok()) {
        reader_error = session.status().ToString();
        return;
      }
      uint64_t epoch = session->epoch();
      auto rendered = session->ExecuteRendered(kProbe);
      if (!rendered.ok()) {
        reader_error = rendered.status().ToString();
        return;
      }
      samples.emplace_back(epoch, *std::move(rendered));
      std::this_thread::yield();
    }
  });

  writer.join();
  applier.join();
  reader.join();
  ASSERT_EQ(writer_error, "");
  ASSERT_EQ(applier_error, "");
  ASSERT_EQ(reader_error, "");

  // Every applier-observed boundary is a committed leader prefix.
  EXPECT_FALSE(boundaries.empty());
  for (const auto& [lsn, dump] : boundaries) {
    auto it = ref.dump_at.find(lsn);
    ASSERT_NE(it, ref.dump_at.end()) << "not a boundary: lsn " << lsn;
    EXPECT_EQ(dump, it->second) << "divergence at lsn " << lsn;
  }
  EXPECT_EQ(replica.CanonicalDump(), DumpGraphCanonical(leader.graph()));

  // Every reader sample equals the probe against the matching sequential
  // prefix replay. The follower publishes one epoch per applied *record*,
  // and a statement whose redo was empty appends none — so epoch e means
  // "the first e record-bearing statements", which the reference's
  // lsn_after deltas identify.
  std::map<uint64_t, std::string> expected_render;
  {
    GraphDatabase prefix_db;
    ASSERT_TRUE(BuildRandomGraph(&prefix_db, kSeed).ok());
    uint64_t records = 0;
    auto render = [&]() {
      auto result = prefix_db.Execute(kProbe);
      EXPECT_TRUE(result.ok());
      return RenderResult(prefix_db.graph(), *result);
    };
    expected_render[records] = render();
    for (size_t i = 0; i < ref.statements.size(); ++i) {
      ASSERT_TRUE(prefix_db.Run(ref.statements[i]).ok());
      if (ref.lsn_after[i + 1] != ref.lsn_after[i]) {
        expected_render[++records] = render();
      }
    }
  }
  for (const auto& [epoch, rendered] : samples) {
    auto it = expected_render.find(epoch);
    ASSERT_NE(it, expected_render.end()) << "epoch " << epoch;
    EXPECT_EQ(rendered, it->second)
        << "pinned read at follower epoch " << epoch
        << " diverged from the statement-prefix replay";
  }
}

}  // namespace
}  // namespace cypher
