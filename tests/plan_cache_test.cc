// Plan cache + bytecode VM tests: counter accounting, literal replay
// (no value baking), option-fingerprint keying, stamp/graph invalidation,
// interpreter parity on errors, and LRU eviction at the unit level.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "test_util.h"
#include "vm/plan_cache.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(PlanCacheTest, CountersTrackRawAndShapeHits) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})").ok());
  db.plan_cache().ResetStats();

  // Cold: parse, parametrize, compile.
  RunOk(&db, "MATCH (n:N {v: 1}) RETURN n.v AS v");
  PlanCacheStats s = db.plan_cache().Stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);

  // Same text again: raw hit, no parse.
  RunOk(&db, "MATCH (n:N {v: 1}) RETURN n.v AS v");
  s = db.plan_cache().Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.raw_hits, 1u);
  EXPECT_EQ(s.misses, 1u);

  // Different literal, same normalized shape: shape hit after a raw miss.
  RunOk(&db, "MATCH (n:N {v: 2}) RETURN n.v AS v");
  s = db.plan_cache().Stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.shape_hits, 1u);
  EXPECT_EQ(s.misses, 1u);

  // The sibling text is now raw-cached too.
  RunOk(&db, "MATCH (n:N {v: 2}) RETURN n.v AS v");
  s = db.plan_cache().Stats();
  EXPECT_EQ(s.raw_hits, 2u);
  EXPECT_GT(s.entries, 0u);
}

TEST(PlanCacheTest, ShapeHitReplaysLiteralsNotCachedValues) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})").ok());
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N {v: 1}) RETURN n.v AS v")).AsInt(),
            1);
  // Must return 2, not the 1 the cached plan was first compiled against.
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N {v: 2}) RETURN n.v AS v")).AsInt(),
            2);
  // User parameters flow unchanged alongside the lifted literals.
  EXPECT_EQ(
      Scalar(RunOk(&db, "MATCH (n:N {v: $x}) RETURN n.v + 1 AS v",
                   {{"x", Value::Int(3)}}))
          .AsInt(),
      4);
  EXPECT_EQ(
      Scalar(RunOk(&db, "MATCH (n:N {v: $x}) RETURN n.v + 1 AS v",
                   {{"x", Value::Int(2)}}))
          .AsInt(),
      3);
}

TEST(PlanCacheTest, OptionFingerprintKeepsModesApart) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  db.plan_cache().ResetStats();
  const std::string query = "MATCH (n:N) RETURN n.v AS v";
  RunOk(&db, query);
  EXPECT_EQ(db.plan_cache().Stats().misses, 1u);
  // The same text under different session semantics may not reuse the
  // cached plan: the options are part of the key.
  db.options().semantics = SemanticsMode::kLegacy;
  RunOk(&db, query);
  PlanCacheStats s = db.plan_cache().Stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(PlanCacheTest, IndexCreationInvalidatesCachedMatchPlans) {
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE (:U {id: 1, v: 10}), (:U {id: 2, v: 20}), "
             "(:U {id: 3, v: 30})")
          .ok());
  // Prime a label-scan plan for the probe shape.
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (u:U {id: 2}) RETURN u.v AS v")).AsInt(),
            20);
  // DDL bumps the graph's index epoch; the stamped slot must recompile
  // (now through the index) and still produce identical results.
  ASSERT_TRUE(db.Run("CREATE INDEX ON :U(id)").ok());
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (u:U {id: 2}) RETURN u.v AS v")).AsInt(),
            20);
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (u:U {id: 3}) RETURN u.v AS v")).AsInt(),
            30);
}

TEST(PlanCacheTest, GraphSwapClearsCache) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  RunOk(&db, "MATCH (n:N) RETURN n.v AS v");
  EXPECT_GT(db.plan_cache().Stats().entries, 0u);

  const std::string path = ::testing::TempDir() + "/plan_cache_swap.graph";
  ASSERT_TRUE(db.SaveToFile(path).ok());
  ASSERT_TRUE(db.LoadFromFile(path).ok());
  // A wholesale graph replacement drops every cached plan.
  EXPECT_EQ(db.plan_cache().Stats().entries, 0u);
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N) RETURN n.v AS v")).AsInt(), 1);
}

TEST(PlanCacheTest, DisabledCacheBypassesVm) {
  GraphDatabase db;
  db.options().use_plan_cache = false;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N) RETURN n.v AS v")).AsInt(), 1);
  PlanCacheStats s = db.plan_cache().Stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(PlanCacheTest, ErrorsAndRollbackMatchInterpreter) {
  // A failing statement must report the interpreter's exact error and leave
  // the graph untouched on both tiers.
  const std::string failing = "CREATE (:T) WITH 1 AS one RETURN 1 / 0";
  GraphDatabase vm_db;
  GraphDatabase interp_db;
  interp_db.options().use_plan_cache = false;
  Status vm_err = RunErr(&vm_db, failing);
  Status interp_err = RunErr(&interp_db, failing);
  EXPECT_EQ(vm_err.ToString(), interp_err.ToString());
  EXPECT_EQ(vm_db.graph().num_nodes(), 0u);
  EXPECT_EQ(interp_db.graph().num_nodes(), 0u);

  // Missing-parameter diagnostics agree too.
  Status vm_missing = RunErr(&vm_db, "RETURN $nope AS x");
  Status interp_missing = RunErr(&interp_db, "RETURN $nope AS x");
  EXPECT_EQ(vm_missing.ToString(), interp_missing.ToString());
}

TEST(PlanCacheTest, AutoParametrizationCannotCollideWithUserParams) {
  // Lifted literals become `$#N` parameters; the lexer cannot produce a
  // `$#` reference, so a user map may never shadow one, and mixing user
  // parameters with literals in one statement stays well-defined.
  GraphDatabase db;
  EXPECT_EQ(Scalar(RunOk(&db, "RETURN 40 + $p AS x", {{"p", Value::Int(2)}}))
                .AsInt(),
            42);
  EXPECT_EQ(Scalar(RunOk(&db, "RETURN 40 + $p AS x", {{"p", Value::Int(5)}}))
                .AsInt(),
            45);
}

TEST(PlanCacheTest, LruEvictsAndCounts) {
  // Unit-level: a tiny cache sheds least-recently-used entries and counts
  // the evictions.
  PlanCache cache(8);  // 8 shards -> one entry per shard
  for (int i = 0; i < 64; ++i) {
    auto plan = std::make_shared<const CachedPlan>();
    cache.InsertRaw("q" + std::to_string(i), plan, {});
  }
  PlanCacheStats s = cache.Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, 8u);
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
}

}  // namespace
}  // namespace cypher
