#ifndef CYPHER_TESTS_TEST_UTIL_H_
#define CYPHER_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "cypher/database.h"
#include "exec/render.h"
#include "graph/isomorphism.h"
#include "graph/serialize.h"

namespace cypher::testing {

/// Executes and returns the result, failing the test on error.
inline QueryResult RunOk(GraphDatabase* db, std::string_view query,
                         const ValueMap& params = {}) {
  auto result = db->Execute(query, params);
  EXPECT_TRUE(result.ok()) << query << "\n  -> " << result.status().ToString();
  if (!result.ok()) return QueryResult{};
  return *std::move(result);
}

/// Executes expecting failure; returns the status.
inline Status RunErr(GraphDatabase* db, std::string_view query,
                     const ValueMap& params = {}) {
  auto result = db->Execute(query, params);
  EXPECT_FALSE(result.ok()) << query << " unexpectedly succeeded";
  return result.status();
}

/// Builds a fresh graph from a Cypher script (used to construct expected
/// figures for isomorphism comparison).
inline PropertyGraph GraphFromScript(const std::string& script) {
  GraphDatabase db;
  auto results = db.ExecuteScript(script);
  EXPECT_TRUE(results.ok()) << results.status().ToString();
  return db.graph();
}

/// EXPECT_* wrapper around AreIsomorphic with a readable dump on failure.
inline void ExpectIsomorphic(const PropertyGraph& got,
                             const PropertyGraph& want,
                             const std::string& what) {
  std::string why;
  EXPECT_TRUE(AreIsomorphic(got, want, &why))
      << what << ": graphs are not isomorphic (" << why << ")\n--- got:\n"
      << DumpGraph(got) << "--- want:\n"
      << DumpGraph(want);
}

/// The single cell of a single-row, single-column result.
inline Value Scalar(const QueryResult& result) {
  EXPECT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.columns.size(), 1u);
  if (result.rows.size() != 1 || result.rows[0].size() != 1) return Value();
  return result.rows[0][0];
}

}  // namespace cypher::testing

#endif  // CYPHER_TESTS_TEST_UTIL_H_
