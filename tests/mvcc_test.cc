// Snapshot-isolated read sessions (DESIGN.md §4g): pinned-epoch visibility,
// refresh, read-only enforcement, version reclamation, per-session cache
// counters, WAL auto-checkpointing, and — the heavyweight case — a
// concurrent read/write differential oracle. N reader threads open sessions
// mid-workload while a writer commits continuously; every sampled result
// must byte-match a sequential replay of the statement prefix (and of the
// WAL byte prefix) at the session's pinned epoch. The suite runs under TSan
// in CI, so the oracle doubles as the data-race detector for the lock-free
// read path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cypher/database.h"
#include "exec/render.h"
#include "query_gen.h"
#include "storage/log_file.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"

namespace cypher {
namespace {

using storage::MemoryLogFile;
using storage::RecoverGraph;
using testing::BuildRandomGraph;
using testing::GenerateReadQuery;
using testing::GenerateUpdateWorkload;
using testing::RunOk;
using testing::Scalar;

TEST(MvccTest, SessionSeesPinnedStateWhileWriterAdvances) {
  GraphDatabase db;
  RunOk(&db, "CREATE (:N {v: 1}), (:N {v: 2})");
  ASSERT_TRUE(db.EnableMvcc().ok());

  auto session = db.BeginReadSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->epoch(), 0u);

  // The writer keeps committing; the pinned session must not notice.
  RunOk(&db, "CREATE (:N {v: 3})");
  RunOk(&db, "MATCH (n:N {v: 1}) SET n.v = 100");
  RunOk(&db, "MATCH (n:N {v: 2}) DELETE n");

  auto pinned = session->Execute("MATCH (n:N) RETURN count(n)");
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(Scalar(*pinned).AsInt(), 2);
  auto old_val = session->Execute("MATCH (n:N) RETURN n.v ORDER BY n.v");
  ASSERT_TRUE(old_val.ok());
  ASSERT_EQ(old_val->rows.size(), 2u);
  EXPECT_EQ(old_val->rows[0][0].AsInt(), 1);
  EXPECT_EQ(old_val->rows[1][0].AsInt(), 2);

  // Refresh re-pins to the newest committed epoch (every committed writer
  // statement publishes one, so three commits = epoch 3).
  session->Refresh();
  EXPECT_EQ(session->epoch(), 3u);
  auto fresh = session->Execute("MATCH (n:N) RETURN n.v ORDER BY n.v");
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->rows.size(), 2u);
  EXPECT_EQ(fresh->rows[0][0].AsInt(), 3);
  EXPECT_EQ(fresh->rows[1][0].AsInt(), 100);

  // The writer itself sees the latest state throughout.
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N) RETURN count(n)")).AsInt(), 2);
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N) WHERE n.v = 100 RETURN count(n)"))
                .AsInt(),
            1);
}

TEST(MvccTest, SessionRefusesUpdatesAndDdl) {
  GraphDatabase db;
  ASSERT_TRUE(db.EnableMvcc().ok());
  auto session = db.BeginReadSession();
  ASSERT_TRUE(session.ok());
  for (const char* stmt : {
           "CREATE (:X)",
           "MATCH (n) SET n.v = 1",
           "MATCH (n) DELETE n",
           "MERGE (:X {id: 1})",
           "CREATE INDEX ON :X(id)",
       }) {
    auto r = session->Execute(stmt);
    ASSERT_FALSE(r.ok()) << stmt << " unexpectedly succeeded in a snapshot";
    EXPECT_NE(r.status().ToString().find("read-only"), std::string::npos)
        << r.status().ToString();
  }
  // Read-only composite forms stay allowed.
  EXPECT_TRUE(session->Execute("UNWIND [1,2] AS x WITH x WHERE x > 1 "
                               "RETURN x").ok());
}

TEST(MvccTest, BeginReadSessionRequiresEnableMvcc) {
  GraphDatabase db;
  EXPECT_FALSE(db.BeginReadSession().ok());
  ASSERT_TRUE(db.EnableMvcc().ok());
  EXPECT_TRUE(db.BeginReadSession().ok());
}

TEST(MvccTest, PinnedReadsSkipPropertyIndexes) {
  GraphDatabase db;
  RunOk(&db, "CREATE INDEX ON :U(id)");
  for (int i = 0; i < 20; ++i) {
    RunOk(&db, "CREATE (:U {id: " + std::to_string(i) + "})");
  }
  ASSERT_TRUE(db.EnableMvcc().ok());
  auto session = db.BeginReadSession();
  ASSERT_TRUE(session.ok());
  RunOk(&db, "MATCH (u:U {id: 7}) SET u.id = 700");
  // Indexed equality predicate: the writer plan would anchor on the (now
  // stale, unversioned) property index; the pinned compile must fall back
  // to a versioned scan and still see the snapshot value.
  auto r = session->Execute("MATCH (u:U {id: 7}) RETURN count(u)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Scalar(*r).AsInt(), 1);
  // The writer's own indexed read sees the update.
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (u:U {id: 700}) RETURN count(u)"))
                .AsInt(),
            1);
}

TEST(MvccTest, SupersededVersionsReclaimOnceUnpinned) {
  GraphDatabase db;
  RunOk(&db, "CREATE (:N {v: 0})");
  ASSERT_TRUE(db.EnableMvcc().ok());
  {
    auto session = db.BeginReadSession();
    ASSERT_TRUE(session.ok());
    // Each SET supersedes the node's record; the pin holds them all back.
    for (int i = 1; i <= 8; ++i) {
      RunOk(&db, "MATCH (n:N) SET n.v = " + std::to_string(i));
    }
    EXPECT_GT(db.graph().RetiredPending(), 0u);
    EXPECT_EQ(Scalar(*session->Execute("MATCH (n:N) RETURN n.v")).AsInt(), 0);
  }
  // Session destroyed: the next committed epoch reclaims everything.
  RunOk(&db, "MATCH (n:N) SET n.v = 9");
  EXPECT_EQ(db.graph().RetiredPending(), 0u);
}

TEST(MvccTest, PerSessionCacheCounters) {
  GraphDatabase db;
  RunOk(&db, "CREATE (:N {v: 1})");
  ASSERT_TRUE(db.EnableMvcc().ok());
  auto session = db.BeginReadSession();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->cache_counters().hits, 0u);
  EXPECT_EQ(session->cache_counters().misses, 0u);

  ASSERT_TRUE(session->Execute("MATCH (n:N) RETURN n.v").ok());
  EXPECT_EQ(session->cache_counters().misses, 1u);
  EXPECT_EQ(session->cache_counters().hits, 0u);
  ASSERT_TRUE(session->Execute("MATCH (n:N) RETURN n.v").ok());
  EXPECT_EQ(session->cache_counters().hits, 1u);

  // The session's traffic never lands on the writer's tally, and vice versa.
  uint64_t writer_hits = db.session_cache_counters().hits;
  uint64_t writer_misses = db.session_cache_counters().misses;
  ASSERT_TRUE(session->Execute("MATCH (n:N) RETURN n.v").ok());
  EXPECT_EQ(db.session_cache_counters().hits, writer_hits);
  EXPECT_EQ(db.session_cache_counters().misses, writer_misses);

  session->ResetCacheCounters();
  EXPECT_EQ(session->cache_counters().hits, 0u);
  EXPECT_EQ(session->cache_counters().misses, 0u);
}

TEST(MvccTest, GraphReplacementRefusedWhileSessionsOpen) {
  GraphDatabase db;
  ASSERT_TRUE(db.EnableMvcc().ok());
  auto session = db.BeginReadSession();
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(db.OpenDurable(std::make_unique<MemoryLogFile>()).ok());
  session->Close();
  EXPECT_TRUE(db.OpenDurable(std::make_unique<MemoryLogFile>()).ok());
  // Recovery re-enabled MVCC on the (possibly swapped) graph.
  EXPECT_TRUE(db.mvcc_enabled());
  EXPECT_TRUE(db.BeginReadSession().ok());
}

TEST(MvccTest, AutoCheckpointBoundsLogGrowth) {
  constexpr uint64_t kThreshold = 16 * 1024;
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 7).ok());
  auto file = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = file.get();
  DurabilityOptions durability;
  durability.auto_checkpoint_bytes = kThreshold;
  ASSERT_TRUE(db.OpenDurable(std::move(file), durability).ok());

  uint64_t high_water = 0;
  for (const std::string& stmt : GenerateUpdateWorkload(7, 300)) {
    RunOk(&db, stmt);
    high_water = std::max<uint64_t>(high_water, raw->size());
  }
  // Growth is bounded: the log compacts before doubling past the larger of
  // the threshold and one snapshot image, plus one record of slack.
  uint64_t snapshot_size = storage::EncodeSnapshot(db.graph()).size();
  uint64_t bound = 2 * std::max(kThreshold, snapshot_size) + 4096;
  EXPECT_LT(high_water, bound)
      << "log grew to " << high_water << " despite auto-checkpointing";

  // The compacted log must still recover the exact graph.
  std::string image = raw->bytes();
  auto rec = RecoverGraph(image);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(DumpGraphCanonical(rec->graph), DumpGraphCanonical(db.graph()));
  EXPECT_FALSE(rec->torn_tail);
}

// The concurrent differential oracle. One writer applies a generated update
// workload to a durable, MVCC-enabled database while reader threads open
// snapshot sessions at arbitrary points and record (pinned epoch, query,
// rendered rows). Afterwards each sample is checked against two independent
// replays of the first E statements — a fresh in-memory database, and crash
// recovery over the WAL byte prefix the writer had synced by epoch E — and
// all three renderings must agree byte for byte.
TEST(MvccTest, ConcurrentSnapshotOracle) {
  constexpr uint64_t kSeed = 11;
  constexpr size_t kStatements = 160;
  constexpr int kReaders = 4;
  constexpr int kSamplesPerReader = 12;

  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, kSeed).ok());
  ASSERT_TRUE(db.EnableMvcc().ok());
  auto file = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = file.get();
  ASSERT_TRUE(db.OpenDurable(std::move(file)).ok());

  const std::vector<std::string> workload =
      GenerateUpdateWorkload(kSeed, kStatements);
  // lsn_after[i]: log end once statement i committed (single writer thread,
  // so exact). Epoch E maps to the byte prefix [0, E ? lsn_after[E-1] : base).
  const uint64_t lsn_base = db.wal_writer()->appended_lsn();
  std::vector<uint64_t> lsn_after(workload.size(), 0);

  struct Sample {
    uint64_t epoch;
    uint64_t query_seed;
    std::string rendered;
  };
  std::vector<std::vector<Sample>> samples(kReaders);
  std::vector<std::string> reader_errors(kReaders);
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int s = 0; s < kSamplesPerReader; ++s) {
        auto session = db.BeginReadSession();
        if (!session.ok()) {
          reader_errors[r] = session.status().ToString();
          return;
        }
        uint64_t qseed = kSeed * 1000 + r * 100 + s;
        auto rendered = session->ExecuteRendered(GenerateReadQuery(qseed));
        if (!rendered.ok()) {
          reader_errors[r] = GenerateReadQuery(qseed) + "\n  -> " +
                             rendered.status().ToString();
          return;
        }
        samples[r].push_back({session->epoch(), qseed, *std::move(rendered)});
        if (writer_done.load(std::memory_order_relaxed) && s >= 2) return;
        std::this_thread::yield();
      }
    });
  }

  for (size_t i = 0; i < workload.size(); ++i) {
    auto result = db.Execute(workload[i]);
    ASSERT_TRUE(result.ok())
        << workload[i] << "\n  -> " << result.status().ToString();
    lsn_after[i] = db.wal_writer()->appended_lsn();
  }
  writer_done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  for (int r = 0; r < kReaders; ++r) {
    ASSERT_TRUE(reader_errors[r].empty()) << reader_errors[r];
    ASSERT_FALSE(samples[r].empty());
  }
  const std::string image = raw->bytes();

  // Replay cache: one sequential database per distinct epoch would be
  // wasteful; advance a single replica statement by statement instead.
  GraphDatabase replica;
  ASSERT_TRUE(BuildRandomGraph(&replica, kSeed).ok());
  uint64_t replica_epoch = 0;

  std::vector<Sample> all;
  for (auto& vec : samples) {
    for (auto& s : vec) all.push_back(std::move(s));
  }
  std::sort(all.begin(), all.end(),
            [](const Sample& a, const Sample& b) { return a.epoch < b.epoch; });

  for (const Sample& sample : all) {
    ASSERT_LE(sample.epoch, workload.size());
    while (replica_epoch < sample.epoch) {
      ASSERT_TRUE(replica.Run(workload[replica_epoch]).ok());
      ++replica_epoch;
    }
    const std::string query = GenerateReadQuery(sample.query_seed);
    auto sequential = replica.Execute(query);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    EXPECT_EQ(sample.rendered, RenderResult(replica.graph(), *sequential))
        << "epoch " << sample.epoch << " query: " << query;

    // Same check against crash recovery of the WAL byte prefix the writer
    // had appended by that epoch.
    uint64_t prefix =
        sample.epoch == 0 ? lsn_base : lsn_after[sample.epoch - 1];
    auto rec = RecoverGraph(std::string_view(image).substr(0, prefix));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    GraphDatabase from_wal;
    from_wal.graph() = std::move(rec->graph);
    auto recovered = from_wal.Execute(query);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(sample.rendered, RenderResult(from_wal.graph(), *recovered))
        << "epoch " << sample.epoch << " query: " << query;
  }
}

}  // namespace
}  // namespace cypher
