#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

EvalOptions Legacy() {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  return o;
}

class DeleteTest : public ::testing::TestWithParam<SemanticsMode> {
 protected:
  DeleteTest() {
    db_.options().semantics = GetParam();
    EXPECT_TRUE(db_.Run("CREATE (a:User {id: 1}), (b:User {id: 2}), "
                        "(p:Product {id: 10}), "
                        "(a)-[:ORDERED]->(p), (b)-[:ORDERED]->(p)")
                    .ok());
  }
  GraphDatabase db_;
};

INSTANTIATE_TEST_SUITE_P(BothModes, DeleteTest,
                         ::testing::Values(SemanticsMode::kLegacy,
                                           SemanticsMode::kRevised),
                         [](const auto& info) {
                           return info.param == SemanticsMode::kLegacy
                                      ? "Legacy"
                                      : "Revised";
                         });

TEST_P(DeleteTest, DeleteRelationship) {
  QueryResult r = RunOk(&db_, "MATCH ()-[o:ORDERED]->() DELETE o");
  EXPECT_EQ(r.stats.rels_deleted, 2u);
  EXPECT_EQ(db_.graph().num_rels(), 0u);
  EXPECT_EQ(db_.graph().num_nodes(), 3u);
}

TEST_P(DeleteTest, DeleteIsolatedNode) {
  RunOk(&db_, "CREATE (:Lonely)");
  QueryResult r = RunOk(&db_, "MATCH (l:Lonely) DELETE l");
  EXPECT_EQ(r.stats.nodes_deleted, 1u);
}

TEST_P(DeleteTest, DetachDeleteRemovesIncidentRels) {
  QueryResult r = RunOk(&db_, "MATCH (p:Product) DETACH DELETE p");
  EXPECT_EQ(r.stats.nodes_deleted, 1u);
  EXPECT_EQ(r.stats.rels_deleted, 2u);
  EXPECT_EQ(db_.graph().num_nodes(), 2u);
  EXPECT_EQ(db_.graph().num_rels(), 0u);
}

TEST_P(DeleteTest, DeleteNullIsNoOp) {
  QueryResult r = RunOk(&db_, "OPTIONAL MATCH (m:Missing) DELETE m");
  EXPECT_EQ(r.stats.nodes_deleted, 0u);
}

TEST_P(DeleteTest, DeleteNonEntityErrors) {
  EXPECT_EQ(RunErr(&db_, "UNWIND [1] AS x DELETE x").code(),
            StatusCode::kExecutionError);
}

TEST_P(DeleteTest, DeletePathDeletesEverything) {
  QueryResult r = RunOk(
      &db_, "MATCH pth = (:User {id: 1})-[:ORDERED]->(:Product) "
            "DETACH DELETE pth");
  EXPECT_EQ(r.stats.nodes_deleted, 2u);
  EXPECT_GE(r.stats.rels_deleted, 1u);
}

TEST_P(DeleteTest, DoubleDeleteSameEntityIsFine) {
  // Both ORDERED rows delete the same product node.
  QueryResult r =
      RunOk(&db_, "MATCH (:User)-[o:ORDERED]->(p:Product) DELETE o, p");
  EXPECT_EQ(r.stats.nodes_deleted, 1u);
  EXPECT_EQ(r.stats.rels_deleted, 2u);
}

// ---- Revised-only behaviours ---------------------------------------------------

TEST(DeleteRevisedTest, DanglingCheckCountsSameClauseDeletes) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (a:A)-[:T]->(b:B)").ok());
  // Node deleted while a relationship not in the clause remains -> error.
  EXPECT_FALSE(db.Execute("MATCH (a:A) DELETE a").ok());
  // Relationship and node in one clause -> fine.
  EXPECT_TRUE(db.Execute("MATCH (a:A)-[t:T]->() DELETE t, a").ok());
}

TEST(DeleteRevisedTest, TableReferencesBecomeNull) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1}), (:N {id: 2})").ok());
  QueryResult r = RunOk(&db,
                        "MATCH (n:N) DETACH DELETE n "
                        "RETURN n AS gone, 1 AS one");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_TRUE(r.rows[1][0].is_null());
}

TEST(DeleteRevisedTest, ListsContainingDeletedEntitiesAreScrubbed) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1}), (:N {id: 2})").ok());
  QueryResult r = RunOk(&db,
                        "MATCH (n:N) WITH collect(n) AS ns "
                        "FOREACH (x IN ns | DETACH DELETE x) "
                        "WITH ns MATCH (m:N) RETURN count(m) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 0);
}

TEST(DeleteRevisedTest, MatchAfterDeleteSeesUpdatedGraph) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1}), (:N {id: 2})").ok());
  QueryResult r = RunOk(&db,
                        "MATCH (n:N {id: 1}) DETACH DELETE n "
                        "WITH 1 AS x MATCH (m:N) RETURN count(m) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

// ---- Legacy-only anomalies ------------------------------------------------------

TEST(DeleteLegacyTest, ScanOrderAffectsIntermediateStates) {
  // Legacy deletes immediately, so a later record's MATCH-bound entity may
  // already be gone; deleting twice is a no-op either way, but the zombie
  // is visible to SET (covered in set_test) and RETURN.
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1})-[:T]->(:N {id: 2})").ok());
  QueryResult r =
      RunOk(&db, "MATCH (a:N)-[t:T]-(b:N) DELETE t, a, b RETURN a.id AS x");
  // Both rows (a=1,b=2) and (a=2,b=1) are processed; after the first, all
  // entities are zombies; their props are cleared, so x is null.
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST(DeleteLegacyTest, CascadeWorksWhenAllDeletedByStatementEnd) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (a:A)-[:T]->(b:B)").ok());
  // DELETE a leaves a dangling rel mid-statement; a later clause deletes
  // it, so the end-of-statement check passes (the Section 4.2 scenario).
  EXPECT_TRUE(db.Execute("MATCH (a:A)-[t:T]->() DELETE a DELETE t").ok());
  EXPECT_EQ(db.graph().num_nodes(), 1u);
  EXPECT_EQ(db.graph().num_rels(), 0u);
}

TEST(DeleteLegacyTest, MatchingOverIllegalGraphSkipsZombies) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (a:A)-[:T]->(b:B), (c:A)").ok());
  // Between DELETE a and DELETE t the graph is illegal; a MATCH in between
  // must not see the zombie node.
  QueryResult r = RunOk(&db,
                        "MATCH (a:A)-[t:T]->() DELETE a "
                        "WITH t MATCH (x:A) DELETE t "
                        "RETURN count(x) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);  // only c remains visible
}

}  // namespace
}  // namespace cypher
