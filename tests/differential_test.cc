// Differential harness: serial-vs-parallel byte equality plus
// rewrite-equivalence fuzzing.
//
// Part one (the original suite): the parallel executor promises
// byte-identical rendered tables regardless of worker count or morsel
// size. Seeded random graphs (query_gen.cc) crossed with seeded random
// read-only queries run sequentially and under several parallel
// configurations including the expand mode; legacy vs revised semantics
// are cross-checked on the same read-only corpus.
//
// Part two (RewriteFuzz): an equivalence oracle over the update
// semantics. Every corpus statement — read AND update — is rewritten by
// tests/rewriter.cc into provably equivalent variants (pattern reversal,
// conjunct rotation/splitting, WHERE <-> property-map migration, WITH *
// insertion, MERGE -> conditional CREATE, ...). Each variant must produce
// the same BAG of result rows, the same stats line, and a byte-identical
// canonical graph dump as the original, across sequential x parallel
// configs x legacy/revised semantics. A self-check asserts every rewrite
// rule fires on the corpus, so applicability conditions cannot silently
// rot into dead rules.
//
// Failures print a single REPRO line (seed, config flags, rule, full
// query text) plus the first diverging artifact line, and append the
// REPRO line to $CYPHER_FUZZ_REPRO_FILE when set — CI uploads that file
// so nightly failures are actionable without a local rerun.
// $CYPHER_FUZZ_READ_CASES / $CYPHER_FUZZ_UPDATE_CASES scale the per-graph
// case counts (the nightly job raises them well above the in-matrix
// defaults).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exec/options.h"
#include "exec/render.h"
#include "graph/serialize.h"
#include "query_gen.h"
#include "rewriter.h"
#include "test_util.h"

namespace cypher::testing {
namespace {

constexpr uint64_t kGraphSeeds = 8;
constexpr uint64_t kQueriesPerGraph = 30;  // 8 * 30 = 240 cases.

size_t EnvCount(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

const char* SemName(SemanticsMode semantics) {
  return semantics == SemanticsMode::kLegacy ? "legacy" : "revised";
}

struct ParallelKnobs {
  size_t workers;
  size_t morsel;
};

// The sweep deliberately includes workers=1 (parallel plumbing, sequential
// schedule), a single-row morsel, and a high worker count that exceeds the
// row count of most generated intermediates.
const ParallelKnobs kConfigs[] = {{1, 256}, {2, 16}, {8, 1}, {8, 256}};

// The rewrite oracle's config sweep: sequential, plus two parallel
// configurations that cover the partitioned and single-row-morsel paths.
const ParallelKnobs kOracleConfigs[] = {{0, 256}, {2, 16}, {8, 1}};

/// Runs `query` on a copy of `base` and returns the rendered table, or the
/// error status as a string so failures are compared byte-for-byte too.
std::string RunCase(const PropertyGraph& base, const std::string& query,
                    size_t workers, size_t morsel,
                    SemanticsMode semantics = SemanticsMode::kRevised) {
  GraphDatabase db;
  db.graph() = base;
  db.options().semantics = semantics;
  db.options().parallel_workers = workers;
  db.options().parallel_morsel_size = morsel;
  db.options().parallel_min_cost = 1;  // engage on every eligible clause
  auto result = db.Execute(query);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return RenderResult(db.graph(), *result);
}

/// Runs `query` on a copy of `base` and returns the canonical bag
/// artifact compared by the rewrite oracle: status, column names, the
/// SORTED rendered rows (rewrites may legally permute row order — tables
/// are bags, paper Section 2), the mutation-stats line, and the canonical
/// dump of the post-statement graph. Errors keep the dump too, so the
/// roll-back-on-failure guarantee is differential-tested as well.
std::string BagArtifact(const GraphDatabase& db,
                        const Result<QueryResult>& result) {
  std::string out;
  if (!result.ok()) {
    out = "ERROR: " + result.status().ToString() + "\n";
  } else {
    out = "cols:";
    for (const std::string& column : result->columns) out += " " + column;
    out += "\n";
    std::vector<std::string> rows;
    rows.reserve(result->rows.size());
    for (const std::vector<Value>& row : result->rows) {
      std::string line;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) line += " | ";
        line += RenderValue(db.graph(), row[i]);
      }
      rows.push_back(std::move(line));
    }
    std::sort(rows.begin(), rows.end());
    for (const std::string& row : rows) out += row + "\n";
    out += "stats: " + result->stats.ToString() + "\n";
  }
  out += "-- graph --\n" + DumpGraphCanonical(db.graph());
  return out;
}

std::string RunBagArtifact(const PropertyGraph& base, const std::string& query,
                           size_t workers, size_t morsel,
                           SemanticsMode semantics) {
  GraphDatabase db;
  db.graph() = base;
  db.options().semantics = semantics;
  db.options().parallel_workers = workers;
  db.options().parallel_morsel_size = morsel;
  db.options().parallel_min_cost = 1;
  auto result = db.Execute(query);
  return BagArtifact(db, result);
}

PropertyGraph MakeGraph(uint64_t seed) {
  GraphDatabase db;
  Status st = BuildRandomGraph(&db, seed);
  EXPECT_TRUE(st.ok()) << "graph seed " << seed << ": " << st.ToString();
  return db.graph();
}

// ---------------------------------------------------------------------------
// Failure reproducers
// ---------------------------------------------------------------------------

/// One-line reproducer; everything needed to rerun the case is on one
/// greppable line so CI output is actionable without a local rerun.
std::string ReproLine(const std::string& kind, uint64_t gseed, uint64_t qseed,
                      const std::string& rule, SemanticsMode semantics,
                      size_t workers, size_t morsel,
                      const std::string& query) {
  std::ostringstream os;
  os << "REPRO kind=" << kind << " gseed=" << gseed << " qseed=" << qseed
     << " rule=\"" << rule << "\" semantics=" << SemName(semantics)
     << " workers=" << workers << " morsel=" << morsel << " query=\"" << query
     << "\"";
  return os.str();
}

/// The first line where the two artifacts diverge.
std::string FirstDivergence(const std::string& expected,
                            const std::string& actual) {
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  size_t line = 1;
  while (true) {
    const bool more_want = static_cast<bool>(std::getline(want, want_line));
    const bool more_got = static_cast<bool>(std::getline(got, got_line));
    if (!more_want && !more_got) return "(artifacts identical)";
    if (want_line != got_line || more_want != more_got) {
      std::ostringstream os;
      os << "first divergence at artifact line " << line
         << ":\n  expected: " << (more_want ? want_line : "<end of artifact>")
         << "\n  actual:   " << (more_got ? got_line : "<end of artifact>");
      return os.str();
    }
    want_line.clear();
    got_line.clear();
    ++line;
  }
}

/// Appends a reproducer line to $CYPHER_FUZZ_REPRO_FILE (no-op when
/// unset); the nightly CI job uploads the file as a failure artifact.
void LogRepro(const std::string& line) {
  const char* path = std::getenv("CYPHER_FUZZ_REPRO_FILE");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << line << "\n";
}

// ---------------------------------------------------------------------------
// Original serial-vs-parallel suite
// ---------------------------------------------------------------------------

TEST(DifferentialTest, SerialVsParallelByteIdentical) {
  size_t succeeded = 0;
  size_t nonempty = 0;
  for (uint64_t gs = 0; gs < kGraphSeeds; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    for (uint64_t qs = 0; qs < kQueriesPerGraph; ++qs) {
      const uint64_t seed = gs * 1000 + qs;
      const std::string query = GenerateReadQuery(seed);
      const std::string expected = RunCase(base, query, 0, 256);
      if (expected.rfind("ERROR:", 0) != 0) {
        ++succeeded;
        if (expected.find("\n") != expected.rfind("\n")) ++nonempty;
      }
      for (const ParallelKnobs& cfg : kConfigs) {
        const std::string got =
            RunCase(base, query, cfg.workers, cfg.morsel);
        if (got != expected) {
          const std::string repro =
              ReproLine("serial-vs-parallel", gs, seed, "original",
                        SemanticsMode::kRevised, cfg.workers, cfg.morsel,
                        query);
          LogRepro(repro);
          ADD_FAILURE() << repro << "\n" << FirstDivergence(expected, got);
        }
      }
    }
  }
  // The harness is only useful if the generator mostly produces queries
  // that actually execute and return rows; guard against silent decay.
  const size_t total = kGraphSeeds * kQueriesPerGraph;
  EXPECT_GE(succeeded, total * 9 / 10)
      << succeeded << "/" << total << " cases executed without error";
  EXPECT_GE(nonempty, total / 2)
      << nonempty << "/" << total << " cases produced at least one row";
}

TEST(DifferentialTest, LegacyVsRevisedReadOnlyAgree) {
  // Read-only queries must render identically under both update-semantics
  // modes; only write clauses may diverge. Sequential execution isolates
  // the semantics knob from the parallel one.
  for (uint64_t gs = 0; gs < kGraphSeeds; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    for (uint64_t qs = 0; qs < kQueriesPerGraph; ++qs) {
      const uint64_t seed = gs * 1000 + qs;
      const std::string query = GenerateReadQuery(seed);
      const std::string legacy =
          RunCase(base, query, 0, 256, SemanticsMode::kLegacy);
      const std::string revised =
          RunCase(base, query, 0, 256, SemanticsMode::kRevised);
      if (legacy != revised) {
        const std::string repro =
            ReproLine("legacy-vs-revised", gs, seed, "original",
                      SemanticsMode::kLegacy, 0, 256, query);
        LogRepro(repro);
        ADD_FAILURE() << repro << "\n" << FirstDivergence(revised, legacy);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rewrite-equivalence fuzzing
// ---------------------------------------------------------------------------

/// Runs one corpus statement through the rewrite oracle: every variant
/// (plus the original, so update statements get the parallel sweep the
/// read-only suite above already gives reads) must reproduce the
/// sequential baseline artifact in every configuration and semantics mode
/// its equivalence argument covers. Single-rule fires are tallied into
/// `fired` for the self-check. Returns false after reporting the first
/// divergence so one root cause produces one failure, not dozens.
bool RunOracle(const PropertyGraph& base, const std::string& kind,
               uint64_t gseed, uint64_t qseed, const std::string& query,
               std::map<std::string, size_t>* fired) {
  std::vector<RewriteVariant> variants = GenerateRewrites(query);
  for (const RewriteVariant& variant : variants) {
    if (variant.rule.rfind("chain(", 0) != 0) ++(*fired)[variant.rule];
  }
  variants.insert(variants.begin(), RewriteVariant{"original", query, false});
  for (SemanticsMode semantics :
       {SemanticsMode::kLegacy, SemanticsMode::kRevised}) {
    const std::string baseline =
        RunBagArtifact(base, query, 0, 256, semantics);
    // A failing seed still checks config-consistency of its own error, but
    // rewritten variants may word an equivalent error differently — the
    // equivalence claim covers behaviour, not message text.
    const bool baseline_error = baseline.rfind("ERROR:", 0) == 0;
    for (const RewriteVariant& variant : variants) {
      if (variant.revised_only && semantics == SemanticsMode::kLegacy) {
        continue;
      }
      if (baseline_error && variant.rule != "original") continue;
      for (const ParallelKnobs& cfg : kOracleConfigs) {
        const std::string got = RunBagArtifact(base, variant.query,
                                               cfg.workers, cfg.morsel,
                                               semantics);
        if (got != baseline) {
          const std::string repro =
              ReproLine(kind, gseed, qseed, variant.rule, semantics,
                        cfg.workers, cfg.morsel, variant.query);
          LogRepro(repro);
          ADD_FAILURE() << repro << "\n  seed query: " << query << "\n"
                        << FirstDivergence(baseline, got);
          return false;
        }
      }
    }
  }
  return true;
}

// Deterministic anchor corpus: one entry per rule-triggering shape and per
// generator clause shape added with the rewrite fuzzer (OPTIONAL MATCH
// updates, multi-key MERGE property maps, FOREACH-nested MERGE), so the
// per-rule self-check cannot go flaky when the random generators drift.
const struct AnchorCase {
  const char* kind;
  const char* query;
} kAnchorCorpus[] = {
    {"anchor-read",
     "MATCH (a:A {k: 1})-[r:R]->(b) WHERE b.w = 2 AND a.w = 0 "
     "RETURN a.id AS a, b.id AS b"},
    {"anchor-read",
     "MATCH (a:A), (b:B) WHERE a.id < b.id AND a.k = b.k "
     "RETURN count(*) AS c"},
    {"anchor-read",
     "MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->(b:B) "
     "RETURN a.id AS a, r.c AS c, b.id AS b"},
    {"anchor-update", "MATCH (a {id: 1}), (b {id: 2}) CREATE (a)-[:R {c: 3}]->(b)"},
    {"anchor-update", "OPTIONAL MATCH (n {id: 3}) SET n.tag = 7"},
    {"anchor-update", "OPTIONAL MATCH (n:New {id: 1999}) DETACH DELETE n"},
    {"anchor-update", "MERGE SAME (m:M {mid: 2, grp: 1})"},
    {"anchor-update", "MERGE ALL (:C {v: 1, grp: 0})"},
    {"anchor-update", "FOREACH (x IN range(0, 2) | MERGE SAME (:F2 {fx: x}))"},
    {"anchor-update", "MATCH ()-[r:S {c: 3}]->() DELETE r"},
};

TEST(RewriteFuzz, EquivalenceOracle) {
  const size_t reads = EnvCount("CYPHER_FUZZ_READ_CASES", 16);
  const size_t updates = EnvCount("CYPHER_FUZZ_UPDATE_CASES", 14);
  std::map<std::string, size_t> fired;
  size_t corpus = 0;
  bool keep_going = true;
  for (uint64_t gs = 0; gs < kGraphSeeds && keep_going; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    for (uint64_t qs = 0; qs < reads && keep_going; ++qs, ++corpus) {
      const uint64_t seed = gs * 1000 + qs;
      keep_going =
          RunOracle(base, "read", gs, seed, GenerateReadQuery(seed), &fired);
    }
    // The same workload mix the WAL crash sweep replays; the oracle checks
    // each statement independently against the un-aged base graph.
    const std::vector<std::string> workload =
        GenerateUpdateWorkload(gs + 100, updates);
    for (uint64_t qs = 0; qs < workload.size() && keep_going;
         ++qs, ++corpus) {
      keep_going = RunOracle(base, "update", gs, (gs + 100) * 977 + qs,
                             workload[qs], &fired);
    }
  }

  // Anchors run against a fresh graph and against one where the anchors
  // already applied once — so the MERGE rewrites exercise both their
  // match branch and their create branch deterministically.
  const PropertyGraph fresh = MakeGraph(0);
  GraphDatabase aged_db;
  aged_db.graph() = fresh;
  for (const AnchorCase& anchor : kAnchorCorpus) {
    if (std::string(anchor.kind) == "anchor-update") {
      ASSERT_TRUE(aged_db.Run(anchor.query).ok()) << anchor.query;
    }
  }
  const PropertyGraph aged = aged_db.graph();
  for (const AnchorCase& anchor : kAnchorCorpus) {
    if (!keep_going) break;
    ++corpus;
    keep_going = RunOracle(fresh, anchor.kind, 0, 0, anchor.query, &fired) &&
                 RunOracle(aged, anchor.kind, 0, 1, anchor.query, &fired);
  }

  EXPECT_GE(corpus, 200u)
      << "rewrite-fuzz corpus shrank to " << corpus
      << " seeds; the equivalence oracle needs breadth to mean anything";
  // Self-check: a rule whose applicability condition rots into never
  // matching is indistinguishable from a passing rule without this.
  for (const std::string& rule : RewriteRuleNames()) {
    EXPECT_GT(fired[rule], 0u)
        << "rewrite rule '" << rule << "' never fired over " << corpus
        << " corpus statements";
  }
}

// ---------------------------------------------------------------------------
// Execution-tier differential: interpreter vs VM, cold vs warm plan cache
// ---------------------------------------------------------------------------

/// One statement on a copy of `base` with the plan cache on or off;
/// returns the canonical bag artifact (including the post-statement graph,
/// so rollback-on-error parity is covered too).
std::string RunTierArtifact(const PropertyGraph& base, const std::string& query,
                            const ValueMap& params, SemanticsMode semantics,
                            bool use_plan_cache) {
  GraphDatabase db;
  db.graph() = base;
  db.options().semantics = semantics;
  db.options().use_plan_cache = use_plan_cache;
  auto result = db.Execute(query, params);
  return BagArtifact(db, result);
}

/// Same, against a long-lived database whose plan cache has been aging
/// across many prior statements: the statement is primed once (mutations
/// rewound by restoring `base`), then re-run — the second run is a raw
/// cache hit, and earlier same-shaped statements make shape hits with
/// literal replay happen naturally across the sweep.
std::string RunWarmArtifact(GraphDatabase* db, const PropertyGraph& base,
                            const std::string& query, const ValueMap& params,
                            SemanticsMode semantics) {
  db->options().semantics = semantics;
  db->options().use_plan_cache = true;
  db->graph() = base;
  auto primed = db->Execute(query, params);
  (void)primed;
  db->graph() = base;
  auto result = db->Execute(query, params);
  return BagArtifact(*db, result);
}

/// Every generated statement must produce a byte-identical artifact across
/// the three execution regimes: the tree interpreter (use_plan_cache off),
/// a cold VM compile (fresh cache), and a warm VM run (raw hit in a cache
/// aged across the whole sweep). This is the gate for the plan-cache PR:
/// caching may never change results, stats, error text, or the graph.
TEST(PlanCacheDifferential, InterpreterVsColdVsWarmByteIdentical) {
  const size_t graphs = EnvCount("CYPHER_FUZZ_GRAPHS", 4);
  for (uint64_t gs = 0; gs < graphs; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    // Note: graph() assignment replaces the member wholesale but keeps the
    // plan cache; the stamp mechanism must notice the swap by statistics.
    GraphDatabase warm_db;
    for (uint64_t qs = 0; qs < kQueriesPerGraph; ++qs) {
      const uint64_t seed = gs * 1000 + qs;
      for (SemanticsMode semantics :
           {SemanticsMode::kRevised, SemanticsMode::kLegacy}) {
        for (const std::string& query :
             {GenerateReadQuery(seed), GenerateUpdateQuery(seed)}) {
          const std::string expected =
              RunTierArtifact(base, query, {}, semantics, false);
          const std::string cold =
              RunTierArtifact(base, query, {}, semantics, true);
          if (cold != expected) {
            const std::string repro = ReproLine("tier-cold", gs, qs, "", semantics,
                                                0, 256, query);
            LogRepro(repro);
            FAIL() << repro << "\n" << FirstDivergence(expected, cold);
          }
          const std::string warm =
              RunWarmArtifact(&warm_db, base, query, {}, semantics);
          if (warm != expected) {
            const std::string repro = ReproLine("tier-warm", gs, qs, "", semantics,
                                                0, 256, query);
            LogRepro(repro);
            FAIL() << repro << "\n" << FirstDivergence(expected, warm);
          }
        }
      }
    }
  }
}

/// The `$pN`-parametrized form of every generated statement must behave
/// exactly like its inline-literal sibling — interpreted, cold, and warm.
/// This exercises user parameters flowing through auto-parametrization,
/// cache keying, and match-plan compilation without value baking.
TEST(PlanCacheDifferential, ParametrizedMatchesInline) {
  const size_t graphs = EnvCount("CYPHER_FUZZ_GRAPHS", 4);
  for (uint64_t gs = 0; gs < graphs; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    GraphDatabase warm_db;
    for (uint64_t qs = 0; qs < kQueriesPerGraph; ++qs) {
      const uint64_t seed = gs * 1000 + qs;
      const GeneratedQuery cases[] = {GenerateReadQueryWithParams(seed),
                                      GenerateUpdateQueryWithParams(seed)};
      const std::string inline_cases[] = {GenerateReadQuery(seed),
                                          GenerateUpdateQuery(seed)};
      for (size_t c = 0; c < 2; ++c) {
        const std::string expected = RunTierArtifact(
            base, inline_cases[c], {}, SemanticsMode::kRevised, false);
        const std::string interp =
            RunTierArtifact(base, cases[c].text, cases[c].params,
                            SemanticsMode::kRevised, false);
        const std::string cold =
            RunTierArtifact(base, cases[c].text, cases[c].params,
                            SemanticsMode::kRevised, true);
        const std::string warm =
            RunWarmArtifact(&warm_db, base, cases[c].text, cases[c].params,
                            SemanticsMode::kRevised);
        const struct {
          const char* kind;
          const std::string& got;
        } runs[] = {{"param-interp", interp},
                    {"param-cold", cold},
                    {"param-warm", warm}};
        for (const auto& run : runs) {
          if (run.got != expected) {
            const std::string repro =
                ReproLine(run.kind, gs, qs, "", SemanticsMode::kRevised, 0, 256,
                          cases[c].text);
            LogRepro(repro);
            FAIL() << repro << "\n"
                   << "inline: " << inline_cases[c] << "\n"
                   << FirstDivergence(expected, run.got);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace cypher::testing
