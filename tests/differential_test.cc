// Serial-vs-parallel differential harness.
//
// The parallel executor promises byte-identical rendered tables regardless
// of worker count or morsel size. This suite checks that promise against a
// fuzzer: seeded random graphs (query_gen.cc) crossed with seeded random
// read-only queries, each run sequentially and under several parallel
// configurations including the expand mode (var-length / shortestPath
// frontier fan-out). A second test cross-checks legacy vs revised
// semantics on the same corpus — read-only evaluation must not depend on
// the update-semantics mode.
//
// A query that fails (e.g. a type error on a generated predicate) must
// fail with the same status in every configuration; RunCase folds the
// status into the compared artifact so error ordering is covered too.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/options.h"
#include "exec/render.h"
#include "query_gen.h"
#include "test_util.h"

namespace cypher::testing {
namespace {

constexpr uint64_t kGraphSeeds = 8;
constexpr uint64_t kQueriesPerGraph = 30;  // 8 * 30 = 240 cases.

struct ParallelKnobs {
  size_t workers;
  size_t morsel;
};

// The sweep deliberately includes workers=1 (parallel plumbing, sequential
// schedule), a single-row morsel, and a high worker count that exceeds the
// row count of most generated intermediates.
const ParallelKnobs kConfigs[] = {{1, 256}, {2, 16}, {8, 1}, {8, 256}};

/// Runs `query` on a copy of `base` and returns the rendered table, or the
/// error status as a string so failures are compared byte-for-byte too.
std::string RunCase(const PropertyGraph& base, const std::string& query,
                    size_t workers, size_t morsel,
                    SemanticsMode semantics = SemanticsMode::kRevised) {
  GraphDatabase db;
  db.graph() = base;
  db.options().semantics = semantics;
  db.options().parallel_workers = workers;
  db.options().parallel_morsel_size = morsel;
  db.options().parallel_min_cost = 1;  // engage on every eligible clause
  auto result = db.Execute(query);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return RenderResult(db.graph(), *result);
}

PropertyGraph MakeGraph(uint64_t seed) {
  GraphDatabase db;
  Status st = BuildRandomGraph(&db, seed);
  EXPECT_TRUE(st.ok()) << "graph seed " << seed << ": " << st.ToString();
  return db.graph();
}

TEST(DifferentialTest, SerialVsParallelByteIdentical) {
  size_t succeeded = 0;
  size_t nonempty = 0;
  for (uint64_t gs = 0; gs < kGraphSeeds; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    for (uint64_t qs = 0; qs < kQueriesPerGraph; ++qs) {
      const uint64_t seed = gs * 1000 + qs;
      const std::string query = GenerateReadQuery(seed);
      const std::string expected = RunCase(base, query, 0, 256);
      if (expected.rfind("ERROR:", 0) != 0) {
        ++succeeded;
        if (expected.find("\n") != expected.rfind("\n")) ++nonempty;
      }
      for (const ParallelKnobs& cfg : kConfigs) {
        EXPECT_EQ(RunCase(base, query, cfg.workers, cfg.morsel), expected)
            << "graph seed " << gs << " query seed " << seed << "\n  "
            << query << "\n  workers=" << cfg.workers
            << " morsel=" << cfg.morsel;
      }
    }
  }
  // The harness is only useful if the generator mostly produces queries
  // that actually execute and return rows; guard against silent decay.
  const size_t total = kGraphSeeds * kQueriesPerGraph;
  EXPECT_GE(succeeded, total * 9 / 10)
      << succeeded << "/" << total << " cases executed without error";
  EXPECT_GE(nonempty, total / 2)
      << nonempty << "/" << total << " cases produced at least one row";
}

TEST(DifferentialTest, LegacyVsRevisedReadOnlyAgree) {
  // Read-only queries must render identically under both update-semantics
  // modes; only write clauses may diverge. Sequential execution isolates
  // the semantics knob from the parallel one.
  for (uint64_t gs = 0; gs < kGraphSeeds; ++gs) {
    const PropertyGraph base = MakeGraph(gs);
    for (uint64_t qs = 0; qs < kQueriesPerGraph; ++qs) {
      const uint64_t seed = gs * 1000 + qs;
      const std::string query = GenerateReadQuery(seed);
      EXPECT_EQ(RunCase(base, query, 0, 256, SemanticsMode::kLegacy),
                RunCase(base, query, 0, 256, SemanticsMode::kRevised))
          << "graph seed " << gs << " query seed " << seed << "\n  " << query;
    }
  }
}

}  // namespace
}  // namespace cypher::testing
