// Legacy MERGE and MERGE ALL / MERGE SAME executor tests (variant engine
// details are in merge_variants_test.cc).

#include <gtest/gtest.h>

#include "test_util.h"
#include "value/compare.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

EvalOptions Legacy() {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  return o;
}

// ---- Legacy MERGE ---------------------------------------------------------------

TEST(LegacyMergeTest, MatchesInsteadOfCreating) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  QueryResult r = RunOk(&db, "MERGE (u:User {id: 1}) RETURN id(u) AS i");
  EXPECT_EQ(r.stats.nodes_created, 0u);
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

TEST(LegacyMergeTest, CreatesWhenMissing) {
  GraphDatabase db(Legacy());
  QueryResult r = RunOk(&db, "MERGE (u:User {id: 1}) RETURN u.id AS i");
  EXPECT_EQ(r.stats.nodes_created, 1u);
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST(LegacyMergeTest, EmitsAllMatches) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:User {id: 1})").ok());
  QueryResult r = RunOk(&db, "MERGE (u:User {id: 1}) RETURN count(u) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
}

TEST(LegacyMergeTest, ReadsOwnWritesAcrossRecords) {
  GraphDatabase db(Legacy());
  // Two identical records: the first creates, the second matches it.
  QueryResult r = RunOk(&db, "UNWIND [1, 1] AS x MERGE (:N {v: x})");
  EXPECT_EQ(r.stats.nodes_created, 1u);
}

TEST(LegacyMergeTest, UndirectedPatternAllowedAndCreatesLeftToRight) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:A {k: 1}), (:B {k: 2})").ok());
  RunOk(&db, "MATCH (a:A), (b:B) MERGE (a)-[:T]-(b)");
  QueryResult r = RunOk(&db, "MATCH (a:A)-[:T]->(b:B) RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
  // Re-merging undirected now matches the existing rel in either direction.
  QueryResult again =
      RunOk(&db, "MATCH (a:A), (b:B) MERGE (b)-[:T]-(a)");
  EXPECT_EQ(again.stats.rels_created, 0u);
}

TEST(LegacyMergeTest, OnCreateAndOnMatchSet) {
  GraphDatabase db(Legacy());
  QueryResult first = RunOk(&db,
                            "MERGE (u:User {id: 1}) "
                            "ON CREATE SET u.created = true, u.n = 1 "
                            "ON MATCH SET u.n = u.n + 1");
  EXPECT_EQ(first.stats.nodes_created, 1u);
  QueryResult second = RunOk(&db,
                             "MERGE (u:User {id: 1}) "
                             "ON CREATE SET u.created = true, u.n = 1 "
                             "ON MATCH SET u.n = u.n + 1");
  EXPECT_EQ(second.stats.nodes_created, 0u);
  QueryResult r = RunOk(&db,
                        "MATCH (u:User {id: 1}) "
                        "RETURN u.created AS c, u.n AS n");
  EXPECT_TRUE(r.rows[0][0].AsBool());
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST(LegacyMergeTest, PartialPatternNotReused) {
  // The classic trap from Section 5: MERGE on a whole pattern creates the
  // WHOLE pattern when any part is missing, duplicating the user node.
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  RunOk(&db, "MERGE (:User {id: 1})-[:ORDERED]->(:Product {id: 9})");
  // The existing user was NOT reused: a duplicate got created.
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (u:User {id: 1}) RETURN count(u) AS c"))
                .AsInt(),
            2);
}

TEST(LegacyMergeTest, BoundVariablesRestrictMatching) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(workload::LoadMarketplace(&db).ok());
  // Query (5) shape: per-product vendor merge with p bound.
  QueryResult r = RunOk(&db,
                        "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) "
                        "RETURN count(v) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 3);
}

// ---- MERGE ALL / MERGE SAME ------------------------------------------------------

TEST(MergeAllTest, NeverReadsOwnWrites) {
  GraphDatabase db;
  // Two identical records: BOTH create under Atomic semantics.
  QueryResult r = RunOk(&db, "UNWIND [1, 1] AS x MERGE ALL (:N {v: x})");
  EXPECT_EQ(r.stats.nodes_created, 2u);
}

TEST(MergeSameTest, CollapsesIdenticalCreations) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "UNWIND [1, 1] AS x MERGE SAME (:N {v: x})");
  EXPECT_EQ(r.stats.nodes_created, 1u);
  // But both records bind the single created node.
  QueryResult bind = RunOk(
      &db, "UNWIND [2, 2] AS x MERGE SAME (n:N {v: x}) RETURN id(n) AS i");
  ASSERT_EQ(bind.rows.size(), 2u);
  EXPECT_TRUE(GroupEquals(bind.rows[0][0], bind.rows[1][0]));
}

TEST(MergeSameTest, ExistingNodesOnlyCollapseWithThemselves) {
  // Definition 1(iii): two pre-existing identical nodes stay distinct.
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1}), (:N {v: 1})").ok());
  QueryResult r = RunOk(&db, "UNWIND [1] AS x MERGE SAME (:N {v: x})");
  EXPECT_EQ(r.stats.nodes_created, 0u);  // matched, not created
  EXPECT_EQ(db.graph().num_nodes(), 2u);
}

TEST(MergeSameTest, MatchedRecordsDoNotCreate) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  QueryResult r = RunOk(&db,
                        "UNWIND [1, 2] AS x MERGE SAME (n:N {v: x}) "
                        "RETURN n.v AS v ORDER BY v");
  EXPECT_EQ(r.stats.nodes_created, 1u);  // only v=2
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

TEST(MergeRevisedTest, MatchPhaseSeesOnlyInputGraph) {
  GraphDatabase db;
  // Record 2's pattern would match record 1's creation, but must not.
  QueryResult r = RunOk(
      &db, "UNWIND [1, 1] AS x MERGE ALL (:A {v: x})-[:T]->(:B {v: x})");
  EXPECT_EQ(r.stats.nodes_created, 4u);
  EXPECT_EQ(r.stats.rels_created, 2u);
}

TEST(MergeRevisedTest, TuplesOfPatterns) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "MERGE ALL (a:A {v: 1}), (b:B {v: 2})");
  EXPECT_EQ(r.stats.nodes_created, 2u);
  // All patterns must match for the record to count as matched.
  QueryResult r2 = RunOk(&db, "MERGE ALL (a:A {v: 1}), (b:B {v: 99})");
  EXPECT_EQ(r2.stats.nodes_created, 2u);  // re-creates both
  EXPECT_EQ(db.graph().num_nodes(), 4u);
}

TEST(MergeRevisedTest, SharedVariableAcrossPatterns) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "MERGE ALL (a:A {v: 1}), (a)-[:T]->(b:B)");
  EXPECT_EQ(r.stats.nodes_created, 2u);
  EXPECT_EQ(r.stats.rels_created, 1u);
  QueryResult check =
      RunOk(&db, "MATCH (a:A)-[:T]->(b:B) RETURN count(*) AS c");
  EXPECT_EQ(Scalar(check).AsInt(), 1);
}

TEST(MergeRevisedTest, RejectsUndirectedAndOnClauses) {
  GraphDatabase db;
  EXPECT_EQ(RunErr(&db, "MERGE ALL (a)-[:T]-(b)").code(),
            StatusCode::kSemanticError);
  EXPECT_EQ(RunErr(&db, "MERGE ALL (u:U {id: 1}) ON CREATE SET u.x = 1")
                .code(),
            StatusCode::kSyntaxError);  // ON only parses after legacy MERGE
}

TEST(MergeRevisedTest, MergeOverNullBoundVariableErrors) {
  GraphDatabase db;
  Status st = RunErr(&db, "OPTIONAL MATCH (m:Missing) MERGE ALL (m)-[:T]->(:X)");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_EQ(db.graph().num_nodes(), 0u);  // rolled back
}

TEST(MergeRevisedTest, PathVariableFromMergedPattern) {
  GraphDatabase db;
  QueryResult r = RunOk(
      &db, "MERGE ALL p = (:A)-[:T]->(:B) RETURN length(p) AS len");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST(MergeRevisedTest, WorksInLegacySessionToo) {
  // MERGE ALL / SAME are new clauses; they run identically regardless of
  // the session's semantics mode.
  GraphDatabase db(Legacy());
  QueryResult r = RunOk(&db, "UNWIND [1, 1] AS x MERGE SAME (:N {v: x})");
  EXPECT_EQ(r.stats.nodes_created, 1u);
}

TEST(MergeRevisedTest, HomomorphismModeAffectsMatchPhase) {
  // The paper (Section 6): under homomorphism matching, Strong Collapse
  // outputs stay re-matchable, so a MERGE of the collapsed pattern finds a
  // match and creates nothing; under trail matching it must create.
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (a:P {k: 1}), (b:P {k: 2}), "
                     "(a)-[:TO]->(b), (b)-[:TO]->(a)").ok());
  const char* merge =
      "MATCH (a:P {k: 1}), (b:P {k: 2}) "
      "MERGE ALL (a)-[:TO]->(b)-[:TO]->(a)-[:TO]->(b)";
  {
    GraphDatabase trail_db;
    ASSERT_TRUE(trail_db.Run("CREATE (a:P {k: 1}), (b:P {k: 2}), "
                             "(a)-[:TO]->(b), (b)-[:TO]->(a)").ok());
    auto r = trail_db.Execute(merge);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Trail matching cannot reuse the a->b edge twice: pattern fails,
    // MERGE creates all three relationships.
    EXPECT_EQ(r->stats.rels_created, 3u);
  }
  {
    EvalOptions homo;
    homo.match_mode = MatchMode::kHomomorphism;
    auto r = db.Execute(merge, {}, homo);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->stats.rels_created, 0u);  // matched via edge reuse
  }
}

TEST(MergeRevisedTest, PropertyFiltersWithParameters) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 7})").ok());
  QueryResult r = RunOk(&db, "MERGE ALL (u:User {id: $id}) RETURN id(u) AS i",
                        {{"id", Value::Int(7)}});
  EXPECT_EQ(r.stats.nodes_created, 0u);
  ASSERT_EQ(r.rows.size(), 1u);
}

}  // namespace
}  // namespace cypher
