// Rule-driven equivalence-preserving rewrites over parsed statements.
//
// Every rule takes a SingleQuery in place and reports whether it changed
// anything; GenerateRewrites clones the parsed seed once per rule (plus
// once for the chained composition) and prints the result back to Cypher
// text with ToCypher, so each variant also exercises the parser round
// trip. The per-rule equivalence arguments live in DESIGN.md ("Rewrite-
// equivalence fuzzing"); the gating here is deliberately conservative —
// a rule that cannot *prove* its applicability condition simply does not
// fire, and the fuzzer's self-check catches rules that stop firing
// entirely.

#include "rewriter.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "ast/printer.h"
#include "ast/query.h"
#include "parser/parser.h"

namespace cypher::testing {
namespace {

// ---------------------------------------------------------------------------
// Small AST helpers
// ---------------------------------------------------------------------------

/// Applies `fn` to every direct child expression of `e`.
void ForEachChild(const Expr& e, const std::function<void(const Expr&)>& fn) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
    case ExprKind::kVariable:
    case ExprKind::kCountStar:
      return;
    case ExprKind::kProperty:
      fn(*static_cast<const PropertyExpr&>(e).object);
      return;
    case ExprKind::kHasLabels:
      fn(*static_cast<const HasLabelsExpr&>(e).object);
      return;
    case ExprKind::kUnary:
      fn(*static_cast<const UnaryExpr&>(e).operand);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      fn(*b.left);
      fn(*b.right);
      return;
    }
    case ExprKind::kIsNull:
      fn(*static_cast<const IsNullExpr&>(e).operand);
      return;
    case ExprKind::kList:
      for (const auto& item : static_cast<const ListExpr&>(e).items) fn(*item);
      return;
    case ExprKind::kMap:
      for (const auto& [key, value] : static_cast<const MapExpr&>(e).entries) {
        fn(*value);
      }
      return;
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      fn(*i.object);
      fn(*i.index);
      return;
    }
    case ExprKind::kFunction:
      for (const auto& arg : static_cast<const FunctionExpr&>(e).args) fn(*arg);
      return;
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      for (const auto& [cond, value] : c.whens) {
        fn(*cond);
        fn(*value);
      }
      if (c.otherwise) fn(*c.otherwise);
      return;
    }
    case ExprKind::kListComprehension: {
      const auto& c = static_cast<const ListComprehensionExpr&>(e);
      fn(*c.list);
      if (c.where) fn(*c.where);
      if (c.projection) fn(*c.projection);
      return;
    }
    case ExprKind::kQuantifier: {
      const auto& q = static_cast<const QuantifierExpr&>(e);
      fn(*q.list);
      fn(*q.predicate);
      return;
    }
    case ExprKind::kReduce: {
      const auto& r = static_cast<const ReduceExpr&>(e);
      fn(*r.init);
      fn(*r.list);
      fn(*r.body);
      return;
    }
    case ExprKind::kPatternPredicate: {
      const auto& p = static_cast<const PatternPredicateExpr&>(e).pattern;
      for (const auto& [key, value] : p.start.properties) fn(*value);
      for (const auto& [rel, node] : p.steps) {
        for (const auto& [key, value] : rel.properties) fn(*value);
        for (const auto& [key, value] : node.properties) fn(*value);
      }
      return;
    }
    case ExprKind::kMapProjection: {
      const auto& m = static_cast<const MapProjectionExpr&>(e);
      fn(*m.subject);
      for (const MapProjectionItem& item : m.items) {
        if (item.value) fn(*item.value);
      }
      return;
    }
  }
}

bool ContainsCollect(const Expr& e) {
  if (e.kind == ExprKind::kFunction &&
      static_cast<const FunctionExpr&>(e).name == "collect") {
    return true;
  }
  bool found = false;
  ForEachChild(e, [&found](const Expr& child) {
    if (!found) found = ContainsCollect(child);
  });
  return found;
}

/// Constant expressions: evaluate to the same value on every row of every
/// graph. `range` is the one pure function the workload generators emit.
bool IsConstExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kUnary:
      return IsConstExpr(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kList: {
      for (const auto& item : static_cast<const ListExpr&>(e).items) {
        if (!IsConstExpr(*item)) return false;
      }
      return true;
    }
    case ExprKind::kMap: {
      for (const auto& [key, value] : static_cast<const MapExpr&>(e).entries) {
        if (!IsConstExpr(*value)) return false;
      }
      return true;
    }
    case ExprKind::kFunction: {
      const auto& f = static_cast<const FunctionExpr&>(e);
      if (f.name != "range") return false;
      for (const auto& arg : f.args) {
        if (!IsConstExpr(*arg)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

/// Flattens a left/right nested AND tree into its conjunct list (moving
/// ownership out of `e`).
void FlattenAnd(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary &&
      static_cast<BinaryExpr&>(*e).op == BinaryOp::kAnd) {
    auto& b = static_cast<BinaryExpr&>(*e);
    FlattenAnd(std::move(b.left), out);
    FlattenAnd(std::move(b.right), out);
    return;
  }
  out->push_back(std::move(e));
}

/// Left-folds conjuncts back into an AND tree; nullptr for an empty list.
ExprPtr FoldAnd(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (ExprPtr& c : conjuncts) {
    if (!c) continue;
    out = out ? std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(out),
                                             std::move(c))
              : std::move(c);
  }
  return out;
}

RelDirection Flip(RelDirection d) {
  switch (d) {
    case RelDirection::kLeftToRight:
      return RelDirection::kRightToLeft;
    case RelDirection::kRightToLeft:
      return RelDirection::kLeftToRight;
    case RelDirection::kUndirected:
      return RelDirection::kUndirected;
  }
  return d;
}

/// The variables in scope after executing `clauses[0..upto)`. WITH/RETURN
/// without `*` restrict the scope to their aliases; CALL bodies are treated
/// as defining nothing (under-claiming only disables rules, never breaks
/// them).
std::set<std::string> ScopeAfter(const std::vector<ClausePtr>& clauses,
                                 size_t upto) {
  std::set<std::string> scope;
  for (size_t i = 0; i < upto && i < clauses.size(); ++i) {
    const Clause& c = *clauses[i];
    switch (c.kind) {
      case ClauseKind::kMatch:
        for (const auto& p : static_cast<const MatchClause&>(c).patterns) {
          for (const std::string& v : PatternVariables(p)) scope.insert(v);
        }
        break;
      case ClauseKind::kCreate:
        for (const auto& p : static_cast<const CreateClause&>(c).patterns) {
          for (const std::string& v : PatternVariables(p)) scope.insert(v);
        }
        break;
      case ClauseKind::kMerge:
        for (const auto& p : static_cast<const MergeClause&>(c).patterns) {
          for (const std::string& v : PatternVariables(p)) scope.insert(v);
        }
        break;
      case ClauseKind::kUnwind:
        scope.insert(static_cast<const UnwindClause&>(c).variable);
        break;
      case ClauseKind::kWith: {
        const auto& body = static_cast<const WithClause&>(c).body;
        std::set<std::string> next;
        if (body.include_existing) next = scope;
        for (const ReturnItem& item : body.items) next.insert(item.alias);
        scope = std::move(next);
        break;
      }
      case ClauseKind::kReturn: {
        const auto& body = static_cast<const ReturnClause&>(c).body;
        std::set<std::string> next;
        if (body.include_existing) next = scope;
        for (const ReturnItem& item : body.items) next.insert(item.alias);
        scope = std::move(next);
        break;
      }
      default:
        break;
    }
  }
  return scope;
}

// ---------------------------------------------------------------------------
// Applicability analysis
// ---------------------------------------------------------------------------

struct QueryInfo {
  /// False when row order is observable: collect() in a projection, or
  /// SKIP/LIMIT (which select rows BY position). Order-perturbing rules
  /// require this.
  bool order_insensitive_output = true;
  /// True when every update clause provably produces the same final graph
  /// (including entity-id assignment) for any driving-row order.
  bool perturbable_updates = true;
  bool has_update = false;
  /// Fresh `_rw<n>` variables may be introduced: the text does not already
  /// use the prefix and no projection re-exports the whole scope via `*`
  /// (which would leak the new binding into the observable output).
  bool allow_synth = true;

  bool allow_perturbing() const {
    return order_insensitive_output && (!has_update || perturbable_updates);
  }
};

bool SetItemsRowLocal(const std::vector<SetItem>& items,
                      const std::string& foreach_var) {
  for (const SetItem& item : items) {
    if (item.kind == SetItemKind::kSetLabels) continue;
    if (!item.value) return false;
    if (IsConstExpr(*item.value)) continue;
    // A reference to the FOREACH loop variable is row-local too: every
    // driving row replays the identical write sequence, so any entity
    // reached from several rows still ends at the same final value.
    if (!foreach_var.empty() && item.value->kind == ExprKind::kVariable &&
        static_cast<const VariableExpr&>(*item.value).name == foreach_var) {
      continue;
    }
    return false;
  }
  return true;
}

/// True when re-ordering the driving rows of this update clause cannot
/// change the final graph. CREATE and MERGE allocate entity ids per row,
/// so they only qualify in single-clause statements (unit driving table),
/// which Analyze handles separately.
bool UpdateClauseOrderInsensitive(const Clause& c) {
  switch (c.kind) {
    case ClauseKind::kSet:
      return SetItemsRowLocal(static_cast<const SetClause&>(c).items, "");
    case ClauseKind::kRemove:
    case ClauseKind::kDelete:
      return true;
    case ClauseKind::kForeach: {
      const auto& f = static_cast<const ForeachClause&>(c);
      if (!IsConstExpr(*f.list)) return false;
      for (const ClausePtr& inner : f.body) {
        switch (inner->kind) {
          case ClauseKind::kSet:
            if (!SetItemsRowLocal(static_cast<const SetClause&>(*inner).items,
                                  f.variable)) {
              return false;
            }
            break;
          case ClauseKind::kRemove:
          case ClauseKind::kDelete:
            break;
          default:
            return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

QueryInfo Analyze(const SingleQuery& q, const std::string& text) {
  QueryInfo info;
  if (text.find("_rw") != std::string::npos) info.allow_synth = false;
  for (const ClausePtr& clause : q.clauses) {
    const ProjectionBody* body = nullptr;
    if (clause->kind == ClauseKind::kWith) {
      body = &static_cast<const WithClause&>(*clause).body;
    } else if (clause->kind == ClauseKind::kReturn) {
      body = &static_cast<const ReturnClause&>(*clause).body;
    }
    if (body) {
      if (body->skip || body->limit) info.order_insensitive_output = false;
      if (body->include_existing) info.allow_synth = false;
      for (const ReturnItem& item : body->items) {
        if (ContainsCollect(*item.expr)) info.order_insensitive_output = false;
      }
    }
    if (IsUpdateClause(*clause)) {
      info.has_update = true;
      if (!UpdateClauseOrderInsensitive(*clause)) {
        info.perturbable_updates = false;
      }
    }
  }
  // A single-clause statement runs its update on the unit driving table;
  // there is no row order to perturb, so even CREATE/MERGE qualify.
  if (q.clauses.size() == 1) info.perturbable_updates = true;
  return info;
}

struct RuleCtx {
  const QueryInfo* info;
  int next_fresh = 0;

  std::string Fresh() { return "_rw" + std::to_string(next_fresh++); }
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

// reverse-match-pattern: (a)-[r]->(b) and (b)<-[r]-(a) denote the same
// relation; reversing the syntactic chain (and flipping every arrow)
// preserves the match set exactly, only the enumeration order can move.
// Named paths are excluded (nodes(p)/relationships(p) observe orientation)
// as are shortestPath/allShortestPaths wrappers.
bool ReversePath(PathPattern* p) {
  if (p->function != PathFunction::kNone || !p->path_variable.empty()) {
    return false;
  }
  if (p->steps.empty()) return false;
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
  nodes.push_back(std::move(p->start));
  for (auto& [rel, node] : p->steps) {
    rels.push_back(std::move(rel));
    nodes.push_back(std::move(node));
  }
  p->start = std::move(nodes.back());
  p->steps.clear();
  for (size_t i = rels.size(); i-- > 0;) {
    RelPattern rel = std::move(rels[i]);
    rel.direction = Flip(rel.direction);
    p->steps.emplace_back(std::move(rel), std::move(nodes[i]));
  }
  return true;
}

bool ReverseMatchPattern(SingleQuery* q, RuleCtx*) {
  bool changed = false;
  for (ClausePtr& clause : q->clauses) {
    if (clause->kind != ClauseKind::kMatch) continue;
    for (PathPattern& p : static_cast<MatchClause&>(*clause).patterns) {
      changed |= ReversePath(&p);
    }
  }
  return changed;
}

// reverse-create-pattern: a created relationship's endpoints are fixed by
// the pattern, not by its notation, so CREATE (a)-[:R]->(b) and
// CREATE (b)<-[:R]-(a) build the same edge. Restricted to single-step
// patterns whose BOTH endpoints are already bound (only the relationship
// is created, so no node-id assignment order can change).
bool ReverseCreatePattern(SingleQuery* q, RuleCtx*) {
  bool changed = false;
  for (size_t i = 0; i < q->clauses.size(); ++i) {
    if (q->clauses[i]->kind != ClauseKind::kCreate) continue;
    std::set<std::string> bound = ScopeAfter(q->clauses, i);
    for (PathPattern& p : static_cast<CreateClause&>(*q->clauses[i]).patterns) {
      if (p.steps.size() != 1) continue;
      const std::string& a = p.start.variable;
      const std::string& b = p.steps[0].second.variable;
      if (a.empty() || b.empty() || !bound.count(a) || !bound.count(b)) {
        continue;
      }
      changed |= ReversePath(&p);
    }
  }
  return changed;
}

// conjunct-rotate: the comma-separated patterns of one MATCH form a
// conjunction (a product restricted by relationship uniqueness across the
// WHOLE clause); conjunction is commutative, and rotating keeps all
// conjuncts in the same clause so the uniqueness constraint set is
// unchanged. Only enumeration order moves.
bool ConjunctRotate(SingleQuery* q, RuleCtx*) {
  bool changed = false;
  for (ClausePtr& clause : q->clauses) {
    if (clause->kind != ClauseKind::kMatch) continue;
    auto& m = static_cast<MatchClause&>(*clause);
    if (m.patterns.size() < 2) continue;
    std::rotate(m.patterns.begin(), m.patterns.begin() + 1, m.patterns.end());
    changed = true;
  }
  return changed;
}

// match-split: MATCH p1, p2 WHERE w  ==  MATCH p1 MATCH p2 WHERE w when
// every conjunct is a single node (relationship uniqueness is vacuous
// without relationships, so splitting the clause cannot admit new
// matches). The WHERE stays on the last clause, where the full scope is
// visible. OPTIONAL MATCH is excluded: splitting would change its
// all-or-nothing null padding.
bool MatchSplit(SingleQuery* q, RuleCtx*) {
  for (size_t i = 0; i < q->clauses.size(); ++i) {
    if (q->clauses[i]->kind != ClauseKind::kMatch) continue;
    auto& m = static_cast<MatchClause&>(*q->clauses[i]);
    if (m.optional || m.patterns.size() < 2) continue;
    bool nodes_only = true;
    for (const PathPattern& p : m.patterns) {
      if (!p.steps.empty() || p.function != PathFunction::kNone ||
          !p.path_variable.empty()) {
        nodes_only = false;
        break;
      }
    }
    if (!nodes_only) continue;
    std::vector<ClausePtr> pieces;
    for (size_t k = 0; k < m.patterns.size(); ++k) {
      auto piece = std::make_unique<MatchClause>();
      piece->patterns.push_back(std::move(m.patterns[k]));
      if (k + 1 == m.patterns.size()) piece->where = std::move(m.where);
      pieces.push_back(std::move(piece));
    }
    q->clauses.erase(q->clauses.begin() + static_cast<ptrdiff_t>(i));
    q->clauses.insert(q->clauses.begin() + static_cast<ptrdiff_t>(i),
                      std::make_move_iterator(pieces.begin()),
                      std::make_move_iterator(pieces.end()));
    return true;
  }
  return false;
}

// map-to-where: a property map on a MATCH element is sugar for equality
// conjuncts — {k: e} filters exactly the entities whose property k exists
// and equals e, which is the ternary-logic value of `v.k = e` (a missing
// property makes the comparison null, so the row is dropped either way).
// Anonymous elements get a fresh `_rw<n>` name first: naming an element
// never changes the match set, and the gate guarantees the new binding is
// not observable. Var-length relationships are excluded (their map filters
// every hop; no single conjunct over the bound list expresses that).
bool MapToWhere(SingleQuery* q, RuleCtx* ctx) {
  bool changed = false;
  for (ClausePtr& clause : q->clauses) {
    if (clause->kind != ClauseKind::kMatch) continue;
    auto& m = static_cast<MatchClause&>(*clause);
    std::vector<ExprPtr> conjuncts;
    auto migrate = [&](std::string* variable,
                       std::vector<std::pair<std::string, ExprPtr>>* props) {
      if (props->empty()) return;
      if (variable->empty()) {
        if (!ctx->info->allow_synth) return;
        *variable = ctx->Fresh();
      }
      for (auto& [key, value] : *props) {
        conjuncts.push_back(std::make_unique<BinaryExpr>(
            BinaryOp::kEq,
            std::make_unique<PropertyExpr>(
                std::make_unique<VariableExpr>(*variable), key),
            std::move(value)));
      }
      props->clear();
    };
    for (PathPattern& p : m.patterns) {
      if (p.function != PathFunction::kNone) continue;
      migrate(&p.start.variable, &p.start.properties);
      for (auto& [rel, node] : p.steps) {
        if (!rel.var_length) migrate(&rel.variable, &rel.properties);
        migrate(&node.variable, &node.properties);
      }
    }
    if (conjuncts.empty()) continue;
    std::vector<ExprPtr> all;
    if (m.where) FlattenAnd(std::move(m.where), &all);
    for (ExprPtr& c : conjuncts) all.push_back(std::move(c));
    m.where = FoldAnd(std::move(all));
    changed = true;
  }
  return changed;
}

// where-to-map: the inverse — a top-level AND-conjunct of the shape
// `v.key = <literal>` (either operand order) moves into the property map
// of v's first occurrence in the same clause, if v names a node or a
// fixed-length relationship there and the map has no entry for key yet.
bool WhereToMap(SingleQuery* q, RuleCtx*) {
  bool changed = false;
  for (ClausePtr& clause : q->clauses) {
    if (clause->kind != ClauseKind::kMatch) continue;
    auto& m = static_cast<MatchClause&>(*clause);
    if (!m.where) continue;
    // First syntactic occurrence of each migratable element.
    struct Element {
      std::vector<std::pair<std::string, ExprPtr>>* props;
    };
    std::vector<std::pair<std::string, Element>> elements;
    auto add = [&elements](const std::string& var,
                           std::vector<std::pair<std::string, ExprPtr>>* p) {
      if (var.empty()) return;
      for (const auto& [name, el] : elements) {
        if (name == var) return;
      }
      elements.push_back({var, Element{p}});
    };
    for (PathPattern& p : m.patterns) {
      if (p.function != PathFunction::kNone) continue;
      add(p.start.variable, &p.start.properties);
      for (auto& [rel, node] : p.steps) {
        if (!rel.var_length) add(rel.variable, &rel.properties);
        add(node.variable, &node.properties);
      }
    }
    if (elements.empty()) continue;
    std::vector<ExprPtr> conjuncts;
    FlattenAnd(std::move(m.where), &conjuncts);
    std::vector<ExprPtr> rest;
    for (ExprPtr& c : conjuncts) {
      bool moved = false;
      if (c->kind == ExprKind::kBinary) {
        auto& b = static_cast<BinaryExpr&>(*c);
        Expr* prop = nullptr;
        Expr* lit = nullptr;
        if (b.op == BinaryOp::kEq) {
          if (b.left->kind == ExprKind::kProperty &&
              b.right->kind == ExprKind::kLiteral) {
            prop = b.left.get();
            lit = b.right.get();
          } else if (b.right->kind == ExprKind::kProperty &&
                     b.left->kind == ExprKind::kLiteral) {
            prop = b.right.get();
            lit = b.left.get();
          }
        }
        if (prop != nullptr) {
          auto& pe = static_cast<PropertyExpr&>(*prop);
          if (pe.object->kind == ExprKind::kVariable) {
            const std::string& var =
                static_cast<VariableExpr&>(*pe.object).name;
            for (auto& [name, el] : elements) {
              if (name != var) continue;
              bool has_key = false;
              for (const auto& [key, value] : *el.props) {
                if (key == pe.key) has_key = true;
              }
              if (!has_key) {
                el.props->emplace_back(pe.key, CloneExpr(*lit));
                moved = true;
                changed = true;
              }
              break;
            }
          }
        }
      }
      if (!moved) rest.push_back(std::move(c));
    }
    m.where = FoldAnd(std::move(rest));
  }
  return changed;
}

// where-to-with-where: MATCH ps WHERE w <rest> == MATCH ps WITH * WHERE w
// <rest> for non-optional MATCH — the WHERE of a plain MATCH is a pure
// post-filter (it cannot aggregate), and WITH * passes every binding
// through unchanged, in order. OPTIONAL MATCH is excluded: its WHERE
// participates in the match-or-null decision BEFORE padding.
bool WhereToWithWhere(SingleQuery* q, RuleCtx*) {
  for (size_t i = 0; i < q->clauses.size(); ++i) {
    if (q->clauses[i]->kind != ClauseKind::kMatch) continue;
    auto& m = static_cast<MatchClause&>(*q->clauses[i]);
    if (m.optional || !m.where) continue;
    if (i + 1 >= q->clauses.size()) continue;  // keep statements well-ended
    auto with = std::make_unique<WithClause>();
    with->body.include_existing = true;
    with->where = std::move(m.where);
    q->clauses.insert(q->clauses.begin() + static_cast<ptrdiff_t>(i) + 1,
                      std::move(with));
    return true;
  }
  return false;
}

// with-star-insert: WITH * (no DISTINCT/ORDER/SKIP/LIMIT/WHERE) projects
// every binding through unchanged — a no-op barrier, inserted before the
// final clause. Requires a non-empty scope so the projection is legal.
bool WithStarInsert(SingleQuery* q, RuleCtx*) {
  if (q->clauses.size() < 2) return false;
  size_t pos = q->clauses.size() - 1;
  if (ScopeAfter(q->clauses, pos).empty()) return false;
  auto with = std::make_unique<WithClause>();
  with->body.include_existing = true;
  q->clauses.insert(q->clauses.begin() + static_cast<ptrdiff_t>(pos),
                    std::move(with));
  return true;
}

// bool-commute: AND/OR/XOR are commutative in Cypher's ternary logic and
// filter evaluation is side-effect-free, so swapping operands everywhere
// in a WHERE tree leaves every row's filter verdict unchanged. (Both
// operands of a generated predicate are error-free by construction; a
// dialect with short-circuit error semantics would need a purity check.)
void FlipCommutative(Expr* e, bool* changed) {
  if (e->kind == ExprKind::kBinary) {
    auto& b = static_cast<BinaryExpr&>(*e);
    if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr ||
        b.op == BinaryOp::kXor) {
      std::swap(b.left, b.right);
      *changed = true;
    }
    FlipCommutative(b.left.get(), changed);
    FlipCommutative(b.right.get(), changed);
    return;
  }
  if (e->kind == ExprKind::kUnary) {
    FlipCommutative(static_cast<UnaryExpr&>(*e).operand.get(), changed);
  }
  if (e->kind == ExprKind::kIsNull) {
    FlipCommutative(static_cast<IsNullExpr&>(*e).operand.get(), changed);
  }
}

bool BoolCommute(SingleQuery* q, RuleCtx*) {
  bool changed = false;
  for (ClausePtr& clause : q->clauses) {
    ExprPtr* where = nullptr;
    if (clause->kind == ClauseKind::kMatch) {
      where = &static_cast<MatchClause&>(*clause).where;
    } else if (clause->kind == ClauseKind::kWith) {
      where = &static_cast<WithClause&>(*clause).where;
    }
    if (where && *where) FlipCommutative(where->get(), &changed);
  }
  return changed;
}

// merge-conditional-create (revised semantics only): for a standalone
// single-node constant-property MERGE ALL / MERGE SAME,
//
//   MERGE ALL (m:L {props})
//   ==  OPTIONAL MATCH (m:L {props}) WITH * WHERE m IS NULL
//       CREATE (:L {props})
//
// Under the revised semantics (paper Sections 7-8) the merge matches
// against the INPUT graph; on the unit driving table it either binds the
// existing matches and creates nothing, or creates exactly one instance
// (Atomic plans one per failed record = one; Strong Collapse collapses
// equal instances to one). The rewrite reproduces both branches: the
// OPTIONAL MATCH either yields the matches (all filtered out by
// `m IS NULL`, creating nothing) or one null row (creating one instance).
// Legacy MERGE reads its own writes record-at-a-time, so the rule is
// gated to revised runs.
bool MergeConditionalCreate(SingleQuery* q, RuleCtx* ctx) {
  if (q->clauses.size() != 1 || q->clauses[0]->kind != ClauseKind::kMerge) {
    return false;
  }
  auto& merge = static_cast<MergeClause&>(*q->clauses[0]);
  if (merge.form == MergeForm::kLegacy) return false;
  if (!merge.on_create.empty() || !merge.on_match.empty()) return false;
  if (merge.patterns.size() != 1) return false;
  PathPattern& p = merge.patterns[0];
  if (!p.steps.empty() || p.function != PathFunction::kNone ||
      !p.path_variable.empty()) {
    return false;
  }
  for (const auto& [key, value] : p.start.properties) {
    if (!IsConstExpr(*value)) return false;
  }
  std::string var = p.start.variable;
  if (var.empty()) {
    if (!ctx->info->allow_synth) return false;
    var = ctx->Fresh();
  }

  auto probe = std::make_unique<MatchClause>();
  probe->optional = true;
  PathPattern probe_pattern;
  probe_pattern.start.variable = var;
  probe_pattern.start.labels = p.start.labels;
  for (const auto& [key, value] : p.start.properties) {
    probe_pattern.start.properties.emplace_back(key, CloneExpr(*value));
  }
  probe->patterns.push_back(std::move(probe_pattern));

  auto guard = std::make_unique<WithClause>();
  guard->body.include_existing = true;
  guard->where = std::make_unique<IsNullExpr>(
      std::make_unique<VariableExpr>(var), /*neg=*/false);

  auto create = std::make_unique<CreateClause>();
  PathPattern instance;
  instance.start.labels = p.start.labels;
  for (auto& [key, value] : p.start.properties) {
    instance.start.properties.emplace_back(key, std::move(value));
  }
  create->patterns.push_back(std::move(instance));

  q->clauses.clear();
  q->clauses.push_back(std::move(probe));
  q->clauses.push_back(std::move(guard));
  q->clauses.push_back(std::move(create));
  return true;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct RuleDef {
  const char* name;
  bool (*fn)(SingleQuery*, RuleCtx*);
  bool perturbs_order;  // gated on QueryInfo::allow_perturbing()
  bool revised_only;
  bool chainable;  // participates in the chained composition variant
};

// Declaration order is chain-application order. where-to-map is excluded
// from the chain (it would undo map-to-where), as is the whole-statement
// MERGE rewrite.
const RuleDef kRules[] = {
    {"conjunct-rotate", ConjunctRotate, true, false, true},
    {"match-split", MatchSplit, true, false, true},
    {"reverse-match-pattern", ReverseMatchPattern, true, false, true},
    {"reverse-create-pattern", ReverseCreatePattern, false, false, true},
    {"map-to-where", MapToWhere, true, false, true},
    {"where-to-map", WhereToMap, true, false, false},
    {"where-to-with-where", WhereToWithWhere, false, false, true},
    {"with-star-insert", WithStarInsert, false, false, true},
    {"bool-commute", BoolCommute, false, false, true},
    {"merge-conditional-create", MergeConditionalCreate, false, true, false},
};

}  // namespace

const std::vector<std::string>& RewriteRuleNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const RuleDef& rule : kRules) v->push_back(rule.name);
    return v;
  }();
  return *names;
}

std::vector<RewriteVariant> GenerateRewrites(const std::string& query_text) {
  auto parsed = ParseQuery(query_text);
  if (!parsed.ok()) return {};
  const Query& query = *parsed;
  if (query.mode != QueryMode::kNormal || query.parts.size() != 1) return {};
  const QueryInfo info = Analyze(query.parts[0], query_text);

  std::vector<RewriteVariant> out;
  for (const RuleDef& rule : kRules) {
    if (rule.perturbs_order && !info.allow_perturbing()) continue;
    Query copy = CloneQuery(query);
    RuleCtx ctx{&info};
    if (rule.fn(&copy.parts[0], &ctx)) {
      out.push_back({rule.name, ToCypher(copy), rule.revised_only});
    }
  }

  Query chained = CloneQuery(query);
  RuleCtx ctx{&info};
  std::string fired;
  size_t fired_count = 0;
  for (const RuleDef& rule : kRules) {
    if (!rule.chainable) continue;
    if (rule.perturbs_order && !info.allow_perturbing()) continue;
    if (rule.fn(&chained.parts[0], &ctx)) {
      if (!fired.empty()) fired += "+";
      fired += rule.name;
      ++fired_count;
    }
  }
  if (fired_count >= 2) {
    out.push_back({"chain(" + fired + ")", ToCypher(chained), false});
  }
  return out;
}

}  // namespace cypher::testing
