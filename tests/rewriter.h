#ifndef CYPHER_TESTS_REWRITER_H_
#define CYPHER_TESTS_REWRITER_H_

#include <string>
#include <vector>

namespace cypher::testing {

/// One equivalence-preserving rewrite of a statement.
///
/// `rule` names the rule that produced the variant (or "chain(a+b+...)" for
/// the all-applicable-rules composition); `query` is the rewritten text,
/// produced by printing the rewritten AST with ToCypher so it also
/// exercises the parser round trip. `revised_only` marks variants whose
/// equivalence argument leans on the revised update semantics (currently
/// the MERGE -> MATCH + conditional CREATE rewrite, paper Sections 7-8);
/// they must not be compared against the original under legacy semantics.
struct RewriteVariant {
  std::string rule;
  std::string query;
  bool revised_only = false;
};

/// The stable list of rule names. The fuzzer's self-check asserts every
/// name fires at least once over the corpus, so a rule whose applicability
/// condition silently rots (never matching anything) fails the suite.
const std::vector<std::string>& RewriteRuleNames();

/// Generates every applicable single-rule variant of `query_text` plus one
/// chained variant, each equivalent to the original under BAG semantics:
/// the same multiset of result rows (order may differ) and the same final
/// graph. Rules that can perturb row order are only offered when the
/// statement's observable behaviour is provably row-order-insensitive
/// (no collect()/SKIP/LIMIT in projections; update clauses restricted to
/// shapes whose final graph does not depend on driving-row order).
/// Returns an empty vector when the text does not parse, is a UNION or
/// EXPLAIN/PROFILE statement, or no rule applies.
std::vector<RewriteVariant> GenerateRewrites(const std::string& query_text);

}  // namespace cypher::testing

#endif  // CYPHER_TESTS_REWRITER_H_
