// Rendering tests: RenderValue / RenderResult edge cases.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;

class RenderTest : public ::testing::Test {
 protected:
  GraphDatabase db_;
};

TEST_F(RenderTest, NodeWithLabelsAndProps) {
  ASSERT_TRUE(db_.Run("CREATE (:User:Admin {id: 1, name: 'a'})").ok());
  QueryResult r = RunOk(&db_, "MATCH (n) RETURN n");
  // Labels render in interning (first-seen) order: User before Admin here.
  EXPECT_EQ(RenderValue(db_.graph(), r.rows[0][0]),
            "(:User:Admin {id: 1, name: 'a'})");
}

TEST_F(RenderTest, BareNode) {
  ASSERT_TRUE(db_.Run("CREATE ()").ok());
  QueryResult r = RunOk(&db_, "MATCH (n) RETURN n");
  EXPECT_EQ(RenderValue(db_.graph(), r.rows[0][0]), "()");
}

TEST_F(RenderTest, RelationshipWithProps) {
  ASSERT_TRUE(db_.Run("CREATE (:A)-[:T {w: 2.5}]->(:B)").ok());
  QueryResult r = RunOk(&db_, "MATCH ()-[t]->() RETURN t");
  EXPECT_EQ(RenderValue(db_.graph(), r.rows[0][0]), "[:T {w: 2.5}]");
}

TEST_F(RenderTest, PathArrowsFollowTraversalDirection) {
  ASSERT_TRUE(db_.Run("CREATE (:A {k: 1})-[:T]->(:B {k: 2})").ok());
  QueryResult fwd = RunOk(&db_, "MATCH p = (:A)-[:T]->(:B) RETURN p");
  EXPECT_EQ(RenderValue(db_.graph(), fwd.rows[0][0]),
            "(:A {k: 1})-[:T]->(:B {k: 2})");
  QueryResult rev = RunOk(&db_, "MATCH p = (:B)<-[:T]-(:A) RETURN p");
  EXPECT_EQ(RenderValue(db_.graph(), rev.rows[0][0]),
            "(:B {k: 2})<-[:T]-(:A {k: 1})");
}

TEST_F(RenderTest, ListsAndMapsOfEntities) {
  ASSERT_TRUE(db_.Run("CREATE (:N {v: 1}), (:N {v: 2})").ok());
  QueryResult r = RunOk(&db_,
                        "MATCH (n:N) WITH n ORDER BY n.v "
                        "RETURN collect(n) AS ns");
  EXPECT_EQ(RenderValue(db_.graph(), r.rows[0][0]),
            "[(:N {v: 1}), (:N {v: 2})]");
}

TEST_F(RenderTest, ScalarsPassThrough) {
  const PropertyGraph& g = db_.graph();
  EXPECT_EQ(RenderValue(g, Value::Null()), "null");
  EXPECT_EQ(RenderValue(g, Value::Int(-3)), "-3");
  EXPECT_EQ(RenderValue(g, Value::Float(1.5)), "1.5");
  EXPECT_EQ(RenderValue(g, Value::String("x")), "'x'");
  EXPECT_EQ(RenderValue(g, Value::Bool(true)), "true");
}

TEST_F(RenderTest, TableAlignmentAndRowCount) {
  ASSERT_TRUE(db_.Run("CREATE (:N {v: 1}), (:N {v: 22})").ok());
  QueryResult r = RunOk(&db_, "MATCH (n:N) RETURN n.v AS v ORDER BY v");
  std::string text = RenderResult(db_.graph(), r);
  EXPECT_NE(text.find("| v "), std::string::npos);
  EXPECT_NE(text.find("2 rows"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("+--"), std::string::npos);
}

TEST_F(RenderTest, EmptyResultStillShowsHeader) {
  QueryResult r = RunOk(&db_, "MATCH (n:Missing) RETURN n.v AS v");
  std::string text = RenderResult(db_.graph(), r);
  EXPECT_NE(text.find("| v |"), std::string::npos);
  EXPECT_NE(text.find("0 rows"), std::string::npos);
}

TEST_F(RenderTest, UpdateOnlyShowsStatsOnly) {
  QueryResult r = RunOk(&db_, "CREATE (:N)");
  std::string text = RenderResult(db_.graph(), r);
  EXPECT_EQ(text, "1 nodes created\n");
}

TEST_F(RenderTest, ZombieNodeRendersEmpty) {
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  GraphDatabase db(legacy);
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  QueryResult r = RunOk(&db, "MATCH (n:User) DELETE n RETURN n");
  EXPECT_EQ(RenderValue(db.graph(), r.rows[0][0]), "()");
}

}  // namespace
}  // namespace cypher
