// Crash-recovery harness for the write-ahead log: framing unit tests, a
// byte-granular kill-replay-verify sweep over randomized update workloads,
// fault-injected writers (torn and clean failures at byte and call budgets),
// checkpointing, group commit under concurrent sessions, and the Posix
// round trip. The invariant under test everywhere: recovery yields exactly
// the graph produced by the committed prefix of statements — never a
// half-applied statement, never a lost committed one.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query_gen.h"
#include "storage/log_file.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"

namespace cypher {
namespace {

using storage::DecodeWal;
using storage::EncodeWalRecord;
using storage::FaultyLogFile;
using storage::MemoryLogFile;
using storage::RecoverGraph;
using storage::WalRecordType;
using testing::BuildRandomGraph;
using testing::GenerateUpdateWorkload;

constexpr int kWorkloadStatements = 24;

std::string Magic() {
  return std::string(storage::kWalMagic, storage::kWalMagicSize);
}

// ---- Framing --------------------------------------------------------------

TEST(WalFormat, EncodeDecodeRoundTrip) {
  std::string log = Magic();
  log += EncodeWalRecord(WalRecordType::kSnapshot, "snapshot-payload");
  log += EncodeWalRecord(WalRecordType::kStatement, "");
  log += EncodeWalRecord(WalRecordType::kStatement, std::string(5000, 'x'));
  auto decoded = DecodeWal(log);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->records.size(), 3u);
  EXPECT_EQ(decoded->records[0].type, WalRecordType::kSnapshot);
  EXPECT_EQ(decoded->records[0].payload, "snapshot-payload");
  EXPECT_EQ(decoded->records[1].payload, "");
  EXPECT_EQ(decoded->records[2].payload, std::string(5000, 'x'));
  EXPECT_EQ(decoded->valid_bytes, log.size());
  EXPECT_FALSE(decoded->torn_tail);
}

TEST(WalFormat, BadMagicIsAnError) {
  EXPECT_FALSE(DecodeWal("").ok());
  EXPECT_FALSE(DecodeWal("CYWAL").ok());          // short
  EXPECT_FALSE(DecodeWal("NOTAWAL0rest").ok());   // wrong
}

TEST(WalFormat, EveryTruncationIsATornTailNotAnError) {
  std::string log = Magic();
  log += EncodeWalRecord(WalRecordType::kSnapshot, "first");
  uint64_t first_end = log.size();
  log += EncodeWalRecord(WalRecordType::kStatement, "second-payload");
  // Chop the second record at every byte past the clean boundary: always
  // torn, never an error, and the valid prefix ends at the first record.
  for (size_t cut = first_end + 1; cut < log.size(); ++cut) {
    auto decoded = DecodeWal(std::string_view(log).substr(0, cut));
    ASSERT_TRUE(decoded.ok()) << "cut=" << cut;
    ASSERT_EQ(decoded->records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(decoded->valid_bytes, first_end) << "cut=" << cut;
    EXPECT_TRUE(decoded->torn_tail) << "cut=" << cut;
  }
}

TEST(WalFormat, CorruptByteStopsTheScan) {
  std::string log = Magic();
  log += EncodeWalRecord(WalRecordType::kSnapshot, "first");
  uint64_t first_end = log.size();
  log += EncodeWalRecord(WalRecordType::kStatement, "second-payload");
  log += EncodeWalRecord(WalRecordType::kStatement, "third");
  // Flip one payload byte of the middle record: it and everything after it
  // are dropped; the clean first record survives.
  std::string corrupt = log;
  corrupt[first_end + storage::kWalFrameHeaderSize + 3] ^= 0x40;
  auto decoded = DecodeWal(corrupt);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->records.size(), 1u);
  EXPECT_EQ(decoded->valid_bytes, first_end);
  EXPECT_TRUE(decoded->torn_tail);
}

TEST(WalFormat, UnknownRecordTypeStopsTheScan) {
  std::string log = Magic();
  log += EncodeWalRecord(WalRecordType::kStatement, "good");
  uint64_t good_end = log.size();
  log += EncodeWalRecord(static_cast<WalRecordType>(99), "future");
  auto decoded = DecodeWal(log);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->records.size(), 1u);
  EXPECT_EQ(decoded->valid_bytes, good_end);
  EXPECT_TRUE(decoded->torn_tail);
}

// ---- Workload harness -----------------------------------------------------

// One commit boundary of the reference run: the log length after a
// statement committed and the canonical graph image at that point.
struct Boundary {
  uint64_t bytes;
  std::string dump;
};

struct ReferenceRun {
  std::vector<std::string> statements;
  std::vector<Boundary> boundaries;  // [0] = right after OpenDurable
  std::string log;                   // full fault-free log image
};

// Runs the seeded workload against a fault-free in-memory log, recording the
// log length and graph image at every commit boundary.
ReferenceRun RecordReference(uint64_t seed) {
  ReferenceRun run;
  GraphDatabase db;
  EXPECT_TRUE(BuildRandomGraph(&db, seed).ok());
  auto mem = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = mem.get();
  EXPECT_TRUE(db.OpenDurable(std::move(mem)).ok());
  run.boundaries.push_back({raw->size(), DumpGraphCanonical(db.graph())});
  for (std::string& q : GenerateUpdateWorkload(seed, kWorkloadStatements)) {
    auto result = db.Execute(q);
    EXPECT_TRUE(result.ok()) << q << "\n  -> " << result.status().ToString();
    run.statements.push_back(std::move(q));
    run.boundaries.push_back({raw->size(), DumpGraphCanonical(db.graph())});
  }
  run.log = raw->bytes();
  return run;
}

// ---- Kill-replay-verify ---------------------------------------------------

// The core durability property: for EVERY byte-length prefix of the log
// (every possible crash point from the first commit onward), recovery yields
// exactly the graph of the last committed statement before the cut.
TEST(WalRecovery, EveryBytePrefixRecoversTheCommittedPrefix) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ReferenceRun run = RecordReference(seed);
    size_t b = 0;
    for (uint64_t cut = run.boundaries.front().bytes; cut <= run.log.size();
         ++cut) {
      while (b + 1 < run.boundaries.size() &&
             run.boundaries[b + 1].bytes <= cut) {
        ++b;
      }
      auto recovered = RecoverGraph(std::string_view(run.log).substr(0, cut));
      ASSERT_TRUE(recovered.ok())
          << "seed=" << seed << " cut=" << cut << ": "
          << recovered.status().ToString();
      ASSERT_EQ(recovered->valid_bytes, run.boundaries[b].bytes)
          << "seed=" << seed << " cut=" << cut;
      ASSERT_EQ(DumpGraphCanonical(recovered->graph), run.boundaries[b].dump)
          << "seed=" << seed << " cut=" << cut
          << ": recovered graph is not the committed prefix";
    }
  }
}

// A crash before the initial snapshot finished writing leaves only the
// magic (or less) valid: recovery degrades to an empty graph, never fails.
TEST(WalRecovery, CrashInsideInitialSnapshotRecoversEmpty) {
  ReferenceRun run = RecordReference(4);
  uint64_t magic = storage::kWalMagicSize;
  for (uint64_t cut : {magic, magic + 1, run.boundaries.front().bytes - 1}) {
    auto recovered = RecoverGraph(std::string_view(run.log).substr(0, cut));
    ASSERT_TRUE(recovered.ok()) << "cut=" << cut;
    EXPECT_EQ(recovered->valid_bytes, magic);
    // A cut exactly at the magic is a clean (just-initialized) log; any
    // byte beyond it without a whole record is a torn tail.
    EXPECT_EQ(recovered->torn_tail, cut > magic) << "cut=" << cut;
    EXPECT_EQ(recovered->graph.num_nodes(), 0u);
    EXPECT_EQ(recovered->graph.num_rels(), 0u);
  }
}

// Corrupting any statement record (bit rot rather than a clean tear) must
// truncate recovery to the boundary before it.
TEST(WalRecovery, CorruptStatementRecordTruncatesToPriorBoundary) {
  ReferenceRun run = RecordReference(5);
  for (size_t i = 0; i + 1 < run.boundaries.size(); ++i) {
    uint64_t begin = run.boundaries[i].bytes;
    uint64_t end = run.boundaries[i + 1].bytes;
    if (begin == end) continue;  // no-op statement, no record written
    std::string corrupt = run.log;
    corrupt[begin + storage::kWalFrameHeaderSize] ^= 0x01;
    auto recovered = RecoverGraph(corrupt);
    ASSERT_TRUE(recovered.ok()) << "record " << i;
    EXPECT_EQ(recovered->valid_bytes, begin) << "record " << i;
    EXPECT_TRUE(recovered->torn_tail) << "record " << i;
    EXPECT_EQ(DumpGraphCanonical(recovered->graph), run.boundaries[i].dump)
        << "record " << i;
  }
}

// ---- Fault-injected writers -----------------------------------------------

// Non-owning LogFile view: OpenDurable destroys the file it was handed when
// recovery fails, but the crash tests must autopsy the "disk" afterwards —
// so the disk lives in the test frame and the database gets a borrower.
class BorrowedLogFile : public storage::LogFile {
 public:
  explicit BorrowedLogFile(storage::LogFile* base) : base_(base) {}
  Status Append(const void* data, size_t size) override {
    return base_->Append(data, size);
  }
  Status Sync() override { return base_->Sync(); }
  Status Truncate(uint64_t new_size) override {
    return base_->Truncate(new_size);
  }
  Result<std::string> ReadAll() override { return base_->ReadAll(); }
  uint64_t size() const override { return base_->size(); }

 private:
  storage::LogFile* base_;
};

// Replays the reference workload against a fault-injecting log that dies at
// a byte or call budget, then verifies (a) every statement after the fault
// is refused and rolled back, and (b) recovery from the surviving bytes
// equals the last successfully committed statement's graph.
void RunFaultedWorkload(const ReferenceRun& run, uint64_t seed,
                        FaultyLogFile* faulty) {
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, seed).ok());
  Status open = db.OpenDurable(std::make_unique<BorrowedLogFile>(faulty));
  size_t committed = 0;
  if (open.ok()) {
    for (const std::string& q : run.statements) {
      auto result = db.Execute(q);
      if (result.ok()) {
        ++committed;
        continue;
      }
      // Every log-fault failure surfaces as kAborted and is sticky: the
      // very next statement must be refused without touching the graph.
      ASSERT_EQ(result.status().code(), StatusCode::kAborted)
          << result.status().ToString();
      EXPECT_FALSE(db.wal_error().ok());
      break;
    }
    // Rollback check: the live graph is exactly the committed prefix.
    EXPECT_EQ(DumpGraphCanonical(db.graph()), run.boundaries[committed].dump)
        << "in-memory graph diverged from the committed prefix";
  }
  // Crash now: recover whatever the dying "disk" kept.
  auto survived = faulty->base()->ReadAll();
  ASSERT_TRUE(survived.ok());
  if (survived->size() < storage::kWalMagicSize) return;  // died pre-magic
  auto recovered = RecoverGraph(*survived);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  std::string dump = DumpGraphCanonical(recovered->graph);
  if (open.ok()) {
    EXPECT_EQ(dump, run.boundaries[committed].dump)
        << "recovery after injected fault lost or invented a statement";
  } else {
    // Nothing was ever acknowledged: a clean empty log or the fully
    // written initial snapshot are the only legal survivors.
    EXPECT_TRUE(dump == run.boundaries.front().dump ||
                dump == DumpGraphCanonical(PropertyGraph()))
        << "partial open left a corrupt but decodable log";
  }
}

TEST(WalRecovery, WriterDiesAtByteBudgets) {
  const uint64_t seed = 6;
  ReferenceRun run = RecordReference(seed);
  // Budgets: a prime-stride sweep over the whole log plus every commit
  // boundary and its neighbours (the interesting alignments).
  std::vector<uint64_t> budgets;
  for (uint64_t b = storage::kWalMagicSize; b <= run.log.size() + 8; b += 61) {
    budgets.push_back(b);
  }
  for (const Boundary& boundary : run.boundaries) {
    budgets.push_back(boundary.bytes);
    budgets.push_back(boundary.bytes + 1);
    if (boundary.bytes > 0) budgets.push_back(boundary.bytes - 1);
  }
  for (bool torn : {false, true}) {
    for (uint64_t budget : budgets) {
      MemoryLogFile disk;
      FaultyLogFile faulty(std::make_unique<BorrowedLogFile>(&disk));
      faulty.FailAfterBytes(budget, torn);
      SCOPED_TRACE("budget=" + std::to_string(budget) +
                   (torn ? " torn" : " clean"));
      RunFaultedWorkload(run, seed, &faulty);
    }
  }
}

TEST(WalRecovery, WriterDiesAtCallBudgets) {
  const uint64_t seed = 7;
  ReferenceRun run = RecordReference(seed);
  // Every statement costs a handful of Append/Sync calls; sweeping call
  // budgets one by one hits every interleaving point, including the initial
  // magic/snapshot writes and both halves of each commit's flush+fsync.
  for (uint64_t calls = 1; calls <= 3 * kWorkloadStatements; ++calls) {
    MemoryLogFile disk;
    FaultyLogFile faulty(std::make_unique<BorrowedLogFile>(&disk));
    faulty.FailAfterCalls(calls);
    SCOPED_TRACE("calls=" + std::to_string(calls));
    RunFaultedWorkload(run, seed, &faulty);
  }
}

// ---- Checkpoint -----------------------------------------------------------

TEST(WalRecovery, CheckpointRebasesRecovery) {
  const uint64_t seed = 8;
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, seed).ok());
  auto mem = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = mem.get();
  ASSERT_TRUE(db.OpenDurable(std::move(mem)).ok());
  const std::vector<std::string> workload = GenerateUpdateWorkload(seed, 12);
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.Run(workload[i]).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  size_t after_checkpoint = 0;
  for (size_t i = 8; i < workload.size(); ++i) {
    ASSERT_TRUE(db.Run(workload[i]).ok());
    ++after_checkpoint;
  }
  auto recovered = RecoverGraph(raw->bytes());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(DumpGraphCanonical(recovered->graph),
            DumpGraphCanonical(db.graph()));
  // Replay starts at the checkpoint snapshot: only statements after it are
  // re-applied (some may have been empty-redo no-ops and never logged).
  EXPECT_LE(recovered->statements, after_checkpoint);
}

// ---- Retention pins --------------------------------------------------------

// Rewrite used to assume nobody still reads the old bytes; a replication
// follower's shipper cursor does. A pin below the post-compaction end must
// make Rewrite refuse (without poisoning the writer), and releasing or
// advancing the pin re-enables compaction.
TEST(WalRetention, RewriteRefusesWhilePinnedThenSucceeds) {
  storage::WalWriter writer(std::make_unique<MemoryLogFile>());
  auto append = [&](const std::string& payload) {
    auto lsn = writer.Append(WalRecordType::kStatement, payload);
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(writer.Sync(*lsn).ok());
  };
  append("first");
  uint64_t pin = writer.RegisterRetentionPin(writer.appended_lsn());
  append("second");  // the pinned reader has not fetched this yet

  uint64_t bytes_before = writer.LogBytes();
  Status refused = writer.Rewrite(WalRecordType::kSnapshot, "snap");
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.ToString().find("retention pin"), std::string::npos)
      << refused.ToString();
  // Refusal is not an I/O failure: nothing dropped, writer not poisoned.
  EXPECT_EQ(writer.LogBytes(), bytes_before);
  EXPECT_TRUE(writer.error().ok());
  append("third");  // still healthy

  // The pinned reader can still fetch everything from its pin on.
  uint64_t min_pin = writer.MinRetentionPin();
  uint64_t end = 0;
  auto bytes = writer.ReadDurableFrom(min_pin, &end);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(end, writer.durable_lsn());
  auto records = storage::DecodeWalSegment(*bytes);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].payload, "second");
  EXPECT_EQ((*records)[1].payload, "third");

  // Caught up: the pin sits at the end, compaction may proceed.
  writer.AdvanceRetentionPin(pin, writer.appended_lsn());
  ASSERT_TRUE(writer.Rewrite(WalRecordType::kSnapshot, "snap").ok());
  EXPECT_LT(writer.LogBytes(), bytes_before);

  // Reads below the new compaction base are refused, never garbage.
  uint64_t stale = 0;
  EXPECT_FALSE(writer.ReadDurableFrom(min_pin, &stale).ok());

  writer.ReleaseRetentionPin(pin);
  EXPECT_EQ(writer.MinRetentionPin(), UINT64_MAX);
}

// base_lsn names the smallest LSN the log can still serve (compaction base
// plus magic). A follower whose resume position sits below it predates
// retention — the reconnect protocol must re-bootstrap it, never hand out
// bytes the log no longer has.
TEST(WalRetention, BaseLsnAdvancesWithCompaction) {
  storage::WalWriter writer(std::make_unique<MemoryLogFile>());
  EXPECT_EQ(writer.base_lsn(), storage::kWalMagicSize)
      << "a fresh log serves from just past the magic";
  EXPECT_EQ(writer.min_resume_lsn(), storage::kWalMagicSize)
      << "a never-compacted log lets a tail resume anywhere";

  auto append = [&](const std::string& payload) {
    auto lsn = writer.Append(WalRecordType::kStatement, payload);
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(writer.Sync(*lsn).ok());
  };
  append("one");
  uint64_t old_position = writer.base_lsn();  // a resume point, pre-compaction
  append("two");

  uint64_t rewrite_point = writer.appended_lsn();
  ASSERT_TRUE(writer.Rewrite(WalRecordType::kSnapshot, "snap").ok());
  EXPECT_GT(writer.base_lsn(), old_position)
      << "compaction did not advance the servable base";
  // The resume floor jumps all the way to the rewrite point: everything
  // below was folded into one snapshot record, so no lower LSN is a record
  // boundary any more — not even those above base_lsn().
  EXPECT_EQ(writer.min_resume_lsn(), rewrite_point);
  EXPECT_GT(writer.min_resume_lsn(), writer.base_lsn());

  // Below the base: refused, never garbage. At the base: the whole
  // remaining log, starting with the compaction snapshot.
  uint64_t end = 0;
  EXPECT_FALSE(writer.ReadDurableFrom(old_position, &end).ok());
  append("three");
  auto bytes = writer.ReadDurableFrom(writer.base_lsn(), &end);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(end, writer.durable_lsn());
  auto records = storage::DecodeWalSegment(*bytes);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].type, WalRecordType::kSnapshot);
  EXPECT_EQ((*records)[1].payload, "three");
}

// ---- Open-time behaviour --------------------------------------------------

TEST(WalRecovery, OpenTruncatesTornTailAndKeepsAppending) {
  const uint64_t seed = 9;
  ReferenceRun run = RecordReference(seed);
  // A crashed writer left half a record behind.
  auto mem = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = mem.get();
  ASSERT_TRUE(mem->Append(run.log.data(), run.log.size()).ok());
  std::string garbage = "\xff\x13half-a-record";
  ASSERT_TRUE(mem->Append(garbage.data(), garbage.size()).ok());

  GraphDatabase db;
  ASSERT_TRUE(db.OpenDurable(std::move(mem)).ok());
  EXPECT_EQ(DumpGraphCanonical(db.graph()), run.boundaries.back().dump);
  EXPECT_EQ(raw->size(), run.log.size());  // torn tail gone

  // New commits append onto the clean prefix and recover fine.
  ASSERT_TRUE(db.Run("CREATE (:AfterCrash {id: 4242})").ok());
  auto recovered = RecoverGraph(raw->bytes());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(DumpGraphCanonical(recovered->graph),
            DumpGraphCanonical(db.graph()));
}

TEST(WalRecovery, ReadOnlyStatementsAreNotLogged) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  auto mem = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = mem.get();
  ASSERT_TRUE(db.OpenDurable(std::move(mem)).ok());
  uint64_t before = raw->size();
  ASSERT_TRUE(db.Run("MATCH (n:N) RETURN n.v").ok());
  EXPECT_EQ(raw->size(), before);
  // So is an update statement that matched nothing.
  ASSERT_TRUE(db.Run("MATCH (n:Absent) SET n.v = 2").ok());
  EXPECT_EQ(raw->size(), before);
}

TEST(WalRecovery, SecondOpenDurableIsRefused) {
  GraphDatabase db;
  ASSERT_TRUE(db.OpenDurable(std::make_unique<MemoryLogFile>()).ok());
  EXPECT_TRUE(db.durable());
  Status st = db.OpenDurable(std::make_unique<MemoryLogFile>());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// A failed (rolled-back) statement must not leave a record behind: the
// next crash would otherwise replay an update that never committed.
TEST(WalRecovery, RolledBackStatementIsNotLogged) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  auto mem = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = mem.get();
  ASSERT_TRUE(db.OpenDurable(std::move(mem)).ok());
  uint64_t before = raw->size();
  std::string dump = DumpGraphCanonical(db.graph());
  // CREATE succeeds, then the projection divides by zero: full rollback.
  EXPECT_FALSE(db.Run("CREATE (:Ghost) WITH 1 AS one RETURN 1 / 0").ok());
  EXPECT_EQ(raw->size(), before);
  EXPECT_EQ(DumpGraphCanonical(db.graph()), dump);
  auto recovered = RecoverGraph(raw->bytes());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(DumpGraphCanonical(recovered->graph), dump);
}

// ---- Group commit ---------------------------------------------------------

TEST(WalRecovery, GroupCommitConcurrentSessions) {
  GraphDatabase db;
  auto mem = std::make_unique<MemoryLogFile>();
  MemoryLogFile* raw = mem.get();
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kGroupCommit;
  ASSERT_TRUE(db.OpenDurable(std::move(mem), durability).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &failures, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        Status st = db.Run("CREATE (:T {tid: " + std::to_string(t) +
                           ", i: " + std::to_string(i) + "})");
        if (!st.ok()) {
          failures[t] = st;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const Status& st : failures) ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(db.graph().num_nodes(),
            static_cast<size_t>(kThreads * kPerThread));
  // Everything returned from Execute was acknowledged durable: the synced
  // prefix alone must reproduce the full graph.
  ASSERT_EQ(raw->synced_size(), raw->size());
  auto recovered = RecoverGraph(raw->bytes());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(DumpGraphCanonical(recovered->graph),
            DumpGraphCanonical(db.graph()));
}

// Group commit's honest failure mode: the statement applied in memory but
// its fsync failed, so Execute reports kAborted, the writer is poisoned,
// and a crash loses exactly the unacknowledged suffix.
TEST(WalRecovery, GroupCommitSyncFailurePoisonsTheLog) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:Base {v: 1})").ok());
  auto base = std::make_unique<MemoryLogFile>();
  MemoryLogFile* disk = base.get();
  auto faulty = std::make_unique<FaultyLogFile>(std::move(base));
  FaultyLogFile* raw = faulty.get();
  DurabilityOptions durability;
  durability.sync_mode = DurabilityOptions::SyncMode::kGroupCommit;
  // OpenDurable spends 3 calls (magic, snapshot, sync); the statement's
  // flush is call 4 (append) and call 5 (fsync) — fail the fsync.
  raw->FailAfterCalls(5);
  ASSERT_TRUE(db.OpenDurable(std::move(faulty), durability).ok());
  std::string committed_dump = DumpGraphCanonical(db.graph());

  auto result = db.Execute("CREATE (:Lost {v: 2})");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // Applied in memory (the documented group-commit divergence)...
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  // ...but the log is poisoned: no later statement can widen the gap.
  Status next = db.Run("CREATE (:Refused)");
  EXPECT_EQ(next.code(), StatusCode::kAborted);
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  EXPECT_FALSE(db.wal_error().ok());

  // A crash keeps only the synced prefix: exactly the pre-statement state.
  std::string survived = disk->bytes().substr(0, disk->synced_size());
  auto recovered = RecoverGraph(survived);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(DumpGraphCanonical(recovered->graph), committed_dump);
}

// ---- Posix file -----------------------------------------------------------

TEST(WalRecovery, PosixLogRoundTrip) {
  std::string path = ::testing::TempDir() + "/cypher_wal_test.log";
  std::remove(path.c_str());
  std::string dump;
  {
    GraphDatabase db;
    ASSERT_TRUE(BuildRandomGraph(&db, 10).ok());
    auto file = storage::OpenPosixLogFile(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE(db.OpenDurable(std::move(*file)).ok());
    for (const std::string& q : GenerateUpdateWorkload(10, 10)) {
      ASSERT_TRUE(db.Run(q).ok());
    }
    dump = DumpGraphCanonical(db.graph());
  }  // db (and the file handle) gone — the process "crashed"
  GraphDatabase revived;
  auto file = storage::OpenPosixLogFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(revived.OpenDurable(std::move(*file)).ok());
  EXPECT_EQ(DumpGraphCanonical(revived.graph()), dump);
  // And the revived database keeps committing.
  ASSERT_TRUE(revived.Run("CREATE (:Revived {id: 777})").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cypher
