// Executor error corpus: well-parsed statements whose execution must fail
// with the right error class, and must leave the graph untouched.

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "test_util.h"

namespace cypher {
namespace {

struct ErrorCase {
  const char* name;
  const char* setup;
  const char* query;
  StatusCode code;
};

class ExecErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ExecErrorTest, FailsCleanlyAndRollsBack) {
  const ErrorCase& c = GetParam();
  GraphDatabase db;
  if (*c.setup != '\0') {
    auto setup = db.ExecuteScript(c.setup);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  }
  uint64_t before = GraphFingerprint(db.graph());
  auto result = db.Execute(c.query);
  ASSERT_FALSE(result.ok()) << c.name << " unexpectedly succeeded";
  EXPECT_EQ(result.status().code(), c.code)
      << c.name << ": " << result.status().ToString();
  EXPECT_EQ(GraphFingerprint(db.graph()), before)
      << c.name << ": failed statement mutated the graph";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ExecErrorTest,
    ::testing::Values(
        // Type errors in expressions.
        ErrorCase{"add_bool", "", "RETURN true + 1 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"divide_by_zero", "", "RETURN 1 / 0 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"modulo_by_zero", "", "RETURN 1 % 0 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"int_overflow", "",
                  "RETURN 9223372036854775807 + 1 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"not_on_int", "", "RETURN NOT 5 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"and_on_strings", "", "RETURN 'a' AND 'b' AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"property_of_int", "", "RETURN (1).key AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"where_non_boolean", "CREATE (:N)",
                  "MATCH (n:N) WHERE 42 RETURN n",
                  StatusCode::kExecutionError},
        // Undefined variables / misuse.
        ErrorCase{"undefined_variable", "", "RETURN nobody AS x",
                  StatusCode::kSemanticError},
        ErrorCase{"aggregate_in_where", "CREATE (:N)",
                  "MATCH (n:N) WHERE count(n) > 0 RETURN n",
                  StatusCode::kSemanticError},
        ErrorCase{"duplicate_alias", "CREATE (:N {v: 1})",
                  "MATCH (n:N) RETURN n.v AS x, n.v AS x",
                  StatusCode::kSemanticError},
        ErrorCase{"unwind_shadow", "CREATE (:N)",
                  "MATCH (n:N) UNWIND [1] AS n RETURN n",
                  StatusCode::kSemanticError},
        // Update misuse.
        ErrorCase{"set_on_scalar", "", "UNWIND [1] AS x SET x.y = 1",
                  StatusCode::kExecutionError},
        ErrorCase{"delete_scalar", "", "UNWIND [1] AS x DELETE x",
                  StatusCode::kExecutionError},
        ErrorCase{"delete_with_rels", "CREATE (:A)-[:T]->(:B)",
                  "MATCH (a:A) DELETE a", StatusCode::kExecutionError},
        ErrorCase{"create_redeclare", "CREATE (:U)",
                  "MATCH (u:U) CREATE (u:Extra)",
                  StatusCode::kSemanticError},
        ErrorCase{"create_undirected", "", "CREATE (a)-[:T]-(b)",
                  StatusCode::kSemanticError},
        ErrorCase{"create_entity_property", "CREATE (:U)",
                  "MATCH (u:U) CREATE (:N {owner: u})",
                  StatusCode::kExecutionError},
        ErrorCase{"merge_bare_revised", "",
                  "UNWIND [1] AS v MERGE (:N {v: v})",
                  StatusCode::kSemanticError},
        ErrorCase{"merge_all_varlength", "",
                  "MERGE ALL (a)-[:T*2]->(b)", StatusCode::kSemanticError},
        ErrorCase{"set_conflict", "CREATE (:S {v: 1}); CREATE (:S {v: 2}); "
                                  "CREATE (:T)",
                  "MATCH (s:S), (t:T) SET t.x = s.v",
                  StatusCode::kExecutionError},
        // Parameters and functions.
        ErrorCase{"missing_parameter", "", "RETURN $absent AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"unknown_function", "", "RETURN frobnicate(1) AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"bad_arity", "", "RETURN labels() AS x",
                  StatusCode::kExecutionError},
        // FOREACH / subquery.
        ErrorCase{"foreach_non_list", "", "FOREACH (x IN 1 | CREATE (:N))",
                  StatusCode::kExecutionError},
        ErrorCase{"subquery_alias_collision", "CREATE (:N {v: 1})",
                  "MATCH (n:N) CALL { RETURN 2 AS n } RETURN n",
                  StatusCode::kSemanticError},
        // Constraints.
        ErrorCase{"constraint_violation",
                  "CREATE CONSTRAINT ON (n:K) ASSERT n.id IS UNIQUE; "
                  "CREATE (:K {id: 1})",
                  "CREATE (:K {id: 1})", StatusCode::kExecutionError},
        // Homomorphism-mode guard is a matcher-level semantic error.
        ErrorCase{"skip_negative", "CREATE (:N)",
                  "MATCH (n:N) RETURN n SKIP -2",
                  StatusCode::kExecutionError},
        ErrorCase{"limit_non_integer", "CREATE (:N)",
                  "MATCH (n:N) RETURN n LIMIT 1.5",
                  StatusCode::kExecutionError},
        ErrorCase{"union_column_mismatch", "",
                  "RETURN 1 AS a UNION RETURN 2 AS b",
                  StatusCode::kExecutionError}));

}  // namespace
}  // namespace cypher
