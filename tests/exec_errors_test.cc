// Executor error corpus: well-parsed statements whose execution must fail
// with the right error class, and must leave the graph untouched.

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "test_util.h"

namespace cypher {
namespace {

struct ErrorCase {
  const char* name;
  const char* setup;
  const char* query;
  StatusCode code;
};

class ExecErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ExecErrorTest, FailsCleanlyAndRollsBack) {
  const ErrorCase& c = GetParam();
  GraphDatabase db;
  if (*c.setup != '\0') {
    auto setup = db.ExecuteScript(c.setup);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  }
  uint64_t before = GraphFingerprint(db.graph());
  auto result = db.Execute(c.query);
  ASSERT_FALSE(result.ok()) << c.name << " unexpectedly succeeded";
  EXPECT_EQ(result.status().code(), c.code)
      << c.name << ": " << result.status().ToString();
  EXPECT_EQ(GraphFingerprint(db.graph()), before)
      << c.name << ": failed statement mutated the graph";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ExecErrorTest,
    ::testing::Values(
        // Type errors in expressions.
        ErrorCase{"add_bool", "", "RETURN true + 1 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"divide_by_zero", "", "RETURN 1 / 0 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"modulo_by_zero", "", "RETURN 1 % 0 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"int_overflow", "",
                  "RETURN 9223372036854775807 + 1 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"not_on_int", "", "RETURN NOT 5 AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"and_on_strings", "", "RETURN 'a' AND 'b' AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"property_of_int", "", "RETURN (1).key AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"where_non_boolean", "CREATE (:N)",
                  "MATCH (n:N) WHERE 42 RETURN n",
                  StatusCode::kExecutionError},
        // Undefined variables / misuse.
        ErrorCase{"undefined_variable", "", "RETURN nobody AS x",
                  StatusCode::kSemanticError},
        ErrorCase{"aggregate_in_where", "CREATE (:N)",
                  "MATCH (n:N) WHERE count(n) > 0 RETURN n",
                  StatusCode::kSemanticError},
        ErrorCase{"duplicate_alias", "CREATE (:N {v: 1})",
                  "MATCH (n:N) RETURN n.v AS x, n.v AS x",
                  StatusCode::kSemanticError},
        ErrorCase{"unwind_shadow", "CREATE (:N)",
                  "MATCH (n:N) UNWIND [1] AS n RETURN n",
                  StatusCode::kSemanticError},
        // Update misuse.
        ErrorCase{"set_on_scalar", "", "UNWIND [1] AS x SET x.y = 1",
                  StatusCode::kExecutionError},
        ErrorCase{"delete_scalar", "", "UNWIND [1] AS x DELETE x",
                  StatusCode::kExecutionError},
        ErrorCase{"delete_with_rels", "CREATE (:A)-[:T]->(:B)",
                  "MATCH (a:A) DELETE a", StatusCode::kExecutionError},
        ErrorCase{"create_redeclare", "CREATE (:U)",
                  "MATCH (u:U) CREATE (u:Extra)",
                  StatusCode::kSemanticError},
        ErrorCase{"create_undirected", "", "CREATE (a)-[:T]-(b)",
                  StatusCode::kSemanticError},
        ErrorCase{"create_entity_property", "CREATE (:U)",
                  "MATCH (u:U) CREATE (:N {owner: u})",
                  StatusCode::kExecutionError},
        ErrorCase{"merge_bare_revised", "",
                  "UNWIND [1] AS v MERGE (:N {v: v})",
                  StatusCode::kSemanticError},
        ErrorCase{"merge_all_varlength", "",
                  "MERGE ALL (a)-[:T*2]->(b)", StatusCode::kSemanticError},
        ErrorCase{"set_conflict", "CREATE (:S {v: 1}); CREATE (:S {v: 2}); "
                                  "CREATE (:T)",
                  "MATCH (s:S), (t:T) SET t.x = s.v",
                  StatusCode::kExecutionError},
        // Parameters and functions.
        ErrorCase{"missing_parameter", "", "RETURN $absent AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"unknown_function", "", "RETURN frobnicate(1) AS x",
                  StatusCode::kExecutionError},
        ErrorCase{"bad_arity", "", "RETURN labels() AS x",
                  StatusCode::kExecutionError},
        // FOREACH / subquery.
        ErrorCase{"foreach_non_list", "", "FOREACH (x IN 1 | CREATE (:N))",
                  StatusCode::kExecutionError},
        ErrorCase{"subquery_alias_collision", "CREATE (:N {v: 1})",
                  "MATCH (n:N) CALL { RETURN 2 AS n } RETURN n",
                  StatusCode::kSemanticError},
        // Constraints.
        ErrorCase{"constraint_violation",
                  "CREATE CONSTRAINT ON (n:K) ASSERT n.id IS UNIQUE; "
                  "CREATE (:K {id: 1})",
                  "CREATE (:K {id: 1})", StatusCode::kExecutionError},
        // Homomorphism-mode guard is a matcher-level semantic error.
        ErrorCase{"skip_negative", "CREATE (:N)",
                  "MATCH (n:N) RETURN n SKIP -2",
                  StatusCode::kExecutionError},
        ErrorCase{"limit_non_integer", "CREATE (:N)",
                  "MATCH (n:N) RETURN n LIMIT 1.5",
                  StatusCode::kExecutionError},
        ErrorCase{"union_column_mismatch", "",
                  "RETURN 1 AS a UNION RETURN 2 AS b",
                  StatusCode::kExecutionError}));

// ---- Rollback sweep -------------------------------------------------------
//
// Statements that perform real mutations before failing partway: the
// write-ahead property says the graph must come back BYTE-identical (same
// slots, same dump), not merely isomorphic, in both the legacy and the
// revised semantics. This is the same journal the WAL's commit hook relies
// on, so any leak here is a durability bug too.

struct RollbackCase {
  const char* name;
  const char* setup;
  const char* query;
};

class RollbackSweepTest : public ::testing::TestWithParam<RollbackCase> {};

TEST_P(RollbackSweepTest, FailureRestoresTheExactGraph) {
  const RollbackCase& c = GetParam();
  for (SemanticsMode mode : {SemanticsMode::kRevised, SemanticsMode::kLegacy}) {
    GraphDatabase db;
    db.options().semantics = mode;
    auto setup = db.ExecuteScript(c.setup);
    ASSERT_TRUE(setup.ok()) << c.name << ": " << setup.status().ToString();
    std::string before = DumpGraph(db.graph());
    auto result = db.Execute(c.query);
    ASSERT_FALSE(result.ok())
        << c.name << " unexpectedly succeeded ("
        << (mode == SemanticsMode::kLegacy ? "legacy" : "revised") << ")";
    EXPECT_EQ(DumpGraph(db.graph()), before)
        << c.name << " ("
        << (mode == SemanticsMode::kLegacy ? "legacy" : "revised")
        << "): failed statement left the graph changed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, RollbackSweepTest,
    ::testing::Values(
        // SET applied to some rows, then a later clause fails.
        RollbackCase{"set_then_error",
                     "CREATE (:S {v: 1}), (:S {v: 2}), (:S {v: 3})",
                     "MATCH (n:S) SET n.x = 99 WITH n RETURN 1 / 0"},
        RollbackCase{"set_map_then_error", "CREATE (:S {v: 1})",
                     "MATCH (n:S) SET n = {fresh: true} WITH n "
                     "RETURN n.fresh + 1"},
        RollbackCase{"set_label_then_error", "CREATE (:S {v: 1})",
                     "MATCH (n:S) SET n:Extra:Hot WITH n RETURN 1 % 0"},
        // REMOVE applied, then failure.
        RollbackCase{"remove_then_error",
                     "CREATE (:S {v: 1, w: 2}), (:S {v: 2, w: 3})",
                     "MATCH (n:S) REMOVE n.w WITH n RETURN 1 / 0"},
        RollbackCase{"remove_label_then_error", "CREATE (:S:Hot {v: 1})",
                     "MATCH (n:S) REMOVE n:Hot WITH n RETURN 1 / 0"},
        // DELETE applied, then failure: tombstoned slots must come back.
        RollbackCase{"delete_rel_then_error",
                     "CREATE (:A {v: 1})-[:T {c: 7}]->(:B {v: 2})",
                     "MATCH ()-[r:T]->() DELETE r WITH 1 AS one "
                     "RETURN 1 / 0"},
        RollbackCase{"detach_delete_then_error",
                     "CREATE (:A {v: 1})-[:T]->(:B {v: 2})",
                     "MATCH (a:A) DETACH DELETE a WITH 1 AS one "
                     "RETURN 1 / 0"},
        // CREATE applied, then failure (fresh slots must be reclaimed).
        RollbackCase{"create_then_error", "CREATE (:S {v: 1})",
                     "MATCH (n:S) CREATE (:Fresh {src: n.v}) "
                     "WITH n RETURN 1 / 0"},
        RollbackCase{"create_rel_then_error",
                     "CREATE (:A {v: 1}), (:B {v: 2})",
                     "MATCH (a:A), (b:B) CREATE (a)-[:NEW]->(b) "
                     "WITH a RETURN 1 / 0"},
        // MERGE created its pattern, then the statement fails (SAME / ALL
        // run identically in both semantics; bare MERGE is legacy-only).
        RollbackCase{"merge_then_error", "",
                     "MERGE SAME (m:M {id: 1}) WITH m RETURN 1 / 0"},
        RollbackCase{"merge_rel_then_error",
                     "CREATE (:A {v: 1}), (:B {v: 2})",
                     "MATCH (a:A), (b:B) MERGE ALL (a)-[:L]->(b) "
                     "WITH a RETURN 1 / 0"},
        // FOREACH fails mid-iteration: earlier iterations' writes undone.
        RollbackCase{"foreach_create_mid_error", "CREATE (:S {v: 1})",
                     "FOREACH (x IN [1, 2, 0, 3] | CREATE (:F {inv: 1 / x}))"},
        RollbackCase{"foreach_set_mid_error",
                     "CREATE (:S {v: 1}), (:S {v: 2})",
                     "MATCH (n:S) FOREACH (x IN [5, 0] | "
                     "SET n.w = 10 / x)"},
        RollbackCase{"foreach_delete_mid_error",
                     "CREATE (:A {v: 1})-[:T]->(:B {v: 2}), "
                     "(:A {v: 3})-[:T]->(:B {v: 4})",
                     "MATCH (a:A)-[r:T]->() FOREACH (x IN [1] | DELETE r) "
                     "WITH a RETURN 1 / 0"},
        // Mixed clauses: everything staged before the failure unwinds.
        RollbackCase{"mixed_then_constraint",
                     "CREATE CONSTRAINT ON (n:K) ASSERT n.id IS UNIQUE; "
                     "CREATE (:K {id: 1}), (:S {v: 1})",
                     "MATCH (n:S) SET n.touched = true "
                     "CREATE (:K {id: 1})"}));

}  // namespace
}  // namespace cypher
