#ifndef CYPHER_TESTS_QUERY_GEN_H_
#define CYPHER_TESTS_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cypher/database.h"

namespace cypher::testing {

/// Populates `db` with a small deterministic random graph: nodes labeled
/// :A / :B (a few carry both), integer properties k / w plus a unique id,
/// :R / :S relationships with an integer property c (self-loops and
/// parallel edges included), then deletes a few relationships and nodes so
/// tombstoned slots participate in every scan. The same seed always builds
/// the same graph.
Status BuildRandomGraph(GraphDatabase* db, uint64_t seed);

/// A deterministic random read-only query valid over any BuildRandomGraph
/// graph: fixed-length chains, var-length walks (all directions, hop
/// windows, type alternatives, named paths), shortestPath /
/// allShortestPaths, pattern conjunctions, OPTIONAL MATCH, UNWIND-driven
/// probes, WHERE predicates, and projection / aggregation (count, sum,
/// min, max, collect, avg, DISTINCT, ORDER BY, SKIP / LIMIT).
std::string GenerateReadQuery(uint64_t seed);

/// A deterministic random update statement valid over any BuildRandomGraph
/// graph: node/relationship CREATE, single-property and whole-map SET,
/// label SET, REMOVE, DELETE / DETACH DELETE, standalone MERGE ALL / MERGE
/// SAME (single- and multi-key property maps), OPTIONAL MATCH-driven SET
/// and DETACH DELETE (null targets are skipped), and FOREACH bodies
/// (CREATE, SET, and nested MERGE). Statements may legitimately match
/// nothing (a no-op commit) but never fail; the durability tests rely on
/// every generated statement committing so the crash sweep's
/// committed-prefix accounting stays simple.
std::string GenerateUpdateQuery(uint64_t seed);

/// A generated statement paired with the parameter map its `$pN`
/// references resolve against.
struct GeneratedQuery {
  std::string text;
  ValueMap params;
};

/// GenerateReadQuery with every *value* literal (property filters, WHERE
/// comparands, SKIP/LIMIT counts, probe ids, range bounds) lifted into a
/// `$pN` parameter reference plus a matching entry in `params`. Hop
/// windows (`*1..3`) stay literal — they are pattern syntax, not value
/// expressions. The same seed produces the same query shape as
/// GenerateReadQuery, so the two forms must return identical tables; the
/// differential suite uses that as its parametrized-execution oracle.
GeneratedQuery GenerateReadQueryWithParams(uint64_t seed);

/// GenerateUpdateQuery with value literals lifted to `$pN` parameters,
/// shape-identical to the inline form for the same seed.
GeneratedQuery GenerateUpdateQueryWithParams(uint64_t seed);

/// `count` statements from GenerateUpdateQuery with seeds derived from
/// `seed` — the one randomized update workload shared by the WAL crash
/// sweep and the rewrite-equivalence fuzzer, so both suites age graphs
/// through the same statement mix.
std::vector<std::string> GenerateUpdateWorkload(uint64_t seed, size_t count);

}  // namespace cypher::testing

#endif  // CYPHER_TESTS_QUERY_GEN_H_
