// Robustness smoke-fuzzing: the lexer/parser/engine must return Status on
// arbitrary garbage and token recombinations — never crash, never hang.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "cypher/database.h"
#include "parser/parser.h"

namespace cypher {
namespace {

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  SplitMix64 rng(0xFADE);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.NextBelow(60);
    std::string input;
    for (size_t j = 0; j < len; ++j) {
      input += static_cast<char>(32 + rng.NextBelow(95));  // printable ASCII
    }
    auto q = ParseQuery(input);  // outcome irrelevant; must not crash
    (void)q;
  }
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const std::vector<std::string> tokens = {
      "MATCH",  "RETURN", "CREATE", "MERGE", "ALL",    "SAME",   "SET",
      "DELETE", "DETACH", "WITH",   "WHERE", "UNWIND", "AS",     "(",
      ")",      "[",      "]",      "{",     "}",      ":",      ",",
      "-",      "->",     "<-",     "=",     "+=",     "*",      "..",
      "|",      "n",      "m",      "Label", "TYPE",   "prop",   "1",
      "2.5",    "'s'",    "$p",     "null",  "true",   "count",  "ORDER",
      "BY",     "LIMIT",  "SKIP",   "FOREACH", "IN",   "ON",     "INDEX",
      "CONSTRAINT", "ASSERT", "UNIQUE", "UNION", "EXPLAIN", "PROFILE"};
  SplitMix64 rng(0xBEEF);
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    size_t n = 1 + rng.NextBelow(25);
    for (size_t j = 0; j < n; ++j) {
      input += tokens[rng.NextBelow(tokens.size())];
      input += ' ';
    }
    auto q = ParseQuery(input);
    (void)q;
  }
}

TEST(EngineFuzzTest, ParsedSoupExecutesOrErrorsCleanly) {
  // Whatever parses must also execute without crashing (on a small graph),
  // and failures must leave the graph intact.
  const std::vector<std::string> clauses = {
      "MATCH (n:N)",
      "MATCH (n:N)-[t:T]->(m:N)",
      "OPTIONAL MATCH (n:N)-[:T]->(x)",
      "UNWIND [1, 2] AS u",
      "WHERE n.v > 0",  // invalid in isolation; parser rejects
      "CREATE (:N {v: 1})",
      "SET n.v = 9",
      "DELETE n",
      "DETACH DELETE n",
      "MERGE ALL (:N {v: 1})",
      "MERGE SAME (:N {v: u})",
      "WITH n",
      "WITH 1 AS one",
      "RETURN 1 AS x",
      "RETURN n",
  };
  SplitMix64 rng(0xC0FFEE);
  int executed = 0;
  for (int i = 0; i < 1500; ++i) {
    std::string statement;
    size_t n = 1 + rng.NextBelow(4);
    for (size_t j = 0; j < n; ++j) {
      statement += clauses[rng.NextBelow(clauses.size())];
      statement += ' ';
    }
    GraphDatabase db;
    ASSERT_TRUE(db.Run("CREATE (:N {v: 1})-[:T]->(:N {v: 2})").ok());
    auto result = db.Execute(statement);
    if (result.ok()) ++executed;
    // Invariant: the store is consistent either way.
    for (RelId r : db.graph().AllRels()) {
      ASSERT_TRUE(db.graph().IsNodeAlive(db.graph().rel(r).src));
      ASSERT_TRUE(db.graph().IsNodeAlive(db.graph().rel(r).tgt));
    }
  }
  EXPECT_GT(executed, 0);  // the generator does produce valid statements
}

}  // namespace
}  // namespace cypher
