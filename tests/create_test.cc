#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(CreateTest, SingleNode) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "CREATE (n:User {id: 1}) RETURN n.id AS id");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
  EXPECT_EQ(r.stats.nodes_created, 1u);
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

TEST(CreateTest, FullPathWithMultipleLabels) {
  GraphDatabase db;
  RunOk(&db,
        "CREATE (a:User:Admin {id: 1})-[:KNOWS {since: 2020}]->(b:User)");
  QueryResult r = RunOk(&db,
                        "MATCH (a:Admin)-[k:KNOWS]->(b) "
                        "RETURN labels(a) AS la, k.since AS s");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsList().size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2020);
}

TEST(CreateTest, PerRecordCreation) {
  GraphDatabase db;
  QueryResult r =
      RunOk(&db, "UNWIND [1, 2, 3] AS x CREATE (:N {v: x * 10})");
  EXPECT_EQ(r.stats.nodes_created, 3u);
  QueryResult check = RunOk(&db, "MATCH (n:N) RETURN sum(n.v) AS s");
  EXPECT_EQ(Scalar(check).AsInt(), 60);
}

TEST(CreateTest, BoundVariableReused) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 89})").ok());
  RunOk(&db,
        "MATCH (u:User {id: 89}) "
        "CREATE (u)-[:ORDERED]->(:New_Product {id: 0})");
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  EXPECT_EQ(db.graph().num_rels(), 1u);
}

TEST(CreateTest, SameVariableTwiceMakesSelfLoop) {
  GraphDatabase db;
  RunOk(&db, "CREATE (a:N)-[:LOOP]->(a)");
  EXPECT_EQ(db.graph().num_nodes(), 1u);
  EXPECT_EQ(db.graph().num_rels(), 1u);
  QueryResult r = RunOk(&db, "MATCH (a)-[:LOOP]->(a) RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST(CreateTest, NullPropertiesAreDropped) {
  GraphDatabase db;
  RunOk(&db, "CREATE (n:N {a: 1, b: null})");
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN size(keys(n)) AS k");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST(CreateTest, PropertiesCanReferenceEarlierCreations) {
  GraphDatabase db;
  RunOk(&db, "CREATE (a:N {v: 7})-[:T {w: a.v}]->(b:N {v: a.v + 1})");
  QueryResult r =
      RunOk(&db, "MATCH (a)-[t:T]->(b) RETURN t.w AS w, b.v AS v");
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
  EXPECT_EQ(r.rows[0][1].AsInt(), 8);
}

TEST(CreateTest, PathVariable) {
  GraphDatabase db;
  QueryResult r = RunOk(
      &db, "CREATE p = (:A)-[:T]->(:B)-[:T]->(:C) RETURN length(p) AS len");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
}

TEST(CreateTest, RightToLeftArrow) {
  GraphDatabase db;
  RunOk(&db, "CREATE (a:A)<-[:T]-(b:B)");
  QueryResult r = RunOk(&db, "MATCH (b:B)-[:T]->(a:A) RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

// ---- Validation ----------------------------------------------------------------

TEST(CreateTest, RejectsUndirectedRelationship) {
  GraphDatabase db;
  Status st = RunErr(&db, "CREATE (a)-[:T]-(b)");
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
}

TEST(CreateTest, RejectsMissingOrMultipleTypes) {
  GraphDatabase db;
  EXPECT_EQ(RunErr(&db, "CREATE (a)-[]->(b)").code(),
            StatusCode::kSemanticError);
  EXPECT_EQ(RunErr(&db, "CREATE (a)-[:X|Y]->(b)").code(),
            StatusCode::kSemanticError);
}

TEST(CreateTest, RejectsVariableLength) {
  GraphDatabase db;
  EXPECT_EQ(RunErr(&db, "CREATE (a)-[:T*2]->(b)").code(),
            StatusCode::kSemanticError);
}

TEST(CreateTest, RejectsRedeclaredBoundVariableWithLabels) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  Status st = RunErr(&db, "MATCH (u:User) CREATE (u:Extra)");
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
}

TEST(CreateTest, RejectsRelVariableRebinding) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:A)-[:T]->(:B)").ok());
  Status st = RunErr(&db, "MATCH ()-[r:T]->() CREATE (:X)-[r:T]->(:Y)");
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
}

TEST(CreateTest, RejectsCreatingFromNullEndpoint) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  Status st = RunErr(&db,
                     "OPTIONAL MATCH (u:Missing) CREATE (u)-[:T]->(:X)");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  // Atomicity: the X node from the failing record must not survive.
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

TEST(CreateTest, RejectsEntityValuedProperties) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  Status st = RunErr(&db, "MATCH (u:User) CREATE (:N {owner: u})");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
}

TEST(CreateTest, ListPropertiesAllowed) {
  GraphDatabase db;
  RunOk(&db, "CREATE (:N {tags: ['a', 'b'], nums: [1, 2, 3]})");
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN size(n.tags) AS s");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
}

TEST(CreateTest, MultiplePatternsShareVariables) {
  GraphDatabase db;
  RunOk(&db, "CREATE (a:A), (b:B), (a)-[:T]->(b)");
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  EXPECT_EQ(db.graph().num_rels(), 1u);
}

}  // namespace
}  // namespace cypher
