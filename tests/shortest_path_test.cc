// shortestPath / allShortestPaths tests.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

class ShortestPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A diamond with a long detour:
    //   a -> b -> d,  a -> c -> d  (two 2-hop routes)
    //   a -> e -> f -> d           (3-hop route)
    //   a -> d is NOT direct.
    ASSERT_TRUE(db_.Run("CREATE (a:N {k: 'a'}), (b:N {k: 'b'}), "
                        "(c:N {k: 'c'}), (d:N {k: 'd'}), (e:N {k: 'e'}), "
                        "(f:N {k: 'f'}), "
                        "(a)-[:T]->(b), (b)-[:T]->(d), "
                        "(a)-[:T]->(c), (c)-[:T]->(d), "
                        "(a)-[:T]->(e), (e)-[:T]->(f), (f)-[:T]->(d)")
                    .ok());
  }
  GraphDatabase db_;
};

TEST_F(ShortestPathTest, FindsMinimalLength) {
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                        "MATCH p = shortestPath((a)-[:T*]->(d)) "
                        "RETURN length(p) AS len");
  ASSERT_EQ(r.rows.size(), 1u);  // exactly one path per endpoint pair
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ShortestPathTest, AllShortestEnumeratesTies) {
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                        "MATCH p = allShortestPaths((a)-[:T*]->(d)) "
                        "RETURN length(p) AS len");
  ASSERT_EQ(r.rows.size(), 2u);  // via b and via c
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

TEST_F(ShortestPathTest, DeterministicChoiceAmongTies) {
  // shortestPath picks the relationship-id-minimal route: via b (created
  // first).
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                        "MATCH p = shortestPath((a)-[:T*]->(d)) "
                        "RETURN [n IN nodes(p) | n.k] AS ks");
  EXPECT_EQ(Scalar(r).ToString(), "['a', 'b', 'd']");
}

TEST_F(ShortestPathTest, UnboundEndEnumeratesAllTargets) {
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}) "
                        "MATCH p = shortestPath((a)-[:T*]->(x)) "
                        "RETURN x.k AS k, length(p) AS len ORDER BY k");
  // Reaches b, c, d, e, f.
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[2][0].AsString(), "d");
  EXPECT_EQ(r.rows[2][1].AsInt(), 2);
}

TEST_F(ShortestPathTest, RespectsBounds) {
  // Minimum 3 hops: the 2-hop routes are excluded, but d is at BFS
  // distance 2, so no path qualifies (shortest-path semantics, not "any
  // path of length >= 3").
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                        "OPTIONAL MATCH p = shortestPath((a)-[:T*3..]->(d)) "
                        "RETURN p IS NULL AS missing");
  EXPECT_TRUE(Scalar(r).AsBool());
  // Max 1 hop: nothing reaches d.
  QueryResult r2 = RunOk(&db_,
                         "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                         "OPTIONAL MATCH p = shortestPath((a)-[:T*..1]->(d)) "
                         "RETURN p IS NULL AS missing");
  EXPECT_TRUE(Scalar(r2).AsBool());
}

TEST_F(ShortestPathTest, DirectionAndTypeFilter) {
  // Walking incoming edges from d reaches a (the reverse orientation of
  // the a ->* d routes); from a there are no incoming edges at all.
  QueryResult rev = RunOk(&db_,
                          "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                          "OPTIONAL MATCH p = shortestPath((d)<-[:T*]-(a)) "
                          "RETURN p IS NULL AS missing, length(p) AS len");
  EXPECT_FALSE(rev.rows[0][0].AsBool());
  EXPECT_EQ(rev.rows[0][1].AsInt(), 2);
  QueryResult none_in = RunOk(&db_,
                              "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                              "OPTIONAL MATCH p = shortestPath((a)<-[:T*]-(d)) "
                              "RETURN p IS NULL AS missing");
  EXPECT_TRUE(Scalar(none_in).AsBool());
  QueryResult none = RunOk(&db_,
                           "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                           "OPTIONAL MATCH p = shortestPath((a)-[:X*]->(d)) "
                           "RETURN p IS NULL AS missing");
  EXPECT_TRUE(Scalar(none).AsBool());
}

TEST_F(ShortestPathTest, NoPathMeansNoRow) {
  ASSERT_TRUE(db_.Run("CREATE (:Island {k: 'z'})").ok());
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}), (z:Island) "
                        "MATCH p = shortestPath((a)-[:T*]->(z)) "
                        "RETURN p");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(ShortestPathTest, WorksInsideLargerQueries) {
  QueryResult r = RunOk(
      &db_,
      "MATCH (a:N {k: 'a'}) "
      "MATCH p = shortestPath((a)-[:T*]->(x:N {k: 'f'})) "
      "WITH p, [n IN nodes(p) | n.k] AS route "
      "RETURN length(p) AS len, route");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].ToString(), "['a', 'e', 'f']");
}

TEST_F(ShortestPathTest, RejectedInUpdatingPatterns) {
  EXPECT_FALSE(db_.Execute("CREATE p = shortestPath((a)-[:T*]->(b))").ok());
  EXPECT_FALSE(
      db_.Execute("MERGE ALL p = shortestPath((a)-[:T*]->(b))").ok());
}

TEST_F(ShortestPathTest, RequiresVarLength) {
  EXPECT_FALSE(
      db_.Execute("MATCH p = shortestPath((a)-[:T]->(b)) RETURN p").ok());
  EXPECT_FALSE(
      db_.Execute("MATCH p = shortestPath((a)-[:T*]->(b)-[:T*]->(c)) "
                  "RETURN p")
          .ok());
}

TEST_F(ShortestPathTest, RelListVariableBinds) {
  QueryResult r = RunOk(&db_,
                        "MATCH (a:N {k: 'a'}), (d:N {k: 'd'}) "
                        "MATCH shortestPath((a)-[rs:T*]->(d)) "
                        "RETURN size(rs) AS n");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
}

TEST_F(ShortestPathTest, CyclesTerminate) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (a:C {k: 1}), (b:C {k: 2}), "
                     "(a)-[:T]->(b), (b)-[:T]->(a)")
                  .ok());
  QueryResult r = RunOk(&db,
                        "MATCH (a:C {k: 1}), (b:C {k: 2}) "
                        "MATCH p = shortestPath((a)-[:T*]->(b)) "
                        "RETURN length(p) AS len");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

}  // namespace
}  // namespace cypher
