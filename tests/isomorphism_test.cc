#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::GraphFromScript;

TEST(IsomorphismTest, EmptyGraphs) {
  PropertyGraph a, b;
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, IdRenamingIsInvisible) {
  // Same structure created in different orders.
  PropertyGraph a = GraphFromScript(
      "CREATE (x:A {v: 1})-[:T]->(y:B {v: 2}), (y)-[:T]->(x)");
  PropertyGraph b = GraphFromScript(
      "CREATE (y:B {v: 2}), (x:A {v: 1}), (y)-[:T]->(x), (x)-[:T]->(y)");
  EXPECT_TRUE(AreIsomorphic(a, b));
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
}

TEST(IsomorphismTest, CountMismatch) {
  PropertyGraph a = GraphFromScript("CREATE (:A), (:A)");
  PropertyGraph b = GraphFromScript("CREATE (:A)");
  std::string why;
  EXPECT_FALSE(AreIsomorphic(a, b, &why));
  EXPECT_NE(why.find("node counts"), std::string::npos);
}

TEST(IsomorphismTest, LabelMismatch) {
  PropertyGraph a = GraphFromScript("CREATE (:A)");
  PropertyGraph b = GraphFromScript("CREATE (:B)");
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, PropertyMismatch) {
  PropertyGraph a = GraphFromScript("CREATE (:A {v: 1})");
  PropertyGraph b = GraphFromScript("CREATE (:A {v: 2})");
  EXPECT_FALSE(AreIsomorphic(a, b));
  // ... but 1 vs 1.0 are equivalent properties.
  PropertyGraph c = GraphFromScript("CREATE (:A {v: 1.0})");
  EXPECT_TRUE(AreIsomorphic(a, c));
}

TEST(IsomorphismTest, DirectionMatters) {
  PropertyGraph a = GraphFromScript("CREATE (:A)-[:T]->(:B)");
  PropertyGraph b = GraphFromScript("CREATE (:A)<-[:T]-(:B)");
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, ParallelEdgeMultiplicity) {
  PropertyGraph a = GraphFromScript(
      "CREATE (x:A), (y:B), (x)-[:T]->(y), (x)-[:T]->(y)");
  PropertyGraph b = GraphFromScript(
      "CREATE (x:A), (y:B), (x)-[:T]->(y), (x)-[:T]->(y)");
  PropertyGraph c = GraphFromScript(
      "CREATE (x:A), (y:B), (z:A), (w:B), "
      "(x)-[:T]->(y), (z)-[:T]->(w), (z)-[:T]->(w)");
  EXPECT_TRUE(AreIsomorphic(a, b));
  EXPECT_FALSE(AreIsomorphic(a, c));
}

TEST(IsomorphismTest, StructuralDifferenceWithEqualHistograms) {
  // A 6-cycle vs two 3-cycles: identical local signatures, different
  // structure — needs actual search, not just histogram pruning.
  PropertyGraph six = GraphFromScript(
      "CREATE (a:N), (b:N), (c:N), (d:N), (e:N), (f:N), "
      "(a)-[:T]->(b), (b)-[:T]->(c), (c)-[:T]->(d), "
      "(d)-[:T]->(e), (e)-[:T]->(f), (f)-[:T]->(a)");
  PropertyGraph two_threes = GraphFromScript(
      "CREATE (a:N), (b:N), (c:N), (d:N), (e:N), (f:N), "
      "(a)-[:T]->(b), (b)-[:T]->(c), (c)-[:T]->(a), "
      "(d)-[:T]->(e), (e)-[:T]->(f), (f)-[:T]->(d)");
  EXPECT_FALSE(AreIsomorphic(six, two_threes));
}

TEST(IsomorphismTest, CrossVocabularyComparison) {
  // Two graphs whose interners assign different symbol ids to the same
  // names must still compare equal.
  PropertyGraph a;
  a.InternLabel("Padding1");
  a.InternLabel("Padding2");
  PropertyMap pa;
  pa.Set(a.InternKey("pad"), Value::Int(0));
  NodeId an = a.CreateNode({a.InternLabel("User")}, {});
  NodeId am = a.CreateNode({a.InternLabel("Product")}, {});
  ASSERT_TRUE(a.CreateRel(an, am, a.InternType("ORDERED"), {}).ok());

  PropertyGraph b;
  NodeId bn = b.CreateNode({b.InternLabel("User")}, {});
  NodeId bm = b.CreateNode({b.InternLabel("Product")}, {});
  ASSERT_TRUE(b.CreateRel(bn, bm, b.InternType("ORDERED"), {}).ok());
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, TombstonesAreIgnored) {
  PropertyGraph a = GraphFromScript("CREATE (:A), (:B)");
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:A), (:B), (:Gone)").ok());
  ASSERT_TRUE(db.Run("MATCH (g:Gone) DELETE g").ok());
  EXPECT_TRUE(AreIsomorphic(a, db.graph()));
}

TEST(IsomorphismTest, SelfLoops) {
  PropertyGraph a = GraphFromScript("CREATE (x:N)-[:T]->(x)");
  PropertyGraph b = GraphFromScript("CREATE (x:N)-[:T]->(x)");
  PropertyGraph c = GraphFromScript("CREATE (x:N)-[:T]->(:N)");
  EXPECT_TRUE(AreIsomorphic(a, b));
  EXPECT_FALSE(AreIsomorphic(a, c));
}

TEST(IsomorphismTest, FingerprintSeparatesFigure6Graphs) {
  PropertyGraph fig6a = GraphFromScript(
      "CREATE (u1:N {k: 'u1'}), (u2:N {k: 'u2'}), (p:N {k: 'p'}), "
      "(v1:N {k: 'v1'}), (v2:N {k: 'v2'}), "
      "(u1)-[:ORDERED]->(p), (v1)-[:OFFERS]->(p), "
      "(u2)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p), "
      "(u1)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p)");
  PropertyGraph fig6b = GraphFromScript(
      "CREATE (u1:N {k: 'u1'}), (u2:N {k: 'u2'}), (p:N {k: 'p'}), "
      "(v1:N {k: 'v1'}), (v2:N {k: 'v2'}), "
      "(u1)-[:ORDERED]->(p), (v1)-[:OFFERS]->(p), "
      "(u2)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p)");
  EXPECT_NE(GraphFingerprint(fig6a), GraphFingerprint(fig6b));
}

}  // namespace
}  // namespace cypher
