#include <gtest/gtest.h>

#include "table/table.h"

namespace cypher {
namespace {

TEST(TableTest, UnitHasOneEmptyRecord) {
  Table t = Table::Unit();
  EXPECT_EQ(t.num_columns(), 0u);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, DefaultIsEmpty) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, ColumnsAndRows) {
  Table t = Table::WithColumns({"a", "b"});
  EXPECT_EQ(t.ColumnIndex("a"), 0u);
  EXPECT_EQ(t.ColumnIndex("b"), 1u);
  EXPECT_EQ(t.ColumnIndex("c"), Table::kNoColumn);
  t.AddRow({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(t.At(0, 1).AsInt(), 2);
}

TEST(TableTest, AddColumnNullFillsExistingRows) {
  Table t = Table::WithColumns({"a"});
  t.AddRow({Value::Int(1)});
  size_t idx = t.AddColumn("b");
  EXPECT_EQ(idx, 1u);
  EXPECT_TRUE(t.At(0, 1).is_null());
}

TEST(TableTest, BagUnionReordersColumns) {
  Table a = Table::WithColumns({"x", "y"});
  a.AddRow({Value::Int(1), Value::Int(2)});
  Table b = Table::WithColumns({"y", "x"});
  b.AddRow({Value::Int(20), Value::Int(10)});
  auto u = Table::BagUnion(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 2u);
  EXPECT_EQ(u->At(1, 0).AsInt(), 10);  // x
  EXPECT_EQ(u->At(1, 1).AsInt(), 20);  // y
}

TEST(TableTest, BagUnionKeepsDuplicates) {
  Table a = Table::WithColumns({"x"});
  a.AddRow({Value::Int(1)});
  Table b = Table::WithColumns({"x"});
  b.AddRow({Value::Int(1)});
  auto u = Table::BagUnion(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 2u);
}

TEST(TableTest, BagUnionRejectsMismatchedColumns) {
  Table a = Table::WithColumns({"x"});
  Table b = Table::WithColumns({"y"});
  EXPECT_FALSE(Table::BagUnion(a, b).ok());
  Table c = Table::WithColumns({"x", "y"});
  EXPECT_FALSE(Table::BagUnion(a, c).ok());
}

TEST(TableTest, DistinctUsesGroupingEquivalence) {
  Table t = Table::WithColumns({"x"});
  t.AddRow({Value::Int(1)});
  t.AddRow({Value::Float(1.0)});  // group-equal to 1
  t.AddRow({Value::Null()});
  t.AddRow({Value::Null()});  // null == null for DISTINCT
  t.AddRow({Value::Int(2)});
  Table d = t.Distinct();
  EXPECT_EQ(d.num_rows(), 3u);
}

TEST(TableTest, ValueVecHashersAgreeWithEq) {
  ValueVecHash hash;
  ValueVecEq eq;
  std::vector<Value> a{Value::Int(1), Value::Null()};
  std::vector<Value> b{Value::Float(1.0), Value::Null()};
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(hash(a), hash(b));
  std::vector<Value> c{Value::Int(2), Value::Null()};
  EXPECT_FALSE(eq(a, c));
}

}  // namespace
}  // namespace cypher
