#include <gtest/gtest.h>

#include "value/compare.h"
#include "value/value.h"

namespace cypher {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, ScalarAccessors) {
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Int(5).AsNumber(), 5.0);
}

TEST(ValueTest, ListAndMap) {
  Value list = Value::List({Value::Int(1), Value::String("a")});
  ASSERT_EQ(list.AsList().size(), 2u);
  Value map = Value::Map({{"k", Value::Int(9)}});
  EXPECT_EQ(map.AsMap().at("k").AsInt(), 9);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Float(1.0).ToString(), "1.0");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
  EXPECT_EQ(Value::Map({{"a", Value::Int(1)}}).ToString(), "{a: 1}");
  EXPECT_EQ(Value::Node(NodeId(3)).ToString(), "Node(3)");
}

TEST(ValueTest, PathToString) {
  PathValue p;
  p.nodes = {NodeId(0), NodeId(2)};
  p.rels = {RelId(1)};
  EXPECT_EQ(Value::Path(p).ToString(), "Path(0-[1]-2)");
  PathValue single;
  single.nodes = {NodeId(7)};
  EXPECT_EQ(Value::Path(single).ToString(), "Path(7)");
}

TEST(ValueTest, RelAndPathEquality) {
  PathValue a;
  a.nodes = {NodeId(0), NodeId(1)};
  a.rels = {RelId(0)};
  PathValue b = a;
  EXPECT_EQ(CypherEquals(Value::Path(a), Value::Path(b)), Tri::kTrue);
  b.rels = {RelId(9)};
  EXPECT_EQ(CypherEquals(Value::Path(a), Value::Path(b)), Tri::kFalse);
}

TEST(ValueTest, SharedRepresentationCopiesAreCheapAndIndependent) {
  ValueList big(1000, Value::Int(7));
  Value a = Value::List(std::move(big));
  Value b = a;  // shares the representation
  EXPECT_EQ(a.AsList().size(), b.AsList().size());
  EXPECT_TRUE(GroupEquals(a, b));
}

// ---- Ternary logic -----------------------------------------------------------

TEST(TriTest, AndTruthTable) {
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kTrue), Tri::kTrue);
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(TriAnd(Tri::kFalse, Tri::kNull), Tri::kFalse);
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kNull), Tri::kNull);
  EXPECT_EQ(TriAnd(Tri::kNull, Tri::kNull), Tri::kNull);
}

TEST(TriTest, OrTruthTable) {
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(TriOr(Tri::kTrue, Tri::kNull), Tri::kTrue);
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kNull), Tri::kNull);
}

TEST(TriTest, XorAndNot) {
  EXPECT_EQ(TriXor(Tri::kTrue, Tri::kFalse), Tri::kTrue);
  EXPECT_EQ(TriXor(Tri::kTrue, Tri::kTrue), Tri::kFalse);
  EXPECT_EQ(TriXor(Tri::kTrue, Tri::kNull), Tri::kNull);
  EXPECT_EQ(TriNot(Tri::kNull), Tri::kNull);
  EXPECT_EQ(TriNot(Tri::kFalse), Tri::kTrue);
}

// ---- CypherEquals -------------------------------------------------------------

TEST(CypherEqualsTest, NullPropagates) {
  EXPECT_EQ(CypherEquals(Value::Null(), Value::Null()), Tri::kNull);
  EXPECT_EQ(CypherEquals(Value::Null(), Value::Int(1)), Tri::kNull);
}

TEST(CypherEqualsTest, NumbersCompareAcrossKinds) {
  EXPECT_EQ(CypherEquals(Value::Int(1), Value::Float(1.0)), Tri::kTrue);
  EXPECT_EQ(CypherEquals(Value::Int(1), Value::Float(1.5)), Tri::kFalse);
}

TEST(CypherEqualsTest, MismatchedTypesAreFalse) {
  EXPECT_EQ(CypherEquals(Value::Int(1), Value::String("1")), Tri::kFalse);
  EXPECT_EQ(CypherEquals(Value::Bool(true), Value::Int(1)), Tri::kFalse);
}

TEST(CypherEqualsTest, ListElementwiseWithNullPropagation) {
  Value a = Value::List({Value::Int(1), Value::Null()});
  Value b = Value::List({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(CypherEquals(a, b), Tri::kNull);
  Value c = Value::List({Value::Int(7), Value::Null()});
  EXPECT_EQ(CypherEquals(a, c), Tri::kFalse);  // 1 != 7 decides
  EXPECT_EQ(CypherEquals(a, Value::List({Value::Int(1)})), Tri::kFalse);
}

TEST(CypherEqualsTest, MapComparison) {
  Value a = Value::Map({{"x", Value::Int(1)}});
  Value b = Value::Map({{"x", Value::Int(1)}});
  Value c = Value::Map({{"y", Value::Int(1)}});
  EXPECT_EQ(CypherEquals(a, b), Tri::kTrue);
  EXPECT_EQ(CypherEquals(a, c), Tri::kFalse);
}

TEST(CypherEqualsTest, Entities) {
  EXPECT_EQ(CypherEquals(Value::Node(NodeId(1)), Value::Node(NodeId(1))),
            Tri::kTrue);
  EXPECT_EQ(CypherEquals(Value::Node(NodeId(1)), Value::Node(NodeId(2))),
            Tri::kFalse);
  EXPECT_EQ(CypherEquals(Value::Rel(RelId(1)), Value::Rel(RelId(1))),
            Tri::kTrue);
}

// ---- CypherLess ---------------------------------------------------------------

TEST(CypherLessTest, Numbers) {
  EXPECT_EQ(CypherLess(Value::Int(1), Value::Int(2)), Tri::kTrue);
  EXPECT_EQ(CypherLess(Value::Float(2.5), Value::Int(2)), Tri::kFalse);
  EXPECT_EQ(CypherLess(Value::Int(1), Value::Null()), Tri::kNull);
}

TEST(CypherLessTest, StringsAndBooleans) {
  EXPECT_EQ(CypherLess(Value::String("a"), Value::String("b")), Tri::kTrue);
  EXPECT_EQ(CypherLess(Value::Bool(false), Value::Bool(true)), Tri::kTrue);
}

TEST(CypherLessTest, CrossFamilyIsNull) {
  EXPECT_EQ(CypherLess(Value::Int(1), Value::String("a")), Tri::kNull);
}

// ---- GroupEquals (the DISTINCT/grouping equivalence) --------------------------

TEST(GroupEqualsTest, NullEqualsNull) {
  EXPECT_TRUE(GroupEquals(Value::Null(), Value::Null()));
  EXPECT_FALSE(GroupEquals(Value::Null(), Value::Int(0)));
}

TEST(GroupEqualsTest, NumericCanonicalization) {
  EXPECT_TRUE(GroupEquals(Value::Int(1), Value::Float(1.0)));
  EXPECT_EQ(HashValue(Value::Int(1)), HashValue(Value::Float(1.0)));
}

TEST(GroupEqualsTest, ListsWithNulls) {
  Value a = Value::List({Value::Int(98), Value::Null()});
  Value b = Value::List({Value::Int(98), Value::Null()});
  EXPECT_TRUE(GroupEquals(a, b));
  EXPECT_EQ(HashValue(a), HashValue(b));
}

TEST(GroupEqualsTest, HashConsistency) {
  Value a = Value::Map({{"k", Value::String("v")}, {"n", Value::Int(3)}});
  Value b = Value::Map({{"k", Value::String("v")}, {"n", Value::Float(3.0)}});
  EXPECT_TRUE(GroupEquals(a, b));
  EXPECT_EQ(HashValue(a), HashValue(b));
}

// ---- Total order ---------------------------------------------------------------

TEST(TotalOrderTest, NullSortsLast) {
  EXPECT_LT(TotalOrderCompare(Value::Int(5), Value::Null()), 0);
  EXPECT_GT(TotalOrderCompare(Value::Null(), Value::String("z")), 0);
  EXPECT_EQ(TotalOrderCompare(Value::Null(), Value::Null()), 0);
}

TEST(TotalOrderTest, WithinNumbers) {
  EXPECT_LT(TotalOrderCompare(Value::Int(1), Value::Float(1.5)), 0);
  EXPECT_EQ(TotalOrderCompare(Value::Int(2), Value::Float(2.0)), 0);
}

TEST(TotalOrderTest, StringsBeforeBooleansBeforeNumbers) {
  EXPECT_LT(TotalOrderCompare(Value::String("z"), Value::Bool(false)), 0);
  EXPECT_LT(TotalOrderCompare(Value::Bool(true), Value::Int(0)), 0);
}

TEST(TotalOrderTest, ListsLexicographic) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1)});
  EXPECT_LT(TotalOrderCompare(a, b), 0);
  EXPECT_LT(TotalOrderCompare(c, a), 0);
}

}  // namespace
}  // namespace cypher
