// Golden end-to-end tests: run a script, render the final statement's
// result, and compare against the expected text verbatim. These lock the
// full pipeline (parser -> executor -> renderer) against drift.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

struct Golden {
  const char* name;
  const char* setup;  // script, may be empty
  const char* query;
  const char* expected;  // exact RenderResult output
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, OutputMatches) {
  const Golden& g = GetParam();
  GraphDatabase db;
  if (*g.setup != '\0') {
    auto setup = db.ExecuteScript(g.setup);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  }
  auto result = db.Execute(g.query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RenderResult(db.graph(), *result), g.expected) << g.query;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GoldenTest,
    ::testing::Values(
        Golden{"scalar_row", "", "RETURN 1 + 1 AS two, 'x' AS s",
               "| two | s   |\n"
               "+-----+-----+\n"
               "| 2   | 'x' |\n"
               "1 row\n"},
        Golden{"node_rendering",
               "CREATE (:User {id: 89, name: 'Bob'})",
               "MATCH (u:User) RETURN u",
               "| u                             |\n"
               "+-------------------------------+\n"
               "| (:User {id: 89, name: 'Bob'}) |\n"
               "1 row\n"},
        Golden{"ordering_and_nulls",
               "CREATE (:N {v: 2}); CREATE (:N); CREATE (:N {v: 1})",
               "MATCH (n:N) RETURN n.v AS v ORDER BY v",
               "| v    |\n"
               "+------+\n"
               "| 1    |\n"
               "| 2    |\n"
               "| null |\n"
               "3 rows\n"},
        Golden{"aggregation",
               "CREATE (:U {g: 'a', v: 1}); CREATE (:U {g: 'a', v: 2}); "
               "CREATE (:U {g: 'b', v: 5})",
               "MATCH (u:U) RETURN u.g AS g, sum(u.v) AS total, "
               "count(*) AS n ORDER BY g",
               "| g   | total | n |\n"
               "+-----+-------+---+\n"
               "| 'a' | 3     | 2 |\n"
               "| 'b' | 5     | 1 |\n"
               "2 rows\n"},
        Golden{"update_stats_line",
               "",
               "CREATE (:A {x: 1})-[:T]->(:B)",
               "2 nodes created, 1 relationships created\n"},
        Golden{"merge_same_stats",
               "",
               "UNWIND [1, 1, 2] AS v MERGE SAME (:N {id: v})",
               "2 nodes created\n"},
        Golden{"path_row",
               "CREATE (:A {k: 1})-[:T]->(:B {k: 2})",
               "MATCH p = (:A)-->(:B) RETURN p, length(p) AS len",
               "| p                             | len |\n"
               "+-------------------------------+-----+\n"
               "| (:A {k: 1})-[:T]->(:B {k: 2}) | 1   |\n"
               "1 row\n"},
        Golden{"collected_list",
               "CREATE (:N {v: 3}); CREATE (:N {v: 1}); CREATE (:N {v: 2})",
               "MATCH (n:N) WITH n.v AS v ORDER BY v "
               "RETURN collect(v) AS vs",
               "| vs        |\n"
               "+-----------+\n"
               "| [1, 2, 3] |\n"
               "1 row\n"},
        Golden{"case_and_strings",
               "",
               "UNWIND ['laptop', 'pen'] AS w "
               "RETURN w, CASE WHEN size(w) > 3 THEN 'long' ELSE 'short' "
               "END AS kind",
               "| w        | kind    |\n"
               "+----------+---------+\n"
               "| 'laptop' | 'long'  |\n"
               "| 'pen'    | 'short' |\n"
               "2 rows\n"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace cypher
