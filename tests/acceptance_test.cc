// TCK-style acceptance suite: each scenario is (setup script, query,
// expected bag of rendered rows). Rows are rendered cell-by-cell with
// RenderValue, joined with " | ", and compared as sorted multisets, so
// scenarios don't depend on incidental row order unless they sort
// explicitly.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"

namespace cypher {
namespace {

struct Scenario {
  const char* name;
  std::string setup;  // may be empty
  const char* query;
  std::vector<const char*> rows;  // expected rows, any order
};

class AcceptanceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(AcceptanceTest, RowsMatch) {
  const Scenario& s = GetParam();
  GraphDatabase db;
  if (!s.setup.empty()) {
    auto setup = db.ExecuteScript(s.setup);
    ASSERT_TRUE(setup.ok()) << s.name << ": " << setup.status().ToString();
  }
  auto result = db.Execute(s.query);
  ASSERT_TRUE(result.ok()) << s.name << ": " << result.status().ToString();
  std::vector<std::string> got;
  for (const auto& row : result->rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += RenderValue(db.graph(), row[i]);
    }
    got.push_back(std::move(line));
  }
  std::vector<std::string> want(s.rows.begin(), s.rows.end());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << s.name << "\nquery: " << s.query;
}

const char kMovies[] =
    "CREATE (a:Person {name: 'Alice', born: 1980}), "
    "(b:Person {name: 'Bob', born: 1975}), "
    "(c:Person {name: 'Carol', born: 1990}), "
    "(m1:Movie {title: 'Heat', year: 1995}), "
    "(m2:Movie {title: 'Fargo', year: 1996}), "
    "(a)-[:ACTED_IN {role: 'Cop'}]->(m1), "
    "(b)-[:ACTED_IN {role: 'Thief'}]->(m1), "
    "(b)-[:ACTED_IN {role: 'Jerry'}]->(m2), "
    "(c)-[:DIRECTED]->(m2)";

INSTANTIATE_TEST_SUITE_P(
    Expressions, AcceptanceTest,
    ::testing::Values(
        Scenario{"arith_precedence", "", "RETURN 2 + 3 * 4 - 1 AS x", {"13"}},
        Scenario{"float_division", "", "RETURN 7.0 / 2 AS x", {"3.5"}},
        Scenario{"string_concat", "", "RETURN 'a' + 'b' + 1 AS s", {"'ab1'"}},
        Scenario{"null_propagation", "",
                 "RETURN null + 1 AS a, null = null AS b, "
                 "null IS NULL AS c",
                 {"null | null | true"}},
        Scenario{"ternary_where", "",
                 "UNWIND [1, 2, null, 4] AS x WITH x WHERE x > 1 RETURN x",
                 {"2", "4"}},
        Scenario{"in_with_null_list_element", "",
                 "RETURN 3 IN [1, null, 3] AS a, 9 IN [1, null] AS b",
                 {"true | null"}},
        Scenario{"case_simple_form", "",
                 "UNWIND [1, 2, 3] AS x "
                 "RETURN CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' "
                 "ELSE 'many' END AS w",
                 {"'one'", "'two'", "'many'"}},
        Scenario{"list_ops", "",
                 "RETURN size([1,2,3]) AS s, head([1,2]) AS h, "
                 "last([1,2]) AS l, [1,2][0] AS i, [1,2][-1] AS n",
                 {"3 | 1 | 2 | 1 | 2"}},
        Scenario{"comprehension_pipeline", "",
                 "RETURN reduce(acc = 0, x IN "
                 "[y IN range(1, 10) WHERE y % 2 = 0 | y * y] | acc + x) "
                 "AS sum_even_squares",
                 {"220"}},
        Scenario{"quantifiers_row", "",
                 "RETURN all(x IN [1,2] WHERE x > 0) AS a, "
                 "any(x IN [] WHERE x > 0) AS b, "
                 "none(x IN [3] WHERE x > 2) AS c, "
                 "single(x IN [1,2] WHERE x = 2) AS d",
                 {"true | false | false | true"}},
        Scenario{"string_functions", "",
                 "RETURN toUpper(substring('laptop', 0, 3)) AS a, "
                 "split('a-b', '-')[1] AS b, replace('xx', 'x', 'y') AS c",
                 {"'LAP' | 'b' | 'yy'"}},
        Scenario{"map_projection_literal", "",
                 "WITH {a: 1, b: 2} AS m RETURN m {.a, c: 3} AS out",
                 {"{a: 1, c: 3}"}},
        Scenario{"map_projection_variable_shorthand", "",
                 "WITH 5 AS score, {a: 1} AS m RETURN m {score} AS out",
                 {"{score: 5}"}}));

INSTANTIATE_TEST_SUITE_P(
    Reading, AcceptanceTest,
    ::testing::Values(
        Scenario{"match_label_filter", kMovies,
                 "MATCH (p:Person) RETURN p.name AS n",
                 {"'Alice'", "'Bob'", "'Carol'"}},
        Scenario{"match_rel_props", kMovies,
                 "MATCH (p)-[r:ACTED_IN]->(m:Movie {title: 'Heat'}) "
                 "RETURN p.name AS n, r.role AS role",
                 {"'Alice' | 'Cop'", "'Bob' | 'Thief'"}},
        Scenario{"match_two_hops", kMovies,
                 "MATCH (a:Person)-[:ACTED_IN]->(:Movie)<-[:ACTED_IN]-"
                 "(b:Person) WHERE a.name < b.name "
                 "RETURN a.name AS a, b.name AS b",
                 {"'Alice' | 'Bob'"}},
        Scenario{"optional_match_null_pad", kMovies,
                 "MATCH (p:Person) OPTIONAL MATCH (p)-[:DIRECTED]->(m) "
                 "RETURN p.name AS n, m.title AS t",
                 {"'Alice' | null", "'Bob' | null", "'Carol' | 'Fargo'"}},
        Scenario{"where_pattern_predicate", kMovies,
                 "MATCH (p:Person) WHERE exists((p)-[:DIRECTED]->()) "
                 "RETURN p.name AS n",
                 {"'Carol'"}},
        Scenario{"var_length_reach", kMovies,
                 "MATCH (a:Person {name: 'Alice'})-[*1..2]-(x:Person) "
                 "WHERE x.name <> 'Alice' RETURN DISTINCT x.name AS n",
                 {"'Bob'"}},
        Scenario{"shortest_path_coactor", kMovies,
                 "MATCH (a:Person {name: 'Alice'}), (c:Person {name: 'Carol'}) "
                 "MATCH p = shortestPath((a)-[*]-(c)) "
                 "RETURN length(p) AS len",
                 {"4"}},
        Scenario{"aggregation_group_by", kMovies,
                 "MATCH (p:Person)-[:ACTED_IN]->(m:Movie) "
                 "RETURN p.name AS n, count(m) AS c",
                 {"'Alice' | 1", "'Bob' | 2"}},
        Scenario{"collect_distinct", kMovies,
                 "MATCH (p:Person)-[:ACTED_IN]->(m) "
                 "RETURN collect(DISTINCT m.year) AS ys",
                 {"[1995, 1996]"}},
        Scenario{"min_max_avg", kMovies,
                 "MATCH (p:Person) RETURN min(p.born) AS lo, "
                 "max(p.born) AS hi, avg(p.born) AS mid",
                 {"1975 | 1990 | 1981.6666666666667"}},
        Scenario{"order_skip_limit", kMovies,
                 "MATCH (p:Person) RETURN p.name AS n "
                 "ORDER BY p.born DESC SKIP 1 LIMIT 1",
                 {"'Alice'"}},
        Scenario{"with_chained_filter", kMovies,
                 "MATCH (p:Person)-[:ACTED_IN]->(m) "
                 "WITH p, count(m) AS roles WHERE roles >= 2 "
                 "MATCH (p)-[:ACTED_IN]->(m2) RETURN m2.title AS t",
                 {"'Heat'", "'Fargo'"}},
        Scenario{"union_distinct", kMovies,
                 "MATCH (p:Person {name: 'Bob'}) RETURN p.born AS x "
                 "UNION MATCH (p:Person {name: 'Bob'}) RETURN p.born AS x",
                 {"1975"}},
        Scenario{"unwind_nested", "",
                 "UNWIND [[1, 2], [3]] AS inner UNWIND inner AS x "
                 "RETURN x",
                 {"1", "2", "3"}},
        Scenario{"labels_keys_props", kMovies,
                 "MATCH (m:Movie {title: 'Heat'}) "
                 "RETURN labels(m) AS l, keys(m) AS k, "
                 "properties(m).year AS y",
                 {"['Movie'] | ['title', 'year'] | 1995"}},
        Scenario{"map_projection_entity", kMovies,
                 "MATCH (p:Person {name: 'Bob'}) "
                 "RETURN p {.name, age: 2019 - p.born} AS card",
                 {"{age: 44, name: 'Bob'}"}},
        Scenario{"path_functions", kMovies,
                 "MATCH pth = (:Person {name: 'Carol'})-[:DIRECTED]->(m) "
                 "RETURN length(pth) AS len, "
                 "[n IN nodes(pth) | coalesce(n.name, n.title)] AS route",
                 {"1 | ['Carol', 'Fargo']"}}));

INSTANTIATE_TEST_SUITE_P(
    Updating, AcceptanceTest,
    ::testing::Values(
        Scenario{"create_then_read", "",
                 "CREATE (:N {v: 1}) CREATE (:N {v: 2}) "
                 "WITH 0 AS z MATCH (n:N) RETURN sum(n.v) AS s",
                 {"3"}},
        Scenario{"set_then_read_same_statement", "CREATE (:N {v: 1})",
                 "MATCH (n:N) SET n.v = 10 "
                 "WITH n MATCH (m:N) RETURN m.v AS v",
                 {"10"}},
        Scenario{"remove_label_visibility", "CREATE (:A:B {v: 1})",
                 "MATCH (n:A) REMOVE n:B WITH n "
                 "OPTIONAL MATCH (m:B) RETURN n.v AS v, m IS NULL AS gone",
                 {"1 | true"}},
        Scenario{"delete_nulls_reference", "CREATE (:N {v: 1})",
                 "MATCH (n:N) DELETE n RETURN n IS NULL AS gone",
                 {"true"}},
        Scenario{"merge_same_binds_all_rows", "",
                 "UNWIND [1, 1, 2] AS v MERGE SAME (n:N {v: v}) "
                 "RETURN v, n.v AS nv",
                 {"1 | 1", "1 | 1", "2 | 2"}},
        Scenario{"merge_all_row_multiplicity", "CREATE (:N {v: 1})",
                 "UNWIND [1, 9] AS v MERGE ALL (n:N {v: v}) "
                 "RETURN v, n.v AS nv",
                 {"1 | 1", "9 | 9"}},
        Scenario{"foreach_counter", "CREATE (:C {n: 0})",
                 "MATCH (c:C) FOREACH (x IN range(1, 5) | SET c.n = c.n + 1) "
                 "WITH c MATCH (d:C) RETURN d.n AS n",
                 {"5"}},
        // Bag semantics: two movie rows survive the DELETE, so the second
        // MATCH runs per row (2 x 3 remaining nodes).
        Scenario{"detach_delete_then_count", kMovies,
                 "MATCH (m:Movie) DETACH DELETE m "
                 "WITH 1 AS one MATCH (x) RETURN count(x) AS c",
                 {"6"}},
        Scenario{"detach_delete_then_count_distinct", kMovies,
                 "MATCH (m:Movie) DETACH DELETE m "
                 "WITH DISTINCT 1 AS one MATCH (x) RETURN count(x) AS c",
                 {"3"}},
        Scenario{"create_from_unwound_maps", "",
                 "UNWIND [{k: 'a'}, {k: 'b'}] AS row "
                 "CREATE (:N {k: row.k}) "
                 "WITH DISTINCT 1 AS one MATCH (n:N) RETURN n.k AS k",
                 {"'a'", "'b'"}},
        Scenario{"set_plus_eq_merges_maps", "CREATE (:N {a: 1, b: 2})",
                 "MATCH (n:N) SET n += {b: 20, c: 30} "
                 "WITH n RETURN n.a AS a, n.b AS b, n.c AS c",
                 {"1 | 20 | 30"}},
        Scenario{"legacy_new_clause_parity",
                 "CREATE (:U {id: 1})",
                 // MERGE ALL on existing data matches instead of creating.
                 "MERGE ALL (u:U {id: 1}) RETURN id(u) AS i",
                 {"0"}}));

INSTANTIATE_TEST_SUITE_P(
    Composition, AcceptanceTest,
    ::testing::Values(
        Scenario{"call_per_row_aggregate", kMovies,
                 "MATCH (p:Person) "
                 "CALL { MATCH (p)-[:ACTED_IN]->(m) "
                 "RETURN count(m) AS roles } "
                 "RETURN p.name AS n, roles",
                 {"'Alice' | 1", "'Bob' | 2", "'Carol' | 0"}},
        Scenario{"call_side_effect", kMovies,
                 "MATCH (m:Movie) CALL { CREATE (:Review {of: m.title}) } "
                 "WITH DISTINCT 1 AS one "
                 "MATCH (r:Review) RETURN r.of AS t",
                 {"'Heat'", "'Fargo'"}},
        Scenario{"explain_no_execution", "",
                 "EXPLAIN CREATE (:Never)",
                 {"0 | 'CREATE' | 'CREATE (:Never)'",
                  "1 | 'SEMANTICS' | 'revised (Sections 7-8), atomic "
                  "updates'",
                  "2 | 'TIER' | 'vm; plan cache: miss'"}},
        Scenario{"profile_cardinalities", kMovies,
                 "PROFILE MATCH (p:Person) RETURN p.name AS n",
                 {"0 | 'MATCH (p:Person)' | 3",
                  "1 | 'RETURN p.name AS n' | 3"}},
        Scenario{"index_transparent", "CREATE INDEX ON :Person(name); " +
                                          std::string(kMovies),
                 "MATCH (p:Person {name: 'Bob'})-[:ACTED_IN]->(m) "
                 "RETURN m.title AS t",
                 {"'Heat'", "'Fargo'"}},
        Scenario{"foreach_nested_create", "",
                 "FOREACH (i IN range(1, 2) | "
                 "FOREACH (j IN range(1, 2) | CREATE (:P {i: i, j: j}))) "
                 "WITH 1 AS one MATCH (p:P) RETURN count(p) AS c",
                 {"4"}},
        Scenario{"union_all_updates_thread", "",
                 "CREATE (:L {v: 1}) RETURN 1 AS x "
                 "UNION ALL "
                 "MATCH (l:L) RETURN l.v AS x",
                 {"1", "1"}},
        Scenario{"with_star_extension", kMovies,
                 "MATCH (p:Person {name: 'Bob'}) "
                 "WITH *, p.born AS b RETURN b",
                 {"1975"}},
        Scenario{"parameterless_standalone_return", "",
                 "RETURN coalesce(null, 'fallback') AS v",
                 {"'fallback'"}}));

// Scenarios that depend on legacy (Cypher 9) semantics.
struct LegacyScenario {
  const char* name;
  const char* setup;
  const char* query;
  std::vector<const char*> rows;
};

class LegacyAcceptanceTest : public ::testing::TestWithParam<LegacyScenario> {};

TEST_P(LegacyAcceptanceTest, RowsMatch) {
  const LegacyScenario& s = GetParam();
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  GraphDatabase db(legacy);
  if (*s.setup != '\0') {
    auto setup = db.ExecuteScript(s.setup);
    ASSERT_TRUE(setup.ok()) << s.name << ": " << setup.status().ToString();
  }
  auto result = db.Execute(s.query);
  ASSERT_TRUE(result.ok()) << s.name << ": " << result.status().ToString();
  std::vector<std::string> got;
  for (const auto& row : result->rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += RenderValue(db.graph(), row[i]);
    }
    got.push_back(std::move(line));
  }
  std::vector<std::string> want(s.rows.begin(), s.rows.end());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    Legacy, LegacyAcceptanceTest,
    ::testing::Values(
        LegacyScenario{"merge_reads_own_writes", "",
                       "UNWIND [1, 1, 1] AS v MERGE (n:N {v: v}) "
                       "RETURN id(n) AS i",
                       {"0", "0", "0"}},
        LegacyScenario{"set_sees_prior_records",
                       "CREATE (:N {id: 1, v: 10}); CREATE (:N {id: 2, v: 20})",
                       // Legacy SET processes record 1 first; record 2's
                       // read of n1.v already sees 99.
                       "MATCH (a:N {id: 1}), (b:N {id: 2}) "
                       "SET a.v = 99 SET b.v = a.v "
                       "WITH a, b RETURN a.v AS av, b.v AS bv",
                       {"99 | 99"}},
        LegacyScenario{"zombie_return_is_empty_node",
                       "CREATE (:U {id: 1})-[:T]->(:V)",
                       "MATCH (u:U)-[t:T]->(v) DELETE u, t "
                       "RETURN u AS zombie",
                       {"()"}},
        LegacyScenario{"merge_on_create_flag", "",
                       "MERGE (n:N {k: 1}) ON CREATE SET n.fresh = true "
                       "RETURN n.fresh AS f",
                       {"true"}}));

}  // namespace
}  // namespace cypher
