// List comprehensions, quantifiers, reduce, and the extended scalar
// function library.

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/parser.h"
#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

class ExprExtraTest : public ::testing::Test {
 protected:
  Value Eval(const std::string& expr) {
    QueryResult r = RunOk(&db_, "RETURN " + expr + " AS v");
    return Scalar(r);
  }
  Status EvalErr(const std::string& expr) {
    auto r = db_.Execute("RETURN " + expr + " AS v");
    EXPECT_FALSE(r.ok()) << expr;
    return r.status();
  }
  GraphDatabase db_;
};

// ---- List comprehensions -------------------------------------------------------

TEST_F(ExprExtraTest, ComprehensionFilterAndProject) {
  EXPECT_EQ(Eval("[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]").ToString(),
            "[20, 40]");
  EXPECT_EQ(Eval("[x IN [1,2,3] | x + 1]").ToString(), "[2, 3, 4]");
  EXPECT_EQ(Eval("[x IN [1,2,3] WHERE x > 1]").ToString(), "[2, 3]");
  EXPECT_EQ(Eval("[x IN [1,2,3]]").ToString(), "[1, 2, 3]");
  EXPECT_EQ(Eval("[x IN []]").ToString(), "[]");
}

TEST_F(ExprExtraTest, ComprehensionNullAndErrors) {
  EXPECT_TRUE(Eval("[x IN null | x]").is_null());
  EXPECT_FALSE(db_.Execute("RETURN [x IN 42 | x] AS v").ok());
  // Null predicate results filter out (not error).
  EXPECT_EQ(Eval("[x IN [1, null, 3] WHERE x > 0]").ToString(), "[1, 3]");
}

TEST_F(ExprExtraTest, ComprehensionShadowsOuterVariable) {
  QueryResult r = RunOk(&db_,
                        "WITH 100 AS x RETURN [x IN [1,2] | x] AS inner, "
                        "x AS outer");
  EXPECT_EQ(r.rows[0][0].ToString(), "[1, 2]");
  EXPECT_EQ(r.rows[0][1].AsInt(), 100);
}

TEST_F(ExprExtraTest, NestedComprehension) {
  EXPECT_EQ(
      Eval("[x IN [1,2] | [y IN [10,20] | x * y]]").ToString(),
      "[[10, 20], [20, 40]]");
}

// ---- Quantifiers ----------------------------------------------------------------

TEST_F(ExprExtraTest, Quantifiers) {
  EXPECT_TRUE(Eval("all(x IN [1,2,3] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("all(x IN [1,-2,3] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("any(x IN [0,0,5] WHERE x > 1)").AsBool());
  EXPECT_FALSE(Eval("any(x IN [] WHERE x > 1)").AsBool());
  EXPECT_TRUE(Eval("none(x IN [1,2] WHERE x > 5)").AsBool());
  EXPECT_TRUE(Eval("single(x IN [1,2,3] WHERE x = 2)").AsBool());
  EXPECT_FALSE(Eval("single(x IN [2,2] WHERE x = 2)").AsBool());
}

TEST_F(ExprExtraTest, QuantifierTernaryLogic) {
  EXPECT_TRUE(Eval("all(x IN [1, null] WHERE x > 0)").is_null());
  EXPECT_FALSE(Eval("all(x IN [-1, null] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("any(x IN [5, null] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("any(x IN [null] WHERE x > 0)").is_null());
  EXPECT_TRUE(Eval("all(x IN null WHERE x > 0)").is_null());
}

// ---- reduce ----------------------------------------------------------------------

TEST_F(ExprExtraTest, Reduce) {
  EXPECT_EQ(Eval("reduce(acc = 0, x IN [1,2,3] | acc + x)").AsInt(), 6);
  EXPECT_EQ(Eval("reduce(s = '', w IN ['a','b'] | s + w)").AsString(), "ab");
  EXPECT_EQ(Eval("reduce(acc = 10, x IN [] | acc + x)").AsInt(), 10);
  EXPECT_TRUE(Eval("reduce(acc = 0, x IN null | acc + x)").is_null());
}

TEST_F(ExprExtraTest, ReduceOverGraphData) {
  ASSERT_TRUE(db_.Run("CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})").ok());
  QueryResult r = RunOk(&db_,
                        "MATCH (n:N) WITH collect(n.v) AS vs "
                        "RETURN reduce(acc = 1, x IN vs | acc * x) AS prod");
  EXPECT_EQ(Scalar(r).AsInt(), 6);
}

// ---- Extended scalar functions -----------------------------------------------------

TEST_F(ExprExtraTest, StringFunctions) {
  EXPECT_EQ(Eval("substring('laptop', 3)").AsString(), "top");
  EXPECT_EQ(Eval("substring('laptop', 0, 3)").AsString(), "lap");
  EXPECT_EQ(Eval("substring('ab', 7)").AsString(), "");
  EXPECT_EQ(Eval("left('laptop', 3)").AsString(), "lap");
  EXPECT_EQ(Eval("right('laptop', 3)").AsString(), "top");
  EXPECT_EQ(Eval("replace('a-b-c', '-', '+')").AsString(), "a+b+c");
  EXPECT_EQ(Eval("split('a,b,,c', ',')").ToString(),
            "['a', 'b', '', 'c']");
  EXPECT_EQ(Eval("trim('  x ')").AsString(), "x");
  EXPECT_EQ(Eval("ltrim('  x ')").AsString(), "x ");
  EXPECT_EQ(Eval("rtrim('  x ')").AsString(), "  x");
  EXPECT_TRUE(Eval("substring(null, 1)").is_null());
}

TEST_F(ExprExtraTest, NumericFunctions) {
  EXPECT_EQ(Eval("floor(2.7)").AsFloat(), 2.0);
  EXPECT_EQ(Eval("ceil(2.1)").AsFloat(), 3.0);
  EXPECT_EQ(Eval("round(2.5)").AsFloat(), 3.0);
  EXPECT_EQ(Eval("sqrt(16)").AsFloat(), 4.0);
  EXPECT_EQ(Eval("sign(-9)").AsInt(), -1);
  EXPECT_EQ(Eval("sign(0)").AsInt(), 0);
  EXPECT_FALSE(db_.Execute("RETURN sqrt(-1) AS v").ok());
}

TEST_F(ExprExtraTest, TailFunction) {
  EXPECT_EQ(Eval("tail([1,2,3])").ToString(), "[2, 3]");
  EXPECT_EQ(Eval("tail([])").ToString(), "[]");
}

// ---- In real queries ----------------------------------------------------------------

TEST_F(ExprExtraTest, QuantifierInWhere) {
  ASSERT_TRUE(db_.Run("CREATE (:Cart {items: [1, 2, 3]}), "
                      "(:Cart {items: [4, 5]})")
                  .ok());
  QueryResult r = RunOk(&db_,
                        "MATCH (c:Cart) "
                        "WHERE any(i IN c.items WHERE i >= 5) "
                        "RETURN size(c.items) AS n");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ExprExtraTest, ComprehensionOverPathNodes) {
  ASSERT_TRUE(db_.Run("CREATE (:S {v: 1})-[:T]->(:S {v: 2})-[:T]->(:S {v: 3})")
                  .ok());
  QueryResult r = RunOk(&db_,
                        "MATCH p = (:S {v: 1})-[:T*2]->(:S) "
                        "RETURN [n IN nodes(p) | n.v] AS vs");
  EXPECT_EQ(Scalar(r).ToString(), "[1, 2, 3]");
}

// ---- Round trip through the printer ---------------------------------------------------

class ExtraRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtraRoundTripTest, Stable) {
  auto e1 = ParseExpression(GetParam());
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  std::string printed = ToCypher(**e1);
  auto e2 = ParseExpression(printed);
  ASSERT_TRUE(e2.ok()) << printed;
  EXPECT_EQ(ToCypher(**e2), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, ExtraRoundTripTest,
    ::testing::Values("[x IN [1, 2] WHERE x > 1 | x * 2]",
                      "[x IN list]",
                      "all(x IN xs WHERE x > 0)",
                      "single(y IN ys WHERE y = 1)",
                      "reduce(acc = 0, x IN xs | acc + x)",
                      "reduce(s = '', w IN words | s + w)"));

}  // namespace
}  // namespace cypher
