// SET and REMOVE executor tests across both semantics modes.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

EvalOptions Legacy() {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  return o;
}

class SetTest : public ::testing::TestWithParam<SemanticsMode> {
 protected:
  SetTest() {
    db_.options().semantics = GetParam();
    EXPECT_TRUE(db_.Run("CREATE (:User {id: 1, name: 'ann'}), "
                        "(:User {id: 2, name: 'bob'})")
                    .ok());
  }
  GraphDatabase db_;
};

// Behaviours where legacy and revised agree.
INSTANTIATE_TEST_SUITE_P(BothModes, SetTest,
                         ::testing::Values(SemanticsMode::kLegacy,
                                           SemanticsMode::kRevised),
                         [](const auto& info) {
                           return info.param == SemanticsMode::kLegacy
                                      ? "Legacy"
                                      : "Revised";
                         });

TEST_P(SetTest, SetPropertyOnMatchedNodes) {
  QueryResult r = RunOk(&db_, "MATCH (u:User) SET u.age = u.id * 10");
  EXPECT_EQ(r.stats.properties_set, 2u);
  EXPECT_EQ(Scalar(RunOk(&db_,
                         "MATCH (u:User {id: 2}) RETURN u.age AS a"))
                .AsInt(),
            20);
}

TEST_P(SetTest, SetNullRemovesProperty) {
  RunOk(&db_, "MATCH (u:User {id: 1}) SET u.name = null");
  QueryResult r =
      RunOk(&db_, "MATCH (u:User {id: 1}) RETURN size(keys(u)) AS k");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST_P(SetTest, SetOnNullIsNoOp) {
  QueryResult r = RunOk(&db_,
                        "OPTIONAL MATCH (m:Missing) SET m.x = 1");
  EXPECT_EQ(r.stats.properties_set, 0u);
}

TEST_P(SetTest, SetLabels) {
  QueryResult r = RunOk(&db_, "MATCH (u:User {id: 1}) SET u:Admin:Active");
  EXPECT_EQ(r.stats.labels_added, 2u);
  EXPECT_EQ(Scalar(RunOk(&db_, "MATCH (u:Admin:Active) RETURN count(*) AS c"))
                .AsInt(),
            1);
}

TEST_P(SetTest, ReplaceProperties) {
  RunOk(&db_, "MATCH (u:User {id: 1}) SET u = {fresh: true}");
  QueryResult r = RunOk(&db_, "MATCH (u:User) WHERE u.fresh "
                              "RETURN size(keys(u)) AS k");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
}

TEST_P(SetTest, MergeProperties) {
  RunOk(&db_, "MATCH (u:User {id: 1}) SET u += {name: 'anna', extra: 1}");
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User {id: 1}) "
                        "RETURN u.name AS n, u.extra AS e, u.id AS id");
  EXPECT_EQ(r.rows[0][0].AsString(), "anna");
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_EQ(r.rows[0][2].AsInt(), 1);
}

TEST_P(SetTest, CopyPropertiesFromEntity) {
  RunOk(&db_, "MATCH (a:User {id: 1}), (b:User {id: 2}) SET a = b");
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) WHERE u.name = 'bob' "
                        "RETURN count(*) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
}

TEST_P(SetTest, SetOnRelationship) {
  RunOk(&db_, "MATCH (a:User {id: 1}), (b:User {id: 2}) "
              "CREATE (a)-[:KNOWS]->(b)");
  RunOk(&db_, "MATCH ()-[k:KNOWS]->() SET k.since = 2019");
  EXPECT_EQ(Scalar(RunOk(&db_,
                         "MATCH ()-[k:KNOWS]->() RETURN k.since AS s"))
                .AsInt(),
            2019);
}

TEST_P(SetTest, SetOnNonEntityErrors) {
  EXPECT_EQ(RunErr(&db_, "UNWIND [1] AS x SET x.y = 1").code(),
            StatusCode::kExecutionError);
}

TEST_P(SetTest, LabelsOnRelationshipErrors) {
  RunOk(&db_, "MATCH (a:User {id: 1}), (b:User {id: 2}) "
              "CREATE (a)-[:KNOWS]->(b)");
  EXPECT_FALSE(db_.Execute("MATCH ()-[k:KNOWS]->() SET k:Label").ok());
}

TEST_P(SetTest, RemoveProperty) {
  QueryResult r = RunOk(&db_, "MATCH (u:User) REMOVE u.name");
  EXPECT_EQ(r.stats.properties_set, 2u);
  EXPECT_EQ(Scalar(RunOk(&db_,
                         "MATCH (u:User) WHERE u.name IS NULL "
                         "RETURN count(*) AS c"))
                .AsInt(),
            2);
}

TEST_P(SetTest, RemoveLabel) {
  RunOk(&db_, "MATCH (u:User {id: 1}) SET u:Admin");
  QueryResult r = RunOk(&db_, "MATCH (u:Admin) REMOVE u:Admin:User");
  EXPECT_EQ(r.stats.labels_removed, 2u);
  EXPECT_EQ(Scalar(RunOk(&db_, "MATCH (u:User) RETURN count(*) AS c"))
                .AsInt(),
            1);
}

TEST_P(SetTest, RemoveMissingIsNoOp) {
  QueryResult r = RunOk(&db_, "MATCH (u:User) REMOVE u.ghost, u:Ghost");
  EXPECT_EQ(r.stats.properties_set, 0u);
  EXPECT_EQ(r.stats.labels_removed, 0u);
}

// ---- Mode-specific behaviour -------------------------------------------------

TEST(SetModesTest, RevisedReadsInputGraphAcrossRecords) {
  // A chain rotation: n1.v <- n2.v <- n3.v <- n1.v, only correct when all
  // reads see the input graph.
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (a:N {id: 1, v: 'A'}), (b:N {id: 2, v: 'B'}), "
                     "(c:N {id: 3, v: 'C'}), "
                     "(a)-[:NEXT]->(b), (b)-[:NEXT]->(c), (c)-[:NEXT]->(a)")
                  .ok());
  RunOk(&db, "MATCH (x:N)-[:NEXT]->(y:N) SET x.v = y.v");
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN n.v AS v ORDER BY n.id");
  EXPECT_EQ(r.rows[0][0].AsString(), "B");
  EXPECT_EQ(r.rows[1][0].AsString(), "C");
  EXPECT_EQ(r.rows[2][0].AsString(), "A");
}

TEST(SetModesTest, LegacyChainRotationCorrupts) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (a:N {id: 1, v: 'A'}), (b:N {id: 2, v: 'B'}), "
                     "(c:N {id: 3, v: 'C'}), "
                     "(a)-[:NEXT]->(b), (b)-[:NEXT]->(c), (c)-[:NEXT]->(a)")
                  .ok());
  RunOk(&db, "MATCH (x:N)-[:NEXT]->(y:N) SET x.v = y.v");
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN n.v AS v ORDER BY n.id");
  // Record order (a), (b), (c): a:=B, b:=C, then c:=a.v which is ALREADY B,
  // not the input 'A' — the legacy read-own-writes corruption.
  EXPECT_EQ(r.rows[0][0].AsString(), "B");
  EXPECT_EQ(r.rows[1][0].AsString(), "C");
  EXPECT_EQ(r.rows[2][0].AsString(), "B");
}

TEST(SetModesTest, RevisedConflictWithDifferentTypes) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:T), (:S {v: 1}), (:S {v: 'one'})").ok());
  Status st = RunErr(&db, "MATCH (t:T), (s:S) SET t.x = s.v");
  EXPECT_NE(st.message().find("conflicting SET"), std::string::npos);
}

TEST(SetModesTest, RevisedConflictingReplaceMapsError) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:T), (:S {v: 1}), (:S {v: 2})").ok());
  EXPECT_FALSE(db.Execute("MATCH (t:T), (s:S) SET t = {copy: s.v}").ok());
  // Identical maps are fine.
  ASSERT_TRUE(db.Run("CREATE (:R {v: 5}), (:R {v: 5})").ok());
  EXPECT_TRUE(db.Execute("MATCH (t:T), (r:R) SET t = {copy: r.v}").ok());
}

TEST(SetModesTest, FailedSetRollsBackEverything) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:T), (:S {v: 1}), (:S {v: 2})").ok());
  // CREATE succeeds, then SET conflicts: the whole statement must roll back.
  EXPECT_FALSE(
      db.Execute("MATCH (s:S) CREATE (:Log) WITH s MATCH (t:T) "
                 "SET t.x = s.v")
          .ok());
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (l:Log) RETURN count(*) AS c")).AsInt(),
            0);
}

TEST(SetModesTest, LegacySetOnZombieIsSilentNoOp) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1})").ok());
  QueryResult r = RunOk(&db, "MATCH (n:N) DELETE n SET n.id = 99");
  EXPECT_EQ(r.stats.properties_set, 0u);
  EXPECT_EQ(r.stats.nodes_deleted, 1u);
}

}  // namespace
}  // namespace cypher
