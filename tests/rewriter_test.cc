// Unit tests for the rewrite-rule engine itself: rules fire on canonical
// inputs, applicability gates hold (order-perturbing rules stay off when
// row order is observable, synthesis stays off when `*` projections or
// `_rw` names could leak it), and every produced variant re-parses. The
// end-to-end equivalence claims are checked by differential_test.cc.

#include "rewriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "parser/parser.h"
#include "query_gen.h"

namespace cypher::testing {
namespace {

std::vector<std::string> RuleNamesFor(const std::string& query) {
  std::vector<std::string> names;
  for (const RewriteVariant& v : GenerateRewrites(query)) {
    names.push_back(v.rule);
  }
  return names;
}

bool Has(const std::vector<std::string>& names, const std::string& rule) {
  return std::find(names.begin(), names.end(), rule) != names.end();
}

bool HasChain(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    if (name.rfind("chain(", 0) == 0) return true;
  }
  return false;
}

TEST(RewriterTest, RuleRegistryIsStable) {
  const std::vector<std::string>& names = RewriteRuleNames();
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(Has(names, "conjunct-rotate"));
  EXPECT_TRUE(Has(names, "match-split"));
  EXPECT_TRUE(Has(names, "reverse-match-pattern"));
  EXPECT_TRUE(Has(names, "reverse-create-pattern"));
  EXPECT_TRUE(Has(names, "map-to-where"));
  EXPECT_TRUE(Has(names, "where-to-map"));
  EXPECT_TRUE(Has(names, "where-to-with-where"));
  EXPECT_TRUE(Has(names, "with-star-insert"));
  EXPECT_TRUE(Has(names, "bool-commute"));
  EXPECT_TRUE(Has(names, "merge-conditional-create"));
}

TEST(RewriterTest, ReadQueryFiresFilterAndPatternRules) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH (a:A {k: 1})-[r:R]->(b) WHERE b.w = 2 AND a.w = 0 "
      "RETURN a.id AS a, b.id AS b");
  EXPECT_TRUE(Has(names, "reverse-match-pattern"));
  EXPECT_TRUE(Has(names, "map-to-where"));
  EXPECT_TRUE(Has(names, "where-to-map"));
  EXPECT_TRUE(Has(names, "where-to-with-where"));
  EXPECT_TRUE(Has(names, "with-star-insert"));
  EXPECT_TRUE(Has(names, "bool-commute"));
  EXPECT_TRUE(HasChain(names));
}

TEST(RewriterTest, ConjunctionFiresRotateAndSplit) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH (a:A), (b:B) WHERE a.id < b.id RETURN count(*) AS c");
  EXPECT_TRUE(Has(names, "conjunct-rotate"));
  EXPECT_TRUE(Has(names, "match-split"));
}

TEST(RewriterTest, BoundEndpointCreateReverses) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH (a {id: 1}), (b {id: 2}) CREATE (a)-[:R {c: 3}]->(b)");
  EXPECT_TRUE(Has(names, "reverse-create-pattern"));
  // The CREATE drives off a two-pattern product, so row order reaches an
  // id-allocating clause: order-perturbing rules must stay off.
  EXPECT_FALSE(Has(names, "conjunct-rotate"));
  EXPECT_FALSE(Has(names, "match-split"));
}

TEST(RewriterTest, UnboundEndpointCreateDoesNotReverse) {
  // `b` is created by the pattern itself, not bound upstream.
  const std::vector<std::string> names =
      RuleNamesFor("MATCH (a {id: 1}) CREATE (a)-[:R]->(b:New)");
  EXPECT_FALSE(Has(names, "reverse-create-pattern"));
}

TEST(RewriterTest, RevisedMergeBecomesConditionalCreate) {
  const std::vector<RewriteVariant> variants =
      GenerateRewrites("MERGE SAME (m:M {mid: 2, grp: 1})");
  bool found = false;
  for (const RewriteVariant& v : variants) {
    if (v.rule != "merge-conditional-create") continue;
    found = true;
    EXPECT_TRUE(v.revised_only);
    EXPECT_NE(v.query.find("OPTIONAL MATCH"), std::string::npos) << v.query;
    EXPECT_NE(v.query.find("IS NULL"), std::string::npos) << v.query;
    EXPECT_NE(v.query.find("CREATE"), std::string::npos) << v.query;
  }
  EXPECT_TRUE(found);
}

TEST(RewriterTest, LegacyMergeIsNotRewritten) {
  // Bare MERGE reads its own writes record-at-a-time (legacy semantics);
  // the conditional-CREATE equivalence only holds for the revised forms.
  EXPECT_FALSE(Has(RuleNamesFor("MERGE (m:M {mid: 2})"),
                   "merge-conditional-create"));
}

TEST(RewriterTest, CollectGatesOrderPerturbingRules) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH (a:A), (b:B) RETURN collect(a.id) AS xs, count(b) AS c");
  EXPECT_FALSE(Has(names, "conjunct-rotate"));
  EXPECT_FALSE(Has(names, "match-split"));
  // Exact-order-preserving rules still apply.
  EXPECT_TRUE(Has(names, "with-star-insert"));
}

TEST(RewriterTest, LimitGatesOrderPerturbingRules) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH (a:A), (b:B) RETURN a.id AS a, b.id AS b ORDER BY a, b LIMIT 3");
  // LIMIT selects rows by position; ORDER BY ties make that order-
  // sensitive, so rotation/splitting must not fire.
  EXPECT_FALSE(Has(names, "conjunct-rotate"));
  EXPECT_FALSE(Has(names, "match-split"));
}

TEST(RewriterTest, StarProjectionDisablesSynthesis) {
  // Naming the anonymous node would leak a `_rw0` column through `RETURN *`.
  const std::vector<std::string> names =
      RuleNamesFor("MATCH (a:A), ({k: 1}) RETURN *");
  EXPECT_FALSE(Has(names, "map-to-where"));
  EXPECT_TRUE(Has(names, "conjunct-rotate"));
}

TEST(RewriterTest, ExistingRwPrefixDisablesSynthesis) {
  const std::vector<std::string> names =
      RuleNamesFor("MATCH (_rw0:A), ({k: 1}) RETURN count(*) AS c");
  EXPECT_FALSE(Has(names, "map-to-where"));
}

TEST(RewriterTest, OptionalMatchIsNotSplitOrWithFiltered) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH (a:A) OPTIONAL MATCH (b:B) WHERE b.k = 1 "
      "RETURN a.id AS a, b.id AS b");
  // OPTIONAL MATCH's WHERE participates in the match-or-null decision;
  // hoisting it behind the padding would turn null rows into dropped rows.
  EXPECT_FALSE(Has(names, "where-to-with-where"));
  EXPECT_FALSE(Has(names, "match-split"));
}

TEST(RewriterTest, NamedPathBlocksReversal) {
  const std::vector<std::string> names = RuleNamesFor(
      "MATCH p = (a:A)-[:R]->(b) RETURN length(p) AS l");
  EXPECT_FALSE(Has(names, "reverse-match-pattern"));
}

TEST(RewriterTest, UnparsableAndUnionInputsYieldNothing) {
  EXPECT_TRUE(GenerateRewrites("MATCH (a RETURN").empty());
  EXPECT_TRUE(GenerateRewrites(
                  "MATCH (a:A) RETURN a.id AS i UNION MATCH (b:B) "
                  "RETURN b.id AS i")
                  .empty());
}

TEST(RewriterTest, AllVariantsReparse) {
  // Every variant is printed from a rewritten AST; it must survive the
  // parser round trip. Sweep the same generators the fuzzer uses.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    for (const std::string& query :
         {GenerateReadQuery(seed), GenerateUpdateQuery(seed)}) {
      for (const RewriteVariant& v : GenerateRewrites(query)) {
        auto reparsed = ParseQuery(v.query);
        EXPECT_TRUE(reparsed.ok())
            << "rule " << v.rule << " on seed " << seed << "\n  seed query: "
            << query << "\n  variant:    " << v.query << "\n  error: "
            << reparsed.status().ToString();
      }
    }
  }
}

}  // namespace
}  // namespace cypher::testing
