#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

TEST(ForeachTest, CreatesPerElement) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "FOREACH (x IN [1, 2, 3] | CREATE (:N {v: x}))");
  EXPECT_EQ(r.stats.nodes_created, 3u);
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (n:N) RETURN sum(n.v) AS s")).AsInt(), 6);
}

TEST(ForeachTest, RangeDrivenBulkLoad) {
  GraphDatabase db;
  RunOk(&db, "FOREACH (i IN range(1, 50) | CREATE (:Item {id: i}))");
  EXPECT_EQ(db.graph().num_nodes(), 50u);
}

TEST(ForeachTest, SeesOuterVariables) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:Hub {name: 'h'})").ok());
  RunOk(&db,
        "MATCH (h:Hub) "
        "FOREACH (x IN [1, 2] | CREATE (h)-[:SPOKE]->(:Leaf {v: x}))");
  EXPECT_EQ(Scalar(RunOk(&db,
                         "MATCH (:Hub)-[:SPOKE]->(l) RETURN count(l) AS c"))
                .AsInt(),
            2);
}

TEST(ForeachTest, VariableScopeEndsAtForeach) {
  GraphDatabase db;
  EXPECT_FALSE(db.Execute("FOREACH (x IN [1] | CREATE (:N)) RETURN x").ok());
}

TEST(ForeachTest, NullListIsNoOp) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "FOREACH (x IN null | CREATE (:N))");
  EXPECT_EQ(r.stats.nodes_created, 0u);
}

TEST(ForeachTest, NonListErrors) {
  GraphDatabase db;
  EXPECT_EQ(RunErr(&db, "FOREACH (x IN 42 | CREATE (:N))").code(),
            StatusCode::kExecutionError);
}

TEST(ForeachTest, NestedForeach) {
  GraphDatabase db;
  QueryResult r = RunOk(
      &db,
      "FOREACH (i IN [1, 2] | FOREACH (j IN [1, 2, 3] | "
      "CREATE (:N {i: i, j: j})))");
  EXPECT_EQ(r.stats.nodes_created, 6u);
}

TEST(ForeachTest, UpdatesPerRecord) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1, c: 0}), (:N {id: 2, c: 0})").ok());
  RunOk(&db, "MATCH (n:N) FOREACH (x IN [1, 2, 3] | SET n.c = n.c + x)");
  // Legacy-style accumulation inside FOREACH (per element, immediate in
  // scratch scope): each node gets 1+2+3.
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN sum(n.c) AS s");
  EXPECT_EQ(Scalar(r).AsInt(), 12);
}

TEST(ForeachTest, DeleteInsideForeach) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {id: 1}), (:N {id: 2})").ok());
  RunOk(&db,
        "MATCH (n:N) WITH collect(n) AS ns "
        "FOREACH (x IN ns | DETACH DELETE x)");
  EXPECT_EQ(db.graph().num_nodes(), 0u);
}

TEST(ForeachTest, MergeInsideForeach) {
  GraphDatabase db;
  QueryResult r = RunOk(
      &db, "FOREACH (x IN [1, 1, 2] | MERGE ALL (:N {v: x}))");
  // Each element is its own clause invocation; MERGE ALL matches the graph
  // state left by previous elements (clause-level atomicity, element-level
  // sequencing).
  EXPECT_EQ(r.stats.nodes_created, 2u);
}

TEST(ForeachTest, ErrorInsideBodyRollsBackStatement) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:Seed)").ok());
  EXPECT_FALSE(
      db.Execute("FOREACH (x IN [1, 0] | CREATE (:N {v: 1 / x}))").ok());
  EXPECT_EQ(db.graph().num_nodes(), 1u);  // no :N survived
}

}  // namespace
}  // namespace cypher
