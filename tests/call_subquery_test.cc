// CALL { ... } subquery tests: correlation, row joining, side-effect-only
// form, aggregation-per-row, and error handling.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

class CallSubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE (a:User {id: 1}), (b:User {id: 2}), "
                        "(p:Product {id: 10, price: 5}), "
                        "(q:Product {id: 11, price: 9}), "
                        "(a)-[:ORDERED]->(p), (a)-[:ORDERED]->(q), "
                        "(b)-[:ORDERED]->(q)")
                    .ok());
  }
  GraphDatabase db_;
};

TEST_F(CallSubqueryTest, PerRowAggregation) {
  // The classic use: an aggregate scoped per outer row.
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) "
                        "CALL { MATCH (u)-[:ORDERED]->(p) "
                        "RETURN sum(p.price) AS spent } "
                        "RETURN u.id AS id, spent ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 14);
  EXPECT_EQ(r.rows[1][1].AsInt(), 9);
}

TEST_F(CallSubqueryTest, RowMultiplication) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User {id: 1}) "
                        "CALL { UNWIND [1, 2, 3] AS x RETURN x } "
                        "RETURN u.id AS id, x");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(CallSubqueryTest, EmptySubqueryResultDropsRow) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) "
                        "CALL { MATCH (u)-[:ORDERED]->(p {price: 5}) "
                        "RETURN p.id AS pid } "
                        "RETURN u.id AS id, pid");
  // Only user 1 ordered the price-5 product.
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(CallSubqueryTest, SideEffectOnlyFormKeepsRows) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) "
                        "CALL { CREATE (:Audit {who: u.id}) } "
                        "RETURN count(u) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
  EXPECT_EQ(r.stats.nodes_created, 2u);
  QueryResult audits =
      RunOk(&db_, "MATCH (a:Audit) RETURN count(a) AS c");
  EXPECT_EQ(Scalar(audits).AsInt(), 2);
}

TEST_F(CallSubqueryTest, AliasCollisionRejected) {
  Status st = RunErr(&db_,
                     "MATCH (u:User) CALL { RETURN 1 AS u } RETURN u");
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
}

TEST_F(CallSubqueryTest, InnerReturnMustBeLast) {
  EXPECT_FALSE(
      db_.Execute("CALL { RETURN 1 AS x MATCH (n) } RETURN x").ok());
}

TEST_F(CallSubqueryTest, EmptyBodyRejected) {
  EXPECT_FALSE(db_.Execute("CALL { } RETURN 1 AS x").ok());
}

TEST_F(CallSubqueryTest, NestedSubqueries) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User {id: 1}) "
                        "CALL { CALL { RETURN 5 AS inner } "
                        "RETURN inner * 2 AS doubled } "
                        "RETURN u.id AS id, doubled");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 10);
}

TEST_F(CallSubqueryTest, UpdatesInsideSubqueryAreAtomicWithStatement) {
  EXPECT_FALSE(db_.Execute("MATCH (u:User) "
                           "CALL { CREATE (:Tmp {v: u.id}) } "
                           "WITH u RETURN u.id / 0")
                   .ok());
  QueryResult r = RunOk(&db_, "MATCH (t:Tmp) RETURN count(t) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 0);
}

TEST_F(CallSubqueryTest, SubqueryOverEmptyOuterTable) {
  QueryResult r = RunOk(&db_,
                        "MATCH (m:Missing) "
                        "CALL { RETURN 1 AS x } RETURN m, x");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(CallSubqueryTest, WorksBeforeUpdateClauses) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) "
                        "CALL { MATCH (u)-[:ORDERED]->(p) "
                        "RETURN count(p) AS orders } "
                        "SET u.orders = orders "
                        "RETURN u.id AS id, u.orders AS o ORDER BY id");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[1][1].AsInt(), 1);
}

}  // namespace
}  // namespace cypher
