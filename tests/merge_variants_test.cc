// Systematic tests of the Section 6 variant engine: for each scenario, the
// expected (nodes, rels) counts per variant, exercised as a parameterized
// sweep. This encodes the variant lattice the paper's Figures 6-9 sample.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "value/compare.h"

#include "graph/isomorphism.h"
#include "test_util.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;

constexpr MergeVariant kAllVariants[] = {
    MergeVariant::kAtomic, MergeVariant::kGrouping,
    MergeVariant::kWeakCollapse, MergeVariant::kCollapse,
    MergeVariant::kStrongCollapse};

struct Scenario {
  const char* name;
  const char* setup;        // may be empty
  const char* query;        // uses plain MERGE; $rows may be referenced
  Value rows;               // null -> no parameter
  // expected (nodes_created, rels_created) per variant, in kAllVariants
  // order: Atomic, Grouping, Weak, Collapse, Strong.
  std::array<std::pair<int, int>, 5> expected;
};

class VariantSweepTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(VariantSweepTest, CreationCountsMatch) {
  const Scenario& s = GetParam();
  for (size_t i = 0; i < 5; ++i) {
    EvalOptions options;
    options.plain_merge_variant = kAllVariants[i];
    GraphDatabase db(options);
    if (*s.setup != '\0') {
      ASSERT_TRUE(db.Run(s.setup).ok());
    }
    ValueMap params;
    if (!s.rows.is_null()) params.emplace("rows", s.rows);
    auto result = db.Execute(s.query, params);
    ASSERT_TRUE(result.ok())
        << s.name << " / " << MergeVariantName(kAllVariants[i]) << ": "
        << result.status().ToString();
    EXPECT_EQ(result->stats.nodes_created,
              static_cast<uint64_t>(s.expected[i].first))
        << s.name << " nodes under " << MergeVariantName(kAllVariants[i]);
    EXPECT_EQ(result->stats.rels_created,
              static_cast<uint64_t>(s.expected[i].second))
        << s.name << " rels under " << MergeVariantName(kAllVariants[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, VariantSweepTest,
    ::testing::Values(
        // Example 5 / Figure 7: 12/6, 8/4, 4/4, 4/4, 4/4.
        Scenario{"example5",
                 "",
                 "UNWIND $rows AS row "
                 "WITH row.cid AS cid, row.pid AS pid, row.date AS date "
                 "MERGE (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
                 workload::Example5Rows(),
                 {{{12, 6}, {8, 4}, {4, 4}, {4, 4}, {4, 4}}}},
        // Example 6 / Figure 8: cross-position node collapse.
        Scenario{"example6",
                 "",
                 "UNWIND $rows AS row "
                 "WITH row.bid AS bid, row.pid AS pid, row.sid AS sid "
                 "MERGE (:User {id: bid})-[:ORDERED]->(:Product {id: pid})"
                 "<-[:OFFERS]-(:User {id: sid})",
                 workload::Example6Rows(),
                 {{{6, 4}, {6, 4}, {6, 4}, {5, 4}, {5, 4}}}},
        // Two identical records, single node pattern: everything but
        // Atomic collapses/groups them.
        Scenario{"identical_records",
                 "",
                 "UNWIND [1, 1] AS x MERGE (:N {v: x})",
                 Value(),
                 {{{2, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}}}},
        // Same node value at two positions of one pattern: only
        // cross-position variants unify them.
        Scenario{"two_positions",
                 "",
                 "UNWIND [1] AS x MERGE (:N {v: x})-[:T]->(:N {v: x})",
                 Value(),
                 {{{2, 1}, {2, 1}, {2, 1}, {1, 1}, {1, 1}}}},
        // Parallel identical rels at different positions (Example 7 shape,
        // miniature): strong collapse merges the rels.
        Scenario{"parallel_rels",
                 "CREATE (:P {k: 1}), (:P {k: 2})",
                 "MATCH (a:P {k: 1}), (b:P {k: 2}), (c:P {k: 1}), "
                 "(d:P {k: 2}) "
                 "MERGE (a)-[:TO]->(b)-[:BACK]->(c)-[:TO]->(d)",
                 Value(),
                 {{{0, 3}, {0, 3}, {0, 3}, {0, 3}, {0, 2}}}},
        // Differing properties prevent collapse everywhere.
        Scenario{"distinct_props",
                 "",
                 "UNWIND [1, 2] AS x MERGE (:N {v: x})",
                 Value(),
                 {{{2, 0}, {2, 0}, {2, 0}, {2, 0}, {2, 0}}}},
        // Labels differ -> no collapse even with equal properties.
        Scenario{"distinct_labels",
                 "",
                 "UNWIND [1] AS x MERGE (:A {v: x})-[:T]->(:B {v: x})",
                 Value(),
                 {{{2, 1}, {2, 1}, {2, 1}, {2, 1}, {2, 1}}}},
        // Null-keyed records group together (Example 5's nulls).
        Scenario{"null_grouping",
                 "",
                 "UNWIND [null, null] AS x MERGE (:N {v: x})",
                 Value(),
                 {{{2, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}}}},
        // Grouping keys include extra record columns only via pattern
        // expressions: the unused column y must not split groups.
        Scenario{"irrelevant_columns",
                 "",
                 "UNWIND [1, 2] AS y WITH 7 AS v, y MERGE (:N {id: v})",
                 Value(),
                 {{{2, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}}}}),
    [](const auto& info) { return std::string(info.param.name); });

// ---- Bound-variable interaction -------------------------------------------------

TEST(VariantBoundVarTest, BoundVariablesSplitGroups) {
  // Same property values but different bound endpoints must not group.
  for (MergeVariant variant : kAllVariants) {
    EvalOptions options;
    options.plain_merge_variant = variant;
    GraphDatabase db(options);
    ASSERT_TRUE(db.Run("CREATE (:U {k: 1}), (:U {k: 2})").ok());
    QueryResult r = RunOk(&db, "MATCH (u:U) MERGE (u)-[:T]->(:V {v: 9})");
    EXPECT_EQ(r.stats.rels_created, 2u) << MergeVariantName(variant);
    // Weak+: the two :V{v:9} nodes are newly created at the same position
    // and identical, so they collapse into one; Atomic/Grouping keep two.
    bool collapses = variant != MergeVariant::kAtomic &&
                     variant != MergeVariant::kGrouping;
    EXPECT_EQ(r.stats.nodes_created, collapses ? 1u : 2u)
        << MergeVariantName(variant);
  }
}

TEST(VariantBoundVarTest, ExistingEndpointsKeepIdentity) {
  // Definition 2: rels collapse only when (collapsed) endpoints agree;
  // distinct existing endpoints block rel collapse.
  EvalOptions options;
  options.plain_merge_variant = MergeVariant::kStrongCollapse;
  GraphDatabase db(options);
  ASSERT_TRUE(db.Run("CREATE (:U {k: 1}), (:U {k: 2}), (:W {k: 9})").ok());
  QueryResult r = RunOk(&db, "MATCH (u:U), (w:W) MERGE (u)-[:T]->(w)");
  EXPECT_EQ(r.stats.rels_created, 2u);
}

TEST(VariantBoundVarTest, SameExistingEndpointCollapsesRels) {
  EvalOptions options;
  options.plain_merge_variant = MergeVariant::kStrongCollapse;
  GraphDatabase db(options);
  ASSERT_TRUE(db.Run("CREATE (:U {k: 1}), (:W {k: 9})").ok());
  // Two records, same endpoints after matching: rel created once.
  QueryResult r = RunOk(
      &db, "UNWIND [1, 2] AS i MATCH (u:U), (w:W) MERGE (u)-[:T]->(w)");
  EXPECT_EQ(r.stats.rels_created, 1u);
}

// ---- Output table shape -----------------------------------------------------------

TEST(VariantOutputTest, FailedRecordsBindCollapsedEntities) {
  EvalOptions options;
  options.plain_merge_variant = MergeVariant::kStrongCollapse;
  GraphDatabase db(options);
  QueryResult r = RunOk(&db,
                        "UNWIND [1, 1, 1] AS x "
                        "MERGE (n:N {v: x}) RETURN id(n) AS i");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(GroupEquals(r.rows[0][0], r.rows[1][0]));
  EXPECT_TRUE(GroupEquals(r.rows[1][0], r.rows[2][0]));
}

TEST(VariantOutputTest, MatchedAndCreatedRowsCoexist) {
  EvalOptions options;
  options.plain_merge_variant = MergeVariant::kAtomic;
  GraphDatabase db(options);
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})").ok());
  QueryResult r = RunOk(&db,
                        "UNWIND [1, 2] AS x MERGE (n:N {v: x}) "
                        "RETURN n.v AS v ORDER BY v");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

// ---- Determinism property: all variants ignore record order ----------------------

class VariantDeterminismTest : public ::testing::TestWithParam<MergeVariant> {};

TEST_P(VariantDeterminismTest, ShuffleInvariant) {
  std::set<uint64_t> fingerprints;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    EvalOptions options;
    options.plain_merge_variant = GetParam();
    options.scan_order = ScanOrder::kShuffle;
    options.shuffle_seed = seed;
    GraphDatabase db(options);
    auto result =
        db.Execute(workload::Example5Query("MERGE"),
                    {{"rows", workload::RandomOrderRows(40, 5, 5, 200, 99)}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    fingerprints.insert(GraphFingerprint(db.graph()));
  }
  EXPECT_EQ(fingerprints.size(), 1u) << MergeVariantName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantDeterminismTest,
                         ::testing::ValuesIn(kAllVariants),
                         [](const auto& info) {
                           std::string name = MergeVariantName(info.param);
                           name.erase(
                               std::remove(name.begin(), name.end(), ' '),
                               name.end());
                           return name;
                         });

// ---- Monotonicity property: variants form a collapse lattice ---------------------

TEST(VariantLatticeTest, CreationCountsDecreaseAlongTheLattice) {
  // On arbitrary inputs: Atomic >= Grouping >= Weak >= Collapse >= Strong
  // in created node count, and likewise for relationships.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Value rows = workload::RandomOrderRows(60, 6, 6, 150, seed);
    std::array<uint64_t, 5> nodes{};
    std::array<uint64_t, 5> rels{};
    for (size_t i = 0; i < 5; ++i) {
      EvalOptions options;
      options.plain_merge_variant = kAllVariants[i];
      GraphDatabase db(options);
      auto result =
          db.Execute(workload::Example5Query("MERGE"), {{"rows", rows}});
      ASSERT_TRUE(result.ok());
      nodes[i] = result->stats.nodes_created;
      rels[i] = result->stats.rels_created;
    }
    for (size_t i = 1; i < 5; ++i) {
      EXPECT_GE(nodes[i - 1], nodes[i]) << "seed " << seed << " step " << i;
      EXPECT_GE(rels[i - 1], rels[i]) << "seed " << seed << " step " << i;
    }
  }
}

}  // namespace
}  // namespace cypher
