#include "query_gen.h"

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace cypher::testing {
namespace {

std::string I(int64_t v) { return std::to_string(v); }

// Collects lifted literals into a parameter map. Fragments emit values via
// IL(sink, v): with a sink the literal becomes a fresh `$pN` reference and
// lands in the map; without one it renders inline. The sink never touches
// the RNG, so both modes consume randomness identically and a seed always
// yields the same statement *shape* either way — the property the
// parametrized-vs-inline differential oracle depends on.
struct ParamSink {
  ValueMap params;
  int counter = 0;

  std::string Add(int64_t v) {
    std::string name = "p" + std::to_string(counter++);
    params.emplace(name, Value::Int(v));
    return "$" + name;
  }
};

std::string IL(ParamSink* sink, int64_t v) {
  return sink != nullptr ? sink->Add(v) : I(v);
}

// ---------------------------------------------------------------------------
// Pattern fragments. Every fragment sticks to constructs the parser is known
// to accept (single and stacked labels, type alternatives, bounded hop
// windows) so a generated query can only fail for semantic reasons — and a
// semantic failure must then fail identically in every configuration.
// ---------------------------------------------------------------------------

std::string Labels(SplitMix64& rng) {
  switch (rng.NextBelow(6)) {
    case 0:
    case 1:
      return "";
    case 2:
    case 3:
      return ":A";
    case 4:
      return ":B";
    default:
      return ":A:B";
  }
}

std::string RelTypes(SplitMix64& rng) {
  switch (rng.NextBelow(4)) {
    case 0:
      return "";
    case 1:
      return ":R";
    case 2:
      return ":S";
    default:
      return ":R|S";
  }
}

// "(v:A {k: 3})" — labels and the property filter each appear with
// independent probability.
std::string NodePat(SplitMix64& rng, const std::string& var,
                    ParamSink* sink = nullptr) {
  std::string out = "(" + var + Labels(rng);
  if (rng.NextBelow(3) == 0) {
    out += " {k: " + IL(sink, static_cast<int64_t>(rng.NextBelow(13))) + "}";
  }
  out += ")";
  return out;
}

// Wraps a relationship body in one of the three directions.
std::string Arrow(SplitMix64& rng, const std::string& body) {
  switch (rng.NextBelow(3)) {
    case 0:
      return "-[" + body + "]->";
    case 1:
      return "<-[" + body + "]-";
    default:
      return "-[" + body + "]-";
  }
}

// Bounded hop window: trails on a cyclic graph explode combinatorially, so
// the generator never emits an unbounded upper bound outside shortestPath.
std::string VarSpec(SplitMix64& rng) {
  int64_t min = static_cast<int64_t>(rng.NextBelow(3));  // 0..2
  int64_t max =
      min + 1 + static_cast<int64_t>(rng.NextBelow(min < 2 ? 3 : 2));
  if (max > 4) max = 4;
  switch (rng.NextBelow(3)) {
    case 0:
      return "*" + I(min) + ".." + I(max);
    case 1:
      return "*.." + I(max);
    default:
      return "*1.." + I(max);
  }
}

// A WHERE predicate over an already-bound node variable.
std::string Predicate(SplitMix64& rng, const std::string& var,
                      ParamSink* sink = nullptr) {
  switch (rng.NextBelow(5)) {
    case 0:
      return var + ".k % " +
             IL(sink, 2 + static_cast<int64_t>(rng.NextBelow(4))) + " = " +
             IL(sink, static_cast<int64_t>(rng.NextBelow(3)));
    case 1:
      return var + ".k < " + IL(sink, static_cast<int64_t>(rng.NextBelow(13)));
    case 2:
      return var + ".k > " + IL(sink, static_cast<int64_t>(rng.NextBelow(13)));
    case 3:
      return var + ".w <> " + IL(sink, static_cast<int64_t>(rng.NextBelow(5)));
    default:
      return var + ".w = " + IL(sink, static_cast<int64_t>(rng.NextBelow(5)));
  }
}

std::string MaybeWhere(SplitMix64& rng, const std::string& var,
                       ParamSink* sink = nullptr) {
  switch (rng.NextBelow(3)) {
    case 0:
      return "";
    case 1:
      return " WHERE " + Predicate(rng, var, sink);
    default:
      return " WHERE " + Predicate(rng, var, sink) +
             (rng.NextBelow(2) == 0 ? " AND " : " OR ") +
             Predicate(rng, var, sink);
  }
}

// Paging tail for ordered row-producing queries.
std::string MaybePage(SplitMix64& rng, ParamSink* sink = nullptr) {
  switch (rng.NextBelow(4)) {
    case 0:
      return " SKIP " + IL(sink, static_cast<int64_t>(rng.NextBelow(4)));
    case 1:
      return " LIMIT " + IL(sink, 5 + static_cast<int64_t>(rng.NextBelow(20)));
    default:
      return "";
  }
}

// ---------------------------------------------------------------------------
// Statement bodies, shared by the inline and parametrized entry points.
// ---------------------------------------------------------------------------

std::string ReadQueryImpl(uint64_t seed, ParamSink* sink) {
  SplitMix64 rng(seed * 0xbf58476d1ce4e5b9ULL + 7);
  switch (rng.NextBelow(13)) {
    case 12:  // OPTIONAL MATCH expansion driven by a plain scan.
      return "MATCH " + NodePat(rng, "a", sink) + " OPTIONAL MATCH (a)" +
             Arrow(rng, "r" + RelTypes(rng)) + NodePat(rng, "b", sink) +
             " RETURN a.id AS a, r.c AS c, b.id AS b";
    case 0:  // Plain scan with projection and paging.
      return "MATCH " + NodePat(rng, "n", sink) + MaybeWhere(rng, "n", sink) +
             " RETURN n.id AS id, n.k AS k, n.w AS w ORDER BY id" +
             MaybePage(rng, sink);
    case 1:  // Scan aggregation, grouped by a derived key.
      return "MATCH " + NodePat(rng, "n", sink) + " WITH n.k % " +
             IL(sink, 2 + static_cast<int64_t>(rng.NextBelow(3))) +
             " AS g, n RETURN g, count(*) AS c, sum(n.w) AS s, min(n.id) AS "
             "lo, max(n.id) AS hi ORDER BY g";
    case 2:  // Single fixed hop.
      return "MATCH " + NodePat(rng, "a", sink) +
             Arrow(rng, "r" + RelTypes(rng)) + NodePat(rng, "b", sink) +
             MaybeWhere(rng, "a", sink) +
             " RETURN a.id AS a, r.c AS c, b.id AS b";
    case 3:  // Two-hop chain.
      return "MATCH " + NodePat(rng, "a", sink) + Arrow(rng, RelTypes(rng)) +
             "(b)" + Arrow(rng, RelTypes(rng)) + NodePat(rng, "c", sink) +
             MaybeWhere(rng, "b", sink) +
             " RETURN a.id AS a, b.id AS b, c.id AS c";
    case 4:  // Var-length rows; ascending-id emission order is under test,
             // so no ORDER BY — the table must match byte for byte anyway.
      return "MATCH " + NodePat(rng, "a", sink) +
             Arrow(rng, RelTypes(rng) + VarSpec(rng)) + NodePat(rng, "b", sink) +
             MaybeWhere(rng, "b", sink) + " RETURN a.id AS a, b.id AS b";
    case 5: {  // Named var-length path.
      std::string q = "MATCH p = " + NodePat(rng, "a", sink) +
                      Arrow(rng, RelTypes(rng) + VarSpec(rng)) + "(b)" +
                      MaybeWhere(rng, "a", sink);
      return q + " RETURN length(p) AS len, a.id AS a, b.id AS b" +
             MaybePage(rng, sink);
    }
    case 6:  // Var-length aggregation (collect exposes emission order).
      return "MATCH " + NodePat(rng, "a", sink) +
             Arrow(rng, RelTypes(rng) + VarSpec(rng)) + "(b)" +
             " RETURN count(*) AS c, min(b.id) AS lo, collect(b.k) AS ks";
    case 7: {  // shortestPath between two probed endpoints.
      const int64_t s = static_cast<int64_t>(rng.NextBelow(18));
      const int64_t t = s + 1 + static_cast<int64_t>(rng.NextBelow(4));
      return "MATCH (a {id: " + IL(sink, s) + "}), (b {id: " + IL(sink, t) +
             "}) MATCH p = shortestPath((a)" + Arrow(rng, RelTypes(rng) + "*") +
             "(b)) RETURN length(p) AS len, nodes(p) AS ns";
    }
    case 8: {  // OPTIONAL shortestPath with a hop window.
      const int64_t s = static_cast<int64_t>(rng.NextBelow(18));
      const int64_t t = s + 1 + static_cast<int64_t>(rng.NextBelow(4));
      return "MATCH (a {id: " + IL(sink, s) + "}), (b {id: " + IL(sink, t) +
             "}) OPTIONAL MATCH p = shortestPath((a)" +
             Arrow(rng, RelTypes(rng) + "*..4") +
             "(b)) RETURN a.id AS a, b.id AS b, length(p) AS len";
    }
    case 9: {  // allShortestPaths, aggregated per path length.
      const int64_t s = static_cast<int64_t>(rng.NextBelow(18));
      const int64_t t = s + 1 + static_cast<int64_t>(rng.NextBelow(4));
      return "MATCH (a {id: " + IL(sink, s) + "}), (b {id: " + IL(sink, t) +
             "}) MATCH p = allShortestPaths((a)" +
             Arrow(rng, RelTypes(rng) + "*") +
             "(b)) RETURN length(p) AS len, count(*) AS c";
    }
    case 10:  // Cartesian conjunction restricted by a join predicate.
      return "MATCH " + NodePat(rng, "a", sink) + ", " +
             NodePat(rng, "b", sink) +
             " WHERE a.id < b.id AND a.k = b.k RETURN count(*) AS c";
    default:  // UNWIND-driven probe with an optional var-length expansion.
      return "UNWIND range(0, " +
             IL(sink, 4 + static_cast<int64_t>(rng.NextBelow(8))) +
             ") AS x OPTIONAL MATCH (n {k: x})" +
             Arrow(rng, RelTypes(rng) + "*1..2") + "(m)" +
             " RETURN x, count(m) AS c, min(m.id) AS lo ORDER BY x";
  }
}

std::string UpdateQueryImpl(uint64_t seed, ParamSink* sink) {
  SplitMix64 rng(seed * 0x94d049bb133111ebULL + 13);
  // Probe ids stay inside the BuildRandomGraph id range (0..55); deleted
  // nodes simply make some probes match nothing, which must still commit.
  const int64_t id = static_cast<int64_t>(rng.NextBelow(56));
  const int64_t id2 = static_cast<int64_t>(rng.NextBelow(56));
  const int64_t k = static_cast<int64_t>(rng.NextBelow(13));
  const int64_t v = static_cast<int64_t>(rng.NextBelow(100));
  switch (rng.NextBelow(18)) {
    case 14:  // OPTIONAL MATCH-driven SET; a deleted probe target leaves n
              // null and the SET is skipped, so the statement still commits.
      return "OPTIONAL MATCH (n {id: " + IL(sink, id) +
             "}) SET n.tag = " + IL(sink, v);
    case 15:  // OPTIONAL MATCH-driven delete of a possibly-absent node.
      return "OPTIONAL MATCH (n:New {id: " + IL(sink, 1000 + v) +
             "}) DETACH DELETE n";
    case 16:  // MERGE with a multi-key property-map literal.
      return rng.NextBelow(2) == 0
                 ? "MERGE SAME (m:M {mid: " +
                       IL(sink, static_cast<int64_t>(rng.NextBelow(6))) +
                       ", grp: " + IL(sink, k % 3) + "})"
                 : "MERGE ALL (:C {v: " +
                       IL(sink, static_cast<int64_t>(rng.NextBelow(4))) +
                       ", grp: " + IL(sink, k % 3) + "})";
    case 17:  // FOREACH with a nested MERGE body.
      return "FOREACH (x IN range(0, " +
             IL(sink, 1 + static_cast<int64_t>(rng.NextBelow(3))) +
             ") | MERGE SAME (:F2 {fx: x}))";
    case 0:  // Fresh node; ids above the seed range keep {id} probes unique.
      return "CREATE (:A:New {id: " + IL(sink, 1000 + v) +
             ", k: " + IL(sink, k) + "})";
    case 1:  // Fresh relationship between two probed endpoints.
      return "MATCH (a {id: " + IL(sink, id) + "}), (b {id: " + IL(sink, id2) +
             "}) CREATE (a)-[:R {c: " + IL(sink, k) + "}]->(b)";
    case 2:  // Single-property SET across a k-cohort.
      return "MATCH (n {k: " + IL(sink, k) + "}) SET n.w = " + IL(sink, v);
    case 3:  // Whole-map replacement on one node.
      return "MATCH (n {id: " + IL(sink, id) + "}) SET n = {id: " +
             IL(sink, id) + ", k: " + IL(sink, k) + ", w: " + IL(sink, v % 5) +
             "}";
    case 4:  // Additive map merge.
      return "MATCH (n {id: " + IL(sink, id) + "}) SET n += {tag: " +
             IL(sink, v) + "}";
    case 5:  // Label add.
      return "MATCH (n {id: " + IL(sink, id) + "}) SET n:B:Hot";
    case 6:  // Property removal across a cohort.
      return "MATCH (n {k: " + IL(sink, k) + "}) REMOVE n.w";
    case 7:  // Label removal.
      return "MATCH (n {id: " + IL(sink, id) + "}) REMOVE n:Hot";
    case 8:  // Relationship deletion by property probe.
      return "MATCH ()-[r:" + std::string(rng.NextBelow(2) == 0 ? "R" : "S") +
             " {c: " + IL(sink, static_cast<int64_t>(rng.NextBelow(7))) +
             "}]->() DELETE r";
    case 9:  // Node deletion with its incident relationships.
      return "MATCH (n {id: " + IL(sink, id) + "}) DETACH DELETE n";
    case 10:  // MERGE SAME: match-or-create one node (works in both
              // semantics; bare MERGE is legacy-only).
      return "MERGE SAME (m:M {mid: " +
             IL(sink, static_cast<int64_t>(rng.NextBelow(6))) + "})";
    case 11:  // MERGE ALL over a probed cohort.
      return "MERGE ALL (:C {v: " +
             IL(sink, static_cast<int64_t>(rng.NextBelow(4))) + "})";
    case 12:  // FOREACH creating a small batch.
      return "FOREACH (x IN range(0, " +
             IL(sink, 1 + static_cast<int64_t>(rng.NextBelow(3))) +
             ") | CREATE (:F {fx: x, run: " + IL(sink, v) + "}))";
    default:  // FOREACH mutating matched rows.
      return "MATCH (n {k: " + IL(sink, k) +
             "}) FOREACH (x IN [1, 2] | SET n.w = x)";
  }
}

}  // namespace

Status BuildRandomGraph(GraphDatabase* db, uint64_t seed) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const int64_t num_nodes = 20 + static_cast<int64_t>(rng.NextBelow(37));

  // All nodes in one CREATE so ids are assigned in a single dense run.
  std::string create = "CREATE ";
  for (int64_t i = 0; i < num_nodes; ++i) {
    if (i > 0) create += ", ";
    std::string labels;
    switch (rng.NextBelow(5)) {
      case 0:
      case 1:
        labels = ":A";
        break;
      case 2:
      case 3:
        labels = ":B";
        break;
      default:
        labels = ":A:B";
        break;
    }
    create += "(" + labels + " {id: " + I(i) +
              ", k: " + I(static_cast<int64_t>(rng.NextBelow(13))) +
              ", w: " + I(static_cast<int64_t>(rng.NextBelow(5))) + "})";
  }
  CYPHER_RETURN_NOT_OK(db->Run(create));

  // ~1.5x edge density keeps bounded trail enumeration tractable while still
  // producing cycles, self-loops and parallel edges.
  const int64_t num_rels =
      num_nodes + static_cast<int64_t>(rng.NextBelow(num_nodes));
  for (int64_t r = 0; r < num_rels; ++r) {
    const int64_t src = static_cast<int64_t>(rng.NextBelow(num_nodes));
    const int64_t dst = static_cast<int64_t>(rng.NextBelow(num_nodes));
    const char* type = rng.NextBelow(5) < 3 ? "R" : "S";
    CYPHER_RETURN_NOT_OK(
        db->Run("MATCH (a {id: " + I(src) + "}), (b {id: " + I(dst) +
                "}) CREATE (a)-[:" + std::string(type) +
                " {c: " + I(static_cast<int64_t>(rng.NextBelow(7))) +
                "}]->(b)"));
  }

  // Leave tombstones behind so node/relationship scans skip deleted slots.
  CYPHER_RETURN_NOT_OK(db->Run("MATCH ()-[r:S {c: 0}]->() DELETE r"));
  CYPHER_RETURN_NOT_OK(db->Run("MATCH (n {k: 12}) DETACH DELETE n"));
  CYPHER_RETURN_NOT_OK(
      db->Run("MATCH (n {id: " +
              I(static_cast<int64_t>(rng.NextBelow(num_nodes))) +
              "}) DETACH DELETE n"));
  return Status::OK();
}

std::string GenerateReadQuery(uint64_t seed) {
  return ReadQueryImpl(seed, nullptr);
}

std::string GenerateUpdateQuery(uint64_t seed) {
  return UpdateQueryImpl(seed, nullptr);
}

GeneratedQuery GenerateReadQueryWithParams(uint64_t seed) {
  ParamSink sink;
  GeneratedQuery out;
  out.text = ReadQueryImpl(seed, &sink);
  out.params = std::move(sink.params);
  return out;
}

GeneratedQuery GenerateUpdateQueryWithParams(uint64_t seed) {
  ParamSink sink;
  GeneratedQuery out;
  out.text = UpdateQueryImpl(seed, &sink);
  out.params = std::move(sink.params);
  return out;
}

std::vector<std::string> GenerateUpdateWorkload(uint64_t seed, size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(GenerateUpdateQuery(seed * 977 + i));
  }
  return out;
}

}  // namespace cypher::testing
