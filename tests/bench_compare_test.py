#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py using canned result files.

Run as `bench_compare_test.py <repo_root>`; registered in ctest so the
bench regression gate itself is under test: a clean or improved run must
exit 0, a regression beyond the threshold must exit non-zero, and
benchmarks present in only one file must never fail the comparison.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = None  # set from argv before unittest.main()


def run_compare(base, new, *extra_args):
    """Writes the two dicts to temp files and runs bench_compare.py."""
    script = os.path.join(REPO_ROOT, "tools", "bench_compare.py")
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        new_path = os.path.join(tmp, "new.json")
        for path, doc in ((base_path, base), (new_path, new)):
            with open(path, "w") as f:
                if isinstance(doc, str):
                    f.write(doc)
                else:
                    json.dump(doc, f)
        return subprocess.run(
            [sys.executable, script, base_path, new_path, *extra_args],
            capture_output=True,
            text=True,
        )


class BenchCompareTest(unittest.TestCase):
    def test_identical_results_pass(self):
        doc = {"BM_ParallelScan/4096/8": 1200.0, "BM_VarLengthWalk": 88000.0}
        proc = run_compare(doc, doc)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("0 regression(s)", proc.stdout)

    def test_improvement_passes(self):
        base = {"BM_ParallelVarLength/8": 100000.0}
        new = {"BM_ParallelVarLength/8": 42000.0}
        proc = run_compare(base, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_regression_fails(self):
        base = {"BM_ParallelBFS/8": 50000.0, "BM_ParallelScan/8": 1000.0}
        new = {"BM_ParallelBFS/8": 90000.0, "BM_ParallelScan/8": 1000.0}
        proc = run_compare(base, new)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("worst: BM_ParallelBFS/8", proc.stdout)

    def test_threshold_is_respected(self):
        base = {"BM_TwoHop": 1000.0}
        new = {"BM_TwoHop": 1150.0}  # 15% slower
        self.assertEqual(run_compare(base, new).returncode, 1)
        self.assertEqual(
            run_compare(base, new, "--threshold", "0.2").returncode, 0
        )

    def test_disjoint_benchmarks_never_fail(self):
        base = {"BM_Retired": 500.0}
        new = {"BM_Brand/new": 999999.0}
        proc = run_compare(base, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("(new)", proc.stdout)
        self.assertIn("(removed)", proc.stdout)

    def test_zero_baseline_to_zero_is_not_a_regression(self):
        base = {"BM_Noop": 0}
        new = {"BM_Noop": 0}
        self.assertEqual(run_compare(base, new).returncode, 0)

    def test_zero_baseline_to_nonzero_fails(self):
        base = {"BM_Noop": 0}
        new = {"BM_Noop": 10.0}
        self.assertEqual(run_compare(base, new).returncode, 1)

    def test_malformed_input_rejected(self):
        proc = run_compare({"ok": 1.0}, '{"bad": "strings"}')
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("not a flat", proc.stderr + proc.stdout)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit("usage: bench_compare_test.py <repo_root>")
    REPO_ROOT = os.path.abspath(sys.argv.pop(1))
    unittest.main()
