// EXPLAIN / PROFILE statement tests.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;

std::string Cell(const QueryResult& r, size_t row, size_t col) {
  return r.rows[row][col].is_string() ? r.rows[row][col].AsString()
                                      : r.rows[row][col].ToString();
}

TEST(ExplainTest, DescribesClausesWithoutExecuting) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "EXPLAIN CREATE (:N {v: 1}) "
                        "WITH 1 AS one MATCH (n:N) RETURN n");
  // Nothing was executed.
  EXPECT_EQ(db.graph().num_nodes(), 0u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"step", "clause", "details"}));
  ASSERT_GE(r.rows.size(), 6u);  // 4 clauses + semantics + tier lines
  EXPECT_EQ(Cell(r, 0, 1), "CREATE");
  EXPECT_EQ(Cell(r, 2, 1), "MATCH");
  EXPECT_EQ(Cell(r, r.rows.size() - 2, 1), "SEMANTICS");
  // The trailing TIER row reports where the statement would execute and how
  // the plan cache would treat it.
  EXPECT_EQ(Cell(r, r.rows.size() - 1, 1), "TIER");
  EXPECT_NE(Cell(r, r.rows.size() - 1, 2).find("vm"), std::string::npos);
  EXPECT_NE(Cell(r, r.rows.size() - 1, 2).find("plan cache"),
            std::string::npos);
}

TEST(ExplainTest, ReportsAccessPath) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  QueryResult indexed = RunOk(&db, "EXPLAIN MATCH (u:User {id: 1}) RETURN u");
  EXPECT_NE(Cell(indexed, 0, 2).find("index: :User(id)"), std::string::npos);
  QueryResult label = RunOk(&db, "EXPLAIN MATCH (u:User {name: 'x'}) RETURN u");
  EXPECT_NE(Cell(label, 0, 2).find("scan: label :User"), std::string::npos);
  QueryResult full = RunOk(&db, "EXPLAIN MATCH (u) RETURN u");
  EXPECT_NE(Cell(full, 0, 2).find("scan: all nodes"), std::string::npos);
}

TEST(ExplainTest, ReportsSemanticsMode) {
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  GraphDatabase db(legacy);
  QueryResult r = RunOk(&db, "EXPLAIN MATCH (n) RETURN n");
  EXPECT_NE(Cell(r, r.rows.size() - 2, 2).find("legacy"), std::string::npos);
}

TEST(ExplainTest, TierRowTracksCacheDisposition) {
  GraphDatabase db;
  // Cold: the shape is not cached yet.
  QueryResult cold = RunOk(&db, "EXPLAIN MATCH (n {v: 1}) RETURN n");
  EXPECT_NE(Cell(cold, cold.rows.size() - 1, 2).find("miss"),
            std::string::npos);
  // Execute the statement for real, then EXPLAIN again: hit.
  ASSERT_TRUE(db.Run("MATCH (n {v: 1}) RETURN n").ok());
  QueryResult warm = RunOk(&db, "EXPLAIN MATCH (n {v: 1}) RETURN n");
  EXPECT_NE(Cell(warm, warm.rows.size() - 1, 2).find("hit"),
            std::string::npos);
  // A different literal normalizes to the same shape — still a hit.
  QueryResult sibling = RunOk(&db, "EXPLAIN MATCH (n {v: 42}) RETURN n");
  EXPECT_NE(Cell(sibling, sibling.rows.size() - 1, 2).find("hit"),
            std::string::npos);
  // DDL never enters the cache.
  QueryResult ddl = RunOk(&db, "EXPLAIN CREATE INDEX ON :User(id)");
  EXPECT_NE(Cell(ddl, ddl.rows.size() - 1, 2).find("uncacheable"),
            std::string::npos);
  EXPECT_NE(Cell(ddl, ddl.rows.size() - 1, 2).find("interpreter"),
            std::string::npos);
  // With the cache disabled, statements run on the interpreter.
  db.options().use_plan_cache = false;
  QueryResult off = RunOk(&db, "EXPLAIN MATCH (n) RETURN n");
  EXPECT_NE(Cell(off, off.rows.size() - 1, 2).find("interpreter"),
            std::string::npos);
  EXPECT_NE(Cell(off, off.rows.size() - 1, 2).find("disabled"),
            std::string::npos);
}

TEST(ExplainTest, UnionBranchesListed) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "EXPLAIN RETURN 1 AS x UNION ALL RETURN 2 AS x");
  bool found_union = false;
  for (const auto& row : r.rows) {
    if (row[1].AsString() == "UNION ALL") found_union = true;
  }
  EXPECT_TRUE(found_union);
}

TEST(ProfileTest, ReportsCardinalitiesAndCommits) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})").ok());
  QueryResult r = RunOk(&db,
                        "PROFILE MATCH (n:N) WHERE n.v > 1 "
                        "SET n.seen = true RETURN n.v AS v");
  EXPECT_EQ(r.columns,
            (std::vector<std::string>{"step", "clause", "rows_out"}));
  ASSERT_EQ(r.rows.size(), 3u);  // MATCH, SET, RETURN
  EXPECT_EQ(r.rows[0][2].AsInt(), 2);  // MATCH+WHERE output
  EXPECT_EQ(r.rows[2][2].AsInt(), 2);
  // PROFILE executes: the SET committed.
  QueryResult check = RunOk(&db,
                            "MATCH (n:N) WHERE n.seen RETURN count(n) AS c");
  EXPECT_EQ(check.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.stats.properties_set, 2u);
}

TEST(ProfileTest, FailingProfileRollsBack) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 0})").ok());
  EXPECT_FALSE(db.Execute("PROFILE MATCH (n:N) SET n.w = 1 "
                          "WITH n RETURN 1 / n.v")
                   .ok());
  QueryResult r = RunOk(&db, "MATCH (n:N) RETURN n.w AS w");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

}  // namespace
}  // namespace cypher
