// Tests keyed directly to the definitional equations of Section 8 ("the
// formal semantics of updates"): clause composition, the MERGE ALL
// equation with its bag-semantics multiplicities, the collapsibility
// relations of Definitions 1-2, and the graph-table pair threading.

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "value/compare.h"
#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::GraphFromScript;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

// [[C S]](G, T) = [[S]]([[C]](G, T)) — composition is left to right; a
// later clause sees the graph and table produced by the earlier one.
TEST(CompositionTest, ClausesComposeLeftToRight) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "CREATE (a:N {v: 1}) "     // (G1, T1)
                        "SET a.v = a.v + 1 "       // reads G1
                        "CREATE (b:N {v: a.v}) "   // reads G2
                        "RETURN a.v AS av, b.v AS bv");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

// output(Q, G) = [[Q]](G, T()) — evaluation starts from the unit table:
// a query with no reading clause still runs exactly once.
TEST(CompositionTest, EvaluationStartsFromUnitTable) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "CREATE (:N) RETURN 1 AS one");
  EXPECT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

// Read-only clauses satisfy [[C]](G, T) = (G, [[C]]^ro_G(T)): the graph is
// untouched.
TEST(CompositionTest, ReadOnlyClausesDoNotTouchTheGraph) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:N {v: 1})-[:T]->(:N {v: 2})").ok());
  uint64_t before = GraphFingerprint(db.graph());
  RunOk(&db,
        "MATCH (a)-[t:T]->(b) WHERE a.v < b.v "
        "WITH a, b UNWIND [1, 2] AS x "
        "RETURN DISTINCT a.v + b.v + x AS s ORDER BY s");
  EXPECT_EQ(GraphFingerprint(db.graph()), before);
}

// ---- The MERGE ALL equation -------------------------------------------------
//
// [[MERGE ALL pi]](G, T) = (G_create, T_match ⊎ T_create) where
//   (G, T_match)       = [[MATCH pi]](G, T)
//   T_fail             = {{ u in T | [[MATCH pi]](G, {{u}}) = {} }}
//   (G_create, T_create) = [[CREATE pi]](G, T_fail)

class MergeAllEquationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One :X{v:1} node with TWO matching self-descriptions so T_match gets
    // multiplicity > 1 per matched record, plus records that fail.
    ASSERT_TRUE(db_.Run("CREATE (:X {v: 1}), (:X {v: 1})").ok());
  }
  GraphDatabase db_;
};

TEST_F(MergeAllEquationTest, OutputIsBagUnionOfMatchAndCreate) {
  // T = {{ v=1, v=1, v=2 }} (bag with a duplicate record).
  // For v=1: MATCH (x:X{v:1}) has 2 matches -> each of the two v=1 records
  // contributes 2 rows to T_match (4 rows total).
  // For v=2: no match -> T_fail = {{ v=2 }} -> CREATE adds 1 row.
  QueryResult r = RunOk(&db_,
                        "UNWIND [1, 1, 2] AS v "
                        "MERGE ALL (x:X {v: v}) "
                        "RETURN v, id(x) AS node");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.stats.nodes_created, 1u);
}

TEST_F(MergeAllEquationTest, TFailKeepsMultiplicities) {
  // "u occurs as many times in T_fail as in T": two identical failing
  // records create two instances under Atomic semantics.
  QueryResult r = RunOk(&db_,
                        "UNWIND [7, 7] AS v MERGE ALL (x:X {v: v}) "
                        "RETURN id(x) AS node");
  EXPECT_EQ(r.stats.nodes_created, 2u);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_FALSE(GroupEquals(r.rows[0][0], r.rows[1][0]));
}

TEST_F(MergeAllEquationTest, MatchPhaseUsesOriginalGraphOnly) {
  // The v=2 record's creation must NOT be matchable by the second v=2
  // record (no reading of own writes).
  QueryResult r = RunOk(&db_,
                        "UNWIND [2, 2] AS v MERGE ALL (x:X {v: v}) "
                        "RETURN count(*) AS c");
  EXPECT_EQ(r.stats.nodes_created, 2u);
}

// ---- Definition 1: node collapsibility ----------------------------------------

TEST(Definition1Test, RequiresEqualLabels) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "UNWIND [1] AS v "
                        "MERGE SAME (:A {k: v})-[:T]->(:B {k: v})");
  EXPECT_EQ(r.stats.nodes_created, 2u);  // different labels: no collapse
}

TEST(Definition1Test, RequiresEqualPropertyMapsOnEveryKey) {
  GraphDatabase db;
  // Same k but one node carries an extra key: iota differs on that key.
  QueryResult r = RunOk(&db,
                        "UNWIND [1] AS v "
                        "MERGE SAME (:A {k: v})-[:T]->(:A {k: v, extra: 1})");
  EXPECT_EQ(r.stats.nodes_created, 2u);
}

TEST(Definition1Test, CollapsesEqualNewNodes) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "UNWIND [1] AS v "
                        "MERGE SAME (:A {k: v})-[:T]->(:A {k: v})");
  EXPECT_EQ(r.stats.nodes_created, 1u);  // self-loop created
  QueryResult loop = RunOk(&db, "MATCH (a)-[:T]->(a) RETURN count(*) AS c");
  EXPECT_EQ(Scalar(loop).AsInt(), 1);
}

TEST(Definition1Test, ExistingNodesOnlyCollapsibleWithThemselves) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:A {k: 1}), (:A {k: 1})").ok());
  // Both existing duplicates stay; merging an identical pattern matches
  // (two ways) and creates nothing, never unifies pre-existing nodes.
  QueryResult r = RunOk(&db, "UNWIND [1] AS v MERGE SAME (a:A {k: v}) "
                             "RETURN count(a) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 2);
  EXPECT_EQ(db.graph().num_nodes(), 2u);
}

// ---- Definition 2: relationship collapsibility ---------------------------------

TEST(Definition2Test, RequiresSameTypeAndProps) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:P {k: 1}), (:P {k: 2})").ok());
  QueryResult r = RunOk(&db,
                        "MATCH (a:P {k: 1}), (b:P {k: 2}) "
                        "MERGE SAME (a)-[:T {w: 1}]->(b)-[:T {w: 2}]->(a)");
  EXPECT_EQ(r.stats.rels_created, 2u);  // different props
  GraphDatabase db2;
  ASSERT_TRUE(db2.Run("CREATE (:P {k: 1}), (:P {k: 2})").ok());
  QueryResult r2 = RunOk(&db2,
                         "MATCH (a:P {k: 1}), (b:P {k: 2}) "
                         "MERGE SAME (a)-[:T {w: 1}]->(b), "
                         "(a)-[:T {w: 1}]->(b)");
  EXPECT_EQ(r2.stats.rels_created, 1u);  // identical: collapsed
}

TEST(Definition2Test, EndpointEquivalenceIsPostNodeCollapse) {
  // The endpoints differ as vnodes but collapse to the same node; the two
  // relationships then collapse too (src ~ src', tgt ~ tgt').
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "UNWIND [1] AS v "
                        "MERGE SAME (:A {k: v})-[:T]->(:B {k: v}), "
                        "(:A {k: v})-[:T]->(:B {k: v})");
  EXPECT_EQ(r.stats.nodes_created, 2u);
  EXPECT_EQ(r.stats.rels_created, 1u);
}

// T'' replaces every occurrence of x by [x]: records that created collapsed
// nodes must be rebound to the representative.
TEST(Definition2Test, TableRewrittenToRepresentatives) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "UNWIND [1, 1] AS v MERGE SAME (x:A {k: v}) "
                        "RETURN id(x) AS node");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(GroupEquals(r.rows[0][0], r.rows[1][0]));
}

// ---- Union side-effect threading (Section 8, composition of clauses) -----------

TEST(UnionSemanticsTest, GraphThreadsLeftToRightTablesUnion) {
  GraphDatabase db;
  QueryResult r = RunOk(&db,
                        "CREATE (:N {v: 1}) WITH 1 AS one "
                        "MATCH (n:N) RETURN count(n) AS c "
                        "UNION ALL "
                        "CREATE (:N {v: 2}) WITH 1 AS one "
                        "MATCH (n:N) RETURN count(n) AS c");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);  // first branch saw its own node
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);  // second saw both
}

}  // namespace
}  // namespace cypher
