// Query watchdog: cooperative cancellation through CancelToken. An expired
// deadline or an explicit Cancel() must unwind the interpreter, the
// matcher's sequential walks and the parallel morsel loops with the right
// status code, and a cancelled update statement must roll back completely.
// The concurrent sections double as the TSan target for the cancellation
// paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "query_gen.h"
#include "test_util.h"

namespace cypher {
namespace {

using testing::BuildRandomGraph;
using testing::GenerateReadQuery;

// A var-length pattern over the random graph: enough expansion work that
// every engine layer (scan, fixed step, BFS/DFS walk) runs.
constexpr char kExpensiveQuery[] =
    "MATCH (a)-[:R|S*1..4]-(b) RETURN count(*) AS c";

CancelToken ExpiredDeadline() {
  return CancelToken::WithDeadline(std::chrono::steady_clock::now() -
                                   std::chrono::seconds(1));
}

TEST(Watchdog, InactiveTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.active());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();  // no-op on an inactive token
  EXPECT_TRUE(token.Check().ok());
}

TEST(Watchdog, TokenCodes) {
  CancelToken cancellable = CancelToken::Cancellable();
  EXPECT_TRUE(cancellable.Check().ok());
  cancellable.Cancel();
  EXPECT_EQ(cancellable.Check().code(), StatusCode::kAborted);

  CancelToken expired = ExpiredDeadline();
  EXPECT_EQ(expired.Check().code(), StatusCode::kDeadlineExceeded);
  // The deadline latch is sticky: copies see the same verdict.
  CancelToken copy = expired;
  EXPECT_EQ(copy.Check().code(), StatusCode::kDeadlineExceeded);

  CancelToken future =
      CancelToken::WithTimeout(std::chrono::hours(1));
  EXPECT_TRUE(future.Check().ok());
}

TEST(Watchdog, GateChecksFirstCall) {
  // The gate must forward the very first Check so an already-expired
  // deadline cancels before any work happens.
  CancelToken expired = ExpiredDeadline();
  CancelGate gate(&expired);
  EXPECT_EQ(gate.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(Watchdog, ExpiredDeadlineCancelsSequentialMatch) {
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 21).ok());
  std::string before = DumpGraph(db.graph());
  db.options().cancel = ExpiredDeadline();
  auto result = db.Execute(kExpensiveQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(DumpGraph(db.graph()), before);
  // A fresh token clears the watchdog; the same query then succeeds.
  db.options().cancel = CancelToken();
  EXPECT_TRUE(db.Run(kExpensiveQuery).ok());
}

TEST(Watchdog, ExpiredDeadlineCancelsParallelMatch) {
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 22).ok());
  db.options().parallel_workers = 4;
  db.options().parallel_min_cost = 1;  // force the parallel path on
  db.options().parallel_morsel_size = 4;
  std::string before = DumpGraph(db.graph());
  db.options().cancel = ExpiredDeadline();
  auto result = db.Execute(kExpensiveQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(DumpGraph(db.graph()), before);
}

TEST(Watchdog, ExplicitCancelIsAborted) {
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 23).ok());
  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  db.options().cancel = token;
  auto result = db.Execute(kExpensiveQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

TEST(Watchdog, CancelledUpdateRollsBack) {
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 24).ok());
  std::string before = DumpGraph(db.graph());
  db.options().cancel = ExpiredDeadline();
  // The CREATE would touch every (a, b) pair; cancellation must leave no
  // trace of any partial execution.
  auto result = db.Execute(
      "MATCH (a:A), (b:B) WHERE a.k = b.k CREATE (a)-[:LINK]->(b)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(DumpGraph(db.graph()), before);
}

TEST(Watchdog, TightDeadlineEventuallyFires) {
  // A deadline that expires mid-flight (not before the first poll): run
  // with ever-tighter budgets until one trips inside the walk. Whatever
  // the timing, the only legal outcomes are success or kDeadlineExceeded.
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 25).ok());
  std::string before = DumpGraph(db.graph());
  bool tripped = false;
  for (int micros : {2000, 500, 100, 20, 5, 1, 0}) {
    db.options().cancel =
        CancelToken::WithTimeout(std::chrono::microseconds(micros));
    auto result = db.Execute(kExpensiveQuery);
    if (result.ok()) continue;
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(DumpGraph(db.graph()), before);
    tripped = true;
  }
  EXPECT_TRUE(tripped) << "even a zero-budget deadline never fired";
}

// Cancellation stress: one thread keeps cancelling mid-flight while the
// main thread executes queries. Exercises the cross-thread token handoff
// the TSan job watches; results are checked for status sanity only.
TEST(Watchdog, ConcurrentCancelStress) {
  GraphDatabase db;
  ASSERT_TRUE(BuildRandomGraph(&db, 26).ok());
  db.options().parallel_workers = 4;
  db.options().parallel_min_cost = 1;
  db.options().parallel_morsel_size = 4;
  std::string before = DumpGraph(db.graph());

  for (int round = 0; round < 30; ++round) {
    CancelToken token = CancelToken::Cancellable();
    db.options().cancel = token;
    std::atomic<bool> started{false};
    std::thread canceller([&]() {
      while (!started.load(std::memory_order_acquire)) {
      }
      // Stagger the cancel across rounds so it lands at different points
      // of the walk: immediately, or after a short busy wait.
      for (int spin = 0; spin < round * 997; ++spin) {
        std::atomic_signal_fence(std::memory_order_seq_cst);
      }
      token.Cancel();
    });
    started.store(true, std::memory_order_release);
    auto result = db.Execute(kExpensiveQuery);
    canceller.join();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kAborted)
          << result.status().ToString();
    }
    EXPECT_EQ(DumpGraph(db.graph()), before) << "round " << round;
  }
}

// Read queries of every generator shape run unperturbed under an armed but
// never-fired watchdog: polling must not change results.
TEST(Watchdog, ArmedWatchdogDoesNotPerturbResults) {
  GraphDatabase plain, watched;
  ASSERT_TRUE(BuildRandomGraph(&plain, 27).ok());
  ASSERT_TRUE(BuildRandomGraph(&watched, 27).ok());
  watched.options().cancel = CancelToken::WithTimeout(std::chrono::hours(1));
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::string q = GenerateReadQuery(seed);
    auto want = plain.Execute(q);
    auto got = watched.Execute(q);
    ASSERT_EQ(want.ok(), got.ok()) << q;
    if (!want.ok()) continue;
    EXPECT_EQ(RenderResult(watched.graph(), *got),
              RenderResult(plain.graph(), *want))
        << q;
  }
}

}  // namespace
}  // namespace cypher
