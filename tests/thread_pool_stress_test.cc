// Shutdown and nested-submission stress for ThreadPool. These tests exist
// to give TSan real interleavings to chew on: repeated pool teardown,
// concurrent root jobs from independent threads, and nested Run calls
// racing against each other on the shared open-job list.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace cypher {
namespace {

TEST(ThreadPoolStressTest, RepeatedCreateRunDestroy) {
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<size_t> total{0};
    {
      ThreadPool pool(4);
      pool.Run(16, 4, [&](size_t) { total.fetch_add(1); });
      pool.Run(1, 4, [&](size_t) { total.fetch_add(1); });
      // Destructor must park and join helpers that may still be waking up.
    }
    EXPECT_EQ(total.load(), 17u);
  }
}

TEST(ThreadPoolStressTest, DestroyWithoutEverRunning) {
  for (int iter = 0; iter < 100; ++iter) {
    ThreadPool pool(8);  // no threads spawned yet; teardown of an idle pool
  }
}

TEST(ThreadPoolStressTest, ConcurrentRootJobs) {
  ThreadPool pool(4);
  constexpr size_t kSubmitters = 4;
  constexpr size_t kRounds = 100;
  constexpr size_t kTasks = 8;
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (size_t r = 0; r < kRounds; ++r) {
        pool.Run(kTasks, 3, [&](size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kRounds * kTasks);
}

TEST(ThreadPoolStressTest, NestedSubmitExactlyOnce) {
  ThreadPool pool(8);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 8;
  for (int iter = 0; iter < 20; ++iter) {
    // One slot per (outer, inner) pair: exactly-once, not just a sum.
    std::vector<std::atomic<int>> slots(kOuter * kInner);
    for (auto& s : slots) s.store(0);
    pool.Run(kOuter, 8, [&](size_t outer) {
      pool.Run(kInner, 4, [&](size_t inner) {
        slots[outer * kInner + inner].fetch_add(1);
      });
    });
    for (size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i].load(), 1) << "slot " << i << " iter " << iter;
    }
  }
}

TEST(ThreadPoolStressTest, NestedJobsUnderConcurrentSubmitters) {
  ThreadPool pool(6);
  constexpr size_t kSubmitters = 3;
  constexpr size_t kRounds = 20;
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (size_t r = 0; r < kRounds; ++r) {
        pool.Run(4, 4, [&](size_t) {
          pool.Run(4, 2, [&](size_t) {
            pool.Run(2, 2, [&](size_t) { total.fetch_add(1); });
          });
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kRounds * 4 * 4 * 2);
}

TEST(ThreadPoolStressTest, SharedPoolSurvivesHammering) {
  // The process-wide pool is what the executor actually uses; hammer it
  // from several threads with mixed flat and nested jobs.
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (size_t r = 0; r < 50; ++r) {
        if ((s + r) % 2 == 0) {
          ThreadPool::Shared().Run(8, 4, [&](size_t) { total.fetch_add(1); });
        } else {
          ThreadPool::Shared().Run(2, 2, [&](size_t) {
            ThreadPool::Shared().Run(4, 2,
                                     [&](size_t) { total.fetch_add(1); });
          });
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4u * 50u / 2u * 8u + 4u * 50u / 2u * 2u * 4u);
}

}  // namespace
}  // namespace cypher
