// Morsel-driven parallel read execution: thread-pool scheduling, anchor
// morsel partitioning, transient hash anchors, and — the load-bearing
// property — byte-identical output across every worker/morsel
// configuration, including aggregation and the revised MERGE match phase.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "exec/parallel.h"
#include "match/matcher.h"
#include "parser/parser.h"
#include "test_util.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  std::vector<int> counts(997, 0);  // distinct slots: no synchronization needed
  ThreadPool::Shared().Run(counts.size(), 8,
                           [&](size_t task) { counts[task]++; });
  for (int c : counts) ASSERT_EQ(c, 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  std::vector<int> counts(64, 0);
  ThreadPool::Shared().Run(counts.size(), 1,
                           [&](size_t task) { counts[task]++; });
  for (int c : counts) ASSERT_EQ(c, 1);
}

TEST(ThreadPoolTest, ReusableAcrossRegions) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    ThreadPool::Shared().Run(100, 4, [&](size_t task) { sum += task; });
    ASSERT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, NestedRunExecutesEveryTask) {
  // Nested Run from inside a task submits a real inner job (parked helpers
  // may adopt it; the submitting task always participates): every inner
  // task still runs exactly once per outer task.
  std::atomic<size_t> total{0};
  ThreadPool::Shared().Run(4, 4, [&](size_t) {
    ThreadPool::Shared().Run(8, 4, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPoolTest, DeeplyNestedRunCompletes) {
  std::atomic<size_t> total{0};
  ThreadPool::Shared().Run(2, 4, [&](size_t) {
    ThreadPool::Shared().Run(2, 4, [&](size_t) {
      ThreadPool::Shared().Run(2, 4, [&](size_t) { ++total; });
    });
  });
  EXPECT_EQ(total.load(), 8u);
}

TEST(ThreadPoolTest, MoreWorkersThanTasks) {
  std::vector<int> counts(3, 0);
  ThreadPool::Shared().Run(counts.size(), 16,
                           [&](size_t task) { counts[task]++; });
  for (int c : counts) ASSERT_EQ(c, 1);
}

// ---- ParallelReadScope ------------------------------------------------------

TEST(ParallelReadScopeTest, TracksRegionNesting) {
  PropertyGraph g;
  EXPECT_FALSE(g.InParallelReadRegion());
  {
    PropertyGraph::ParallelReadScope outer(g);
    EXPECT_TRUE(g.InParallelReadRegion());
    {
      PropertyGraph::ParallelReadScope inner(g);
      EXPECT_TRUE(g.InParallelReadRegion());
    }
    EXPECT_TRUE(g.InParallelReadRegion());
  }
  EXPECT_FALSE(g.InParallelReadRegion());
}

// ---- Anchor morsels ---------------------------------------------------------

/// Extracts the patterns of "MATCH <patterns>" for direct matcher tests.
std::vector<PathPattern> PatternsOf(const std::string& match_clause,
                                    Query* keep_alive) {
  auto q = ParseQuery(match_clause + " RETURN 1 AS one");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  *keep_alive = std::move(*q);
  auto& match = static_cast<MatchClause&>(*keep_alive->parts[0].clauses[0]);
  std::vector<PathPattern> out;
  for (auto& p : match.patterns) out.push_back(ClonePattern(p));
  return out;
}

std::vector<NodeId> MatchedNodes(const EvalContext& ctx,
                                 const CompiledMatch& compiled,
                                 const AnchorMorsel* morsel) {
  std::vector<NodeId> ids;
  MatchSink sink = [&](const MatchAssignment& assignment) -> Result<bool> {
    const Value* v = assignment.Find("n");
    EXPECT_NE(v, nullptr);
    ids.push_back(v->AsNode());
    return true;
  };
  Status st = morsel != nullptr
                  ? MatchCompiledMorsel(ctx, Bindings(), compiled,
                                        MatchOptions{}, *morsel, sink)
                  : MatchCompiled(ctx, Bindings(), compiled, MatchOptions{},
                                  sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return ids;
}

TEST(AnchorMorselTest, MorselsPartitionLabelAndAllScans) {
  PropertyGraph g;
  for (int i = 0; i < 100; ++i) {
    g.CreateNode({g.InternLabel(i % 2 == 0 ? "Even" : "Odd")}, {});
  }
  EvalContext ctx{&g, nullptr};
  for (const char* clause : {"MATCH (n:Even)", "MATCH (n)"}) {
    Query keep;
    std::vector<PathPattern> patterns = PatternsOf(clause, &keep);
    CompiledMatch compiled = CompileMatch(ctx, Bindings(), patterns);
    size_t domain = AnchorScanDomain(g, compiled);
    ASSERT_GT(domain, 0u) << clause;
    std::vector<NodeId> full = MatchedNodes(ctx, compiled, nullptr);
    for (size_t morsel_size : {1ul, 7ul, 64ul, 1000ul}) {
      std::vector<NodeId> pieced;
      for (size_t begin = 0; begin < domain; begin += morsel_size) {
        AnchorMorsel morsel{begin, begin + morsel_size};
        std::vector<NodeId> part = MatchedNodes(ctx, compiled, &morsel);
        pieced.insert(pieced.end(), part.begin(), part.end());
      }
      // Concatenation in domain order IS the sequential enumeration.
      EXPECT_EQ(pieced, full) << clause << " morsel=" << morsel_size;
    }
  }
}

// ---- Transient hash anchors -------------------------------------------------

TEST(TransientIndexTest, PlannedOnlyForRepeatedUnindexedProbes) {
  PropertyGraph g;
  for (int i = 0; i < 200; ++i) {
    PropertyMap props;
    props.Set(g.InternKey("k"), Value::Int(i % 50));
    g.CreateNode({g.InternLabel("Item")}, std::move(props));
  }
  EvalContext ctx{&g, nullptr};
  Query keep;
  std::vector<PathPattern> patterns = PatternsOf("MATCH (n:Item {k: 7})", &keep);
  // One driving record: plain label scan.
  CompiledMatch single = CompileMatch(ctx, Bindings(), patterns);
  EXPECT_EQ(DescribeMatchPlan(g, single).find("transient"), std::string::npos);
  // Many driving records: the one-shot hash pays for itself.
  CompiledMatch repeated =
      CompileMatch(ctx, Bindings(), patterns, {.num_rows = 500});
  EXPECT_NE(DescribeMatchPlan(g, repeated).find("transient hash: :Item(k)"),
            std::string::npos)
      << DescribeMatchPlan(g, repeated);
  ASSERT_FALSE(repeated.paths.empty());
  ASSERT_NE(repeated.paths[0].transient, nullptr);
  // Same matches either way, in the same order.
  EXPECT_EQ(MatchedNodes(ctx, repeated, nullptr),
            MatchedNodes(ctx, single, nullptr));
}

TEST(TransientIndexTest, ProbeResultsMatchScanSemantics) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("UNWIND range(0, 199) AS i "
                     "CREATE (:Item {k: i % 50})")
                  .ok());
  // 200 driving records, each probing the unindexed Item(k): the compiled
  // clause builds a transient hash (domain 200 >= 64, rows >= 4). Every
  // value of k owns exactly 4 nodes.
  QueryResult r = RunOk(&db,
                        "UNWIND range(0, 199) AS x "
                        "MATCH (i:Item {k: x % 50}) "
                        "RETURN count(*) AS c");
  EXPECT_EQ(r.rows[0][0].AsInt(), 800);
  // Null probe values never match (stored nulls are omitted, and a null
  // filter never equals anything).
  QueryResult rn = RunOk(&db,
                         "UNWIND [1, null, 2] AS x "
                         "MATCH (i:Item {k: x}) "
                         "RETURN count(*) AS c");
  EXPECT_EQ(rn.rows[0][0].AsInt(), 8);
}

// ---- EXPLAIN ----------------------------------------------------------------

TEST(ParallelExplainTest, AnnotatesParallelMatch) {
  GraphDatabase db;
  db.options().parallel_workers = 4;
  db.options().parallel_morsel_size = 128;
  QueryResult r = RunOk(&db, "EXPLAIN MATCH (n) RETURN n");
  std::string all;
  for (const auto& row : r.rows) all += row[2].AsString() + "\n";
  EXPECT_NE(all.find("parallel(workers=4, morsel=128)"), std::string::npos)
      << all;
}

TEST(ParallelExplainTest, AnnotatesExpandSafePatterns) {
  GraphDatabase db;
  db.options().parallel_workers = 4;
  db.options().parallel_morsel_size = 128;
  QueryResult r =
      RunOk(&db, "EXPLAIN MATCH (a)-[*1..2]->(b) RETURN count(*) AS c");
  std::string all;
  for (const auto& row : r.rows) all += row[2].AsString() + "\n";
  EXPECT_NE(all.find("parallel(workers=4, morsel=128, expand)"),
            std::string::npos)
      << all;
}

TEST(ParallelExplainTest, NoAnnotationWhenSequential) {
  GraphDatabase db;
  QueryResult r = RunOk(&db, "EXPLAIN MATCH (n) RETURN n");
  std::string all;
  for (const auto& row : r.rows) all += row[2].AsString() + "\n";
  EXPECT_EQ(all.find("parallel("), std::string::npos) << all;
}

// ---- Determinism corpus -----------------------------------------------------

/// Runs `query` on a copy of `base` under the given parallel knobs and
/// returns the rendered result table (the byte-level artifact the ordering
/// guarantee is stated over).
std::string RunConfig(const PropertyGraph& base, const std::string& query,
                      size_t workers, size_t morsel) {
  GraphDatabase db;
  db.graph() = base;
  db.options().parallel_workers = workers;
  db.options().parallel_morsel_size = morsel;
  db.options().parallel_min_cost = 1;  // engage on every eligible clause
  QueryResult r = RunOk(&db, query);
  return RenderResult(db.graph(), r);
}

TEST(ParallelDeterminismTest, MatchProjectionAndAggregationCorpus) {
  GraphDatabase seed_db;
  ASSERT_TRUE(
      workload::LoadRandomMarketplace(&seed_db, 120, 80, 600, 42).ok());
  const PropertyGraph base = seed_db.graph();

  const std::vector<std::string> corpus = {
      // Plain scans and expansions (row + anchor morsel modes).
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN u.id AS uid, p.id AS pid",
      "MATCH (n) RETURN n.id AS id",
      // WHERE inside the parallel sink.
      "MATCH (u:User)-[:ORDERED]->(p:Product) WHERE p.id % 3 = 0 "
      "RETURN u.id AS uid, p.id AS pid",
      // OPTIONAL MATCH null extension, decided per record.
      "MATCH (u:User) OPTIONAL MATCH (u)-[:ORDERED]->(p:Product) "
      "WHERE p.id < 5 RETURN u.id AS uid, p.id AS pid",
      // Two-hop join with cross-record dedup semantics.
      "MATCH (a:User)-[:ORDERED]->(p:Product)<-[:ORDERED]-(b:User) "
      "WHERE a.id < b.id RETURN count(*) AS c",
      // Transient-hash probes under the parallel row loop.
      "UNWIND range(1, 120) AS x MATCH (u:User {id: x}) "
      "RETURN count(*) AS c",
      // Row-parallel projection with ORDER BY / SKIP / LIMIT downstream.
      "MATCH (u:User) RETURN u.id AS a, u.id * 2 + 1 AS b "
      "ORDER BY b DESC SKIP 5 LIMIT 20",
      // DISTINCT over parallel projection output.
      "MATCH (u:User)-[:ORDERED]->(p:Product) WITH DISTINCT p.id AS pid "
      "RETURN pid ORDER BY pid",
      // Partial aggregation: every fast-path aggregate, grouped.
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN u.id AS uid, count(*) AS n, count(DISTINCT p.id) AS dp, "
      "sum(p.id) AS s, min(p.id) AS mn, max(p.id) AS mx, "
      "collect(p.id) AS ps ORDER BY uid",
      // Global group, DISTINCT sum/collect, and the avg() generic fallback.
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN count(*) AS n, sum(DISTINCT p.id) AS sd, avg(p.id) AS a, "
      "collect(DISTINCT p.id % 7) AS cd",
      // min/max over ties (first-seen representative must win).
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN min(p.id % 4) AS mn, max(p.id % 4) AS mx, "
      "count(DISTINCT p.id % 4) AS d",
      // Aggregate in ORDER BY only (all items are grouping keys).
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN u.id AS uid ORDER BY count(p), uid",
  };

  for (const std::string& query : corpus) {
    const std::string expected = RunConfig(base, query, 0, 256);
    for (size_t workers : {1ul, 2ul, 8ul}) {
      for (size_t morsel : {1ul, 3ul, 64ul, 1024ul}) {
        EXPECT_EQ(RunConfig(base, query, workers, morsel), expected)
            << query << "\n  workers=" << workers << " morsel=" << morsel;
      }
    }
  }
}

TEST(ParallelDeterminismTest, SingleRowMorselWithMoreWorkersThanRows) {
  // morsel=1 with workers far beyond the row count: every row is its own
  // task, most workers never claim one, and the ordered merge and partial
  // aggregation see a long run of single-row buffers.
  GraphDatabase seed_db;
  ASSERT_TRUE(workload::LoadRandomMarketplace(&seed_db, 5, 4, 12, 9).ok());
  const PropertyGraph base = seed_db.graph();

  const std::vector<std::string> corpus = {
      "MATCH (u:User) RETURN u.id AS id",
      "MATCH (u:User) RETURN u.id AS id ORDER BY id DESC",
      "MATCH (u:User)-[:ORDERED]->(p:Product) "
      "RETURN u.id AS uid, count(*) AS n, collect(p.id) AS ps ORDER BY uid",
      "MATCH (u:User) RETURN count(*) AS c, sum(u.id) AS s, avg(u.id) AS a",
      "MATCH (u:User) OPTIONAL MATCH (u)-[:ORDERED]->(p:Product) "
      "RETURN u.id AS uid, p.id AS pid",
  };
  for (const std::string& query : corpus) {
    const std::string expected = RunConfig(base, query, 0, 256);
    for (size_t workers : {8ul, 16ul}) {
      EXPECT_EQ(RunConfig(base, query, workers, 1), expected)
          << query << "\n  workers=" << workers;
    }
  }
}

TEST(ParallelDeterminismTest, VarLengthAndShortestPathExpandMode) {
  // Few driving rows + costly var-length / BFS legs: the planner picks
  // expand mode and the matcher fans the frontier, which must preserve the
  // sequential trail enumeration order byte for byte.
  GraphDatabase seed_db;
  ASSERT_TRUE(workload::LoadRandomMarketplace(&seed_db, 30, 20, 150, 7).ok());
  const PropertyGraph base = seed_db.graph();

  const std::vector<std::string> corpus = {
      // Single anchored start: rows=1, all parallelism is in the frontier.
      "MATCH (u:User {id: 1})-[:ORDERED*1..3]-(x) "
      "RETURN count(*) AS c, min(x.id) AS lo, max(x.id) AS hi",
      // Emission order exposed directly (no ORDER BY, no aggregation).
      "MATCH (u:User {id: 2})-[*..2]->(x) RETURN x.id AS xid",
      // Named path with zero-length lower bound.
      "MATCH p = (u:User {id: 3})-[:ORDERED*0..2]-(x) "
      "RETURN length(p) AS len, x.id AS xid",
      // collect() over the walk preserves emission order inside one cell.
      "MATCH (u:User {id: 1})-[*1..2]-(x) RETURN collect(x.id) AS xs",
      // BFS levels split across workers.
      "MATCH (a:User {id: 1}), (b:User {id: 2}) "
      "MATCH p = shortestPath((a)-[*]-(b)) RETURN length(p) AS len",
      "MATCH (a:User {id: 1}), (b:Product {id: 5}) "
      "MATCH p = allShortestPaths((a)-[*]-(b)) "
      "RETURN length(p) AS len, count(*) AS c",
      "MATCH (a:User {id: 4}), (b:User {id: 9}) "
      "OPTIONAL MATCH p = shortestPath((a)-[:ORDERED*..4]->(b)) "
      "RETURN a.id AS a, b.id AS b, length(p) AS len",
  };
  for (const std::string& query : corpus) {
    const std::string expected = RunConfig(base, query, 0, 256);
    for (size_t workers : {2ul, 8ul}) {
      for (size_t morsel : {1ul, 256ul}) {
        EXPECT_EQ(RunConfig(base, query, workers, morsel), expected)
            << query << "\n  workers=" << workers << " morsel=" << morsel;
      }
    }
  }
}

TEST(ParallelDeterminismTest, RevisedMergeMatchPhase) {
  Value rows = workload::RandomOrderRows(400, 50, 30, /*null_permille=*/0, 7);
  for (const char* keyword : {"MERGE ALL", "MERGE SAME"}) {
    const std::string query = workload::Example5Query(keyword);

    auto run = [&](size_t workers, size_t morsel, std::string* rendered) {
      GraphDatabase db;
      EXPECT_TRUE(
          workload::LoadRandomMarketplace(&db, 50, 30, 200, 9).ok());
      db.options().parallel_workers = workers;
      db.options().parallel_morsel_size = morsel;
      db.options().parallel_min_cost = 1;
      QueryResult r = RunOk(&db, query, {{"rows", rows}});
      *rendered = RenderResult(db.graph(), r);
      return DumpGraph(db.graph());
    };

    std::string expected_rendered;
    const std::string expected_graph = run(0, 256, &expected_rendered);
    for (size_t workers : {2ul, 8ul}) {
      for (size_t morsel : {1ul, 64ul}) {
        std::string rendered;
        std::string graph = run(workers, morsel, &rendered);
        EXPECT_EQ(graph, expected_graph)
            << keyword << " workers=" << workers << " morsel=" << morsel;
        EXPECT_EQ(rendered, expected_rendered)
            << keyword << " workers=" << workers << " morsel=" << morsel;
      }
    }
  }
}

// ---- Error determinism ------------------------------------------------------

Status RunStatus(const std::string& query, const ValueMap& params,
                 size_t workers) {
  GraphDatabase db;
  db.options().parallel_workers = workers;
  db.options().parallel_morsel_size = 1;  // one row per partial
  db.options().parallel_min_cost = 1;
  return db.Execute(query, params).status();
}

TEST(ParallelDeterminismTest, IntegerSumOverflowSplitAcrossMorsels) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const std::string query = "UNWIND $vals AS v RETURN sum(v) AS s";
  // The overflowing prefix MAX+1 straddles a morsel boundary while the
  // total (MAX - 1) is back in range: a naive partial-sum merge would
  // succeed, the sequential stepwise semantics must error.
  ValueMap overflow{{"vals", Value::List({Value::Int(kMax), Value::Int(1),
                                          Value::Int(-2)})}};
  Status seq = RunStatus(query, overflow, 0);
  Status par = RunStatus(query, overflow, 8);
  ASSERT_FALSE(seq.ok());
  ASSERT_FALSE(par.ok());
  EXPECT_EQ(par.ToString(), seq.ToString());

  // Stays in range at every prefix: identical value.
  ValueMap in_range{{"vals", Value::List({Value::Int(kMax), Value::Int(-1),
                                          Value::Int(-2)})}};
  GraphDatabase db;
  db.options().parallel_workers = 8;
  db.options().parallel_morsel_size = 1;
  db.options().parallel_min_cost = 1;
  QueryResult r = RunOk(&db, query, in_range);
  EXPECT_EQ(r.rows[0][0].AsInt(), kMax - 3);

  // A float in the mix does not disable the stepwise integer check: the
  // parallel path must fall back and reproduce the sequential error.
  ValueMap mixed{{"vals", Value::List({Value::Int(kMax), Value::Float(1.5),
                                       Value::Int(1)})}};
  Status seq_mixed = RunStatus(query, mixed, 0);
  Status par_mixed = RunStatus(query, mixed, 8);
  ASSERT_FALSE(seq_mixed.ok());
  ASSERT_FALSE(par_mixed.ok());
  EXPECT_EQ(par_mixed.ToString(), seq_mixed.ToString());

  // All-float sums take the fallback and agree with the sequential value.
  ValueMap floats{{"vals", Value::List({Value::Float(1.5), Value::Float(2.5),
                                        Value::Int(4)})}};
  GraphDatabase db2;
  db2.options().parallel_workers = 8;
  db2.options().parallel_morsel_size = 1;
  db2.options().parallel_min_cost = 1;
  QueryResult rf = RunOk(&db2, query, floats);
  EXPECT_DOUBLE_EQ(rf.rows[0][0].AsFloat(), 8.0);
}

TEST(ParallelDeterminismTest, ExpressionErrorsMatchSequential) {
  const std::string query = "UNWIND $vals AS d RETURN 10 / d AS q";
  ValueMap vals{{"vals", Value::List({Value::Int(5), Value::Int(2),
                                      Value::Int(0), Value::Int(1)})}};
  Status seq = RunStatus(query, vals, 0);
  Status par = RunStatus(query, vals, 8);
  ASSERT_FALSE(seq.ok());
  ASSERT_FALSE(par.ok());
  EXPECT_EQ(par.ToString(), seq.ToString());

  const std::string agg = "UNWIND $vals AS v RETURN sum(v) AS s";
  ValueMap bad{{"vals", Value::List({Value::Int(1), Value::String("x"),
                                     Value::Int(2)})}};
  Status seq_agg = RunStatus(agg, bad, 0);
  Status par_agg = RunStatus(agg, bad, 8);
  ASSERT_FALSE(seq_agg.ok());
  ASSERT_FALSE(par_agg.ok());
  EXPECT_EQ(par_agg.ToString(), seq_agg.ToString());
}

}  // namespace
}  // namespace cypher
