#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace cypher {
namespace {

// ---- Lexer -------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("MATCH (n) RETURN n.id");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "MATCH");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLParen);
  EXPECT_EQ((*tokens)[7].text, "id");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndRanges) {
  auto tokens = Tokenize("1 2.5 1e3 1..3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFloat);
  EXPECT_EQ((*tokens)[1].float_value, 2.5);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloat);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kDotDot);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kInteger);
}

TEST(LexerTest, PropertyAccessDoesNotEatDot) {
  auto tokens = Tokenize("n.prop");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize(R"('it\'s' "dq\n")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
  EXPECT_EQ((*tokens)[1].text, "dq\n");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("MATCH // comment\n(n) /* block */ RETURN n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "MATCH");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLParen);
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Tokenize("<= >= <> += .. <");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kPlusEq);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kDotDot);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kLt);
}

TEST(LexerTest, ParametersAndBackquotes) {
  auto tokens = Tokenize("$rows `weird name`");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kParameter);
  EXPECT_EQ((*tokens)[0].text, "rows");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "weird name");
}

TEST(LexerTest, ErrorsCarryPosition) {
  auto tokens = Tokenize("MATCH (n) WHERE n.x = 'unterminated");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 1"), std::string::npos);
}

// ---- Parser: structure ---------------------------------------------------------

TEST(ParserTest, Query1FromThePaper) {
  auto q = ParseQuery(
      "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
      "WHERE p.name = \"laptop\" RETURN v");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->parts.size(), 1u);
  ASSERT_EQ(q->parts[0].clauses.size(), 2u);
  const auto& match = static_cast<const MatchClause&>(*q->parts[0].clauses[0]);
  ASSERT_EQ(match.patterns.size(), 1u);
  const PathPattern& p = match.patterns[0];
  EXPECT_EQ(p.start.variable, "p");
  EXPECT_EQ(p.start.labels, std::vector<std::string>{"Product"});
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].first.direction, RelDirection::kRightToLeft);
  EXPECT_EQ(p.steps[0].first.types, std::vector<std::string>{"OFFERS"});
  EXPECT_EQ(p.steps[1].first.direction, RelDirection::kLeftToRight);
  EXPECT_NE(match.where, nullptr);
}

TEST(ParserTest, MergeForms) {
  auto legacy = ParseQuery("MERGE (p)<-[:OFFERS]-(v:Vendor)");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(static_cast<const MergeClause&>(*legacy->parts[0].clauses[0]).form,
            MergeForm::kLegacy);

  auto all = ParseQuery("MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product)");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(static_cast<const MergeClause&>(*all->parts[0].clauses[0]).form,
            MergeForm::kAll);

  auto same = ParseQuery("MERGE SAME (a)-[:TO]->(b), (c)-[:TO]->(d)");
  ASSERT_TRUE(same.ok());
  const auto& clause = static_cast<const MergeClause&>(*same->parts[0].clauses[0]);
  EXPECT_EQ(clause.form, MergeForm::kSame);
  EXPECT_EQ(clause.patterns.size(), 2u);
}

TEST(ParserTest, MergePathVariableNamedAllIsLegacy) {
  auto q = ParseQuery("MERGE all = (a)-[:T]->(b) RETURN all");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& clause = static_cast<const MergeClause&>(*q->parts[0].clauses[0]);
  EXPECT_EQ(clause.form, MergeForm::kLegacy);
  EXPECT_EQ(clause.patterns[0].path_variable, "all");
}

TEST(ParserTest, MergeOnCreateOnMatch) {
  auto q = ParseQuery(
      "MERGE (u:User {id: 1}) "
      "ON CREATE SET u.created = true, u.n = 0 "
      "ON MATCH SET u.n = u.n + 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& clause = static_cast<const MergeClause&>(*q->parts[0].clauses[0]);
  EXPECT_EQ(clause.on_create.size(), 2u);
  EXPECT_EQ(clause.on_match.size(), 1u);
}

TEST(ParserTest, SetItemKinds) {
  auto q = ParseQuery(
      "MATCH (p) SET p:Product, p.id = 120, p += {a: 1}, p = {b: 2}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& set = static_cast<const SetClause&>(*q->parts[0].clauses[1]);
  ASSERT_EQ(set.items.size(), 4u);
  EXPECT_EQ(set.items[0].kind, SetItemKind::kSetLabels);
  EXPECT_EQ(set.items[1].kind, SetItemKind::kSetProperty);
  EXPECT_EQ(set.items[1].key, "id");
  EXPECT_EQ(set.items[2].kind, SetItemKind::kMergeProps);
  EXPECT_EQ(set.items[3].kind, SetItemKind::kReplaceProps);
}

TEST(ParserTest, RemoveItems) {
  auto q = ParseQuery("MATCH (p) REMOVE p:New_Product, p.name");
  ASSERT_TRUE(q.ok());
  const auto& rem = static_cast<const RemoveClause&>(*q->parts[0].clauses[1]);
  ASSERT_EQ(rem.items.size(), 2u);
  EXPECT_EQ(rem.items[0].kind, RemoveItemKind::kLabels);
  EXPECT_EQ(rem.items[1].kind, RemoveItemKind::kProperty);
}

TEST(ParserTest, DetachDelete) {
  auto q = ParseQuery("MATCH (p:Product {id: 120}) DETACH DELETE p");
  ASSERT_TRUE(q.ok());
  const auto& del = static_cast<const DeleteClause&>(*q->parts[0].clauses[1]);
  EXPECT_TRUE(del.detach);
  EXPECT_EQ(del.exprs.size(), 1u);
}

TEST(ParserTest, VariableLengthRelationships) {
  auto q = ParseQuery("MATCH (v)-[*]->(v) RETURN v");
  ASSERT_TRUE(q.ok());
  const auto& match = static_cast<const MatchClause&>(*q->parts[0].clauses[0]);
  const RelPattern& rel = match.patterns[0].steps[0].first;
  EXPECT_TRUE(rel.var_length);
  EXPECT_EQ(rel.min_hops, 1);
  EXPECT_EQ(rel.max_hops, -1);

  auto q2 = ParseQuery("MATCH (a)-[r:T*2..5]->(b) RETURN r");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  const auto& match2 = static_cast<const MatchClause&>(*q2->parts[0].clauses[0]);
  const RelPattern& rel2 = match2.patterns[0].steps[0].first;
  EXPECT_EQ(rel2.min_hops, 2);
  EXPECT_EQ(rel2.max_hops, 5);

  auto q3 = ParseQuery("MATCH (a)-[*..4]-(b) RETURN a");
  ASSERT_TRUE(q3.ok());
  const auto& rel3 = static_cast<const MatchClause&>(*q3->parts[0].clauses[0])
                         .patterns[0].steps[0].first;
  EXPECT_EQ(rel3.min_hops, 1);
  EXPECT_EQ(rel3.max_hops, 4);
  EXPECT_EQ(rel3.direction, RelDirection::kUndirected);
}

TEST(ParserTest, UnionAndUnionAll) {
  auto q = ParseQuery("MATCH (a) RETURN a UNION MATCH (b) RETURN b AS a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->parts.size(), 2u);
  EXPECT_FALSE(q->union_all[0]);
  auto q2 = ParseQuery("RETURN 1 AS x UNION ALL RETURN 2 AS x");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->union_all[0]);
}

TEST(ParserTest, ForeachBody) {
  auto q = ParseQuery(
      "MATCH (n) FOREACH (x IN [1,2,3] | SET n.last = x CREATE (:Log {v: x}))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& fe = static_cast<const ForeachClause&>(*q->parts[0].clauses[1]);
  EXPECT_EQ(fe.variable, "x");
  EXPECT_EQ(fe.body.size(), 2u);
}

TEST(ParserTest, ForeachRejectsReadingClauses) {
  EXPECT_FALSE(ParseQuery("FOREACH (x IN [1] | MATCH (n) DELETE n)").ok());
}

TEST(ParserTest, ProjectionFeatures) {
  auto q = ParseQuery(
      "MATCH (n) WITH DISTINCT n.id AS id, count(*) AS c "
      "ORDER BY c DESC, id SKIP 1 LIMIT 2 WHERE c > 1 RETURN *");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& with = static_cast<const WithClause&>(*q->parts[0].clauses[1]);
  EXPECT_TRUE(with.body.distinct);
  EXPECT_EQ(with.body.items.size(), 2u);
  EXPECT_EQ(with.body.order_by.size(), 2u);
  EXPECT_FALSE(with.body.order_by[0].ascending);
  EXPECT_TRUE(with.body.order_by[1].ascending);
  EXPECT_NE(with.body.skip, nullptr);
  EXPECT_NE(with.body.limit, nullptr);
  EXPECT_NE(with.where, nullptr);
  const auto& ret = static_cast<const ReturnClause&>(*q->parts[0].clauses[2]);
  EXPECT_TRUE(ret.body.include_existing);
}

TEST(ParserTest, ImplicitAliasIsSourceText) {
  auto q = ParseQuery("MATCH (v) RETURN v.name, count( * )");
  ASSERT_TRUE(q.ok());
  const auto& ret = static_cast<const ReturnClause&>(*q->parts[0].clauses[1]);
  EXPECT_EQ(ret.body.items[0].alias, "v.name");
  EXPECT_EQ(ret.body.items[1].alias, "count( * )");
}

TEST(ParserTest, ReturnMustBeLast) {
  EXPECT_FALSE(ParseQuery("RETURN 1 AS x MATCH (n)").ok());
}

TEST(ParserTest, ErrorsMentionLocation) {
  auto q = ParseQuery("MATCH (n RETURN n");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kSyntaxError);
  EXPECT_NE(q.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, CaseExpression) {
  auto e = ParseExpression(
      "CASE WHEN x > 1 THEN 'big' ELSE 'small' END");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->kind, ExprKind::kCase);
  auto simple = ParseExpression("CASE x WHEN 1 THEN 'one' END");
  ASSERT_TRUE(simple.ok());
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 AND NOT false");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ToCypher(**e), "(((1 + (2 * 3)) = 7) AND (NOT false))");
}

TEST(ParserTest, StringOperators) {
  auto e = ParseExpression("name STARTS WITH 'a' OR name ENDS WITH 'z' OR "
                           "name CONTAINS 'q' OR name IN ['x'] OR "
                           "name IS NOT NULL");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
}

// ---- Round-trip property --------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  auto q1 = ParseQuery(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam() << " -> " << q1.status().ToString();
  std::string printed = ToCypher(*q1);
  auto q2 = ParseQuery(printed);
  ASSERT_TRUE(q2.ok()) << printed << " -> " << q2.status().ToString();
  EXPECT_EQ(ToCypher(*q2), printed) << "original: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    PaperQueries, RoundTripTest,
    ::testing::Values(
        "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
        "WHERE p.name = 'laptop' RETURN v",
        "MATCH (u:User {id: 89}) "
        "CREATE (u)-[:ORDERED]->(:New_Product {id: 0})",
        "MATCH (p:New_Product {id: 0}) "
        "SET p:Product, p.id = 120, p.name = 'smartphone' "
        "REMOVE p:New_Product",
        "MATCH (p:Product {id: 120}) DETACH DELETE p",
        "MATCH ()-[r]->(p:Product {id: 120}) DELETE r, p",
        "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v",
        "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
        "MERGE SAME (:User {id: bid})-[:ORDERED]->(:Product {id: pid})"
        "<-[:OFFERS]-(:User {id: sid})",
        "MATCH (user)-[order:ORDERED]->(product) DELETE user "
        "SET user.id = 999 DELETE order RETURN user",
        "MERGE (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)"
        "-[:BOUGHT]->(tgt)",
        "UNWIND $rows AS row WITH row.cid AS cid, row.pid AS pid "
        "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
        "MATCH (a) RETURN a.x AS x UNION ALL MATCH (b) RETURN b.y AS x",
        "MATCH p = (a)-[r:T*1..3]-(b) RETURN p, r",
        "FOREACH (x IN range(1, 10) | CREATE (:N {v: x}))",
        "MATCH (n) WHERE n.a = 1 AND (n.b < 2 OR n.c IS NULL) "
        "RETURN DISTINCT n ORDER BY n.a DESC SKIP 1 LIMIT 5"));

}  // namespace
}  // namespace cypher
