// Compiled match pipeline tests: symbol resolution (unknown labels/types
// short-circuit), constant folding vs per-record memo filters, anchor
// selection (bound / index / label scan / all scan, reversal), and the
// executors that ride on the pipeline (MATCH re-evaluating row-dependent
// filters per record, MERGE matching through it after a rollback).

#include <gtest/gtest.h>

#include "eval/env.h"
#include "match/compiled_pattern.h"
#include "parser/parser.h"
#include "table/table.h"
#include "test_util.h"
#include "value/compare.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

/// Patterns of the first MATCH clause of `query` (which must start with one).
const std::vector<PathPattern>& FirstMatchPatterns(const Query& query) {
  const Clause& clause = *query.parts[0].clauses[0];
  EXPECT_EQ(clause.kind, ClauseKind::kMatch);
  return static_cast<const MatchClause&>(clause).patterns;
}

/// Compiles the first MATCH of `text` against `db`'s graph with no bound
/// variables and no parameters.
CompiledMatch CompileFirstMatch(const GraphDatabase& db, const Query& query) {
  static const ValueMap kNoParams;
  EvalContext ec{&db.graph(), &kNoParams, MatchMode::kRelUnique};
  Table unit = Table::Unit();
  return CompileMatch(ec, Bindings(&unit, 0), FirstMatchPatterns(query));
}

TEST(CompiledPatternTest, UnknownLabelIsImpossible) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  auto query = ParseQuery("MATCH (n:Ghost) RETURN n");
  ASSERT_TRUE(query.ok());
  CompiledMatch compiled = CompileFirstMatch(db, *query);
  EXPECT_TRUE(compiled.impossible);
  EXPECT_TRUE(compiled.paths[0].impossible);
  // End to end: zero rows, no error.
  EXPECT_EQ(RunOk(&db, "MATCH (n:Ghost) RETURN n").rows.size(), 0u);
}

TEST(CompiledPatternTest, UnknownRelTypeIsImpossible) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User)-[:KNOWS]->(:User)").ok());
  auto query = ParseQuery("MATCH (a)-[:NEVER]->(b) RETURN a");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(CompileFirstMatch(db, *query).impossible);
  EXPECT_EQ(RunOk(&db, "MATCH (a)-[:NEVER]->(b) RETURN a").rows.size(), 0u);
  // A known alternative keeps the pattern alive: unknown alternatives are
  // merely dropped.
  auto query2 = ParseQuery("MATCH (a)-[:NEVER|KNOWS]->(b) RETURN a");
  ASSERT_TRUE(query2.ok());
  CompiledMatch both = CompileFirstMatch(db, *query2);
  EXPECT_FALSE(both.impossible);
  ASSERT_EQ(both.paths[0].steps.size(), 1u);
  EXPECT_EQ(both.paths[0].steps[0].first.types.size(), 1u);
}

TEST(CompiledPatternTest, ConstantFilterFoldsOnce) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 2})").ok());
  auto query = ParseQuery("MATCH (n:User {id: 1 + 1}) RETURN n");
  ASSERT_TRUE(query.ok());
  CompiledMatch compiled = CompileFirstMatch(db, *query);
  ASSERT_EQ(compiled.paths.size(), 1u);
  ASSERT_EQ(compiled.paths[0].start.filters.size(), 1u);
  const CompiledFilter& filter = compiled.paths[0].start.filters[0];
  EXPECT_TRUE(filter.is_constant);
  EXPECT_EQ(CypherEquals(filter.constant, Value::Int(2)), Tri::kTrue);
  EXPECT_EQ(compiled.memo_slots, 0u);
}

TEST(CompiledPatternTest, RowDependentFilterGetsMemoSlot) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:User {id: 2})").ok());
  auto query = ParseQuery("MATCH (n:User {id: x}) RETURN n");
  ASSERT_TRUE(query.ok());
  static const ValueMap kNoParams;
  EvalContext ec{&db.graph(), &kNoParams, MatchMode::kRelUnique};
  Table t = Table::WithColumns({"x"});
  t.AddRow({Value::Int(1)});
  CompiledMatch compiled =
      CompileMatch(ec, Bindings(&t, 0), FirstMatchPatterns(*query));
  ASSERT_EQ(compiled.paths.size(), 1u);
  ASSERT_EQ(compiled.paths[0].start.filters.size(), 1u);
  EXPECT_FALSE(compiled.paths[0].start.filters[0].is_constant);
  EXPECT_EQ(compiled.memo_slots, 1u);
}

TEST(CompiledPatternTest, RowDependentFilterReEvaluatesPerRow) {
  // One compiled clause drives many records; each record must see its own
  // filter value, not the first record's.
  GraphDatabase db;
  ASSERT_TRUE(
      db.Run("CREATE (:User {id: 1, name: 'a'}), (:User {id: 2, name: 'b'}), "
             "(:User {id: 3, name: 'c'})")
          .ok());
  QueryResult result = RunOk(
      &db,
      "UNWIND [3, 1, 2] AS x MATCH (n:User {id: x}) RETURN n.name AS name");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(CypherEquals(result.rows[0][0], Value::String("c")), Tri::kTrue);
  EXPECT_EQ(CypherEquals(result.rows[1][0], Value::String("a")), Tri::kTrue);
  EXPECT_EQ(CypherEquals(result.rows[2][0], Value::String("b")), Tri::kTrue);
}

TEST(CompiledPatternTest, AnchorSelection) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("UNWIND range(1, 50) AS i CREATE (:User {id: i})").ok());
  ASSERT_TRUE(db.Run("CREATE (:Rare {id: 1})").ok());

  auto all = ParseQuery("MATCH (n) RETURN n");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(CompileFirstMatch(db, *all).paths[0].anchor.kind,
            AnchorKind::kAllScan);

  auto label = ParseQuery("MATCH (n:User) RETURN n");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(CompileFirstMatch(db, *label).paths[0].anchor.kind,
            AnchorKind::kLabelScan);

  // Property filter alone is no index; with the index it becomes the anchor.
  auto filtered = ParseQuery("MATCH (n:User {id: 7}) RETURN n");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(CompileFirstMatch(db, *filtered).paths[0].anchor.kind,
            AnchorKind::kLabelScan);
  ASSERT_TRUE(db.Run("CREATE INDEX ON :User(id)").ok());
  EXPECT_EQ(CompileFirstMatch(db, *filtered).paths[0].anchor.kind,
            AnchorKind::kIndex);

  // A bound pattern variable beats everything.
  auto bound = ParseQuery("MATCH (n:User) RETURN n");
  ASSERT_TRUE(bound.ok());
  static const ValueMap kNoParams;
  EvalContext ec{&db.graph(), &kNoParams, MatchMode::kRelUnique};
  Table t = Table::WithColumns({"n"});
  t.AddRow({Value::Node(NodeId(0))});
  CompiledMatch from_bound =
      CompileMatch(ec, Bindings(&t, 0), FirstMatchPatterns(*bound));
  EXPECT_EQ(from_bound.paths[0].anchor.kind, AnchorKind::kBound);
}

TEST(CompiledPatternTest, ReversalPicksCheaperFarAnchor) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("UNWIND range(1, 40) AS i CREATE (:Src {id: i})").ok());
  ASSERT_TRUE(db.Run("CREATE (:Dst {id: 0})").ok());
  ASSERT_TRUE(
      db.Run("MATCH (s:Src), (d:Dst) WHERE s.id <= 3 CREATE (s)-[:TO]->(d)")
          .ok());
  auto query = ParseQuery("MATCH (a:Src)-[:TO]->(b:Dst) RETURN a.id AS id");
  ASSERT_TRUE(query.ok());
  CompiledMatch compiled = CompileFirstMatch(db, *query);
  ASSERT_EQ(compiled.paths.size(), 1u);
  EXPECT_TRUE(compiled.paths[0].reversed);  // :Dst is 1 node, :Src is 40
  // Execution direction is an implementation detail: results are identical
  // to the forward reading, in ascending order of the emitted ids.
  QueryResult result =
      RunOk(&db, "MATCH (a:Src)-[:TO]->(b:Dst) RETURN a.id AS id ORDER BY id");
  ASSERT_EQ(result.rows.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(CypherEquals(result.rows[i][0], Value::Int(i + 1)), Tri::kTrue);
  }
}

TEST(CompiledPatternTest, MergeAfterRollbackMatchesThroughPipeline) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1})").ok());
  // The failing statement creates a node (interning :Ghost) and then
  // errors; the whole statement rolls back.
  EXPECT_FALSE(db.Run("CREATE (:Ghost {id: 9}) CREATE (:Bad {p: 1/0})").ok());
  EXPECT_EQ(db.graph().num_nodes(), 1u);

  // MERGE on the surviving node matches (no duplicate)...
  ASSERT_TRUE(db.Run("MERGE SAME (n:User {id: 1})").ok());
  EXPECT_EQ(CypherEquals(
                Scalar(RunOk(&db, "MATCH (n:User) RETURN count(n) AS c")),
                Value::Int(1)),
            Tri::kTrue);
  // ...and MERGE on the rolled-back label must create, even though the
  // label symbol itself survived interning (symbols are not journaled).
  ASSERT_TRUE(db.Run("MERGE SAME (n:Ghost {id: 9})").ok());
  EXPECT_EQ(CypherEquals(
                Scalar(RunOk(&db, "MATCH (n:Ghost) RETURN count(n) AS c")),
                Value::Int(1)),
            Tri::kTrue);
}

TEST(CompiledPatternTest, LegacyMergeSeesOwnWrites) {
  // Legacy MERGE matches the graph as mutated by earlier records, so the
  // per-record recompile must pick up a label interned mid-clause: record
  // one creates (:Fresh), record two must match it, not duplicate it.
  EvalOptions legacy;
  legacy.semantics = SemanticsMode::kLegacy;
  GraphDatabase db(legacy);
  ASSERT_TRUE(db.Run("UNWIND [1, 1] AS x MERGE (n:Fresh {id: x})").ok());
  EXPECT_EQ(CypherEquals(
                Scalar(RunOk(&db, "MATCH (n:Fresh) RETURN count(n) AS c")),
                Value::Int(1)),
            Tri::kTrue);
}

TEST(CompiledPatternTest, LabelCountTracksMutationsAndRollback) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 1}), (:User {id: 2})").ok());
  const PropertyGraph& g = db.graph();
  Symbol user = g.FindLabel("User");
  ASSERT_NE(user, kNoSymbol);
  EXPECT_EQ(g.LabelCount(user), 2u);

  ASSERT_TRUE(db.Run("MATCH (n:User {id: 2}) REMOVE n:User").ok());
  EXPECT_EQ(g.LabelCount(user), 1u);
  ASSERT_TRUE(db.Run("MATCH (n {id: 2}) SET n:User").ok());
  EXPECT_EQ(g.LabelCount(user), 2u);
  ASSERT_TRUE(db.Run("MATCH (n:User {id: 1}) DELETE n").ok());
  EXPECT_EQ(g.LabelCount(user), 1u);

  // A failed statement must restore the count it bumped.
  EXPECT_FALSE(db.Run("CREATE (:User {id: 3}) CREATE (:Bad {p: 1/0})").ok());
  EXPECT_EQ(g.LabelCount(user), 1u);
}

}  // namespace
}  // namespace cypher
