// exists(<pattern>) pattern-predicate tests.

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/parser.h"
#include "test_util.h"

namespace cypher {
namespace {

using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

class PatternPredicateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE (a:User {id: 1}), (b:User {id: 2}), "
                        "(p:Product {id: 9}), "
                        "(a)-[:ORDERED]->(p)")
                    .ok());
  }
  GraphDatabase db_;
};

TEST_F(PatternPredicateTest, FiltersByExistence) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) WHERE exists((u)-[:ORDERED]->()) "
                        "RETURN u.id AS id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(PatternPredicateTest, NegatedExistence) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) "
                        "WHERE NOT exists((u)-[:ORDERED]->()) "
                        "RETURN u.id AS id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(PatternPredicateTest, FullPatternWithFilters) {
  QueryResult yes = RunOk(
      &db_,
      "MATCH (u:User {id: 1}) "
      "RETURN exists((u)-[:ORDERED]->(:Product {id: 9})) AS e");
  EXPECT_TRUE(Scalar(yes).AsBool());
  QueryResult no = RunOk(
      &db_,
      "MATCH (u:User {id: 1}) "
      "RETURN exists((u)-[:ORDERED]->(:Product {id: 5})) AS e");
  EXPECT_FALSE(Scalar(no).AsBool());
}

TEST_F(PatternPredicateTest, UsableInReturnAndCase) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User) "
                        "RETURN u.id AS id, "
                        "CASE WHEN exists((u)-->()) THEN 'buyer' "
                        "ELSE 'lurker' END AS kind ORDER BY id");
  EXPECT_EQ(r.rows[0][1].AsString(), "buyer");
  EXPECT_EQ(r.rows[1][1].AsString(), "lurker");
}

TEST_F(PatternPredicateTest, ScalarExistsStillWorks) {
  QueryResult r = RunOk(&db_,
                        "MATCH (u:User {id: 1}) "
                        "RETURN exists(u.id) AS has_id, "
                        "exists(u.ghost) AS has_ghost");
  EXPECT_TRUE(r.rows[0][0].AsBool());
  EXPECT_FALSE(r.rows[0][1].AsBool());
}

TEST_F(PatternPredicateTest, UndirectedAndVarLength) {
  QueryResult r = RunOk(&db_,
                        "MATCH (p:Product) WHERE exists((p)--()) "
                        "RETURN count(p) AS c");
  EXPECT_EQ(Scalar(r).AsInt(), 1);
  QueryResult vl = RunOk(&db_,
                         "MATCH (u:User {id: 1}) "
                         "RETURN exists((u)-[*1..2]->()) AS e");
  EXPECT_TRUE(Scalar(vl).AsBool());
}

TEST_F(PatternPredicateTest, RoundTripsThroughPrinter) {
  auto e = ParseExpression("exists((u)-[:ORDERED]->(:Product {id: 9}))");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  ASSERT_EQ((*e)->kind, ExprKind::kPatternPredicate);
  std::string printed = ToCypher(**e);
  auto e2 = ParseExpression(printed);
  ASSERT_TRUE(e2.ok()) << printed;
  EXPECT_EQ(ToCypher(**e2), printed);
}

TEST_F(PatternPredicateTest, AnonymousStartScansGraph) {
  QueryResult r = RunOk(&db_, "RETURN exists(()-[:ORDERED]->()) AS any");
  EXPECT_TRUE(Scalar(r).AsBool());
  QueryResult none = RunOk(&db_, "RETURN exists(()-[:MISSING]->()) AS any");
  EXPECT_FALSE(Scalar(none).AsBool());
}

}  // namespace
}  // namespace cypher
