// End-to-end reproduction of every worked example and figure in
// "Updating Graph Databases with Cypher" (Green et al., PVLDB 2019).
// Each test states the paper artifact it checks. These tests ARE the
// paper's "evaluation": the engine must exhibit the legacy anomalies and
// the revised semantics must eliminate them with exactly the graphs the
// figures show.

#include <gtest/gtest.h>

#include <set>

#include "graph/isomorphism.h"
#include "test_util.h"
#include "workload/workloads.h"

namespace cypher {
namespace {

using ::cypher::testing::ExpectIsomorphic;
using ::cypher::testing::GraphFromScript;
using ::cypher::testing::RunErr;
using ::cypher::testing::RunOk;
using ::cypher::testing::Scalar;

EvalOptions Legacy() {
  EvalOptions o;
  o.semantics = SemanticsMode::kLegacy;
  return o;
}

EvalOptions Revised() { return EvalOptions{}; }

// =============================================================================
// Section 2/3: Figure 1 and Queries (1)-(5)
// =============================================================================

class MarketplaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workload::LoadMarketplace(&db_).ok());
  }
  GraphDatabase db_;
};

TEST_F(MarketplaceTest, Figure1HasExpectedShape) {
  EXPECT_EQ(db_.graph().num_nodes(), 6u);
  EXPECT_EQ(db_.graph().num_rels(), 5u);
}

TEST_F(MarketplaceTest, Query1FindsVendorOnce) {
  // Query (1): vendors offering two products, one named "laptop". The
  // record (p:p2, v:v1, q:p1) is filtered by WHERE, leaving one row.
  QueryResult result = RunOk(
      &db_,
      "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
      "WHERE p.name = 'laptop' RETURN v.name AS name");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString(), "cStore");
}

TEST_F(MarketplaceTest, Query1WithoutWhereReturnsBagOfTwo) {
  // Without the WHERE the driving table keeps both records (bag semantics).
  QueryResult result = RunOk(
      &db_,
      "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
      "RETURN v.name AS name");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(MarketplaceTest, Query1RelationshipUniqueness) {
  // p and q cannot use the same OFFERS relationship twice (Section 2), so
  // p = q matches do not appear.
  QueryResult result = RunOk(
      &db_,
      "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
      "WHERE p.name = q.name RETURN v");
  EXPECT_EQ(result.rows.size(), 0u);
}

TEST_F(MarketplaceTest, Queries2Through4Lifecycle) {
  // Query (2): insert the dotted node p4 and its ORDERED relationship.
  QueryResult q2 = RunOk(&db_,
                         "MATCH (u:User {id: 89}) "
                         "CREATE (u)-[:ORDERED]->(:New_Product {id: 0})");
  EXPECT_EQ(q2.stats.nodes_created, 1u);
  EXPECT_EQ(q2.stats.rels_created, 1u);
  EXPECT_EQ(db_.graph().num_nodes(), 7u);

  // Query (3): change id, add name, swap the label.
  QueryResult q3 = RunOk(&db_,
                         "MATCH (p:New_Product {id: 0}) "
                         "SET p:Product, p.id = 120, p.name = 'smartphone' "
                         "REMOVE p:New_Product");
  EXPECT_EQ(q3.stats.properties_set, 2u);
  EXPECT_EQ(q3.stats.labels_added, 1u);
  EXPECT_EQ(q3.stats.labels_removed, 1u);
  EXPECT_EQ(Scalar(RunOk(&db_, "MATCH (p:New_Product) RETURN count(*) AS c"))
                .AsInt(),
            0);

  // Plain DELETE must fail: the node still has its ORDERED relationship.
  RunErr(&db_, "MATCH (p:Product {id: 120}) DELETE p");
  EXPECT_EQ(db_.graph().num_nodes(), 7u);  // statement rolled back

  // Deleting relationship and node in the same clause works.
  QueryResult del =
      RunOk(&db_, "MATCH ()-[r]->(p:Product {id: 120}) DELETE r, p");
  EXPECT_EQ(del.stats.nodes_deleted, 1u);
  EXPECT_EQ(del.stats.rels_deleted, 1u);
  EXPECT_EQ(db_.graph().num_nodes(), 6u);
  EXPECT_EQ(db_.graph().num_rels(), 5u);
}

TEST_F(MarketplaceTest, Query4DetachDelete) {
  RunOk(&db_,
        "MATCH (u:User {id: 89}) "
        "CREATE (u)-[:ORDERED]->(:Product {id: 120})");
  QueryResult del = RunOk(&db_, "MATCH (p:Product {id: 120}) DETACH DELETE p");
  EXPECT_EQ(del.stats.nodes_deleted, 1u);
  EXPECT_EQ(del.stats.rels_deleted, 1u);
  EXPECT_EQ(db_.graph().num_nodes(), 6u);
}

TEST_F(MarketplaceTest, Query5LegacyMergeCreatesVendorForTablet) {
  // Query (5): p1, p2 match vendor v1; p3 (tablet) has no vendor, so MERGE
  // creates v2 and the dashed OFFERS relationship. Legacy semantics.
  auto result = db_.Execute(
      "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) "
      "RETURN p.name AS product, v.name AS vendor",
      {}, Legacy());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->stats.nodes_created, 1u);
  EXPECT_EQ(result->stats.rels_created, 1u);
  EXPECT_EQ(db_.graph().num_nodes(), 7u);
  // The tablet's row has a vendor without a name.
  int null_vendor_rows = 0;
  for (const auto& row : result->rows) {
    if (row[1].is_null()) ++null_vendor_rows;
  }
  EXPECT_EQ(null_vendor_rows, 1);
}

// =============================================================================
// Section 4.1 / Example 1: SET atomicity (the id swap)
// =============================================================================

class SetSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE (:Product {name: 'laptop', id: 85}), "
                        "(:Product {name: 'tablet', id: 125})")
                    .ok());
  }

  std::pair<int64_t, int64_t> Ids() {
    QueryResult r = RunOk(&db_,
                          "MATCH (p:Product) RETURN p.id AS id "
                          "ORDER BY p.name");
    return {r.rows[0][0].AsInt(), r.rows[1][0].AsInt()};
  }

  GraphDatabase db_;
  const std::string swap_ =
      "MATCH (p1:Product {name: 'laptop'}), (p2:Product {name: 'tablet'}) "
      "SET p1.id = p2.id, p2.id = p1.id";
};

TEST_F(SetSwapTest, LegacySetDoesNotSwap) {
  // Example 1: under Cypher 9 both products end up with the tablet's id.
  ASSERT_TRUE(db_.Execute(swap_, {}, Legacy()).ok());
  auto [laptop, tablet] = Ids();
  EXPECT_EQ(laptop, 125);
  EXPECT_EQ(tablet, 125);
}

TEST_F(SetSwapTest, RevisedSetSwaps) {
  // Section 7: all expressions evaluate against the input graph, so the
  // swap works as an SQL programmer expects.
  ASSERT_TRUE(db_.Execute(swap_, {}, Revised()).ok());
  auto [laptop, tablet] = Ids();
  EXPECT_EQ(laptop, 125);
  EXPECT_EQ(tablet, 85);
}

TEST_F(SetSwapTest, LegacySequentialSetsBehaveLikeCombined) {
  // The paper: the combined clause behaves like two sequential SETs.
  ASSERT_TRUE(db_.Execute(
                     "MATCH (p1:Product {name: 'laptop'}), "
                     "(p2:Product {name: 'tablet'}) "
                     "SET p1.id = p2.id SET p2.id = p1.id",
                     {}, Legacy())
                  .ok());
  auto [laptop, tablet] = Ids();
  EXPECT_EQ(laptop, 125);
  EXPECT_EQ(tablet, 125);
}

// =============================================================================
// Section 4.1 / Example 2: ambiguous SET must abort (revised)
// =============================================================================

TEST(SetConflictTest, Example2RevisedAbortsOnConflict) {
  GraphDatabase db;
  // Dirty data: two :Product nodes share id 125 with different names.
  ASSERT_TRUE(db.Run("CREATE (:Product {id: 125, name: 'laptop'}), "
                     "(:Product {id: 125, name: 'notebook'}), "
                     "(:Product {id: 85, name: 'tablet'})")
                  .ok());
  Status st = RunErr(&db,
                     "MATCH (p1:Product {id: 85}), (p2:Product {id: 125}) "
                     "SET p1.name = p2.name");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_NE(st.message().find("conflicting SET"), std::string::npos);
  // Atomicity: the failed statement changed nothing.
  EXPECT_EQ(Scalar(RunOk(&db,
                         "MATCH (p:Product {id: 85}) "
                         "RETURN p.name AS n"))
                .AsString(),
            "tablet");
}

TEST(SetConflictTest, Example2LegacySilentlyPicksAnOrder) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:Product {id: 125, name: 'laptop'}), "
                     "(:Product {id: 125, name: 'notebook'}), "
                     "(:Product {id: 85, name: 'tablet'})")
                  .ok());
  ASSERT_TRUE(db.Run("MATCH (p1:Product {id: 85}), (p2:Product {id: 125}) "
                     "SET p1.name = p2.name")
                  .ok());
  Value name = Scalar(
      RunOk(&db, "MATCH (p:Product {id: 85}) RETURN p.name AS n"));
  // Nondeterministic in principle; our deterministic scan makes it the
  // last-processed record's value. Either paper value is "correct".
  EXPECT_TRUE(name.AsString() == "laptop" || name.AsString() == "notebook");
}

TEST(SetConflictTest, RevisedAllowsAgreeingWrites) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:P {id: 1}), (:P {id: 2}), (:T)").ok());
  // Two records write the same value: no conflict.
  ASSERT_TRUE(db.Run("MATCH (:P), (t:T) SET t.x = 42").ok());
  EXPECT_EQ(Scalar(RunOk(&db, "MATCH (t:T) RETURN t.x AS x")).AsInt(), 42);
}

// =============================================================================
// Section 4.2: DELETE anomalies
// =============================================================================

const char kDeleteAnomalyQuery[] =
    "MATCH (user)-[order:ORDERED]->(product) "
    "DELETE user SET user.id = 999 DELETE order RETURN user";

TEST(DeleteAnomalyTest, LegacyRunsAndReturnsEmptyNode) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:User {id: 89, name: 'Bob'})"
                     "-[:ORDERED]->(:Product {id: 125})")
                  .ok());
  auto result = db.Execute(kDeleteAnomalyQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // "goes through without an error and returns an empty node without any
  // labels or properties"
  ASSERT_EQ(result->rows.size(), 1u);
  ASSERT_TRUE(result->rows[0][0].is_node());
  const PropertyGraph& g = db.graph();
  NodeId zombie = result->rows[0][0].AsNode();
  EXPECT_FALSE(g.IsNodeAlive(zombie));
  EXPECT_TRUE(g.node(zombie).labels.empty());
  EXPECT_TRUE(g.node(zombie).props.empty());
  EXPECT_EQ(RenderValue(g, result->rows[0][0]), "()");
}

TEST(DeleteAnomalyTest, RevisedRejectsDanglingDelete) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 89})-[:ORDERED]->(:Product)").ok());
  Status st = RunErr(&db, kDeleteAnomalyQuery);
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  // Rolled back: nothing deleted.
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  EXPECT_EQ(db.graph().num_rels(), 1u);
}

TEST(DeleteAnomalyTest, RevisedNullsReferencesAfterDelete) {
  GraphDatabase db;
  ASSERT_TRUE(db.Run("CREATE (:User {id: 89})-[:ORDERED]->(:Product)").ok());
  // Deleting rel + node in one clause is fine; later references are null.
  QueryResult result = RunOk(&db,
                             "MATCH (user)-[order:ORDERED]->(product) "
                             "DELETE order, user "
                             "SET user.id = 999 "
                             "RETURN user AS u, order AS o, product AS p");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0][0].is_null());
  EXPECT_TRUE(result.rows[0][1].is_null());
  EXPECT_TRUE(result.rows[0][2].is_node());
  EXPECT_EQ(db.graph().num_nodes(), 1u);
}

TEST(DeleteAnomalyTest, LegacyDanglingAtStatementEndFails) {
  GraphDatabase db(Legacy());
  ASSERT_TRUE(db.Run("CREATE (:User)-[:ORDERED]->(:Product)").ok());
  // DELETE user but never the relationship: Neo4j-style commit check fires.
  Status st = RunErr(&db, "MATCH (user:User) DELETE user");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  // Rolled back.
  EXPECT_EQ(db.graph().num_nodes(), 2u);
  EXPECT_EQ(db.graph().num_rels(), 1u);
}

// =============================================================================
// Section 4.3 / Examples 3-4 / Figure 6: MERGE nondeterminism
// =============================================================================

class Figure6Test : public ::testing::Test {
 protected:
  PropertyGraph RunMerge(const std::string& keyword, EvalOptions options) {
    GraphDatabase db(options);
    EXPECT_TRUE(db.Run(workload::Example3SetupScript()).ok());
    auto result = db.Execute(workload::Example3Query(keyword),
                             {{"rows", workload::Example3Rows()}});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return db.graph();
  }

  // Expected graphs, built independently with CREATE.
  PropertyGraph Figure6a() {
    return GraphFromScript(
        "CREATE (u1:N {k: 'u1'}), (u2:N {k: 'u2'}), (p:N {k: 'p'}), "
        "(v1:N {k: 'v1'}), (v2:N {k: 'v2'}), "
        "(u1)-[:ORDERED]->(p), (v1)-[:OFFERS]->(p), "
        "(u2)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p), "
        "(u1)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p)");
  }
  PropertyGraph Figure6b() {
    return GraphFromScript(
        "CREATE (u1:N {k: 'u1'}), (u2:N {k: 'u2'}), (p:N {k: 'p'}), "
        "(v1:N {k: 'v1'}), (v2:N {k: 'v2'}), "
        "(u1)-[:ORDERED]->(p), (v1)-[:OFFERS]->(p), "
        "(u2)-[:ORDERED]->(p), (v2)-[:OFFERS]->(p)");
  }
};

TEST_F(Figure6Test, LegacyTopDownYieldsFigure6b) {
  EvalOptions options = Legacy();
  options.scan_order = ScanOrder::kForward;
  PropertyGraph got = RunMerge("MERGE", options);
  ExpectIsomorphic(got, Figure6b(), "legacy MERGE top-down");
}

TEST_F(Figure6Test, LegacyBottomUpYieldsFigure6a) {
  EvalOptions options = Legacy();
  options.scan_order = ScanOrder::kReverse;
  PropertyGraph got = RunMerge("MERGE", options);
  ExpectIsomorphic(got, Figure6a(), "legacy MERGE bottom-up");
}

TEST_F(Figure6Test, LegacyMergeIsOrderDependent) {
  // The two scan orders produce non-isomorphic graphs: nondeterminism.
  EvalOptions fwd = Legacy();
  fwd.scan_order = ScanOrder::kForward;
  EvalOptions rev = Legacy();
  rev.scan_order = ScanOrder::kReverse;
  EXPECT_FALSE(AreIsomorphic(RunMerge("MERGE", fwd), RunMerge("MERGE", rev)));
}

TEST_F(Figure6Test, MergeAllYieldsFigure6a) {
  // Example 4: Atomic (and Grouping) always produce Figure 6a.
  ExpectIsomorphic(RunMerge("MERGE ALL", Revised()), Figure6a(), "MERGE ALL");
}

TEST_F(Figure6Test, MergeSameYieldsFigure6b) {
  // Example 4: all collapse variants produce the minimal graph 6b.
  ExpectIsomorphic(RunMerge("MERGE SAME", Revised()), Figure6b(), "MERGE SAME");
}

TEST_F(Figure6Test, AllRevisedVariantsAreOrderInsensitive) {
  for (MergeVariant variant :
       {MergeVariant::kAtomic, MergeVariant::kGrouping,
        MergeVariant::kWeakCollapse, MergeVariant::kCollapse,
        MergeVariant::kStrongCollapse}) {
    EvalOptions options = Revised();
    options.plain_merge_variant = variant;
    std::set<uint64_t> fingerprints;
    for (ScanOrder order :
         {ScanOrder::kForward, ScanOrder::kReverse, ScanOrder::kShuffle}) {
      options.scan_order = order;  // must be ignored by revised executors
      options.shuffle_seed = 1234;
      fingerprints.insert(GraphFingerprint(RunMerge("MERGE", options)));
    }
    EXPECT_EQ(fingerprints.size(), 1u)
        << MergeVariantName(variant) << " varied with scan order";
  }
}

TEST_F(Figure6Test, GroupingMatchesAtomicHere) {
  // Example 4: Grouping also yields 6a (three distinct records).
  EvalOptions options = Revised();
  options.plain_merge_variant = MergeVariant::kGrouping;
  ExpectIsomorphic(RunMerge("MERGE", options), Figure6a(), "Grouping MERGE");
}

TEST_F(Figure6Test, WeakCollapseMatchesFigure6b) {
  EvalOptions options = Revised();
  options.plain_merge_variant = MergeVariant::kWeakCollapse;
  ExpectIsomorphic(RunMerge("MERGE", options), Figure6b(), "Weak Collapse");
}

// =============================================================================
// Example 5 / Figure 7: Atomic vs Grouping vs Collapse on import data
// =============================================================================

class Figure7Test : public ::testing::Test {
 protected:
  PropertyGraph RunVariant(MergeVariant variant) {
    EvalOptions options;
    options.plain_merge_variant = variant;
    GraphDatabase db(options);
    auto result = db.Execute(workload::Example5Query("MERGE"),
                             {{"rows", workload::Example5Rows()}});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return db.graph();
  }
};

TEST_F(Figure7Test, AtomicCreatesTwelveNodesSixRels) {
  PropertyGraph g = RunVariant(MergeVariant::kAtomic);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_rels(), 6u);
  ExpectIsomorphic(
      g,
      GraphFromScript(
          "CREATE (:User {id: 98})-[:ORDERED]->(:Product {id: 125});"
          "CREATE (:User {id: 98})-[:ORDERED]->(:Product {id: 125});"
          "CREATE (:User {id: 98})-[:ORDERED]->(:Product);"
          "CREATE (:User {id: 98})-[:ORDERED]->(:Product);"
          "CREATE (:User {id: 99})-[:ORDERED]->(:Product {id: 125});"
          "CREATE (:User {id: 99})-[:ORDERED]->(:Product)"),
      "Figure 7a");
}

TEST_F(Figure7Test, GroupingCreatesEightNodesFourRels) {
  // Duplicate (cid, pid) pairs collapse regardless of the date column;
  // null pids group with null pids.
  PropertyGraph g = RunVariant(MergeVariant::kGrouping);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_rels(), 4u);
  ExpectIsomorphic(
      g,
      GraphFromScript(
          "CREATE (:User {id: 98})-[:ORDERED]->(:Product {id: 125});"
          "CREATE (:User {id: 98})-[:ORDERED]->(:Product);"
          "CREATE (:User {id: 99})-[:ORDERED]->(:Product {id: 125});"
          "CREATE (:User {id: 99})-[:ORDERED]->(:Product)"),
      "Figure 7b");
}

TEST_F(Figure7Test, CollapseVariantsCreateMinimalGraph) {
  // One node per cid, one per pid (null included), one rel per unique
  // (cid, pid) pair; identical for all three collapse variants here.
  PropertyGraph expected = GraphFromScript(
      "CREATE (u98:User {id: 98}), (u99:User {id: 99}), "
      "(p125:Product {id: 125}), (pnull:Product), "
      "(u98)-[:ORDERED]->(p125), (u98)-[:ORDERED]->(pnull), "
      "(u99)-[:ORDERED]->(p125), (u99)-[:ORDERED]->(pnull)");
  for (MergeVariant variant :
       {MergeVariant::kWeakCollapse, MergeVariant::kCollapse,
        MergeVariant::kStrongCollapse}) {
    PropertyGraph g = RunVariant(variant);
    EXPECT_EQ(g.num_nodes(), 4u) << MergeVariantName(variant);
    EXPECT_EQ(g.num_rels(), 4u) << MergeVariantName(variant);
    ExpectIsomorphic(g, expected,
                     std::string("Figure 7c via ") + MergeVariantName(variant));
  }
}

TEST_F(Figure7Test, MergeAllAndSameKeywordsMatchSection7) {
  // Section 7: MERGE ALL produces Figure 7a, MERGE SAME Figure 7c.
  GraphDatabase db_all;
  ASSERT_TRUE(db_all
                  .Execute(workload::Example5Query("MERGE ALL"),
                           {{"rows", workload::Example5Rows()}})
                  .ok());
  EXPECT_EQ(db_all.graph().num_nodes(), 12u);
  EXPECT_EQ(db_all.graph().num_rels(), 6u);

  GraphDatabase db_same;
  ASSERT_TRUE(db_same
                  .Execute(workload::Example5Query("MERGE SAME"),
                           {{"rows", workload::Example5Rows()}})
                  .ok());
  EXPECT_EQ(db_same.graph().num_nodes(), 4u);
  EXPECT_EQ(db_same.graph().num_rels(), 4u);
}

TEST_F(Figure7Test, BareMergeIsRejectedInRevisedSemantics) {
  // Section 7: "The query used in Example 5 (without ALL or SAME) will no
  // longer be allowed."
  GraphDatabase db;  // revised, no plain_merge_variant
  Status st = RunErr(&db, workload::Example5Query("MERGE"),
                     {{"rows", workload::Example5Rows()}});
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
}

// =============================================================================
// Example 6 / Figure 8: Weak Collapse vs Collapse
// =============================================================================

class Figure8Test : public ::testing::Test {
 protected:
  PropertyGraph RunVariant(MergeVariant variant) {
    EvalOptions options;
    options.plain_merge_variant = variant;
    GraphDatabase db(options);
    auto result = db.Execute(workload::Example6Query("MERGE"),
                             {{"rows", workload::Example6Rows()}});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return db.graph();
  }
};

TEST_F(Figure8Test, WeakCollapseKeepsDuplicateUser98) {
  // Figure 8a: :User{id:98} appears twice because the two occurrences sit
  // at different pattern positions (buyer vs seller).
  PropertyGraph g = RunVariant(MergeVariant::kWeakCollapse);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_rels(), 4u);
  ExpectIsomorphic(
      g,
      GraphFromScript(
          "CREATE (:User {id: 98})-[:ORDERED]->(p125:Product {id: 125}), "
          "(:User {id: 97})-[:OFFERS]->(p125);"
          "CREATE (:User {id: 99})-[:ORDERED]->(p85:Product {id: 85}), "
          "(:User {id: 98})-[:OFFERS]->(p85)"),
      "Figure 8a");
}

TEST_F(Figure8Test, AtomicAndGroupingAlsoYieldFigure8a) {
  // Two distinct records: Atomic == Grouping == Weak Collapse here.
  PropertyGraph weak = RunVariant(MergeVariant::kWeakCollapse);
  ExpectIsomorphic(RunVariant(MergeVariant::kAtomic), weak, "Atomic vs 8a");
  ExpectIsomorphic(RunVariant(MergeVariant::kGrouping), weak, "Grouping vs 8a");
}

TEST_F(Figure8Test, CollapseCombinesUser98AcrossPositions) {
  // Figure 8b: the buyer 98 of record 1 and seller 98 of record 2 merge.
  PropertyGraph expected = GraphFromScript(
      "CREATE (u98:User {id: 98}), (u99:User {id: 99}), "
      "(u97:User {id: 97}), (p125:Product {id: 125}), "
      "(p85:Product {id: 85}), "
      "(u98)-[:ORDERED]->(p125), (u97)-[:OFFERS]->(p125), "
      "(u99)-[:ORDERED]->(p85), (u98)-[:OFFERS]->(p85)");
  for (MergeVariant variant :
       {MergeVariant::kCollapse, MergeVariant::kStrongCollapse}) {
    PropertyGraph g = RunVariant(variant);
    EXPECT_EQ(g.num_nodes(), 5u) << MergeVariantName(variant);
    ExpectIsomorphic(g, expected,
                     std::string("Figure 8b via ") + MergeVariantName(variant));
  }
}

// =============================================================================
// Example 7 / Figure 9: Collapse vs Strong Collapse; re-match semantics
// =============================================================================

class Figure9Test : public ::testing::Test {
 protected:
  GraphDatabase RunVariant(MergeVariant variant) {
    EvalOptions options;
    options.plain_merge_variant = variant;
    GraphDatabase db(options);
    EXPECT_TRUE(db.Run(workload::Example7SetupScript()).ok());
    auto result = db.Execute(workload::Example7Query("MERGE"));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return db;
  }
};

TEST_F(Figure9Test, CollapseKeepsParallelToEdges) {
  // Figure 9a: two parallel :TO edges p1 -> p2 (positions 0 and 3).
  GraphDatabase db = RunVariant(MergeVariant::kCollapse);
  EXPECT_EQ(db.graph().num_nodes(), 4u);
  EXPECT_EQ(db.graph().num_rels(), 5u);
  for (MergeVariant variant :
       {MergeVariant::kAtomic, MergeVariant::kGrouping,
        MergeVariant::kWeakCollapse}) {
    GraphDatabase other = RunVariant(variant);
    EXPECT_EQ(other.graph().num_rels(), 5u) << MergeVariantName(variant);
  }
}

TEST_F(Figure9Test, StrongCollapseMergesParallelToEdges) {
  // Figure 9b: the two :TO p1->p2 edges collapse; 4 relationships remain.
  GraphDatabase db = RunVariant(MergeVariant::kStrongCollapse);
  EXPECT_EQ(db.graph().num_nodes(), 4u);
  EXPECT_EQ(db.graph().num_rels(), 4u);
  ExpectIsomorphic(
      db.graph(),
      GraphFromScript(
          "CREATE (p1:P {k: 'p1'}), (p2:P {k: 'p2'}), (p3:P {k: 'p3'}), "
          "(p4:P {k: 'p4'}), "
          "(p1)-[:TO]->(p2), (p2)-[:TO]->(p3), (p3)-[:TO]->(p1), "
          "(p2)-[:BOUGHT]->(p4)"),
      "Figure 9b");
}

TEST_F(Figure9Test, RematchFailsUnderTrailSemantics) {
  // After Strong Collapse, the merged pattern cannot be re-matched under
  // Cypher's relationship-uniqueness semantics...
  GraphDatabase db = RunVariant(MergeVariant::kStrongCollapse);
  QueryResult r = RunOk(&db, workload::Example7RematchQuery());
  EXPECT_EQ(Scalar(r).AsInt(), 0);
}

TEST_F(Figure9Test, RematchSucceedsUnderHomomorphism) {
  // ...but succeeds under homomorphism-based matching (Section 6).
  GraphDatabase db = RunVariant(MergeVariant::kStrongCollapse);
  EvalOptions homo;
  homo.match_mode = MatchMode::kHomomorphism;
  auto r = db.Execute(workload::Example7RematchQuery(), {}, homo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->rows[0][0].AsInt(), 1);
}

TEST_F(Figure9Test, RematchSucceedsAfterCollapse) {
  // Figure 9a keeps both parallel edges, so trail matching still works.
  GraphDatabase db = RunVariant(MergeVariant::kCollapse);
  QueryResult r = RunOk(&db, workload::Example7RematchQuery());
  EXPECT_GE(Scalar(r).AsInt(), 1);
}

// =============================================================================
// Example 3 under shuffled orders: statistical nondeterminism check
// =============================================================================

TEST(NondeterminismTest, LegacyMergeProducesMultipleGraphsAcrossShuffles) {
  std::set<uint64_t> legacy_fps;
  std::set<uint64_t> revised_fps;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    {
      EvalOptions options = Legacy();
      options.scan_order = ScanOrder::kShuffle;
      options.shuffle_seed = seed;
      GraphDatabase db(options);
      ASSERT_TRUE(db.Run(workload::Example3SetupScript()).ok());
      ASSERT_TRUE(db.Execute(workload::Example3Query("MERGE"),
                             {{"rows", workload::Example3Rows()}})
                      .ok());
      legacy_fps.insert(GraphFingerprint(db.graph()));
    }
    {
      GraphDatabase db;
      ASSERT_TRUE(db.Run(workload::Example3SetupScript()).ok());
      ASSERT_TRUE(db.Execute(workload::Example3Query("MERGE SAME"),
                             {{"rows", workload::Example3Rows()}})
                      .ok());
      revised_fps.insert(GraphFingerprint(db.graph()));
    }
  }
  EXPECT_GE(legacy_fps.size(), 2u) << "legacy MERGE should be order-dependent";
  EXPECT_EQ(revised_fps.size(), 1u) << "MERGE SAME must be deterministic";
}

}  // namespace
}  // namespace cypher
