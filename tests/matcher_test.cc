#include <gtest/gtest.h>

#include "match/matcher.h"
#include "parser/parser.h"

namespace cypher {
namespace {

/// Extracts the patterns of "MATCH <patterns>" for direct matcher tests.
std::vector<PathPattern> PatternsOf(const std::string& match_clause,
                                    Query* keep_alive) {
  auto q = ParseQuery(match_clause + " RETURN 1 AS one");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  *keep_alive = std::move(*q);
  auto& match = static_cast<MatchClause&>(*keep_alive->parts[0].clauses[0]);
  std::vector<PathPattern> out;
  for (auto& p : match.patterns) out.push_back(ClonePattern(p));
  return out;
}

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() {
    // (u1:User)-[:ORDERED]->(p1:Product)<-[:OFFERS]-(v:Vendor)
    // (u2:User)-[:ORDERED]->(p1)
    // (u1)-[:KNOWS]->(u2)
    u1_ = MakeNode("User", "u1");
    u2_ = MakeNode("User", "u2");
    p1_ = MakeNode("Product", "p1");
    v_ = MakeNode("Vendor", "v");
    ordered_ = g_.InternType("ORDERED");
    offers_ = g_.InternType("OFFERS");
    knows_ = g_.InternType("KNOWS");
    r1_ = *g_.CreateRel(u1_, p1_, ordered_, {});
    r2_ = *g_.CreateRel(u2_, p1_, ordered_, {});
    r3_ = *g_.CreateRel(v_, p1_, offers_, {});
    r4_ = *g_.CreateRel(u1_, u2_, knows_, {});
  }

  NodeId MakeNode(const std::string& label, const std::string& name) {
    PropertyMap props;
    props.Set(g_.InternKey("name"), Value::String(name));
    return g_.CreateNode({g_.InternLabel(label)}, std::move(props));
  }

  size_t CountMatches(const std::string& match_clause,
                      MatchMode mode = MatchMode::kRelUnique,
                      const Bindings& bindings = Bindings()) {
    Query keep;
    auto patterns = PatternsOf(match_clause, &keep);
    EvalContext ctx{&g_, nullptr};
    size_t count = 0;
    Status st = MatchPatterns(ctx, bindings, patterns, MatchOptions{mode},
                              [&count](const MatchAssignment&) -> Result<bool> {
                                ++count;
                                return true;
                              });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return count;
  }

  PropertyGraph g_;
  NodeId u1_, u2_, p1_, v_;
  Symbol ordered_, offers_, knows_;
  RelId r1_, r2_, r3_, r4_;
};

TEST_F(MatcherTest, SingleNodeByLabel) {
  EXPECT_EQ(CountMatches("MATCH (u:User)"), 2u);
  EXPECT_EQ(CountMatches("MATCH (p:Product)"), 1u);
  EXPECT_EQ(CountMatches("MATCH (x:Nothing)"), 0u);
  EXPECT_EQ(CountMatches("MATCH (n)"), 4u);
}

TEST_F(MatcherTest, PropertyFilter) {
  EXPECT_EQ(CountMatches("MATCH (u {name: 'u1'})"), 1u);
  EXPECT_EQ(CountMatches("MATCH (u:User {name: 'p1'})"), 0u);
  // Null filters never match.
  EXPECT_EQ(CountMatches("MATCH (u {name: null})"), 0u);
}

TEST_F(MatcherTest, DirectedSteps) {
  EXPECT_EQ(CountMatches("MATCH (u:User)-[:ORDERED]->(p)"), 2u);
  EXPECT_EQ(CountMatches("MATCH (p)<-[:ORDERED]-(u:User)"), 2u);
  EXPECT_EQ(CountMatches("MATCH (u:User)<-[:ORDERED]-(p)"), 0u);
  EXPECT_EQ(CountMatches("MATCH (a)-[:ORDERED]-(b)"), 4u);  // both directions
}

TEST_F(MatcherTest, TypeAlternatives) {
  EXPECT_EQ(CountMatches("MATCH (a)-[:ORDERED|OFFERS]->(b)"), 3u);
  EXPECT_EQ(CountMatches("MATCH (a)-[r]->(b)"), 4u);  // any type
}

TEST_F(MatcherTest, TwoStepPath) {
  EXPECT_EQ(
      CountMatches("MATCH (u:User)-[:ORDERED]->(p)<-[:OFFERS]-(v:Vendor)"),
      2u);
}

TEST_F(MatcherTest, RelationshipUniquenessAcrossPatterns) {
  // Two ORDERED rel patterns cannot bind the same relationship (Section 2).
  EXPECT_EQ(CountMatches("MATCH (a)-[r1:ORDERED]->(p), (b)-[r2:ORDERED]->(p)"),
            2u);  // (r1, r2) and (r2, r1)
  // Under homomorphism the same rel may be used twice: 4 combinations.
  EXPECT_EQ(CountMatches("MATCH (a)-[r1:ORDERED]->(p), (b)-[r2:ORDERED]->(p)",
                         MatchMode::kHomomorphism),
            4u);
}

TEST_F(MatcherTest, SameVariableTwiceConstrains) {
  // (a)-[:ORDERED]->(p)<-[:ORDERED]-(a) requires both ends equal: no such
  // pair of distinct rels shares the same user, so zero.
  EXPECT_EQ(CountMatches("MATCH (a)-[:ORDERED]->(p)<-[:ORDERED]-(a)"), 0u);
  // With different vars, the u1/u2 pair matches in two orders.
  EXPECT_EQ(CountMatches("MATCH (a)-[:ORDERED]->(p)<-[:ORDERED]-(b)"), 2u);
}

TEST_F(MatcherTest, BoundVariablesConstrain) {
  Table t = Table::WithColumns({"u"});
  t.AddRow({Value::Node(u1_)});
  Bindings b(&t, 0);
  EXPECT_EQ(CountMatches("MATCH (u)-[:ORDERED]->(p)", MatchMode::kRelUnique, b),
            1u);
  EXPECT_EQ(CountMatches("MATCH (u)-[:OFFERS]->(p)", MatchMode::kRelUnique, b),
            0u);
  // A bound null never matches.
  Table tn = Table::WithColumns({"u"});
  tn.AddRow({Value::Null()});
  Bindings bn(&tn, 0);
  EXPECT_EQ(CountMatches("MATCH (u)-[:ORDERED]->(p)", MatchMode::kRelUnique,
                         bn),
            0u);
}

TEST_F(MatcherTest, BoundRelVariable) {
  Table t = Table::WithColumns({"r"});
  t.AddRow({Value::Rel(r1_)});
  Bindings b(&t, 0);
  EXPECT_EQ(CountMatches("MATCH (a)-[r]->(b)", MatchMode::kRelUnique, b), 1u);
  EXPECT_EQ(CountMatches("MATCH (a)-[r:OFFERS]->(b)", MatchMode::kRelUnique, b),
            0u);
}

TEST_F(MatcherTest, VariableLengthPaths) {
  // u1 -KNOWS-> u2 -ORDERED-> p1 ; u1 -ORDERED-> p1
  EXPECT_EQ(CountMatches("MATCH (a {name: 'u1'})-[*1..2]->(p:Product)"), 2u);
  EXPECT_EQ(CountMatches("MATCH (a {name: 'u1'})-[*2..2]->(p:Product)"), 1u);
  // Zero-length: start node itself terminates the walk.
  EXPECT_EQ(CountMatches("MATCH (a {name: 'u1'})-[*0..1]->(b)"), 3u);
}

TEST_F(MatcherTest, VarLengthTrailBoundsCycles) {
  // Add a cycle u1 <-> u2 and check the walk terminates.
  ASSERT_TRUE(g_.CreateRel(u2_, u1_, knows_, {}).ok());
  EXPECT_LT(CountMatches("MATCH (a {name: 'u1'})-[:KNOWS*]->(b)"), 10u);
}

TEST_F(MatcherTest, UnboundedVarLengthRejectedUnderHomomorphism) {
  Query keep;
  auto patterns = PatternsOf("MATCH (a)-[*]->(b)", &keep);
  EvalContext ctx{&g_, nullptr};
  Status st = MatchPatterns(ctx, Bindings(), patterns,
                            MatchOptions{MatchMode::kHomomorphism},
                            [](const MatchAssignment&) -> Result<bool> {
                              return true;
                            });
  EXPECT_FALSE(st.ok());
}

TEST_F(MatcherTest, PathVariableBinds) {
  Query keep;
  auto patterns =
      PatternsOf("MATCH pp = (u:User)-[:ORDERED]->(p:Product)", &keep);
  EvalContext ctx{&g_, nullptr};
  size_t count = 0;
  Status st = MatchPatterns(
      ctx, Bindings(), patterns, MatchOptions{},
      [&](const MatchAssignment& a) -> Result<bool> {
        const Value* path = a.Find("pp");
        EXPECT_NE(path, nullptr);
        EXPECT_TRUE(path->is_path());
        EXPECT_EQ(path->AsPath().rels.size(), 1u);
        ++count;
        return true;
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 2u);
}

TEST_F(MatcherTest, HasMatchShortCircuits) {
  EvalContext ctx{&g_, nullptr};
  Query keep;
  auto patterns = PatternsOf("MATCH (u:User)", &keep);
  auto result = HasMatch(ctx, Bindings(), patterns, MatchOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
  Query keep2;
  auto none = PatternsOf("MATCH (x:Missing)", &keep2);
  auto result2 = HasMatch(ctx, Bindings(), none, MatchOptions{});
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(*result2);
}

TEST_F(MatcherTest, DeadEntitiesNeverMatch) {
  g_.DeleteRel(r4_);
  EXPECT_EQ(CountMatches("MATCH (a)-[:KNOWS]->(b)"), 0u);
  g_.DeleteRel(r1_);
  g_.DeleteRel(r2_);
  g_.DeleteRel(r3_);
  g_.DeleteNode(p1_);
  EXPECT_EQ(CountMatches("MATCH (p:Product)"), 0u);
}

TEST_F(MatcherTest, SelfLoopUndirectedMatchesOnce) {
  NodeId n = MakeNode("Loop", "n");
  ASSERT_TRUE(g_.CreateRel(n, n, knows_, {}).ok());
  EXPECT_EQ(CountMatches("MATCH (a:Loop)-[:KNOWS]-(b)"), 1u);
  EXPECT_EQ(CountMatches("MATCH (a:Loop)-[:KNOWS]->(b:Loop)"), 1u);
}

TEST_F(MatcherTest, DeterministicEnumerationOrder) {
  Query keep;
  auto patterns = PatternsOf("MATCH (u:User)-[:ORDERED]->(p)", &keep);
  EvalContext ctx{&g_, nullptr};
  std::vector<uint32_t> order1, order2;
  for (auto* order : {&order1, &order2}) {
    Status st = MatchPatterns(ctx, Bindings(), patterns, MatchOptions{},
                              [&](const MatchAssignment& a) -> Result<bool> {
                                order->push_back(a.Find("u")->AsNode().value);
                                return true;
                              });
    ASSERT_TRUE(st.ok());
  }
  EXPECT_EQ(order1, order2);
  EXPECT_TRUE(std::is_sorted(order1.begin(), order1.end()));
}

}  // namespace
}  // namespace cypher
