// Negative parser tests: every malformed input must fail with a
// SyntaxError (never crash, never mis-parse), and messages carry
// locations. Parameterized sweep over a corpus of broken queries.

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace cypher {
namespace {

class ParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrorTest, FailsWithSyntaxError) {
  auto q = ParseQuery(GetParam());
  ASSERT_FALSE(q.ok()) << "unexpectedly parsed: " << GetParam();
  EXPECT_EQ(q.status().code(), StatusCode::kSyntaxError) << GetParam();
  EXPECT_NE(q.status().message().find("line"), std::string::npos)
      << "no location in: " << q.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParserErrorTest,
    ::testing::Values(
        // Lexical errors.
        "MATCH (n) WHERE n.x = 'unterminated",
        "MATCH (n) RETURN n /* unterminated comment",
        "MATCH (n) WHERE n.x = $ RETURN n",
        "MATCH (n) RETURN n ~",
        "MATCH (n) WHERE n.s = 'bad \\q escape' RETURN n",
        // Unbalanced structure.
        "MATCH (n RETURN n",
        "MATCH (n) RETURN n)",
        "MATCH (n)-[:T->(m) RETURN n",
        "MATCH (n) WHERE (n.x = 1 RETURN n",
        "RETURN [1, 2",
        "RETURN {a: 1",
        // Clause-level mistakes.
        "MATCH",
        "RETURN",
        "MATCH (n) RETURN",
        "WHERE n.x = 1 RETURN n",           // WHERE is not a clause
        "MATCH (n) RETURN n MATCH (m)",     // RETURN must be last
        "UNWIND [1,2] x RETURN x",          // missing AS
        "MATCH (n) DELETE",                  // missing expression
        "MATCH (n) SET",                     // missing items
        "MATCH (n) SET n..x = 1",
        "MATCH (n) SET 1 = 2",               // bad target
        "MATCH (n) REMOVE n",                // bare variable
        "MATCH (n) DETACH (n)",              // DETACH without DELETE
        // Patterns.
        "MATCH (n)<-[:T]->(m) RETURN n",     // both directions
        "MATCH (n)-[:T*..2..3]->(m) RETURN n",
        "MATCH ()-] RETURN 1 AS x",
        "CREATE (a)-(b)",                    // missing brackets arrow
        // MERGE forms.
        "MERGE",
        "MERGE ALL",
        "MERGE (a) ON SET a.x = 1",          // ON needs CREATE/MATCH
        "MERGE (a) ON CREATE a.x = 1",       // missing SET
        // Projections.
        "MATCH (n) RETURN n AS",             // missing alias
        "MATCH (n) RETURN n ORDER n",        // ORDER without BY
        "MATCH (n) RETURN n SKIP",           // missing count
        // Unions.
        "RETURN 1 AS x UNION",
        // FOREACH.
        "FOREACH (x IN [1] CREATE (:N))",    // missing pipe
        "FOREACH (x IN [1] | )",             // empty body
        "FOREACH (x IN [1] | RETURN x)",     // reading clause in body
        // Comprehension / quantifier / reduce.
        "RETURN [x IN [1] WHERE]",
        "RETURN all(x IN [1])",              // missing WHERE
        "RETURN reduce(acc, x IN [1] | acc)",  // missing init
        // DDL.
        "CREATE INDEX ON User(id)",          // missing colon
        "CREATE INDEX ON :User",             // missing key
        "DROP (n)",                          // DROP needs INDEX/CONSTRAINT
        "CREATE CONSTRAINT ON (u:User) ASSERT v.id IS UNIQUE",
        "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS",
        // shortestPath shape errors.
        "MATCH p = shortestPath((a)) RETURN p",
        "MATCH p = shortestPath((a)-[:T]->(b)) RETURN p",
        // Trailing garbage.
        "MATCH (n) RETURN n extra_token_here (",
        "MATCH (n) RETURN n; MATCH (m) RETURN m"));

// Messages should name what was expected where possible.
TEST(ParserErrorMessageTest, MentionsExpectedToken) {
  auto q = ParseQuery("MATCH (n RETURN n");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("expected"), std::string::npos);
}

TEST(ParserErrorMessageTest, MentionsOffendingIdentifier) {
  auto q = ParseQuery("FROB (n) RETURN n");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("FROB"), std::string::npos);
}

TEST(ParserErrorMessageTest, DeepNestingRejectedNotCrashing) {
  std::string deep = "RETURN ";
  for (int i = 0; i < 2000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 2000; ++i) deep += ")";
  auto q = ParseQuery(deep);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("nesting too deep"), std::string::npos);
  // Long unary chains likewise.
  std::string minus = "RETURN " + std::string(5000, '-') + "1 AS x";
  EXPECT_FALSE(ParseQuery(minus).ok());
  // Moderate nesting still parses.
  std::string moderate = "RETURN ";
  for (int i = 0; i < 50; ++i) moderate += "(";
  moderate += "1";
  for (int i = 0; i < 50; ++i) moderate += ")";
  moderate += " AS x";
  EXPECT_TRUE(ParseQuery(moderate).ok());
}

// A few near-miss inputs that MUST parse (guard against over-rejection).
class ParserAcceptTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserAcceptTest, Parses) {
  auto q = ParseQuery(GetParam());
  EXPECT_TRUE(q.ok()) << GetParam() << " -> " << q.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParserAcceptTest,
    ::testing::Values(
        "MATCH (n) RETURN n;",                       // trailing semicolon
        "match (n) return n",                        // lowercase keywords
        "MATCH (`weird name`) RETURN `weird name`",  // backquoted
        "MATCH (match) RETURN match",                // keyword as variable
        "RETURN -1 AS x",
        "RETURN - - 1 AS x",
        "RETURN 1+-2 AS x",
        "MATCH (a)--(b) RETURN a",                   // bare undirected
        "MATCH (a)-->(b)<--(c) RETURN a",
        "MERGE all = (a)-[:T]->(b)",                 // path var named all
        "MERGE (same:Label) RETURN same",            // var named same
        "RETURN [x IN [1,2]] AS copy",
        "MATCH (n) WHERE exists(n.prop) RETURN n",
        "RETURN {a: 1, b: [2, {c: 3}]} AS nested",
        "MATCH (n) RETURN count(DISTINCT n)",
        "CREATE INDEX ON :User(id)",
        "/* leading comment */ MATCH (n) RETURN n // trailing"));

}  // namespace
}  // namespace cypher
