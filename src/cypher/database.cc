#include "cypher/database.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "graph/serialize.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace cypher {

Result<QueryResult> GraphDatabase::Execute(std::string_view query,
                                           const ValueMap& params,
                                           const EvalOptions& options) {
  CYPHER_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  return ExecuteQuery(&graph_, ast, params, options);
}

Status GraphDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << DumpGraph(graph_);
  if (!out.good()) return Status::InvalidArgument("write failed: " + path);
  return Status::OK();
}

Status GraphDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CYPHER_ASSIGN_OR_RETURN(PropertyGraph loaded, LoadGraph(buffer.str()));
  graph_ = std::move(loaded);
  return Status::OK();
}

Result<std::vector<std::string>> SplitStatements(std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  std::vector<std::string> statements;
  size_t begin = 0;  // byte offset of the current statement
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kSemicolon && token.kind != TokenKind::kEnd) {
      continue;
    }
    std::string_view piece = script.substr(begin, token.offset - begin);
    piece = StripAsciiWhitespace(piece);
    if (!piece.empty()) statements.emplace_back(piece);
    begin = token.offset + 1;
  }
  return statements;
}

Result<std::vector<QueryResult>> GraphDatabase::ExecuteScript(
    std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                          SplitStatements(script));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (const std::string& statement : statements) {
    CYPHER_ASSIGN_OR_RETURN(QueryResult result, Execute(statement));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace cypher
