#include "cypher/database.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>

#include "ast/printer.h"
#include "common/check.h"
#include "common/strings.h"
#include "exec/render.h"
#include "graph/serialize.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "replication/log_shipper.h"
#include "replication/transport.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "vm/compiler.h"
#include "vm/normalize.h"
#include "vm/vm.h"

namespace cypher {

namespace {

/// Execution options that could conceivably steer plan compilation are
/// folded into every cache key, so sessions running different semantics
/// never share an entry. (Today's Programs read all options at runtime —
/// the fingerprint is cheap insurance against that ever changing.)
std::string OptionsFingerprint(const EvalOptions& options) {
  std::string fp;
  fp += std::to_string(static_cast<int>(options.semantics));
  fp += '|';
  fp += std::to_string(static_cast<int>(options.match_mode));
  fp += '|';
  fp += options.strict_cypher9_syntax ? '1' : '0';
  fp += '|';
  fp += options.plain_merge_variant
            ? std::to_string(static_cast<int>(*options.plain_merge_variant))
            : std::string("-");
  fp += '|';
  // Snapshot sessions key on their pinned epoch: a pinned compile skips
  // index anchors and its stamped match-plan slots are epoch-specific, so
  // sharing one Program between the writer and a pinned session (or two
  // sessions at different epochs) would recompile the slot on every
  // alternation — under the slot mutex, serializing the very readers MVCC
  // is meant to unleash. Distinct keys give each (session, epoch) a stable
  // warm plan; the LRU evicts entries from epochs nobody pins anymore.
  if (options.read_pin != nullptr) {
    fp += "pin" + std::to_string(options.read_pin->epoch);
    fp += '|';
  }
  return fp;
}

/// Appends the execution-tier row to an EXPLAIN plan, after the SEMANTICS
/// row: which tier a normal execution of this statement takes (vm /
/// interpreter) and how the plan cache would treat it.
void AppendTierRow(QueryResult* result, const char* tier,
                   const std::string& disposition) {
  int64_t step =
      result->rows.empty() ? 0 : result->rows.back().front().AsInt() + 1;
  result->rows.push_back(
      {Value::Int(step), Value::String("TIER"),
       Value::String(std::string(tier) + "; plan cache: " + disposition)});
}

}  // namespace

/// Write-ahead-log state of a durable database: the group-commit writer
/// plus the lock that serializes statement execution (parse and fsync
/// happen outside it, so concurrent sessions overlap everywhere the graph
/// itself is not involved).
struct GraphDatabase::WalSession {
  WalSession(std::unique_ptr<storage::LogFile> file, DurabilityOptions opts)
      : writer(std::move(file)), durability(opts) {}

  std::mutex exec_mu;
  storage::WalWriter writer;
  DurabilityOptions durability;
  /// Log size right after the last (auto or explicit) checkpoint; the
  /// auto-checkpoint hysteresis compares against it. Guarded by exec_mu.
  uint64_t last_checkpoint_bytes = 0;
};

GraphDatabase::GraphDatabase(EvalOptions options)
    : options_(std::move(options)),
      plan_cache_(std::make_unique<PlanCache>()),
      open_read_sessions_(std::make_unique<std::atomic<int>>(0)) {}
GraphDatabase::GraphDatabase(GraphDatabase&&) noexcept = default;
GraphDatabase& GraphDatabase::operator=(GraphDatabase&&) noexcept = default;
GraphDatabase::~GraphDatabase() = default;

Result<QueryResult> GraphDatabase::Execute(std::string_view query,
                                           const ValueMap& params,
                                           const EvalOptions& options) {
  return ExecuteWith(query, params, options, &session_counters_);
}

Result<QueryResult> GraphDatabase::ExecuteWith(std::string_view query,
                                               const ValueMap& params,
                                               const EvalOptions& options,
                                               SessionCacheCounters* counters) {
  if (options.use_plan_cache) {
    return ExecuteCached(query, params, options, counters);
  }
  CYPHER_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  auto run = [&](const CommitHook& hook) -> Result<QueryResult> {
    return ExecuteQuery(&graph_, ast, params, options, hook);
  };
  Result<QueryResult> result = RunStatement(run, options);
  if (result.ok() && ast.mode == QueryMode::kExplain) {
    AppendTierRow(&*result, "interpreter", "disabled");
  }
  return result;
}

Result<QueryResult> GraphDatabase::ExecuteCached(std::string_view query,
                                                 const ValueMap& params,
                                                 const EvalOptions& options,
                                                 SessionCacheCounters* counters) {
  std::string fingerprint = OptionsFingerprint(options);
  std::string raw_key = fingerprint + "raw:" + std::string(query);

  std::shared_ptr<const CachedPlan> plan;
  std::vector<Value> literals;
  if (auto raw_hit = plan_cache_->LookupRaw(raw_key)) {
    ++counters->hits;
    plan = std::move(raw_hit->first);
    literals = std::move(raw_hit->second);
  } else {
    CYPHER_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
    if (ast.mode != QueryMode::kNormal || HasDdlClause(ast)) {
      // Uncacheable: EXPLAIN/PROFILE report on plans rather than produce
      // rows (and must print the statement's own literals, not $#N), and
      // DDL self-invalidates whatever it would cache. Run the interpreter
      // on the original, un-parametrized statement.
      bool ddl = HasDdlClause(ast);
      auto run = [&](const CommitHook& hook) -> Result<QueryResult> {
        return ExecuteQuery(&graph_, ast, params, options, hook);
      };
      Result<QueryResult> result = RunStatement(run, options);
      if (result.ok() && ast.mode == QueryMode::kExplain) {
        if (ddl) {
          AppendTierRow(&*result, "interpreter", "uncacheable (DDL)");
        } else {
          // What would a normal execution of this statement do right now?
          Query probe = CloneQuery(ast);
          probe.mode = QueryMode::kNormal;
          std::vector<Value> probe_literals;
          ParametrizeQuery(&probe, &probe_literals);
          bool warm = plan_cache_->PeekShape(fingerprint +
                                             "shape:" + ToCypher(probe));
          AppendTierRow(&*result, "vm", warm ? "hit" : "miss");
        }
      }
      return result;
    }

    ParametrizeQuery(&ast, &literals);
    std::string shape_key = fingerprint + "shape:" + ToCypher(ast);
    plan = plan_cache_->LookupShape(shape_key);
    if (plan == nullptr) {
      ++counters->misses;
      // Move the AST into the entry first, compile second: the Program's
      // pointers reach into heap-allocated clause nodes, which do not move
      // with the Query object.
      auto fresh = std::make_shared<CachedPlan>();
      fresh->ast = std::move(ast);
      fresh->num_params = literals.size();
      fresh->program = CompileStatement(fresh->ast);
      plan = std::move(fresh);
      plan_cache_->InsertShape(shape_key, plan);
    } else {
      ++counters->hits;
    }
    plan_cache_->InsertRaw(raw_key, plan, literals);
  }

  // Bind the extracted literals as `$#i`. The lexer cannot produce a `#`
  // parameter name, so emplace never collides with a user parameter.
  ValueMap merged = params;
  for (size_t i = 0; i < literals.size(); ++i) {
    merged.emplace("#" + std::to_string(i), std::move(literals[i]));
  }
  auto run = [&](const CommitHook& hook) -> Result<QueryResult> {
    return RunProgram(&graph_, *plan->program, plan->ast, merged, options,
                      hook);
  };
  return RunStatement(run, options);
}

Result<QueryResult> GraphDatabase::RunStatement(const PlanExecutor& run,
                                                const EvalOptions& options) {
  // Snapshot session: the statement reads a pinned committed epoch and
  // writes nothing — no execution lock, no WAL, no epoch publication. This
  // is the lock-free path that lets N readers run concurrently with the
  // committing writer.
  if (options.read_pin != nullptr) return run(nullptr);
  if (wal_ != nullptr) return ExecuteDurableWith(run);
  Result<QueryResult> result = run(nullptr);
  if (result.ok() && graph_.mvcc_enabled()) graph_.PublishEpoch();
  return result;
}

Status GraphDatabase::OpenDurable(std::unique_ptr<storage::LogFile> file,
                                  DurabilityOptions durability) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("write-ahead log already attached");
  }
  if (open_read_sessions_->load() != 0) {
    // Recovery may replace the graph object wholesale; live pins reference
    // the old graph's registry and version chains.
    return Status::InvalidArgument(
        "cannot attach a write-ahead log while snapshot read sessions are "
        "open");
  }
  if (file->size() == 0) {
    // Fresh log: magic plus a snapshot of whatever the caller loaded so
    // far, made durable before the first statement can commit against it.
    CYPHER_RETURN_NOT_OK(
        file->Append(storage::kWalMagic, storage::kWalMagicSize));
    std::string snap = storage::EncodeWalRecord(
        storage::WalRecordType::kSnapshot, storage::EncodeSnapshot(graph_));
    CYPHER_RETURN_NOT_OK(file->Append(snap.data(), snap.size()));
    CYPHER_RETURN_NOT_OK(file->Sync());
  } else {
    CYPHER_ASSIGN_OR_RETURN(std::string bytes, file->ReadAll());
    CYPHER_ASSIGN_OR_RETURN(storage::RecoveredGraph recovered,
                            storage::RecoverGraph(bytes));
    // Drop the torn tail (if any) so new records append to a clean prefix.
    CYPHER_RETURN_NOT_OK(file->Truncate(recovered.valid_bytes));
    graph_ = std::move(recovered.graph);
    // The graph object was replaced: every cached match plan is stamped
    // against the old one, and an equal-looking stamp must not revive it.
    plan_cache_->Clear();
    // A recovered graph starts life non-MVCC; restore the session switch.
    if (mvcc_requested_) graph_.EnableMvcc();
  }
  wal_ = std::make_unique<WalSession>(std::move(file), durability);
  wal_->last_checkpoint_bytes = wal_->writer.LogBytes();
  return Status::OK();
}

Status GraphDatabase::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("database has no write-ahead log");
  }
  {
    std::lock_guard<std::mutex> lock(wal_->exec_mu);
    Result<uint64_t> lsn = wal_->writer.Append(
        storage::WalRecordType::kSnapshot, storage::EncodeSnapshot(graph_));
    if (!lsn.ok()) return lsn.status();
    CYPHER_RETURN_NOT_OK(wal_->writer.Sync(*lsn));
    wal_->last_checkpoint_bytes = wal_->writer.LogBytes();
  }
  // A checkpoint record is just another shippable record: contiguous
  // followers skip its payload (they already hold that state) but their
  // cursors advance past it.
  if (shipper_ != nullptr) (void)shipper_->Pump();
  return Status::OK();
}

void GraphDatabase::MaybeAutoCheckpoint() {
  uint64_t threshold = wal_->durability.auto_checkpoint_bytes;
  if (threshold == 0) return;
  uint64_t bytes = wal_->writer.LogBytes();
  // Hysteresis: a graph whose snapshot alone exceeds the threshold would
  // otherwise compact on every commit; require the log to have doubled
  // since the last checkpoint before paying for another one.
  if (bytes <= threshold || bytes < 2 * wal_->last_checkpoint_bytes) return;
  // Retention: a lagging follower's pin means compaction would drop bytes
  // it has not fetched yet. Skip — the log keeps growing until the pin
  // catches up or the follower detaches, then the next commit compacts.
  // (Rewrite re-checks under its own lock; this just avoids paying for a
  // snapshot encode that would be refused.)
  if (wal_->writer.MinRetentionPin() < wal_->writer.appended_lsn()) return;
  Status st = wal_->writer.Rewrite(storage::WalRecordType::kSnapshot,
                                   storage::EncodeSnapshot(graph_));
  // A failed rewrite poisons the writer (sticky error); the next update
  // statement surfaces it. The current statement already committed — its
  // effects are in the snapshot we just failed to write, and the old log
  // contents still hold its record or predecessors up to the durable
  // prefix, so nothing acknowledged is lost beyond the existing
  // group-commit contract.
  if (st.ok()) wal_->last_checkpoint_bytes = wal_->writer.LogBytes();
}

Status GraphDatabase::wal_error() const {
  return wal_ == nullptr ? Status::OK() : wal_->writer.error();
}

storage::WalWriter* GraphDatabase::wal_writer() {
  return wal_ == nullptr ? nullptr : &wal_->writer;
}

Result<QueryResult> GraphDatabase::ExecuteDurableWith(const PlanExecutor& run) {
  bool group_sync =
      wal_->durability.sync_mode == DurabilityOptions::SyncMode::kGroupCommit;
  uint64_t lsn = 0;
  bool logged = false;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    std::lock_guard<std::mutex> lock(wal_->exec_mu);
    // A poisoned log refuses further statements: the in-memory graph may
    // already be ahead of the durable prefix (group commit), and anything
    // committed now could silently vanish on recovery.
    CYPHER_RETURN_NOT_OK(wal_->writer.error());
    graph_.BeginRedoCapture();
    CommitHook hook = [&]() -> Status {
      std::string redo = graph_.TakeRedoLog();
      if (redo.empty()) return Status::OK();  // read-only: nothing to log
      Result<uint64_t> appended =
          wal_->writer.Append(storage::WalRecordType::kStatement, redo);
      if (!appended.ok()) return appended.status();
      lsn = *appended;
      logged = true;
      // Every-commit mode makes the record durable before the statement
      // commits in memory; a failure here rolls the statement back whole.
      if (!group_sync) return wal_->writer.Sync(lsn);
      return Status::OK();
    };
    Result<QueryResult> r = run(hook);
    graph_.AbortRedoCapture();  // no-op when the hook consumed the log
    if (r.ok()) {
      // The commit point: the statement is in memory and its record at
      // least appended. Publish the next epoch while still holding the
      // execution lock — a pin acquired from here on observes it.
      if (graph_.mvcc_enabled()) graph_.PublishEpoch();
      MaybeAutoCheckpoint();
    }
    return r;
  }();
  // Group commit: fsync outside the execution lock, so statements executed
  // meanwhile by other sessions pile their records into the same sync.
  if (result.ok() && logged && group_sync) {
    CYPHER_RETURN_NOT_OK(wal_->writer.Sync(lsn));
  }
  // Ship the newly durable bytes to any attached followers. A transport
  // hiccup never fails the statement — the shipper's cursors stay put and
  // the next pump retries.
  if (result.ok() && logged && shipper_ != nullptr) (void)shipper_->Pump();
  return result;
}

// ---- Log-shipping replication -----------------------------------------------

Result<int> GraphDatabase::AttachFollower(
    std::shared_ptr<replication::Transport> transport,
    ReplicationOptions options) {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "replication requires a write-ahead log (OpenDurable first)");
  }
  if (transport == nullptr) {
    return Status::InvalidArgument("AttachFollower needs a transport");
  }
  EnsureShipper(options);
  int id;
  {
    // Under the execution lock the graph and the log end cannot move, so
    // the bootstrap snapshot is consistent with exactly the statements
    // below the attach LSN — the invariant every later segment extends.
    std::lock_guard<std::mutex> lock(wal_->exec_mu);
    id = shipper_->Attach(std::move(transport), wal_->writer.appended_lsn(),
                          storage::EncodeSnapshot(graph_));
  }
  (void)shipper_->Pump();
  return id;
}

Result<int> GraphDatabase::AttachFollowerAt(
    std::shared_ptr<replication::Transport> transport, uint64_t lsn,
    ReplicationOptions options) {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "replication requires a write-ahead log (OpenDurable first)");
  }
  if (transport == nullptr) {
    return Status::InvalidArgument("AttachFollowerAt needs a transport");
  }
  if (lsn < wal_->writer.min_resume_lsn()) {
    return Status::InvalidArgument(
        "resume lsn " + std::to_string(lsn) +
        " predates log retention (resume floor " +
        std::to_string(wal_->writer.min_resume_lsn()) +
        "); the follower must re-bootstrap");
  }
  if (lsn > wal_->writer.appended_lsn()) {
    return Status::InvalidArgument(
        "resume lsn " + std::to_string(lsn) + " is past the log end " +
        std::to_string(wal_->writer.appended_lsn()));
  }
  EnsureShipper(options);
  // No snapshot and no execution lock needed: the follower's own durable
  // log stands in for the bootstrap. AttachAt registers the retention pin;
  // a compaction racing between the resume-floor check above and the pin
  // could still have dropped the bytes, so re-check once the pin is in
  // place and undo the attach if retention moved past us.
  int id = shipper_->AttachAt(std::move(transport), lsn);
  if (lsn < wal_->writer.min_resume_lsn()) {
    (void)shipper_->Detach(id);
    return Status::InvalidArgument(
        "resume lsn " + std::to_string(lsn) +
        " was compacted away during attach; the follower must re-bootstrap");
  }
  (void)shipper_->Pump();
  return id;
}

void GraphDatabase::EnsureShipper(const ReplicationOptions& options) {
  if (shipper_ != nullptr) return;
  replication::ShipperOptions shipper_options;
  shipper_options.segment_bytes = options.segment_bytes;
  shipper_options.max_retained_bytes = options.max_retained_bytes;
  shipper_ =
      std::make_unique<replication::LogShipper>(&wal_->writer, shipper_options);
}

Status GraphDatabase::DetachFollower(int id) {
  if (shipper_ == nullptr) {
    return Status::InvalidArgument("no followers attached");
  }
  return shipper_->Detach(id);
}

Status GraphDatabase::PumpReplication() {
  if (shipper_ == nullptr) return Status::OK();
  return shipper_->Pump();
}

ReplicationStatus GraphDatabase::replication_status() const {
  ReplicationStatus status;
  if (wal_ != nullptr) {
    status.appended_lsn = wal_->writer.appended_lsn();
    status.durable_lsn = wal_->writer.durable_lsn();
    status.log_bytes = wal_->writer.LogBytes();
  }
  status.min_acked_lsn = UINT64_MAX;
  if (shipper_ != nullptr) {
    for (const replication::FollowerStatus& f : shipper_->Statuses()) {
      status.detail.push_back({f.id, f.acked_lsn, f.shipped_lsn, f.resends,
                               f.link});
      status.min_acked_lsn = std::min(status.min_acked_lsn, f.acked_lsn);
    }
    status.followers = status.detail.size();
    status.stale_detaches = shipper_->stale_detaches();
    status.last_stale_warning = shipper_->last_stale_warning();
  }
  return status;
}

Status GraphDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << DumpGraph(graph_);
  if (!out.good()) return Status::InvalidArgument("write failed: " + path);
  return Status::OK();
}

Status GraphDatabase::LoadFromFile(const std::string& path) {
  if (open_read_sessions_->load() != 0) {
    return Status::InvalidArgument(
        "cannot replace the graph while snapshot read sessions are open");
  }
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CYPHER_ASSIGN_OR_RETURN(PropertyGraph loaded, LoadGraph(buffer.str()));
  graph_ = std::move(loaded);
  plan_cache_->Clear();  // cached plans are stamped against the old graph
  if (mvcc_requested_) graph_.EnableMvcc();
  return Status::OK();
}

// ---- Snapshot read sessions -------------------------------------------------

Status GraphDatabase::EnableMvcc() {
  if (mvcc_requested_ && graph_.mvcc_enabled()) return Status::OK();
  mvcc_requested_ = true;
  graph_.EnableMvcc();
  return Status::OK();
}

Result<GraphDatabase::ReadSession> GraphDatabase::BeginReadSession() {
  if (!graph_.mvcc_enabled()) {
    return Status::InvalidArgument(
        "snapshot read sessions require EnableMvcc() first");
  }
  ReadPin pin = graph_.AcquireReadPin();
  open_read_sessions_->fetch_add(1);
  return ReadSession(this, pin);
}

Result<QueryResult> GraphDatabase::ReadSession::Execute(
    std::string_view query, const ValueMap& params) {
  CYPHER_CHECK(db_ != nullptr && "Execute on a moved-from ReadSession");
  EvalOptions options = db_->options_;
  options.read_pin = &pin_;
  return db_->ExecuteWith(query, params, options, &counters_);
}

Result<std::string> GraphDatabase::ReadSession::ExecuteRendered(
    std::string_view query, const ValueMap& params) {
  CYPHER_ASSIGN_OR_RETURN(QueryResult result, Execute(query, params));
  ScopedReadPin scope(pin_);
  return RenderResult(db_->graph_, result);
}

void GraphDatabase::ReadSession::Refresh() {
  CYPHER_CHECK(db_ != nullptr && "Refresh on a moved-from ReadSession");
  db_->graph_.RefreshReadPin(&pin_);
}

void GraphDatabase::ReadSession::Close() {
  if (db_ == nullptr) return;
  db_->graph_.ReleaseReadPin(pin_);
  db_->open_read_sessions_->fetch_sub(1);
  db_ = nullptr;
}

Result<std::vector<std::string>> SplitStatements(std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  std::vector<std::string> statements;
  size_t begin = 0;  // byte offset of the current statement
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kSemicolon && token.kind != TokenKind::kEnd) {
      continue;
    }
    std::string_view piece = script.substr(begin, token.offset - begin);
    piece = StripAsciiWhitespace(piece);
    if (!piece.empty()) statements.emplace_back(piece);
    begin = token.offset + 1;
  }
  return statements;
}

Result<std::vector<QueryResult>> GraphDatabase::ExecuteScript(
    std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                          SplitStatements(script));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (const std::string& statement : statements) {
    CYPHER_ASSIGN_OR_RETURN(QueryResult result, Execute(statement));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace cypher
