#include "cypher/database.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "ast/printer.h"
#include "common/strings.h"
#include "graph/serialize.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "vm/compiler.h"
#include "vm/normalize.h"
#include "vm/vm.h"

namespace cypher {

namespace {

/// Execution options that could conceivably steer plan compilation are
/// folded into every cache key, so sessions running different semantics
/// never share an entry. (Today's Programs read all options at runtime —
/// the fingerprint is cheap insurance against that ever changing.)
std::string OptionsFingerprint(const EvalOptions& options) {
  std::string fp;
  fp += std::to_string(static_cast<int>(options.semantics));
  fp += '|';
  fp += std::to_string(static_cast<int>(options.match_mode));
  fp += '|';
  fp += options.strict_cypher9_syntax ? '1' : '0';
  fp += '|';
  fp += options.plain_merge_variant
            ? std::to_string(static_cast<int>(*options.plain_merge_variant))
            : std::string("-");
  fp += '|';
  return fp;
}

/// Appends the execution-tier row to an EXPLAIN plan, after the SEMANTICS
/// row: which tier a normal execution of this statement takes (vm /
/// interpreter) and how the plan cache would treat it.
void AppendTierRow(QueryResult* result, const char* tier,
                   const std::string& disposition) {
  int64_t step =
      result->rows.empty() ? 0 : result->rows.back().front().AsInt() + 1;
  result->rows.push_back(
      {Value::Int(step), Value::String("TIER"),
       Value::String(std::string(tier) + "; plan cache: " + disposition)});
}

}  // namespace

/// Write-ahead-log state of a durable database: the group-commit writer
/// plus the lock that serializes statement execution (parse and fsync
/// happen outside it, so concurrent sessions overlap everywhere the graph
/// itself is not involved).
struct GraphDatabase::WalSession {
  WalSession(std::unique_ptr<storage::LogFile> file, DurabilityOptions opts)
      : writer(std::move(file)), durability(opts) {}

  std::mutex exec_mu;
  storage::WalWriter writer;
  DurabilityOptions durability;
};

GraphDatabase::GraphDatabase(EvalOptions options)
    : options_(std::move(options)),
      plan_cache_(std::make_unique<PlanCache>()) {}
GraphDatabase::GraphDatabase(GraphDatabase&&) noexcept = default;
GraphDatabase& GraphDatabase::operator=(GraphDatabase&&) noexcept = default;
GraphDatabase::~GraphDatabase() = default;

Result<QueryResult> GraphDatabase::Execute(std::string_view query,
                                           const ValueMap& params,
                                           const EvalOptions& options) {
  if (options.use_plan_cache) return ExecuteCached(query, params, options);
  CYPHER_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  auto run = [&](const CommitHook& hook) -> Result<QueryResult> {
    return ExecuteQuery(&graph_, ast, params, options, hook);
  };
  Result<QueryResult> result =
      wal_ != nullptr ? ExecuteDurableWith(run) : run(nullptr);
  if (result.ok() && ast.mode == QueryMode::kExplain) {
    AppendTierRow(&*result, "interpreter", "disabled");
  }
  return result;
}

Result<QueryResult> GraphDatabase::ExecuteCached(std::string_view query,
                                                 const ValueMap& params,
                                                 const EvalOptions& options) {
  std::string fingerprint = OptionsFingerprint(options);
  std::string raw_key = fingerprint + "raw:" + std::string(query);

  std::shared_ptr<const CachedPlan> plan;
  std::vector<Value> literals;
  if (auto raw_hit = plan_cache_->LookupRaw(raw_key)) {
    plan = std::move(raw_hit->first);
    literals = std::move(raw_hit->second);
  } else {
    CYPHER_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
    if (ast.mode != QueryMode::kNormal || HasDdlClause(ast)) {
      // Uncacheable: EXPLAIN/PROFILE report on plans rather than produce
      // rows (and must print the statement's own literals, not $#N), and
      // DDL self-invalidates whatever it would cache. Run the interpreter
      // on the original, un-parametrized statement.
      bool ddl = HasDdlClause(ast);
      auto run = [&](const CommitHook& hook) -> Result<QueryResult> {
        return ExecuteQuery(&graph_, ast, params, options, hook);
      };
      Result<QueryResult> result =
          wal_ != nullptr ? ExecuteDurableWith(run) : run(nullptr);
      if (result.ok() && ast.mode == QueryMode::kExplain) {
        if (ddl) {
          AppendTierRow(&*result, "interpreter", "uncacheable (DDL)");
        } else {
          // What would a normal execution of this statement do right now?
          Query probe = CloneQuery(ast);
          probe.mode = QueryMode::kNormal;
          std::vector<Value> probe_literals;
          ParametrizeQuery(&probe, &probe_literals);
          bool warm = plan_cache_->PeekShape(fingerprint +
                                             "shape:" + ToCypher(probe));
          AppendTierRow(&*result, "vm", warm ? "hit" : "miss");
        }
      }
      return result;
    }

    ParametrizeQuery(&ast, &literals);
    std::string shape_key = fingerprint + "shape:" + ToCypher(ast);
    plan = plan_cache_->LookupShape(shape_key);
    if (plan == nullptr) {
      // Move the AST into the entry first, compile second: the Program's
      // pointers reach into heap-allocated clause nodes, which do not move
      // with the Query object.
      auto fresh = std::make_shared<CachedPlan>();
      fresh->ast = std::move(ast);
      fresh->num_params = literals.size();
      fresh->program = CompileStatement(fresh->ast);
      plan = std::move(fresh);
      plan_cache_->InsertShape(shape_key, plan);
    }
    plan_cache_->InsertRaw(raw_key, plan, literals);
  }

  // Bind the extracted literals as `$#i`. The lexer cannot produce a `#`
  // parameter name, so emplace never collides with a user parameter.
  ValueMap merged = params;
  for (size_t i = 0; i < literals.size(); ++i) {
    merged.emplace("#" + std::to_string(i), std::move(literals[i]));
  }
  auto run = [&](const CommitHook& hook) -> Result<QueryResult> {
    return RunProgram(&graph_, *plan->program, plan->ast, merged, options,
                      hook);
  };
  if (wal_ != nullptr) return ExecuteDurableWith(run);
  return run(nullptr);
}

Status GraphDatabase::OpenDurable(std::unique_ptr<storage::LogFile> file,
                                  DurabilityOptions durability) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("write-ahead log already attached");
  }
  if (file->size() == 0) {
    // Fresh log: magic plus a snapshot of whatever the caller loaded so
    // far, made durable before the first statement can commit against it.
    CYPHER_RETURN_NOT_OK(
        file->Append(storage::kWalMagic, storage::kWalMagicSize));
    std::string snap = storage::EncodeWalRecord(
        storage::WalRecordType::kSnapshot, storage::EncodeSnapshot(graph_));
    CYPHER_RETURN_NOT_OK(file->Append(snap.data(), snap.size()));
    CYPHER_RETURN_NOT_OK(file->Sync());
  } else {
    CYPHER_ASSIGN_OR_RETURN(std::string bytes, file->ReadAll());
    CYPHER_ASSIGN_OR_RETURN(storage::RecoveredGraph recovered,
                            storage::RecoverGraph(bytes));
    // Drop the torn tail (if any) so new records append to a clean prefix.
    CYPHER_RETURN_NOT_OK(file->Truncate(recovered.valid_bytes));
    graph_ = std::move(recovered.graph);
    // The graph object was replaced: every cached match plan is stamped
    // against the old one, and an equal-looking stamp must not revive it.
    plan_cache_->Clear();
  }
  wal_ = std::make_unique<WalSession>(std::move(file), durability);
  return Status::OK();
}

Status GraphDatabase::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("database has no write-ahead log");
  }
  std::lock_guard<std::mutex> lock(wal_->exec_mu);
  Result<uint64_t> lsn = wal_->writer.Append(storage::WalRecordType::kSnapshot,
                                             storage::EncodeSnapshot(graph_));
  if (!lsn.ok()) return lsn.status();
  return wal_->writer.Sync(*lsn);
}

Status GraphDatabase::wal_error() const {
  return wal_ == nullptr ? Status::OK() : wal_->writer.error();
}

storage::WalWriter* GraphDatabase::wal_writer() {
  return wal_ == nullptr ? nullptr : &wal_->writer;
}

Result<QueryResult> GraphDatabase::ExecuteDurableWith(const PlanExecutor& run) {
  bool group_sync =
      wal_->durability.sync_mode == DurabilityOptions::SyncMode::kGroupCommit;
  uint64_t lsn = 0;
  bool logged = false;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    std::lock_guard<std::mutex> lock(wal_->exec_mu);
    // A poisoned log refuses further statements: the in-memory graph may
    // already be ahead of the durable prefix (group commit), and anything
    // committed now could silently vanish on recovery.
    CYPHER_RETURN_NOT_OK(wal_->writer.error());
    graph_.BeginRedoCapture();
    CommitHook hook = [&]() -> Status {
      std::string redo = graph_.TakeRedoLog();
      if (redo.empty()) return Status::OK();  // read-only: nothing to log
      Result<uint64_t> appended =
          wal_->writer.Append(storage::WalRecordType::kStatement, redo);
      if (!appended.ok()) return appended.status();
      lsn = *appended;
      logged = true;
      // Every-commit mode makes the record durable before the statement
      // commits in memory; a failure here rolls the statement back whole.
      if (!group_sync) return wal_->writer.Sync(lsn);
      return Status::OK();
    };
    Result<QueryResult> r = run(hook);
    graph_.AbortRedoCapture();  // no-op when the hook consumed the log
    return r;
  }();
  // Group commit: fsync outside the execution lock, so statements executed
  // meanwhile by other sessions pile their records into the same sync.
  if (result.ok() && logged && group_sync) {
    CYPHER_RETURN_NOT_OK(wal_->writer.Sync(lsn));
  }
  return result;
}

Status GraphDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << DumpGraph(graph_);
  if (!out.good()) return Status::InvalidArgument("write failed: " + path);
  return Status::OK();
}

Status GraphDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CYPHER_ASSIGN_OR_RETURN(PropertyGraph loaded, LoadGraph(buffer.str()));
  graph_ = std::move(loaded);
  plan_cache_->Clear();  // cached plans are stamped against the old graph
  return Status::OK();
}

Result<std::vector<std::string>> SplitStatements(std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  std::vector<std::string> statements;
  size_t begin = 0;  // byte offset of the current statement
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kSemicolon && token.kind != TokenKind::kEnd) {
      continue;
    }
    std::string_view piece = script.substr(begin, token.offset - begin);
    piece = StripAsciiWhitespace(piece);
    if (!piece.empty()) statements.emplace_back(piece);
    begin = token.offset + 1;
  }
  return statements;
}

Result<std::vector<QueryResult>> GraphDatabase::ExecuteScript(
    std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                          SplitStatements(script));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (const std::string& statement : statements) {
    CYPHER_ASSIGN_OR_RETURN(QueryResult result, Execute(statement));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace cypher
