#include "cypher/database.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "common/strings.h"
#include "graph/serialize.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace cypher {

/// Write-ahead-log state of a durable database: the group-commit writer
/// plus the lock that serializes statement execution (parse and fsync
/// happen outside it, so concurrent sessions overlap everywhere the graph
/// itself is not involved).
struct GraphDatabase::WalSession {
  WalSession(std::unique_ptr<storage::LogFile> file, DurabilityOptions opts)
      : writer(std::move(file)), durability(opts) {}

  std::mutex exec_mu;
  storage::WalWriter writer;
  DurabilityOptions durability;
};

GraphDatabase::GraphDatabase(EvalOptions options)
    : options_(std::move(options)) {}
GraphDatabase::GraphDatabase(GraphDatabase&&) noexcept = default;
GraphDatabase& GraphDatabase::operator=(GraphDatabase&&) noexcept = default;
GraphDatabase::~GraphDatabase() = default;

Result<QueryResult> GraphDatabase::Execute(std::string_view query,
                                           const ValueMap& params,
                                           const EvalOptions& options) {
  CYPHER_ASSIGN_OR_RETURN(Query ast, ParseQuery(query));
  if (wal_ != nullptr) return ExecuteDurable(ast, params, options);
  return ExecuteQuery(&graph_, ast, params, options);
}

Status GraphDatabase::OpenDurable(std::unique_ptr<storage::LogFile> file,
                                  DurabilityOptions durability) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("write-ahead log already attached");
  }
  if (file->size() == 0) {
    // Fresh log: magic plus a snapshot of whatever the caller loaded so
    // far, made durable before the first statement can commit against it.
    CYPHER_RETURN_NOT_OK(
        file->Append(storage::kWalMagic, storage::kWalMagicSize));
    std::string snap = storage::EncodeWalRecord(
        storage::WalRecordType::kSnapshot, storage::EncodeSnapshot(graph_));
    CYPHER_RETURN_NOT_OK(file->Append(snap.data(), snap.size()));
    CYPHER_RETURN_NOT_OK(file->Sync());
  } else {
    CYPHER_ASSIGN_OR_RETURN(std::string bytes, file->ReadAll());
    CYPHER_ASSIGN_OR_RETURN(storage::RecoveredGraph recovered,
                            storage::RecoverGraph(bytes));
    // Drop the torn tail (if any) so new records append to a clean prefix.
    CYPHER_RETURN_NOT_OK(file->Truncate(recovered.valid_bytes));
    graph_ = std::move(recovered.graph);
  }
  wal_ = std::make_unique<WalSession>(std::move(file), durability);
  return Status::OK();
}

Status GraphDatabase::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("database has no write-ahead log");
  }
  std::lock_guard<std::mutex> lock(wal_->exec_mu);
  Result<uint64_t> lsn = wal_->writer.Append(storage::WalRecordType::kSnapshot,
                                             storage::EncodeSnapshot(graph_));
  if (!lsn.ok()) return lsn.status();
  return wal_->writer.Sync(*lsn);
}

Status GraphDatabase::wal_error() const {
  return wal_ == nullptr ? Status::OK() : wal_->writer.error();
}

storage::WalWriter* GraphDatabase::wal_writer() {
  return wal_ == nullptr ? nullptr : &wal_->writer;
}

Result<QueryResult> GraphDatabase::ExecuteDurable(const Query& ast,
                                                  const ValueMap& params,
                                                  const EvalOptions& options) {
  bool group_sync =
      wal_->durability.sync_mode == DurabilityOptions::SyncMode::kGroupCommit;
  uint64_t lsn = 0;
  bool logged = false;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    std::lock_guard<std::mutex> lock(wal_->exec_mu);
    // A poisoned log refuses further statements: the in-memory graph may
    // already be ahead of the durable prefix (group commit), and anything
    // committed now could silently vanish on recovery.
    CYPHER_RETURN_NOT_OK(wal_->writer.error());
    graph_.BeginRedoCapture();
    CommitHook hook = [&]() -> Status {
      std::string redo = graph_.TakeRedoLog();
      if (redo.empty()) return Status::OK();  // read-only: nothing to log
      Result<uint64_t> appended =
          wal_->writer.Append(storage::WalRecordType::kStatement, redo);
      if (!appended.ok()) return appended.status();
      lsn = *appended;
      logged = true;
      // Every-commit mode makes the record durable before the statement
      // commits in memory; a failure here rolls the statement back whole.
      if (!group_sync) return wal_->writer.Sync(lsn);
      return Status::OK();
    };
    Result<QueryResult> r = ExecuteQuery(&graph_, ast, params, options, hook);
    graph_.AbortRedoCapture();  // no-op when the hook consumed the log
    return r;
  }();
  // Group commit: fsync outside the execution lock, so statements executed
  // meanwhile by other sessions pile their records into the same sync.
  if (result.ok() && logged && group_sync) {
    CYPHER_RETURN_NOT_OK(wal_->writer.Sync(lsn));
  }
  return result;
}

Status GraphDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << DumpGraph(graph_);
  if (!out.good()) return Status::InvalidArgument("write failed: " + path);
  return Status::OK();
}

Status GraphDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CYPHER_ASSIGN_OR_RETURN(PropertyGraph loaded, LoadGraph(buffer.str()));
  graph_ = std::move(loaded);
  return Status::OK();
}

Result<std::vector<std::string>> SplitStatements(std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  std::vector<std::string> statements;
  size_t begin = 0;  // byte offset of the current statement
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kSemicolon && token.kind != TokenKind::kEnd) {
      continue;
    }
    std::string_view piece = script.substr(begin, token.offset - begin);
    piece = StripAsciiWhitespace(piece);
    if (!piece.empty()) statements.emplace_back(piece);
    begin = token.offset + 1;
  }
  return statements;
}

Result<std::vector<QueryResult>> GraphDatabase::ExecuteScript(
    std::string_view script) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                          SplitStatements(script));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (const std::string& statement : statements) {
    CYPHER_ASSIGN_OR_RETURN(QueryResult result, Execute(statement));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace cypher
