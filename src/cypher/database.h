#ifndef CYPHER_CYPHER_DATABASE_H_
#define CYPHER_CYPHER_DATABASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/interpreter.h"
#include "exec/options.h"
#include "graph/graph.h"

namespace cypher {

/// The public entry point: an in-process property graph database speaking
/// the Cypher dialect of the paper, with both the legacy (Cypher 9) and the
/// revised (Sections 7-8) update semantics selectable per database or per
/// statement.
///
/// Typical use:
///
///   GraphDatabase db;                       // revised semantics by default
///   CYPHER_RETURN_NOT_OK(db.Run("CREATE (:User {id: 89, name: 'Bob'})"));
///   auto result = db.Execute(
///       "MATCH (u:User) WHERE u.id = $id RETURN u.name",
///       {{"id", Value::Int(89)}});
///
/// Statements are atomic: a failed statement (including a conflicting SET
/// or a dangling-relationship DELETE) leaves the graph unchanged.
/// Not thread-safe; callers serialize access.
class GraphDatabase {
 public:
  explicit GraphDatabase(EvalOptions options = {})
      : options_(std::move(options)) {}

  /// The stored graph; mutate directly only from loaders/tests.
  PropertyGraph& graph() { return graph_; }
  const PropertyGraph& graph() const { return graph_; }

  /// Session defaults, applied to Execute calls without explicit options.
  EvalOptions& options() { return options_; }
  const EvalOptions& options() const { return options_; }

  /// Parses and executes one statement with the session options.
  Result<QueryResult> Execute(std::string_view query) {
    return Execute(query, ValueMap());
  }
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params) {
    return Execute(query, params, options_);
  }

  /// Parses and executes one statement with explicit options (benches use
  /// this to sweep semantics/variants without touching session state).
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params,
                              const EvalOptions& options);

  /// Execute, discarding the result table; convenient for setup code.
  Status Run(std::string_view query) { return Execute(query).status(); }

  /// Splits a script on top-level semicolons (string-literal aware) and
  /// executes each statement in order, stopping at the first error.
  Result<std::vector<QueryResult>> ExecuteScript(std::string_view script);

  /// Serializes the graph to `path` in the DumpGraph text format.
  Status SaveToFile(const std::string& path) const;

  /// Replaces the graph with the contents of a DumpGraph-format file.
  Status LoadFromFile(const std::string& path);

 private:
  PropertyGraph graph_;
  EvalOptions options_;
};

/// Splits a script into statements at top-level ';' boundaries using the
/// lexer (so ';' inside string literals does not split). Whitespace-only
/// statements are dropped.
Result<std::vector<std::string>> SplitStatements(std::string_view script);

}  // namespace cypher

#endif  // CYPHER_CYPHER_DATABASE_H_
