#ifndef CYPHER_CYPHER_DATABASE_H_
#define CYPHER_CYPHER_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <functional>

#include "common/result.h"
#include "exec/interpreter.h"
#include "exec/options.h"
#include "graph/graph.h"
#include "storage/log_file.h"
#include "vm/plan_cache.h"

namespace cypher {

namespace storage {
class WalWriter;
}  // namespace storage

/// Durability configuration for OpenDurable.
struct DurabilityOptions {
  enum class SyncMode {
    /// fsync inside the commit hook: a statement only commits in memory
    /// once its log record is durable, so an fsync failure rolls the
    /// statement back atomically. One fsync per update statement.
    kEveryCommit,
    /// Append inside the commit hook, fsync after the execution lock is
    /// released: concurrent sessions batch their records into one fsync
    /// (group commit). On a sync failure the statement is applied in
    /// memory but not durable — the writer poisons itself, Execute
    /// surfaces kAborted, and recovery replays only the durable prefix.
    kGroupCommit,
  };

  SyncMode sync_mode = SyncMode::kEveryCommit;
};

/// The public entry point: an in-process property graph database speaking
/// the Cypher dialect of the paper, with both the legacy (Cypher 9) and the
/// revised (Sections 7-8) update semantics selectable per database or per
/// statement.
///
/// Typical use:
///
///   GraphDatabase db;                       // revised semantics by default
///   CYPHER_RETURN_NOT_OK(db.Run("CREATE (:User {id: 89, name: 'Bob'})"));
///   auto result = db.Execute(
///       "MATCH (u:User) WHERE u.id = $id RETURN u.name",
///       {{"id", Value::Int(89)}});
///
/// Statements are atomic: a failed statement (including a conflicting SET
/// or a dangling-relationship DELETE) leaves the graph unchanged.
///
/// Thread-safety: plain (non-durable) use is single-threaded; callers
/// serialize. After OpenDurable, concurrent Execute calls are allowed —
/// an internal lock serializes statement execution and, under group
/// commit, concurrent sessions batch their log fsyncs.
class GraphDatabase {
 public:
  explicit GraphDatabase(EvalOptions options = {});

  GraphDatabase(GraphDatabase&&) noexcept;
  GraphDatabase& operator=(GraphDatabase&&) noexcept;
  ~GraphDatabase();

  /// The stored graph; mutate directly only from loaders/tests.
  PropertyGraph& graph() { return graph_; }
  const PropertyGraph& graph() const { return graph_; }

  /// Session defaults, applied to Execute calls without explicit options.
  EvalOptions& options() { return options_; }
  const EvalOptions& options() const { return options_; }

  /// Parses and executes one statement with the session options.
  Result<QueryResult> Execute(std::string_view query) {
    return Execute(query, ValueMap());
  }
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params) {
    return Execute(query, params, options_);
  }

  /// Parses and executes one statement with explicit options (benches use
  /// this to sweep semantics/variants without touching session state).
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params,
                              const EvalOptions& options);

  /// Execute, discarding the result table; convenient for setup code.
  Status Run(std::string_view query) { return Execute(query).status(); }

  /// Splits a script on top-level semicolons (string-literal aware) and
  /// executes each statement in order, stopping at the first error.
  Result<std::vector<QueryResult>> ExecuteScript(std::string_view script);

  /// Serializes the graph to `path` in the DumpGraph text format.
  Status SaveToFile(const std::string& path) const;

  /// Replaces the graph with the contents of a DumpGraph-format file.
  Status LoadFromFile(const std::string& path);

  // ---- Durability -----------------------------------------------------------

  /// Attaches a write-ahead log and makes every later Execute crash-safe.
  ///
  /// An empty log is initialized with the magic and a snapshot of the
  /// current graph. A non-empty log is recovered first: the graph is
  /// REPLACED by the latest snapshot plus every whole committed statement
  /// after it, and the file is truncated to that valid prefix (dropping a
  /// torn tail from a crashed writer). From then on each committed update
  /// statement appends one checksummed record before it becomes visible.
  Status OpenDurable(std::unique_ptr<storage::LogFile> file,
                     DurabilityOptions durability = {});

  /// Appends a fresh snapshot record and syncs it; recovery after this
  /// point replays from the new snapshot instead of the whole statement
  /// history. The log is append-only, so the file keeps growing until the
  /// operator rotates it (crash-safe at every point in between).
  Status Checkpoint();

  /// True once OpenDurable succeeded.
  bool durable() const { return wal_ != nullptr; }

  /// The write-ahead log's sticky I/O error (OK while healthy); once set,
  /// every later update statement is refused with the same status.
  Status wal_error() const;

  /// The log writer; tests use it to reach the underlying LogFile.
  storage::WalWriter* wal_writer();

  // ---- Plan cache -----------------------------------------------------------

  /// The session's parametrized plan cache (see vm/plan_cache.h). Execute
  /// consults it unless EvalOptions::use_plan_cache is off: literals are
  /// auto-parametrized, the normalized shape keys a compiled bytecode
  /// Program, and repeat statements skip parse + compile entirely. The
  /// cache is cleared whenever the graph object is replaced wholesale
  /// (LoadFromFile, WAL recovery) — cached match plans are stamped against
  /// graph statistics and must not survive a swap.
  PlanCache& plan_cache() { return *plan_cache_; }
  const PlanCache& plan_cache() const { return *plan_cache_; }

 private:
  struct WalSession;

  /// Runs one statement's executor under the WAL session: execution lock,
  /// redo capture, the commit hook that appends (and, per sync mode,
  /// fsyncs) the statement record. The executor is either the interpreter
  /// or the VM — durability is tier-agnostic.
  using PlanExecutor = std::function<Result<QueryResult>(const CommitHook&)>;
  Result<QueryResult> ExecuteDurableWith(const PlanExecutor& run);

  /// The plan-cache + VM route of Execute (use_plan_cache on).
  Result<QueryResult> ExecuteCached(std::string_view query,
                                    const ValueMap& params,
                                    const EvalOptions& options);

  PropertyGraph graph_;
  EvalOptions options_;
  std::unique_ptr<WalSession> wal_;
  std::unique_ptr<PlanCache> plan_cache_;
};

/// Splits a script into statements at top-level ';' boundaries using the
/// lexer (so ';' inside string literals does not split). Whitespace-only
/// statements are dropped.
Result<std::vector<std::string>> SplitStatements(std::string_view script);

}  // namespace cypher

#endif  // CYPHER_CYPHER_DATABASE_H_
