#ifndef CYPHER_CYPHER_DATABASE_H_
#define CYPHER_CYPHER_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <functional>

#include "common/read_pin.h"
#include "common/result.h"
#include "exec/interpreter.h"
#include "exec/options.h"
#include "graph/graph.h"
#include "replication/transport.h"
#include "storage/log_file.h"
#include "vm/plan_cache.h"

namespace cypher {

namespace storage {
class WalWriter;
}  // namespace storage

namespace replication {
class LogShipper;
}  // namespace replication

/// Durability configuration for OpenDurable.
struct DurabilityOptions {
  enum class SyncMode {
    /// fsync inside the commit hook: a statement only commits in memory
    /// once its log record is durable, so an fsync failure rolls the
    /// statement back atomically. One fsync per update statement.
    kEveryCommit,
    /// Append inside the commit hook, fsync after the execution lock is
    /// released: concurrent sessions batch their records into one fsync
    /// (group commit). On a sync failure the statement is applied in
    /// memory but not durable — the writer poisons itself, Execute
    /// surfaces kAborted, and recovery replays only the durable prefix.
    kGroupCommit,
  };

  SyncMode sync_mode = SyncMode::kEveryCommit;

  /// Size-threshold auto-checkpoint: when non-zero and a commit leaves the
  /// log larger than this many bytes, the log is compacted in place to
  /// [magic, fresh snapshot] (WalWriter::Rewrite — crash-atomic on disk),
  /// bounding growth for long-running mixed workloads without an operator
  /// Checkpoint(). A 2x-since-last-checkpoint hysteresis keeps a graph
  /// whose snapshot alone exceeds the threshold from rewriting on every
  /// commit. 0 (the default) disables the hook: the log is append-only
  /// forever, exactly as before.
  ///
  /// With followers attached (AttachFollower), compaction additionally
  /// waits for every follower's retention pin: bytes a lagging follower has
  /// not acked are never dropped, however far past the threshold the log
  /// grows, and detaching releases them (the next commit compacts).
  uint64_t auto_checkpoint_bytes = 0;
};

/// Knobs for AttachFollower.
struct ReplicationOptions {
  /// Target replication segment size (whole WAL records per segment, cut
  /// under this many bytes; one oversized record still ships alone).
  uint64_t segment_bytes = 64 * 1024;

  /// Staleness cap: a follower whose unacked backlog exceeds this many
  /// bytes is auto-detached (its retention pin released, a warning counted
  /// in ReplicationStatus) so a dead follower cannot pin WAL compaction
  /// forever. 0 (the default) never detaches. Applies to the shared
  /// shipper, so the first attach's value wins for the database.
  uint64_t max_retained_bytes = 0;
};

struct FollowerInfo {
  int id = 0;
  uint64_t acked_lsn = 0;
  uint64_t shipped_lsn = 0;
  /// Resend requests this follower issued (wire damage or reconnects).
  uint64_t resends = 0;
  /// Wire health: connection state, completed reconnects, and how long ago
  /// the peer was last heard from (socket transports; the in-process queue
  /// reports a static "in-process").
  replication::LinkStatus link;
};

/// What `replication_status` reports: per-follower cursors plus the
/// leader-side log coordinates lag is measured against.
struct ReplicationStatus {
  size_t followers = 0;
  uint64_t appended_lsn = 0;
  uint64_t durable_lsn = 0;
  /// Smallest acked LSN across followers (UINT64_MAX when none) — retention
  /// holds every log byte from here on.
  uint64_t min_acked_lsn = 0;
  /// Current WAL size — with a lagging follower attached this keeps growing
  /// past the auto-checkpoint threshold until the follower catches up.
  uint64_t log_bytes = 0;
  /// Followers auto-detached by the staleness cap, with the latest warning
  /// (empty when none) — the shell prints both under `:lag`.
  uint64_t stale_detaches = 0;
  std::string last_stale_warning;
  std::vector<FollowerInfo> detail;
};

/// The public entry point: an in-process property graph database speaking
/// the Cypher dialect of the paper, with both the legacy (Cypher 9) and the
/// revised (Sections 7-8) update semantics selectable per database or per
/// statement.
///
/// Typical use:
///
///   GraphDatabase db;                       // revised semantics by default
///   CYPHER_RETURN_NOT_OK(db.Run("CREATE (:User {id: 89, name: 'Bob'})"));
///   auto result = db.Execute(
///       "MATCH (u:User) WHERE u.id = $id RETURN u.name",
///       {{"id", Value::Int(89)}});
///
/// Statements are atomic: a failed statement (including a conflicting SET
/// or a dangling-relationship DELETE) leaves the graph unchanged.
///
/// Thread-safety: plain (non-durable) use is single-threaded; callers
/// serialize. After OpenDurable, concurrent Execute calls are allowed —
/// an internal lock serializes statement execution and, under group
/// commit, concurrent sessions batch their log fsyncs.
class GraphDatabase {
 public:
  explicit GraphDatabase(EvalOptions options = {});

  GraphDatabase(GraphDatabase&&) noexcept;
  GraphDatabase& operator=(GraphDatabase&&) noexcept;
  ~GraphDatabase();

  /// The stored graph; mutate directly only from loaders/tests.
  PropertyGraph& graph() { return graph_; }
  const PropertyGraph& graph() const { return graph_; }

  /// Session defaults, applied to Execute calls without explicit options.
  EvalOptions& options() { return options_; }
  const EvalOptions& options() const { return options_; }

  /// Parses and executes one statement with the session options.
  Result<QueryResult> Execute(std::string_view query) {
    return Execute(query, ValueMap());
  }
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params) {
    return Execute(query, params, options_);
  }

  /// Parses and executes one statement with explicit options (benches use
  /// this to sweep semantics/variants without touching session state).
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params,
                              const EvalOptions& options);

  /// Execute, discarding the result table; convenient for setup code.
  Status Run(std::string_view query) { return Execute(query).status(); }

  /// Splits a script on top-level semicolons (string-literal aware) and
  /// executes each statement in order, stopping at the first error.
  Result<std::vector<QueryResult>> ExecuteScript(std::string_view script);

  /// Serializes the graph to `path` in the DumpGraph text format.
  Status SaveToFile(const std::string& path) const;

  /// Replaces the graph with the contents of a DumpGraph-format file.
  Status LoadFromFile(const std::string& path);

  // ---- Durability -----------------------------------------------------------

  /// Attaches a write-ahead log and makes every later Execute crash-safe.
  ///
  /// An empty log is initialized with the magic and a snapshot of the
  /// current graph. A non-empty log is recovered first: the graph is
  /// REPLACED by the latest snapshot plus every whole committed statement
  /// after it, and the file is truncated to that valid prefix (dropping a
  /// torn tail from a crashed writer). From then on each committed update
  /// statement appends one checksummed record before it becomes visible.
  Status OpenDurable(std::unique_ptr<storage::LogFile> file,
                     DurabilityOptions durability = {});

  /// Appends a fresh snapshot record and syncs it; recovery after this
  /// point replays from the new snapshot instead of the whole statement
  /// history. The log is append-only, so the file keeps growing until the
  /// operator rotates it (crash-safe at every point in between).
  Status Checkpoint();

  /// True once OpenDurable succeeded.
  bool durable() const { return wal_ != nullptr; }

  /// The write-ahead log's sticky I/O error (OK while healthy); once set,
  /// every later update statement is refused with the same status.
  Status wal_error() const;

  /// The log writer; tests use it to reach the underlying LogFile.
  storage::WalWriter* wal_writer();

  // ---- Log-shipping replication ---------------------------------------------

  /// Attaches a read-only follower (a replication::Replica on the other end
  /// of `transport`): under the execution lock, snapshots the graph at the
  /// current end LSN, registers a WAL retention pin there, and starts
  /// streaming every later committed statement as record-aligned segments.
  /// Requires a write-ahead log (the statement stream IS the WAL). Commits
  /// pump the stream automatically; tests and pollers can PumpReplication()
  /// at any time. Returns the follower id for DetachFollower.
  Result<int> AttachFollower(std::shared_ptr<replication::Transport> transport,
                             ReplicationOptions options = {});

  /// Re-attaches a RETURNING follower that already holds every committed
  /// byte below `lsn` in its own durable log (a socket follower
  /// reconnecting after a crash): no snapshot is taken — the stream simply
  /// resumes at `lsn`, which must still be a record boundary the WAL can
  /// serve (at or above WalWriter::min_resume_lsn(), not past the durable
  /// end; callers that cannot guarantee it fall back to AttachFollower for
  /// a fresh bootstrap).
  Result<int> AttachFollowerAt(
      std::shared_ptr<replication::Transport> transport, uint64_t lsn,
      ReplicationOptions options = {});

  /// Releases the follower's retention pin and stops streaming to it. The
  /// next commit past the auto-checkpoint threshold can compact again.
  Status DetachFollower(int id);

  /// One replication round: process follower acks/resend requests, ship new
  /// durable bytes. Called automatically after each durable commit.
  Status PumpReplication();

  ReplicationStatus replication_status() const;

  bool replicating() const { return shipper_ != nullptr; }

  // ---- Plan cache -----------------------------------------------------------

  /// The session's parametrized plan cache (see vm/plan_cache.h). Execute
  /// consults it unless EvalOptions::use_plan_cache is off: literals are
  /// auto-parametrized, the normalized shape keys a compiled bytecode
  /// Program, and repeat statements skip parse + compile entirely. The
  /// cache is cleared whenever the graph object is replaced wholesale
  /// (LoadFromFile, WAL recovery) — cached match plans are stamped against
  /// graph statistics and must not survive a swap.
  PlanCache& plan_cache() { return *plan_cache_; }
  const PlanCache& plan_cache() const { return *plan_cache_; }

  /// The writer (default) session's own plan-cache hit/miss tally; snapshot
  /// read sessions carry their own (ReadSession::cache_counters). The
  /// shell's `:cache` reports these next to the global PlanCacheStats, and
  /// `:cache clear` resets them together with the global counters.
  const SessionCacheCounters& session_cache_counters() const {
    return session_counters_;
  }
  void ResetSessionCacheCounters() { session_counters_ = {}; }

  // ---- Snapshot read sessions -----------------------------------------------

  /// Switches the stored graph to epoch-based MVCC (DESIGN.md §4g) so
  /// BeginReadSession becomes available. Idempotent; call it between
  /// statements (never from inside one). The switch survives graph
  /// replacement (LoadFromFile, WAL recovery re-enable it on the new
  /// graph). Writer statements keep executing exactly as before — each
  /// successful one additionally publishes a new committed epoch and
  /// retires superseded record versions once no session pins them.
  Status EnableMvcc();

  bool mvcc_enabled() const { return graph_.mvcc_enabled(); }

  class ReadSession;

  /// Opens a read-only session pinned to the newest committed epoch.
  /// Requires EnableMvcc(). The session's statements (pure MATCH / UNWIND /
  /// WITH / RETURN) run lock-free and fully concurrently with writer
  /// Execute calls on this database — they never take the execution lock —
  /// and observe exactly the state as of the pinned epoch, however many
  /// statements the writer commits meanwhile. Update or DDL statements are
  /// refused. A session costs one registry slot (at most 256 concurrently)
  /// plus whatever superseded versions its pin holds back from
  /// reclamation; Refresh() or destruction lets them go. The session must
  /// not outlive the database, and the database must not be moved, loaded
  /// from a file, or recovered while sessions are open.
  Result<ReadSession> BeginReadSession();

 private:
  struct WalSession;
  friend class ReadSession;

  /// Runs one statement's executor under the WAL session: execution lock,
  /// redo capture, the commit hook that appends (and, per sync mode,
  /// fsyncs) the statement record. The executor is either the interpreter
  /// or the VM — durability is tier-agnostic. On success the new epoch is
  /// published (MVCC) and the auto-checkpoint threshold consulted.
  using PlanExecutor = std::function<Result<QueryResult>(const CommitHook&)>;
  Result<QueryResult> ExecuteDurableWith(const PlanExecutor& run);

  /// Statement dispatch shared by every Execute path: pinned statements
  /// bypass the WAL session entirely (lock-free reads), writer statements
  /// take the durable route when a WAL is attached, and successful writer
  /// statements publish the next MVCC epoch.
  Result<QueryResult> RunStatement(const PlanExecutor& run,
                                   const EvalOptions& options);

  /// Execute with an explicit per-session counter sink (the public Execute
  /// uses the writer session's; ReadSession::Execute passes its own).
  Result<QueryResult> ExecuteWith(std::string_view query,
                                  const ValueMap& params,
                                  const EvalOptions& options,
                                  SessionCacheCounters* counters);

  /// The plan-cache + VM route of Execute (use_plan_cache on).
  Result<QueryResult> ExecuteCached(std::string_view query,
                                    const ValueMap& params,
                                    const EvalOptions& options,
                                    SessionCacheCounters* counters);

  /// Under the execution lock, after a successful commit: compacts the log
  /// to [magic, snapshot] once it outgrows the configured threshold.
  void MaybeAutoCheckpoint();

  /// Lazily creates the shared shipper; the first attach's options win.
  void EnsureShipper(const ReplicationOptions& options);

  PropertyGraph graph_;
  EvalOptions options_;
  std::unique_ptr<WalSession> wal_;
  /// Declared after wal_: the shipper holds retention pins in wal_'s writer
  /// and must release them first on destruction.
  std::unique_ptr<replication::LogShipper> shipper_;
  std::unique_ptr<PlanCache> plan_cache_;
  SessionCacheCounters session_counters_;
  bool mvcc_requested_ = false;
  /// Open ReadSession count (heap-allocated so the database stays movable;
  /// sessions hold a stable pointer to it). Guards graph replacement.
  std::unique_ptr<std::atomic<int>> open_read_sessions_;
};

/// A pinned snapshot session (see GraphDatabase::BeginReadSession). Movable,
/// not copyable; releases its pin on destruction. One session is one
/// thread's view — concurrent Execute calls on the same session are not
/// allowed (open one session per reader thread; they are cheap).
class GraphDatabase::ReadSession {
 public:
  ReadSession(ReadSession&& other) noexcept
      : db_(other.db_), pin_(other.pin_), counters_(other.counters_) {
    other.db_ = nullptr;
  }
  ReadSession& operator=(ReadSession&& other) noexcept {
    if (this != &other) {
      Close();
      db_ = other.db_;
      pin_ = other.pin_;
      counters_ = other.counters_;
      other.db_ = nullptr;
    }
    return *this;
  }
  ~ReadSession() { Close(); }

  /// The committed epoch every statement of this session observes.
  uint64_t epoch() const { return pin_.epoch; }

  /// Executes one read-only statement against the pinned epoch. Never
  /// blocks on the writer; rejects update/DDL statements.
  Result<QueryResult> Execute(std::string_view query) {
    return Execute(query, ValueMap());
  }
  Result<QueryResult> Execute(std::string_view query, const ValueMap& params);

  /// Execute + RenderResult in one call, with the pin installed around
  /// rendering too: node/relationship cells expand against the pinned
  /// epoch. (Rendering the QueryResult after Execute returns would expand
  /// entity handles against the writer's latest state instead.)
  Result<std::string> ExecuteRendered(std::string_view query,
                                      const ValueMap& params = {});

  /// Moves the pin forward to the newest committed epoch (like closing and
  /// reopening the session, but keeps the registry slot — the reclamation
  /// horizon only ever advances).
  void Refresh();

  /// This session's plan-cache hit/miss tally.
  const SessionCacheCounters& cache_counters() const { return counters_; }
  void ResetCacheCounters() { counters_ = {}; }

  /// Releases the pin early (destruction does the same); the session is
  /// unusable afterwards. Idempotent.
  void Close();

 private:
  friend class GraphDatabase;
  ReadSession(GraphDatabase* db, ReadPin pin) : db_(db), pin_(pin) {}

  GraphDatabase* db_ = nullptr;  // null = moved-from/closed
  ReadPin pin_;
  SessionCacheCounters counters_;
};

/// Splits a script into statements at top-level ';' boundaries using the
/// lexer (so ';' inside string literals does not split). Whitespace-only
/// statements are dropped.
Result<std::vector<std::string>> SplitStatements(std::string_view script);

}  // namespace cypher

#endif  // CYPHER_CYPHER_DATABASE_H_
