#include "common/csv.h"

#include <cstdio>

namespace cypher {

namespace {

// Parses one record starting at *pos; advances *pos past the record
// terminator. Returns false (with error set) on unterminated quotes.
bool ParseRecord(std::string_view text, size_t* pos,
                 std::vector<std::string>* fields, std::string* error) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      break;
    }
    field += c;
    ++i;
  }
  if (in_quotes) {
    *error = "unterminated quoted field";
    return false;
  }
  fields->push_back(std::move(field));
  // Consume the record terminator (\n, \r\n, or \r).
  if (i < text.size() && text[i] == '\r') ++i;
  if (i < text.size() && text[i] == '\n') ++i;
  *pos = i;
  return true;
}

bool NeedsQuoting(std::string_view field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text) {
  CsvDocument doc;
  size_t pos = 0;
  std::string error;
  if (text.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }
  if (!ParseRecord(text, &pos, &doc.header, &error)) {
    return Status::InvalidArgument("CSV header: " + error);
  }
  size_t line = 2;
  while (pos < text.size()) {
    std::vector<std::string> fields;
    if (!ParseRecord(text, &pos, &fields, &error)) {
      return Status::InvalidArgument("CSV line " + std::to_string(line) + ": " +
                                     error);
    }
    // Skip trailing blank line.
    if (fields.size() == 1 && fields[0].empty() && pos >= text.size()) break;
    if (fields.size() != doc.header.size()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line) + ": expected " +
          std::to_string(doc.header.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    doc.rows.push_back(std::move(fields));
    ++line;
  }
  return doc;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      if (NeedsQuoting(row[i])) {
        out += '"';
        for (char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  };
  write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
  return out;
}

}  // namespace cypher
