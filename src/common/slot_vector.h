#ifndef CYPHER_COMMON_SLOT_VECTOR_H_
#define CYPHER_COMMON_SLOT_VECTOR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace cypher {

/// Chunked append-only vector with stable element addresses and a
/// single-writer / many-reader publication contract:
///
///  * one writer thread at a time Appends (or EnsureSize-grows);
///  * any number of reader threads may concurrently index positions below a
///    size() they observed — size() is stored with release ordering after
///    the element is fully constructed, so an acquire load of size() makes
///    every element below it visible;
///  * elements never move. Storage is a spine of fixed-size chunks; a full
///    spine is replaced by a doubled copy and the old spine is kept alive
///    until destruction, because a reader may still be mid-walk on it.
///
/// This is the storage base of the MVCC graph: node/rel slots, version-chain
/// heads, label buckets and interned names all need "readers index while the
/// writer appends" without locks. The SlotVector synchronizes only element
/// *existence* — element payloads must be immutable after publication (or
/// use atomic fields) if readers and the writer overlap on them.
template <typename T>
class SlotVector {
 public:
  static constexpr size_t kChunkBits = 9;  // 512 elements per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  SlotVector() = default;

  SlotVector(const SlotVector&) = delete;
  SlotVector& operator=(const SlotVector&) = delete;

  /// Moves require quiescence (no concurrent reader or writer on either
  /// side); the graph layer only moves whole graphs between statements.
  SlotVector(SlotVector&& other) noexcept { StealFrom(&other); }
  SlotVector& operator=(SlotVector&& other) noexcept {
    if (this != &other) {
      Destroy();
      StealFrom(&other);
    }
    return *this;
  }

  ~SlotVector() { Destroy(); }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  T& operator[](size_t i) { return Slot(i); }
  const T& operator[](size_t i) const { return Slot(i); }

  /// Appends and publishes one element (writer only).
  T& Append(T value) {
    size_t i = size_.load(std::memory_order_relaxed);
    T& slot = SlotForWrite(i);
    slot = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return slot;
  }

  /// Grows to at least `n` elements, value-initialized (writer only).
  void EnsureSize(size_t n) {
    size_t i = size_.load(std::memory_order_relaxed);
    if (n <= i) return;
    for (size_t k = i; k < n; ++k) (void)SlotForWrite(k);
    size_.store(n, std::memory_order_release);
  }

 private:
  /// A resizable directory of chunk pointers. Chunks are published into
  /// their directory slot with release ordering; a full directory is
  /// replaced wholesale (see SlotForWrite).
  struct Spine {
    explicit Spine(size_t capacity)
        : cap(capacity), chunks(new std::atomic<T*>[capacity]()) {}
    size_t cap;
    std::unique_ptr<std::atomic<T*>[]> chunks;
  };

  T& Slot(size_t i) const {
    Spine* spine = spine_.load(std::memory_order_acquire);
    T* chunk = spine->chunks[i >> kChunkBits].load(std::memory_order_acquire);
    return chunk[i & kChunkMask];
  }

  T& SlotForWrite(size_t i) {
    Spine* spine = spine_.load(std::memory_order_relaxed);
    size_t ci = i >> kChunkBits;
    if (spine == nullptr || ci >= spine->cap) {
      size_t cap = spine == nullptr ? 8 : spine->cap * 2;
      while (cap <= ci) cap *= 2;
      auto fresh = std::make_unique<Spine>(cap);
      if (spine != nullptr) {
        for (size_t k = 0; k < spine->cap; ++k) {
          fresh->chunks[k].store(spine->chunks[k].load(
                                     std::memory_order_relaxed),
                                 std::memory_order_relaxed);
        }
        old_spines_.push_back(std::move(spine_owner_));
      }
      spine = fresh.get();
      spine_owner_ = std::move(fresh);
      spine_.store(spine, std::memory_order_release);
    }
    T* chunk = spine->chunks[ci].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize]();
      spine->chunks[ci].store(chunk, std::memory_order_release);
    }
    return chunk[i & kChunkMask];
  }

  void Destroy() {
    // Retired spines share chunk pointers with the live spine (which holds
    // the superset), so chunks are freed from the live spine only.
    Spine* spine = spine_.load(std::memory_order_relaxed);
    if (spine != nullptr) {
      for (size_t k = 0; k < spine->cap; ++k) {
        delete[] spine->chunks[k].load(std::memory_order_relaxed);
      }
    }
    spine_owner_.reset();
    old_spines_.clear();
    spine_.store(nullptr, std::memory_order_relaxed);
    size_.store(0, std::memory_order_relaxed);
  }

  void StealFrom(SlotVector* other) {
    spine_owner_ = std::move(other->spine_owner_);
    old_spines_ = std::move(other->old_spines_);
    spine_.store(other->spine_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    size_.store(other->size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other->spine_.store(nullptr, std::memory_order_relaxed);
    other->size_.store(0, std::memory_order_relaxed);
    other->old_spines_.clear();
  }

  std::atomic<Spine*> spine_{nullptr};
  std::atomic<size_t> size_{0};
  std::unique_ptr<Spine> spine_owner_;
  std::vector<std::unique_ptr<Spine>> old_spines_;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_SLOT_VECTOR_H_
