#ifndef CYPHER_COMMON_CRC32_H_
#define CYPHER_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cypher {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip checksum) over `len` bytes.
/// `seed` chains partial computations: Crc32(b, n) ==
/// Crc32(b + k, n - k, Crc32(b, k)). The write-ahead log checksums every
/// record payload with this so a torn or bit-rotted tail is detectable.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace cypher

#endif  // CYPHER_COMMON_CRC32_H_
