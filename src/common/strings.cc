#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace cypher {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return std::string(buf, ptr);
}

std::string QuoteString(std::string_view text) {
  std::string out = "'";
  for (char c : text) {
    switch (c) {
      case '\'':
        out += "\\'";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace cypher
