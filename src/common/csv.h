#ifndef CYPHER_COMMON_CSV_H_
#define CYPHER_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cypher {

/// A parsed CSV document: a header row plus data rows, all as raw strings.
///
/// The paper motivates MERGE with the "populate a graph from a CSV import"
/// workflow (Sections 3 and 6); this reader is the substrate for that
/// workflow in examples and benchmarks. Empty fields are preserved; the
/// conventional spelling "null" (case-insensitive) is left to the table
/// loader to interpret.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC-4180-style CSV text: comma separated, double-quote quoting,
/// doubled quotes as escapes, LF or CRLF line endings. The first record is
/// the header. Returns InvalidArgument on ragged rows or unterminated quotes.
Result<CsvDocument> ParseCsv(std::string_view text);

/// Serializes a document back to CSV text (quoting only when needed).
std::string WriteCsv(const CsvDocument& doc);

}  // namespace cypher

#endif  // CYPHER_COMMON_CSV_H_
