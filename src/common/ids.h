#ifndef CYPHER_COMMON_IDS_H_
#define CYPHER_COMMON_IDS_H_

#include <cstdint>
#include <functional>

namespace cypher {

/// Identifier of a node in a PropertyGraph. Strongly typed to prevent mixing
/// with relationship ids. Ids are dense indexes into the graph's node store
/// and are never reused within one graph's lifetime (deleted slots are
/// tombstoned), so an id captured in a driving table stays unambiguous.
struct NodeId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = static_cast<uint32_t>(-1);

  constexpr NodeId() = default;
  constexpr explicit NodeId(uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(NodeId a, NodeId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(NodeId a, NodeId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(NodeId a, NodeId b) {
    return a.value < b.value;
  }
};

/// Identifier of a relationship in a PropertyGraph. See NodeId.
struct RelId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = static_cast<uint32_t>(-1);

  constexpr RelId() = default;
  constexpr explicit RelId(uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(RelId a, RelId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(RelId a, RelId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(RelId a, RelId b) {
    return a.value < b.value;
  }
};

}  // namespace cypher

template <>
struct std::hash<cypher::NodeId> {
  size_t operator()(cypher::NodeId id) const noexcept {
    return std::hash<uint32_t>()(id.value);
  }
};

template <>
struct std::hash<cypher::RelId> {
  size_t operator()(cypher::RelId id) const noexcept {
    return std::hash<uint32_t>()(id.value ^ 0x9e3779b9u);
  }
};

#endif  // CYPHER_COMMON_IDS_H_
