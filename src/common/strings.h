#ifndef CYPHER_COMMON_STRINGS_H_
#define CYPHER_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cypher {

/// Case-insensitive ASCII equality (Cypher keywords are case-insensitive).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters.
std::string ToUpperAscii(std::string_view text);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Formats a double the way Cypher prints floats: integral values keep a
/// trailing ".0", non-integral values use shortest round-trip form.
std::string FormatDouble(double value);

/// Quotes and escapes a string as a single-quoted Cypher literal.
std::string QuoteString(std::string_view text);

}  // namespace cypher

#endif  // CYPHER_COMMON_STRINGS_H_
