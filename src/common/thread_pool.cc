#include "common/thread_pool.h"

#include <algorithm>

namespace cypher {

namespace {

/// Set while the current thread is executing pool tasks; nested Run calls
/// from inside a task run inline instead of deadlocking on run_mu_.
thread_local bool t_in_pool_task = false;

}  // namespace

ThreadPool::ThreadPool(size_t max_helpers) : max_helpers_(max_helpers) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  // Enough helpers for the determinism tests' worker sweeps even on small
  // machines; parked helpers cost a stack apiece and no cycles.
  static ThreadPool pool(15);
  return pool;
}

void ThreadPool::EnsureThreads(size_t helpers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (threads_.size() < helpers) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void ThreadPool::TaskLoop(const std::function<void(size_t)>& fn,
                          size_t num_tasks) {
  while (true) {
    size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks) return;
    fn(task);
  }
}

void ThreadPool::WorkerMain() {
  t_in_pool_task = true;  // workers never start nested regions
  uint64_t seen = 0;
  while (true) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_fn_ != nullptr && generation_ != seen &&
                         joined_ < helpers_wanted_);
      });
      if (stop_) return;
      seen = generation_;
      ++joined_;
      ++active_;
      fn = job_fn_;
      num_tasks = job_tasks_;
    }
    TaskLoop(*fn, num_tasks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t num_tasks, size_t workers,
                     const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  size_t helpers =
      std::min({workers > 0 ? workers - 1 : size_t{0}, max_helpers_,
                num_tasks - 1});
  if (helpers == 0 || t_in_pool_task) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> region(run_mu_);
  EnsureThreads(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    helpers_wanted_ = helpers;
    joined_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a full participant: it drains the same task counter, so a
  // region never blocks waiting for a helper to wake up.
  bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  TaskLoop(fn, num_tasks);
  t_in_pool_task = was_in_task;
  std::unique_lock<std::mutex> lock(mu_);
  // All tasks are claimed; wait for helpers still finishing theirs. Closing
  // the job slot keeps late wakers (notified but not yet joined) out.
  job_fn_ = nullptr;
  done_cv_.wait(lock, [&] { return active_ == 0; });
}

}  // namespace cypher
