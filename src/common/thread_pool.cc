#include "common/thread_pool.h"

#include <algorithm>

#include "common/read_pin.h"

namespace cypher {

ThreadPool::ThreadPool(size_t max_helpers) : max_helpers_(max_helpers) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  // Enough helpers for the determinism tests' worker sweeps even on small
  // machines; parked helpers cost a stack apiece and no cycles.
  static ThreadPool pool(15);
  return pool;
}

bool ThreadPool::FindJobLocked(std::shared_ptr<Job>* out) {
  // Newest first: the deepest nested region's submitter is blocked inside
  // an outer task, so finishing inner jobs unblocks the most work.
  for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
    Job* job = it->get();
    if (job->joined < job->helpers_wanted &&
        job->next.load(std::memory_order_relaxed) < job->num_tasks) {
      *out = *it;
      return true;
    }
  }
  return false;
}

void ThreadPool::DrainJob(Job* job) {
  while (true) {
    size_t task = job->next.fetch_add(1, std::memory_order_relaxed);
    if (task >= job->num_tasks) return;
    (*job->fn)(task);
    // The fetch_add chain forms a release sequence: the submitter's acquire
    // load that observes the final count sees every task's writes.
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_tasks) {
      // Lock-then-notify so the submitter is either already past its
      // predicate or registered on the cv — no missed wakeup.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerMain() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || FindJobLocked(&job); });
      if (job == nullptr) return;  // stop requested, nothing left to adopt
      ++job->joined;
    }
    DrainJob(job.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job->joined;
    }
  }
}

void ThreadPool::Run(size_t num_tasks, size_t workers,
                     const std::function<void(size_t)>& fn) {
  // Tasks may land on pool helpers, which must read the same pinned MVCC
  // snapshot as the submitting thread — re-install its pin around each
  // task. (The submitter participates too; re-installing its own pin is
  // idempotent, and an inactive pin makes this a no-op wrapper.)
  const ReadPin pin = CurrentThreadReadPin();
  if (!pin.active) {
    RunImpl(num_tasks, workers, fn);
    return;
  }
  std::function<void(size_t)> pinned = [&pin, &fn](size_t task) {
    ScopedReadPin scope(pin);
    fn(task);
  };
  RunImpl(num_tasks, workers, pinned);
}

void ThreadPool::RunImpl(size_t num_tasks, size_t workers,
                         const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  size_t helpers =
      std::min({workers > 0 ? workers - 1 : size_t{0}, max_helpers_,
                num_tasks - 1});
  if (helpers == 0) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->helpers_wanted = helpers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
    // Size the fleet to the aggregate demand of every open job; a nested
    // region may want helpers while the outer region's are all busy.
    size_t want = 0;
    for (const auto& j : jobs_) want += j->helpers_wanted;
    want = std::min(want, max_helpers_);
    while (threads_.size() < want) {
      threads_.emplace_back([this] { WorkerMain(); });
    }
  }
  work_cv_.notify_all();
  // The caller is a full participant: it drains the same task counter, so a
  // region never blocks waiting for a helper to wake up.
  DrainJob(job.get());
  std::unique_lock<std::mutex> lock(mu_);
  // Every task is claimed; close the job so parked helpers skip it, then
  // wait for helpers still finishing theirs. Their shared_ptr copies keep
  // the Job alive past this erase.
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
  done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) >= job->num_tasks;
  });
}

}  // namespace cypher
