#include "common/status.h"

namespace cypher {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternalError:
      return "InternalError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace cypher
