#ifndef CYPHER_COMMON_CANCEL_H_
#define CYPHER_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace cypher {

/// Cooperative cancellation handle for one statement (the query watchdog).
///
/// A token carries an optional deadline and an explicit cancel flag; the
/// interpreter, the matcher's DFS/BFS walks and the parallel morsel loops
/// poll it at their choice points and unwind with kDeadlineExceeded /
/// kAborted, after which the statement rolls back like any other failure —
/// the graph is left untouched.
///
/// Tokens are cheap shared handles: copy one into EvalOptions, keep the
/// original, and Cancel() from any thread (a REPL ^C handler, a server
/// admission controller). A default-constructed token never cancels and
/// costs one null check per poll.
class CancelToken {
 public:
  CancelToken() = default;

  /// A token that trips once `deadline` passes.
  static CancelToken WithDeadline(std::chrono::steady_clock::time_point d) {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    token.state_->has_deadline = true;
    token.state_->deadline = d;
    return token;
  }

  /// A token that trips after `timeout` from now.
  static CancelToken WithTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// A token that only trips on an explicit Cancel() call.
  static CancelToken Cancellable() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// Signals cancellation; safe from any thread, idempotent.
  void Cancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  /// True when this token can ever cancel (i.e. is worth polling).
  bool active() const { return state_ != nullptr; }

  /// OK, or the cancellation status: kAborted for an explicit Cancel,
  /// kDeadlineExceeded for an expired deadline. Reads the clock when a
  /// deadline is set — hot loops amortize through a CancelGate.
  Status Check() const {
    if (state_ == nullptr) return Status::OK();
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      // A deadline trip latches `cancelled` (below), so concurrent workers
      // report the same code the first observer did.
      return state_->has_deadline && state_->deadline_hit.load(
                                         std::memory_order_relaxed)
                 ? Deadline()
                 : Status::Aborted("statement cancelled");
    }
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      state_->deadline_hit.store(true, std::memory_order_relaxed);
      state_->cancelled.store(true, std::memory_order_relaxed);
      return Deadline();
    }
    return Status::OK();
  }

 private:
  static Status Deadline() {
    return Status::DeadlineExceeded("statement deadline exceeded");
  }

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<bool> deadline_hit{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  std::shared_ptr<State> state_;
};

/// Amortized poll for per-row / per-expansion loops: forwards every
/// `kStride`-th Check() to the token (plus the very first, so an
/// already-expired deadline cancels before any work), skipping the clock
/// read in between. One gate per thread — the countdown is not atomic.
class CancelGate {
 public:
  explicit CancelGate(const CancelToken* token)
      : token_(token != nullptr && token->active() ? token : nullptr) {}

  Status Check() {
    if (token_ == nullptr || --countdown_ > 0) return Status::OK();
    countdown_ = kStride;
    return token_->Check();
  }

 private:
  static constexpr int kStride = 1024;

  const CancelToken* token_;
  int countdown_ = 1;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_CANCEL_H_
