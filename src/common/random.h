#ifndef CYPHER_COMMON_RANDOM_H_
#define CYPHER_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace cypher {

/// Deterministic splitmix64 PRNG.
///
/// Used wherever the engine needs controlled randomness: the legacy
/// executor's shuffled scan order (to demonstrate MERGE nondeterminism,
/// paper Example 3) and the synthetic workload generators. A fixed seed
/// yields an identical stream on every platform, which the figure benches
/// rely on for reproducibility.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_RANDOM_H_
