#ifndef CYPHER_COMMON_CHECK_H_
#define CYPHER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cypher::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CYPHER_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace cypher::internal

/// Always-on invariant check (independent of NDEBUG). Use for engine
/// invariants whose violation indicates a bug, never for user input errors
/// (those return Status).
#define CYPHER_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) ::cypher::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#endif  // CYPHER_COMMON_CHECK_H_
