#include "common/crc32.h"

#include <array>

namespace cypher {

namespace {

/// Byte-at-a-time table, built once. Throughput is irrelevant next to the
/// fsync that follows every checksummed record.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace cypher
