#ifndef CYPHER_COMMON_READ_PIN_H_
#define CYPHER_COMMON_READ_PIN_H_

#include <cstdint>

namespace cypher {

/// A pinned snapshot epoch of one MVCC-enabled graph.
///
/// A pin names the newest committed statement (`epoch`) a reader observes
/// plus the node/rel slot watermarks published with it; the graph's
/// accessors resolve every record against these when the *current thread*
/// carries an active pin for that graph (see ScopedReadPin). While a pin is
/// registered in its graph's pin registry, no version the pin can reach is
/// reclaimed — pinning is what makes lock-free snapshot reads safe.
///
/// The pin travels two ways: explicitly through EvalOptions/ExecContext/
/// MatchOptions (so executors and plan caching know they run pinned), and
/// through a thread-local slot (so deep graph accessors resolve without a
/// parameter on every call). ScopedReadPin installs the thread-local side;
/// the shared ThreadPool re-installs the submitting thread's pin inside
/// every task it fans out, so morsel-parallel readers stay on the snapshot.
struct ReadPin {
  const void* owner = nullptr;  // the PropertyGraph the pin applies to
  uint64_t epoch = 0;           // newest committed statement visible
  uint64_t node_slots = 0;      // node slots published at `epoch`
  uint64_t rel_slots = 0;       // rel slots published at `epoch`
  uint32_t registry_slot = 0;   // position held in the owner's pin registry
  bool active = false;
};

namespace detail {
extern thread_local ReadPin g_thread_read_pin;
}  // namespace detail

/// The calling thread's active pin; `active` is false when the thread reads
/// latest state. Cheap enough for per-record accessor checks.
inline const ReadPin& CurrentThreadReadPin() {
  return detail::g_thread_read_pin;
}

/// RAII installation of a pin into the thread-local slot, restoring the
/// previous pin (usually inactive) on exit. Install-only: acquiring and
/// releasing the registry slot is the graph layer's job.
class ScopedReadPin {
 public:
  explicit ScopedReadPin(const ReadPin& pin)
      : saved_(detail::g_thread_read_pin) {
    detail::g_thread_read_pin = pin;
  }
  ~ScopedReadPin() { detail::g_thread_read_pin = saved_; }

  ScopedReadPin(const ScopedReadPin&) = delete;
  ScopedReadPin& operator=(const ScopedReadPin&) = delete;

 private:
  ReadPin saved_;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_READ_PIN_H_
