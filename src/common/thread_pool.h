#ifndef CYPHER_COMMON_THREAD_POOL_H_
#define CYPHER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cypher {

/// Reusable worker pool for morsel-driven parallel execution.
///
/// One process-wide pool (`Shared()`) serves every parallel region; worker
/// threads are spawned lazily up to `max_helpers` and then parked on a
/// condition variable between regions, so a region costs two lock/notify
/// round-trips rather than thread creation. Regions are serialized: the
/// parallel executor runs strictly between write clauses, one statement at
/// a time, so overlapping regions would only fight over the same cores.
///
/// Tasks are claimed from a shared atomic counter (the morsel dispenser of
/// morsel-driven scheduling): a slow task does not stall the others, and
/// task index — not thread identity — determines where each result lands,
/// which is what keeps parallel output deterministic.
class ThreadPool {
 public:
  explicit ThreadPool(size_t max_helpers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `fn(0) .. fn(num_tasks - 1)`, each exactly once, across up to
  /// `workers` threads (the calling thread participates, so at most
  /// `workers - 1` helpers join). Blocks until every task has finished.
  /// Tasks must not throw and must not touch the pool; a task that needs
  /// nested parallelism runs its inner region inline (re-entrant Run calls
  /// from worker threads degrade to sequential execution on purpose —
  /// the outer region already owns the cores).
  void Run(size_t num_tasks, size_t workers,
           const std::function<void(size_t)>& fn);

  /// Helper threads this pool may spawn (not counting callers).
  size_t max_helpers() const { return max_helpers_; }

  /// Process-wide pool used by the parallel executor.
  static ThreadPool& Shared();

 private:
  void WorkerMain();
  void TaskLoop(const std::function<void(size_t)>& fn, size_t num_tasks);
  void EnsureThreads(size_t helpers);

  const size_t max_helpers_;

  /// Serializes whole regions (see class comment).
  std::mutex run_mu_;

  /// Protects the job slot below and the worker lifecycle.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;

  // One active job at a time. `generation_` lets parked workers distinguish
  // a new job from the one they already finished; `joined_` caps how many
  // helpers adopt the job so `workers` is honored even when the pool has
  // more threads parked.
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_tasks_ = 0;
  std::atomic<size_t> next_task_{0};
  uint64_t generation_ = 0;
  size_t helpers_wanted_ = 0;
  size_t joined_ = 0;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_THREAD_POOL_H_
