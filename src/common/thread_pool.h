#ifndef CYPHER_COMMON_THREAD_POOL_H_
#define CYPHER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cypher {

/// Reusable worker pool for morsel-driven parallel execution.
///
/// One process-wide pool (`Shared()`) serves every parallel region; worker
/// threads are spawned lazily up to `max_helpers` and then parked on a
/// condition variable between regions, so a region costs two lock/notify
/// round-trips rather than thread creation.
///
/// Regions are *jobs* on an open-job list, so a task may submit a nested
/// region (e.g. a var-length expansion fanning out its frontier from inside
/// a row morsel): the nested Run pushes its own job, parked helpers adopt
/// it, and the submitting task drains it like any other participant.
/// Helpers prefer the newest open job — the deepest region's submitter is
/// itself blocked inside an outer task, so finishing inner work first
/// unblocks the most.
///
/// Tasks are claimed from a per-job atomic counter (the morsel dispenser of
/// morsel-driven scheduling): a slow task does not stall the others, and
/// task index — not thread identity — determines where each result lands,
/// which is what keeps parallel output deterministic.
class ThreadPool {
 public:
  explicit ThreadPool(size_t max_helpers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `fn(0) .. fn(num_tasks - 1)`, each exactly once, across up to
  /// `workers` threads (the calling thread participates, so at most
  /// `workers - 1` helpers join). Blocks until every task has finished.
  /// Tasks must not throw. Re-entrant calls from inside a task are
  /// supported and submit a real nested job; with no parked helpers they
  /// degrade gracefully to the calling task draining its own job inline.
  void Run(size_t num_tasks, size_t workers,
           const std::function<void(size_t)>& fn);

  /// Runs `fn` across the pool with no snapshot-pin propagation (Run wraps
  /// tasks so helpers inherit the submitting thread's MVCC read pin; this
  /// is the raw path it delegates to).
  void RunImpl(size_t num_tasks, size_t workers,
               const std::function<void(size_t)>& fn);

  /// Helper threads this pool may spawn (not counting callers).
  size_t max_helpers() const { return max_helpers_; }

  /// Process-wide pool used by the parallel executor.
  static ThreadPool& Shared();

 private:
  /// One parallel region. `next` hands out task indices, `done` counts
  /// finished tasks (the submitter waits on it), `joined` caps simultaneous
  /// helpers so `workers` is honored even when more threads are parked.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t helpers_wanted = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t joined = 0;  // guarded by mu_
  };

  void WorkerMain();
  void DrainJob(Job* job);
  bool FindJobLocked(std::shared_ptr<Job>* out);

  const size_t max_helpers_;

  /// Protects the job list, per-job `joined`, and the worker lifecycle.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::vector<std::shared_ptr<Job>> jobs_;  // open jobs, oldest first
  bool stop_ = false;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_THREAD_POOL_H_
