#ifndef CYPHER_COMMON_INTERNER_H_
#define CYPHER_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cypher {

/// Dense integer handle for an interned string (label, relationship type, or
/// property key). Symbols are only meaningful relative to the Interner that
/// produced them.
using Symbol = uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = static_cast<Symbol>(-1);

/// Bidirectional string <-> dense-id map.
///
/// The graph store keeps one interner per graph and represents node labels,
/// relationship types and property keys as Symbols, so hot-path comparisons
/// are integer comparisons. Not thread-safe.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = default;
  Interner& operator=(const Interner&) = default;

  /// Returns the symbol for `text`, interning it on first use.
  Symbol Intern(std::string_view text);

  /// Returns the symbol for `text`, or kNoSymbol if never interned.
  /// Does not modify the interner; usable for lookups on const graphs.
  Symbol Find(std::string_view text) const;

  /// Returns the string for a symbol previously returned by Intern.
  const std::string& Name(Symbol symbol) const { return names_[symbol]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Symbol> index_;
  std::vector<std::string> names_;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_INTERNER_H_
