#ifndef CYPHER_COMMON_INTERNER_H_
#define CYPHER_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/slot_vector.h"

namespace cypher {

/// Dense integer handle for an interned string (label, relationship type, or
/// property key). Symbols are only meaningful relative to the Interner that
/// produced them.
using Symbol = uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = static_cast<Symbol>(-1);

/// Bidirectional string <-> dense-id map.
///
/// The graph store keeps one interner per graph and represents node labels,
/// relationship types and property keys as Symbols, so hot-path comparisons
/// are integer comparisons.
///
/// Single-writer / many-reader: Intern may only be called by the graph's
/// one writer (between or inside its own statements), while Find, Name and
/// size are lock-free and safe to call concurrently from snapshot readers.
/// Names live in stable chunked storage (Name's reference never moves) and
/// the hash table is an open-addressed array of symbol slots republished
/// wholesale on growth; superseded tables are kept until destruction, so a
/// reader mid-probe on an old table simply misses the newest symbols —
/// which a pinned-snapshot reader cannot observe data for anyway.
class Interner {
 public:
  Interner();
  ~Interner() = default;

  /// Copies and moves require quiescence (no concurrent reader on either
  /// side); the database only copies/moves whole graphs between statements.
  Interner(const Interner& other);
  Interner& operator=(const Interner& other);
  Interner(Interner&& other) noexcept;
  Interner& operator=(Interner&& other) noexcept;

  /// Returns the symbol for `text`, interning it on first use. Writer only.
  Symbol Intern(std::string_view text);

  /// Returns the symbol for `text`, or kNoSymbol if never interned.
  /// Lock-free; usable concurrently with the writer interning.
  Symbol Find(std::string_view text) const;

  /// Returns the string for a symbol previously returned by Intern. The
  /// reference is stable for the interner's lifetime.
  const std::string& Name(Symbol symbol) const { return names_[symbol]; }

  size_t size() const { return names_.size(); }

 private:
  /// Open-addressed table of symbol+1 values (0 = empty), linear probing.
  struct Table {
    explicit Table(size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<uint32_t>[capacity]()) {}
    size_t mask;
    std::unique_ptr<std::atomic<uint32_t>[]> slots;
  };

  void InsertIntoTable(Table* table, Symbol symbol);
  void Grow();
  void StealFrom(Interner* other) noexcept;

  SlotVector<std::string> names_;
  std::atomic<Table*> table_{nullptr};
  /// Every table ever published, newest last; old ones stay for stragglers.
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace cypher

#endif  // CYPHER_COMMON_INTERNER_H_
