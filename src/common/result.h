#ifndef CYPHER_COMMON_RESULT_H_
#define CYPHER_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cypher {

/// Either a value of type T or an error Status (Arrow's Result<T> idiom).
///
/// A Result is never in an "OK but empty" state: constructing one from an OK
/// Status is an internal error. Access to the value of a failed Result is a
/// programming error guarded by assertions.
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. Intentionally implicit so functions can
  /// `return Status::...;`.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error; Status::OK() if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace cypher

/// Evaluates a Result-returning expression; on error propagates the Status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define CYPHER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define CYPHER_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define CYPHER_ASSIGN_OR_RETURN_NAME(a, b) CYPHER_ASSIGN_OR_RETURN_CONCAT(a, b)

#define CYPHER_ASSIGN_OR_RETURN(lhs, expr)                                    \
  CYPHER_ASSIGN_OR_RETURN_IMPL(                                               \
      CYPHER_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

#endif  // CYPHER_COMMON_RESULT_H_
