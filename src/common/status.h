#ifndef CYPHER_COMMON_STATUS_H_
#define CYPHER_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cypher {

/// Category of failure carried by a Status.
///
/// The engine never throws across public API boundaries; every fallible
/// operation returns a Status (or a Result<T>, see result.h). Codes are
/// coarse: the message carries the precise diagnostic.
enum class StatusCode {
  kOk = 0,
  /// Lexical or grammatical error in a query string.
  kSyntaxError,
  /// Query is grammatical but ill-formed (unknown variable, re-declared
  /// variable, CREATE pattern restrictions violated, ...).
  kSemanticError,
  /// Well-formed query whose evaluation is undefined: conflicting SET values
  /// (paper Example 2), deleting a node while relationships remain attached,
  /// type errors in expressions, ...
  kExecutionError,
  /// Malformed input to a non-query API (CSV reader, graph loader, ...).
  kInvalidArgument,
  /// Internal invariant violation; indicates an engine bug.
  kInternalError,
  /// The statement's deadline passed before it finished; the watchdog
  /// cancelled it and its mutations were rolled back.
  kDeadlineExceeded,
  /// The statement was explicitly cancelled (CancelToken::Cancel) or gave
  /// up on a poisoned write-ahead log; mutations were rolled back.
  kAborted,
};

/// Returns a short stable name for a status code, e.g. "SyntaxError".
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// Modeled on the RocksDB/Arrow Status idiom. The OK status stores no
/// allocation; error states share an immutable representation so Status is
/// cheap to copy and return by value.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status InternalError(std::string msg) {
    return Status(StatusCode::kInternalError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Diagnostic message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

}  // namespace cypher

/// Propagates a non-OK Status to the caller.
#define CYPHER_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::cypher::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // CYPHER_COMMON_STATUS_H_
