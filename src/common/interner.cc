#include "common/interner.h"

#include <functional>

#include "common/check.h"

namespace cypher {

namespace {

uint64_t HashText(std::string_view text) {
  return std::hash<std::string_view>{}(text);
}

}  // namespace

Interner::Interner() {
  auto table = std::make_unique<Table>(16);
  table_.store(table.get(), std::memory_order_release);
  tables_.push_back(std::move(table));
}

Interner::Interner(const Interner& other) : Interner() {
  size_t n = other.names_.size();
  for (size_t i = 0; i < n; ++i) Intern(other.names_[i]);
}

Interner& Interner::operator=(const Interner& other) {
  if (this != &other) {
    Interner copy(other);
    *this = std::move(copy);
  }
  return *this;
}

// The atomic table pointer deletes the defaulted moves; steal by hand and
// leave the source usable (fresh empty table), since moved-from graphs are
// still destroyed and occasionally reused.
Interner::Interner(Interner&& other) noexcept { StealFrom(&other); }

Interner& Interner::operator=(Interner&& other) noexcept {
  if (this != &other) StealFrom(&other);
  return *this;
}

void Interner::StealFrom(Interner* other) noexcept {
  names_ = std::move(other->names_);
  tables_ = std::move(other->tables_);
  table_.store(other->table_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  auto fresh = std::make_unique<Table>(16);
  other->table_.store(fresh.get(), std::memory_order_relaxed);
  other->tables_.clear();
  other->tables_.push_back(std::move(fresh));
}

Symbol Interner::Find(std::string_view text) const {
  const Table* table = table_.load(std::memory_order_acquire);
  size_t i = HashText(text) & table->mask;
  while (true) {
    uint32_t stored = table->slots[i].load(std::memory_order_acquire);
    if (stored == 0) return kNoSymbol;
    Symbol symbol = stored - 1;
    if (names_[symbol] == text) return symbol;
    i = (i + 1) & table->mask;
  }
}

Symbol Interner::Intern(std::string_view text) {
  Symbol existing = Find(text);
  if (existing != kNoSymbol) return existing;
  Symbol symbol = static_cast<Symbol>(names_.size());
  CYPHER_CHECK(symbol != kNoSymbol);
  // Publish the name before its table slot: a reader that acquires the slot
  // must be able to dereference the name.
  names_.Append(std::string(text));
  // Keep the load factor under 2/3 so probes terminate.
  Table* table = table_.load(std::memory_order_relaxed);
  if ((names_.size() + 1) * 3 >= (table->mask + 1) * 2) Grow();
  InsertIntoTable(table_.load(std::memory_order_relaxed), symbol);
  return symbol;
}

void Interner::InsertIntoTable(Table* table, Symbol symbol) {
  size_t i = HashText(names_[symbol]) & table->mask;
  while (table->slots[i].load(std::memory_order_relaxed) != 0) {
    i = (i + 1) & table->mask;
  }
  table->slots[i].store(symbol + 1, std::memory_order_release);
}

void Interner::Grow() {
  Table* old = table_.load(std::memory_order_relaxed);
  auto fresh = std::make_unique<Table>((old->mask + 1) * 2);
  // The fresh symbol is not yet in any table; rehash only published ones.
  for (Symbol s = 0; s + 1 < names_.size(); ++s) {
    InsertIntoTable(fresh.get(), s);
  }
  table_.store(fresh.get(), std::memory_order_release);
  tables_.push_back(std::move(fresh));
}

}  // namespace cypher
