#include "common/interner.h"

#include "common/check.h"

namespace cypher {

Symbol Interner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  Symbol symbol = static_cast<Symbol>(names_.size());
  CYPHER_CHECK(symbol != kNoSymbol);
  names_.emplace_back(text);
  index_.emplace(names_.back(), symbol);
  return symbol;
}

Symbol Interner::Find(std::string_view text) const {
  auto it = index_.find(std::string(text));
  if (it == index_.end()) return kNoSymbol;
  return it->second;
}

}  // namespace cypher
