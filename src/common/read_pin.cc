#include "common/read_pin.h"

namespace cypher::detail {

thread_local ReadPin g_thread_read_pin;

}  // namespace cypher::detail
