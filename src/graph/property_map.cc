#include "graph/property_map.h"

#include <algorithm>

#include "value/compare.h"

namespace cypher {

namespace {

const Value kNullValue;

auto LowerBound(const std::vector<std::pair<Symbol, Value>>& entries,
                Symbol key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const std::pair<Symbol, Value>& e, Symbol k) { return e.first < k; });
}

}  // namespace

const Value& PropertyMap::Get(Symbol key) const {
  auto it = LowerBound(entries_, key);
  if (it != entries_.end() && it->first == key) return it->second;
  return kNullValue;
}

bool PropertyMap::Has(Symbol key) const {
  auto it = LowerBound(entries_, key);
  return it != entries_.end() && it->first == key;
}

bool PropertyMap::Set(Symbol key, Value value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const std::pair<Symbol, Value>& e, Symbol k) { return e.first < k; });
  bool present = it != entries_.end() && it->first == key;
  if (value.is_null()) {
    if (!present) return false;
    entries_.erase(it);
    return true;
  }
  if (present) {
    if (GroupEquals(it->second, value) &&
        it->second.type() == value.type()) {
      return false;
    }
    it->second = std::move(value);
    return true;
  }
  entries_.insert(it, {key, std::move(value)});
  return true;
}

bool PropertyMap::Erase(Symbol key) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const std::pair<Symbol, Value>& e, Symbol k) { return e.first < k; });
  if (it == entries_.end() || it->first != key) return false;
  entries_.erase(it);
  return true;
}

bool PropsEquivalent(const PropertyMap& a, const PropertyMap& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.entries().size(); ++i) {
    if (a.entries()[i].first != b.entries()[i].first) return false;
    if (!GroupEquals(a.entries()[i].second, b.entries()[i].second)) {
      return false;
    }
  }
  return true;
}

uint64_t HashProps(const PropertyMap& map) {
  uint64_t h = 29;
  for (const auto& [key, value] : map.entries()) {
    h ^= (static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL + (h << 6) +
          (h >> 2));
    h ^= (HashValue(value) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
  return h;
}

}  // namespace cypher
