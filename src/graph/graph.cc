#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"
#include "value/compare.h"

namespace cypher {

namespace {

void SortUnique(std::vector<Symbol>* labels) {
  std::sort(labels->begin(), labels->end());
  labels->erase(std::unique(labels->begin(), labels->end()), labels->end());
}

// Adjacency lists stay sorted by rel id, so link/unlink are binary searches
// and the matcher can merge-walk out/in lists without materializing.

void SortedInsert(std::vector<RelId>* rels, RelId id) {
  if (rels->empty() || rels->back() < id) {  // common case: fresh rel id
    rels->push_back(id);
    return;
  }
  auto it = std::lower_bound(rels->begin(), rels->end(), id);
  if (it == rels->end() || *it != id) rels->insert(it, id);
}

void SortedErase(std::vector<RelId>* rels, RelId id) {
  auto it = std::lower_bound(rels->begin(), rels->end(), id);
  if (it != rels->end() && *it == id) rels->erase(it);
}

template <typename T>
void DeleteAs(void* p) {
  delete static_cast<T*>(p);
}

}  // namespace

// ---- Lifecycle ------------------------------------------------------------

PropertyGraph::PropertyGraph(const PropertyGraph& other)
    : labels_(other.labels_), types_(other.types_), keys_(other.keys_) {
  // Materialize the source's latest state (version chains flattened); the
  // copy starts in non-MVCC mode with empty chains.
  size_t num_node_slots = other.nodes_.size();
  for (size_t i = 0; i < num_node_slots; ++i) {
    nodes_.Append(other.NodeLatest(static_cast<uint32_t>(i)));
  }
  node_chains_.EnsureSize(num_node_slots);
  size_t num_rel_slots = other.rels_.size();
  for (size_t i = 0; i < num_rel_slots; ++i) {
    rels_.Append(other.RelLatest(static_cast<uint32_t>(i)));
  }
  rel_chains_.EnsureSize(num_rel_slots);
  size_t num_labels = other.label_buckets_.size();
  label_buckets_.EnsureSize(num_labels);
  for (size_t s = 0; s < num_labels; ++s) {
    const LabelBucket* head =
        other.label_buckets_[s].head.load(std::memory_order_relaxed);
    if (head != nullptr) {
      auto* bucket = new LabelBucket;
      bucket->ids = head->ids;
      label_buckets_[s].head.store(bucket, std::memory_order_relaxed);
    }
  }
  label_counts_.EnsureSize(other.label_counts_.size());
  for (size_t s = 0; s < other.label_counts_.size(); ++s) {
    label_counts_[s].store(
        other.label_counts_[s].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  property_indexes_ = other.property_indexes_;
  unique_constraints_ = other.unique_constraints_;
  index_epoch_.store(other.index_epoch_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  alive_nodes_.store(other.alive_nodes_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  alive_rels_.store(other.alive_rels_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  journal_ = other.journal_;
  journaling_ = other.journaling_;
  redo_log_ = other.redo_log_;
  redo_capture_ = other.redo_capture_;
}

PropertyGraph& PropertyGraph::operator=(const PropertyGraph& other) {
  if (this != &other) {
    PropertyGraph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

PropertyGraph::PropertyGraph(PropertyGraph&& other) noexcept {
  StealFrom(&other);
}

PropertyGraph& PropertyGraph::operator=(PropertyGraph&& other) noexcept {
  if (this != &other) {
    DestroyVersions();
    StealFrom(&other);
  }
  return *this;
}

PropertyGraph::~PropertyGraph() { DestroyVersions(); }

void PropertyGraph::StealFrom(PropertyGraph* other) noexcept {
  labels_ = std::move(other->labels_);
  types_ = std::move(other->types_);
  keys_ = std::move(other->keys_);
  nodes_ = std::move(other->nodes_);
  rels_ = std::move(other->rels_);
  node_chains_ = std::move(other->node_chains_);
  rel_chains_ = std::move(other->rel_chains_);
  label_buckets_ = std::move(other->label_buckets_);
  label_counts_ = std::move(other->label_counts_);
  property_indexes_ = std::move(other->property_indexes_);
  unique_constraints_ = std::move(other->unique_constraints_);
  index_epoch_.store(other->index_epoch_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  alive_nodes_.store(other->alive_nodes_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  alive_rels_.store(other->alive_rels_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  other->alive_nodes_.store(0, std::memory_order_relaxed);
  other->alive_rels_.store(0, std::memory_order_relaxed);
  journal_ = std::move(other->journal_);
  journaling_ = other->journaling_;
  other->journal_.clear();
  other->journaling_ = false;
  mvcc_on_ = other->mvcc_on_;
  write_epoch_ = other->write_epoch_;
  published_node_count_ = other->published_node_count_;
  published_rel_count_ = other->published_rel_count_;
  published_.store(other->published_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  registry_ = std::move(other->registry_);
  retired_ = std::move(other->retired_);
  other->mvcc_on_ = false;
  other->write_epoch_ = 1;
  other->published_node_count_ = 0;
  other->published_rel_count_ = 0;
  other->published_.store(nullptr, std::memory_order_relaxed);
  redo_log_ = std::move(other->redo_log_);
  redo_capture_ = other->redo_capture_;
  other->redo_log_.clear();
  other->redo_capture_ = false;
}

void PropertyGraph::DestroyVersions() {
  // Invariant: every superseded version record (and epoch descriptor) sits
  // in the retire list exactly once, so freeing the chain heads plus
  // draining the list frees everything. Dangling `prev` pointers into
  // already-drained entries are never followed — nothing reads chains here.
  for (size_t i = 0; i < node_chains_.size(); ++i) {
    delete node_chains_[i].head.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < rel_chains_.size(); ++i) {
    delete rel_chains_[i].head.load(std::memory_order_relaxed);
  }
  for (size_t s = 0; s < label_buckets_.size(); ++s) {
    delete label_buckets_[s].head.load(std::memory_order_relaxed);
  }
  retired_.Drain();
  delete published_.load(std::memory_order_relaxed);
  published_.store(nullptr, std::memory_order_relaxed);
}

// ---- MVCC lifecycle -------------------------------------------------------

void PropertyGraph::EnableMvcc() {
  AssertMutable();
  if (mvcc_on_) return;
  CYPHER_CHECK(journal_.empty() && "EnableMvcc inside an open statement");
  mvcc_on_ = true;
  write_epoch_ = 1;
  published_node_count_ = nodes_.size();
  published_rel_count_ = rels_.size();
  registry_ = std::make_unique<PinRegistry>();
  // Epoch 0 = everything committed so far. From here on the base slots
  // below the watermarks are frozen; mutators install version records.
  published_.store(new EpochState{0, nodes_.size(), rels_.size()},
                   std::memory_order_seq_cst);
}

void PropertyGraph::PublishEpoch() {
  if (!mvcc_on_) return;
  AssertMutable();
  const EpochState* old = published_.load(std::memory_order_relaxed);
  published_.store(new EpochState{write_epoch_, nodes_.size(), rels_.size()},
                   std::memory_order_seq_cst);
  // The old descriptor may still be mid-copy inside a concurrent Pin; it
  // retires like any superseded version and is freed once no pin predates
  // this publication (Pin's 0-placeholder blocks reclamation meanwhile).
  retired_.Add(const_cast<EpochState*>(old), &DeleteAs<const EpochState>,
               write_epoch_);
  published_node_count_ = nodes_.size();
  published_rel_count_ = rels_.size();
  ++write_epoch_;
  ReclaimRetired();
}

void PropertyGraph::ReclaimRetired() {
  if (registry_ == nullptr) return;
  retired_.Reclaim(registry_->MinActive());
}

ReadPin PropertyGraph::AcquireReadPin() const {
  CYPHER_CHECK(mvcc_on_ && "AcquireReadPin requires EnableMvcc");
  const EpochState* state = nullptr;
  uint32_t slot = registry_->Pin(published_, &state);
  ReadPin pin;
  pin.owner = this;
  pin.epoch = state->epoch;
  pin.node_slots = state->node_slots;
  pin.rel_slots = state->rel_slots;
  pin.registry_slot = slot;
  pin.active = true;
  return pin;
}

void PropertyGraph::RefreshReadPin(ReadPin* pin) const {
  CYPHER_CHECK(pin != nullptr && pin->active && pin->owner == this);
  const EpochState* state = nullptr;
  registry_->Refresh(pin->registry_slot, published_, &state);
  pin->epoch = state->epoch;
  pin->node_slots = state->node_slots;
  pin->rel_slots = state->rel_slots;
}

void PropertyGraph::ReleaseReadPin(const ReadPin& pin) const {
  CYPHER_CHECK(pin.active && pin.owner == this);
  registry_->Unpin(pin.registry_slot);
}

// ---- Copy-on-first-touch (writer side) ------------------------------------

NodeData& PropertyGraph::MutableNode(NodeId id) {
  // Slots no published epoch covers are invisible to every pin: mutate the
  // base in place, chain-free. Without MVCC that is the only path.
  if (!mvcc_on_ || id.value >= published_node_count_) return nodes_[id.value];
  Chain<NodeData>& chain = node_chains_[id.value];
  VersionRec<NodeData>* head = chain.head.load(std::memory_order_relaxed);
  // Current statement already touched this slot (including a failed prior
  // statement at the same unpublished epoch — rollback restored the copy's
  // contents, so reusing it is correct): keep editing in place.
  if (head != nullptr && head->since == write_epoch_) return head->data;
  auto* rec = new VersionRec<NodeData>;
  rec->since = write_epoch_;
  rec->prev = head;
  rec->data = head != nullptr ? head->data : nodes_[id.value];
  chain.head.store(rec, std::memory_order_release);
  // The superseded head serves pins up to epoch write_epoch_ - 1; it frees
  // once the minimum active pin reaches write_epoch_ (or no pins remain),
  // which can only happen after this epoch publishes.
  if (head != nullptr) {
    retired_.Add(head, &DeleteAs<VersionRec<NodeData>>, write_epoch_);
  }
  return rec->data;
}

RelData& PropertyGraph::MutableRel(RelId id) {
  if (!mvcc_on_ || id.value >= published_rel_count_) return rels_[id.value];
  Chain<RelData>& chain = rel_chains_[id.value];
  VersionRec<RelData>* head = chain.head.load(std::memory_order_relaxed);
  if (head != nullptr && head->since == write_epoch_) return head->data;
  auto* rec = new VersionRec<RelData>;
  rec->since = write_epoch_;
  rec->prev = head;
  rec->data = head != nullptr ? head->data : rels_[id.value];
  chain.head.store(rec, std::memory_order_release);
  if (head != nullptr) {
    retired_.Add(head, &DeleteAs<VersionRec<RelData>>, write_epoch_);
  }
  return rec->data;
}

PropertyGraph::LabelBucket& PropertyGraph::MutableBucket(Symbol label) {
  BucketHead& slot = label_buckets_[label];
  LabelBucket* head = slot.head.load(std::memory_order_relaxed);
  if (head == nullptr) {
    // First node ever with this label. since = the installing epoch, so
    // older pins resolve to "no bucket" (the label did not exist for them).
    auto* bucket = new LabelBucket;
    bucket->since = mvcc_on_ ? write_epoch_ : 0;
    slot.head.store(bucket, std::memory_order_release);
    return *bucket;
  }
  if (!mvcc_on_ || head->since == write_epoch_) return *head;
  auto* bucket = new LabelBucket;
  bucket->since = write_epoch_;
  bucket->prev = head;
  bucket->ids = head->ids;
  slot.head.store(bucket, std::memory_order_release);
  retired_.Add(head, &DeleteAs<LabelBucket>, write_epoch_);
  return *bucket;
}

PropertyMap& PropertyGraph::MutableProps(EntityRef entity) {
  return entity.kind == EntityRef::Kind::kNode
             ? MutableNode(entity.AsNode()).props
             : MutableRel(entity.AsRel()).props;
}

void PropertyGraph::EnsureLabelSlots(Symbol label) {
  if (label == kNoSymbol) return;
  size_t need = static_cast<size_t>(label) + 1;
  if (label_buckets_.size() < need) label_buckets_.EnsureSize(need);
  if (label_counts_.size() < need) label_counts_.EnsureSize(need);
}

void PropertyGraph::DecLabelCount(Symbol label) {
  int64_t prev = label_counts_[label].fetch_sub(1, std::memory_order_relaxed);
  CYPHER_CHECK(prev > 0);
}

// ---- Single-writer epoch check --------------------------------------------

/// Mutating a graph that a parallel read region is scanning is
/// memory-unsafe (the writer's own fan-out shares latest state), so fail
/// fast. Snapshot-pinned readers do not register — their reads resolve
/// against immutable epochs and tolerate the writer by construction. A
/// relaxed load per mutation is noise next to the mutation itself.
void PropertyGraph::AssertMutable() const {
  CYPHER_CHECK(!InParallelReadRegion() &&
               "graph mutated inside a parallel read region");
}

void PropertyGraph::RedoAppend(std::string line) {
  redo_log_ += line;
  redo_log_ += '\n';
}

std::string PropertyGraph::RedoLabels(
    const std::vector<Symbol>& labels) const {
  std::string out;
  for (Symbol label : labels) {
    out += ':';
    out += LabelName(label);
  }
  return out;
}

// ---- Creation -------------------------------------------------------------

NodeId PropertyGraph::CreateNode(std::vector<Symbol> labels,
                                 PropertyMap props) {
  AssertMutable();
  SortUnique(&labels);
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  NodeData data;
  data.labels = std::move(labels);
  data.props = std::move(props);
  NodeData& created = nodes_.Append(std::move(data));
  node_chains_.EnsureSize(nodes_.size());
  alive_nodes_.fetch_add(1, std::memory_order_relaxed);
  for (Symbol label : created.labels) AddToLabelIndex(id, label);
  IndexNode(id);
  Record({.kind = OpKind::kCreateNode, .entity = EntityRef::Node(id)});
  if (redo_capture_) {
    RedoAppend("node+ " + std::to_string(id.value) +
               RedoLabels(created.labels) + " " +
               DescribeProps(*this, created.props));
  }
  return id;
}

Result<RelId> PropertyGraph::CreateRel(NodeId src, NodeId tgt, Symbol type,
                                       PropertyMap props) {
  AssertMutable();
  if (!IsNodeAlive(src) || !IsNodeAlive(tgt)) {
    return Status::ExecutionError(
        "cannot create relationship: endpoint node does not exist");
  }
  CYPHER_CHECK(type != kNoSymbol);
  RelId id(static_cast<uint32_t>(rels_.size()));
  RelData data;
  data.type = type;
  data.src = src;
  data.tgt = tgt;
  data.props = std::move(props);
  RelData& created = rels_.Append(std::move(data));
  rel_chains_.EnsureSize(rels_.size());
  alive_rels_.fetch_add(1, std::memory_order_relaxed);
  RelinkRel(id);
  Record({.kind = OpKind::kCreateRel, .entity = EntityRef::Rel(id)});
  if (redo_capture_) {
    RedoAppend("rel+ " + std::to_string(id.value) + " " +
               std::to_string(src.value) + " " + std::to_string(tgt.value) +
               " :" + TypeName(type) + " " +
               DescribeProps(*this, created.props));
  }
  return id;
}

// ---- Access ---------------------------------------------------------------

bool PropertyGraph::NodeHasLabel(NodeId id, Symbol label) const {
  const auto& labels = node(id).labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

std::vector<NodeId> PropertyGraph::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(num_nodes());
  ForEachNode([&](NodeId id) {
    out.push_back(id);
    return true;
  });
  return out;
}

std::vector<RelId> PropertyGraph::AllRels() const {
  std::vector<RelId> out;
  out.reserve(num_rels());
  size_t n = rel_capacity();
  for (uint32_t i = 0; i < n; ++i) {
    if (rel(RelId(i)).alive) out.push_back(RelId(i));
  }
  return out;
}

std::vector<NodeId> PropertyGraph::NodesByLabel(Symbol label) const {
  std::vector<NodeId> out;
  out.reserve(LabelCount(label));
  ForEachNodeWithLabel(label, [&](NodeId id) {
    out.push_back(id);
    return true;
  });
  return out;
}

std::vector<RelId> PropertyGraph::OutRels(NodeId id) const {
  std::vector<RelId> out;
  ForEachOutRel(id, [&](RelId r) {
    out.push_back(r);
    return true;
  });
  return out;
}

std::vector<RelId> PropertyGraph::InRels(NodeId id) const {
  std::vector<RelId> out;
  ForEachInRel(id, [&](RelId r) {
    out.push_back(r);
    return true;
  });
  return out;
}

size_t PropertyGraph::Degree(NodeId id) const {
  const NodeData& data = node(id);
  size_t n = 0;
  for (RelId r : data.out_rels) n += IsRelAlive(r) ? 1 : 0;
  for (RelId r : data.in_rels) n += IsRelAlive(r) ? 1 : 0;
  return n;
}

// ---- Mutation -------------------------------------------------------------

bool PropertyGraph::AddLabel(NodeId id, Symbol label) {
  AssertMutable();
  NodeData& data = MutableNode(id);
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), label);
  if (it != data.labels.end() && *it == label) return false;
  data.labels.insert(it, label);
  AddToLabelIndex(id, label);
  for (const PropertyIndex& index : property_indexes_) {
    if (index.label != label) continue;
    const Value& value = data.props.Get(index.key);
    if (!value.is_null()) IndexNodeKey(id, index.key);
  }
  Record({.kind = OpKind::kAddLabel,
          .entity = EntityRef::Node(id),
          .symbol = label});
  if (redo_capture_) {
    RedoAppend("label+ " + std::to_string(id.value) + " :" +
               LabelName(label));
  }
  return true;
}

bool PropertyGraph::RemoveLabel(NodeId id, Symbol label) {
  AssertMutable();
  NodeData& data = MutableNode(id);
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), label);
  if (it == data.labels.end() || *it != label) return false;
  data.labels.erase(it);
  DecLabelCount(label);
  for (PropertyIndex& index : property_indexes_) {
    if (index.label == label && !data.props.Get(index.key).is_null()) {
      ++index.stale_hint;
    }
  }
  Record({.kind = OpKind::kRemoveLabel,
          .entity = EntityRef::Node(id),
          .symbol = label});
  if (redo_capture_) {
    RedoAppend("label- " + std::to_string(id.value) + " :" +
               LabelName(label));
  }
  return true;
}

bool PropertyGraph::SetProperty(EntityRef entity, Symbol key, Value value) {
  AssertMutable();
  PropertyMap& props = MutableProps(entity);
  Value redo_value;
  if (redo_capture_) redo_value = value;
  Value old = props.Get(key);
  if (!props.Set(key, std::move(value))) return false;
  if (entity.kind == EntityRef::Kind::kNode) {
    if (!old.is_null()) {
      const NodeData& data = node(entity.AsNode());
      for (PropertyIndex& index : property_indexes_) {
        if (index.key == key &&
            std::binary_search(data.labels.begin(), data.labels.end(),
                               index.label)) {
          ++index.stale_hint;  // the entry under the old value's hash
        }
      }
    }
    IndexNodeKey(entity.AsNode(), key);
  }
  Record({.kind = OpKind::kSetProp,
          .entity = entity,
          .symbol = key,
          .old_value = std::move(old)});
  if (redo_capture_) {
    RedoAppend(std::string("prop ") +
               (entity.kind == EntityRef::Kind::kNode ? "N " : "R ") +
               std::to_string(entity.id) + " " + KeyName(key) + " " +
               redo_value.ToString());
  }
  return true;
}

void PropertyGraph::ReplaceProperties(EntityRef entity, PropertyMap props) {
  AssertMutable();
  PropertyMap& target = MutableProps(entity);
  Record({.kind = OpKind::kReplaceProps,
          .entity = entity,
          .old_props = target});
  if (entity.kind == EntityRef::Kind::kNode) {
    const NodeData& data = node(entity.AsNode());
    for (PropertyIndex& index : property_indexes_) {
      if (std::binary_search(data.labels.begin(), data.labels.end(),
                             index.label) &&
          !target.Get(index.key).is_null()) {
        ++index.stale_hint;
      }
    }
  }
  target = std::move(props);
  if (entity.kind == EntityRef::Kind::kNode) IndexNode(entity.AsNode());
  if (redo_capture_) {
    RedoAppend(std::string("props ") +
               (entity.kind == EntityRef::Kind::kNode ? "N " : "R ") +
               std::to_string(entity.id) + " " + DescribeProps(*this, target));
  }
}

const PropertyMap& PropertyGraph::Properties(EntityRef entity) const {
  return entity.kind == EntityRef::Kind::kNode ? node(entity.AsNode()).props
                                               : rel(entity.AsRel()).props;
}

void PropertyGraph::DeleteRel(RelId id) {
  AssertMutable();
  if (!IsRelAlive(id)) return;
  RelData& data = MutableRel(id);
  Record({.kind = OpKind::kDeleteRel,
          .entity = EntityRef::Rel(id),
          .old_rel = data});
  UnlinkRel(id);
  data.alive = false;
  data.props.Clear();
  alive_rels_.fetch_sub(1, std::memory_order_relaxed);
  if (redo_capture_) RedoAppend("rel- " + std::to_string(id.value));
}

void PropertyGraph::DeleteNode(NodeId id) {
  AssertMutable();
  if (!IsNodeAlive(id)) return;
  CYPHER_CHECK(Degree(id) == 0 &&
               "DeleteNode requires no alive incident relationships");
  DeleteNodeForce(id);
}

void PropertyGraph::DeleteNodeForce(NodeId id) {
  AssertMutable();
  if (!IsNodeAlive(id)) return;
  NodeData& data = MutableNode(id);
  Record({.kind = OpKind::kDeleteNode,
          .entity = EntityRef::Node(id),
          .old_props = data.props,
          .old_labels = data.labels});
  for (Symbol label : data.labels) DecLabelCount(label);
  for (PropertyIndex& index : property_indexes_) {
    if (std::binary_search(data.labels.begin(), data.labels.end(),
                           index.label) &&
        !data.props.Get(index.key).is_null()) {
      ++index.stale_hint;
    }
  }
  data.alive = false;
  data.labels.clear();
  data.props.Clear();
  alive_nodes_.fetch_sub(1, std::memory_order_relaxed);
  if (redo_capture_) RedoAppend("node- " + std::to_string(id.value));
}

NodeId PropertyGraph::AppendTombstoneNode() {
  AssertMutable();
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  NodeData data;
  data.alive = false;
  nodes_.Append(std::move(data));
  node_chains_.EnsureSize(nodes_.size());
  return id;
}

RelId PropertyGraph::AppendTombstoneRel() {
  AssertMutable();
  RelId id(static_cast<uint32_t>(rels_.size()));
  RelData data;
  data.alive = false;
  rels_.Append(std::move(data));
  rel_chains_.EnsureSize(rels_.size());
  return id;
}

bool PropertyGraph::HasDanglingRels() const {
  size_t n = rels_.size();
  for (uint32_t i = 0; i < n; ++i) {
    const RelData& data = RelLatest(i);
    if (!data.alive) continue;
    if (!IsNodeAlive(data.src) || !IsNodeAlive(data.tgt)) return true;
  }
  return false;
}

// ---- Undo journal ---------------------------------------------------------

PropertyGraph::JournalMark PropertyGraph::BeginJournal() {
  journaling_ = true;
  return journal_.size();
}

void PropertyGraph::RollbackTo(JournalMark mark) {
  AssertMutable();
  bool was_journaling = journaling_;
  journaling_ = false;  // Rollback mutations must not journal themselves.
  while (journal_.size() > mark) {
    JournalOp op = std::move(journal_.back());
    journal_.pop_back();
    switch (op.kind) {
      case OpKind::kCreateNode: {
        NodeData& data = MutableNode(op.entity.AsNode());
        CYPHER_CHECK(data.alive);
        for (Symbol label : data.labels) DecLabelCount(label);
        data.alive = false;
        data.labels.clear();
        data.props.Clear();
        alive_nodes_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case OpKind::kCreateRel: {
        RelData& data = MutableRel(op.entity.AsRel());
        if (data.alive) {
          UnlinkRel(op.entity.AsRel());
          data.alive = false;
          data.props.Clear();
          alive_rels_.fetch_sub(1, std::memory_order_relaxed);
        }
        break;
      }
      case OpKind::kDeleteRel: {
        RelData& data = MutableRel(op.entity.AsRel());
        CYPHER_CHECK(!data.alive);
        data = op.old_rel;
        data.alive = true;
        RelinkRel(op.entity.AsRel());
        alive_rels_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case OpKind::kDeleteNode: {
        NodeData& data = MutableNode(op.entity.AsNode());
        CYPHER_CHECK(!data.alive);
        data.alive = true;
        data.labels = std::move(op.old_labels);
        data.props = std::move(op.old_props);
        alive_nodes_.fetch_add(1, std::memory_order_relaxed);
        for (Symbol label : data.labels) {
          AddToLabelIndex(op.entity.AsNode(), label);
        }
        break;
      }
      case OpKind::kForceDeleteNode:
        CYPHER_CHECK(false && "kForceDeleteNode is recorded as kDeleteNode");
        break;
      case OpKind::kAddLabel: {
        NodeData& data = MutableNode(op.entity.AsNode());
        auto it = std::lower_bound(data.labels.begin(), data.labels.end(),
                                   op.symbol);
        if (it != data.labels.end() && *it == op.symbol) {
          data.labels.erase(it);
          DecLabelCount(op.symbol);
        }
        break;
      }
      case OpKind::kRemoveLabel: {
        NodeData& data = MutableNode(op.entity.AsNode());
        auto it = std::lower_bound(data.labels.begin(), data.labels.end(),
                                   op.symbol);
        data.labels.insert(it, op.symbol);
        AddToLabelIndex(op.entity.AsNode(), op.symbol);
        break;
      }
      case OpKind::kSetProp: {
        MutableProps(op.entity).Set(op.symbol, std::move(op.old_value));
        break;
      }
      case OpKind::kReplaceProps: {
        MutableProps(op.entity) = std::move(op.old_props);
        break;
      }
    }
  }
  journaling_ = was_journaling && !journal_.empty();
  if (journal_.empty()) journaling_ = false;
}

void PropertyGraph::CommitTo(JournalMark mark) {
  AssertMutable();
  CYPHER_CHECK(mark <= journal_.size());
  journal_.resize(mark);
  if (journal_.empty()) {
    journaling_ = false;
    // Nothing left to roll back, so no tombstoned node can be resurrected:
    // stale index entries are now provably dead and safe to prune.
    CompactIndexes();
  }
}

void PropertyGraph::UnlinkRel(RelId id) {
  const RelData& data = RelLatest(id.value);
  SortedErase(&MutableNode(data.src).out_rels, id);
  SortedErase(&MutableNode(data.tgt).in_rels, id);
}

void PropertyGraph::RelinkRel(RelId id) {
  const RelData& data = RelLatest(id.value);
  SortedInsert(&MutableNode(data.src).out_rels, id);
  SortedInsert(&MutableNode(data.tgt).in_rels, id);
}

void PropertyGraph::AddToLabelIndex(NodeId id, Symbol label) {
  // Every call site adds `label` to an alive node that did not carry it, so
  // the cached cardinality is maintained here; removals decrement at their
  // own sites (the index bucket itself keeps stale ids — readers validate).
  IncLabelCount(label);
  std::vector<NodeId>& bucket = MutableBucket(label).ids;
  if (bucket.empty() || bucket.back() < id) {
    bucket.push_back(id);
    return;
  }
  auto it = std::lower_bound(bucket.begin(), bucket.end(), id);
  if (it == bucket.end() || *it != id) bucket.insert(it, id);
}

// ---- Property indexes ---------------------------------------------------------

void PropertyGraph::CreateIndex(Symbol label, Symbol key) {
  AssertMutable();
  if (FindPropertyIndex(label, key) != nullptr) return;
  if (redo_capture_) {
    RedoAppend("index+ :" + LabelName(label) + " " + KeyName(key));
  }
  index_epoch_.fetch_add(1, std::memory_order_relaxed);
  PropertyIndex index;
  index.label = label;
  index.key = key;
  property_indexes_.push_back(std::move(index));
  PropertyIndex& created = property_indexes_.back();
  for (NodeId id : NodesByLabel(label)) {
    const Value& value = node(id).props.Get(key);
    if (!value.is_null()) {
      created.buckets[HashValue(value)].push_back(id);
      ++created.entries;
    }
  }
}

bool PropertyGraph::HasIndex(Symbol label, Symbol key) const {
  return FindPropertyIndex(label, key) != nullptr;
}

std::vector<std::pair<Symbol, Symbol>> PropertyGraph::Indexes() const {
  std::vector<std::pair<Symbol, Symbol>> out;
  out.reserve(property_indexes_.size());
  for (const PropertyIndex& index : property_indexes_) {
    out.emplace_back(index.label, index.key);
  }
  return out;
}

std::vector<NodeId> PropertyGraph::IndexLookup(Symbol label, Symbol key,
                                               const Value& value) const {
  // Index buckets are plain unordered_maps mutated in place by the writer;
  // they are not versioned, so snapshot sessions must never reach them
  // (their plans compile without index anchors).
  CYPHER_CHECK(ActivePin() == nullptr && "IndexLookup under a snapshot pin");
  std::vector<NodeId> out;
  const PropertyIndex* index = FindPropertyIndex(label, key);
  CYPHER_CHECK(index != nullptr && "IndexLookup without an index");
  auto it = index->buckets.find(HashValue(value));
  if (it == index->buckets.end()) return out;
  for (NodeId id : it->second) {
    if (!IsNodeAlive(id)) continue;
    if (!NodeHasLabel(id, label)) continue;
    const Value& stored = node(id).props.Get(key);
    if (!GroupEquals(stored, value)) continue;
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t PropertyGraph::IndexEntryCount(Symbol label, Symbol key) const {
  const PropertyIndex* index = FindPropertyIndex(label, key);
  return index == nullptr ? 0 : index->entries;
}

void PropertyGraph::CompactIndexes() {
  for (PropertyIndex& index : property_indexes_) {
    // Amortize: only sweep an index once at least half its entries are
    // suspected stale (deleted / relabeled / value-changed nodes).
    if (index.entries == 0 || index.stale_hint * 2 < index.entries) continue;
    index.stale_hint = 0;
    auto valid = [&](uint64_t hash, NodeId id) {
      if (!IsNodeAlive(id) || !NodeHasLabel(id, index.label)) return false;
      const Value& value = node(id).props.Get(index.key);
      return !value.is_null() && HashValue(value) == hash;
    };
    size_t total = 0;
    for (auto it = index.buckets.begin(); it != index.buckets.end();) {
      std::vector<NodeId>& bucket = it->second;
      std::vector<NodeId> kept;
      kept.reserve(bucket.size());
      for (NodeId id : bucket) {
        if (valid(it->first, id)) kept.push_back(id);
      }
      std::sort(kept.begin(), kept.end());
      kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
      // Rewrite only buckets whose stale ratio (dead, relabeled, rehashed,
      // or duplicate entries) exceeds 50%; others keep their storage.
      if ((bucket.size() - kept.size()) * 2 > bucket.size()) {
        if (kept.empty()) {
          it = index.buckets.erase(it);
          continue;
        }
        bucket = std::move(kept);
      }
      total += bucket.size();
      ++it;
    }
    index.entries = total;
  }
}

void PropertyGraph::DropIndex(Symbol label, Symbol key) {
  AssertMutable();
  for (size_t i = 0; i < property_indexes_.size(); ++i) {
    if (property_indexes_[i].label == label &&
        property_indexes_[i].key == key) {
      property_indexes_.erase(property_indexes_.begin() +
                              static_cast<ptrdiff_t>(i));
      index_epoch_.fetch_add(1, std::memory_order_relaxed);
      if (redo_capture_) {
        RedoAppend("index- :" + LabelName(label) + " " + KeyName(key));
      }
      return;
    }
  }
}

// ---- Uniqueness constraints ----------------------------------------------------

namespace {

/// Finds a pair of distinct alive nodes with group-equal non-null values;
/// returns the duplicated value's text or empty when unique.
std::string FindDuplicateValue(const PropertyGraph& graph, Symbol label,
                               Symbol key) {
  std::unordered_map<uint64_t, std::vector<std::pair<NodeId, Value>>> seen;
  for (NodeId id : graph.NodesByLabel(label)) {
    const Value& value = graph.node(id).props.Get(key);
    if (value.is_null()) continue;
    auto& bucket = seen[HashValue(value)];
    for (const auto& [other, other_value] : bucket) {
      if (GroupEquals(other_value, value)) return value.ToString();
    }
    bucket.emplace_back(id, value);
  }
  return "";
}

}  // namespace

Status PropertyGraph::AddUniqueConstraint(Symbol label, Symbol key) {
  AssertMutable();
  if (HasUniqueConstraint(label, key)) return Status::OK();
  std::string duplicate = FindDuplicateValue(*this, label, key);
  if (!duplicate.empty()) {
    return Status::ExecutionError(
        "cannot create uniqueness constraint on :" + LabelName(label) + "(" +
        KeyName(key) + "): existing nodes share the value " + duplicate);
  }
  unique_constraints_.emplace_back(label, key);
  if (redo_capture_) {
    RedoAppend("uniq+ :" + LabelName(label) + " " + KeyName(key));
  }
  return Status::OK();
}

void PropertyGraph::DropUniqueConstraint(Symbol label, Symbol key) {
  AssertMutable();
  for (size_t i = 0; i < unique_constraints_.size(); ++i) {
    if (unique_constraints_[i] == std::make_pair(label, key)) {
      unique_constraints_.erase(unique_constraints_.begin() +
                                static_cast<ptrdiff_t>(i));
      if (redo_capture_) {
        RedoAppend("uniq- :" + LabelName(label) + " " + KeyName(key));
      }
      return;
    }
  }
}

bool PropertyGraph::HasUniqueConstraint(Symbol label, Symbol key) const {
  for (const auto& constraint : unique_constraints_) {
    if (constraint == std::make_pair(label, key)) return true;
  }
  return false;
}

std::vector<std::pair<Symbol, Symbol>> PropertyGraph::UniqueConstraints()
    const {
  return unique_constraints_;
}

Status PropertyGraph::ValidateUniqueConstraints() const {
  for (const auto& [label, key] : unique_constraints_) {
    std::string duplicate = FindDuplicateValue(*this, label, key);
    if (!duplicate.empty()) {
      return Status::ExecutionError(
          "uniqueness constraint on :" + LabelName(label) + "(" +
          KeyName(key) + ") violated: two nodes share the value " + duplicate);
    }
  }
  return Status::OK();
}

PropertyGraph::PropertyIndex* PropertyGraph::FindPropertyIndex(Symbol label,
                                                               Symbol key) {
  for (PropertyIndex& index : property_indexes_) {
    if (index.label == label && index.key == key) return &index;
  }
  return nullptr;
}

const PropertyGraph::PropertyIndex* PropertyGraph::FindPropertyIndex(
    Symbol label, Symbol key) const {
  for (const PropertyIndex& index : property_indexes_) {
    if (index.label == label && index.key == key) return &index;
  }
  return nullptr;
}

void PropertyGraph::IndexNode(NodeId id) {
  if (property_indexes_.empty()) return;
  const NodeData& data = NodeLatest(id.value);
  for (PropertyIndex& index : property_indexes_) {
    if (!std::binary_search(data.labels.begin(), data.labels.end(),
                            index.label)) {
      continue;
    }
    const Value& value = data.props.Get(index.key);
    if (!value.is_null()) {
      index.buckets[HashValue(value)].push_back(id);
      ++index.entries;
    }
  }
}

void PropertyGraph::IndexNodeKey(NodeId id, Symbol key) {
  if (property_indexes_.empty()) return;
  const NodeData& data = NodeLatest(id.value);
  for (PropertyIndex& index : property_indexes_) {
    if (index.key != key) continue;
    if (!std::binary_search(data.labels.begin(), data.labels.end(),
                            index.label)) {
      continue;
    }
    const Value& value = data.props.Get(index.key);
    if (!value.is_null()) {
      index.buckets[HashValue(value)].push_back(id);
      ++index.entries;
    }
  }
}

std::string DescribeProps(const PropertyGraph& graph, const PropertyMap& map) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : map.entries()) {
    if (!first) out += ", ";
    first = false;
    out += graph.KeyName(key);
    out += ": ";
    out += value.ToString();
  }
  out += "}";
  return out;
}

std::string DescribeNode(const PropertyGraph& graph, NodeId id) {
  if (!graph.IsValidNode(id)) return "(?invalid?)";
  const NodeData& data = graph.node(id);
  std::string out = "(";
  for (Symbol label : data.labels) {
    out += ":";
    out += graph.LabelName(label);
  }
  if (!data.props.empty()) {
    if (!data.labels.empty()) out += " ";
    out += DescribeProps(graph, data.props);
  }
  out += ")";
  return out;
}

std::string DescribeRel(const PropertyGraph& graph, RelId id) {
  if (!graph.IsValidRel(id)) return "-[?invalid?]-";
  const RelData& data = graph.rel(id);
  std::string out = "(" + std::to_string(data.src.value) + ")-[:";
  out += graph.TypeName(data.type);
  if (!data.props.empty()) {
    out += " ";
    out += DescribeProps(graph, data.props);
  }
  out += "]->(" + std::to_string(data.tgt.value) + ")";
  return out;
}

}  // namespace cypher
