#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"
#include "value/compare.h"

namespace cypher {

namespace {

void SortUnique(std::vector<Symbol>* labels) {
  std::sort(labels->begin(), labels->end());
  labels->erase(std::unique(labels->begin(), labels->end()), labels->end());
}

// Adjacency lists stay sorted by rel id, so link/unlink are binary searches
// and the matcher can merge-walk out/in lists without materializing.

void SortedInsert(std::vector<RelId>* rels, RelId id) {
  if (rels->empty() || rels->back() < id) {  // common case: fresh rel id
    rels->push_back(id);
    return;
  }
  auto it = std::lower_bound(rels->begin(), rels->end(), id);
  if (it == rels->end() || *it != id) rels->insert(it, id);
}

void SortedErase(std::vector<RelId>* rels, RelId id) {
  auto it = std::lower_bound(rels->begin(), rels->end(), id);
  if (it != rels->end() && *it == id) rels->erase(it);
}

}  // namespace


/// Single-writer epoch check: mutating a graph that a parallel read region
/// is scanning is memory-unsafe (unordered_map rehash, vector growth), so
/// fail fast instead. A relaxed load per mutation is noise next to the
/// mutation itself.
void PropertyGraph::AssertMutable() const {
  CYPHER_CHECK(!InParallelReadRegion() &&
               "graph mutated inside a parallel read region");
}

void PropertyGraph::RedoAppend(std::string line) {
  redo_log_ += line;
  redo_log_ += '\n';
}

std::string PropertyGraph::RedoLabels(
    const std::vector<Symbol>& labels) const {
  std::string out;
  for (Symbol label : labels) {
    out += ':';
    out += LabelName(label);
  }
  return out;
}

NodeId PropertyGraph::CreateNode(std::vector<Symbol> labels,
                                 PropertyMap props) {
  AssertMutable();
  SortUnique(&labels);
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  NodeData data;
  data.labels = std::move(labels);
  data.props = std::move(props);
  nodes_.push_back(std::move(data));
  ++alive_nodes_;
  for (Symbol label : nodes_.back().labels) AddToLabelIndex(id, label);
  IndexNode(id);
  Record({.kind = OpKind::kCreateNode, .entity = EntityRef::Node(id)});
  if (redo_capture_) {
    const NodeData& created = nodes_.back();
    RedoAppend("node+ " + std::to_string(id.value) +
               RedoLabels(created.labels) + " " +
               DescribeProps(*this, created.props));
  }
  return id;
}

Result<RelId> PropertyGraph::CreateRel(NodeId src, NodeId tgt, Symbol type,
                                       PropertyMap props) {
  AssertMutable();
  if (!IsNodeAlive(src) || !IsNodeAlive(tgt)) {
    return Status::ExecutionError(
        "cannot create relationship: endpoint node does not exist");
  }
  CYPHER_CHECK(type != kNoSymbol);
  RelId id(static_cast<uint32_t>(rels_.size()));
  RelData data;
  data.type = type;
  data.src = src;
  data.tgt = tgt;
  data.props = std::move(props);
  rels_.push_back(std::move(data));
  ++alive_rels_;
  RelinkRel(id);
  Record({.kind = OpKind::kCreateRel, .entity = EntityRef::Rel(id)});
  if (redo_capture_) {
    const RelData& created = rels_.back();
    RedoAppend("rel+ " + std::to_string(id.value) + " " +
               std::to_string(src.value) + " " + std::to_string(tgt.value) +
               " :" + TypeName(type) + " " +
               DescribeProps(*this, created.props));
  }
  return id;
}

bool PropertyGraph::NodeHasLabel(NodeId id, Symbol label) const {
  const auto& labels = nodes_[id.value].labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

std::vector<NodeId> PropertyGraph::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_nodes_);
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) out.push_back(NodeId(i));
  }
  return out;
}

std::vector<RelId> PropertyGraph::AllRels() const {
  std::vector<RelId> out;
  out.reserve(alive_rels_);
  for (uint32_t i = 0; i < rels_.size(); ++i) {
    if (rels_[i].alive) out.push_back(RelId(i));
  }
  return out;
}

std::vector<NodeId> PropertyGraph::NodesByLabel(Symbol label) const {
  std::vector<NodeId> out;
  out.reserve(LabelCount(label));
  ForEachNodeWithLabel(label, [&](NodeId id) {
    out.push_back(id);
    return true;
  });
  return out;
}

std::vector<RelId> PropertyGraph::OutRels(NodeId id) const {
  std::vector<RelId> out;
  ForEachOutRel(id, [&](RelId r) {
    out.push_back(r);
    return true;
  });
  return out;
}

std::vector<RelId> PropertyGraph::InRels(NodeId id) const {
  std::vector<RelId> out;
  ForEachInRel(id, [&](RelId r) {
    out.push_back(r);
    return true;
  });
  return out;
}

size_t PropertyGraph::Degree(NodeId id) const {
  size_t n = 0;
  for (RelId r : nodes_[id.value].out_rels) n += IsRelAlive(r) ? 1 : 0;
  for (RelId r : nodes_[id.value].in_rels) n += IsRelAlive(r) ? 1 : 0;
  return n;
}

bool PropertyGraph::AddLabel(NodeId id, Symbol label) {
  AssertMutable();
  NodeData& data = nodes_[id.value];
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), label);
  if (it != data.labels.end() && *it == label) return false;
  data.labels.insert(it, label);
  AddToLabelIndex(id, label);
  for (const PropertyIndex& index : property_indexes_) {
    if (index.label != label) continue;
    const Value& value = data.props.Get(index.key);
    if (!value.is_null()) IndexNodeKey(id, index.key);
  }
  Record({.kind = OpKind::kAddLabel,
          .entity = EntityRef::Node(id),
          .symbol = label});
  if (redo_capture_) {
    RedoAppend("label+ " + std::to_string(id.value) + " :" +
               LabelName(label));
  }
  return true;
}

bool PropertyGraph::RemoveLabel(NodeId id, Symbol label) {
  AssertMutable();
  NodeData& data = nodes_[id.value];
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), label);
  if (it == data.labels.end() || *it != label) return false;
  data.labels.erase(it);
  DecLabelCount(label);
  for (PropertyIndex& index : property_indexes_) {
    if (index.label == label && !data.props.Get(index.key).is_null()) {
      ++index.stale_hint;
    }
  }
  Record({.kind = OpKind::kRemoveLabel,
          .entity = EntityRef::Node(id),
          .symbol = label});
  if (redo_capture_) {
    RedoAppend("label- " + std::to_string(id.value) + " :" +
               LabelName(label));
  }
  return true;
}

bool PropertyGraph::SetProperty(EntityRef entity, Symbol key, Value value) {
  AssertMutable();
  PropertyMap& props = entity.kind == EntityRef::Kind::kNode
                           ? nodes_[entity.id].props
                           : rels_[entity.id].props;
  Value redo_value;
  if (redo_capture_) redo_value = value;
  Value old = props.Get(key);
  if (!props.Set(key, std::move(value))) return false;
  if (entity.kind == EntityRef::Kind::kNode) {
    if (!old.is_null()) {
      const NodeData& data = nodes_[entity.id];
      for (PropertyIndex& index : property_indexes_) {
        if (index.key == key &&
            std::binary_search(data.labels.begin(), data.labels.end(),
                               index.label)) {
          ++index.stale_hint;  // the entry under the old value's hash
        }
      }
    }
    IndexNodeKey(entity.AsNode(), key);
  }
  Record({.kind = OpKind::kSetProp,
          .entity = entity,
          .symbol = key,
          .old_value = std::move(old)});
  if (redo_capture_) {
    RedoAppend(std::string("prop ") +
               (entity.kind == EntityRef::Kind::kNode ? "N " : "R ") +
               std::to_string(entity.id) + " " + KeyName(key) + " " +
               redo_value.ToString());
  }
  return true;
}

void PropertyGraph::ReplaceProperties(EntityRef entity, PropertyMap props) {
  AssertMutable();
  PropertyMap& target = entity.kind == EntityRef::Kind::kNode
                            ? nodes_[entity.id].props
                            : rels_[entity.id].props;
  Record({.kind = OpKind::kReplaceProps,
          .entity = entity,
          .old_props = target});
  if (entity.kind == EntityRef::Kind::kNode) {
    const NodeData& data = nodes_[entity.id];
    for (PropertyIndex& index : property_indexes_) {
      if (std::binary_search(data.labels.begin(), data.labels.end(),
                             index.label) &&
          !target.Get(index.key).is_null()) {
        ++index.stale_hint;
      }
    }
  }
  target = std::move(props);
  if (entity.kind == EntityRef::Kind::kNode) IndexNode(entity.AsNode());
  if (redo_capture_) {
    RedoAppend(std::string("props ") +
               (entity.kind == EntityRef::Kind::kNode ? "N " : "R ") +
               std::to_string(entity.id) + " " + DescribeProps(*this, target));
  }
}

const PropertyMap& PropertyGraph::Properties(EntityRef entity) const {
  return entity.kind == EntityRef::Kind::kNode ? nodes_[entity.id].props
                                               : rels_[entity.id].props;
}

void PropertyGraph::DeleteRel(RelId id) {
  AssertMutable();
  if (!IsRelAlive(id)) return;
  RelData& data = rels_[id.value];
  Record({.kind = OpKind::kDeleteRel,
          .entity = EntityRef::Rel(id),
          .old_rel = data});
  UnlinkRel(id);
  data.alive = false;
  data.props.Clear();
  --alive_rels_;
  if (redo_capture_) RedoAppend("rel- " + std::to_string(id.value));
}

void PropertyGraph::DeleteNode(NodeId id) {
  AssertMutable();
  if (!IsNodeAlive(id)) return;
  CYPHER_CHECK(Degree(id) == 0 &&
               "DeleteNode requires no alive incident relationships");
  DeleteNodeForce(id);
}

void PropertyGraph::DeleteNodeForce(NodeId id) {
  AssertMutable();
  if (!IsNodeAlive(id)) return;
  NodeData& data = nodes_[id.value];
  Record({.kind = OpKind::kDeleteNode,
          .entity = EntityRef::Node(id),
          .old_props = data.props,
          .old_labels = data.labels});
  for (Symbol label : data.labels) DecLabelCount(label);
  for (PropertyIndex& index : property_indexes_) {
    if (std::binary_search(data.labels.begin(), data.labels.end(),
                           index.label) &&
        !data.props.Get(index.key).is_null()) {
      ++index.stale_hint;
    }
  }
  data.alive = false;
  data.labels.clear();
  data.props.Clear();
  --alive_nodes_;
  if (redo_capture_) RedoAppend("node- " + std::to_string(id.value));
}

NodeId PropertyGraph::AppendTombstoneNode() {
  AssertMutable();
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  NodeData data;
  data.alive = false;
  nodes_.push_back(std::move(data));
  return id;
}

RelId PropertyGraph::AppendTombstoneRel() {
  AssertMutable();
  RelId id(static_cast<uint32_t>(rels_.size()));
  RelData data;
  data.alive = false;
  rels_.push_back(std::move(data));
  return id;
}

bool PropertyGraph::HasDanglingRels() const {
  for (uint32_t i = 0; i < rels_.size(); ++i) {
    const RelData& data = rels_[i];
    if (!data.alive) continue;
    if (!IsNodeAlive(data.src) || !IsNodeAlive(data.tgt)) return true;
  }
  return false;
}

PropertyGraph::JournalMark PropertyGraph::BeginJournal() {
  journaling_ = true;
  return journal_.size();
}

void PropertyGraph::RollbackTo(JournalMark mark) {
  AssertMutable();
  bool was_journaling = journaling_;
  journaling_ = false;  // Rollback mutations must not journal themselves.
  while (journal_.size() > mark) {
    JournalOp op = std::move(journal_.back());
    journal_.pop_back();
    switch (op.kind) {
      case OpKind::kCreateNode: {
        NodeData& data = nodes_[op.entity.id];
        CYPHER_CHECK(data.alive);
        for (Symbol label : data.labels) DecLabelCount(label);
        data.alive = false;
        data.labels.clear();
        data.props.Clear();
        --alive_nodes_;
        break;
      }
      case OpKind::kCreateRel: {
        RelData& data = rels_[op.entity.id];
        if (data.alive) {
          UnlinkRel(op.entity.AsRel());
          data.alive = false;
          data.props.Clear();
          --alive_rels_;
        }
        break;
      }
      case OpKind::kDeleteRel: {
        RelData& data = rels_[op.entity.id];
        CYPHER_CHECK(!data.alive);
        data = op.old_rel;
        data.alive = true;
        RelinkRel(op.entity.AsRel());
        ++alive_rels_;
        break;
      }
      case OpKind::kDeleteNode: {
        NodeData& data = nodes_[op.entity.id];
        CYPHER_CHECK(!data.alive);
        data.alive = true;
        data.labels = std::move(op.old_labels);
        data.props = std::move(op.old_props);
        ++alive_nodes_;
        for (Symbol label : data.labels) {
          AddToLabelIndex(op.entity.AsNode(), label);
        }
        break;
      }
      case OpKind::kForceDeleteNode:
        CYPHER_CHECK(false && "kForceDeleteNode is recorded as kDeleteNode");
        break;
      case OpKind::kAddLabel: {
        NodeData& data = nodes_[op.entity.id];
        auto it = std::lower_bound(data.labels.begin(), data.labels.end(),
                                   op.symbol);
        if (it != data.labels.end() && *it == op.symbol) {
          data.labels.erase(it);
          DecLabelCount(op.symbol);
        }
        break;
      }
      case OpKind::kRemoveLabel: {
        NodeData& data = nodes_[op.entity.id];
        auto it = std::lower_bound(data.labels.begin(), data.labels.end(),
                                   op.symbol);
        data.labels.insert(it, op.symbol);
        AddToLabelIndex(op.entity.AsNode(), op.symbol);
        break;
      }
      case OpKind::kSetProp: {
        PropertyMap& props = op.entity.kind == EntityRef::Kind::kNode
                                 ? nodes_[op.entity.id].props
                                 : rels_[op.entity.id].props;
        props.Set(op.symbol, std::move(op.old_value));
        break;
      }
      case OpKind::kReplaceProps: {
        PropertyMap& props = op.entity.kind == EntityRef::Kind::kNode
                                 ? nodes_[op.entity.id].props
                                 : rels_[op.entity.id].props;
        props = std::move(op.old_props);
        break;
      }
    }
  }
  journaling_ = was_journaling && !journal_.empty();
  if (journal_.empty()) journaling_ = false;
}

void PropertyGraph::CommitTo(JournalMark mark) {
  AssertMutable();
  CYPHER_CHECK(mark <= journal_.size());
  journal_.resize(mark);
  if (journal_.empty()) {
    journaling_ = false;
    // Nothing left to roll back, so no tombstoned node can be resurrected:
    // stale index entries are now provably dead and safe to prune.
    CompactIndexes();
  }
}

void PropertyGraph::UnlinkRel(RelId id) {
  const RelData& data = rels_[id.value];
  SortedErase(&nodes_[data.src.value].out_rels, id);
  SortedErase(&nodes_[data.tgt.value].in_rels, id);
}

void PropertyGraph::RelinkRel(RelId id) {
  const RelData& data = rels_[id.value];
  SortedInsert(&nodes_[data.src.value].out_rels, id);
  SortedInsert(&nodes_[data.tgt.value].in_rels, id);
}

void PropertyGraph::AddToLabelIndex(NodeId id, Symbol label) {
  // Every call site adds `label` to an alive node that did not carry it, so
  // the cached cardinality is maintained here; removals decrement at their
  // own sites (the index bucket itself keeps stale ids — readers validate).
  IncLabelCount(label);
  std::vector<NodeId>& bucket = label_index_[label];
  if (bucket.empty() || bucket.back() < id) {
    bucket.push_back(id);
    return;
  }
  auto it = std::lower_bound(bucket.begin(), bucket.end(), id);
  if (it == bucket.end() || *it != id) bucket.insert(it, id);
}

size_t PropertyGraph::LabelCount(Symbol label) const {
  auto it = label_counts_.find(label);
  return it == label_counts_.end() ? 0 : it->second;
}

void PropertyGraph::DecLabelCount(Symbol label) {
  auto it = label_counts_.find(label);
  CYPHER_CHECK(it != label_counts_.end() && it->second > 0);
  --it->second;
}

// ---- Property indexes ---------------------------------------------------------

void PropertyGraph::CreateIndex(Symbol label, Symbol key) {
  AssertMutable();
  if (FindPropertyIndex(label, key) != nullptr) return;
  if (redo_capture_) {
    RedoAppend("index+ :" + LabelName(label) + " " + KeyName(key));
  }
  ++index_epoch_;
  PropertyIndex index;
  index.label = label;
  index.key = key;
  property_indexes_.push_back(std::move(index));
  PropertyIndex& created = property_indexes_.back();
  for (NodeId id : NodesByLabel(label)) {
    const Value& value = nodes_[id.value].props.Get(key);
    if (!value.is_null()) {
      created.buckets[HashValue(value)].push_back(id);
      ++created.entries;
    }
  }
}

bool PropertyGraph::HasIndex(Symbol label, Symbol key) const {
  return FindPropertyIndex(label, key) != nullptr;
}

std::vector<std::pair<Symbol, Symbol>> PropertyGraph::Indexes() const {
  std::vector<std::pair<Symbol, Symbol>> out;
  out.reserve(property_indexes_.size());
  for (const PropertyIndex& index : property_indexes_) {
    out.emplace_back(index.label, index.key);
  }
  return out;
}

std::vector<NodeId> PropertyGraph::IndexLookup(Symbol label, Symbol key,
                                               const Value& value) const {
  std::vector<NodeId> out;
  const PropertyIndex* index = FindPropertyIndex(label, key);
  CYPHER_CHECK(index != nullptr && "IndexLookup without an index");
  auto it = index->buckets.find(HashValue(value));
  if (it == index->buckets.end()) return out;
  for (NodeId id : it->second) {
    if (!IsNodeAlive(id)) continue;
    if (!NodeHasLabel(id, label)) continue;
    const Value& stored = nodes_[id.value].props.Get(key);
    if (!GroupEquals(stored, value)) continue;
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t PropertyGraph::IndexEntryCount(Symbol label, Symbol key) const {
  const PropertyIndex* index = FindPropertyIndex(label, key);
  return index == nullptr ? 0 : index->entries;
}

void PropertyGraph::CompactIndexes() {
  for (PropertyIndex& index : property_indexes_) {
    // Amortize: only sweep an index once at least half its entries are
    // suspected stale (deleted / relabeled / value-changed nodes).
    if (index.entries == 0 || index.stale_hint * 2 < index.entries) continue;
    index.stale_hint = 0;
    auto valid = [&](uint64_t hash, NodeId id) {
      if (!IsNodeAlive(id) || !NodeHasLabel(id, index.label)) return false;
      const Value& value = nodes_[id.value].props.Get(index.key);
      return !value.is_null() && HashValue(value) == hash;
    };
    size_t total = 0;
    for (auto it = index.buckets.begin(); it != index.buckets.end();) {
      std::vector<NodeId>& bucket = it->second;
      std::vector<NodeId> kept;
      kept.reserve(bucket.size());
      for (NodeId id : bucket) {
        if (valid(it->first, id)) kept.push_back(id);
      }
      std::sort(kept.begin(), kept.end());
      kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
      // Rewrite only buckets whose stale ratio (dead, relabeled, rehashed,
      // or duplicate entries) exceeds 50%; others keep their storage.
      if ((bucket.size() - kept.size()) * 2 > bucket.size()) {
        if (kept.empty()) {
          it = index.buckets.erase(it);
          continue;
        }
        bucket = std::move(kept);
      }
      total += bucket.size();
      ++it;
    }
    index.entries = total;
  }
}

void PropertyGraph::DropIndex(Symbol label, Symbol key) {
  AssertMutable();
  for (size_t i = 0; i < property_indexes_.size(); ++i) {
    if (property_indexes_[i].label == label &&
        property_indexes_[i].key == key) {
      property_indexes_.erase(property_indexes_.begin() +
                              static_cast<ptrdiff_t>(i));
      ++index_epoch_;
      if (redo_capture_) {
        RedoAppend("index- :" + LabelName(label) + " " + KeyName(key));
      }
      return;
    }
  }
}

// ---- Uniqueness constraints ----------------------------------------------------

namespace {

/// Finds a pair of distinct alive nodes with group-equal non-null values;
/// returns the duplicated value's text or empty when unique.
std::string FindDuplicateValue(const PropertyGraph& graph, Symbol label,
                               Symbol key) {
  std::unordered_map<uint64_t, std::vector<std::pair<NodeId, Value>>> seen;
  for (NodeId id : graph.NodesByLabel(label)) {
    const Value& value = graph.node(id).props.Get(key);
    if (value.is_null()) continue;
    auto& bucket = seen[HashValue(value)];
    for (const auto& [other, other_value] : bucket) {
      if (GroupEquals(other_value, value)) return value.ToString();
    }
    bucket.emplace_back(id, value);
  }
  return "";
}

}  // namespace

Status PropertyGraph::AddUniqueConstraint(Symbol label, Symbol key) {
  AssertMutable();
  if (HasUniqueConstraint(label, key)) return Status::OK();
  std::string duplicate = FindDuplicateValue(*this, label, key);
  if (!duplicate.empty()) {
    return Status::ExecutionError(
        "cannot create uniqueness constraint on :" + LabelName(label) + "(" +
        KeyName(key) + "): existing nodes share the value " + duplicate);
  }
  unique_constraints_.emplace_back(label, key);
  if (redo_capture_) {
    RedoAppend("uniq+ :" + LabelName(label) + " " + KeyName(key));
  }
  return Status::OK();
}

void PropertyGraph::DropUniqueConstraint(Symbol label, Symbol key) {
  AssertMutable();
  for (size_t i = 0; i < unique_constraints_.size(); ++i) {
    if (unique_constraints_[i] == std::make_pair(label, key)) {
      unique_constraints_.erase(unique_constraints_.begin() +
                                static_cast<ptrdiff_t>(i));
      if (redo_capture_) {
        RedoAppend("uniq- :" + LabelName(label) + " " + KeyName(key));
      }
      return;
    }
  }
}

bool PropertyGraph::HasUniqueConstraint(Symbol label, Symbol key) const {
  for (const auto& constraint : unique_constraints_) {
    if (constraint == std::make_pair(label, key)) return true;
  }
  return false;
}

std::vector<std::pair<Symbol, Symbol>> PropertyGraph::UniqueConstraints()
    const {
  return unique_constraints_;
}

Status PropertyGraph::ValidateUniqueConstraints() const {
  for (const auto& [label, key] : unique_constraints_) {
    std::string duplicate = FindDuplicateValue(*this, label, key);
    if (!duplicate.empty()) {
      return Status::ExecutionError(
          "uniqueness constraint on :" + LabelName(label) + "(" +
          KeyName(key) + ") violated: two nodes share the value " + duplicate);
    }
  }
  return Status::OK();
}

PropertyGraph::PropertyIndex* PropertyGraph::FindPropertyIndex(Symbol label,
                                                               Symbol key) {
  for (PropertyIndex& index : property_indexes_) {
    if (index.label == label && index.key == key) return &index;
  }
  return nullptr;
}

const PropertyGraph::PropertyIndex* PropertyGraph::FindPropertyIndex(
    Symbol label, Symbol key) const {
  for (const PropertyIndex& index : property_indexes_) {
    if (index.label == label && index.key == key) return &index;
  }
  return nullptr;
}

void PropertyGraph::IndexNode(NodeId id) {
  if (property_indexes_.empty()) return;
  const NodeData& data = nodes_[id.value];
  for (PropertyIndex& index : property_indexes_) {
    if (!std::binary_search(data.labels.begin(), data.labels.end(),
                            index.label)) {
      continue;
    }
    const Value& value = data.props.Get(index.key);
    if (!value.is_null()) {
      index.buckets[HashValue(value)].push_back(id);
      ++index.entries;
    }
  }
}

void PropertyGraph::IndexNodeKey(NodeId id, Symbol key) {
  if (property_indexes_.empty()) return;
  const NodeData& data = nodes_[id.value];
  for (PropertyIndex& index : property_indexes_) {
    if (index.key != key) continue;
    if (!std::binary_search(data.labels.begin(), data.labels.end(),
                            index.label)) {
      continue;
    }
    const Value& value = data.props.Get(index.key);
    if (!value.is_null()) {
      index.buckets[HashValue(value)].push_back(id);
      ++index.entries;
    }
  }
}

std::string DescribeProps(const PropertyGraph& graph, const PropertyMap& map) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : map.entries()) {
    if (!first) out += ", ";
    first = false;
    out += graph.KeyName(key);
    out += ": ";
    out += value.ToString();
  }
  out += "}";
  return out;
}

std::string DescribeNode(const PropertyGraph& graph, NodeId id) {
  if (!graph.IsValidNode(id)) return "(?invalid?)";
  const NodeData& data = graph.node(id);
  std::string out = "(";
  for (Symbol label : data.labels) {
    out += ":";
    out += graph.LabelName(label);
  }
  if (!data.props.empty()) {
    if (!data.labels.empty()) out += " ";
    out += DescribeProps(graph, data.props);
  }
  out += ")";
  return out;
}

std::string DescribeRel(const PropertyGraph& graph, RelId id) {
  if (!graph.IsValidRel(id)) return "-[?invalid?]-";
  const RelData& data = graph.rel(id);
  std::string out = "(" + std::to_string(data.src.value) + ")-[:";
  out += graph.TypeName(data.type);
  if (!data.props.empty()) {
    out += " ";
    out += DescribeProps(graph, data.props);
  }
  out += "]->(" + std::to_string(data.tgt.value) + ")";
  return out;
}

}  // namespace cypher
