#ifndef CYPHER_GRAPH_ISOMORPHISM_H_
#define CYPHER_GRAPH_ISOMORPHISM_H_

#include <string>

#include "graph/graph.h"

namespace cypher {

/// Decides whether two property graphs are isomorphic: a bijection between
/// alive nodes and a bijection between alive relationships preserving
/// labels, types, property maps (PropsEquivalent), sources and targets.
///
/// This is the oracle for the paper's "output graph-table pairs are the same
/// up to id renaming" (Section 8) and for checking bench outputs against the
/// expected figures. Vocabularies may differ between the graphs; names are
/// compared as strings.
///
/// The search is VF2-style backtracking with signature pruning (label set,
/// property fingerprint, in/out degree, incident type multiset). Intended
/// for figure-sized and test-sized graphs, not million-node graphs.
bool AreIsomorphic(const PropertyGraph& a, const PropertyGraph& b);

/// Like AreIsomorphic, but on mismatch stores a short human-readable reason
/// (first divergence found) into *why; on success clears it.
bool AreIsomorphic(const PropertyGraph& a, const PropertyGraph& b,
                   std::string* why);

/// Canonical multiset fingerprint of a graph: a hash that is invariant
/// under id renaming but (unlike full isomorphism) cheap. Used by the
/// nondeterminism bench to count distinct result graphs across many runs:
/// different fingerprints imply non-isomorphic graphs; equal fingerprints
/// are confirmed with AreIsomorphic.
uint64_t GraphFingerprint(const PropertyGraph& graph);

}  // namespace cypher

#endif  // CYPHER_GRAPH_ISOMORPHISM_H_
