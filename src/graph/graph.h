#ifndef CYPHER_GRAPH_GRAPH_H_
#define CYPHER_GRAPH_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/interner.h"
#include "common/read_pin.h"
#include "common/result.h"
#include "common/slot_vector.h"
#include "graph/mvcc.h"
#include "graph/property_map.h"

namespace cypher {

/// A node or relationship reference, for APIs that apply to both (SET,
/// REMOVE, DELETE operate on either kind).
struct EntityRef {
  enum class Kind { kNode, kRel };
  Kind kind;
  uint32_t id;

  static EntityRef Node(NodeId n) { return {Kind::kNode, n.value}; }
  static EntityRef Rel(RelId r) { return {Kind::kRel, r.value}; }

  NodeId AsNode() const { return NodeId(id); }
  RelId AsRel() const { return RelId(id); }

  friend bool operator==(const EntityRef& a, const EntityRef& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  friend bool operator<(const EntityRef& a, const EntityRef& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

/// Stored node record. `alive` is false for deleted nodes; slots are
/// tombstoned, never reused, so dangling references in driving tables remain
/// detectable. In legacy mode (paper §4.2) a deleted node's labels and
/// properties are cleared, which is how "RETURN user" after "DELETE user"
/// yields an empty node.
struct NodeData {
  bool alive = true;
  std::vector<Symbol> labels;  // sorted, deduplicated
  PropertyMap props;
  std::vector<RelId> out_rels;  // sorted ascending by rel id
  std::vector<RelId> in_rels;   // sorted ascending by rel id
};

/// Stored relationship record. Always has exactly one source, target and
/// type (the property graph model, Section 2). In legacy mode a relationship
/// can temporarily dangle (endpoint deleted); ValidateNoDangling detects
/// this at end-of-statement, mirroring Neo4j's commit-time check.
struct RelData {
  bool alive = true;
  Symbol type = kNoSymbol;
  NodeId src;
  NodeId tgt;
  PropertyMap props;
};

/// The property graph G = <N, R, src, tgt, ι, λ, τ> of the paper, plus the
/// operational machinery an engine needs:
///
///  * interned labels / relationship types / property keys;
///  * adjacency lists for pattern matching;
///  * a label index for MATCH scans;
///  * an undo journal so a failed statement leaves the graph untouched
///    (the paper's output(Q, G) commits only on success);
///  * tombstoned deletes, including "force" deletes that model the legacy
///    Cypher 9 anomalies of Section 4.2;
///  * an opt-in epoch-based MVCC layer (EnableMvcc) so read-only snapshot
///    sessions execute lock-free against a pinned committed epoch while the
///    one writer keeps committing (DESIGN.md §4g).
///
/// Threading model: one writer at a time, always (statement-level isolation
/// is the concern of the paper; multi-writer concurrency control is not).
/// Two read-sharing regimes layer on top:
///
///  * The writer's own morsel-parallel executor shares the const read
///    surface *between* write clauses; it opens a ParallelReadScope for the
///    duration of each read region, and every mutating method asserts that
///    no such scope is live.
///  * With MVCC enabled, any number of reader threads holding an active
///    ReadPin (thread-local, see common/read_pin.h) read a pinned epoch
///    *concurrently with* the writer mutating: mutators install fresh
///    version records instead of touching published state in place, commit
///    publishes them as one new epoch (PublishEpoch), and superseded
///    versions retire until no pin can reach them. Readers never block the
///    writer and the writer never waits on readers.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Copies materialize the source's latest state (benches snapshot graphs
  /// to replay workloads); the copy starts in non-MVCC mode with no version
  /// chains. Copying and moving require quiescence on both sides.
  PropertyGraph(const PropertyGraph& other);
  PropertyGraph& operator=(const PropertyGraph& other);
  PropertyGraph(PropertyGraph&& other) noexcept;
  PropertyGraph& operator=(PropertyGraph&& other) noexcept;
  ~PropertyGraph();

  // ---- Vocabulary ---------------------------------------------------------

  Symbol InternLabel(std::string_view name) {
    Symbol s = labels_.Intern(name);
    EnsureLabelSlots(s);
    return s;
  }
  Symbol InternType(std::string_view name) { return types_.Intern(name); }
  Symbol InternKey(std::string_view name) { return keys_.Intern(name); }

  /// Lookup without interning; kNoSymbol if unknown (a MATCH against a label
  /// that was never created simply finds nothing).
  Symbol FindLabel(std::string_view name) const { return labels_.Find(name); }
  Symbol FindType(std::string_view name) const { return types_.Find(name); }
  Symbol FindKey(std::string_view name) const { return keys_.Find(name); }

  const std::string& LabelName(Symbol s) const { return labels_.Name(s); }
  const std::string& TypeName(Symbol s) const { return types_.Name(s); }
  const std::string& KeyName(Symbol s) const { return keys_.Name(s); }

  /// Interned-vocabulary sizes. Interners only grow within one graph's
  /// lifetime, so an unchanged size means an unchanged symbol table — the
  /// plan cache stamps compiled match plans with these to detect staleness.
  size_t num_label_symbols() const { return labels_.size(); }
  size_t num_type_symbols() const { return types_.size(); }
  size_t num_key_symbols() const { return keys_.size(); }

  // ---- Creation -----------------------------------------------------------

  /// Creates a node with the given (unsorted, possibly duplicated) labels.
  NodeId CreateNode(std::vector<Symbol> labels, PropertyMap props);

  /// Creates a relationship; fails if either endpoint is dead or invalid.
  Result<RelId> CreateRel(NodeId src, NodeId tgt, Symbol type,
                          PropertyMap props);

  // ---- Access -------------------------------------------------------------
  //
  // Every accessor is snapshot-aware: when the calling thread carries an
  // active ReadPin for this graph (installed by a read session or
  // propagated into pool workers), records resolve against the pinned
  // epoch's version; otherwise they read the latest state. Without MVCC
  // enabled the original direct-slot path runs unchanged.

  bool IsValidNode(NodeId id) const {
    if (const ReadPin* pin = ActivePin()) return id.value < pin->node_slots;
    return id.value < nodes_.size();
  }
  bool IsValidRel(RelId id) const {
    if (const ReadPin* pin = ActivePin()) return id.value < pin->rel_slots;
    return id.value < rels_.size();
  }
  bool IsNodeAlive(NodeId id) const {
    return IsValidNode(id) && node(id).alive;
  }
  bool IsRelAlive(RelId id) const { return IsValidRel(id) && rel(id).alive; }

  const NodeData& node(NodeId id) const {
    if (!mvcc_on_) return nodes_[id.value];
    if (const ReadPin* pin = ActivePin()) {
      return ResolveNode(id.value, pin->epoch);
    }
    return NodeLatest(id.value);
  }
  const RelData& rel(RelId id) const {
    if (!mvcc_on_) return rels_[id.value];
    if (const ReadPin* pin = ActivePin()) {
      return ResolveRel(id.value, pin->epoch);
    }
    return RelLatest(id.value);
  }

  bool NodeHasLabel(NodeId id, Symbol label) const;

  /// Alive node count / alive relationship count (latest state; planner
  /// hints, not snapshot-resolved).
  size_t num_nodes() const {
    return alive_nodes_.load(std::memory_order_relaxed);
  }
  size_t num_rels() const {
    return alive_rels_.load(std::memory_order_relaxed);
  }

  /// Total slots ever allocated (alive + tombstoned). Pin-aware: a pinned
  /// thread sees the slot watermark of its epoch.
  size_t node_capacity() const {
    if (const ReadPin* pin = ActivePin()) return pin->node_slots;
    return nodes_.size();
  }
  size_t rel_capacity() const {
    if (const ReadPin* pin = ActivePin()) return pin->rel_slots;
    return rels_.size();
  }

  /// All alive node ids in ascending order.
  std::vector<NodeId> AllNodes() const;
  /// All alive relationship ids in ascending order.
  std::vector<RelId> AllRels() const;

  /// Alive nodes carrying `label`, ascending. Uses the label index.
  std::vector<NodeId> NodesByLabel(Symbol label) const;

  /// Alive incident relationships (out / in / both), ascending.
  std::vector<RelId> OutRels(NodeId id) const;
  std::vector<RelId> InRels(NodeId id) const;

  /// Count of alive incident relationships. Does not allocate.
  size_t Degree(NodeId id) const;

  /// Cached count of alive nodes carrying `label`. O(1); maintained across
  /// creation, deletion, label mutation and rollback. The match planner uses
  /// this as the label-scan cardinality estimate (latest state — a pinned
  /// reader's plan costs are approximate, its results are not).
  size_t LabelCount(Symbol label) const {
    if (label == kNoSymbol || label >= label_counts_.size()) return 0;
    int64_t n = label_counts_[label].load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }

  // ---- Zero-copy iteration ------------------------------------------------
  //
  // Callback-style scans that allocate nothing. The callback takes the id
  // and returns true to continue, false to stop early. Iteration is in
  // ascending id order — the matcher's determinism contract — and must not
  // mutate the graph. The vector-returning APIs above remain for callers
  // that need materialized lists (or that mutate while iterating).

  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    ForEachNodeInSlotRange(0, node_capacity(), std::forward<Fn>(fn));
  }

  /// Visits alive nodes carrying `label`, ascending. The label-index bucket
  /// is sorted and deduplicated but may hold tombstoned or relabeled ids;
  /// those are skipped here, exactly as in NodesByLabel.
  template <typename Fn>
  void ForEachNodeWithLabel(Symbol label, Fn&& fn) const {
    ForEachNodeWithLabelInRange(label, 0, ~size_t{0}, std::forward<Fn>(fn));
  }

  // ---- Morsel-range scans ---------------------------------------------------
  //
  // Range-restricted variants of the scans above, for the parallel executor:
  // the scan *domain* (node slots, or label-bucket positions — both include
  // tombstoned/stale entries, which the walk skips exactly like the full
  // scans) is split into fixed-size morsels, and concatenating the morsels
  // in range order reproduces the full scan's emission order verbatim.

  /// Entries in the label-index bucket for `label`, including stale ids:
  /// the partitionable domain of a label scan. 0 when the label has no
  /// bucket. Pairs with ForEachNodeWithLabelInRange. Pin-aware: a pinned
  /// thread sees its epoch's bucket, so domain and walk agree.
  size_t LabelBucketSize(Symbol label) const {
    const LabelBucket* bucket = BucketFor(label);
    return bucket == nullptr ? 0 : bucket->ids.size();
  }

  /// Visits the alive nodes carrying `label` whose bucket position lies in
  /// [begin, end) — the morsel restriction of ForEachNodeWithLabel.
  template <typename Fn>
  void ForEachNodeWithLabelInRange(Symbol label, size_t begin, size_t end,
                                   Fn&& fn) const {
    const ReadPin* pin = ActivePin();
    const LabelBucket* bucket =
        pin != nullptr ? ResolveBucket(label, pin->epoch) : BucketFor(label);
    if (bucket == nullptr) return;
    const std::vector<NodeId>& ids = bucket->ids;
    end = std::min(end, ids.size());
    for (size_t i = begin; i < end; ++i) {
      NodeId id = ids[i];
      const NodeData* data;
      if (pin != nullptr) {
        if (id.value >= pin->node_slots) continue;
        data = &ResolveNode(id.value, pin->epoch);
      } else if (mvcc_on_) {
        data = &NodeLatest(id.value);
      } else {
        data = &nodes_[id.value];
      }
      if (!data->alive) continue;
      if (!std::binary_search(data->labels.begin(), data->labels.end(),
                              label)) {
        continue;
      }
      if (!fn(id)) return;
    }
  }

  /// Visits the alive nodes whose slot lies in [begin, end) — the morsel
  /// restriction of ForEachNode (domain: node_capacity()).
  template <typename Fn>
  void ForEachNodeInSlotRange(size_t begin, size_t end, Fn&& fn) const {
    if (const ReadPin* pin = ActivePin()) {
      end = std::min(end, static_cast<size_t>(pin->node_slots));
      for (size_t i = begin; i < end; ++i) {
        if (ResolveNode(i, pin->epoch).alive &&
            !fn(NodeId(static_cast<uint32_t>(i)))) {
          return;
        }
      }
      return;
    }
    end = std::min(end, nodes_.size());
    if (!mvcc_on_) {
      for (size_t i = begin; i < end; ++i) {
        if (nodes_[i].alive && !fn(NodeId(static_cast<uint32_t>(i)))) return;
      }
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      if (NodeLatest(i).alive && !fn(NodeId(static_cast<uint32_t>(i)))) {
        return;
      }
    }
  }

  template <typename Fn>
  void ForEachOutRel(NodeId id, Fn&& fn) const {
    for (RelId r : node(id).out_rels) {
      if (rel(r).alive && !fn(r)) return;
    }
  }

  template <typename Fn>
  void ForEachInRel(NodeId id, Fn&& fn) const {
    for (RelId r : node(id).in_rels) {
      if (rel(r).alive && !fn(r)) return;
    }
  }

  /// Raw sorted adjacency (no aliveness filtering) — the matcher's expansion
  /// cursor merge-walks these directly. The reference is stable while the
  /// caller's pin (or, for the writer, the current statement) is live.
  const std::vector<RelId>& RawOutRels(NodeId id) const {
    return node(id).out_rels;
  }
  const std::vector<RelId>& RawInRels(NodeId id) const {
    return node(id).in_rels;
  }

  // ---- Mutation -----------------------------------------------------------

  /// Adds a label; returns true if the node changed.
  bool AddLabel(NodeId id, Symbol label);
  /// Removes a label; returns true if the node changed.
  bool RemoveLabel(NodeId id, Symbol label);

  /// Sets one property (null value removes); returns true if changed.
  bool SetProperty(EntityRef entity, Symbol key, Value value);

  /// Replaces the whole property map (SET n = {...}).
  void ReplaceProperties(EntityRef entity, PropertyMap props);

  const PropertyMap& Properties(EntityRef entity) const;

  /// Deletes a relationship (idempotent on dead rels).
  void DeleteRel(RelId id);

  /// Deletes a node that has no alive incident relationships. It is an
  /// internal error to call this with incident relationships; executors
  /// check first (revised DELETE returns an ExecutionError instead).
  void DeleteNode(NodeId id);

  /// Legacy-mode delete (§4.2): marks the node dead and clears labels and
  /// properties but leaves incident relationships alive and dangling.
  void DeleteNodeForce(NodeId id);

  /// True if some alive relationship has a dead endpoint. Legacy mode runs
  /// this at end of statement (Neo4j's commit-time validation).
  bool HasDanglingRels() const;

  // ---- Property indexes -----------------------------------------------------

  /// Creates (or re-creates, idempotently) a hash index over
  /// (label, property key). Existing nodes are indexed immediately; later
  /// mutations maintain the index. Lookups validate entries against the
  /// live graph, so rolled-back states can never serve stale matches.
  void CreateIndex(Symbol label, Symbol key);

  bool HasIndex(Symbol label, Symbol key) const;

  /// Drops the index if present (idempotent).
  void DropIndex(Symbol label, Symbol key);

  /// All (label, key) pairs with an index, in creation order.
  std::vector<std::pair<Symbol, Symbol>> Indexes() const;

  /// Monotonic counter bumped whenever an index is created or dropped.
  /// Cached match plans bake access-path choices that depend on index
  /// presence; comparing epochs detects when those choices went stale.
  uint64_t index_epoch() const {
    return index_epoch_.load(std::memory_order_relaxed);
  }

  // ---- Uniqueness constraints -----------------------------------------------

  /// Declares that alive `label` nodes have pairwise distinct non-null
  /// values for `key`. Fails (without registering) if existing data
  /// already violates it. Idempotent.
  Status AddUniqueConstraint(Symbol label, Symbol key);

  /// Drops the constraint if present (idempotent).
  void DropUniqueConstraint(Symbol label, Symbol key);

  bool HasUniqueConstraint(Symbol label, Symbol key) const;

  /// All registered constraints, in creation order.
  std::vector<std::pair<Symbol, Symbol>> UniqueConstraints() const;

  /// Checks every registered constraint against the live graph; returns
  /// ExecutionError naming the first violation. The interpreter runs this
  /// before committing each statement.
  Status ValidateUniqueConstraints() const;

  /// Alive nodes with `label` whose `key` property is group-equal to
  /// `value`, ascending. Only valid when HasIndex(label, key). Writer-only:
  /// index buckets are not versioned, so pinned snapshot sessions compile
  /// plans without index anchors and must never call this.
  std::vector<NodeId> IndexLookup(Symbol label, Symbol key,
                                  const Value& value) const;

  /// Total entries stored for the (label, key) index, including stale ones
  /// awaiting compaction; 0 when no such index exists. Observability hook
  /// for the compaction policy (tests, monitoring).
  size_t IndexEntryCount(Symbol label, Symbol key) const;

  // ---- Single-writer epoch --------------------------------------------------

  /// RAII guard marking a parallel read region: while any scope is live,
  /// every mutating method CYPHER_CHECK-fails. The parallel executor opens
  /// one around each fanned-out read clause; writes only ever run between
  /// regions (the paper's semantics applies updates sequentially over the
  /// driving table the read side produced), so a trip of this assertion is
  /// always a bug, not a scheduling artifact.
  ///
  /// A thread running under a snapshot pin does NOT register: its reads
  /// resolve against an immutable epoch, so the concurrent writer is free
  /// to keep mutating — that is the entire point of the MVCC layer.
  class ParallelReadScope {
   public:
    explicit ParallelReadScope(const PropertyGraph& graph) : graph_(graph) {
      const ReadPin& pin = CurrentThreadReadPin();
      pinned_ = pin.active && pin.owner == &graph;
      if (!pinned_) {
        graph_.epoch_.readers.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ~ParallelReadScope() {
      if (!pinned_) {
        graph_.epoch_.readers.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    ParallelReadScope(const ParallelReadScope&) = delete;
    ParallelReadScope& operator=(const ParallelReadScope&) = delete;

   private:
    const PropertyGraph& graph_;
    bool pinned_ = false;
  };

  /// True while some ParallelReadScope is live (mutations are forbidden).
  bool InParallelReadRegion() const {
    return epoch_.readers.load(std::memory_order_relaxed) != 0;
  }

  // ---- MVCC lifecycle -------------------------------------------------------
  //
  // See DESIGN.md §4g. The statement is the visibility unit: the epoch
  // counts successfully committed writer statements. EnableMvcc freezes the
  // base slots (mutators copy-on-first-touch per epoch from then on),
  // publishes epoch 0, and allocates the pin registry. The database layer
  // calls PublishEpoch after each committed statement; readers pin with
  // AcquireReadPin and install the pin thread-locally (ScopedReadPin) while
  // they execute.

  /// Switches the graph into MVCC mode. Requires quiescence (no concurrent
  /// readers yet, no open journal); idempotent.
  void EnableMvcc();

  bool mvcc_enabled() const { return mvcc_on_; }

  /// Publishes everything mutated since the last publish as one new
  /// committed epoch and reclaims versions no active pin can reach.
  /// Writer-only; a no-op without MVCC.
  void PublishEpoch();

  /// The newest committed epoch a new pin would observe (0 = initial state).
  uint64_t published_epoch() const {
    const EpochState* st = published_.load(std::memory_order_acquire);
    return st == nullptr ? 0 : st->epoch;
  }

  /// Registers a pin on the newest committed epoch. The caller installs it
  /// with ScopedReadPin around reads and must ReleaseReadPin exactly once.
  ReadPin AcquireReadPin() const;

  /// Moves an acquired pin forward to the newest committed epoch.
  void RefreshReadPin(ReadPin* pin) const;

  void ReleaseReadPin(const ReadPin& pin) const;

  /// Superseded versions awaiting reclamation (observability for tests).
  size_t RetiredPending() const { return retired_.pending(); }

  // ---- Undo journal -------------------------------------------------------

  /// A position in the journal; RollbackTo(mark) undoes everything after.
  using JournalMark = size_t;

  /// Starts (or continues) journaling and returns the current mark.
  JournalMark BeginJournal();

  /// Undoes all journaled mutations after `mark`, most recent first.
  void RollbackTo(JournalMark mark);

  /// Forgets journal entries after `mark` (commit) and stops journaling if
  /// the journal becomes empty.
  void CommitTo(JournalMark mark);

  // ---- Redo log (write-ahead logging) -------------------------------------
  //
  // While capture is on, every observable mutation appends one line of
  // textual redo: exact slot ids, label/type/key *names* (so replay is
  // independent of interner order) and values in property-literal syntax.
  // The database layer turns the capture of one committed statement into one
  // WAL record; storage/wal.h replays it with ApplyRedoLog. DDL (index /
  // constraint create+drop) is captured too, even though it is not
  // undo-journaled.

  /// Starts capturing redo lines into an empty buffer.
  void BeginRedoCapture() {
    redo_capture_ = true;
    redo_log_.clear();
  }

  /// Stops capture and returns the accumulated redo text.
  std::string TakeRedoLog() {
    redo_capture_ = false;
    std::string out;
    out.swap(redo_log_);
    return out;
  }

  /// Stops capture and discards the buffer (statement failed, rolled back).
  void AbortRedoCapture() {
    redo_capture_ = false;
    redo_log_.clear();
  }

  bool redo_capturing() const { return redo_capture_; }

  // ---- Exact-slot restore hooks (crash recovery) --------------------------
  //
  // WAL records reference original slot ids, so a graph rebuilt from a
  // snapshot must keep the exact slot numbering of the source — including
  // tombstones. Recovery appends dead placeholder slots for the gaps; these
  // are neither journaled nor redo-captured.

  /// Appends a dead node slot and returns its id.
  NodeId AppendTombstoneNode();
  /// Appends a dead relationship slot and returns its id.
  RelId AppendTombstoneRel();

 private:
  enum class OpKind {
    kCreateNode,
    kCreateRel,
    kDeleteRel,
    kDeleteNode,
    kForceDeleteNode,
    kAddLabel,
    kRemoveLabel,
    kSetProp,
    kReplaceProps,
  };

  struct JournalOp {
    OpKind kind;
    EntityRef entity;
    Symbol symbol = kNoSymbol;  // label or key
    Value old_value;            // kSetProp
    PropertyMap old_props;      // kReplaceProps / kForceDeleteNode
    std::vector<Symbol> old_labels;  // kForceDeleteNode
    RelData old_rel;                 // kDeleteRel
  };

  void Record(JournalOp op) {
    if (journaling_) journal_.push_back(std::move(op));
  }

  /// One version chain head. Value-initialized to null by SlotVector.
  template <typename T>
  struct Chain {
    std::atomic<VersionRec<T>*> head{nullptr};
  };

  /// One label-index bucket version: sorted, deduplicated, may hold stale
  /// ids (dead or relabeled nodes — readers validate). `since`/`prev` are
  /// immutable after publication; `ids` is mutable only while `since` is
  /// the unpublished write epoch (and, without MVCC, always: the single
  /// base version is edited in place, exactly like the old flat index).
  struct LabelBucket {
    uint64_t since = 0;
    LabelBucket* prev = nullptr;
    std::vector<NodeId> ids;
  };
  struct BucketHead {
    std::atomic<LabelBucket*> head{nullptr};
  };

  // ---- Snapshot resolution (lock-free read hot path) ----------------------

  /// The calling thread's pin when it targets this graph, else nullptr.
  const ReadPin* ActivePin() const {
    if (!mvcc_on_) return nullptr;
    const ReadPin& pin = CurrentThreadReadPin();
    return (pin.active && pin.owner == this) ? &pin : nullptr;
  }

  /// The newest version of slot `i` visible at `epoch`: walk the chain
  /// (newest first) past versions installed later, fall back to the frozen
  /// base slot. Chain fields are safe to read un-locked: heads publish with
  /// release stores and `since`/`prev` never change after publication.
  const NodeData& ResolveNode(uint32_t slot, uint64_t epoch) const {
    const VersionRec<NodeData>* rec =
        node_chains_[slot].head.load(std::memory_order_acquire);
    while (rec != nullptr && rec->since > epoch) rec = rec->prev;
    return rec != nullptr ? rec->data : nodes_[slot];
  }
  const RelData& ResolveRel(uint32_t slot, uint64_t epoch) const {
    const VersionRec<RelData>* rec =
        rel_chains_[slot].head.load(std::memory_order_acquire);
    while (rec != nullptr && rec->since > epoch) rec = rec->prev;
    return rec != nullptr ? rec->data : rels_[slot];
  }
  const LabelBucket* ResolveBucket(Symbol label, uint64_t epoch) const {
    if (label == kNoSymbol || label >= label_buckets_.size()) return nullptr;
    const LabelBucket* b =
        label_buckets_[label].head.load(std::memory_order_acquire);
    while (b != nullptr && b->since > epoch) b = b->prev;
    return b;
  }

  /// Latest (writer-visible) version of a slot, chains included.
  const NodeData& NodeLatest(uint32_t slot) const {
    if (!mvcc_on_) return nodes_[slot];
    const VersionRec<NodeData>* rec =
        node_chains_[slot].head.load(std::memory_order_acquire);
    return rec != nullptr ? rec->data : nodes_[slot];
  }
  const RelData& RelLatest(uint32_t slot) const {
    if (!mvcc_on_) return rels_[slot];
    const VersionRec<RelData>* rec =
        rel_chains_[slot].head.load(std::memory_order_acquire);
    return rec != nullptr ? rec->data : rels_[slot];
  }

  /// Pin-aware bucket dispatch (latest when unpinned).
  const LabelBucket* BucketFor(Symbol label) const {
    if (const ReadPin* pin = ActivePin()) {
      return ResolveBucket(label, pin->epoch);
    }
    if (label == kNoSymbol || label >= label_buckets_.size()) return nullptr;
    return label_buckets_[label].head.load(std::memory_order_acquire);
  }

  // ---- Writer-side copy-on-first-touch ------------------------------------

  /// Mutable access to a slot's current-statement version: without MVCC (or
  /// for a slot no published epoch covers yet) the base slot in place;
  /// otherwise the version record of the current write epoch, installing a
  /// fresh copy of the newest published version on first touch and retiring
  /// the superseded record.
  NodeData& MutableNode(NodeId id);
  RelData& MutableRel(RelId id);
  LabelBucket& MutableBucket(Symbol label);
  PropertyMap& MutableProps(EntityRef entity);

  /// Grows the dense per-label bucket/count tables to cover `label`.
  void EnsureLabelSlots(Symbol label);

  void ReclaimRetired();
  void DestroyVersions();
  void StealFrom(PropertyGraph* other) noexcept;

  void UnlinkRel(RelId id);
  void RelinkRel(RelId id);
  void AddToLabelIndex(NodeId id, Symbol label);

  /// Value-hash buckets; entries are validated on read and appended blindly
  /// during a statement (tombstone-tolerant, rollback-tolerant: rollback
  /// resurrects nodes without touching the index, so stale entries simply
  /// become valid again). Compaction therefore only runs from CommitTo once
  /// the journal is empty — past that point no rollback can resurrect a
  /// pruned entry.
  struct PropertyIndex {
    Symbol label;
    Symbol key;
    std::unordered_map<uint64_t, std::vector<NodeId>> buckets;
    size_t entries = 0;     // total ids across buckets
    size_t stale_hint = 0;  // upper bound on entries gone stale since sweep
  };

  /// Compacts buckets whose stale ratio exceeds 50% (dead / relabeled /
  /// value-changed / duplicate entries). Only safe when the journal is
  /// empty; see PropertyIndex.
  void CompactIndexes();

  PropertyIndex* FindPropertyIndex(Symbol label, Symbol key);
  const PropertyIndex* FindPropertyIndex(Symbol label, Symbol key) const;

  /// Inserts `id` into every index it currently satisfies (used on node
  /// creation and label addition).
  void IndexNode(NodeId id);
  /// Inserts `id` into indexes on `key` whose label the node carries (used
  /// on property writes).
  void IndexNodeKey(NodeId id, Symbol key);

  /// Copy-safe wrapper for the parallel-read counter: copying or assigning
  /// a graph copies its data, not its (momentary) reader registration.
  struct ReadEpoch {
    std::atomic<int> readers{0};
    ReadEpoch() = default;
    ReadEpoch(const ReadEpoch&) noexcept {}
    ReadEpoch& operator=(const ReadEpoch&) noexcept { return *this; }
  };

  /// Aborts when called inside a parallel read region (see
  /// ParallelReadScope); every mutating method calls this first.
  void AssertMutable() const;

  mutable ReadEpoch epoch_;
  Interner labels_;
  Interner types_;
  Interner keys_;
  SlotVector<NodeData> nodes_;
  SlotVector<RelData> rels_;
  SlotVector<Chain<NodeData>> node_chains_;
  SlotVector<Chain<RelData>> rel_chains_;

  void IncLabelCount(Symbol label) {
    label_counts_[label].fetch_add(1, std::memory_order_relaxed);
  }
  void DecLabelCount(Symbol label);

  /// Dense per-label tables, indexed by label Symbol (grown at InternLabel
  /// so any findable symbol has a slot): bucket version-chain heads and the
  /// cached alive-node-per-label counts.
  SlotVector<BucketHead> label_buckets_;
  SlotVector<std::atomic<int64_t>> label_counts_;

  std::vector<PropertyIndex> property_indexes_;
  std::vector<std::pair<Symbol, Symbol>> unique_constraints_;
  std::atomic<uint64_t> index_epoch_{0};
  std::atomic<size_t> alive_nodes_{0};
  std::atomic<size_t> alive_rels_{0};
  std::vector<JournalOp> journal_;
  bool journaling_ = false;

  // ---- MVCC state (writer-owned except where noted) ------------------------

  bool mvcc_on_ = false;
  /// The epoch in-flight mutations belong to; published - not yet - as
  /// `published_epoch() + 1` on the next successful commit.
  uint64_t write_epoch_ = 1;
  /// Slot watermarks covered by some published epoch: slots at or above
  /// these were created by the current (unpublished) statement, are
  /// invisible to every pin, and are therefore mutated in place chain-free.
  uint64_t published_node_count_ = 0;
  uint64_t published_rel_count_ = 0;
  /// The committed snapshot descriptor readers pin (shared with readers).
  std::atomic<const EpochState*> published_{nullptr};
  /// Active reader pins (shared with readers).
  mutable std::unique_ptr<PinRegistry> registry_;
  RetireList retired_;

  /// Appends one redo line (no trailing newline in `line`) when capturing.
  void RedoAppend(std::string line);
  /// ":A:B" for a label set, "" when empty.
  std::string RedoLabels(const std::vector<Symbol>& labels) const;

  std::string redo_log_;
  bool redo_capture_ = false;
};

/// Renders a node in Cypher-ish form, e.g. `(:User {id: 89, name: 'Bob'})`.
std::string DescribeNode(const PropertyGraph& graph, NodeId id);

/// Renders a relationship, e.g. `(0)-[:ORDERED {}]->(2)`.
std::string DescribeRel(const PropertyGraph& graph, RelId id);

/// Renders `{k: v, ...}` for a property map of `graph`.
std::string DescribeProps(const PropertyGraph& graph, const PropertyMap& map);

}  // namespace cypher

#endif  // CYPHER_GRAPH_GRAPH_H_
