#ifndef CYPHER_GRAPH_SERIALIZE_H_
#define CYPHER_GRAPH_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace cypher {

/// Serializes the alive portion of a graph to a line-oriented text format:
///
///   node <ordinal> :Label:Label {key: literal, ...}
///   rel <ordinal> <src-ordinal> <tgt-ordinal> :TYPE {key: literal, ...}
///
/// Ordinals are dense (0..n-1) in ascending id order, so dump/load performs
/// an id-compaction; the loaded graph is isomorphic to, not identical to,
/// the source. Property literals use Cypher literal syntax (null, booleans,
/// integers, floats, single-quoted strings, lists, maps).
std::string DumpGraph(const PropertyGraph& graph);

/// Parses the DumpGraph format. Lines starting with '#' and blank lines are
/// ignored. Returns InvalidArgument with a line number on malformed input.
Result<PropertyGraph> LoadGraph(const std::string& text);

/// Renders the graph in Graphviz DOT syntax (for the examples' visual
/// output).
std::string ToDot(const PropertyGraph& graph, const std::string& name);

}  // namespace cypher

#endif  // CYPHER_GRAPH_SERIALIZE_H_
