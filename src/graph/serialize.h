#ifndef CYPHER_GRAPH_SERIALIZE_H_
#define CYPHER_GRAPH_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace cypher {

/// Serializes the alive portion of a graph to a line-oriented text format:
///
///   node <ordinal> :Label:Label {key: literal, ...}
///   rel <ordinal> <src-ordinal> <tgt-ordinal> :TYPE {key: literal, ...}
///
/// Ordinals are dense (0..n-1) in ascending id order, so dump/load performs
/// an id-compaction; the loaded graph is isomorphic to, not identical to,
/// the source. Property literals use Cypher literal syntax (null, booleans,
/// integers, floats, single-quoted strings, lists, maps).
std::string DumpGraph(const PropertyGraph& graph);

/// DumpGraph with interner-independent ordering: labels within a node line
/// and keys within a property literal are sorted by *name* instead of by
/// interned symbol. Two graphs with the same content but different intern
/// orders (e.g. an original and its crash-recovered twin) dump identically.
std::string DumpGraphCanonical(const PropertyGraph& graph);

/// Parses the DumpGraph format. Lines starting with '#' and blank lines are
/// ignored. Returns InvalidArgument with a line number on malformed input.
Result<PropertyGraph> LoadGraph(const std::string& text);

/// Parses one literal of the DumpGraph property subset (null, booleans,
/// numbers, single-quoted strings, [lists], {maps}) from the front of
/// `text`; `consumed`, when non-null, receives the bytes used.
Result<Value> ParseLiteral(std::string_view text, size_t* consumed = nullptr);

/// Parses a `{key: literal, ...}` map from the front of `text`.
Result<ValueMap> ParseLiteralMap(std::string_view text,
                                 size_t* consumed = nullptr);

/// Renders the graph in Graphviz DOT syntax (for the examples' visual
/// output).
std::string ToDot(const PropertyGraph& graph, const std::string& name);

}  // namespace cypher

#endif  // CYPHER_GRAPH_SERIALIZE_H_
