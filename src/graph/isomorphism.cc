#include "graph/isomorphism.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "value/compare.h"

namespace cypher {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Graph view normalized to strings so two graphs with different interners
/// compare correctly.
struct NormView {
  struct Node {
    NodeId id;
    std::vector<std::string> labels;  // sorted
    ValueMap props;
    std::vector<RelId> out_rels;
    std::vector<RelId> in_rels;
    uint64_t sig = 0;  // static signature hash
  };
  struct Rel {
    RelId id;
    std::string type;
    ValueMap props;
    size_t src;  // index into nodes
    size_t tgt;
    uint64_t key = 0;  // hash of (type, props)
  };
  std::vector<Node> nodes;
  std::vector<Rel> rels;
  std::unordered_map<uint32_t, size_t> node_index;  // NodeId.value -> index
};

ValueMap NormalizeProps(const PropertyGraph& g, const PropertyMap& props) {
  ValueMap out;
  for (const auto& [key, value] : props.entries()) {
    out.emplace(g.KeyName(key), value);
  }
  return out;
}

uint64_t HashNormProps(const ValueMap& props) {
  uint64_t h = 31;
  for (const auto& [k, v] : props) {
    h = Mix(h, HashString(k));
    h = Mix(h, HashValue(v));
  }
  return h;
}

bool NormPropsEqual(const ValueMap& a, const ValueMap& b) {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (!GroupEquals(ita->second, itb->second)) return false;
  }
  return true;
}

NormView BuildView(const PropertyGraph& g) {
  NormView view;
  for (NodeId id : g.AllNodes()) {
    NormView::Node n;
    n.id = id;
    for (Symbol label : g.node(id).labels) {
      n.labels.push_back(g.LabelName(label));
    }
    std::sort(n.labels.begin(), n.labels.end());
    n.props = NormalizeProps(g, g.node(id).props);
    n.out_rels = g.OutRels(id);
    n.in_rels = g.InRels(id);
    view.node_index[id.value] = view.nodes.size();
    view.nodes.push_back(std::move(n));
  }
  for (RelId id : g.AllRels()) {
    NormView::Rel r;
    r.id = id;
    r.type = g.TypeName(g.rel(id).type);
    r.props = NormalizeProps(g, g.rel(id).props);
    r.src = view.node_index.at(g.rel(id).src.value);
    r.tgt = view.node_index.at(g.rel(id).tgt.value);
    r.key = Mix(HashString(r.type), HashNormProps(r.props));
    view.rels.push_back(std::move(r));
  }
  // Static node signatures: labels, props, degrees, incident rel keys.
  std::unordered_map<uint32_t, size_t>& idx = view.node_index;
  for (auto& n : view.nodes) {
    uint64_t h = 37;
    for (const auto& label : n.labels) h = Mix(h, HashString(label));
    h = Mix(h, HashNormProps(n.props));
    h = Mix(h, n.out_rels.size());
    h = Mix(h, n.in_rels.size());
    n.sig = h;
  }
  // Fold incident relationship keys in (order-independent sums).
  std::vector<uint64_t> extra(view.nodes.size(), 0);
  for (const auto& r : view.rels) {
    extra[r.src] += Mix(2, r.key);
    extra[r.tgt] += Mix(3, r.key);
  }
  for (size_t i = 0; i < view.nodes.size(); ++i) {
    view.nodes[i].sig = Mix(view.nodes[i].sig, extra[i]);
  }
  (void)idx;
  return view;
}

/// Multiset key of one relationship as seen between a specific ordered node
/// pair: direction is implied by which (src,tgt) lookup the caller does.
std::vector<uint64_t> EdgeKeysBetween(const NormView& v, size_t src,
                                      size_t tgt) {
  std::vector<uint64_t> keys;
  for (const auto& r : v.rels) {
    if (r.src == src && r.tgt == tgt) keys.push_back(r.key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct Matcher {
  const NormView& a;
  const NormView& b;
  std::vector<int> a_to_b;  // index mapping, -1 = unmapped
  std::vector<bool> b_used;

  Matcher(const NormView& av, const NormView& bv)
      : a(av), b(bv), a_to_b(av.nodes.size(), -1), b_used(bv.nodes.size()) {}

  bool NodesCompatible(size_t ia, size_t ib) const {
    const auto& na = a.nodes[ia];
    const auto& nb = b.nodes[ib];
    if (na.sig != nb.sig) return false;
    if (na.labels != nb.labels) return false;
    if (!NormPropsEqual(na.props, nb.props)) return false;
    if (na.out_rels.size() != nb.out_rels.size()) return false;
    if (na.in_rels.size() != nb.in_rels.size()) return false;
    // Pairwise edge-multiset consistency with every already-mapped node.
    for (size_t ja = 0; ja < a_to_b.size(); ++ja) {
      if (a_to_b[ja] < 0) continue;
      size_t jb = static_cast<size_t>(a_to_b[ja]);
      if (EdgeKeysBetween(a, ia, ja) != EdgeKeysBetween(b, ib, jb)) {
        return false;
      }
      if (EdgeKeysBetween(a, ja, ia) != EdgeKeysBetween(b, jb, ib)) {
        return false;
      }
      if (EdgeKeysBetween(a, ia, ia) != EdgeKeysBetween(b, ib, ib)) {
        return false;
      }
    }
    return true;
  }

  bool Extend(size_t next) {
    if (next == a.nodes.size()) return true;
    for (size_t ib = 0; ib < b.nodes.size(); ++ib) {
      if (b_used[ib]) continue;
      if (!NodesCompatible(next, ib)) continue;
      a_to_b[next] = static_cast<int>(ib);
      b_used[ib] = true;
      if (Extend(next + 1)) return true;
      a_to_b[next] = -1;
      b_used[ib] = false;
    }
    return false;
  }
};

}  // namespace

bool AreIsomorphic(const PropertyGraph& a, const PropertyGraph& b,
                   std::string* why) {
  if (why) why->clear();
  if (a.num_nodes() != b.num_nodes()) {
    if (why) {
      *why = "node counts differ: " + std::to_string(a.num_nodes()) + " vs " +
             std::to_string(b.num_nodes());
    }
    return false;
  }
  if (a.num_rels() != b.num_rels()) {
    if (why) {
      *why = "relationship counts differ: " + std::to_string(a.num_rels()) +
             " vs " + std::to_string(b.num_rels());
    }
    return false;
  }
  NormView va = BuildView(a);
  NormView vb = BuildView(b);
  // Histogram pruning on static signatures.
  std::map<uint64_t, int> ha;
  std::map<uint64_t, int> hb;
  for (const auto& n : va.nodes) ++ha[n.sig];
  for (const auto& n : vb.nodes) ++hb[n.sig];
  if (ha != hb) {
    if (why) *why = "node signature histograms differ";
    return false;
  }
  std::map<uint64_t, int> ra;
  std::map<uint64_t, int> rb;
  for (const auto& r : va.rels) ++ra[r.key];
  for (const auto& r : vb.rels) ++rb[r.key];
  if (ra != rb) {
    if (why) *why = "relationship (type, properties) multisets differ";
    return false;
  }
  Matcher matcher(va, vb);
  if (!matcher.Extend(0)) {
    if (why) *why = "no structure-preserving node mapping exists";
    return false;
  }
  return true;
}

bool AreIsomorphic(const PropertyGraph& a, const PropertyGraph& b) {
  return AreIsomorphic(a, b, nullptr);
}

uint64_t GraphFingerprint(const PropertyGraph& graph) {
  NormView v = BuildView(graph);
  // Two rounds of Weisfeiler-Leman-style refinement.
  std::vector<uint64_t> h(v.nodes.size());
  for (size_t i = 0; i < v.nodes.size(); ++i) h[i] = v.nodes[i].sig;
  for (int round = 0; round < 2; ++round) {
    std::vector<uint64_t> next = h;
    for (const auto& r : v.rels) {
      next[r.src] += Mix(Mix(41, r.key), h[r.tgt]);
      next[r.tgt] += Mix(Mix(43, r.key), h[r.src]);
    }
    h = std::move(next);
  }
  uint64_t out = Mix(v.nodes.size(), v.rels.size());
  uint64_t sum = 0;
  for (uint64_t x : h) sum += Mix(47, x);
  out = Mix(out, sum);
  uint64_t rsum = 0;
  for (const auto& r : v.rels) rsum += Mix(53, Mix(r.key, h[r.src] + h[r.tgt]));
  out = Mix(out, rsum);
  return out;
}

}  // namespace cypher
