#ifndef CYPHER_GRAPH_PROPERTY_MAP_H_
#define CYPHER_GRAPH_PROPERTY_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "value/value.h"

namespace cypher {

/// Property map of a node or relationship: key symbol -> value, kept sorted
/// by key for deterministic iteration and O(log n) lookup.
///
/// Mirrors the paper's ι function: ι(n, k) = null when no value is defined
/// for key k, which is why Get returns null (not an error) for absent keys
/// and why storing a null value erases the key — "setting to null" and
/// "absent" are indistinguishable, exactly as Definition 1(ii) requires.
class PropertyMap {
 public:
  PropertyMap() = default;

  /// Returns the stored value, or null if the key is absent.
  const Value& Get(Symbol key) const;

  bool Has(Symbol key) const;

  /// Sets key := value; a null value removes the key. Returns true if the
  /// map changed observably.
  bool Set(Symbol key, Value value);

  /// Removes the key if present; returns true if it was present.
  bool Erase(Symbol key);

  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sorted (key, value) entries.
  const std::vector<std::pair<Symbol, Value>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<Symbol, Value>> entries_;
};

/// GroupEquals lifted to property maps: same key set, group-equal values.
/// This is the ι-equality of collapsibility (Definitions 1 and 2).
bool PropsEquivalent(const PropertyMap& a, const PropertyMap& b);

/// Hash compatible with PropsEquivalent.
uint64_t HashProps(const PropertyMap& map);

}  // namespace cypher

#endif  // CYPHER_GRAPH_PROPERTY_MAP_H_
