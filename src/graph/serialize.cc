#include "graph/serialize.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace cypher {

namespace {

// ---- Literal writer ---------------------------------------------------------

// Value::ToString already prints Cypher literal syntax for scalar/list/map
// values; entities never appear in property maps.

// ---- Literal reader ---------------------------------------------------------

/// Minimal recursive-descent parser for the property-literal subset:
/// null, true/false, integers, floats, single-quoted strings, [lists],
/// {key: value} maps. Kept independent of the full query parser so the
/// graph layer has no dependency on the language layer.
class LiteralParser {
 public:
  explicit LiteralParser(std::string_view text) : text_(text) {}

  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of literal");
    char c = text_[pos_];
    if (c == '\'') return ParseString();
    if (c == '[') return ParseList();
    if (c == '{') return ParseMap();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (ConsumeWord("null")) return Value::Null();
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    if (ConsumeWord("NaN")) return Value::Float(std::nan(""));
    if (ConsumeWord("Infinity")) return Value::Float(HUGE_VAL);
    return Fail("unrecognized literal");
  }

  Result<ValueMap> ParseMapBody() {
    CYPHER_ASSIGN_OR_RETURN(Value v, ParseMap());
    return v.AsMap();
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  size_t position() const { return pos_; }

 private:
  Status Fail(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t end = pos_ + word.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += e;
        }
        continue;
      }
      if (c == '\'') return Value::String(std::move(out));
      out += c;
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_float = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_float = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_float = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (is_float) {
      double d = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Fail("malformed float");
      }
      return Value::Float(d);
    }
    int64_t i = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("malformed integer");
    }
    return Value::Int(i);
  }

  Result<Value> ParseList() {
    ++pos_;  // '['
    ValueList items;
    SkipSpace();
    if (Consume(']')) return Value::List(std::move(items));
    while (true) {
      CYPHER_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      if (Consume(',')) continue;
      if (Consume(']')) return Value::List(std::move(items));
      return Fail("expected ',' or ']' in list");
    }
  }

  Result<Value> ParseMap() {
    if (!Consume('{')) return Fail("expected '{'");
    ValueMap out;
    if (Consume('}')) return Value::Map(std::move(out));
    while (true) {
      SkipSpace();
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      if (pos_ == start) return Fail("expected map key");
      std::string key(text_.substr(start, pos_ - start));
      if (!Consume(':')) return Fail("expected ':' after map key");
      CYPHER_ASSIGN_OR_RETURN(Value v, ParseValue());
      out.emplace(std::move(key), std::move(v));
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Map(std::move(out));
      return Fail("expected ',' or '}' in map");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string PropsLiteral(const PropertyGraph& graph, const PropertyMap& map) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : map.entries()) {
    if (!first) out += ", ";
    first = false;
    out += graph.KeyName(key);
    out += ": ";
    out += value.ToString();
  }
  out += "}";
  return out;
}

PropertyMap MapToProps(PropertyGraph* graph, const ValueMap& map) {
  PropertyMap props;
  for (const auto& [key, value] : map) {
    props.Set(graph->InternKey(key), value);
  }
  return props;
}

/// PropsLiteral with keys sorted by name (see DumpGraphCanonical).
std::string PropsLiteralCanonical(const PropertyGraph& graph,
                                  const PropertyMap& map) {
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(map.entries().size());
  for (const auto& [key, value] : map.entries()) {
    entries.emplace_back(graph.KeyName(key), value.ToString());
  }
  std::sort(entries.begin(), entries.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [name, literal] : entries) {
    if (!first) out += ", ";
    first = false;
    out += name + ": " + literal;
  }
  out += "}";
  return out;
}

}  // namespace

Result<Value> ParseLiteral(std::string_view text, size_t* consumed) {
  LiteralParser parser(text);
  CYPHER_ASSIGN_OR_RETURN(Value value, parser.ParseValue());
  if (consumed != nullptr) *consumed = parser.position();
  return value;
}

Result<ValueMap> ParseLiteralMap(std::string_view text, size_t* consumed) {
  LiteralParser parser(text);
  CYPHER_ASSIGN_OR_RETURN(ValueMap map, parser.ParseMapBody());
  if (consumed != nullptr) *consumed = parser.position();
  return map;
}

std::string DumpGraphCanonical(const PropertyGraph& graph) {
  std::string out;
  std::unordered_map<uint32_t, size_t> node_ordinal;
  size_t next = 0;
  for (NodeId id : graph.AllNodes()) {
    node_ordinal[id.value] = next;
    out += "node " + std::to_string(next);
    std::vector<std::string> labels;
    for (Symbol label : graph.node(id).labels) {
      labels.push_back(graph.LabelName(label));
    }
    std::sort(labels.begin(), labels.end());
    for (const std::string& label : labels) out += " :" + label;
    out += " " + PropsLiteralCanonical(graph, graph.node(id).props) + "\n";
    ++next;
  }
  size_t rel_next = 0;
  for (RelId id : graph.AllRels()) {
    const RelData& rel = graph.rel(id);
    out += "rel " + std::to_string(rel_next) + " " +
           std::to_string(node_ordinal.at(rel.src.value)) + " " +
           std::to_string(node_ordinal.at(rel.tgt.value)) + " :" +
           graph.TypeName(rel.type) + " " +
           PropsLiteralCanonical(graph, rel.props) + "\n";
    ++rel_next;
  }
  return out;
}

std::string DumpGraph(const PropertyGraph& graph) {
  std::string out;
  std::unordered_map<uint32_t, size_t> node_ordinal;
  size_t next = 0;
  for (NodeId id : graph.AllNodes()) {
    node_ordinal[id.value] = next;
    out += "node " + std::to_string(next);
    for (Symbol label : graph.node(id).labels) {
      out += " :" + graph.LabelName(label);
    }
    out += " " + PropsLiteral(graph, graph.node(id).props) + "\n";
    ++next;
  }
  size_t rel_next = 0;
  for (RelId id : graph.AllRels()) {
    const RelData& rel = graph.rel(id);
    out += "rel " + std::to_string(rel_next) + " " +
           std::to_string(node_ordinal.at(rel.src.value)) + " " +
           std::to_string(node_ordinal.at(rel.tgt.value)) + " :" +
           graph.TypeName(rel.type) + " " + PropsLiteral(graph, rel.props) +
           "\n";
    ++rel_next;
  }
  return out;
}

Result<PropertyGraph> LoadGraph(const std::string& text) {
  PropertyGraph graph;
  std::vector<NodeId> by_ordinal;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const std::string& what) {
      return Status::InvalidArgument("graph line " + std::to_string(line_no) +
                                     ": " + what);
    };
    size_t space = line.find(' ');
    if (space == std::string_view::npos) return fail("malformed line");
    std::string_view kind = line.substr(0, space);
    std::string_view rest = line.substr(space + 1);
    if (kind == "node") {
      // node <ordinal> :Label... {props}
      size_t pos = 0;
      while (pos < rest.size() && rest[pos] != ' ') ++pos;  // skip ordinal
      std::vector<Symbol> labels;
      while (true) {
        while (pos < rest.size() && rest[pos] == ' ') ++pos;
        if (pos >= rest.size() || rest[pos] != ':') break;
        size_t start = ++pos;
        while (pos < rest.size() && rest[pos] != ' ' && rest[pos] != ':') ++pos;
        labels.push_back(graph.InternLabel(rest.substr(start, pos - start)));
      }
      LiteralParser parser(rest.substr(pos));
      auto map = parser.ParseMapBody();
      if (!map.ok()) return fail(map.status().message());
      by_ordinal.push_back(
          graph.CreateNode(std::move(labels), MapToProps(&graph, *map)));
      continue;
    }
    if (kind == "rel") {
      // rel <ordinal> <src> <tgt> :TYPE {props}
      std::vector<std::string> head;
      size_t pos = 0;
      for (int i = 0; i < 3; ++i) {
        while (pos < rest.size() && rest[pos] == ' ') ++pos;
        size_t start = pos;
        while (pos < rest.size() && rest[pos] != ' ') ++pos;
        head.emplace_back(rest.substr(start, pos - start));
      }
      while (pos < rest.size() && rest[pos] == ' ') ++pos;
      if (head.size() != 3 || pos >= rest.size() || rest[pos] != ':') {
        return fail("malformed rel line");
      }
      size_t type_start = ++pos;
      while (pos < rest.size() && rest[pos] != ' ') ++pos;
      Symbol type = graph.InternType(rest.substr(type_start, pos - type_start));
      size_t src = 0;
      size_t tgt = 0;
      auto parse_index = [](const std::string& s, size_t* out) {
        auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
        return ec == std::errc() && ptr == s.data() + s.size();
      };
      if (!parse_index(head[1], &src) || !parse_index(head[2], &tgt)) {
        return fail("malformed rel endpoints");
      }
      if (src >= by_ordinal.size() || tgt >= by_ordinal.size()) {
        return fail("rel references unknown node ordinal");
      }
      LiteralParser parser(rest.substr(pos));
      auto map = parser.ParseMapBody();
      if (!map.ok()) return fail(map.status().message());
      auto rel = graph.CreateRel(by_ordinal[src], by_ordinal[tgt], type,
                                 MapToProps(&graph, *map));
      if (!rel.ok()) return fail(rel.status().message());
      continue;
    }
    return fail("unknown record kind '" + std::string(kind) + "'");
  }
  return graph;
}

std::string ToDot(const PropertyGraph& graph, const std::string& name) {
  std::string out = "digraph \"" + name + "\" {\n";
  out += "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (NodeId id : graph.AllNodes()) {
    std::string label;
    for (Symbol s : graph.node(id).labels) {
      label += ":" + graph.LabelName(s);
    }
    if (!graph.node(id).props.empty()) {
      if (!label.empty()) label += "\\n";
      label += DescribeProps(graph, graph.node(id).props);
    }
    out += "  n" + std::to_string(id.value) + " [label=\"" + label + "\"];\n";
  }
  for (RelId id : graph.AllRels()) {
    const RelData& rel = graph.rel(id);
    out += "  n" + std::to_string(rel.src.value) + " -> n" +
           std::to_string(rel.tgt.value) + " [label=\":" +
           graph.TypeName(rel.type) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace cypher
