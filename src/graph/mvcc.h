#ifndef CYPHER_GRAPH_MVCC_H_
#define CYPHER_GRAPH_MVCC_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/read_pin.h"

namespace cypher {

/// Epoch-based MVCC building blocks for the property graph (DESIGN.md §4g).
///
/// The statement is the atomic unit of visibility (the paper's revised
/// semantics), so the global version counter — the *epoch* — is simply the
/// number of successfully committed writer statements. Readers pin the
/// newest published epoch and resolve every record against it; the writer
/// installs new versions ("install, never mutate shared state in place")
/// and publishes them all at once by advancing the epoch at statement
/// commit. Superseded versions retire into a deferred list and are freed
/// once no pin can reach them.

/// One version of a record. `since` is the write epoch that installed it;
/// `prev` links to the next-older version. Both are immutable once the
/// record is published (a release store of the chain head); `data` is
/// mutable only while the record's epoch is still unpublished — i.e. the
/// writer may keep editing its own current statement's copy in place,
/// because no reader pin can name that epoch yet.
template <typename T>
struct VersionRec {
  uint64_t since = 0;
  VersionRec* prev = nullptr;
  T data;
};

/// The globally published snapshot descriptor: the committed epoch and the
/// node/rel slot watermarks at its commit point. Slots at or above the
/// watermark were created by later (or in-flight) statements and are
/// invisible to pins of this epoch — which is also what makes it safe for
/// the writer to build fresh slots in place, chain-free.
struct EpochState {
  uint64_t epoch = 0;
  uint64_t node_slots = 0;
  uint64_t rel_slots = 0;
};

/// Lock-free registry of active reader pins: a fixed array of epoch slots.
/// Pinning claims a slot, stamps it with the published epoch, and
/// re-validates that the publication did not move mid-stamp; reclamation
/// takes the minimum stamped epoch as its safety horizon. Writers never
/// wait on readers and readers never block writers — the only writer-side
/// cost is a slot scan at reclaim time.
class PinRegistry {
 public:
  static constexpr size_t kSlots = 256;
  static constexpr uint64_t kFree = ~uint64_t{0};

  PinRegistry() {
    for (auto& s : slots_) s.store(kFree, std::memory_order_relaxed);
  }

  /// Claims a slot and pins the currently published state. Returns the slot
  /// index and stores the pinned state descriptor in `*state`. The caller
  /// must copy the descriptor's fields before any chance of it retiring —
  /// in practice immediately, which ReadPin does.
  ///
  /// Safety argument: the slot is first stamped with epoch 0, a value no
  /// retired version can be gated on (epochs start at 1), so from that
  /// store on, no reclamation scan frees anything. Then the published
  /// pointer is loaded, the slot re-stamped with its epoch, and the load
  /// repeated: if publication moved in between, retry. Once the two loads
  /// agree, any later reclamation scan observes the stamp (both sides use
  /// seq_cst, so the scan either preceded our stamp — and could only free
  /// versions older than what we loaded — or follows it and respects it).
  uint32_t Pin(const std::atomic<const EpochState*>& published,
               const EpochState** state) {
    uint32_t slot = Claim();
    Stamp(slot, published, state);
    return slot;
  }

  /// Re-pins an already-claimed slot to the newest published state. The old
  /// stamp stays in place until overwritten, so the horizon only moves
  /// forward — no unprotected window.
  void Refresh(uint32_t slot, const std::atomic<const EpochState*>& published,
               const EpochState** state) {
    Stamp(slot, published, state);
  }

  void Unpin(uint32_t slot) {
    slots_[slot].store(kFree, std::memory_order_release);
  }

  /// The reclamation horizon: the minimum epoch any active pin holds, or
  /// kFree (= everything reclaimable) when no pin is active.
  uint64_t MinActive() const {
    uint64_t min = kFree;
    for (const auto& s : slots_) {
      uint64_t e = s.load(std::memory_order_seq_cst);
      if (e < min) min = e;
    }
    return min;
  }

 private:
  uint32_t Claim() {
    while (true) {
      for (uint32_t i = 0; i < kSlots; ++i) {
        uint64_t expected = kFree;
        // 0 = "pinning in progress": blocks all reclamation (no version is
        // ever gated on epoch 0) until the real stamp lands.
        if (slots_[i].compare_exchange_strong(expected, 0,
                                              std::memory_order_seq_cst)) {
          return i;
        }
      }
      // All slots busy: extremely unlikely (256 simultaneous pins); spin.
    }
  }

  void Stamp(uint32_t slot, const std::atomic<const EpochState*>& published,
             const EpochState** state) {
    while (true) {
      const EpochState* s = published.load(std::memory_order_seq_cst);
      slots_[slot].store(s->epoch, std::memory_order_seq_cst);
      if (published.load(std::memory_order_seq_cst) == s) {
        *state = s;
        return;
      }
    }
  }

  std::array<std::atomic<uint64_t>, kSlots> slots_;
};

/// Deferred reclamation list: every superseded version (or epoch
/// descriptor) enters exactly once, tagged with the write epoch whose
/// publication superseded it, and is freed once the registry's minimum
/// active pin reaches that epoch. Writer-only structure.
class RetireList {
 public:
  void Add(void* ptr, void (*deleter)(void*), uint64_t retired_at) {
    entries_.push_back({ptr, deleter, retired_at});
  }

  /// Frees every entry whose retire epoch is covered by `min_pin`
  /// (inclusive: a pin at epoch e still reads versions superseded at
  /// epochs > e, so an entry retired at e is free once min_pin >= e).
  void Reclaim(uint64_t min_pin) {
    size_t kept = 0;
    for (Entry& e : entries_) {
      if (e.retired_at <= min_pin) {
        e.deleter(e.ptr);
      } else {
        entries_[kept++] = e;
      }
    }
    entries_.resize(kept);
  }

  /// Frees everything unconditionally (graph destruction; no pins remain).
  void Drain() {
    for (Entry& e : entries_) e.deleter(e.ptr);
    entries_.clear();
  }

  size_t pending() const { return entries_.size(); }

 private:
  struct Entry {
    void* ptr;
    void (*deleter)(void*);
    uint64_t retired_at;
  };
  std::vector<Entry> entries_;
};

}  // namespace cypher

#endif  // CYPHER_GRAPH_MVCC_H_
