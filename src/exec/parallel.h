#ifndef CYPHER_EXEC_PARALLEL_H_
#define CYPHER_EXEC_PARALLEL_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/clause.h"
#include "common/result.h"
#include "eval/env.h"
#include "exec/options.h"
#include "match/matcher.h"
#include "table/table.h"

namespace cypher {

// Morsel-driven parallel execution of the read-only clause fragment.
//
// The paper's semantics ([[C]] : (G, T) -> (G', T')) fixes the driving
// table as an ordered bag, and the read fragment (MATCH / WHERE /
// projection / aggregation, and the match phase of revised MERGE) is
// side-effect-free — so it may fan out across threads as long as results
// are re-emitted in canonical order. Every function here guarantees the
// output is byte-identical to the sequential executor: morsels are merged
// in domain order, aggregate partials in morsel order, and the first error
// in task order is the first error the sequential walk would have hit.
// Updating clauses never go through this path.

/// Resolved fan-out decision for one clause execution.
struct ParallelPlan {
  size_t workers = 0;      // > 1 when the parallel path engages
  size_t morsel = 0;       // anchor positions (anchor mode) per task
  bool anchor_mode = false;  // split the first path's anchor-scan domain
                             // (few rows driving a large scan); otherwise
                             // contiguous row ranges are the tasks
  bool expand_mode = false;  // few rows, small anchor domain, but a costly
                             // var-length / BFS leg: rows run sequentially
                             // and the matcher fans each expansion frontier
                             // out instead (MatchOptions::expand_workers)
  size_t domain = 0;       // AnchorScanDomain, valid in anchor mode
};

/// Decides whether the per-record match loop for `compiled` over `num_rows`
/// driving records should fan out, using the compiled anchor cost as the
/// work estimate (options.parallel_min_cost is the threshold). nullopt =
/// run the sequential loop.
std::optional<ParallelPlan> PlanParallelMatch(const EvalOptions& options,
                                              const PropertyGraph& graph,
                                              const CompiledMatch& compiled,
                                              size_t num_rows);

/// EXPLAIN annotation: "parallel(workers=N, morsel=K)" when the options
/// would route this compiled match through the parallel path for a large
/// enough table, "" otherwise.
std::string DescribeParallelMatch(const EvalOptions& options,
                                  const CompiledMatch& compiled);

/// Runs the MATCH record loop in parallel per `plan` and appends the
/// matched rows (input row + `new_vars` columns) to `out`, byte-identical
/// to the sequential loop. `where` (may be null) filters assignments
/// exactly as ExecMatch does; `optional_match` appends the null-extended
/// row for match-less records; `unmatched` (may be null) collects the
/// indices of match-less records in ascending order (revised MERGE's
/// failed list). Opens a PropertyGraph::ParallelReadScope for the duration.
Status ParallelMatchRows(const EvalContext& ec, const MatchOptions& mopts,
                         const ParallelPlan& plan, const Table& input,
                         const CompiledMatch& compiled, const Expr* where,
                         const std::vector<std::string>& new_vars,
                         bool optional_match, std::vector<size_t>* unmatched,
                         Table* out);

/// One projection item as the parallel executor sees it.
struct ProjItemView {
  const Expr* expr = nullptr;
  const std::string* alias = nullptr;
  bool has_agg = false;
};

/// Row-parallel evaluation of a non-aggregated projection: appends one
/// output row per input row to `out` (and its ORDER BY key vector to
/// `sort_keys` when non-null), byte-identical to the sequential loop.
/// Returns false without touching `out` when the parallel path does not
/// engage (options off, or the table is below parallel_min_cost rows).
Result<bool> TryParallelProject(const EvalContext& ec,
                                const EvalOptions& options, const Table& input,
                                const std::vector<ProjItemView>& items,
                                const std::vector<SortItem>& order_by,
                                Table* out,
                                std::vector<std::vector<Value>>* sort_keys);

/// Parallel implicit-grouping aggregation: workers build per-morsel partial
/// aggregates (count/sum/min/max/collect; DISTINCT via per-worker hash
/// sets) which are merged in morsel order, so group first-occurrence order,
/// collect() element order, DISTINCT first-occurrence order, integer-sum
/// overflow behavior and min/max tie-breaks all replicate the sequential
/// executor exactly. Item shapes outside the partial fragment (avg(),
/// float sums, aggregates nested in larger expressions) fall back to the
/// generic evaluator per group over the merged row lists — still parallel
/// across the scan, still byte-identical. Returns false without touching
/// `out` when the parallel path does not engage.
Result<bool> TryParallelAggregate(const EvalContext& ec,
                                  const EvalOptions& options,
                                  const Table& input,
                                  const std::vector<ProjItemView>& items,
                                  const std::vector<SortItem>& order_by,
                                  Table* out,
                                  std::vector<std::vector<Value>>* sort_keys);

}  // namespace cypher

#endif  // CYPHER_EXEC_PARALLEL_H_
