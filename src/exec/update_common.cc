#include "exec/update_common.h"

#include <algorithm>

#include "eval/evaluator.h"

namespace cypher {

Status ValidateUpdatePatterns(const std::vector<PathPattern>& patterns,
                              bool allow_undirected) {
  for (const PathPattern& pattern : patterns) {
    if (pattern.function != PathFunction::kNone) {
      return Status::SemanticError(
          "shortestPath()/allShortestPaths() are not allowed in updating "
          "patterns");
    }
    for (const auto& [rel, node] : pattern.steps) {
      if (rel.types.size() != 1) {
        return Status::SemanticError(
            "a relationship in an updating pattern must have exactly one "
            "type");
      }
      if (rel.var_length) {
        return Status::SemanticError(
            "variable-length relationships are not allowed in updating "
            "patterns");
      }
      if (!allow_undirected && rel.direction == RelDirection::kUndirected) {
        return Status::SemanticError(
            "a relationship in an updating pattern must be directed");
      }
    }
  }
  return Status::OK();
}

bool IsStorableProperty(const Value& value) {
  switch (value.type()) {
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kFloat:
    case ValueType::kString:
      return true;
    case ValueType::kList: {
      for (const Value& v : value.AsList()) {
        if (!IsStorableProperty(v)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

Result<PropertyMap> EvalPatternProps(
    ExecContext* ctx, const Bindings& bindings,
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  PropertyMap out;
  EvalContext ec = ctx->Eval();
  for (const auto& [key, expr] : props) {
    CYPHER_ASSIGN_OR_RETURN(Value value, Evaluate(ec, bindings, *expr));
    if (value.is_null()) continue;  // null assignments store nothing
    if (!IsStorableProperty(value)) {
      return Status::ExecutionError(
          "property '" + key + "' cannot store a value of type " +
          ValueTypeName(value.type()));
    }
    out.Set(ctx->graph->InternKey(key), std::move(value));
  }
  return out;
}

std::vector<std::string> NewPatternVariables(
    const std::vector<PathPattern>& patterns, const Table& table) {
  std::vector<std::string> out;
  for (const PathPattern& pattern : patterns) {
    for (const std::string& var : PatternVariables(pattern)) {
      if (table.HasColumn(var)) continue;
      if (std::find(out.begin(), out.end(), var) == out.end()) {
        out.push_back(var);
      }
    }
  }
  return out;
}

}  // namespace cypher
