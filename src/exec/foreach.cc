#include "eval/evaluator.h"
#include "exec/clauses.h"

namespace cypher {

Status ExecForeach(ExecContext* ctx, const ForeachClause& clause,
                   Table* table) {
  EvalContext ec = ctx->Eval();
  // FOREACH introduces no bindings into the driving table; its body runs
  // once per (record, list element) on a single-record scratch table whose
  // columns are the outer columns plus the iteration variable. Each body
  // clause executes under the session's semantics mode, so e.g. a SET
  // inside FOREACH is atomic per element under the revised semantics.
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Bindings bindings(table, r);
    CYPHER_ASSIGN_OR_RETURN(Value list, Evaluate(ec, bindings, *clause.list));
    if (list.is_null()) continue;
    if (!list.is_list()) {
      return Status::ExecutionError(
          std::string("FOREACH expects a list, got ") +
          ValueTypeName(list.type()));
    }
    for (const Value& element : list.AsList()) {
      Table scratch = Table::WithColumns(table->columns());
      if (scratch.HasColumn(clause.variable)) {
        return Status::SemanticError("FOREACH variable '" + clause.variable +
                                     "' is already bound");
      }
      scratch.AddColumn(clause.variable);
      std::vector<Value> row = table->row(r);
      row.push_back(element);
      scratch.AddRow(std::move(row));
      for (const ClausePtr& inner : clause.body) {
        CYPHER_RETURN_NOT_OK(ExecClause(ctx, *inner, &scratch));
      }
    }
  }
  return Status::OK();
}

}  // namespace cypher
