#ifndef CYPHER_EXEC_CONTEXT_H_
#define CYPHER_EXEC_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "eval/env.h"
#include "exec/options.h"
#include "exec/stats.h"
#include "graph/graph.h"
#include "table/table.h"
#include "value/value.h"

namespace cypher {

/// Mutable state threaded through clause executors for one statement.
struct ExecContext {
  ExecContext(PropertyGraph* g, const ValueMap* p, const EvalOptions& o)
      : graph(g), params(p), options(o), rng(o.shuffle_seed) {}

  PropertyGraph* graph;
  const ValueMap* params;
  const EvalOptions& options;
  UpdateStats stats;
  SplitMix64 rng;

  /// Read-only view for the expression evaluator.
  EvalContext Eval() const {
    return EvalContext{graph, params, options.match_mode, &options.cancel,
                       options.read_pin};
  }

  MatchOptions Match() const {
    MatchOptions match{options.match_mode};
    if (options.read_pin != nullptr) {
      match.snapshot_epoch = options.read_pin->epoch;
    }
    return match;
  }

  /// The record visit order for legacy executors: forward, reverse, or a
  /// seeded shuffle of [0, n). Revised executors must not call this (they
  /// are order-insensitive and always iterate forward).
  std::vector<size_t> LegacyScanOrder(size_t n) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    switch (options.scan_order) {
      case ScanOrder::kForward:
        break;
      case ScanOrder::kReverse:
        for (size_t i = 0; i < n / 2; ++i) std::swap(order[i], order[n - 1 - i]);
        break;
      case ScanOrder::kShuffle:
        rng.Shuffle(&order);
        break;
    }
    return order;
  }
};

}  // namespace cypher

#endif  // CYPHER_EXEC_CONTEXT_H_
