#ifndef CYPHER_EXEC_STATS_H_
#define CYPHER_EXEC_STATS_H_

#include <cstdint>
#include <string>

namespace cypher {

/// Mutation counters for one statement (Neo4j-style summary).
struct UpdateStats {
  uint64_t nodes_created = 0;
  uint64_t nodes_deleted = 0;
  uint64_t rels_created = 0;
  uint64_t rels_deleted = 0;
  uint64_t properties_set = 0;
  uint64_t labels_added = 0;
  uint64_t labels_removed = 0;

  bool AnyUpdates() const {
    return nodes_created || nodes_deleted || rels_created || rels_deleted ||
           properties_set || labels_added || labels_removed;
  }

  /// "Added 3 nodes, created 2 relationships, set 5 properties"-style line.
  std::string ToString() const;
};

}  // namespace cypher

#endif  // CYPHER_EXEC_STATS_H_
