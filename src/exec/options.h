#ifndef CYPHER_EXEC_OPTIONS_H_
#define CYPHER_EXEC_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "common/cancel.h"
#include "common/read_pin.h"
#include "match/matcher.h"

namespace cypher {

/// Which update semantics the engine runs.
///
/// kLegacy is Cypher 9 as described in Sections 3-4: record-at-a-time
/// updates that read their own writes, immediate per-record deletes with
/// zombie entities, and order-dependent MERGE. kRevised is the semantics of
/// Sections 7-8: two-phase atomic SET with conflict errors, atomic DELETE
/// with dangling detection and null substitution, and MERGE ALL/SAME.
enum class SemanticsMode { kLegacy, kRevised };

/// The order in which legacy executors walk the driving table. The paper
/// treats tables as unordered bags that "may be reordered at will by the
/// query-processing engine" — this knob makes that reordering explicit so
/// Example 3's nondeterminism is mechanically demonstrable. Revised
/// executors are order-insensitive by construction and ignore it.
enum class ScanOrder { kForward, kReverse, kShuffle };

/// The five repaired MERGE semantics proposed in Section 6.
/// `MERGE ALL` is kAtomic and `MERGE SAME` is kStrongCollapse (Section 7);
/// the other three are exposed for the Figure 7-9 comparisons.
enum class MergeVariant {
  kAtomic,
  kGrouping,
  kWeakCollapse,
  kCollapse,
  kStrongCollapse,
};

/// Returns a stable display name ("Atomic", "Strong Collapse", ...).
const char* MergeVariantName(MergeVariant variant);

/// Engine configuration for one statement (or a whole session).
struct EvalOptions {
  SemanticsMode semantics = SemanticsMode::kRevised;

  /// Pattern-matching repetition policy (Section 2 trail semantics vs the
  /// homomorphism matching planned for later Cypher versions, Section 6).
  MatchMode match_mode = MatchMode::kRelUnique;

  /// Driving-table scan order for legacy executors.
  ScanOrder scan_order = ScanOrder::kForward;

  /// Seed for ScanOrder::kShuffle.
  uint64_t shuffle_seed = 0;

  /// In revised semantics a bare `MERGE` (without ALL/SAME) is rejected, as
  /// decided in Section 7 ("the query used in Example 5 will no longer be
  /// allowed"). Setting this runs bare MERGE with the given Section 6
  /// variant instead — the knob the figure benches use to compare all five.
  std::optional<MergeVariant> plain_merge_variant;

  /// Enforce the Cypher 9 rule that a reading clause may not follow an
  /// update clause without an intervening WITH (Section 4.4). Off by
  /// default; the revised syntax (Figure 10) drops the rule.
  bool strict_cypher9_syntax = false;

  /// Route statements through the parametrized plan cache and the bytecode
  /// VM (GraphDatabase::Execute only; the lower-level ExecuteQuery entry
  /// point is always the tree-walking interpreter). Off = every statement
  /// reparses and runs interpreted — the reference path the differential
  /// suites compare the VM against.
  bool use_plan_cache = true;

  /// Snapshot session pin (MVCC reads, DESIGN.md §4g). When set, the
  /// statement executes read-only against the pin's committed epoch:
  /// executors install the pin thread-locally around evaluation (graph
  /// accessors resolve against it), skip the journal/validation/commit
  /// machinery, and refuse update clauses. Owned by the ReadSession that
  /// issued the statement; must outlive the Execute call.
  const ReadPin* read_pin = nullptr;

  /// Runaway-query guard: when non-zero, a statement whose driving table
  /// exceeds this many records after any clause aborts (and rolls back)
  /// with an ExecutionError. 0 = unlimited.
  size_t max_rows = 0;

  /// Watchdog handle: the interpreter polls it between clauses and the
  /// matcher/parallel loops poll it at their choice points. A tripped token
  /// aborts the statement with kDeadlineExceeded / kAborted and rolls it
  /// back like any other failure. Default-constructed = never cancels.
  CancelToken cancel;

  // ---- Morsel-driven parallel read execution --------------------------------
  //
  // The read-only fragment (MATCH enumeration, projection, partial
  // aggregation, and the match phase of MERGE ALL / MERGE SAME) can fan out
  // across a worker pool; results are re-merged in morsel order, so the
  // driving table is byte-identical to the sequential one. Updating clauses
  // always apply sequentially, exactly as the paper specifies. Legacy MERGE
  // never parallelizes: it reads its own writes record by record.

  /// Worker threads for the parallel read path, including the calling
  /// thread. 0 or 1 = fully sequential (the default: parallelism is opt-in
  /// per statement or per session).
  size_t parallel_workers = 0;

  /// Work-unit size: anchor-scan domain positions (anchor-partitioned
  /// clauses) or driving-table rows (row-partitioned clauses) per morsel.
  size_t parallel_morsel_size = 256;

  /// Minimum estimated work (records x anchor cost from the compiled plan,
  /// or input rows for projection/aggregation) before the parallel path
  /// engages; below it, fan-out overhead beats the win.
  size_t parallel_min_cost = 2048;
};

}  // namespace cypher

#endif  // CYPHER_EXEC_OPTIONS_H_
