#ifndef CYPHER_EXEC_RENDER_H_
#define CYPHER_EXEC_RENDER_H_

#include <string>

#include "exec/interpreter.h"
#include "graph/graph.h"
#include "value/value.h"

namespace cypher {

/// Renders a value with entities expanded against the graph:
/// nodes as `(:User {id: 89, name: 'Bob'})`, relationships as
/// `[:ORDERED {...}]`, paths as node-arrow chains. Deleted (zombie)
/// entities render as `()` / `[]` — the "empty node" of Section 4.2.
std::string RenderValue(const PropertyGraph& graph, const Value& value);

/// Renders the result as an aligned text table followed by the stats line.
std::string RenderResult(const PropertyGraph& graph, const QueryResult& result);

}  // namespace cypher

#endif  // CYPHER_EXEC_RENDER_H_
