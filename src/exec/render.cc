#include "exec/render.h"

#include <algorithm>

namespace cypher {

std::string RenderValue(const PropertyGraph& graph, const Value& value) {
  switch (value.type()) {
    case ValueType::kNode:
      return DescribeNode(graph, value.AsNode());
    case ValueType::kRel: {
      RelId id = value.AsRel();
      if (!graph.IsValidRel(id)) return "[?invalid?]";
      const RelData& rel = graph.rel(id);
      std::string out = "[:";
      out += graph.TypeName(rel.type);
      if (!rel.props.empty()) {
        out += " ";
        out += DescribeProps(graph, rel.props);
      }
      out += "]";
      return out;
    }
    case ValueType::kPath: {
      const PathValue& path = value.AsPath();
      std::string out;
      for (size_t i = 0; i < path.nodes.size(); ++i) {
        if (i > 0) {
          const RelData& rel = graph.rel(path.rels[i - 1]);
          bool forward = rel.src == path.nodes[i - 1];
          out += forward ? "-" : "<-";
          out += RenderValue(graph, Value::Rel(path.rels[i - 1]));
          out += forward ? "->" : "-";
        }
        out += DescribeNode(graph, path.nodes[i]);
      }
      return out;
    }
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : value.AsList()) {
        if (!first) out += ", ";
        first = false;
        out += RenderValue(graph, v);
      }
      return out + "]";
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, v] : value.AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += key + ": " + RenderValue(graph, v);
      }
      return out + "}";
    }
    default:
      return value.ToString();
  }
}

std::string RenderResult(const PropertyGraph& graph,
                         const QueryResult& result) {
  std::string out;
  if (!result.columns.empty()) {
    std::vector<std::vector<std::string>> cells;
    cells.push_back(result.columns);
    for (const auto& row : result.rows) {
      std::vector<std::string> line;
      line.reserve(row.size());
      for (const Value& v : row) line.push_back(RenderValue(graph, v));
      cells.push_back(std::move(line));
    }
    std::vector<size_t> widths(result.columns.size(), 0);
    for (const auto& line : cells) {
      for (size_t i = 0; i < line.size(); ++i) {
        widths[i] = std::max(widths[i], line[i].size());
      }
    }
    for (size_t l = 0; l < cells.size(); ++l) {
      out += "| ";
      for (size_t i = 0; i < cells[l].size(); ++i) {
        out += cells[l][i];
        out.append(widths[i] - cells[l][i].size(), ' ');
        out += " | ";
      }
      out.pop_back();
      out += "\n";
      if (l == 0) {
        std::string rule = "+";
        for (size_t w : widths) rule += std::string(w + 2, '-') + "+";
        out += rule + "\n";
      }
    }
    out += std::to_string(result.rows.size()) +
           (result.rows.size() == 1 ? " row\n" : " rows\n");
  }
  if (result.stats.AnyUpdates()) {
    out += result.stats.ToString() + "\n";
  }
  return out;
}

}  // namespace cypher
