#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "eval/evaluator.h"
#include "exec/clauses.h"
#include "exec/parallel.h"

namespace cypher {

// ---- MATCH / OPTIONAL MATCH ---------------------------------------------

std::vector<std::string> MatchNewVars(const MatchClause& clause,
                                      const Table& table) {
  std::vector<std::string> new_vars;
  for (const PathPattern& pattern : clause.patterns) {
    for (const std::string& var : PatternVariables(pattern)) {
      if (table.HasColumn(var)) continue;
      if (std::find(new_vars.begin(), new_vars.end(), var) == new_vars.end()) {
        new_vars.push_back(var);
      }
    }
  }
  return new_vars;
}

Status ExecMatch(ExecContext* ctx, const MatchClause& clause, Table* table) {
  // Fresh variables this MATCH introduces (consistent across records).
  std::vector<std::string> new_vars = MatchNewVars(clause, *table);
  EvalContext ec = ctx->Eval();
  if (table->num_rows() == 0) {
    // Still introduces the new (empty) columns.
    Table out = Table::WithColumns(table->columns());
    for (const std::string& var : new_vars) out.AddColumn(var);
    *table = std::move(out);
    return Status::OK();
  }
  // Compile once per clause: boundness and interned symbols are identical
  // across records of one table; only row values differ (memoized per
  // record inside the engine).
  CompiledMatch compiled = CompileMatch(ec, Bindings(table, 0), clause.patterns,
                                        {.num_rows = table->num_rows()});
  return ExecMatchCompiled(ctx, clause, compiled, new_vars, table);
}

Status ExecMatchCompiled(ExecContext* ctx, const MatchClause& clause,
                         const CompiledMatch& compiled,
                         const std::vector<std::string>& new_vars,
                         Table* table) {
  Table out = Table::WithColumns(table->columns());
  for (const std::string& var : new_vars) out.AddColumn(var);
  EvalContext ec = ctx->Eval();
  if (std::optional<ParallelPlan> plan = PlanParallelMatch(
          ctx->options, *ec.graph, compiled, table->num_rows())) {
    CYPHER_RETURN_NOT_OK(ParallelMatchRows(
        ec, ctx->Match(), *plan, *table, compiled, clause.where.get(),
        new_vars, clause.optional, /*unmatched=*/nullptr, &out));
    *table = std::move(out);
    return Status::OK();
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Bindings bindings(table, r);
    bool any = false;
    Status st = MatchCompiled(
        ec, bindings, compiled, ctx->Match(),
        [&](const MatchAssignment& assignment) -> Result<bool> {
          if (clause.where != nullptr) {
            Bindings wb = bindings;
            for (const auto& [name, value] : assignment.entries()) {
              wb.Push(name, value);
            }
            CYPHER_ASSIGN_OR_RETURN(Tri pass,
                                    EvaluatePredicate(ec, wb, *clause.where));
            if (pass != Tri::kTrue) return true;  // keep enumerating
          }
          const std::vector<Value>& base = table->row(r);
          std::vector<Value> row;
          row.reserve(base.size() + new_vars.size());
          row.insert(row.end(), base.begin(), base.end());
          for (const std::string& var : new_vars) {
            const Value* v = assignment.Find(var);
            CYPHER_CHECK(v != nullptr && "pattern variable not assigned");
            row.push_back(*v);
          }
          out.AddRow(std::move(row));
          any = true;
          return true;
        });
    CYPHER_RETURN_NOT_OK(st);
    if (clause.optional && !any) {
      std::vector<Value> row = table->row(r);
      row.resize(row.size() + new_vars.size());  // nulls
      out.AddRow(std::move(row));
    }
  }
  *table = std::move(out);
  return Status::OK();
}

// ---- UNWIND ---------------------------------------------------------------

Status ExecUnwind(ExecContext* ctx, const UnwindClause& clause, Table* table) {
  if (table->HasColumn(clause.variable)) {
    return Status::SemanticError("variable '" + clause.variable +
                                 "' is already bound");
  }
  Table out = Table::WithColumns(table->columns());
  out.AddColumn(clause.variable);
  EvalContext ec = ctx->Eval();
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Bindings bindings(table, r);
    CYPHER_ASSIGN_OR_RETURN(Value list, Evaluate(ec, bindings, *clause.list));
    if (list.is_null()) continue;  // UNWIND null -> no rows
    if (list.is_list()) {
      for (const Value& element : list.AsList()) {
        std::vector<Value> row = table->row(r);
        row.push_back(element);
        out.AddRow(std::move(row));
      }
    } else {
      std::vector<Value> row = table->row(r);
      row.push_back(std::move(list));
      out.AddRow(std::move(row));
    }
  }
  *table = std::move(out);
  return Status::OK();
}

// ---- WITH / RETURN ----------------------------------------------------------

namespace {

struct ProjItem {
  const Expr* expr;
  std::string alias;
  bool has_agg;
};

/// Lexicographic comparison of sort-key vectors with per-key direction.
struct SortKeyLess {
  const std::vector<bool>* ascending;
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size(); ++i) {
      int cmp = TotalOrderCompare(a[i], b[i]);
      if (cmp != 0) return (*ascending)[i] ? cmp < 0 : cmp > 0;
    }
    return false;
  }
};

}  // namespace

Result<int64_t> EvalRowCount(const EvalContext& ec, const Expr& expr,
                             const char* what) {
  Bindings empty;
  CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ec, empty, expr));
  if (!v.is_int() || v.AsInt() < 0) {
    return Status::ExecutionError(std::string(what) +
                                  " expects a non-negative integer");
  }
  return v.AsInt();
}

Status ExecProjection(ExecContext* ctx, const ProjectionBody& body,
                      const Expr* where, Table* table) {
  EvalContext ec = ctx->Eval();

  // Assemble the item list; `*` expands to all existing columns first.
  std::vector<ExprPtr> synthesized;
  std::vector<ProjItem> items;
  if (body.include_existing) {
    for (const std::string& column : table->columns()) {
      synthesized.push_back(std::make_unique<VariableExpr>(column));
      items.push_back({synthesized.back().get(), column, false});
    }
  }
  for (const ReturnItem& item : body.items) {
    items.push_back({item.expr.get(), item.alias, ContainsAggregate(*item.expr)});
  }
  if (items.empty()) {
    return Status::SemanticError("projection requires at least one item");
  }
  {
    std::unordered_set<std::string> seen;
    for (const ProjItem& item : items) {
      if (!seen.insert(item.alias).second) {
        return Status::SemanticError("duplicate projection alias: " +
                                     item.alias);
      }
    }
  }
  bool aggregated = false;
  for (const ProjItem& item : items) aggregated |= item.has_agg;
  for (const SortItem& sort : body.order_by) {
    aggregated |= ContainsAggregate(*sort.expr);
  }

  std::vector<std::string> aliases;
  aliases.reserve(items.size());
  for (const ProjItem& item : items) aliases.push_back(item.alias);
  Table out = Table::WithColumns(aliases);

  bool has_order = !body.order_by.empty();
  std::vector<std::vector<Value>> sort_keys;

  // Evaluates ORDER BY keys for one output row: projected aliases shadow
  // the underlying record's variables.
  auto eval_sort_keys =
      [&](const Bindings& base, const std::vector<Value>& out_row,
          const AggregateScope* scope) -> Result<std::vector<Value>> {
    Bindings sb = base;
    for (size_t i = 0; i < items.size(); ++i) {
      sb.Push(items[i].alias, out_row[i]);
    }
    std::vector<Value> keys;
    keys.reserve(body.order_by.size());
    for (const SortItem& sort : body.order_by) {
      CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ec, sb, *sort.expr, scope));
      keys.push_back(std::move(v));
    }
    return keys;
  };

  // The per-row (and per-group partial) work below is read-only, so large
  // tables fan out across the morsel pool; the sequential loops remain both
  // the semantics reference and the small-table path.
  std::vector<ProjItemView> item_views;
  item_views.reserve(items.size());
  for (const ProjItem& item : items) {
    item_views.push_back({item.expr, &item.alias, item.has_agg});
  }

  bool parallel_done = false;
  if (!aggregated) {
    CYPHER_ASSIGN_OR_RETURN(
        parallel_done,
        TryParallelProject(ec, ctx->options, *table, item_views, body.order_by,
                           &out, has_order ? &sort_keys : nullptr));
  } else {
    CYPHER_ASSIGN_OR_RETURN(
        parallel_done,
        TryParallelAggregate(ec, ctx->options, *table, item_views,
                             body.order_by, &out,
                             has_order ? &sort_keys : nullptr));
  }
  if (parallel_done) {
    // Rows (and aligned sort keys) are already in `out`, byte-identical to
    // the sequential loops below.
  } else if (!aggregated) {
    // Hoist name resolution out of the row loop (RowEval falls back to the
    // generic evaluator for anything beyond `u` / `u.prop`).
    std::vector<RowEval> fast;
    fast.reserve(items.size());
    for (const ProjItem& item : items) fast.emplace_back(ec, *table, *item.expr);
    for (size_t r = 0; r < table->num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(items.size());
      for (const RowEval& item : fast) {
        CYPHER_ASSIGN_OR_RETURN(Value v, item.Eval(r));
        row.push_back(std::move(v));
      }
      if (has_order) {
        CYPHER_ASSIGN_OR_RETURN(std::vector<Value> keys,
                                eval_sort_keys(Bindings(table, r), row, nullptr));
        sort_keys.push_back(std::move(keys));
      }
      out.AddRow(std::move(row));
    }
  } else {
    // Implicit grouping: non-aggregate items are the grouping key.
    std::vector<size_t> key_items;
    std::vector<RowEval> key_eval;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!items[i].has_agg) {
        key_items.push_back(i);
        key_eval.emplace_back(ec, *table, *items[i].expr);
      }
    }
    std::vector<std::vector<size_t>> groups;
    std::vector<std::vector<Value>> group_keys;
    std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq>
        group_index;
    if (key_items.empty()) {
      groups.emplace_back();  // one global group, present even for 0 rows
      group_keys.emplace_back();
    }
    for (size_t r = 0; r < table->num_rows(); ++r) {
      std::vector<Value> key;
      key.reserve(key_items.size());
      for (const RowEval& ke : key_eval) {
        CYPHER_ASSIGN_OR_RETURN(Value v, ke.Eval(r));
        key.push_back(std::move(v));
      }
      if (key_items.empty()) {
        groups[0].push_back(r);
        continue;
      }
      auto [it, inserted] = group_index.try_emplace(key, groups.size());
      if (inserted) {
        groups.emplace_back();
        group_keys.push_back(std::move(key));
      }
      groups[it->second].push_back(r);
    }
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      const std::vector<size_t>& rows = groups[gi];
      Bindings rep =
          rows.empty() ? Bindings() : Bindings(table, rows.front());
      AggregateScope scope{table, &rows};
      std::vector<Value> row(items.size());
      size_t key_slot = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        if (!items[i].has_agg) {
          row[i] = group_keys[gi][key_slot++];
        } else {
          CYPHER_ASSIGN_OR_RETURN(row[i],
                                  Evaluate(ec, rep, *items[i].expr, &scope));
        }
      }
      if (has_order) {
        CYPHER_ASSIGN_OR_RETURN(std::vector<Value> keys,
                                eval_sort_keys(rep, row, &scope));
        sort_keys.push_back(std::move(keys));
      }
      out.AddRow(std::move(row));
    }
  }

  // DISTINCT (dedupe output rows, keeping sort keys aligned).
  if (body.distinct) {
    Table deduped = Table::WithColumns(out.columns());
    std::vector<std::vector<Value>> deduped_keys;
    std::unordered_set<std::vector<Value>, ValueVecHash, ValueVecEq> seen;
    for (size_t r = 0; r < out.num_rows(); ++r) {
      if (seen.insert(out.row(r)).second) {
        deduped.AddRow(out.row(r));
        if (has_order) deduped_keys.push_back(std::move(sort_keys[r]));
      }
    }
    out = std::move(deduped);
    sort_keys = std::move(deduped_keys);
  }

  // WHERE (WITH ... WHERE): filter on the projected record.
  if (where != nullptr) {
    Table filtered = Table::WithColumns(out.columns());
    std::vector<std::vector<Value>> filtered_keys;
    for (size_t r = 0; r < out.num_rows(); ++r) {
      Bindings bindings(&out, r);
      CYPHER_ASSIGN_OR_RETURN(Tri pass, EvaluatePredicate(ec, bindings, *where));
      if (pass == Tri::kTrue) {
        filtered.AddRow(out.row(r));
        if (has_order) filtered_keys.push_back(std::move(sort_keys[r]));
      }
    }
    out = std::move(filtered);
    sort_keys = std::move(filtered_keys);
  }

  // ORDER BY: stable sort by key vectors.
  if (has_order) {
    std::vector<bool> ascending;
    ascending.reserve(body.order_by.size());
    for (const SortItem& sort : body.order_by) {
      ascending.push_back(sort.ascending);
    }
    std::vector<size_t> order(out.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    SortKeyLess less{&ascending};
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return less(sort_keys[a], sort_keys[b]);
    });
    Table sorted = Table::WithColumns(out.columns());
    for (size_t i : order) sorted.AddRow(out.row(i));
    out = std::move(sorted);
  }

  // SKIP / LIMIT.
  size_t begin = 0;
  size_t end = out.num_rows();
  if (body.skip != nullptr) {
    CYPHER_ASSIGN_OR_RETURN(int64_t skip, EvalRowCount(ec, *body.skip, "SKIP"));
    begin = std::min<size_t>(static_cast<size_t>(skip), end);
  }
  if (body.limit != nullptr) {
    CYPHER_ASSIGN_OR_RETURN(int64_t limit,
                            EvalRowCount(ec, *body.limit, "LIMIT"));
    end = std::min(end, begin + static_cast<size_t>(limit));
  }
  if (begin != 0 || end != out.num_rows()) {
    Table window = Table::WithColumns(out.columns());
    for (size_t r = begin; r < end; ++r) window.AddRow(out.row(r));
    out = std::move(window);
  }

  *table = std::move(out);
  return Status::OK();
}

// ---- Dispatch ---------------------------------------------------------------

Status ExecClause(ExecContext* ctx, const Clause& clause, Table* table) {
  switch (clause.kind) {
    case ClauseKind::kMatch:
      return ExecMatch(ctx, static_cast<const MatchClause&>(clause), table);
    case ClauseKind::kUnwind:
      return ExecUnwind(ctx, static_cast<const UnwindClause&>(clause), table);
    case ClauseKind::kWith: {
      const auto& c = static_cast<const WithClause&>(clause);
      return ExecProjection(ctx, c.body, c.where.get(), table);
    }
    case ClauseKind::kReturn: {
      const auto& c = static_cast<const ReturnClause&>(clause);
      return ExecProjection(ctx, c.body, nullptr, table);
    }
    case ClauseKind::kCreate:
      return ExecCreate(ctx, static_cast<const CreateClause&>(clause), table);
    case ClauseKind::kSet:
      return ExecSet(ctx, static_cast<const SetClause&>(clause), table);
    case ClauseKind::kRemove:
      return ExecRemove(ctx, static_cast<const RemoveClause&>(clause), table);
    case ClauseKind::kDelete:
      return ExecDelete(ctx, static_cast<const DeleteClause&>(clause), table);
    case ClauseKind::kMerge:
      return ExecMerge(ctx, static_cast<const MergeClause&>(clause), table);
    case ClauseKind::kForeach:
      return ExecForeach(ctx, static_cast<const ForeachClause&>(clause), table);
    case ClauseKind::kCreateIndex: {
      const auto& c = static_cast<const CreateIndexClause&>(clause);
      // DDL: applied immediately and not journaled — an index is a pure
      // accelerator (lookups validate against the live graph), so leaving
      // it behind after a rollback is harmless and idempotent.
      Symbol label = ctx->graph->InternLabel(c.label);
      Symbol key = ctx->graph->InternKey(c.key);
      if (c.drop) {
        ctx->graph->DropIndex(label, key);
      } else {
        ctx->graph->CreateIndex(label, key);
      }
      return Status::OK();
    }
    case ClauseKind::kCallSubquery:
      return ExecCallSubquery(
          ctx, static_cast<const CallSubqueryClause&>(clause), table);
    case ClauseKind::kConstraint: {
      const auto& c = static_cast<const ConstraintClause&>(clause);
      Symbol label = ctx->graph->InternLabel(c.label);
      Symbol key = ctx->graph->InternKey(c.key);
      if (c.drop) {
        ctx->graph->DropUniqueConstraint(label, key);
        return Status::OK();
      }
      return ctx->graph->AddUniqueConstraint(label, key);
    }
  }
  return Status::InternalError("unknown clause kind");
}

}  // namespace cypher
