#ifndef CYPHER_EXEC_CLAUSES_H_
#define CYPHER_EXEC_CLAUSES_H_

#include "ast/clause.h"
#include "common/result.h"
#include "exec/context.h"
#include "match/compiled_pattern.h"
#include "table/table.h"

namespace cypher {

/// Clause executors: each implements [[C]](G, T) -> (G', T'), mutating the
/// graph through `ctx` and replacing `*table` with the output driving table.
/// All validation that the grammar defers (CREATE pattern restrictions,
/// bare-MERGE rejection in revised mode, ...) happens here and surfaces as
/// SemanticError / ExecutionError.

Status ExecMatch(ExecContext* ctx, const MatchClause& clause, Table* table);
Status ExecUnwind(ExecContext* ctx, const UnwindClause& clause, Table* table);
Status ExecProjection(ExecContext* ctx, const ProjectionBody& body,
                      const Expr* where, Table* table);
Status ExecCreate(ExecContext* ctx, const CreateClause& clause, Table* table);
Status ExecSet(ExecContext* ctx, const SetClause& clause, Table* table);
Status ExecRemove(ExecContext* ctx, const RemoveClause& clause, Table* table);
Status ExecDelete(ExecContext* ctx, const DeleteClause& clause, Table* table);
Status ExecMerge(ExecContext* ctx, const MergeClause& clause, Table* table);
Status ExecForeach(ExecContext* ctx, const ForeachClause& clause, Table* table);
Status ExecCallSubquery(ExecContext* ctx, const CallSubqueryClause& clause,
                        Table* table);

/// Dispatches on clause kind. WITH/RETURN both route to ExecProjection.
Status ExecClause(ExecContext* ctx, const Clause& clause, Table* table);

/// The fresh variables a MATCH introduces on top of `table`'s columns, in
/// first-occurrence order (consistent across records of one table).
std::vector<std::string> MatchNewVars(const MatchClause& clause,
                                      const Table& table);

/// The enumeration half of ExecMatch, driven by an already-compiled plan:
/// runs `compiled` for every record of `*table` (fanning out through the
/// morsel pool when the planner says so), applies the clause's WHERE and
/// OPTIONAL null-padding, and replaces `*table` with the joined output.
/// The bytecode VM compiles (or cache-hits) the plan itself and delegates
/// here, so both tiers share one enumeration loop.
Status ExecMatchCompiled(ExecContext* ctx, const MatchClause& clause,
                         const CompiledMatch& compiled,
                         const std::vector<std::string>& new_vars,
                         Table* table);

/// Evaluates a SKIP/LIMIT operand against an empty record; anything but a
/// non-negative integer is an ExecutionError naming `what`.
Result<int64_t> EvalRowCount(const EvalContext& ec, const Expr& expr,
                             const char* what);

/// Applies a list of SET items to a single record, legacy-style (immediate,
/// left to right). Shared by the legacy SET executor and legacy MERGE's
/// ON CREATE SET / ON MATCH SET.
Status ApplySetItemsLegacy(ExecContext* ctx, const std::vector<SetItem>& items,
                           const Bindings& bindings);

}  // namespace cypher

#endif  // CYPHER_EXEC_CLAUSES_H_
