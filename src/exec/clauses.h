#ifndef CYPHER_EXEC_CLAUSES_H_
#define CYPHER_EXEC_CLAUSES_H_

#include "ast/clause.h"
#include "common/result.h"
#include "exec/context.h"
#include "table/table.h"

namespace cypher {

/// Clause executors: each implements [[C]](G, T) -> (G', T'), mutating the
/// graph through `ctx` and replacing `*table` with the output driving table.
/// All validation that the grammar defers (CREATE pattern restrictions,
/// bare-MERGE rejection in revised mode, ...) happens here and surfaces as
/// SemanticError / ExecutionError.

Status ExecMatch(ExecContext* ctx, const MatchClause& clause, Table* table);
Status ExecUnwind(ExecContext* ctx, const UnwindClause& clause, Table* table);
Status ExecProjection(ExecContext* ctx, const ProjectionBody& body,
                      const Expr* where, Table* table);
Status ExecCreate(ExecContext* ctx, const CreateClause& clause, Table* table);
Status ExecSet(ExecContext* ctx, const SetClause& clause, Table* table);
Status ExecRemove(ExecContext* ctx, const RemoveClause& clause, Table* table);
Status ExecDelete(ExecContext* ctx, const DeleteClause& clause, Table* table);
Status ExecMerge(ExecContext* ctx, const MergeClause& clause, Table* table);
Status ExecForeach(ExecContext* ctx, const ForeachClause& clause, Table* table);
Status ExecCallSubquery(ExecContext* ctx, const CallSubqueryClause& clause,
                        Table* table);

/// Dispatches on clause kind. WITH/RETURN both route to ExecProjection.
Status ExecClause(ExecContext* ctx, const Clause& clause, Table* table);

/// Applies a list of SET items to a single record, legacy-style (immediate,
/// left to right). Shared by the legacy SET executor and legacy MERGE's
/// ON CREATE SET / ON MATCH SET.
Status ApplySetItemsLegacy(ExecContext* ctx, const std::vector<SetItem>& items,
                           const Bindings& bindings);

}  // namespace cypher

#endif  // CYPHER_EXEC_CLAUSES_H_
