#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "eval/evaluator.h"
#include "exec/clauses.h"
#include "exec/update_common.h"
#include "graph/property_map.h"
#include "value/compare.h"

namespace cypher {

namespace {

bool EntityAlive(const PropertyGraph& graph, EntityRef entity) {
  return entity.kind == EntityRef::Kind::kNode
             ? graph.IsNodeAlive(entity.AsNode())
             : graph.IsRelAlive(entity.AsRel());
}

/// Resolves a SET/REMOVE target value to an entity. Returns nullopt for
/// null (item is skipped); errors on non-entity values.
Result<std::optional<EntityRef>> ResolveEntity(const Value& value,
                                               const char* clause_name) {
  if (value.is_null()) return std::optional<EntityRef>();
  if (value.is_node()) {
    return std::optional<EntityRef>(EntityRef::Node(value.AsNode()));
  }
  if (value.is_rel()) {
    return std::optional<EntityRef>(EntityRef::Rel(value.AsRel()));
  }
  return Status::ExecutionError(std::string(clause_name) +
                                " expects a node or relationship, got " +
                                ValueTypeName(value.type()));
}

/// Normalizes the right-hand side of `SET n = e` / `SET n += e` to a
/// property map: map values directly, node/relationship values by copying
/// their stored properties.
Result<std::vector<std::pair<std::string, Value>>> SourcePropsOf(
    const PropertyGraph& graph, const Value& value) {
  std::vector<std::pair<std::string, Value>> out;
  if (value.is_map()) {
    for (const auto& [key, v] : value.AsMap()) out.emplace_back(key, v);
    return out;
  }
  const PropertyMap* props = nullptr;
  if (value.is_node()) {
    props = &graph.node(value.AsNode()).props;
  } else if (value.is_rel()) {
    props = &graph.rel(value.AsRel()).props;
  } else {
    return Status::ExecutionError(
        std::string("SET expects a map, node or relationship source, got ") +
        ValueTypeName(value.type()));
  }
  for (const auto& [key, v] : props->entries()) {
    out.emplace_back(graph.KeyName(key), v);
  }
  return out;
}

Status CheckStorable(const std::string& key, const Value& value) {
  if (!value.is_null() && !IsStorableProperty(value)) {
    return Status::ExecutionError("property '" + key +
                                  "' cannot store a value of type " +
                                  ValueTypeName(value.type()));
  }
  return Status::OK();
}

}  // namespace

// ---- Legacy (Cypher 9): immediate, record-at-a-time ------------------------

Status ApplySetItemsLegacy(ExecContext* ctx, const std::vector<SetItem>& items,
                           const Bindings& bindings) {
  EvalContext ec = ctx->Eval();
  PropertyGraph& graph = *ctx->graph;
  for (const SetItem& item : items) {
    CYPHER_ASSIGN_OR_RETURN(Value target, Evaluate(ec, bindings, *item.target));
    CYPHER_ASSIGN_OR_RETURN(std::optional<EntityRef> entity,
                            ResolveEntity(target, "SET"));
    if (!entity.has_value()) continue;
    // Legacy anomaly (Section 4.2): updates to deleted entities silently
    // succeed as no-ops, which is how `DELETE user SET user.id = 999`
    // runs without error and returns an empty node.
    if (!EntityAlive(graph, *entity)) continue;
    switch (item.kind) {
      case SetItemKind::kSetProperty: {
        CYPHER_ASSIGN_OR_RETURN(Value value, Evaluate(ec, bindings, *item.value));
        CYPHER_RETURN_NOT_OK(CheckStorable(item.key, value));
        if (graph.SetProperty(*entity, graph.InternKey(item.key),
                              std::move(value))) {
          ++ctx->stats.properties_set;
        }
        break;
      }
      case SetItemKind::kReplaceProps: {
        CYPHER_ASSIGN_OR_RETURN(Value value, Evaluate(ec, bindings, *item.value));
        if (value.is_null()) break;
        CYPHER_ASSIGN_OR_RETURN(auto source, SourcePropsOf(graph, value));
        PropertyMap next;
        for (auto& [key, v] : source) {
          CYPHER_RETURN_NOT_OK(CheckStorable(key, v));
          next.Set(graph.InternKey(key), std::move(v));
        }
        ctx->stats.properties_set += next.size();
        graph.ReplaceProperties(*entity, std::move(next));
        break;
      }
      case SetItemKind::kMergeProps: {
        CYPHER_ASSIGN_OR_RETURN(Value value, Evaluate(ec, bindings, *item.value));
        if (value.is_null()) break;
        CYPHER_ASSIGN_OR_RETURN(auto source, SourcePropsOf(graph, value));
        for (auto& [key, v] : source) {
          CYPHER_RETURN_NOT_OK(CheckStorable(key, v));
          if (graph.SetProperty(*entity, graph.InternKey(key), std::move(v))) {
            ++ctx->stats.properties_set;
          }
        }
        break;
      }
      case SetItemKind::kSetLabels: {
        if (entity->kind != EntityRef::Kind::kNode) {
          return Status::ExecutionError("labels can only be set on nodes");
        }
        for (const std::string& label : item.labels) {
          if (graph.AddLabel(entity->AsNode(), graph.InternLabel(label))) {
            ++ctx->stats.labels_added;
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

namespace {

Status ExecSetLegacy(ExecContext* ctx, const SetClause& clause, Table* table) {
  for (size_t r : ctx->LegacyScanOrder(table->num_rows())) {
    Bindings bindings(table, r);
    CYPHER_RETURN_NOT_OK(ApplySetItemsLegacy(ctx, clause.items, bindings));
  }
  return Status::OK();
}

// ---- Revised (Section 8): two-phase with conflict detection ----------------

/// Collected intent of the whole SET clause before anything is applied:
/// the paper's propchanges(T, s) and labchanges(T, s, n) relations.
struct SetPlan {
  /// (entity, key) -> value; null value = remove the key.
  std::map<std::pair<EntityRef, Symbol>, Value> writes;
  /// entity -> full replacement map (SET n = {...}).
  std::map<EntityRef, PropertyMap> replacements;
  /// (node, label) additions.
  std::map<std::pair<EntityRef, Symbol>, bool> label_adds;
};

Status AddWrite(SetPlan* plan, EntityRef entity, Symbol key, Value value,
                const PropertyGraph& graph) {
  auto slot = plan->writes.find({entity, key});
  if (slot == plan->writes.end()) {
    plan->writes.emplace(std::make_pair(entity, key), std::move(value));
    return Status::OK();
  }
  // Both null (two removals) or group-equal values are compatible;
  // anything else is the Example 2 ambiguity and must abort.
  const Value& existing = slot->second;
  bool compatible = (existing.is_null() && value.is_null()) ||
                    (!existing.is_null() && !value.is_null() &&
                     GroupEquals(existing, value));
  if (!compatible) {
    return Status::ExecutionError(
        "conflicting SET: property '" + graph.KeyName(key) +
        "' would be assigned both " + existing.ToString() + " and " +
        value.ToString());
  }
  return Status::OK();
}

Status ExecSetRevised(ExecContext* ctx, const SetClause& clause, Table* table) {
  EvalContext ec = ctx->Eval();
  PropertyGraph& graph = *ctx->graph;
  SetPlan plan;
  // Phase 1: evaluate every item for every record against the INPUT graph,
  // accumulating changes; nothing is applied yet.
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Bindings bindings(table, r);
    for (const SetItem& item : clause.items) {
      CYPHER_ASSIGN_OR_RETURN(Value target,
                              Evaluate(ec, bindings, *item.target));
      CYPHER_ASSIGN_OR_RETURN(std::optional<EntityRef> entity,
                              ResolveEntity(target, "SET"));
      if (!entity.has_value()) continue;
      if (!EntityAlive(graph, *entity)) continue;  // ref to deleted: no-op
      switch (item.kind) {
        case SetItemKind::kSetProperty: {
          CYPHER_ASSIGN_OR_RETURN(Value value,
                                  Evaluate(ec, bindings, *item.value));
          CYPHER_RETURN_NOT_OK(CheckStorable(item.key, value));
          CYPHER_RETURN_NOT_OK(AddWrite(&plan, *entity,
                                        graph.InternKey(item.key),
                                        std::move(value), graph));
          break;
        }
        case SetItemKind::kReplaceProps: {
          CYPHER_ASSIGN_OR_RETURN(Value value,
                                  Evaluate(ec, bindings, *item.value));
          if (value.is_null()) break;
          CYPHER_ASSIGN_OR_RETURN(auto source, SourcePropsOf(graph, value));
          PropertyMap next;
          for (auto& [key, v] : source) {
            CYPHER_RETURN_NOT_OK(CheckStorable(key, v));
            next.Set(graph.InternKey(key), std::move(v));
          }
          auto slot = plan.replacements.find(*entity);
          if (slot == plan.replacements.end()) {
            plan.replacements.emplace(*entity, std::move(next));
          } else if (!PropsEquivalent(slot->second, next)) {
            return Status::ExecutionError(
                "conflicting SET: entity would be assigned two different "
                "property maps");
          }
          break;
        }
        case SetItemKind::kMergeProps: {
          CYPHER_ASSIGN_OR_RETURN(Value value,
                                  Evaluate(ec, bindings, *item.value));
          if (value.is_null()) break;
          CYPHER_ASSIGN_OR_RETURN(auto source, SourcePropsOf(graph, value));
          for (auto& [key, v] : source) {
            CYPHER_RETURN_NOT_OK(CheckStorable(key, v));
            CYPHER_RETURN_NOT_OK(AddWrite(&plan, *entity,
                                          graph.InternKey(key), std::move(v),
                                          graph));
          }
          break;
        }
        case SetItemKind::kSetLabels: {
          if (entity->kind != EntityRef::Kind::kNode) {
            return Status::ExecutionError("labels can only be set on nodes");
          }
          for (const std::string& label : item.labels) {
            plan.label_adds[{*entity, graph.InternLabel(label)}] = true;
          }
          break;
        }
      }
    }
  }
  // Phase 2: apply. Replacements first, point writes on top, then labels
  // (label additions can never conflict, as the paper notes).
  for (auto& [entity, props] : plan.replacements) {
    ctx->stats.properties_set += props.size();
    graph.ReplaceProperties(entity, std::move(props));
  }
  for (auto& [slot, value] : plan.writes) {
    if (graph.SetProperty(slot.first, slot.second, std::move(value))) {
      ++ctx->stats.properties_set;
    }
  }
  for (const auto& [slot, unused] : plan.label_adds) {
    if (graph.AddLabel(slot.first.AsNode(), slot.second)) {
      ++ctx->stats.labels_added;
    }
  }
  return Status::OK();
}

}  // namespace

Status ExecSet(ExecContext* ctx, const SetClause& clause, Table* table) {
  if (ctx->options.semantics == SemanticsMode::kLegacy) {
    return ExecSetLegacy(ctx, clause, table);
  }
  return ExecSetRevised(ctx, clause, table);
}

// ---- REMOVE -----------------------------------------------------------------

Status ExecRemove(ExecContext* ctx, const RemoveClause& clause, Table* table) {
  EvalContext ec = ctx->Eval();
  PropertyGraph& graph = *ctx->graph;
  // Removals cannot conflict (Section 8), so the two-phase plan degenerates
  // to collect-then-apply; the legacy mode applies immediately instead.
  bool legacy = ctx->options.semantics == SemanticsMode::kLegacy;
  std::vector<std::pair<EntityRef, Symbol>> prop_removals;
  std::vector<std::pair<EntityRef, Symbol>> label_removals;
  auto process = [&](size_t r) -> Status {
    Bindings bindings(table, r);
    for (const RemoveItem& item : clause.items) {
      CYPHER_ASSIGN_OR_RETURN(Value target,
                              Evaluate(ec, bindings, *item.target));
      CYPHER_ASSIGN_OR_RETURN(std::optional<EntityRef> entity,
                              ResolveEntity(target, "REMOVE"));
      if (!entity.has_value()) continue;
      if (!EntityAlive(graph, *entity)) continue;
      if (item.kind == RemoveItemKind::kProperty) {
        Symbol key = graph.FindKey(item.key);
        if (key == kNoSymbol) continue;
        if (legacy) {
          if (graph.SetProperty(*entity, key, Value::Null())) {
            ++ctx->stats.properties_set;
          }
        } else {
          prop_removals.emplace_back(*entity, key);
        }
      } else {
        if (entity->kind != EntityRef::Kind::kNode) {
          return Status::ExecutionError(
              "labels can only be removed from nodes");
        }
        for (const std::string& label : item.labels) {
          Symbol sym = graph.FindLabel(label);
          if (sym == kNoSymbol) continue;
          if (legacy) {
            if (graph.RemoveLabel(entity->AsNode(), sym)) {
              ++ctx->stats.labels_removed;
            }
          } else {
            label_removals.emplace_back(*entity, sym);
          }
        }
      }
    }
    return Status::OK();
  };
  if (legacy) {
    for (size_t r : ctx->LegacyScanOrder(table->num_rows())) {
      CYPHER_RETURN_NOT_OK(process(r));
    }
    return Status::OK();
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    CYPHER_RETURN_NOT_OK(process(r));
  }
  for (const auto& [entity, key] : prop_removals) {
    if (graph.SetProperty(entity, key, Value::Null())) {
      ++ctx->stats.properties_set;
    }
  }
  for (const auto& [entity, label] : label_removals) {
    if (graph.RemoveLabel(entity.AsNode(), label)) {
      ++ctx->stats.labels_removed;
    }
  }
  return Status::OK();
}

}  // namespace cypher
