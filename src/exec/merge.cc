#include <algorithm>
#include <optional>
#include <unordered_map>
#include <variant>

#include "common/check.h"
#include "eval/evaluator.h"
#include "exec/clauses.h"
#include "exec/parallel.h"
#include "exec/update_common.h"
#include "value/compare.h"

namespace cypher {

const char* MergeVariantName(MergeVariant variant) {
  switch (variant) {
    case MergeVariant::kAtomic:
      return "Atomic";
    case MergeVariant::kGrouping:
      return "Grouping";
    case MergeVariant::kWeakCollapse:
      return "Weak Collapse";
    case MergeVariant::kCollapse:
      return "Collapse";
    case MergeVariant::kStrongCollapse:
      return "Strong Collapse";
  }
  return "?";
}

namespace {

// =============================================================================
// Legacy MERGE (Cypher 9, Section 3 / 4.3)
// =============================================================================

Status ExecMergeLegacy(ExecContext* ctx, const MergeClause& clause,
                       Table* table) {
  CYPHER_RETURN_NOT_OK(
      ValidateUpdatePatterns(clause.patterns, /*allow_undirected=*/true));
  std::vector<std::string> new_vars =
      NewPatternVariables(clause.patterns, *table);
  Table out = Table::WithColumns(table->columns());
  for (const std::string& var : new_vars) out.AddColumn(var);
  EvalContext ec = ctx->Eval();
  // Record-at-a-time in scan order, each record matching against the
  // CURRENT graph — i.e. MERGE reads its own writes, the root cause of the
  // nondeterminism demonstrated in Example 3 / Figure 6.
  for (size_t r : ctx->LegacyScanOrder(table->num_rows())) {
    Bindings bindings(table, r);
    std::vector<MatchAssignment> matches;
    // MatchPatterns (not a clause-level compile): each record matches the
    // graph as mutated by earlier records, so a label interned by record
    // one's create branch must be visible to record two's match phase.
    CYPHER_RETURN_NOT_OK(MatchPatterns(
        ec, bindings, clause.patterns, ctx->Match(),
        [&matches](const MatchAssignment& assignment) -> Result<bool> {
          matches.push_back(assignment);
          return true;
        }));
    if (!matches.empty()) {
      for (const MatchAssignment& assignment : matches) {
        std::vector<Value> row = table->row(r);
        for (const std::string& var : new_vars) {
          const Value* v = assignment.Find(var);
          CYPHER_CHECK(v != nullptr);
          row.push_back(*v);
        }
        out.AddRow(std::move(row));
        if (!clause.on_match.empty()) {
          Bindings mb = bindings;
          for (const auto& [name, value] : assignment.entries()) {
            mb.Push(name, value);
          }
          CYPHER_RETURN_NOT_OK(ApplySetItemsLegacy(ctx, clause.on_match, mb));
        }
      }
      continue;
    }
    // No match: create an instance immediately (visible to later records).
    Bindings env = bindings;
    for (const PathPattern& pattern : clause.patterns) {
      CYPHER_RETURN_NOT_OK(CreatePatternInstance(ctx, &env, pattern));
    }
    std::vector<Value> row = table->row(r);
    for (const std::string& var : new_vars) {
      std::optional<Value> v = env.Lookup(var);
      CYPHER_CHECK(v.has_value());
      row.push_back(*std::move(v));
    }
    out.AddRow(std::move(row));
    if (!clause.on_create.empty()) {
      CYPHER_RETURN_NOT_OK(ApplySetItemsLegacy(ctx, clause.on_create, env));
    }
  }
  *table = std::move(out);
  return Status::OK();
}

// =============================================================================
// Revised MERGE: the Section 6 variant engine
// =============================================================================
//
// All five variants share one pipeline:
//   A. match every record against the INPUT graph (never own writes);
//   B. plan creations for failed records as *virtual* instances —
//      Atomic plans one instance per record, the others one per group of
//      records with equal pattern-expression values;
//   C. collapse virtual nodes/relationships according to the variant's
//      equivalence (Definitions 1 and 2, with or without the position
//      restriction);
//   D. materialize only equivalence-class representatives in one step;
//   E. emit one output row per failed record, bound to its (collapsed)
//      instance, after the bag of matched rows.
// Because creations are planned virtually, the graph mutates exactly once,
// which makes the clause atomic and order-insensitive by construction.

struct VirtualNode {
  bool existing = false;
  NodeId existing_id;            // when existing
  std::vector<Symbol> labels;    // when created (sorted, deduplicated)
  PropertyMap props;             // when created
  size_t pattern = 0;            // pattern index within the tuple
  size_t position = 0;           // node position within the pattern
};

struct VirtualRel {
  Symbol type = kNoSymbol;
  size_t src = 0;  // vnode index
  size_t tgt = 0;  // vnode index
  PropertyMap props;
  size_t pattern = 0;
  size_t position = 0;  // relationship position within the pattern
};

/// What a pattern variable of one instance binds to.
struct BindTarget {
  enum class Kind { kNode, kRel, kPath } kind;
  size_t index = 0;  // vnode / vrel index (kNode / kRel)
  std::vector<size_t> path_nodes;  // vnode indices (kPath)
  std::vector<size_t> path_rels;   // vrel indices (kPath)
};

struct Instance {
  std::vector<std::pair<std::string, BindTarget>> binds;

  const BindTarget* Find(std::string_view name) const {
    for (const auto& [n, t] : binds) {
      if (n == name) return &t;
    }
    return nullptr;
  }
};

class MergePlanner {
 public:
  MergePlanner(ExecContext* ctx, const MergeClause& clause)
      : ctx_(ctx), clause_(clause) {}

  /// Plans one virtual instance of all patterns for the record `bindings`.
  Result<Instance> PlanInstance(const Bindings& bindings) {
    Instance instance;
    for (size_t p = 0; p < clause_.patterns.size(); ++p) {
      CYPHER_RETURN_NOT_OK(PlanPattern(bindings, p, &instance));
    }
    return instance;
  }

  std::vector<VirtualNode>& vnodes() { return vnodes_; }
  std::vector<VirtualRel>& vrels() { return vrels_; }

 private:
  Result<size_t> PlanNode(const Bindings& bindings, const NodePattern& pattern,
                          size_t pattern_idx, size_t position,
                          Instance* instance) {
    if (!pattern.variable.empty()) {
      if (const BindTarget* prior = instance->Find(pattern.variable)) {
        if (prior->kind != BindTarget::Kind::kNode) {
          return Status::ExecutionError("variable '" + pattern.variable +
                                        "' is not a node");
        }
        if (!pattern.labels.empty() || !pattern.properties.empty()) {
          return Status::SemanticError(
              "variable '" + pattern.variable +
              "' is already bound; it cannot be redeclared with labels or "
              "properties");
        }
        return prior->index;
      }
      if (std::optional<Value> bound = bindings.Lookup(pattern.variable)) {
        if (!pattern.labels.empty() || !pattern.properties.empty()) {
          return Status::SemanticError(
              "variable '" + pattern.variable +
              "' is already bound; it cannot be redeclared with labels or "
              "properties");
        }
        if (bound->is_null()) {
          return Status::ExecutionError(
              "MERGE cannot create a pattern over null (variable '" +
              pattern.variable + "')");
        }
        if (!bound->is_node()) {
          return Status::ExecutionError(
              "variable '" + pattern.variable + "' is bound to " +
              ValueTypeName(bound->type()) + ", expected a node");
        }
        if (!ctx_->graph->IsNodeAlive(bound->AsNode())) {
          return Status::ExecutionError("variable '" + pattern.variable +
                                        "' refers to a deleted node");
        }
        VirtualNode vn;
        vn.existing = true;
        vn.existing_id = bound->AsNode();
        vn.pattern = pattern_idx;
        vn.position = position;
        vnodes_.push_back(std::move(vn));
        size_t idx = vnodes_.size() - 1;
        instance->binds.emplace_back(
            pattern.variable,
            BindTarget{BindTarget::Kind::kNode, idx, {}, {}});
        return idx;
      }
    }
    VirtualNode vn;
    vn.pattern = pattern_idx;
    vn.position = position;
    for (const std::string& label : pattern.labels) {
      vn.labels.push_back(ctx_->graph->InternLabel(label));
    }
    std::sort(vn.labels.begin(), vn.labels.end());
    vn.labels.erase(std::unique(vn.labels.begin(), vn.labels.end()),
                    vn.labels.end());
    CYPHER_ASSIGN_OR_RETURN(vn.props,
                            EvalPatternProps(ctx_, bindings, pattern.properties));
    vnodes_.push_back(std::move(vn));
    size_t idx = vnodes_.size() - 1;
    if (!pattern.variable.empty()) {
      instance->binds.emplace_back(
          pattern.variable, BindTarget{BindTarget::Kind::kNode, idx, {}, {}});
    }
    return idx;
  }

  Status PlanPattern(const Bindings& bindings, size_t pattern_idx,
                     Instance* instance) {
    const PathPattern& pattern = clause_.patterns[pattern_idx];
    std::vector<size_t> path_nodes;
    std::vector<size_t> path_rels;
    CYPHER_ASSIGN_OR_RETURN(
        size_t cur, PlanNode(bindings, pattern.start, pattern_idx, 0, instance));
    path_nodes.push_back(cur);
    for (size_t s = 0; s < pattern.steps.size(); ++s) {
      const auto& [rel_pattern, node_pattern] = pattern.steps[s];
      if (!rel_pattern.variable.empty() &&
          (instance->Find(rel_pattern.variable) != nullptr ||
           bindings.IsBound(rel_pattern.variable))) {
        return Status::SemanticError("relationship variable '" +
                                     rel_pattern.variable +
                                     "' is already bound");
      }
      CYPHER_ASSIGN_OR_RETURN(
          size_t next,
          PlanNode(bindings, node_pattern, pattern_idx, s + 1, instance));
      VirtualRel vr;
      vr.type = ctx_->graph->InternType(rel_pattern.types.front());
      vr.src = cur;
      vr.tgt = next;
      if (rel_pattern.direction == RelDirection::kRightToLeft) {
        std::swap(vr.src, vr.tgt);
      }
      CYPHER_ASSIGN_OR_RETURN(
          vr.props, EvalPatternProps(ctx_, bindings, rel_pattern.properties));
      vr.pattern = pattern_idx;
      vr.position = s;
      vrels_.push_back(std::move(vr));
      size_t rel_idx = vrels_.size() - 1;
      if (!rel_pattern.variable.empty()) {
        instance->binds.emplace_back(
            rel_pattern.variable,
            BindTarget{BindTarget::Kind::kRel, rel_idx, {}, {}});
      }
      path_rels.push_back(rel_idx);
      path_nodes.push_back(next);
      cur = next;
    }
    if (!pattern.path_variable.empty()) {
      if (instance->Find(pattern.path_variable) != nullptr ||
          bindings.IsBound(pattern.path_variable)) {
        return Status::SemanticError("path variable '" +
                                     pattern.path_variable +
                                     "' is already bound");
      }
      BindTarget target{BindTarget::Kind::kPath, 0, std::move(path_nodes),
                        std::move(path_rels)};
      instance->binds.emplace_back(pattern.path_variable, std::move(target));
    }
    return Status::OK();
  }

  ExecContext* ctx_;
  const MergeClause& clause_;
  std::vector<VirtualNode> vnodes_;
  std::vector<VirtualRel> vrels_;
};

/// Identity of a (possibly collapsed) relationship endpoint: existing nodes
/// by graph id, created nodes by their representative vnode index.
struct EndpointKey {
  bool existing;
  uint32_t id;
  friend bool operator==(const EndpointKey& a, const EndpointKey& b) {
    return a.existing == b.existing && a.id == b.id;
  }
};

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Group key for the "grouping by pattern expressions" step: the values of
/// all bound pattern variables plus every evaluated property map, flattened
/// into one Value vector compared under grouping equivalence.
class RecordGroupKeyBuilder {
 public:
  explicit RecordGroupKeyBuilder(ExecContext* ctx) : ctx_(ctx) {}

  Result<std::vector<Value>> Build(const Bindings& bindings,
                                   const std::vector<PathPattern>& patterns) {
    std::vector<Value> key;
    EvalContext ec = ctx_->Eval();
    for (const PathPattern& pattern : patterns) {
      CYPHER_RETURN_NOT_OK(AddNode(ec, bindings, pattern.start, &key));
      for (const auto& [rel, node] : pattern.steps) {
        CYPHER_RETURN_NOT_OK(AddProps(ec, bindings, rel.properties, &key));
        CYPHER_RETURN_NOT_OK(AddNode(ec, bindings, node, &key));
      }
    }
    return key;
  }

 private:
  Status AddNode(const EvalContext& ec, const Bindings& bindings,
                 const NodePattern& pattern, std::vector<Value>* key) {
    if (!pattern.variable.empty()) {
      if (std::optional<Value> bound = bindings.Lookup(pattern.variable)) {
        key->push_back(*std::move(bound));
        return Status::OK();
      }
    }
    return AddProps(ec, bindings, pattern.properties, key);
  }

  Status AddProps(const EvalContext& ec, const Bindings& bindings,
                  const std::vector<std::pair<std::string, ExprPtr>>& props,
                  std::vector<Value>* key) {
    for (const auto& [name, expr] : props) {
      CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ec, bindings, *expr));
      key->push_back(std::move(v));
    }
    return Status::OK();
  }

  ExecContext* ctx_;
};

Status ExecMergeRevised(ExecContext* ctx, const MergeClause& clause,
                        Table* table, MergeVariant variant) {
  if (!clause.on_create.empty() || !clause.on_match.empty()) {
    return Status::SemanticError(
        "ON CREATE SET / ON MATCH SET are not part of MERGE ALL / MERGE "
        "SAME; use a subsequent SET clause");
  }
  CYPHER_RETURN_NOT_OK(
      ValidateUpdatePatterns(clause.patterns, /*allow_undirected=*/false));
  std::vector<std::string> new_vars =
      NewPatternVariables(clause.patterns, *table);
  Table out = Table::WithColumns(table->columns());
  for (const std::string& var : new_vars) out.AddColumn(var);
  EvalContext ec = ctx->Eval();

  // ---- Phase A: match against the input graph --------------------------------
  // Revised MERGE matches every record against the same (input) graph, so
  // one compile serves the whole phase — creations happen only in Phase D.
  std::optional<CompiledMatch> compiled;
  if (table->num_rows() > 0) {
    compiled = CompileMatch(ec, Bindings(table, 0), clause.patterns,
                            {.num_rows = table->num_rows()});
  }
  std::vector<size_t> failed;
  std::optional<ParallelPlan> par_plan;
  if (compiled.has_value()) {
    par_plan =
        PlanParallelMatch(ctx->options, *ec.graph, *compiled, table->num_rows());
  }
  if (par_plan.has_value()) {
    // The match phase reads only the input graph (creations happen in
    // Phase D), so it fans out like any MATCH; `failed` comes back in
    // ascending record order, exactly as Phases B-D require.
    CYPHER_RETURN_NOT_OK(ParallelMatchRows(
        ec, ctx->Match(), *par_plan, *table, *compiled, /*where=*/nullptr,
        new_vars, /*optional_match=*/false, &failed, &out));
  }
  for (size_t r = 0; !par_plan.has_value() && r < table->num_rows(); ++r) {
    Bindings bindings(table, r);
    bool any = false;
    CYPHER_RETURN_NOT_OK(MatchCompiled(
        ec, bindings, *compiled, ctx->Match(),
        [&](const MatchAssignment& assignment) -> Result<bool> {
          std::vector<Value> row = table->row(r);
          for (const std::string& var : new_vars) {
            const Value* v = assignment.Find(var);
            CYPHER_CHECK(v != nullptr);
            row.push_back(*v);
          }
          out.AddRow(std::move(row));
          any = true;
          return true;
        }));
    if (!any) failed.push_back(r);
  }

  // ---- Phase B: plan virtual instances ---------------------------------------
  MergePlanner planner(ctx, clause);
  // instance_of[i] = index into `instances` for failed record i.
  std::vector<size_t> instance_of(failed.size());
  std::vector<Instance> instances;
  if (variant == MergeVariant::kAtomic) {
    for (size_t i = 0; i < failed.size(); ++i) {
      Bindings bindings(table, failed[i]);
      CYPHER_ASSIGN_OR_RETURN(Instance instance,
                              planner.PlanInstance(bindings));
      instance_of[i] = instances.size();
      instances.push_back(std::move(instance));
    }
  } else {
    RecordGroupKeyBuilder key_builder(ctx);
    std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq>
        group_index;
    for (size_t i = 0; i < failed.size(); ++i) {
      Bindings bindings(table, failed[i]);
      CYPHER_ASSIGN_OR_RETURN(std::vector<Value> key,
                              key_builder.Build(bindings, clause.patterns));
      auto [it, inserted] = group_index.try_emplace(std::move(key),
                                                    instances.size());
      if (inserted) {
        CYPHER_ASSIGN_OR_RETURN(Instance instance,
                                planner.PlanInstance(bindings));
        instances.push_back(std::move(instance));
      }
      instance_of[i] = it->second;
    }
  }

  std::vector<VirtualNode>& vnodes = planner.vnodes();
  std::vector<VirtualRel>& vrels = planner.vrels();

  // ---- Phase C: collapse ------------------------------------------------------
  std::vector<size_t> node_repr(vnodes.size());
  for (size_t i = 0; i < vnodes.size(); ++i) node_repr[i] = i;
  bool collapse_nodes = variant == MergeVariant::kWeakCollapse ||
                        variant == MergeVariant::kCollapse ||
                        variant == MergeVariant::kStrongCollapse;
  bool node_position_sensitive = variant == MergeVariant::kWeakCollapse;
  if (collapse_nodes) {
    // Bucket created vnodes by hash; resolve equality precisely
    // (Definition 1: same labels, equivalent properties; 1(iii) — existing
    // nodes only collapse with themselves, so they are skipped here).
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    for (size_t i = 0; i < vnodes.size(); ++i) {
      if (vnodes[i].existing) continue;
      uint64_t h = 67;
      for (Symbol s : vnodes[i].labels) h = MixHash(h, s);
      h = MixHash(h, HashProps(vnodes[i].props));
      if (node_position_sensitive) {
        h = MixHash(h, vnodes[i].pattern * 131 + vnodes[i].position);
      }
      std::vector<size_t>& bucket = buckets[h];
      bool found = false;
      for (size_t j : bucket) {
        const VirtualNode& a = vnodes[i];
        const VirtualNode& b = vnodes[j];
        if (a.labels != b.labels) continue;
        if (node_position_sensitive &&
            (a.pattern != b.pattern || a.position != b.position)) {
          continue;
        }
        if (!PropsEquivalent(a.props, b.props)) continue;
        node_repr[i] = j;
        found = true;
        break;
      }
      if (!found) bucket.push_back(i);
    }
  }
  auto endpoint_key = [&](size_t vn) -> EndpointKey {
    if (vnodes[vn].existing) {
      return {true, vnodes[vn].existing_id.value};
    }
    return {false, static_cast<uint32_t>(node_repr[vn])};
  };

  std::vector<size_t> rel_repr(vrels.size());
  for (size_t i = 0; i < vrels.size(); ++i) rel_repr[i] = i;
  bool collapse_rels = collapse_nodes;  // same variants collapse rels
  bool rel_position_sensitive = variant == MergeVariant::kWeakCollapse ||
                                variant == MergeVariant::kCollapse;
  if (collapse_rels) {
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    for (size_t i = 0; i < vrels.size(); ++i) {
      EndpointKey src = endpoint_key(vrels[i].src);
      EndpointKey tgt = endpoint_key(vrels[i].tgt);
      uint64_t h = MixHash(71, vrels[i].type);
      h = MixHash(h, HashProps(vrels[i].props));
      h = MixHash(h, (src.existing ? 1ULL << 40 : 0) + src.id);
      h = MixHash(h, (tgt.existing ? 1ULL << 40 : 0) + tgt.id);
      if (rel_position_sensitive) {
        h = MixHash(h, vrels[i].pattern * 131 + vrels[i].position);
      }
      std::vector<size_t>& bucket = buckets[h];
      bool found = false;
      for (size_t j : bucket) {
        const VirtualRel& a = vrels[i];
        const VirtualRel& b = vrels[j];
        if (a.type != b.type) continue;
        if (rel_position_sensitive &&
            (a.pattern != b.pattern || a.position != b.position)) {
          continue;
        }
        if (!(endpoint_key(a.src) == endpoint_key(b.src))) continue;
        if (!(endpoint_key(a.tgt) == endpoint_key(b.tgt))) continue;
        if (!PropsEquivalent(a.props, b.props)) continue;
        rel_repr[i] = j;
        found = true;
        break;
      }
      if (!found) bucket.push_back(i);
    }
  }

  // ---- Phase D: materialize representatives ----------------------------------
  std::vector<NodeId> node_of(vnodes.size());
  for (size_t i = 0; i < vnodes.size(); ++i) {
    if (vnodes[i].existing) {
      node_of[i] = vnodes[i].existing_id;
    } else if (node_repr[i] == i) {
      node_of[i] =
          ctx->graph->CreateNode(vnodes[i].labels, vnodes[i].props);
      ++ctx->stats.nodes_created;
    }
  }
  auto resolve_node = [&](size_t vn) -> NodeId {
    if (vnodes[vn].existing) return vnodes[vn].existing_id;
    return node_of[node_repr[vn]];
  };
  std::vector<RelId> rel_of(vrels.size());
  for (size_t i = 0; i < vrels.size(); ++i) {
    if (rel_repr[i] != i) continue;
    CYPHER_ASSIGN_OR_RETURN(
        rel_of[i],
        ctx->graph->CreateRel(resolve_node(vrels[i].src),
                              resolve_node(vrels[i].tgt), vrels[i].type,
                              vrels[i].props));
    ++ctx->stats.rels_created;
  }
  auto resolve_rel = [&](size_t vr) -> RelId { return rel_of[rel_repr[vr]]; };

  // ---- Phase E: emit created rows ---------------------------------------------
  for (size_t i = 0; i < failed.size(); ++i) {
    const Instance& instance = instances[instance_of[i]];
    std::vector<Value> row = table->row(failed[i]);
    for (const std::string& var : new_vars) {
      const BindTarget* target = instance.Find(var);
      CYPHER_CHECK(target != nullptr && "MERGE did not bind a variable");
      switch (target->kind) {
        case BindTarget::Kind::kNode:
          row.push_back(Value::Node(resolve_node(target->index)));
          break;
        case BindTarget::Kind::kRel:
          row.push_back(Value::Rel(resolve_rel(target->index)));
          break;
        case BindTarget::Kind::kPath: {
          PathValue path;
          for (size_t vn : target->path_nodes) {
            path.nodes.push_back(resolve_node(vn));
          }
          for (size_t vr : target->path_rels) {
            path.rels.push_back(resolve_rel(vr));
          }
          row.push_back(Value::Path(std::move(path)));
          break;
        }
      }
    }
    out.AddRow(std::move(row));
  }

  *table = std::move(out);
  return Status::OK();
}

}  // namespace

Status ExecMerge(ExecContext* ctx, const MergeClause& clause, Table* table) {
  switch (clause.form) {
    case MergeForm::kAll:
      return ExecMergeRevised(ctx, clause, table, MergeVariant::kAtomic);
    case MergeForm::kSame:
      return ExecMergeRevised(ctx, clause, table,
                              MergeVariant::kStrongCollapse);
    case MergeForm::kLegacy:
      break;
  }
  if (ctx->options.semantics == SemanticsMode::kLegacy) {
    return ExecMergeLegacy(ctx, clause, table);
  }
  if (ctx->options.plain_merge_variant.has_value()) {
    return ExecMergeRevised(ctx, clause, table,
                            *ctx->options.plain_merge_variant);
  }
  return Status::SemanticError(
      "bare MERGE is not available under the revised semantics; use MERGE "
      "ALL or MERGE SAME (Section 7), or configure plain_merge_variant");
}

}  // namespace cypher
